// Runningexample walks the paper's running example (Figure 4) through the
// three phases of the global algorithm, printing the intermediate
// programs of Figures 12, 14, and 15, and measuring the dynamic win.
package main

import (
	"fmt"
	"log"

	"assignmentmotion"
)

const running = `
graph running {
  entry b1
  exit b4
  block b1 {
    y := c + d
    goto b2
  }
  block b2 {
    if x + z > y + i then b3 else b4
  }
  block b3 {
    y := c + d
    x := y + z
    i := i + x
    goto b2
  }
  block b4 {
    x := y + z
    x := c + d
    out(i, x, y)
  }
}
`

func main() {
	g := assignmentmotion.MustParse(running)
	original := g.Clone()

	fmt.Println("=== Figure 4: the running example ===")
	fmt.Print(assignmentmotion.Format(g))

	if err := assignmentmotion.Apply(g, assignmentmotion.PassInit); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Figure 12: after the initialization phase ===")
	fmt.Print(assignmentmotion.Format(g))

	if err := assignmentmotion.Apply(g, assignmentmotion.PassAM); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Figure 14: after the assignment motion phase ===")
	fmt.Print(assignmentmotion.Format(g))

	if err := assignmentmotion.Apply(g, assignmentmotion.PassFlush); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Figure 15: after the final flush ===")
	fmt.Print(assignmentmotion.Format(g))

	// A looping execution: x+z stays large for a few iterations.
	env := map[assignmentmotion.Var]int64{"x": 100, "z": 50, "i": 1}
	before := assignmentmotion.Run(original, env, 0)
	after := assignmentmotion.Run(g, env, 0)
	fmt.Printf("\nloop execution: expression evaluations %d -> %d, assignments %d -> %d\n",
		before.Counts.ExprEvals, after.Counts.ExprEvals,
		before.Counts.AssignExecs, after.Counts.AssignExecs)
	fmt.Printf("traces identical: %v\n", fmt.Sprint(before.Trace) == fmt.Sprint(after.Trace))
}
