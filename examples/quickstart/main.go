// Quickstart: parse a flow-graph program, run the paper's global
// algorithm, and observe the effect — fewer expression evaluations at
// run time with unchanged observable behaviour.
package main

import (
	"fmt"
	"log"

	"assignmentmotion"
)

const program = `
# A small program with a partially redundant expression (a+b is computed
# twice on the left path) and a loop-invariant assignment.
graph quickstart {
  entry start
  exit join
  block start {
    s := a + b
    if s > 10 then big else small
  }
  block big {
    t := a + b
    k := 0
    goto loop
  }
  block loop {
    u := a + b
    k := k + 1
    if k < 3 then loop else join
  }
  block small {
    t := 0
    u := 0
    goto join
  }
  block join { out(s, t, u, k) }
}
`

func main() {
	g, err := assignmentmotion.Parse(program)
	if err != nil {
		log.Fatal(err)
	}
	original := g.Clone()

	env := map[assignmentmotion.Var]int64{"a": 7, "b": 5}
	before := assignmentmotion.Run(original, env, 0)

	res := assignmentmotion.Optimize(g)
	after := assignmentmotion.Run(g, env, 0)

	fmt.Println("=== optimized program ===")
	fmt.Print(assignmentmotion.Format(g))
	fmt.Printf("\nphases: %d sites decomposed, %d AM iterations, %d assignments eliminated,\n",
		res.Decomposed, res.AM.Iterations, res.AM.Eliminated)
	fmt.Printf("        %d temp inits dropped, %d placed lazily, %d reconstructed\n\n",
		res.Flush.DroppedInits, res.Flush.InsertedInits, res.Flush.Reconstructed)

	fmt.Printf("trace before: %v\n", before.Trace)
	fmt.Printf("trace after:  %v   (identical: %v)\n", after.Trace, fmt.Sprint(before.Trace) == fmt.Sprint(after.Trace))
	fmt.Printf("expression evaluations: %d -> %d\n", before.Counts.ExprEvals, after.Counts.ExprEvals)
	fmt.Printf("assignment executions:  %d -> %d\n", before.Counts.AssignExecs, after.Counts.AssignExecs)

	rep := assignmentmotion.Equivalent(original, g, 25, 1)
	if !rep.Equivalent {
		log.Fatalf("semantics changed: %s", rep.Detail)
	}
	fmt.Printf("verified on %d random inputs: equivalent\n", rep.Runs)
}
