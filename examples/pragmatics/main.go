// Pragmatics reproduces the Section 6 discussion (Figures 18–20): complex
// expressions are decomposed into 3-address form, which blocks plain
// expression motion; copy propagation is the classical workaround; and
// the uniform EM&AM algorithm beats both by emptying the loop entirely.
package main

import (
	"fmt"
	"log"

	"assignmentmotion"
)

// Figure 18(a): x := a+b+c, loop invariant, written with a nested
// expression that ParseNested decomposes into Figure 18(b).
const nestedSrc = `
graph fig18a {
  entry n1
  exit n3
  block n1 {
    x := a + b + c
    goto n2
  }
  block n2 {
    x := a + b + c
    k := k + 1
    if k < 5 then n2 else n3
  }
  block n3 { out(x, k) }
}
`

func main() {
	base, err := assignmentmotion.ParseNested(nestedSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Figure 18(b): canonical 3-address decomposition ===")
	fmt.Print(assignmentmotion.Format(base))

	run := func(name string, passes ...assignmentmotion.Pass) *assignmentmotion.Graph {
		g := base.Clone()
		if err := assignmentmotion.Apply(g, passes...); err != nil {
			log.Fatal(err)
		}
		rep := assignmentmotion.Equivalent(base, g, 16, 7)
		if !rep.Equivalent {
			log.Fatalf("%s changed semantics: %s", name, rep.Detail)
		}
		return g
	}

	em := run("em", assignmentmotion.PassEM)
	emcp := run("em+cp", assignmentmotion.PassEMCP)
	glob := run("globalg", assignmentmotion.PassGlobAlg)

	fmt.Println("\n=== Figure 20(b): the uniform algorithm empties the loop ===")
	fmt.Print(assignmentmotion.Format(glob))

	env := map[assignmentmotion.Var]int64{"a": 1, "b": 2, "c": 3}
	fmt.Printf("\n%-22s %12s %14s\n", "pipeline", "expr evals", "assign execs")
	for _, row := range []struct {
		name string
		g    *assignmentmotion.Graph
	}{
		{"original (18b)", base},
		{"em (19b: stuck)", em},
		{"em+cp (20a)", emcp},
		{"uniform EM&AM (20b)", glob},
	} {
		r := assignmentmotion.Run(row.g, env, 0)
		fmt.Printf("%-22s %12d %14d\n", row.name, r.Counts.ExprEvals, r.Counts.AssignExecs)
	}
	fmt.Println("\nEM is stuck because t := a+b makes t+c look loop-variant; EM+CP")
	fmt.Println("recovers the expressions but leaves the copies in the loop; the")
	fmt.Println("uniform algorithm moves the assignments themselves.")
}
