// Minilang demonstrates the structured front end: write an ordinary
// imperative program (if/while/do, nested expressions), desugar it into
// the paper's flow-graph model, optimize, and measure.
package main

import (
	"fmt"
	"log"

	"assignmentmotion"
)

const source = `
prog checksum {
  sum := 0
  parity := 0
  i := 0
  do {
    term := (base + i) * (base + i)
    sum := sum + term % 97
    if sum % 2 == 0 {
      parity := parity + 1
    } else {
      parity := parity + base * base
    }
    i := i + 1
  } while i < 8
  out(sum, parity, base * base)
}
`

func main() {
	g, err := assignmentmotion.ParseProgram(source)
	if err != nil {
		log.Fatal(err)
	}
	original := g.Clone()

	fmt.Println("=== desugared flow graph (3-address form) ===")
	fmt.Print(assignmentmotion.Format(g))

	assignmentmotion.Optimize(g)
	if err := assignmentmotion.Apply(g, assignmentmotion.PassTidy); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== after the uniform EM&AM algorithm (+tidy) ===")
	fmt.Print(assignmentmotion.Format(g))

	env := map[assignmentmotion.Var]int64{"base": 12}
	before := assignmentmotion.Run(original, env, 0)
	after := assignmentmotion.Run(g, env, 0)
	fmt.Printf("\ntraces identical: %v\n", fmt.Sprint(before.Trace) == fmt.Sprint(after.Trace))
	fmt.Printf("expression evaluations: %d -> %d\n", before.Counts.ExprEvals, after.Counts.ExprEvals)
	fmt.Printf("assignment executions:  %d -> %d\n", before.Counts.AssignExecs, after.Counts.AssignExecs)

	rep := assignmentmotion.Equivalent(original, g, 30, 4)
	if !rep.Equivalent {
		log.Fatalf("semantics changed: %s", rep.Detail)
	}
	fmt.Printf("verified on %d random inputs\n", rep.Runs)
}
