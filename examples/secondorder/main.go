// Secondorder reproduces the §1.4 comparison (Figures 8 and 9): the
// second-order effect between two assignment patterns that Dhamdhere's
// "immediately profitable" restriction misses and the unrestricted
// assignment motion of the paper captures.
package main

import (
	"fmt"
	"log"

	"assignmentmotion"
)

const fig08 = `
graph fig08 {
  entry n1
  exit n4
  block n1 { if c < 0 then n2 else n3 }
  block n2 {
    x := y + z
    goto n4
  }
  block n3 {
    a := x + y
    goto n4
  }
  block n4 {
    a := x + y
    x := y + z
    out(a, x)
  }
}
`

func main() {
	restricted := assignmentmotion.MustParse(fig08)
	unrestricted := assignmentmotion.MustParse(fig08)
	base := assignmentmotion.MustParse(fig08)

	if err := assignmentmotion.Apply(restricted, assignmentmotion.PassAMRestricted); err != nil {
		log.Fatal(err)
	}
	if err := assignmentmotion.Apply(unrestricted, assignmentmotion.PassAM); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== restricted AM (Dhamdhere [6]) — stuck, Figure 8 ===")
	fmt.Print(assignmentmotion.Format(restricted))
	fmt.Println("\n=== unrestricted AM (this paper) — Figure 9(b) ===")
	fmt.Print(assignmentmotion.Format(unrestricted))

	fmt.Println()
	for _, env := range []map[assignmentmotion.Var]int64{
		{"c": -1, "x": 1, "y": 2, "z": 3},
		{"c": 1, "x": 1, "y": 2, "z": 3},
	} {
		r0 := assignmentmotion.Run(base, env, 0)
		r1 := assignmentmotion.Run(restricted, env, 0)
		r2 := assignmentmotion.Run(unrestricted, env, 0)
		fmt.Printf("c=%2d: assignments original=%d restricted=%d unrestricted=%d (traces equal: %v)\n",
			env["c"], r0.Counts.AssignExecs, r1.Counts.AssignExecs, r2.Counts.AssignExecs,
			fmt.Sprint(r0.Trace) == fmt.Sprint(r2.Trace) && fmt.Sprint(r0.Trace) == fmt.Sprint(r1.Trace))
	}
	fmt.Println("\nThe hoisting of a := x+y eliminates no occurrence of itself, so the")
	fmt.Println("restricted algorithm refuses it — and thereby never unblocks x := y+z.")
}
