// Pipelinecompare generates random structured programs and compares every
// optimization pipeline on them: expression motion alone, assignment
// motion alone (restricted and unrestricted), and the paper's uniform
// algorithm — demonstrating Theorem 5.2's dominance on sampled workloads.
package main

import (
	"fmt"
	"log"

	"assignmentmotion"
)

func main() {
	pipelines := []struct {
		name   string
		passes []assignmentmotion.Pass
	}{
		{"original", nil},
		{"em", []assignmentmotion.Pass{assignmentmotion.PassEM}},
		{"em+cp", []assignmentmotion.Pass{assignmentmotion.PassEMCP}},
		{"am-restricted", []assignmentmotion.Pass{assignmentmotion.PassAMRestricted}},
		{"am", []assignmentmotion.Pass{assignmentmotion.PassAM}},
		{"globalg", []assignmentmotion.Pass{assignmentmotion.PassGlobAlg}},
	}

	const nPrograms = 10
	const nInputs = 8

	exprTotals := map[string]int{}
	assignTotals := map[string]int{}
	runs := 0

	for seed := int64(0); seed < nPrograms; seed++ {
		base := assignmentmotion.RandomStructured(seed, assignmentmotion.GenConfig{Size: 12})
		envs := assignmentmotion.RandomEnvs(base.SourceVars(), nInputs, seed+100)
		for _, p := range pipelines {
			g := base.Clone()
			if err := assignmentmotion.Apply(g, p.passes...); err != nil {
				log.Fatal(err)
			}
			rep := assignmentmotion.Equivalent(base, g, nInputs, seed)
			if !rep.Equivalent {
				log.Fatalf("seed %d: %s changed semantics: %s", seed, p.name, rep.Detail)
			}
			for _, env := range envs {
				r := assignmentmotion.Run(g, env, 0)
				exprTotals[p.name] += r.Counts.ExprEvals
				assignTotals[p.name] += r.Counts.AssignExecs
				if p.name == "original" {
					runs++
				}
			}
		}
	}

	fmt.Printf("%d random structured programs x %d inputs (%d runs per pipeline)\n\n", nPrograms, nInputs, runs)
	fmt.Printf("%-14s %14s %14s\n", "pipeline", "expr evals", "assign execs")
	for _, p := range pipelines {
		fmt.Printf("%-14s %14d %14d\n", p.name, exprTotals[p.name], assignTotals[p.name])
	}

	glob := exprTotals["globalg"]
	fmt.Println()
	for _, p := range pipelines {
		if p.name == "globalg" || p.name == "em+cp" {
			continue // em+cp rewrites expressions and may escape the EM/AM universe
		}
		if glob > exprTotals[p.name] {
			log.Fatalf("dominance violated: globalg %d > %s %d", glob, p.name, exprTotals[p.name])
		}
	}
	fmt.Println("Theorem 5.2 dominance holds: globalg evaluated the fewest expressions")
	fmt.Println("among all EM/AM-universe pipelines on every sampled workload.")
}
