package assignmentmotion

import (
	"testing"
)

// TestStressLargePrograms pushes the whole stack through a few hundred
// instructions of structured and unstructured code, verifying validity,
// semantics, dominance, and tidy cleanliness at scale. Skipped in -short
// runs.
func TestStressLargePrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test in -short mode")
	}
	shapes := []struct {
		name string
		gen  func(int64) *Graph
	}{
		{"structured", func(s int64) *Graph { return RandomStructured(s, GenConfig{Size: 120}) }},
		{"unstructured", func(s int64) *Graph { return RandomUnstructured(s, GenConfig{Size: 120}) }},
	}
	for _, shape := range shapes {
		for seed := int64(0); seed < 3; seed++ {
			base := shape.gen(seed)
			m := Measure(base)
			if m.Instrs < 200 {
				t.Fatalf("%s seed %d: stress workload too small (%d instrs)", shape.name, seed, m.Instrs)
			}
			g := base.Clone()
			res := Optimize(g)
			if err := g.Validate(); err != nil {
				t.Fatalf("%s seed %d: %v", shape.name, seed, err)
			}
			rep := Equivalent(base, g, 5, seed+1)
			if !rep.Equivalent {
				t.Fatalf("%s seed %d: semantics changed: %s", shape.name, seed, rep.Detail)
			}
			if rep.B.ExprEvals > rep.A.ExprEvals {
				t.Errorf("%s seed %d: expression evaluations increased", shape.name, seed)
			}
			if res.AM.Iterations > 64 {
				t.Errorf("%s seed %d: suspicious iteration count %d", shape.name, seed, res.AM.Iterations)
			}
			g.Tidy()
			if err := g.Validate(); err != nil {
				t.Fatalf("%s seed %d: tidy broke the graph: %v", shape.name, seed, err)
			}
			rep2 := Equivalent(base, g, 5, seed+2)
			if !rep2.Equivalent {
				t.Fatalf("%s seed %d: tidy changed semantics: %s", shape.name, seed, rep2.Detail)
			}
		}
	}
}

// TestStressPipelineMatrix runs every public pass over medium random
// programs — nothing may panic or corrupt the graph, whatever the order.
func TestStressPipelineMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test in -short mode")
	}
	sequences := [][]Pass{
		{PassEM, PassAM, PassFlush},
		{PassAM, PassEM},
		{PassMR, PassGlobAlg},
		{PassGlobAlg, PassCopyProp, PassGlobAlg},
		{PassInit, PassFlush},
		{PassSplit, PassTidy, PassGlobAlg, PassTidy},
		{PassAMRestricted, PassEMCP},
	}
	for seed := int64(0); seed < 4; seed++ {
		base := RandomStructured(seed, GenConfig{Size: 25})
		for i, seq := range sequences {
			g := base.Clone()
			if err := Apply(g, seq...); err != nil {
				t.Fatalf("seed %d seq %d: %v", seed, i, err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("seed %d seq %v: invalid graph: %v", seed, seq, err)
			}
			rep := Equivalent(base, g, 4, seed+int64(i))
			if !rep.Equivalent {
				t.Fatalf("seed %d seq %v: semantics changed: %s", seed, seq, rep.Detail)
			}
		}
	}
}
