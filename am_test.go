package assignmentmotion

import (
	"strings"
	"testing"
)

const facadeSrc = `
graph demo {
  entry b1
  exit b4
  block b1 {
    y := c + d
    goto b2
  }
  block b2 {
    if x + z > y + i then b3 else b4
  }
  block b3 {
    y := c + d
    x := y + z
    i := i + x
    goto b2
  }
  block b4 {
    x := y + z
    x := c + d
    out(i, x, y)
  }
}
`

func TestFacadeOptimize(t *testing.T) {
	g, err := Parse(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	orig := g.Clone()
	res := Optimize(g)
	if res.Decomposed == 0 || res.AM.Iterations == 0 {
		t.Errorf("suspicious result: %+v", res)
	}
	rep := Equivalent(orig, g, 10, 1)
	if !rep.Equivalent {
		t.Fatalf("optimize changed semantics: %s", rep.Detail)
	}
	if rep.B.ExprEvals > rep.A.ExprEvals {
		t.Errorf("expression evaluations increased: %d -> %d", rep.A.ExprEvals, rep.B.ExprEvals)
	}
}

func TestFacadeApplyPipelines(t *testing.T) {
	for _, pass := range Passes() {
		g := MustParse(facadeSrc)
		orig := g.Clone()
		if err := Apply(g, pass); err != nil {
			t.Fatalf("%s: %v", pass, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: invalid graph: %v", pass, err)
		}
		if pass == PassDCE || pass == PassPDE {
			continue // not semantics-preserving in general (see docs)
		}
		rep := Equivalent(orig, g, 8, 3)
		if !rep.Equivalent {
			t.Errorf("%s changed semantics: %s", pass, rep.Detail)
		}
	}
	if err := Apply(MustParse(facadeSrc), Pass("bogus")); err == nil {
		t.Error("unknown pass accepted")
	}
}

func TestFacadeFormatRoundTrip(t *testing.T) {
	g := MustParse(facadeSrc)
	text := Format(g)
	if !strings.Contains(text, "graph demo {") {
		t.Errorf("format output unexpected:\n%s", text)
	}
	dot := Dot(g)
	if !strings.Contains(dot, "digraph") {
		t.Errorf("dot output unexpected:\n%s", dot)
	}
}

func TestFacadeRunAndMeasure(t *testing.T) {
	g := MustParse(facadeSrc)
	r := Run(g, map[Var]int64{"x": 10, "z": 1, "c": 2, "d": 3}, 0)
	if len(r.Trace) == 0 {
		t.Error("no output produced")
	}
	m := Measure(g)
	if m.Blocks != 4 || m.Assignments != 6 {
		t.Errorf("measure = %v", m)
	}
}

func TestFacadeGenerators(t *testing.T) {
	gs := RandomStructured(7, GenConfig{Size: 8})
	gu := RandomUnstructured(7, GenConfig{Size: 8})
	for _, g := range []*Graph{gs, gu} {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		orig := g.Clone()
		Optimize(g)
		rep := Equivalent(orig, g, 6, 11)
		if !rep.Equivalent {
			t.Errorf("%s: semantics changed: %s", g.Name, rep.Detail)
		}
	}
	envs := RandomEnvs([]Var{"a", "b"}, 3, 1)
	if len(envs) != 3 || len(envs[0]) != 2 {
		t.Errorf("envs = %v", envs)
	}
}

func TestFacadeBuilder(t *testing.T) {
	b := NewBuilder("built")
	b.Block("s").AssignVar("x", "y").OutVars("x")
	b.Block("e").OutVars("x")
	b.Edge("s", "e")
	g, err := b.Finish("s", "e")
	if err != nil {
		t.Fatal(err)
	}
	r := Run(g, map[Var]int64{"y": 9}, 0)
	if len(r.Trace) != 2 || r.Trace[0] != 9 || r.Trace[1] != 9 {
		t.Errorf("trace = %v", r.Trace)
	}
}
