package assignmentmotion

// The differential-testing layer for the value-numbering/propagation pass
// family (PR 6). Three properties prove the new passes correct the same way
// PR 1 proved the batch optimizer:
//
//   - trace equivalence: `gvn`, `copyprop`, and their composites preserve
//     the Theorem 5.1 oracle over the whole golden corpus;
//   - the cost inequalities: ExprEvals and source AssignExecs never
//     increase under the new pipelines across the ≥ 500-graph fuzz sweep
//     (GVN only ever turns a recomputation into a trivial copy or skip,
//     copy propagation only substitutes and folds — both can only shrink
//     the measures Theorems 5.2–5.4 bound);
//   - algebraic properties: gvn is idempotent (the second run is a no-op,
//     byte-identical Encode) and commutes with tidy on the generated
//     corpus (block bypassing neither creates nor destroys value
//     equivalences).

import (
	"path/filepath"
	"strings"
	"testing"

	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/gvn"
)

// gvnPipelines are the pass sequences the differential layer certifies.
// Plain emcp rides along: this sweep found a real miscompile in it
// (re-initialization clobbering a propagated temporary — see
// TestInitializeClobberGuard in internal/core), so it stays pinned here.
var gvnPipelines = [][]Pass{
	{PassGVN},
	{PassCopyProp},
	{PassGVN, PassCopyProp},
	{PassEMCP},
	{PassGVNEMCP},
	{PassGVN, PassInit, PassAM, PassFlush},
}

func pipelineName(ps []Pass) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = string(p)
	}
	return strings.Join(parts, ",")
}

// TestGVNPipelinesPreserveGoldenCorpus runs every certified pipeline over
// every golden-corpus program and asserts trace equivalence plus the cost
// inequalities against the untouched original.
func TestGVNPipelinesPreserveGoldenCorpus(t *testing.T) {
	for _, path := range goldenInputs(t) {
		base := strings.TrimSuffix(filepath.Base(path), ".fg")
		orig, err := ParseFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, ps := range gvnPipelines {
			ps := ps
			t.Run(base+"/"+pipelineName(ps), func(t *testing.T) {
				g := orig.Clone()
				if err := Apply(g, ps...); err != nil {
					t.Fatalf("Apply: %v", err)
				}
				if err := checkOptimized(orig, g, 4, 1); err != nil {
					t.Errorf("%v\n--- transformed\n%s", err, Format(g))
				}
			})
		}
	}
}

// TestGVNCostInequalityFuzz is the PR 1 differential sweep re-run for the
// new pass family: the same ≥ 500-graph generator ensemble, each graph
// pushed through each certified pipeline, each result checked for trace
// equivalence and non-increasing cost measures. -short keeps a sliver.
func TestGVNCostInequalityFuzz(t *testing.T) {
	type variant struct {
		name string
		gen  func(seed int64) *Graph
	}
	variants := []variant{
		{"structured", func(s int64) *Graph { return RandomStructured(s, GenConfig{Size: 8}) }},
		{"structured-large", func(s int64) *Graph { return RandomStructured(s, GenConfig{Size: 20, Vars: 4}) }},
		{"structured-noloops", func(s int64) *Graph { return RandomStructured(s, GenConfig{Size: 10, NoLoops: true}) }},
		{"unstructured", func(s int64) *Graph { return RandomUnstructured(s, GenConfig{Size: 8}) }},
		{"unstructured-dense", func(s int64) *Graph { return RandomUnstructured(s, GenConfig{Size: 16, OutProb: 0.6}) }},
		{"chain", func(s int64) *Graph { return cfggen.RedundantChain(1 + int(s%24)) }},
	}
	seedsPerVariant := 85 // 6 * 85 = 510 graphs, matching TestDifferentialFuzz
	if testing.Short() {
		seedsPerVariant = 10
	}

	graphs := 0
	for _, v := range variants {
		for s := 0; s < seedsPerVariant; s++ {
			base := v.gen(int64(s))
			for _, ps := range gvnPipelines {
				g := base.Clone()
				if err := Apply(g, ps...); err != nil {
					t.Fatalf("%s/seed%d/%s: %v", v.name, s, pipelineName(ps), err)
				}
				if err := checkOptimized(base, g, 3, int64(s)+1); err != nil {
					t.Errorf("%s/seed%d/%s: %v", v.name, s, pipelineName(ps), err)
				}
			}
			graphs++
		}
	}
	if graphs < 500 && !testing.Short() {
		t.Fatalf("fuzz corpus shrank to %d graphs; keep it ≥ 500", graphs)
	}
}

// TestGVNIdempotent pins value numbering as a one-shot transformation: a
// second run finds no new equivalences (every redundant computation is
// already a copy or skip) and leaves the graph byte-identical.
func TestGVNIdempotent(t *testing.T) {
	type variant struct {
		name string
		gen  func(seed int64) *Graph
	}
	variants := []variant{
		{"structured", func(s int64) *Graph { return RandomStructured(s, GenConfig{Size: 12}) }},
		{"unstructured", func(s int64) *Graph { return RandomUnstructured(s, GenConfig{Size: 10}) }},
		{"chain", func(s int64) *Graph { return cfggen.RedundantChain(1 + int(s%24)) }},
	}
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for _, v := range variants {
		for s := 0; s < seeds; s++ {
			g := v.gen(int64(s))
			gvn.Run(g)
			enc := g.Encode()
			if n := gvn.Run(g); n != 0 {
				t.Errorf("%s/seed%d: second gvn run rewrote %d instructions", v.name, s, n)
			}
			if g.Encode() != enc {
				t.Errorf("%s/seed%d: second gvn run changed the graph", v.name, s)
			}
		}
	}
}

// TestGVNCommutesWithTidy pins gvn∘tidy = tidy∘gvn (byte-identical Format)
// on the generated corpus: tidy only bypasses skip blocks and merges
// straight-line chains, which neither creates nor destroys the value
// equivalences gvn acts on.
func TestGVNCommutesWithTidy(t *testing.T) {
	type variant struct {
		name string
		gen  func(seed int64) *Graph
	}
	variants := []variant{
		{"structured", func(s int64) *Graph { return RandomStructured(s, GenConfig{Size: 12}) }},
		{"unstructured", func(s int64) *Graph { return RandomUnstructured(s, GenConfig{Size: 10}) }},
		{"chain", func(s int64) *Graph { return cfggen.RedundantChain(1 + int(s%24)) }},
	}
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for _, v := range variants {
		for s := 0; s < seeds; s++ {
			g1 := v.gen(int64(s))
			g2 := g1.Clone()

			gvn.Run(g1)
			g1.Tidy()

			g2.Tidy()
			gvn.Run(g2)

			if a, b := Format(g1), Format(g2); a != b {
				t.Errorf("%s/seed%d: gvn and tidy do not commute.\n--- gvn,tidy\n%s\n--- tidy,gvn\n%s", v.name, s, a, b)
			}
		}
	}
}
