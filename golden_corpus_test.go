package assignmentmotion

// Golden-corpus regression test (PR 1): the exact optimized+tidied output
// of every .fg file under internal/corpus/fg and examples/ is pinned
// under testdata/golden. Any pass change that alters output shows up as
// an exact diff here. Re-bless intended changes with:
//
//	go test -run TestGoldenFGCorpus -update .
//
// (The embedded corpus package keeps its own independent snapshot with
// -update-corpus-golden; the two pin the same programs on purpose — a
// divergence between them would itself be a finding.)

import (
	"flag"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGoldens = flag.Bool("update", false, "rewrite testdata/golden outputs")

// goldenSourceDirs are the roots scanned (recursively) for .fg programs.
var goldenSourceDirs = []string{"internal/corpus/fg", "examples"}

func goldenInputs(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, dir := range goldenSourceDirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".fg") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("scanning %s: %v", dir, err)
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		t.Fatal("no .fg inputs found; run from the repository root")
	}
	return files
}

func TestGoldenFGCorpus(t *testing.T) {
	seen := map[string]string{} // base name -> source path, to catch clashes
	for _, path := range goldenInputs(t) {
		base := strings.TrimSuffix(filepath.Base(path), ".fg")
		if prev, dup := seen[base]; dup {
			t.Fatalf("golden name clash: %s and %s", prev, path)
		}
		seen[base] = path

		t.Run(base, func(t *testing.T) {
			g, err := ParseFile(path)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			Optimize(g)
			g.Tidy()
			if err := g.Validate(); err != nil {
				t.Fatalf("%s: optimized graph invalid: %v", path, err)
			}
			got := Format(g)

			goldenPath := filepath.Join("testdata", "golden", base+".globalg.fg")
			if *updateGoldens {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("%s: missing golden (re-bless with: go test -run TestGoldenFGCorpus -update .): %v", path, err)
			}
			if got != string(want) {
				t.Errorf("%s: optimized output changed.\n--- want\n%s\n--- got\n%s", path, want, got)
			}
		})
	}
}
