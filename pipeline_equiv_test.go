package assignmentmotion

// Differential test of the pass-manager refactor: the facade Apply now
// routes everything through one session-threaded pipeline, and this test
// pins its output byte-identical to the legacy implementation — the
// hard-wired switch that ran every pass with a fresh session (or none).
// The legacy behaviour is reconstructed here from the internal packages,
// exactly as the old switch called them, over the whole golden corpus.

import (
	"path/filepath"
	"strings"
	"testing"

	"assignmentmotion/internal/aht"
	"assignmentmotion/internal/am"
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/copyprop"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/dce"
	"assignmentmotion/internal/flush"
	"assignmentmotion/internal/gvn"
	"assignmentmotion/internal/lcm"
	"assignmentmotion/internal/mr"
	"assignmentmotion/internal/pde"
	"assignmentmotion/internal/rae"
)

// legacyApply reproduces the pre-pipeline facade Apply for one pass.
func legacyApply(t *testing.T, g *Graph, p Pass) {
	t.Helper()
	switch p {
	case PassGlobAlg:
		// The old core.Optimize: three phases, one fresh session.
		s := analysis.NewSession()
		defer s.Close()
		g.SplitCriticalEdges()
		core.Initialize(g)
		am.RunWith(g, s)
		flush.RunWith(g, s)
	case PassInit:
		g.SplitCriticalEdges()
		core.Initialize(g)
	case PassAM:
		am.Run(g)
	case PassAMRestricted:
		am.RunRestricted(g)
	case PassAHT:
		g.SplitCriticalEdges()
		aht.Apply(g)
	case PassRAE:
		rae.EliminateBlocks(g)
	case PassEM:
		lcm.Run(g)
	case PassMR:
		mr.Run(g)
	case PassEMCP:
		// The old facade RunEMCP: fresh sessions inside every round.
		for i := 0; i < 16; i++ {
			before := g.Encode()
			lcm.Run(g)
			copyprop.Run(g)
			if g.Encode() == before {
				return
			}
		}
	case PassFlush:
		flush.Run(g)
	case PassCopyProp:
		copyprop.Run(g)
	case PassGVN:
		gvn.Run(g)
	case PassGVNEMCP:
		// Like PassEMCP, but with a value-numbering step opening each round.
		for i := 0; i < 16; i++ {
			before := g.Encode()
			gvn.Run(g)
			lcm.Run(g)
			copyprop.Run(g)
			if g.Encode() == before {
				return
			}
		}
	case PassDCE:
		dce.Run(g)
	case PassPDE:
		pde.Run(g)
	case PassSplit:
		g.SplitCriticalEdges()
	case PassTidy:
		g.Tidy()
	default:
		t.Fatalf("legacyApply: unknown pass %q", p)
	}
}

func TestPipelineMatchesLegacyApply(t *testing.T) {
	for _, path := range goldenInputs(t) {
		base := strings.TrimSuffix(filepath.Base(path), ".fg")
		orig, err := ParseFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, p := range Passes() {
			p := p
			t.Run(base+"/"+string(p), func(t *testing.T) {
				want := orig.Clone()
				legacyApply(t, want, p)

				got := orig.Clone()
				if err := Apply(got, p); err != nil {
					t.Fatalf("Apply(%s): %v", p, err)
				}
				if w, g := Format(want), Format(got); w != g {
					t.Errorf("pipeline output diverges from legacy for %s.\n--- legacy\n%s\n--- pipeline\n%s", p, w, g)
				}
			})
		}
		// A multi-pass pipeline threads ONE session end to end; the legacy
		// switch ran each pass in isolation. The outputs must still match.
		t.Run(base+"/init,am,flush", func(t *testing.T) {
			want := orig.Clone()
			for _, p := range []Pass{PassInit, PassAM, PassFlush} {
				legacyApply(t, want, p)
			}
			got := orig.Clone()
			if err := Apply(got, PassInit, PassAM, PassFlush); err != nil {
				t.Fatal(err)
			}
			if w, g := Format(want), Format(got); w != g {
				t.Errorf("shared-session pipeline diverges from isolated passes.\n--- legacy\n%s\n--- pipeline\n%s", w, g)
			}
		})
	}
}

func TestApplyUnknownPassSuggests(t *testing.T) {
	g := MustParse("graph g { entry b1 exit b1 block b1 { skip } }")
	err := Apply(g, "flus")
	if err == nil || !strings.Contains(err.Error(), `did you mean "flush"`) {
		t.Errorf("want did-you-mean error, got %v", err)
	}
	if err := Apply(g, "zzzz-not-a-pass"); err == nil {
		t.Error("nonsense pass accepted")
	}
}
