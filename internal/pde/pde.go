// Package pde implements partial dead code elimination in the style of
// Knoop/Rüthing/Steffen's companion paper [17], which this paper's
// hoistability analysis is the stated dual of (§4.3.2): assignments are
// *sunk* as far as possible in the direction of control flow to their
// latest safe program points, and assignments that thereby become fully
// dead are removed by strong-liveness dead code elimination. Iterating the
// two steps eliminates partially dead assignments — code executed on paths
// that never use its result.
//
// The sinkability analysis is the literal mirror image of Table 1:
//
//	N-SINKABLE_n = false                            if n = s
//	             = ∏_{m ∈ pred(n)} X-SINKABLE_m     otherwise
//	X-SINKABLE_n = LOC-SINKABLE_n + N-SINKABLE_n · ¬LOC-BLOCKED_n
//
//	N-INSERT_n = N-SINKABLE*_n · LOC-BLOCKED_n
//	X-INSERT_n = X-SINKABLE*_n · (n = e + Σ_{m ∈ succ(n)} ¬N-SINKABLE*_m)
//
// where a sinking candidate is the LAST occurrence of a pattern in a block
// not followed by a blocking instruction, and blocking is the same notion
// as for hoisting (the relation is symmetric).
//
// CAUTION: unlike assignment motion, partial dead code elimination is not
// semantics-preserving in the paper's strict sense — removing a dead
// assignment removes potential run-time errors of its right-hand side
// (§3, footnote 3). Under this module's total interpreter semantics it is
// observationally safe; it is offered as an opt-in companion pass, never
// as part of a paper pipeline.
package pde

import (
	"fmt"

	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/dce"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"
)

func init() {
	pass.Register(pass.Pass{
		Name:        "pde",
		Description: "partial dead code elimination: sink assignments to latest points, then strong-liveness dce, to a fixpoint",
		Ref:         "§4.3.2 (dual of hoisting); Knoop/Rüthing/Steffen [17]",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			st := RunWith(g, s)
			return pass.Stats{Changes: st.Removed, Iterations: st.Iterations}, nil
		},
	})
}

// Info holds the sinkability analysis result, indexed by block ID.
type Info struct {
	U *ir.PatternSet

	LocSinkable []bitvec.Vec
	LocBlocked  []bitvec.Vec
	NSinkable   []bitvec.Vec
	XSinkable   []bitvec.Vec
	NInsert     []bitvec.Vec
	XInsert     []bitvec.Vec

	// candidates[block][patternID] is the instruction index of the
	// block's sinking candidate of that pattern.
	candidates []map[int]int
}

// sinkCandidateIndex returns the index of the sinking candidate of p in b:
// the last occurrence of p not followed (within the block) by a blocking
// instruction. At most one exists, because an occurrence blocks every
// earlier one.
func sinkCandidateIndex(b *ir.Block, p *ir.AssignPattern) (int, bool) {
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		in := &b.Instrs[i]
		if analysis.Executed(in, p) {
			return i, true
		}
		if analysis.BlocksPattern(in, p) {
			return 0, false
		}
	}
	return 0, false
}

// Analyze computes the sinkability analysis and insertion points for g.
func Analyze(g *ir.Graph) *Info {
	return AnalyzeWith(g, nil)
}

// AnalyzeWith is Analyze with the solver work tallied into session s (nil
// for the untallied path). The pattern universe is always built fresh —
// sinking inserts instances in universe order, so reusing a session
// universe with stale entries could perturb the output relative to a
// standalone pde run.
func AnalyzeWith(g *ir.Graph, s *analysis.Session) *Info {
	u := ir.AssignUniverse(g)
	px := analysis.NewPatternIndex(u)
	n, bits := len(g.Blocks), u.Len()
	info := &Info{
		U:           u,
		LocSinkable: make([]bitvec.Vec, n),
		LocBlocked:  make([]bitvec.Vec, n),
		candidates:  make([]map[int]int, n),
	}
	for i, b := range g.Blocks {
		info.LocSinkable[i], info.LocBlocked[i], info.candidates[i] = px.BlockLocalsReverse(b)
	}

	entry := int(g.Entry)
	res := dataflow.Solve(dataflow.Problem{
		N: n, Bits: bits, Dir: dataflow.Forward, Meet: dataflow.All,
		Preds:   func(i int) []int { return nodeIDs(g.Blocks[i].Preds) },
		Succs:   func(i int) []int { return nodeIDs(g.Blocks[i].Succs) },
		Stats:   s.DataflowStats(),
		Workers: s.SolverWorkersFor(n),
		// Forward: solver "in" is the fact at the block entry
		// (N-SINKABLE), "out" at its exit (X-SINKABLE) = LOC-SINKABLE ∨
		// (N-SINKABLE ∧ ¬LOC-BLOCKED), the dense gen/kill form.
		Gen:  info.LocSinkable,
		Kill: info.LocBlocked,
		Boundary: func(i int, in bitvec.Vec) {
			if i == entry {
				in.ClearAll()
			}
		},
	})
	info.NSinkable = res.In
	info.XSinkable = res.Out

	info.NInsert = make([]bitvec.Vec, n)
	info.XInsert = make([]bitvec.Vec, n)
	full := bitvec.NewFull(bits)
	for i, b := range g.Blocks {
		ni := info.NSinkable[i].Copy()
		ni.And(info.LocBlocked[i])
		info.NInsert[i] = ni

		xi := info.XSinkable[i].Copy()
		if b.ID != g.Exit {
			frontier := bitvec.New(bits)
			for _, m := range b.Succs {
				// frontier ∨= ¬N-SINKABLE without materializing the
				// complement.
				frontier.OrAndNot(full, info.NSinkable[int(m)])
			}
			xi.And(frontier)
		}
		info.XInsert[i] = xi
	}
	return info
}

func nodeIDs(ids []ir.NodeID) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

// Sink performs one sinking step on g: it inserts instances at all
// insertion points and removes every sinking candidate. It reports whether
// the program changed. Critical edges must be split (X-INSERT at a branch
// node is realized at the entries of its successors).
func Sink(g *ir.Graph) bool {
	return SinkWith(g, nil)
}

// SinkWith is Sink with the analysis work tallied into session s.
func SinkWith(g *ir.Graph, s *analysis.Session) bool {
	before := g.Encode()
	info := AnalyzeWith(g, s)

	prepend := make([][]ir.Instr, len(g.Blocks))
	appendAtEnd := make([][]ir.Instr, len(g.Blocks))

	for i, b := range g.Blocks {
		if info.XInsert[i].Any() {
			instrs := patternsToInstrs(info.U, info.XInsert[i])
			if _, branch := b.Cond(); branch {
				for _, s := range b.Succs {
					if len(g.Block(s).Preds) != 1 {
						panic(fmt.Sprintf("pde: X-INSERT at branch node %s with unsplit critical edge", b.Name))
					}
					prepend[int(s)] = append(prepend[int(s)], instrs...)
				}
			} else {
				appendAtEnd[i] = append(appendAtEnd[i], instrs...)
			}
		}
	}
	for i := range g.Blocks {
		if info.NInsert[i].Any() {
			// Sunk instances stop just above this (blocked) block: they
			// execute before anything already at the block entry.
			prepend[i] = append(patternsToInstrs(info.U, info.NInsert[i]), prepend[i]...)
		}
	}

	for i, b := range g.Blocks {
		drop := map[int]bool{}
		info.LocSinkable[i].ForEach(func(id int) {
			drop[info.candidates[i][id]] = true
		})
		next := make([]ir.Instr, 0, len(prepend[i])+len(b.Instrs)+len(appendAtEnd[i]))
		next = append(next, prepend[i]...)
		for k, in := range b.Instrs {
			if !drop[k] {
				next = append(next, in)
			}
		}
		next = append(next, appendAtEnd[i]...)
		b.Instrs = next
	}
	g.Normalize()
	return g.Encode() != before
}

// Stats reports what one pde run did.
type Stats struct {
	// Iterations is the number of sink+dce rounds.
	Iterations int
	// Removed is the number of assignments removed as dead.
	Removed int
}

// Run applies partial dead code elimination: critical edges are split,
// then sinking and strong-liveness dead code elimination alternate until
// the program stabilizes.
func Run(g *ir.Graph) Stats {
	return RunWith(g, nil)
}

// RunWith is Run against session s (nil for the untallied path): the
// sinkability and strong-liveness solves report their work into the
// session so the pass pipeline can attribute it to the pde pass.
func RunWith(g *ir.Graph, s *analysis.Session) Stats {
	var st Stats
	g.SplitCriticalEdges()
	n := g.InstrCount() + len(g.Blocks)
	limit := 4*n*n + 64
	for {
		st.Iterations++
		if st.Iterations > limit {
			panic(fmt.Sprintf("pde: no fixpoint after %d iterations", limit))
		}
		before := g.Encode()
		SinkWith(g, s)
		removed, _ := dce.RunWith(g, s)
		st.Removed += removed
		if g.Encode() == before {
			return st
		}
	}
}

func patternsToInstrs(u *ir.PatternSet, v bitvec.Vec) []ir.Instr {
	var out []ir.Instr
	v.ForEach(func(id int) {
		p := u.Pattern(id)
		out = append(out, ir.NewAssign(p.LHS, p.RHS))
	})
	return out
}
