package pde

import (
	"testing"

	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/printer"
	"assignmentmotion/internal/verify"
)

func blockKeys(g *ir.Graph, name string) []string {
	var out []string
	for _, in := range g.BlockByName(name).Instrs {
		out = append(out, in.Key())
	}
	return out
}

func hasInstr(g *ir.Graph, name, key string) bool {
	for _, k := range blockKeys(g, name) {
		if k == key {
			return true
		}
	}
	return false
}

func TestClassicPartiallyDead(t *testing.T) {
	// x := a+b is used on the left arm only and overwritten on the right:
	// pde sinks it into the left arm and dce kills the right-arm copy.
	g := parse.MustParse(`
graph g {
  entry s
  exit e
  block s {
    x := a + b
    if c < 0 then l else r
  }
  block l {
    out(x)
    goto e
  }
  block r {
    x := 1
    goto e
  }
  block e { out(x) }
}
`)
	orig := g.Clone()
	st := Run(g)
	g.MustValidate()
	if hasInstr(g, "s", "x:=a+b") {
		t.Errorf("assignment not sunk out of s:\n%s", printer.String(g))
	}
	if !hasInstr(g, "l", "x:=a+b") {
		t.Errorf("assignment missing from the using arm:\n%s", printer.String(g))
	}
	if hasInstr(g, "r", "x:=a+b") {
		t.Errorf("dead copy survived on the right arm:\n%s", printer.String(g))
	}
	if st.Removed == 0 {
		t.Errorf("stats = %+v, expected dead removals", st)
	}
	// The right path no longer computes a+b.
	right := interp.Run(g, map[ir.Var]int64{"c": 1, "a": 3, "b": 4}, 0)
	if right.Counts.ExprEvals != 0 {
		t.Errorf("right path evaluates %d expressions, want 0", right.Counts.ExprEvals)
	}
	rep := verify.Equivalent(orig, g, 12, 5)
	if !rep.Equivalent {
		t.Errorf("semantics changed (total semantics): %s", rep.Detail)
	}
}

func TestSinkStopsAtUse(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    x := a0 + b0
    q := 1
    out(x)
    goto e
  }
  block e { out(q) }
}
`)
	Sink(g)
	g.MustValidate()
	keys := blockKeys(g, "a")
	// x := a0+b0 may move past q := 1 but not past out(x).
	idxAssign, idxOut := -1, -1
	for i, k := range keys {
		if k == "x:=a0+b0" {
			idxAssign = i
		}
		if k == "out(x)" {
			idxOut = i
		}
	}
	if idxAssign == -1 || idxOut == -1 || idxAssign > idxOut {
		t.Errorf("a = %v", keys)
	}
}

func TestSinkAcrossTransparentBlocks(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    x := a0 + b0
    goto m
  }
  block m {
    q := 1
    goto u
  }
  block u {
    out(x)
    goto e
  }
  block e { out(q) }
}
`)
	orig := g.Clone()
	for Sink(g) {
	}
	g.MustValidate()
	if hasInstr(g, "a", "x:=a0+b0") || hasInstr(g, "m", "x:=a0+b0") {
		t.Errorf("not sunk to the use:\n%s", printer.String(g))
	}
	if got := blockKeys(g, "u"); got[0] != "x:=a0+b0" {
		t.Errorf("u = %v", got)
	}
	rep := verify.Equivalent(orig, g, 10, 3)
	if !rep.Equivalent {
		t.Errorf("semantics changed: %s", rep.Detail)
	}
}

func TestSinkStopsBeforeJoinWithForeignPath(t *testing.T) {
	// The join j is reached from r without the assignment; sinking must
	// stop at l's exit, not enter j.
	g := parse.MustParse(`
graph g {
  entry s
  exit e
  block s { if c < 0 then l else r }
  block l {
    x := a0 + b0
    out(w)
    goto j
  }
  block r {
    x := 2
    goto j
  }
  block j {
    out(x)
    goto e
  }
  block e { out(w) }
}
`)
	orig := g.Clone()
	for Sink(g) {
	}
	g.MustValidate()
	if hasInstr(g, "j", "x:=a0+b0") {
		t.Errorf("assignment pushed into the join:\n%s", printer.String(g))
	}
	// out(w) cannot move, so the sunk assignment must land after it, at
	// the arm exit.
	if got := blockKeys(g, "l"); got[len(got)-1] != "x:=a0+b0" || got[0] != "out(w)" {
		t.Errorf("l = %v (assignment should sink to the arm exit)", got)
	}
	rep := verify.Equivalent(orig, g, 10, 3)
	if !rep.Equivalent {
		t.Errorf("semantics changed: %s", rep.Detail)
	}
}

func TestSinkIntoBranchArms(t *testing.T) {
	// The assignment is used in both arms; sinking distributes it onto
	// both (post-split) edges.
	g := parse.MustParse(`
graph g {
  entry s
  exit e
  block s {
    x := a0 + b0
    if c < 0 then l else r
  }
  block l {
    out(x)
    goto e
  }
  block r {
    y := x
    goto e
  }
  block e { out(y) }
}
`)
	orig := g.Clone()
	g.SplitCriticalEdges()
	for Sink(g) {
	}
	g.MustValidate()
	if hasInstr(g, "s", "x:=a0+b0") {
		t.Errorf("assignment stayed above the branch:\n%s", printer.String(g))
	}
	total := 0
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Key() == "x:=a0+b0" {
				total++
			}
		}
	}
	if total != 2 {
		t.Errorf("assignment occurs %d times, want 2 (one per arm)\n%s", total, printer.String(g))
	}
	rep := verify.Equivalent(orig, g, 10, 3)
	if !rep.Equivalent {
		t.Errorf("semantics changed: %s", rep.Detail)
	}
}

func TestNoSinkIntoLoop(t *testing.T) {
	// The dual of fatal hoisting into loops: sinking an assignment from
	// above a loop into its body would re-execute it per iteration; the
	// all-paths condition must keep it above.
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    x := a0 + b0
    k := 0
    goto hdr
  }
  block hdr { if k < 3 then body else after }
  block body {
    k := k + 1
    out(x)
    goto hdr
  }
  block after { goto e }
  block e { out(x, k) }
}
`)
	orig := g.Clone()
	st := Run(g)
	g.MustValidate()
	env := map[ir.Var]int64{"a0": 2, "b0": 3}
	r1, r2 := interp.Run(orig, env, 0), interp.Run(g, env, 0)
	if !interp.TraceEqual(r1, r2) {
		t.Fatalf("trace changed:\n%s", printer.String(g))
	}
	if r2.Counts.ExprEvals > r1.Counts.ExprEvals {
		t.Errorf("pde increased evaluations %d -> %d (sank into loop?)\niters=%d\n%s",
			r1.Counts.ExprEvals, r2.Counts.ExprEvals, st.Iterations, printer.String(g))
	}
}

func TestRunStableAndSafeOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		orig := cfggen.Structured(seed, cfggen.Config{Size: 10})
		g := orig.Clone()
		Run(g)
		g.MustValidate()
		// Under total semantics pde must preserve traces.
		rep := verify.Equivalent(orig, g, 6, seed+2)
		if !rep.Equivalent {
			t.Fatalf("seed %d: semantics changed: %s\n%s", seed, rep.Detail, printer.String(g))
		}
		// And never increase dynamic cost.
		if rep.B.AssignExecs > rep.A.AssignExecs {
			t.Errorf("seed %d: assignments increased %d -> %d", seed, rep.A.AssignExecs, rep.B.AssignExecs)
		}
		// Stability.
		enc := g.Encode()
		Run(g)
		if g.Encode() != enc {
			t.Errorf("seed %d: pde not idempotent", seed)
		}
	}
}
