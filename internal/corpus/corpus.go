// Package corpus embeds a set of hand-written, realistically shaped
// programs — arithmetic kernels, a state machine, a table interpreter —
// used as additional workloads for the optimality experiments and for
// regression tests beyond the paper's own figures. All programs terminate
// on every input (loops are counter- or fuel-bounded).
package corpus

import (
	"embed"
	"sort"
	"strings"

	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
)

//go:embed fg/*.fg
var files embed.FS

//go:embed fun/*.fg
var funFiles embed.FS

// Names returns the available program names, sorted.
func Names() []string {
	entries, err := files.ReadDir("fg")
	if err != nil {
		panic(err)
	}
	var out []string
	for _, e := range entries {
		out = append(out, strings.TrimSuffix(e.Name(), ".fg"))
	}
	sort.Strings(out)
	return out
}

// Source returns the .fg source text of the named program.
func Source(name string) string {
	data, err := files.ReadFile("fg/" + name + ".fg")
	if err != nil {
		panic("corpus: unknown program " + name)
	}
	return string(data)
}

// EditPair is one base program plus a variant differing in a single
// block — the workload of the incremental re-optimization differential
// suite. Contained reports whether the edit is expected to stay inside
// one region (interface-preserving): a contained pair should replay warm,
// while an escaping one must be detected and fall back cold. Either way
// the optimized result must be byte-identical to a cold run.
type EditPair struct {
	Name      string // pair name, e.g. "diamond"
	Base      string // corpus name of the base program
	Edited    string // corpus name of the edited variant
	Contained bool
}

// EditPairs enumerates the embedded edit pairs: every "ep_<name>_base"
// program matched with each of its "ep_<name>_<variant>" siblings.
func EditPairs() []EditPair {
	var out []EditPair
	for _, base := range Names() {
		name, ok := strings.CutSuffix(base, "_base")
		if !ok || !strings.HasPrefix(name, "ep_") {
			continue
		}
		for _, variant := range Names() {
			if variant == base || !strings.HasPrefix(variant, name+"_") {
				continue
			}
			out = append(out, EditPair{
				Name:      strings.TrimPrefix(name, "ep_") + variant[len(name):],
				Base:      base,
				Edited:    variant,
				Contained: strings.HasSuffix(variant, "_contained"),
			})
		}
	}
	return out
}

// Load parses the named program into a fresh graph.
func Load(name string) *ir.Graph {
	data, err := files.ReadFile("fg/" + name + ".fg")
	if err != nil {
		panic("corpus: unknown program " + name)
	}
	g, err := parse.Parse(string(data))
	if err != nil {
		panic("corpus: " + name + ": " + err.Error())
	}
	return g
}

// FunNames returns the typed front-end program names ("fn_*"), sorted.
// These live beside the flow-graph corpus but in their own dialect, so
// Names()/Load() callers that expect .fg syntax never see them.
func FunNames() []string {
	entries, err := funFiles.ReadDir("fun")
	if err != nil {
		panic(err)
	}
	var out []string
	for _, e := range entries {
		out = append(out, strings.TrimSuffix(e.Name(), ".fg"))
	}
	sort.Strings(out)
	return out
}

// FunSource returns the typed front-end source of the named program.
func FunSource(name string) string {
	data, err := funFiles.ReadFile("fun/" + name + ".fg")
	if err != nil {
		panic("corpus: unknown fun program " + name)
	}
	return string(data)
}

// LoadFun parses and lowers the named typed front-end program into a
// fresh flow graph (calls inlined, expressions decomposed).
func LoadFun(name string) *ir.Graph {
	g, err := parse.ParseFun(FunSource(name))
	if err != nil {
		panic("corpus: " + name + ": " + err.Error())
	}
	return g
}
