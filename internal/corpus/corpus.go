// Package corpus embeds a set of hand-written, realistically shaped
// programs — arithmetic kernels, a state machine, a table interpreter —
// used as additional workloads for the optimality experiments and for
// regression tests beyond the paper's own figures. All programs terminate
// on every input (loops are counter- or fuel-bounded).
package corpus

import (
	"embed"
	"sort"
	"strings"

	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
)

//go:embed fg/*.fg
var files embed.FS

// Names returns the available program names, sorted.
func Names() []string {
	entries, err := files.ReadDir("fg")
	if err != nil {
		panic(err)
	}
	var out []string
	for _, e := range entries {
		out = append(out, strings.TrimSuffix(e.Name(), ".fg"))
	}
	sort.Strings(out)
	return out
}

// Source returns the .fg source text of the named program.
func Source(name string) string {
	data, err := files.ReadFile("fg/" + name + ".fg")
	if err != nil {
		panic("corpus: unknown program " + name)
	}
	return string(data)
}

// Load parses the named program into a fresh graph.
func Load(name string) *ir.Graph {
	data, err := files.ReadFile("fg/" + name + ".fg")
	if err != nil {
		panic("corpus: unknown program " + name)
	}
	g, err := parse.Parse(string(data))
	if err != nil {
		panic("corpus: " + name + ": " + err.Error())
	}
	return g
}
