package corpus

import (
	"embed"
	"flag"
	"os"
	"testing"

	"assignmentmotion/internal/core"
	"assignmentmotion/internal/printer"
	"assignmentmotion/internal/typeinference"
)

//go:embed golden/*.fg
var goldenFiles embed.FS

var updateGolden = flag.Bool("update-corpus-golden", false, "rewrite the golden outputs")

// TestGoldenOutputs pins the exact optimized+tidied output for every
// corpus kernel. Re-bless intended changes with
//
//	go test ./internal/corpus -run TestGolden -update-corpus-golden
func TestGoldenOutputs(t *testing.T) {
	for _, name := range Names() {
		g := Load(name)
		core.Optimize(g)
		g.Tidy()
		got := printer.String(g)
		path := "golden/" + name + ".globalg.fg"
		if *updateGolden {
			// The test binary runs in the package directory, so the path is
			// relative to internal/corpus, exactly like the embed pattern.
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := goldenFiles.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (run with -update-corpus-golden): %v", name, err)
		}
		if got != string(want) {
			t.Errorf("%s: output changed.\n--- want\n%s\n--- got\n%s", name, want, got)
		}
	}
}

// TestGoldenFunOutputs pins the optimized+tidied output of every typed
// front-end corpus program: the lowering (inlined calls, decomposed
// expressions, materialized bools) feeds the same global algorithm, and
// its exact result is a regression surface just like the .fg corpus.
// Each program must also type-check strictly. Re-bless with the same
// -update-corpus-golden flag.
func TestGoldenFunOutputs(t *testing.T) {
	for _, name := range FunNames() {
		if _, _, err := typeinference.Compile(FunSource(name)); err != nil {
			t.Errorf("%s: does not type-check: %v", name, err)
			continue
		}
		g := LoadFun(name)
		core.Optimize(g)
		g.Tidy()
		got := printer.String(g)
		path := "golden/" + name + ".globalg.fg"
		if *updateGolden {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := goldenFiles.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (run with -update-corpus-golden): %v", name, err)
		}
		if got != string(want) {
			t.Errorf("%s: output changed.\n--- want\n%s\n--- got\n%s", name, want, got)
		}
	}
}
