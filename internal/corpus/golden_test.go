package corpus

import (
	"embed"
	"flag"
	"os"
	"testing"

	"assignmentmotion/internal/core"
	"assignmentmotion/internal/printer"
)

//go:embed golden/*.fg
var goldenFiles embed.FS

var updateGolden = flag.Bool("update-corpus-golden", false, "rewrite the golden outputs")

// TestGoldenOutputs pins the exact optimized+tidied output for every
// corpus kernel. Re-bless intended changes with
//
//	go test ./internal/corpus -run TestGolden -update-corpus-golden
func TestGoldenOutputs(t *testing.T) {
	for _, name := range Names() {
		g := Load(name)
		core.Optimize(g)
		g.Tidy()
		got := printer.String(g)
		path := "golden/" + name + ".globalg.fg"
		if *updateGolden {
			// The test binary runs in the package directory, so the path is
			// relative to internal/corpus, exactly like the embed pattern.
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := goldenFiles.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (run with -update-corpus-golden): %v", name, err)
		}
		if got != string(want) {
			t.Errorf("%s: output changed.\n--- want\n%s\n--- got\n%s", name, want, got)
		}
	}
}
