package corpus

import (
	"testing"

	"assignmentmotion/internal/am"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/lcm"
	"assignmentmotion/internal/metrics"
	"assignmentmotion/internal/printer"
	"assignmentmotion/internal/verify"
)

func TestCorpusLoadsAndTerminates(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("corpus too small: %v", names)
	}
	for _, name := range names {
		g := Load(name)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, env := range metrics.RandomEnvs(g.SourceVars(), 10, 77) {
			if r := interp.Run(g, env, 0); r.Truncated {
				t.Errorf("%s: did not terminate on %v", name, env)
			}
		}
	}
}

func TestCorpusPipelinesPreserveSemantics(t *testing.T) {
	pipelines := map[string]func(*ir.Graph){
		"em":            func(g *ir.Graph) { lcm.Run(g) },
		"am":            func(g *ir.Graph) { am.Run(g) },
		"am-restricted": func(g *ir.Graph) { am.RunRestricted(g) },
		"globalg":       func(g *ir.Graph) { core.Optimize(g) },
	}
	for _, name := range Names() {
		base := Load(name)
		for pname, run := range pipelines {
			g := base.Clone()
			run(g)
			g.MustValidate()
			rep := verify.Equivalent(base, g, 12, 9)
			if !rep.Equivalent {
				t.Fatalf("%s/%s: semantics changed: %s\n%s", name, pname, rep.Detail, printer.String(g))
			}
		}
	}
}

func TestCorpusGlobAlgDominates(t *testing.T) {
	improvedSomewhere := false
	for _, name := range Names() {
		base := Load(name)
		glob := base.Clone()
		core.Optimize(glob)
		rep := verify.Equivalent(base, glob, 12, 5)
		if !rep.Equivalent {
			t.Fatalf("%s: semantics changed: %s", name, rep.Detail)
		}
		if rep.B.ExprEvals > rep.A.ExprEvals {
			t.Errorf("%s: globalg increased expression evaluations %d -> %d",
				name, rep.A.ExprEvals, rep.B.ExprEvals)
		}
		if rep.B.ExprEvals < rep.A.ExprEvals {
			improvedSomewhere = true
		}
	}
	if !improvedSomewhere {
		t.Error("globalg improved nothing across the corpus — workloads too easy")
	}
}

// TestQuantizeNeedsAssignmentMotion: the quantize kernel is the running
// example's pattern in the wild — the loop-invariant scale := num/den can
// only leave the loop as an assignment; EM keeps a copy per iteration.
func TestQuantizeNeedsAssignmentMotion(t *testing.T) {
	base := Load("quantize")
	em := base.Clone()
	lcm.Run(em)
	glob := base.Clone()
	core.Optimize(glob)

	env := map[ir.Var]int64{"num": 9, "den": 2, "v": 50}
	rBase := interp.Run(base, env, 0)
	rEM := interp.Run(em, env, 0)
	rGlob := interp.Run(glob, env, 0)
	if !(rGlob.Counts.ExprEvals < rBase.Counts.ExprEvals) {
		t.Errorf("no expression win: %d -> %d", rBase.Counts.ExprEvals, rGlob.Counts.ExprEvals)
	}
	if rGlob.Counts.ExprEvals > rEM.Counts.ExprEvals {
		t.Errorf("globalg (%d) worse than em (%d)", rGlob.Counts.ExprEvals, rEM.Counts.ExprEvals)
	}
	if !(rGlob.Counts.AssignExecs < rEM.Counts.AssignExecs) {
		t.Errorf("globalg assigns (%d) not better than em (%d): the invariant assignment stayed put",
			rGlob.Counts.AssignExecs, rEM.Counts.AssignExecs)
	}
}

// TestDotprodCSE: the duplicated products collapse to one evaluation each.
func TestDotprodCSE(t *testing.T) {
	base := Load("dotprod")
	glob := base.Clone()
	core.Optimize(glob)
	env := map[ir.Var]int64{"u0": 1, "v0": 2, "u1": 3, "v1": 4, "u2": 5, "v2": 6}
	rBase := interp.Run(base, env, 0)
	rGlob := interp.Run(glob, env, 0)
	// Original: 6 products + 3 adds + chk = 9-10 evals; optimized: each
	// product once = 3 products + 3 adds (+ possibly 0-s).
	if rGlob.Counts.ExprEvals >= rBase.Counts.ExprEvals {
		t.Errorf("no CSE win: %d -> %d\n%s", rBase.Counts.ExprEvals, rGlob.Counts.ExprEvals, printer.String(glob))
	}
	if !interp.TraceEqual(rBase, rGlob) {
		t.Error("trace changed")
	}
}
