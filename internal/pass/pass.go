// Package pass is the composition layer of the optimizer: a uniform,
// self-describing abstraction over every transformation in this module and
// a registry + pipeline engine to run them.
//
// The paper's power comes from *composing* transformations — the
// initialization phase, the exhaustive aht/rae fixpoint, the final flush,
// the §6 EM/CP interleaving — and from comparing such compositions against
// each other (Figure 6, Figure 8, the Experiment O table). A Pass packages
// one transformation with its name, description, and paper anchor; every
// transformation package registers itself here at init time, so the
// registry is complete exactly when the facade (or a command) has imported
// the passes it wants to run. A Pipeline executes a pass sequence over ONE
// shared analysis.Session — arena, pattern universe, and iteration orders
// are reused end-to-end, not rebuilt per pass — and instruments every step:
// wall time, instruction/block deltas, dataflow solver work
// (Visits/Sweeps), and arena high-water growth, delivered to an optional
// event hook and aggregated in the run Report.
//
// In Debug mode the pipeline additionally checks inter-pass invariants
// via internal/verify: after every pass the graph must validate and a
// randomized trace-equivalence spot check against the pre-pass program
// must hold, and a violation is reported as an *InvariantError naming the
// offending pass.
package pass

import (
	"fmt"
	"sort"
	"sync"

	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/ir"
)

// Stats is the uniform result shape of every pass: how much changed, in
// the pass's own unit (decomposed sites, eliminated or replaced
// occurrences, split edges, bypassed blocks, ...), and how many fixpoint
// rounds it took (1 for single-sweep passes). Changes == 0 always means
// the pass left the program textually unchanged.
type Stats struct {
	Changes    int `json:"changes"`
	Iterations int `json:"iterations"`
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Changes += other.Changes
	s.Iterations += other.Iterations
}

// Pass is one registered transformation.
type Pass struct {
	// Name is the registry key, as accepted by Apply / amopt -passes.
	Name string
	// Description is a one-line human summary for -passes list.
	Description string
	// Ref anchors the pass in the paper (section, figure, or table), or
	// names the external source for baselines that predate it.
	Ref string
	// RunWith applies the pass to g in place under session s and reports
	// the uniform stats. Implementations must accept a nil session (every
	// analysis entry point is nil-safe); a Pipeline always supplies one.
	//
	// A non-nil error must be one of the internal/fault taxonomy errors
	// (fixpoint overrun, exhausted budget, cancellation, ...); the
	// pipeline decorates it with the pass's name and index and applies
	// its recovery policy. A pass that returns an error may leave g in
	// the state of its last completed sub-step, but never structurally
	// invalid — full rollback to the pre-pass checkpoint is the
	// pipeline's job, not the pass's.
	RunWith func(g *ir.Graph, s *analysis.Session) (Stats, error)
}

// Info is the descriptive projection of a registered pass, used by
// listings and documentation generators.
type Info struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Ref         string `json:"ref"`
}

var (
	regMu    sync.RWMutex
	registry = map[string]Pass{}
)

// Register adds p to the registry. It panics on an empty name, a nil
// RunWith, or a duplicate registration — all programming errors in a pass
// package's init, better loud than shadowed.
func Register(p Pass) {
	if p.Name == "" {
		panic("pass: Register with empty name")
	}
	if p.RunWith == nil {
		panic("pass: Register " + p.Name + " with nil RunWith")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[p.Name]; dup {
		panic("pass: duplicate registration of " + p.Name)
	}
	registry[p.Name] = p
}

// Lookup returns the registered pass of that name.
func Lookup(name string) (Pass, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// Names returns all registered pass names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Infos returns the name/description/reference table of the registry,
// sorted by name.
func Infos() []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	infos := make([]Info, 0, len(registry))
	for _, p := range registry {
		infos = append(infos, Info{Name: p.Name, Description: p.Description, Ref: p.Ref})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Resolve maps names to their registered passes, in order. An unknown name
// fails with a did-you-mean suggestion when a registered name is close.
func Resolve(names ...string) ([]Pass, error) {
	passes := make([]Pass, 0, len(names))
	for _, name := range names {
		p, ok := Lookup(name)
		if !ok {
			if sug := Suggest(name); sug != "" {
				return nil, fmt.Errorf("unknown pass %q (did you mean %q?)", name, sug)
			}
			return nil, fmt.Errorf("unknown pass %q", name)
		}
		passes = append(passes, p)
	}
	return passes, nil
}

// Suggest returns the registered name closest to name in edit distance,
// or "" when nothing is plausibly close (distance > 1/3 of the name's
// length, minimum 2 — "a" should not suggest "am", but "coppyprop" should
// suggest "copyprop").
func Suggest(name string) string {
	best, bestDist := "", len(name)+1
	for _, cand := range Names() {
		if d := editDistance(name, cand); d < bestDist || (d == bestDist && cand < best) {
			best, bestDist = cand, d
		}
	}
	limit := len(name) / 3
	if limit < 2 {
		limit = 2
	}
	if best == "" || bestDist > limit {
		return ""
	}
	return best
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// The two graph-level passes live directly in the IR — bypassing internal
// packages cannot register themselves here without an import cycle, so the
// composition layer registers them.
func init() {
	Register(Pass{
		Name:        "split",
		Description: "split critical edges by inserting synthetic blocks (done implicitly by all motion passes)",
		Ref:         "§3 (edge splitting); Figure 10",
		RunWith: func(g *ir.Graph, s *analysis.Session) (Stats, error) {
			return Stats{Changes: g.SplitCriticalEdges(), Iterations: 1}, nil
		},
	})
	Register(Pass{
		Name:        "tidy",
		Description: "bypass empty synthetic blocks and merge straight-line chains for presentation (run last)",
		Ref:         "presentation only; inverse of edge splitting",
		RunWith: func(g *ir.Graph, s *analysis.Session) (Stats, error) {
			return Stats{Changes: g.Tidy(), Iterations: 1}, nil
		},
	})
}
