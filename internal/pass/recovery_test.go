package pass_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/fault"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/pass"
)

const recoverySrc = `
graph recovery {
  entry b0
  exit b2
  block b0 {
    x := a + b
    y := a + b
    if x < y then b1 else b2
  }
  block b1 {
    z := a + b
    goto b2
  }
  block b2 { out(x, y, z) }
}
`

func recoveryGraph(t *testing.T) *ir.Graph {
	t.Helper()
	return parse.MustParse(recoverySrc)
}

// prependConst returns a valid, semantics-visible mutation: it prepends
// v := c to the entry block.
func prependConst(name string, v ir.Var, c int64) pass.Pass {
	return pass.Pass{
		Name: name,
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			b := g.EntryBlock()
			b.Instrs = append([]ir.Instr{ir.NewAssign(v, ir.ConstTerm(c))}, b.Instrs...)
			g.MarkModified()
			return pass.Stats{Changes: 1, Iterations: 1}, nil
		},
	}
}

func panicking(name string) pass.Pass {
	return pass.Pass{
		Name: name,
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			panic("boom: " + name)
		},
	}
}

func TestFaultPanicUnderFail(t *testing.T) {
	g := recoveryGraph(t)
	pl := pass.New(prependConst("good", "w", 1), panicking("bad"))

	rep, err := pl.Run(g)
	if err == nil {
		t.Fatal("want error from panicking pass under Fail")
	}
	if !errors.Is(err, fault.ErrPassPanic) {
		t.Errorf("error does not match fault.ErrPassPanic: %v", err)
	}
	name, idx, ok := fault.PassOf(err)
	if !ok || name != "bad" || idx != 1 {
		t.Errorf("PassOf = %q, %d, %v; want bad, 1, true", name, idx, ok)
	}
	var pe *fault.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("no *fault.PanicError in chain: %v", err)
	}
	if pe.Value != "boom: bad" || len(pe.Stack) == 0 {
		t.Errorf("panic value/stack not captured: %q, %d stack bytes", pe.Value, len(pe.Stack))
	}
	if rep.Degraded() {
		t.Error("unabsorbed failure must not be recorded as degradation")
	}
	if n := len(rep.Events); n != 2 || rep.Events[1].Outcome != pass.OutcomeFailed {
		t.Errorf("events: %d, last outcome %q; want 2, failed", n, rep.Events[n-1].Outcome)
	}
}

func TestFaultRollbackRestoresByteIdentical(t *testing.T) {
	// The last-good checkpoint is the state after "good" — compute it by
	// running the good prefix alone.
	want := recoveryGraph(t)
	if _, err := pass.New(prependConst("good", "w", 1)).Run(want); err != nil {
		t.Fatal(err)
	}

	g := recoveryGraph(t)
	pl := pass.New(prependConst("good", "w", 1), panicking("bad"), prependConst("never", "v", 2))
	pl.Recovery = pass.Rollback

	rep, err := pl.Run(g)
	if err != nil {
		t.Fatalf("Rollback must absorb the failure, got %v", err)
	}
	if !rep.Degraded() || len(rep.Failures) != 1 {
		t.Fatalf("want exactly one absorbed failure, got %v", rep.Failures)
	}
	if !errors.Is(rep.Failures[0], fault.ErrPassPanic) {
		t.Errorf("absorbed failure is not ErrPassPanic: %v", rep.Failures[0])
	}
	if got := g.Encode(); got != want.Encode() {
		t.Errorf("graph not byte-identical to last-good checkpoint\n--- got\n%s--- want\n%s", got, want.Encode())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("restored graph invalid: %v", err)
	}
	// Rollback stops: the third pass never ran.
	if len(rep.Events) != 2 || rep.Events[1].Outcome != pass.OutcomeRolledBack {
		t.Errorf("events %d, last outcome %q; want 2, rolled-back", len(rep.Events), rep.Events[len(rep.Events)-1].Outcome)
	}
}

func TestFaultSkipAndContinue(t *testing.T) {
	want := recoveryGraph(t)
	if _, err := pass.New(prependConst("good", "w", 1), prependConst("after", "v", 2)).Run(want); err != nil {
		t.Fatal(err)
	}

	g := recoveryGraph(t)
	pl := pass.New(prependConst("good", "w", 1), panicking("bad"), prependConst("after", "v", 2))
	pl.Recovery = pass.SkipAndContinue

	rep, err := pl.Run(g)
	if err != nil {
		t.Fatalf("SkipAndContinue must absorb the failure, got %v", err)
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("want one absorbed failure, got %v", rep.Failures)
	}
	if g.Encode() != want.Encode() {
		t.Errorf("skipping the poisoned pass must preserve the rest of the pipeline\n--- got\n%s--- want\n%s", g.Encode(), want.Encode())
	}
	outcomes := make([]string, len(rep.Events))
	for i, ev := range rep.Events {
		outcomes[i] = ev.Outcome
	}
	if len(outcomes) != 3 || outcomes[0] != pass.OutcomeOK || outcomes[1] != pass.OutcomeSkipped || outcomes[2] != pass.OutcomeOK {
		t.Errorf("outcomes = %v; want [ok skipped ok]", outcomes)
	}
}

func TestFaultInvalidGraphRolledBack(t *testing.T) {
	g := recoveryGraph(t)
	before := g.Encode()
	corrupting := pass.Pass{
		Name: "corrupting",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			g.EntryBlock().Instrs = nil // Validate: block is empty
			g.MarkModified()
			return pass.Stats{Changes: 1, Iterations: 1}, nil
		},
	}
	pl := pass.New(corrupting)
	pl.Recovery = pass.Rollback

	rep, err := pl.Run(g)
	if err != nil {
		t.Fatalf("Rollback must absorb the invalid-graph failure, got %v", err)
	}
	if len(rep.Failures) != 1 || !errors.Is(rep.Failures[0], fault.ErrInvalidGraph) {
		t.Fatalf("want one ErrInvalidGraph failure, got %v", rep.Failures)
	}
	if g.Encode() != before {
		t.Errorf("corrupted graph not rolled back to input\n--- got\n%s--- want\n%s", g.Encode(), before)
	}
}

// TestFaultDebugInvariantRestores is the regression test for the Debug-mode
// bug where an invariant violation returned the mutated graph: a pass that
// produces a valid but semantically different program must fail the trace
// spot check AND leave the caller's graph in the pre-pass state.
func TestFaultDebugInvariantRestores(t *testing.T) {
	g := recoveryGraph(t)
	before := g.Encode()
	diverging := pass.Pass{
		Name: "diverging",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			// x := a + b becomes x := a - b: structurally valid, trace-visible.
			g.EntryBlock().Instrs[0] = ir.NewAssign("x", ir.BinTerm(ir.OpSub, ir.VarOp("a"), ir.VarOp("b")))
			g.MarkModified()
			return pass.Stats{Changes: 1, Iterations: 1}, nil
		},
	}
	pl := pass.New(diverging)
	pl.Debug = true

	_, err := pl.Run(g)
	var inv *pass.InvariantError
	if !errors.As(err, &inv) {
		t.Fatalf("want *InvariantError, got %v", err)
	}
	if inv.Pass != "diverging" || inv.Index != 0 {
		t.Errorf("InvariantError names %q/%d; want diverging/0", inv.Pass, inv.Index)
	}
	if g.Encode() != before {
		t.Errorf("graph left mutated after invariant violation\n--- got\n%s--- want\n%s", g.Encode(), before)
	}
}

func TestFaultBudgetPassWall(t *testing.T) {
	slow := pass.Pass{
		Name: "slow",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			time.Sleep(5 * time.Millisecond)
			return pass.Stats{Iterations: 1}, nil
		},
	}
	pl := pass.New(slow)
	pl.Budget = fault.Budget{MaxPassWall: time.Microsecond}

	_, err := pl.Run(recoveryGraph(t))
	if !errors.Is(err, fault.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *fault.BudgetError
	if !errors.As(err, &be) || be.Resource != "pass wall time" {
		t.Errorf("want pass-wall BudgetError, got %v", err)
	}
}

// TestFaultBudgetThreadedThroughSession checks the mid-pass enforcement
// path: a fixpoint-style pass consults Session.CheckBudget between rounds
// and surfaces the typed budget error through the pipeline.
func TestFaultBudgetThreadedThroughSession(t *testing.T) {
	fixpointish := pass.Pass{
		Name: "fixpointish",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			for round := 1; ; round++ {
				if err := s.CheckBudget(round); err != nil {
					return pass.Stats{Iterations: round - 1}, err
				}
			}
		},
	}
	pl := pass.New(fixpointish)
	pl.Budget = fault.Budget{MaxAMIterations: 7}

	_, err := pl.Run(recoveryGraph(t))
	if !errors.Is(err, fault.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded from session budget, got %v", err)
	}
	var be *fault.BudgetError
	if !errors.As(err, &be) || be.Resource != "am iterations" || be.Limit != 7 {
		t.Errorf("want am-iterations BudgetError with limit 7, got %v", err)
	}
}

// TestFaultCancellationMidPipeline cancels the context from inside the
// second pass and checks the contract: the run stops before the next pass,
// the error is ErrCanceled naming the in-flight pass, it unwraps to
// context.Canceled, it is NOT absorbed by the recovery policy, and the
// completed prefix's work is intact (no partial third-pass mutation).
func TestFaultCancellationMidPipeline(t *testing.T) {
	want := recoveryGraph(t)
	if _, err := pass.New(prependConst("good", "w", 1), prependConst("canceler", "c", 9)).Run(want); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	canceler := prependConst("canceler", "c", 9)
	inner := canceler.RunWith
	canceler.RunWith = func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
		st, err := inner(g, s)
		cancel()
		return st, err
	}

	g := recoveryGraph(t)
	pl := pass.New(prependConst("good", "w", 1), canceler, prependConst("never", "v", 2))
	pl.Recovery = pass.Rollback // must NOT absorb cancellation

	s := analysis.NewSession()
	defer s.Close()
	rep, err := pl.RunWith(ctx, g, s)
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if !errors.Is(err, fault.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("error must match ErrCanceled and context.Canceled: %v", err)
	}
	if !fault.IsCancellation(err) {
		t.Errorf("IsCancellation = false for %v", err)
	}
	name, idx, ok := fault.PassOf(err)
	if !ok || name != "never" || idx != 2 {
		t.Errorf("cancellation names pass %q/%d; want never/2 (the in-flight pass)", name, idx)
	}
	if rep.Degraded() {
		t.Error("cancellation must not be absorbed into Report.Failures")
	}
	if len(rep.Events) != 2 {
		t.Errorf("want 2 completed events before cancellation, got %d", len(rep.Events))
	}
	if g.Encode() != want.Encode() {
		t.Errorf("completed prefix's work must be intact after cancellation\n--- got\n%s--- want\n%s", g.Encode(), want.Encode())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("graph invalid after cancellation: %v", err)
	}
}

// TestFaultNoFixpointFromAM drives the real am pass into its iteration
// backstop via the session budget's MaxAMIterations and checks the typed
// error (legacy panic converted to fault.ErrNoFixpoint is exercised by the
// am package's own tests; here we check pipeline integration end to end).
func TestFaultNoFixpointSurfacesTyped(t *testing.T) {
	overrunning := pass.Pass{
		Name: "overrunning",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			return pass.Stats{}, &fault.NoFixpointError{Proc: "am", Iterations: 64, Limit: 64}
		},
	}
	_, err := pass.New(overrunning).Run(recoveryGraph(t))
	if !errors.Is(err, fault.ErrNoFixpoint) {
		t.Fatalf("want ErrNoFixpoint, got %v", err)
	}
	if !strings.Contains(err.Error(), "overrunning") || !strings.Contains(err.Error(), "64") {
		t.Errorf("error should name the pass and the limit: %v", err)
	}
}

// TestFaultEventErrAndHook checks that failures are visible through the
// Hook path the engine and amopt -trace-passes use.
func TestFaultEventErrAndHook(t *testing.T) {
	g := recoveryGraph(t)
	pl := pass.New(panicking("bad"))
	pl.Recovery = pass.SkipAndContinue
	var hooked []pass.Event
	pl.Hook = func(ev pass.Event) { hooked = append(hooked, ev) }

	if _, err := pl.Run(g); err != nil {
		t.Fatal(err)
	}
	if len(hooked) != 1 || hooked[0].Outcome != pass.OutcomeSkipped || hooked[0].Err == nil {
		t.Fatalf("hook saw %+v; want one skipped event with Err set", hooked)
	}
}

func TestRecoveryPolicyRoundTrip(t *testing.T) {
	for _, p := range []pass.RecoveryPolicy{pass.Fail, pass.Rollback, pass.SkipAndContinue} {
		got, err := pass.ParseRecoveryPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip of %v: got %v, %v", p, got, err)
		}
	}
	if _, err := pass.ParseRecoveryPolicy("explode"); err == nil {
		t.Error("ParseRecoveryPolicy must reject unknown spellings")
	}
}
