package pass

import (
	"fmt"
	"time"

	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/verify"
)

// ArenaMarks is the growth of the session arena's high-water marks during
// one pass: how much additional peak storage (vector words, ints, vector
// headers) the pass forced the arena to hold. Inside a warmed-up fixpoint
// all three are zero — the arena serves every round from storage already
// carved — which is exactly the allocation-free steady state the arena
// exists for, now observable per pass.
type ArenaMarks struct {
	Words int `json:"words"`
	Ints  int `json:"ints"`
	Vecs  int `json:"vecs"`
}

// Event is the instrumentation record of one executed pass within a
// pipeline run, delivered to the pipeline's Hook and collected in its
// Report.
type Event struct {
	// Index is the pass's position in the pipeline.
	Index int `json:"index"`
	// Pass and Ref identify the pass (registry name and paper anchor).
	Pass string `json:"pass"`
	Ref  string `json:"ref,omitempty"`
	// Stats is the pass's uniform change/iteration report.
	Stats Stats `json:"stats"`
	// Wall is the pass's wall-clock time.
	Wall time.Duration `json:"wall"`
	// Instruction and block counts around the pass.
	InstrsBefore int `json:"instrsBefore"`
	InstrsAfter  int `json:"instrsAfter"`
	BlocksBefore int `json:"blocksBefore"`
	BlocksAfter  int `json:"blocksAfter"`
	// Dataflow is the solver work (solves, node visits, order sweeps)
	// performed during the pass under the pipeline's session.
	Dataflow dataflow.SolveStats `json:"dataflow"`
	// Arena is the growth of the session arena's peak footprint.
	Arena ArenaMarks `json:"arena"`
	// Err is the invariant violation detected after the pass (Debug mode
	// only); the pipeline stops at the first violation.
	Err error `json:"-"`
}

// Report aggregates one pipeline run.
type Report struct {
	// Events holds one entry per executed pass, in execution order.
	Events []Event
	// Wall is the whole run's wall-clock time.
	Wall time.Duration
}

// Total sums the uniform stats over all executed passes.
func (r *Report) Total() Stats {
	var t Stats
	for i := range r.Events {
		t.Add(r.Events[i].Stats)
	}
	return t
}

// InvariantError reports that a pass broke an inter-pass invariant in
// Debug mode: it names the offending pass and wraps the underlying
// validation or trace-divergence detail.
type InvariantError struct {
	// Pass and Index identify the offending pass.
	Pass  string
	Index int
	// Err is the underlying violation.
	Err error
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("pass %q (pipeline step %d) broke an invariant: %v", e.Pass, e.Index, e.Err)
}

func (e *InvariantError) Unwrap() error { return e.Err }

// Pipeline is an executable pass sequence. Construct with New or
// FromNames; the zero value runs no passes.
type Pipeline struct {
	passes []Pass
	// Hook, when non-nil, receives one Event per executed pass,
	// immediately after the pass (and its Debug check) finishes. Used by
	// internal/engine for batch statistics and by amopt -trace-passes.
	Hook func(Event)
	// Debug enables inter-pass invariant checking: after every pass the
	// graph is validated and spot-checked for trace equivalence against
	// the pre-pass program on random inputs. Roughly doubles the cost of a
	// run (one clone per pass plus the interpreter runs).
	Debug bool
	// DebugRuns is the number of random environments of the spot check
	// (<= 0 selects 4).
	DebugRuns int
}

// New returns a pipeline over the given passes.
func New(passes ...Pass) *Pipeline {
	return &Pipeline{passes: passes}
}

// FromNames resolves names against the registry and returns the pipeline.
// Unknown names fail with a did-you-mean suggestion.
func FromNames(names ...string) (*Pipeline, error) {
	passes, err := Resolve(names...)
	if err != nil {
		return nil, err
	}
	return New(passes...), nil
}

// Names returns the pipeline's pass names, in execution order.
func (pl *Pipeline) Names() []string {
	names := make([]string, len(pl.passes))
	for i, p := range pl.passes {
		names[i] = p.Name
	}
	return names
}

// Run executes the pipeline on g in place under a fresh session.
func (pl *Pipeline) Run(g *ir.Graph) (Report, error) {
	s := analysis.NewSession()
	defer s.Close()
	return pl.RunWith(g, s)
}

// RunWith executes the pipeline on g in place, threading ONE session
// through every pass: the arena, the pattern universe, and the iteration
// orders warmed by one pass are reused by the next. The returned Report
// carries the per-pass instrumentation; in Debug mode the first invariant
// violation stops the run and is returned as an *InvariantError (the
// report still includes the offending pass's event).
func (pl *Pipeline) RunWith(g *ir.Graph, s *analysis.Session) (Report, error) {
	var rep Report
	start := time.Now()
	defer func() { rep.Wall = time.Since(start) }()
	for i, p := range pl.passes {
		ev := Event{Index: i, Pass: p.Name, Ref: p.Ref}
		var snapshot *ir.Graph
		if pl.Debug {
			snapshot = g.Clone()
		}
		ev.InstrsBefore, ev.BlocksBefore = g.InstrCount(), len(g.Blocks)
		df0 := s.DataflowSnapshot()
		w0, i0, v0 := s.Arena().HighWater()

		t0 := time.Now()
		ev.Stats = p.RunWith(g, s)
		ev.Wall = time.Since(t0)

		ev.InstrsAfter, ev.BlocksAfter = g.InstrCount(), len(g.Blocks)
		ev.Dataflow = s.DataflowSnapshot().Delta(df0)
		w1, i1, v1 := s.Arena().HighWater()
		ev.Arena = ArenaMarks{Words: w1 - w0, Ints: i1 - i0, Vecs: v1 - v0}

		if pl.Debug {
			ev.Err = pl.check(p, i, snapshot, g)
		}
		rep.Events = append(rep.Events, ev)
		if pl.Hook != nil {
			pl.Hook(ev)
		}
		if ev.Err != nil {
			return rep, ev.Err
		}
	}
	return rep, nil
}

// check validates the post-pass graph and spot-checks trace equivalence
// against the pre-pass snapshot. The spot check uses the interpreter's
// default total semantics (division by zero yields 0), under which even
// the opt-in dce/pde passes are observation-preserving, so it applies to
// every registered pass.
func (pl *Pipeline) check(p Pass, idx int, before, after *ir.Graph) error {
	if err := after.Validate(); err != nil {
		return &InvariantError{Pass: p.Name, Index: idx, Err: fmt.Errorf("invalid graph: %w", err)}
	}
	runs := pl.DebugRuns
	if runs <= 0 {
		runs = 4
	}
	rep := verify.Equivalent(before, after, runs, 1)
	if !rep.Equivalent {
		return &InvariantError{Pass: p.Name, Index: idx, Err: fmt.Errorf("trace divergence: %s", rep.Detail)}
	}
	return nil
}
