package pass

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/fault"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/verify"
)

// RecoveryPolicy selects what a Pipeline does when a pass fails — panics,
// overruns its fixpoint backstop, exhausts the budget, or produces an
// invalid graph.
type RecoveryPolicy int

const (
	// Fail stops at the first failure and returns it from RunWith. No
	// pre-pass checkpoints are taken, so a pass that failed mid-mutation
	// may leave the graph in the state of its last completed sub-step
	// (with Debug on, checkpoints exist and the graph is rolled back even
	// under Fail).
	Fail RecoveryPolicy = iota
	// Rollback takes a checkpoint before every pass; on failure the graph
	// is restored to the last-good checkpoint, the run stops, and the
	// typed failure is recorded in the Report (RunWith returns a nil
	// error — the caller asked for degradation, and the returned graph is
	// the valid result of the passes that succeeded).
	Rollback
	// SkipAndContinue is Rollback that does not stop: the offending pass
	// is skipped and the remainder of the pipeline runs.
	SkipAndContinue
)

func (p RecoveryPolicy) String() string {
	switch p {
	case Fail:
		return "fail"
	case Rollback:
		return "rollback"
	case SkipAndContinue:
		return "skip"
	}
	return fmt.Sprintf("RecoveryPolicy(%d)", int(p))
}

// ParseRecoveryPolicy maps the amopt -on-error spelling to a policy.
func ParseRecoveryPolicy(s string) (RecoveryPolicy, error) {
	switch s {
	case "fail":
		return Fail, nil
	case "rollback":
		return Rollback, nil
	case "skip":
		return SkipAndContinue, nil
	}
	return Fail, fmt.Errorf("unknown recovery policy %q (want fail, rollback, or skip)", s)
}

// Outcomes of one executed pass (Event.Outcome).
const (
	// OutcomeOK: the pass ran to completion.
	OutcomeOK = "ok"
	// OutcomeRolledBack: the pass failed and the graph was restored to
	// the pre-pass checkpoint; the run stopped.
	OutcomeRolledBack = "rolled-back"
	// OutcomeSkipped: the pass failed, the graph was restored, and the
	// pipeline continued with the next pass (SkipAndContinue).
	OutcomeSkipped = "skipped"
	// OutcomeFailed: the pass failed under the Fail policy (or failed in
	// a way no policy absorbs, e.g. cancellation); the failure was
	// returned from RunWith.
	OutcomeFailed = "failed"
)

// ArenaMarks is the growth of the session arena's high-water marks during
// one pass: how much additional peak storage (vector words, ints, vector
// headers) the pass forced the arena to hold. Inside a warmed-up fixpoint
// all three are zero — the arena serves every round from storage already
// carved — which is exactly the allocation-free steady state the arena
// exists for, now observable per pass.
type ArenaMarks struct {
	Words int `json:"words"`
	Ints  int `json:"ints"`
	Vecs  int `json:"vecs"`
}

// Event is the instrumentation record of one executed pass within a
// pipeline run, delivered to the pipeline's Hook and collected in its
// Report.
type Event struct {
	// Index is the pass's position in the pipeline.
	Index int `json:"index"`
	// Pass and Ref identify the pass (registry name and paper anchor).
	Pass string `json:"pass"`
	Ref  string `json:"ref,omitempty"`
	// Outcome records how the pass ended: "ok", "rolled-back", "skipped",
	// or "failed" (see the Outcome* constants).
	Outcome string `json:"outcome"`
	// Stats is the pass's uniform change/iteration report.
	Stats Stats `json:"stats"`
	// Wall is the pass's wall-clock time.
	Wall time.Duration `json:"wall"`
	// Instruction and block counts around the pass. After a rollback they
	// describe the restored graph, not the aborted mutation.
	InstrsBefore int `json:"instrsBefore"`
	InstrsAfter  int `json:"instrsAfter"`
	BlocksBefore int `json:"blocksBefore"`
	BlocksAfter  int `json:"blocksAfter"`
	// Dataflow is the solver work (solves, node visits, order sweeps)
	// performed during the pass under the pipeline's session.
	Dataflow dataflow.SolveStats `json:"dataflow"`
	// Arena is the growth of the session arena's peak footprint.
	Arena ArenaMarks `json:"arena"`
	// Err is the typed failure of this pass (nil when Outcome is "ok"):
	// a *fault.PassError wrapping the taxonomy error, or an
	// *InvariantError in Debug mode.
	Err error `json:"-"`
	// Error is Err rendered as text for serialization — JSON reports, the
	// daemon's responses, the persistent result cache — where the typed
	// error itself cannot travel. Empty when the pass succeeded.
	Error string `json:"error,omitempty"`
}

// Report aggregates one pipeline run.
type Report struct {
	// Events holds one entry per executed pass, in execution order.
	Events []Event
	// Wall is the whole run's wall-clock time.
	Wall time.Duration
	// Failures collects the typed failures absorbed by the recovery
	// policy (Rollback stops after its first entry; SkipAndContinue may
	// accumulate several). Failures the policy did not absorb are
	// returned from RunWith instead and do not appear here.
	Failures []error
}

// Degraded reports whether the run completed only by rolling back or
// skipping failed passes. A degraded result is valid and semantics
// preserving but must not be treated (or cached) as the pipeline's true
// fixpoint output.
func (r *Report) Degraded() bool { return len(r.Failures) > 0 }

// Total sums the uniform stats over all executed passes.
func (r *Report) Total() Stats {
	var t Stats
	for i := range r.Events {
		t.Add(r.Events[i].Stats)
	}
	return t
}

// InvariantError reports that a pass broke an inter-pass invariant in
// Debug mode: it names the offending pass and wraps the underlying
// validation or trace-divergence detail.
type InvariantError struct {
	// Pass and Index identify the offending pass.
	Pass  string
	Index int
	// Err is the underlying violation.
	Err error
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("pass %q (pipeline step %d) broke an invariant: %v", e.Pass, e.Index, e.Err)
}

func (e *InvariantError) Unwrap() error { return e.Err }

// Pipeline is an executable pass sequence. Construct with New or
// FromNames; the zero value runs no passes.
type Pipeline struct {
	passes []Pass
	// Hook, when non-nil, receives one Event per executed pass,
	// immediately after the pass (and its Debug check) finishes. Used by
	// internal/engine for batch statistics and by amopt -trace-passes.
	Hook func(Event)
	// Recovery selects the failure handling: Fail (default, stop and
	// return the typed error), Rollback (restore the last-good
	// checkpoint and stop), or SkipAndContinue (restore, skip, run the
	// remainder). Rollback and SkipAndContinue take a pre-pass graph
	// checkpoint (one Clone per pass, the same cost Debug already pays).
	Recovery RecoveryPolicy
	// Budget caps the run's per-pass resources; violations surface as
	// fault.ErrBudgetExceeded and are subject to Recovery. The budget is
	// threaded through the analysis session, so fixpoint passes (am,
	// emcp) enforce it between rounds, not just at pass boundaries.
	Budget fault.Budget
	// Debug enables inter-pass invariant checking: after every pass the
	// graph is validated and spot-checked for trace equivalence against
	// the pre-pass program on random inputs. Roughly doubles the cost of a
	// run (one clone per pass plus the interpreter runs).
	Debug bool
	// DebugRuns is the number of random environments of the spot check
	// (<= 0 selects 4).
	DebugRuns int
	// Wrap, when non-nil, may replace each pass immediately before
	// execution. It is a test-only seam for fault injection
	// (internal/fault/inject): the injector substitutes pass bodies that
	// panic, corrupt the graph, or exhaust budgets at deterministic,
	// seed-selected pipeline positions. Production callers leave it nil.
	Wrap func(index int, p Pass) Pass
}

// New returns a pipeline over the given passes.
func New(passes ...Pass) *Pipeline {
	return &Pipeline{passes: passes}
}

// FromNames resolves names against the registry and returns the pipeline.
// Unknown names fail with a did-you-mean suggestion.
func FromNames(names ...string) (*Pipeline, error) {
	passes, err := Resolve(names...)
	if err != nil {
		return nil, err
	}
	return New(passes...), nil
}

// Names returns the pipeline's pass names, in execution order.
func (pl *Pipeline) Names() []string {
	names := make([]string, len(pl.passes))
	for i, p := range pl.passes {
		names[i] = p.Name
	}
	return names
}

// Run executes the pipeline on g in place under a fresh session.
func (pl *Pipeline) Run(g *ir.Graph) (Report, error) {
	s := analysis.NewSession()
	defer s.Close()
	return pl.RunWith(context.Background(), g, s)
}

// RunWith executes the pipeline on g in place, threading ONE session
// through every pass: the arena, the pattern universe, and the iteration
// orders warmed by one pass are reused by the next. The returned Report
// carries the per-pass instrumentation.
//
// Failure semantics: every pass runs under panic recovery, and with
// Recovery != Fail (or Debug on) a pre-pass checkpoint of the graph is
// taken and the post-pass graph is validated. A failing pass — recovered
// panic, *fault* taxonomy error, budget violation, invalid result, or
// Debug invariant violation — is handled per the Recovery policy; in
// every policy the graph the caller observes is either the pipeline's
// true output or an exact restoration of a checkpoint, never a
// half-mutated intermediate state (under plain Fail without Debug there
// are no checkpoints, which is exactly today's fast path, and the pass's
// own error-state contract applies).
//
// ctx cancels the run between passes (and, through the session, between
// fixpoint rounds inside a pass); cancellation is returned as
// fault.ErrCanceled naming the in-flight pass and is never absorbed by
// the recovery policy, but the checkpoint restoration still applies. A
// nil ctx inherits the session's context (nested pipelines), falling back
// to context.Background.
func (pl *Pipeline) RunWith(ctx context.Context, g *ir.Graph, s *analysis.Session) (Report, error) {
	var rep Report
	start := time.Now()
	defer func() { rep.Wall = time.Since(start) }()

	if ctx == nil {
		ctx = s.Context()
	} else {
		s.SetContext(ctx)
	}
	// A nested pipeline (the "globalg" pass) must not clobber the outer
	// run's budget with its own zero value.
	if !pl.Budget.Zero() {
		s.SetBudget(pl.Budget)
	}
	checkpointing := pl.Debug || pl.Recovery != Fail

	for i, p := range pl.passes {
		if pl.Wrap != nil {
			p = pl.Wrap(i, p)
		}
		if err := ctx.Err(); err != nil {
			return rep, fault.In(p.Name, i, &fault.CanceledError{Err: err})
		}
		ev := Event{Index: i, Pass: p.Name, Ref: p.Ref, Outcome: OutcomeOK}
		var checkpoint *ir.Graph
		if checkpointing {
			checkpoint = g.Clone()
		}
		ev.InstrsBefore, ev.BlocksBefore = g.InstrCount(), len(g.Blocks)
		df0 := s.DataflowSnapshot()
		w0, i0, v0 := s.Arena().HighWater()
		s.BeginPass()

		t0 := time.Now()
		st, err := runProtected(p, g, s)
		ev.Wall = time.Since(t0)
		ev.Stats = st

		ev.Dataflow = s.DataflowSnapshot().Delta(df0)
		w1, i1, v1 := s.Arena().HighWater()
		ev.Arena = ArenaMarks{Words: w1 - w0, Ints: i1 - i0, Vecs: v1 - v0}

		if err == nil {
			err = pl.checkPassBudget(&ev)
		}
		if err == nil && checkpointing {
			err = pl.check(p, i, checkpoint, g)
		}
		if err != nil {
			// An InvariantError already names its pass; everything else
			// gets the fault wrapper.
			if _, isInv := err.(*InvariantError); !isInv {
				err = fault.In(p.Name, i, err)
			}
			ev.Err = err
			ev.Error = err.Error()
			if checkpoint != nil {
				// Restore the last-good graph so callers never observe a
				// half-optimized or invariant-breaking intermediate state.
				// The checkpoint's storage is adopted; it is not used again.
				g.Restore(checkpoint)
			}
			ev.InstrsAfter, ev.BlocksAfter = g.InstrCount(), len(g.Blocks)

			absorb := pl.Recovery != Fail && !fault.IsCancellation(err)
			switch {
			case !absorb:
				ev.Outcome = OutcomeFailed
				if checkpoint != nil {
					ev.Outcome = OutcomeRolledBack
				}
				pl.emit(&rep, ev)
				return rep, err
			case pl.Recovery == Rollback:
				ev.Outcome = OutcomeRolledBack
				rep.Failures = append(rep.Failures, err)
				pl.emit(&rep, ev)
				return rep, nil
			default: // SkipAndContinue
				ev.Outcome = OutcomeSkipped
				rep.Failures = append(rep.Failures, err)
				pl.emit(&rep, ev)
				continue
			}
		}

		ev.InstrsAfter, ev.BlocksAfter = g.InstrCount(), len(g.Blocks)
		pl.emit(&rep, ev)
	}
	return rep, nil
}

// emit records the event and delivers it to the hook.
func (pl *Pipeline) emit(rep *Report, ev Event) {
	rep.Events = append(rep.Events, ev)
	if pl.Hook != nil {
		pl.Hook(ev)
	}
}

// runProtected executes one pass body, converting a panic into a typed
// *fault.PanicError carrying the recovered value and stack.
func runProtected(p Pass, g *ir.Graph, s *analysis.Session) (st Stats, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &fault.PanicError{Value: rec, Stack: debug.Stack()}
		}
	}()
	return p.RunWith(g, s)
}

// checkPassBudget enforces the per-pass budget dimensions after the fact,
// from the event's own measurements. Fixpoint passes additionally enforce
// the budget between rounds through Session.CheckBudget — this check
// catches single-sweep passes that overran, where "stop earlier" was
// never an option.
func (pl *Pipeline) checkPassBudget(ev *Event) error {
	b := pl.Budget
	if b.MaxPassWall > 0 && ev.Wall > b.MaxPassWall {
		return &fault.BudgetError{Resource: "pass wall time", Used: int64(ev.Wall), Limit: int64(b.MaxPassWall)}
	}
	if b.MaxSolverVisits > 0 && ev.Dataflow.Visits > b.MaxSolverVisits {
		return &fault.BudgetError{Resource: "solver visits", Used: int64(ev.Dataflow.Visits), Limit: int64(b.MaxSolverVisits)}
	}
	return nil
}

// check validates the post-pass graph; in Debug mode it additionally
// spot-checks trace equivalence against the pre-pass checkpoint. The spot
// check uses the interpreter's default total semantics (division by zero
// yields 0), under which even the opt-in dce/pde passes are
// observation-preserving, so it applies to every registered pass.
func (pl *Pipeline) check(p Pass, idx int, before, after *ir.Graph) error {
	if err := after.Validate(); err != nil {
		return &fault.InvalidGraphError{Err: err}
	}
	if !pl.Debug {
		return nil
	}
	runs := pl.DebugRuns
	if runs <= 0 {
		runs = 4
	}
	rep := verify.Equivalent(before, after, runs, 1)
	if !rep.Equivalent {
		return &InvariantError{Pass: p.Name, Index: idx, Err: fmt.Errorf("trace divergence: %s", rep.Detail)}
	}
	return nil
}
