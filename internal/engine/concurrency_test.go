package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/ir"
)

// poisonedGraph builds a malformed graph whose optimization panics (a
// successor edge points outside the block slice). Clone preserves the
// corruption, so the panic fires inside the engine's protected section.
func poisonedGraph() *ir.Graph {
	g := ir.NewGraph("poisoned")
	b := g.AddBlock("only")
	b.Instrs = []ir.Instr{ir.NewAssign("x", ir.BinTerm(ir.OpAdd, ir.VarOp("a"), ir.VarOp("b")))}
	b.Succs = append(b.Succs, ir.NodeID(99)) // dangling edge
	g.Entry, g.Exit = b.ID, b.ID
	return g
}

// TestSharedCacheStress hammers one engine's cache from many concurrent
// batches over overlapping graphs. Run under -race (the CI does); the
// assertions double as a determinism check.
func TestSharedCacheStress(t *testing.T) {
	shared := structuredBatch(16, 5)
	reference := make([]string, len(shared))
	for i, g := range shared {
		c := g.Clone()
		if r := New(Options{Parallelism: 1}).Optimize(context.Background(), c); r.Err != nil {
			t.Fatal(r.Err)
		} else {
			reference[i] = r.Graph.Encode()
		}
	}

	e := New(Options{Parallelism: 4})
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		offset := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each client rotates the shared slice so different clients
			// race on different fingerprints at any instant.
			batch := make([]*ir.Graph, len(shared))
			for i := range shared {
				batch[i] = shared[(i+offset)%len(shared)]
			}
			rep := e.OptimizeBatch(context.Background(), batch)
			for i, r := range rep.Results {
				if r.Err != nil {
					errs <- r.Err
					return
				}
				if want := reference[(i+offset)%len(shared)]; r.Graph.Encode() != want {
					errs <- errors.New("concurrent result diverged from serial reference")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := e.CacheStats()
	if st.Entries != len(shared) {
		t.Errorf("cache entries = %d, want %d", st.Entries, len(shared))
	}
	if st.Hits+st.Misses != int64(clients*len(shared)) {
		t.Errorf("hits %d + misses %d != %d lookups", st.Hits, st.Misses, clients*len(shared))
	}
	if st.Hits == 0 {
		t.Error("no cache hits across overlapping concurrent batches")
	}
}

// TestPanicIsolation checks that one pathological graph yields an error
// result while its neighbours succeed, and the engine stays usable.
func TestPanicIsolation(t *testing.T) {
	graphs := []*ir.Graph{
		cfggen.Structured(1, cfggen.Config{Size: 5}),
		poisonedGraph(),
		cfggen.Structured(2, cfggen.Config{Size: 5}),
	}
	e := New(Options{Parallelism: 3})
	rep := e.OptimizeBatch(context.Background(), graphs)
	if rep.Succeeded != 2 || rep.Failed != 1 {
		t.Fatalf("counts: %+v", rep)
	}
	var pe *PanicError
	if !errors.As(rep.Results[1].Err, &pe) {
		t.Fatalf("poisoned graph: err = %v, want *PanicError", rep.Results[1].Err)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack")
	}
	for _, i := range []int{0, 2} {
		if rep.Results[i].Err != nil {
			t.Errorf("healthy graph %d failed: %v", i, rep.Results[i].Err)
		}
	}
	// The engine survives: the same poisoned graph fails again (errors
	// are not cached) and healthy traffic still flows.
	if r := e.Optimize(context.Background(), poisonedGraph()); r.Err == nil {
		t.Error("poisoned graph succeeded on retry")
	}
	if r := e.Optimize(context.Background(), graphs[0]); r.Err != nil || !r.CacheHit {
		t.Errorf("engine unhealthy after panic: err=%v hit=%v", r.Err, r.CacheHit)
	}
}

// TestTimeoutIsolation checks the per-graph deadline: a slow adversarial
// graph times out, fast neighbours in the same batch succeed.
func TestTimeoutIsolation(t *testing.T) {
	graphs := []*ir.Graph{
		cfggen.RedundantChain(128), // ≈ hundreds of ms of AM fixpoint
		cfggen.Structured(3, cfggen.Config{Size: 4}),
	}
	e := New(Options{Parallelism: 2, Timeout: 30 * time.Millisecond})
	rep := e.OptimizeBatch(context.Background(), graphs)
	if !errors.Is(rep.Results[0].Err, context.DeadlineExceeded) {
		t.Errorf("slow graph: err = %v, want deadline exceeded", rep.Results[0].Err)
	}
	if rep.Results[1].Err != nil {
		t.Errorf("fast graph failed: %v", rep.Results[1].Err)
	}
	waitForGoroutines(t, 5*time.Second)
}

// TestCancellationNoLeaks cancels a batch mid-flight and asserts that all
// worker goroutines wind down and the remaining jobs report ctx.Err().
func TestCancellationNoLeaks(t *testing.T) {
	graphs := make([]*ir.Graph, 0, 400)
	for i := 0; i < 400; i++ {
		graphs = append(graphs, cfggen.Structured(int64(i), cfggen.Config{Size: 8}))
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	rep := New(Options{Parallelism: 4, CacheSize: -1}).OptimizeBatch(ctx, graphs)
	if rep.Failed == 0 {
		t.Fatal("batch completed before cancellation; enlarge the workload")
	}
	sawCancel := false
	for _, r := range rep.Results {
		if errors.Is(r.Err, context.Canceled) {
			sawCancel = true
		} else if r.Err != nil {
			t.Fatalf("unexpected error kind: %v", r.Err)
		}
	}
	if !sawCancel {
		t.Error("no result reports context.Canceled")
	}
	waitForGoroutines(t, 5*time.Second)
}

// waitForGoroutines polls until the goroutine count returns to the test
// runtime's baseline, failing after the budget. Abandoned compute
// goroutines (timeout/cancel) must drain on their own.
func waitForGoroutines(t *testing.T, budget time.Duration) {
	t.Helper()
	// Baseline: the count before any engine work in this test binary is
	// not recoverable here, so use a small absolute bound: the testing
	// runtime itself needs only a handful of goroutines.
	deadline := time.Now().Add(budget)
	for {
		n := runtime.NumGoroutine()
		if n <= 8 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("%d goroutines still alive after %v:\n%s", n, budget, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
