package engine

// The incremental-differential suite: for every embedded edit pair and
// every pipeline the daemon serves, an engine that saw the base program
// first must produce a byte-identical result for the edited program —
// whether the edit was contained (region replay), escaping (certified
// refusal, cold fallback), or the pipeline is one the incremental tier
// does not cover at all (custom pipelines run cold by construction).
// This is the acceptance gate for the region tier: reuse is an
// optimization, never an observable.

import (
	"context"
	"testing"

	"assignmentmotion/internal/corpus"
)

func TestEditPairDifferential(t *testing.T) {
	pairs := corpus.EditPairs()
	if len(pairs) < 3 {
		t.Fatalf("edit-pair corpus too small: %+v", pairs)
	}
	pipelines := map[string][]string{
		"default":  nil,
		"emcp":     {"emcp"},
		"gvn-emcp": {"gvn-emcp"},
	}
	for _, pair := range pairs {
		for pname, passes := range pipelines {
			t.Run(pair.Name+"/"+pname, func(t *testing.T) {
				base := corpus.Load(pair.Base)
				edited := corpus.Load(pair.Edited)

				cold := New(Options{Passes: passes}).Optimize(context.Background(), edited)
				if cold.Err != nil {
					t.Fatalf("cold run: %v", cold.Err)
				}

				warm := New(Options{Passes: passes, Incremental: true})
				if r := warm.Optimize(context.Background(), base); r.Err != nil {
					t.Fatalf("base run: %v", r.Err)
				}
				r := warm.Optimize(context.Background(), edited)
				if r.Err != nil {
					t.Fatalf("edited run: %v", r.Err)
				}
				if got, want := r.Graph.Encode(), cold.Graph.Encode(); got != want {
					t.Errorf("warm result differs from cold run (tier=%q)\n--- warm\n%s--- cold\n%s",
						r.CacheTier, got, want)
				}
				if pname == "default" && pair.Contained {
					if r.CacheTier != "region" {
						t.Errorf("contained edit was not served by the region tier (tier=%q)", r.CacheTier)
					}
				}
				if pname != "default" && r.CacheTier == "region" {
					t.Errorf("custom pipeline %q claimed a region hit", pname)
				}
			})
		}
	}
}
