package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/cachestore"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/pass"
)

// incrDiamond builds a chain of nd branch diamonds whose per-diamond
// patterns are permanently blocked at the branch, so a one-block edit
// stays inside its region. Mirrors the incr package's test generator:
// the engine-level tests exercise the same program family through the
// public Optimize surface.
func incrDiamond(nd int, edit map[int]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph diamonds {\n  entry s0\n  exit done\n")
	fmt.Fprintf(&b, "  block s0 {\n    pre := u + v\n    goto d0\n  }\n")
	for i := 0; i < nd; i++ {
		fmt.Fprintf(&b, "  block d%d {\n    if u + v < 7 then a%d else b%d\n  }\n", i, i, i)
		armY := fmt.Sprintf("y%d := p + q", i)
		if v, ok := edit[i]; ok {
			armY = v
		}
		fmt.Fprintf(&b, "  block a%d {\n    x%d := p + q\n    %s\n    goto j%d\n  }\n", i, i, armY, i)
		fmt.Fprintf(&b, "  block b%d {\n    z%d := p - q\n    goto j%d\n  }\n", i, i, i)
		next := fmt.Sprintf("d%d", i+1)
		if i == nd-1 {
			next = "done"
		}
		fmt.Fprintf(&b, "  block j%d {\n    w%d := x%d\n    goto %s\n  }\n", i, i, i, next)
	}
	fmt.Fprintf(&b, "  block done { out(u) }\n}\n")
	return b.String()
}

func parseProg(t *testing.T, src string) *ir.Graph {
	t.Helper()
	g, err := parse.ParseWith(src, parse.Options{})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return g
}

// TestIncrementalWarmReplay: after an incremental engine optimizes a base
// program cold, an edited variant whose change is contained in one region
// is served by the region tier, byte-identical to a cold run of the
// edited program.
func TestIncrementalWarmReplay(t *testing.T) {
	const nd = 30
	base := parseProg(t, incrDiamond(nd, nil))
	edited := parseProg(t, incrDiamond(nd, map[int]string{4: "y4 := x4"}))

	e := New(Options{Incremental: true})
	r1 := e.Optimize(context.Background(), base)
	if r1.Err != nil || r1.CacheHit {
		t.Fatalf("base run: err=%v cacheHit=%v", r1.Err, r1.CacheHit)
	}

	r2 := e.Optimize(context.Background(), edited)
	if r2.Err != nil {
		t.Fatalf("edited run: %v", r2.Err)
	}
	if !r2.CacheHit || r2.CacheTier != "region" {
		t.Fatalf("edited run: cacheHit=%v tier=%q; want a region hit", r2.CacheHit, r2.CacheTier)
	}
	if r2.RegionsTotal < 3 {
		t.Fatalf("expected a multi-region graph, got %d regions", r2.RegionsTotal)
	}
	if r2.RegionsReused != r2.RegionsTotal-1 || r2.RegionsRecomputed != 1 {
		t.Fatalf("regions: total=%d reused=%d recomputed=%d; want all but one reused",
			r2.RegionsTotal, r2.RegionsReused, r2.RegionsRecomputed)
	}

	cold := New(Options{}).Optimize(context.Background(), edited)
	if cold.Err != nil {
		t.Fatalf("cold reference: %v", cold.Err)
	}
	if r2.Graph.Encode() != cold.Graph.Encode() {
		t.Fatalf("warm replay differs from cold run\n--- warm\n%s--- cold\n%s",
			r2.Graph.Encode(), cold.Graph.Encode())
	}
	if r2.Result != cold.Result {
		t.Fatalf("warm statistics differ from cold: %+v vs %+v", r2.Result, cold.Result)
	}

	// The certified result populated the exact tiers under the edited
	// graph's own fingerprint: resubmitting is a plain memory hit.
	r3 := e.Optimize(context.Background(), edited)
	if !r3.CacheHit || r3.CacheTier != "memory" {
		t.Fatalf("resubmit: cacheHit=%v tier=%q; want a memory hit", r3.CacheHit, r3.CacheTier)
	}
}

// TestIncrementalBackendRestart: manifests persist through the backend,
// so a fresh engine over the same store replays an edited program warm —
// the daemon-restart scenario for the region tier.
func TestIncrementalBackendRestart(t *testing.T) {
	store, err := cachestore.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	const nd = 25
	base := parseProg(t, incrDiamond(nd, nil))
	edited := parseProg(t, incrDiamond(nd, map[int]string{12: "y12 := x12"}))

	e1 := New(Options{Backend: store, Incremental: true})
	if r := e1.Optimize(context.Background(), base); r.Err != nil {
		t.Fatalf("record run: %v", r.Err)
	}

	e2 := New(Options{Backend: store, Incremental: true})
	r := e2.Optimize(context.Background(), edited)
	if r.Err != nil {
		t.Fatalf("restarted engine: %v", r.Err)
	}
	if !r.CacheHit || r.CacheTier != "region" {
		t.Fatalf("restarted engine: cacheHit=%v tier=%q; want a region hit", r.CacheHit, r.CacheTier)
	}
	cold := New(Options{}).Optimize(context.Background(), edited)
	if r.Graph.Encode() != cold.Graph.Encode() {
		t.Fatal("restarted warm replay differs from cold run")
	}
}

// TestIncrementalDegradedNeverRecorded: a run that needed recovery must
// not leave a manifest behind — a later edit of the poisoned program gets
// a full cold optimization, never a replay of degraded output.
func TestIncrementalDegradedNeverRecorded(t *testing.T) {
	store, err := cachestore.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	const nd = 25
	base := parseProg(t, incrDiamond(nd, nil))
	edited := parseProg(t, incrDiamond(nd, map[int]string{3: "y3 := x3"}))

	poisoned := New(Options{
		Backend:     store,
		Incremental: true,
		Recovery:    pass.Rollback,
		Inject: func(index int, p pass.Pass) pass.Pass {
			if index != 2 {
				return p
			}
			p.RunWith = func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
				panic("chaos: poisoned pass")
			}
			return p
		},
	})
	r := poisoned.Optimize(context.Background(), base)
	if r.Err != nil || r.Outcome != OutcomeDegraded {
		t.Fatalf("poisoned run: err=%v outcome=%s; want absorbed degradation", r.Err, r.Outcome)
	}
	if n := store.Len(); n != 0 {
		t.Fatalf("degraded run persisted %d entries; want none", n)
	}

	e2 := New(Options{Backend: store, Incremental: true})
	r2 := e2.Optimize(context.Background(), edited)
	if r2.Err != nil {
		t.Fatalf("edited run: %v", r2.Err)
	}
	if r2.CacheHit {
		t.Fatalf("edited run hit tier %q off a degraded predecessor", r2.CacheTier)
	}
}

// TestIncrementalReportAggregation: batch-level region counters roll up
// from per-graph results.
func TestIncrementalReportAggregation(t *testing.T) {
	const nd = 30
	base := parseProg(t, incrDiamond(nd, nil))
	e := New(Options{Incremental: true})
	if r := e.Optimize(context.Background(), base); r.Err != nil {
		t.Fatalf("base run: %v", r.Err)
	}

	edits := []map[int]string{
		{2: "y2 := x2"},
		{17: "y17 := x17"},
	}
	var graphs []*ir.Graph
	for _, ed := range edits {
		graphs = append(graphs, parseProg(t, incrDiamond(nd, ed)))
	}
	rep := e.OptimizeBatch(context.Background(), graphs)
	if rep.Failed != 0 {
		t.Fatalf("batch failed: %+v", rep)
	}
	if rep.RegionHits != len(edits) {
		t.Fatalf("regionHits=%d, want %d (results: %+v)", rep.RegionHits, len(edits), rep.Results)
	}
	if rep.RegionsReused == 0 || rep.RegionsRecomputed != len(edits) {
		t.Fatalf("regionsReused=%d regionsRecomputed=%d", rep.RegionsReused, rep.RegionsRecomputed)
	}
}
