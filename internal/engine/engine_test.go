package engine

import (
	"context"
	"testing"

	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/ir"
)

func structuredBatch(n int, size int) []*ir.Graph {
	graphs := make([]*ir.Graph, n)
	for i := range graphs {
		graphs[i] = cfggen.Structured(int64(i), cfggen.Config{Size: size})
	}
	return graphs
}

func TestBatchBasic(t *testing.T) {
	graphs := structuredBatch(10, 6)
	graphs = append(graphs, graphs[0].Clone()) // a duplicate, cacheable
	before := make([]string, len(graphs))
	for i, g := range graphs {
		before[i] = g.Encode()
	}

	rep := OptimizeBatch(context.Background(), graphs, Options{Parallelism: 4})
	if rep.Graphs != len(graphs) || rep.Succeeded != len(graphs) || rep.Failed != 0 {
		t.Fatalf("counts: %+v", rep)
	}
	if rep.CacheHits < 1 {
		t.Errorf("duplicate graph missed the cache: hits=%d misses=%d", rep.CacheHits, rep.CacheMisses)
	}
	if rep.AMIterations <= 0 || rep.MaxAMIterations <= 0 {
		t.Errorf("missing AM iteration stats: %+v", rep)
	}
	for i, r := range rep.Results {
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		if r.Err != nil {
			t.Fatalf("graph %d (%s): %v", i, r.Name, r.Err)
		}
		if r.Name != graphs[i].Name || r.Graph.Name != graphs[i].Name {
			t.Errorf("graph %d: name %q / %q, want %q", i, r.Name, r.Graph.Name, graphs[i].Name)
		}
		if r.Fingerprint == "" {
			t.Errorf("graph %d: missing fingerprint", i)
		}
		if err := r.Graph.Validate(); err != nil {
			t.Errorf("graph %d: invalid result: %v", i, err)
		}
		if graphs[i].Encode() != before[i] {
			t.Errorf("graph %d: input was mutated", i)
		}
		want := graphs[i].Clone()
		core.Optimize(want)
		if r.Graph.Encode() != want.Encode() {
			t.Errorf("graph %d: engine result differs from serial core.Optimize\n--- engine\n%s--- serial\n%s",
				i, r.Graph.Encode(), want.Encode())
		}
	}
	// The duplicate's result must be byte-identical to the original's.
	if rep.Results[0].Graph.Encode() != rep.Results[len(graphs)-1].Graph.Encode() {
		t.Error("cache hit returned a structurally different graph")
	}
}

func TestEngineWarmReuse(t *testing.T) {
	graphs := structuredBatch(8, 5)
	e := New(Options{Parallelism: 2})
	cold := e.OptimizeBatch(context.Background(), graphs)
	if cold.Failed != 0 || cold.CacheMisses != len(graphs) {
		t.Fatalf("cold run: %+v", cold)
	}
	warm := e.OptimizeBatch(context.Background(), graphs)
	if warm.Failed != 0 || warm.CacheHits != len(graphs) || warm.CacheMisses != 0 {
		t.Fatalf("warm run not fully cached: hits=%d misses=%d", warm.CacheHits, warm.CacheMisses)
	}
	st := e.CacheStats()
	if st.Entries != len(graphs) || st.Hits < int64(len(graphs)) {
		t.Errorf("cache stats: %+v", st)
	}
	for i := range graphs {
		if cold.Results[i].Graph.Encode() != warm.Results[i].Graph.Encode() {
			t.Errorf("graph %d: warm result differs from cold", i)
		}
	}
}

func TestCacheEviction(t *testing.T) {
	e := New(Options{Parallelism: 1, CacheSize: 2})
	ctx := context.Background()
	graphs := structuredBatch(3, 4)
	for _, g := range graphs {
		if r := e.Optimize(ctx, g); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if st := e.CacheStats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	// graphs[0] is the LRU victim: re-optimizing is a miss, not a hit.
	r := e.Optimize(ctx, graphs[0])
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.CacheHit {
		t.Error("evicted entry served as a cache hit")
	}
	// graphs[2] is still resident.
	if r := e.Optimize(ctx, graphs[2]); !r.CacheHit {
		t.Error("resident entry missed the cache")
	}
}

func TestCacheDisabled(t *testing.T) {
	e := New(Options{Parallelism: 1, CacheSize: -1})
	g := cfggen.Structured(1, cfggen.Config{Size: 4})
	ctx := context.Background()
	a := e.Optimize(ctx, g)
	b := e.Optimize(ctx, g)
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	if a.CacheHit || b.CacheHit {
		t.Error("cache hit with caching disabled")
	}
	if st := e.CacheStats(); st != (CacheStats{}) {
		t.Errorf("cache stats with caching disabled: %+v", st)
	}
	if a.Graph.Encode() != b.Graph.Encode() {
		t.Error("repeated optimization is not deterministic")
	}
}

func TestNilGraph(t *testing.T) {
	graphs := structuredBatch(2, 4)
	graphs = append(graphs, nil)
	rep := OptimizeBatch(context.Background(), graphs, Options{Parallelism: 2})
	if rep.Succeeded != 2 || rep.Failed != 1 {
		t.Fatalf("counts: %+v", rep)
	}
	if rep.Results[2].Err == nil {
		t.Error("nil graph did not error")
	}
}

func TestEmptyBatch(t *testing.T) {
	rep := OptimizeBatch(context.Background(), nil, Options{})
	if rep.Graphs != 0 || rep.Succeeded != 0 || rep.Failed != 0 {
		t.Fatalf("empty batch: %+v", rep)
	}
}

func TestPerGraphTimings(t *testing.T) {
	g := cfggen.Structured(7, cfggen.Config{Size: 20})
	r := New(Options{Parallelism: 1}).Optimize(context.Background(), g)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	tm := r.Timings
	if tm.Init <= 0 || tm.AM <= 0 || tm.Flush <= 0 {
		t.Errorf("phase timings not populated: %+v", tm)
	}
	if tm.Total < tm.Init+tm.AM+tm.Flush {
		t.Errorf("total %v < sum of phases %v", tm.Total, tm.Init+tm.AM+tm.Flush)
	}
}
