package engine

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/cachestore"
	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/fault"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"
	"assignmentmotion/internal/printer"
)

// memBackend is an in-memory Backend for tests that don't need a disk.
type memBackend struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemBackend() *memBackend { return &memBackend{m: map[string][]byte{}} }

func (b *memBackend) Get(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	data, ok := b.m[key]
	return data, ok
}

func (b *memBackend) Put(key string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[key] = append([]byte(nil), data...)
	return nil
}

func (b *memBackend) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}

// TestBackendWarmStart: a second engine sharing the first one's backend
// (same configuration) serves the graph from the persistent tier without
// computing — the daemon-restart scenario.
func TestBackendWarmStart(t *testing.T) {
	store, err := cachestore.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	g := cfggen.Structured(7, cfggen.Config{Size: 8})

	e1 := New(Options{Backend: store})
	r1 := e1.Optimize(context.Background(), g)
	if r1.Err != nil || r1.CacheHit {
		t.Fatalf("first run: err=%v cacheHit=%v", r1.Err, r1.CacheHit)
	}
	if store.Len() != 1 {
		t.Fatalf("backend entries = %d; want 1 write-through", store.Len())
	}

	// "Restart": a fresh engine, cold memory cache, same backend.
	e2 := New(Options{Backend: store})
	r2 := e2.Optimize(context.Background(), g)
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if !r2.CacheHit || r2.CacheTier != "disk" {
		t.Fatalf("restarted engine: cacheHit=%v tier=%q; want a disk hit", r2.CacheHit, r2.CacheTier)
	}
	if r2.Graph.Encode() != r1.Graph.Encode() {
		t.Fatalf("disk-served result differs from the computed one:\n--- disk\n%s--- computed\n%s",
			r2.Graph.Encode(), r1.Graph.Encode())
	}
	if len(r2.Passes) != len(r1.Passes) {
		t.Fatalf("persisted events: got %d, want %d", len(r2.Passes), len(r1.Passes))
	}

	// The disk hit populated the memory tier: a third request is a
	// memory hit.
	r3 := e2.Optimize(context.Background(), g)
	if !r3.CacheHit || r3.CacheTier != "memory" {
		t.Fatalf("after disk hit: cacheHit=%v tier=%q; want a memory hit", r3.CacheHit, r3.CacheTier)
	}
}

// TestCacheKeySeparatesRecoveryPolicy: two engines sharing one backend,
// same passes, different recovery policies must never share a cache
// entry.
func TestCacheKeySeparatesRecoveryPolicy(t *testing.T) {
	backend := newMemBackend()
	g := cfggen.Structured(11, cfggen.Config{Size: 8})
	passes := []string{"init", "am", "flush"}

	e1 := New(Options{Backend: backend, Passes: passes, Recovery: pass.Fail})
	if r := e1.Optimize(context.Background(), g); r.Err != nil || r.CacheHit {
		t.Fatalf("seed run: err=%v cacheHit=%v", r.Err, r.CacheHit)
	}

	e2 := New(Options{Backend: backend, Passes: passes, Recovery: pass.SkipAndContinue})
	r := e2.Optimize(context.Background(), g)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.CacheHit {
		t.Fatalf("engine with Recovery=skip got a cache hit (tier %q) from the Recovery=fail entry", r.CacheTier)
	}
	if backend.len() != 2 {
		t.Fatalf("backend entries = %d; want 2 distinct keys for 2 recovery policies", backend.len())
	}
}

// TestCacheKeySeparatesBudget: same passes, different budgets must never
// share a cache entry — a result computed under no budget must not be
// served to a request whose tight budget would have rejected the
// computation.
func TestCacheKeySeparatesBudget(t *testing.T) {
	backend := newMemBackend()
	g := cfggen.Structured(13, cfggen.Config{Size: 8})
	passes := []string{"init", "am", "flush"}

	e1 := New(Options{Backend: backend, Passes: passes})
	if r := e1.Optimize(context.Background(), g); r.Err != nil || r.CacheHit {
		t.Fatalf("seed run: err=%v cacheHit=%v", r.Err, r.CacheHit)
	}

	// A budget too tight for any AM fixpoint: with a shared key this
	// request would be served the unbudgeted result as a cache hit; with
	// the fixed key it computes for itself and fails honestly.
	tight := fault.Budget{MaxAMIterations: 1}
	e2 := New(Options{Backend: backend, Passes: passes, Budget: tight})
	r := e2.Optimize(context.Background(), g)
	if r.CacheHit {
		t.Fatalf("engine with a tight budget got a cache hit (tier %q) from the unbudgeted entry", r.CacheTier)
	}

	// And the key separation is symmetric within one configuration: the
	// same tight-budget engine re-asked gives a consistent (cached or
	// recomputed) answer, never the other configuration's entry.
	r2 := e2.Optimize(context.Background(), g)
	if (r2.Err == nil) != (r.Err == nil) {
		t.Fatalf("tight-budget engine is inconsistent across calls: first err=%v, second err=%v", r.Err, r2.Err)
	}
}

// TestBackendDegradedNeverPersisted: a degraded result (recovery policy
// absorbed an injected failure) must not be written to the persistent
// tier any more than to the memory tier.
func TestBackendDegradedNeverPersisted(t *testing.T) {
	backend := newMemBackend()
	g := cfggen.Structured(17, cfggen.Config{Size: 8})

	boom := func(index int, p pass.Pass) pass.Pass {
		if p.Name == "am" {
			p.RunWith = func(_ *ir.Graph, _ *analysis.Session) (pass.Stats, error) {
				panic("injected")
			}
		}
		return p
	}
	e := New(Options{Backend: backend, Recovery: pass.SkipAndContinue, Inject: boom})
	r := e.Optimize(context.Background(), g)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Outcome != OutcomeDegraded {
		t.Fatalf("outcome = %s; want degraded", r.Outcome)
	}
	if backend.len() != 0 {
		t.Fatalf("degraded result was persisted: %d backend entries", backend.len())
	}
}

// TestBackendCorruptEntryRecomputed: a backend serving garbage is treated
// as a miss; the engine recomputes and the answer matches a clean run.
func TestBackendCorruptEntryRecomputed(t *testing.T) {
	backend := newMemBackend()
	g := cfggen.Structured(19, cfggen.Config{Size: 8})

	e1 := New(Options{Backend: backend})
	r1 := e1.Optimize(context.Background(), g)
	if r1.Err != nil {
		t.Fatal(r1.Err)
	}

	// Corrupt every stored payload in place.
	backend.mu.Lock()
	for k := range backend.m {
		backend.m[k] = []byte("not a persisted entry")
	}
	backend.mu.Unlock()

	e2 := New(Options{Backend: backend})
	r2 := e2.Optimize(context.Background(), g)
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if r2.CacheHit {
		t.Fatal("corrupt backend entry was served as a cache hit")
	}
	if r2.Graph.Encode() != r1.Graph.Encode() {
		t.Fatal("recompute after corruption diverged from the original result")
	}
}

// faultyBackend misses every Get and errors every Put — a persistent
// tier that is present but completely broken.
type faultyBackend struct {
	puts atomic.Int64
}

func (b *faultyBackend) Get(string) ([]byte, bool) { return nil, false }

func (b *faultyBackend) Put(string, []byte) error {
	b.puts.Add(1)
	return errFaultyBackend
}

var errFaultyBackend = errors.New("backend write refused")

// TestBackendPutFailureNeverFailsRequests: a backend whose every write
// errors costs persistence and nothing else — requests still answer
// optimized, and the memory tier still serves repeats.
func TestBackendPutFailureNeverFailsRequests(t *testing.T) {
	fb := &faultyBackend{}
	g := cfggen.Structured(29, cfggen.Config{Size: 8})
	e := New(Options{Backend: fb})

	r1 := e.Optimize(context.Background(), g)
	if r1.Err != nil || r1.Outcome != OutcomeOptimized {
		t.Fatalf("first run with broken backend: err=%v outcome=%s", r1.Err, r1.Outcome)
	}
	if fb.puts.Load() == 0 {
		t.Fatal("write-through was never attempted")
	}

	r2 := e.Optimize(context.Background(), g)
	if !r2.CacheHit || r2.CacheTier != "memory" {
		t.Fatalf("repeat: cacheHit=%v tier=%q; want a memory hit despite the failed Put", r2.CacheHit, r2.CacheTier)
	}
	if r2.Graph.Encode() != r1.Graph.Encode() {
		t.Fatal("memory-served result diverged after a Put failure")
	}
}

// TestBackendCorruptEntryVariants: every corruption shape a backend can
// serve — broken JSON, an empty payload, a future entry version, a
// well-formed entry wrapping an unparseable program — degrades to a
// local compute with the correct answer, and never poisons the memory
// tier.
func TestBackendCorruptEntryVariants(t *testing.T) {
	g := cfggen.Structured(31, cfggen.Config{Size: 8})

	// Learn the real cache key (and the reference answer) from a clean
	// run against a scratch backend.
	seed := newMemBackend()
	ref := New(Options{Backend: seed}).Optimize(context.Background(), g)
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}
	if seed.len() != 1 {
		t.Fatalf("seed backend has %d entries, want 1", seed.len())
	}
	var key string
	seed.mu.Lock()
	for k := range seed.m {
		key = k
	}
	seed.mu.Unlock()

	wrongVersion, err := json.Marshal(persistedEntry{
		Version: persistVersion + 1,
		Program: printer.String(ref.Graph),
	})
	if err != nil {
		t.Fatal(err)
	}
	unparseable, err := json.Marshal(persistedEntry{
		Version: persistVersion,
		Program: "graph ??? {",
	})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		payload []byte
	}{
		{"invalid JSON", []byte("{not json")},
		{"empty payload", nil},
		{"wrong version", wrongVersion},
		{"unparseable program", unparseable},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			backend := newMemBackend()
			backend.Put(key, c.payload)
			e := New(Options{Backend: backend})

			r := e.Optimize(context.Background(), g)
			if r.Err != nil {
				t.Fatalf("request failed on corrupt backend data: %v", r.Err)
			}
			if r.CacheHit {
				t.Fatalf("corrupt entry served as a %q-tier hit", r.CacheTier)
			}
			if r.Graph.Encode() != ref.Graph.Encode() {
				t.Fatal("local recompute diverged from the reference answer")
			}

			r2 := e.Optimize(context.Background(), g)
			if !r2.CacheHit || r2.CacheTier != "memory" {
				t.Fatalf("repeat: cacheHit=%v tier=%q; want a memory hit", r2.CacheHit, r2.CacheTier)
			}
			if r2.Graph.Encode() != ref.Graph.Encode() {
				t.Fatal("memory tier was poisoned by the corrupt backend entry")
			}
		})
	}
}

// TestOutcomeHookSeesEveryJob: the hook fires once per job with the final
// result, for computed, cached, and failed jobs alike.
func TestOutcomeHookSeesEveryJob(t *testing.T) {
	var mu sync.Mutex
	var seen []GraphResult
	opts := Options{
		Timeout: 5 * time.Second,
		OutcomeHook: func(r GraphResult) {
			mu.Lock()
			seen = append(seen, r)
			mu.Unlock()
		},
	}
	e := New(opts)
	g := cfggen.Structured(23, cfggen.Config{Size: 8})
	if r := e.Optimize(context.Background(), g); r.Err != nil {
		t.Fatal(r.Err)
	}
	if r := e.Optimize(context.Background(), g); !r.CacheHit {
		t.Fatal("second run should hit the memory cache")
	}
	if r := e.Optimize(context.Background(), nil); r.Err == nil {
		t.Fatal("nil graph should fail")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 {
		t.Fatalf("hook fired %d times; want 3", len(seen))
	}
	if seen[0].CacheHit || seen[0].Err != nil {
		t.Fatalf("job 0: %+v", seen[0])
	}
	if !seen[1].CacheHit || seen[1].CacheTier != "memory" {
		t.Fatalf("job 1 should be a memory hit: %+v", seen[1])
	}
	if seen[2].Err == nil {
		t.Fatalf("job 2 should carry the nil-graph error: %+v", seen[2])
	}
}
