package engine

import (
	"context"
	"fmt"
	"testing"

	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/verify"
)

// diffCheck verifies one engine result against its untouched input:
// structural validity, trace equivalence on random inputs, and the
// paper's cost-measure inequalities. ExprEvals may never increase
// (Theorem 5.2); executed *source* assignments may never increase
// either — raw AssignExecs can rise because initialization introduces
// temporary assignments, which Theorems 5.3/5.4 account separately, so
// the inequality is stated net of TempAssignExecs.
func diffCheck(t *testing.T, label string, base, opt *ir.Graph, seed int64) {
	t.Helper()
	if err := opt.Validate(); err != nil {
		t.Fatalf("%s: invalid optimized graph: %v", label, err)
	}
	rep := verify.Equivalent(base, opt, 3, seed)
	if !rep.Equivalent {
		t.Fatalf("%s: semantics changed: %s", label, rep.Detail)
	}
	if rep.B.ExprEvals > rep.A.ExprEvals {
		t.Errorf("%s: expression evaluations increased %d -> %d", label, rep.A.ExprEvals, rep.B.ExprEvals)
	}
	srcA := rep.A.AssignExecs - rep.A.TempAssignExecs
	srcB := rep.B.AssignExecs - rep.B.TempAssignExecs
	if srcB > srcA {
		t.Errorf("%s: source assignment executions increased %d -> %d", label, srcA, srcB)
	}
}

// TestDifferentialAgainstSerial runs random graphs of every generator
// family through the parallel engine and checks each result both against
// the serial core.Optimize output (bit-identical) and against the
// original program (trace-equivalent, non-increasing costs).
func TestDifferentialAgainstSerial(t *testing.T) {
	var graphs []*ir.Graph
	for seed := int64(0); seed < 12; seed++ {
		graphs = append(graphs,
			cfggen.Structured(seed, cfggen.Config{Size: 10}),
			cfggen.Unstructured(seed, cfggen.Config{Size: 10}),
		)
	}
	for k := 1; k <= 6; k++ {
		graphs = append(graphs, cfggen.RedundantChain(k))
	}

	rep := OptimizeBatch(context.Background(), graphs, Options{Parallelism: 4})
	if rep.Failed != 0 {
		t.Fatalf("failures in batch: %+v", rep)
	}
	for i, r := range rep.Results {
		label := fmt.Sprintf("%d/%s", i, r.Name)
		want := graphs[i].Clone()
		core.Optimize(want)
		if r.Graph.Encode() != want.Encode() {
			t.Errorf("%s: engine output differs from serial core.Optimize", label)
		}
		diffCheck(t, label, graphs[i], r.Graph, int64(i)+1)
	}
}

// TestDifferentialCacheHit asserts that a result served from the cache is
// as good as a freshly computed one: equivalent to ITS OWN original, not
// just to the graph that populated the entry.
func TestDifferentialCacheHit(t *testing.T) {
	e := New(Options{Parallelism: 1})
	ctx := context.Background()
	base := cfggen.Structured(42, cfggen.Config{Size: 12})

	miss := e.Optimize(ctx, base)
	if miss.Err != nil || miss.CacheHit {
		t.Fatalf("first optimization: err=%v hit=%v", miss.Err, miss.CacheHit)
	}
	dup := base.Clone()
	dup.Name = "renamed_duplicate"
	hit := e.Optimize(ctx, dup)
	if hit.Err != nil || !hit.CacheHit {
		t.Fatalf("duplicate optimization: err=%v hit=%v", hit.Err, hit.CacheHit)
	}
	if hit.Graph.Name != "renamed_duplicate" {
		t.Errorf("cache hit kept the donor's name %q", hit.Graph.Name)
	}
	if hit.Result != miss.Result {
		t.Errorf("cache hit result stats differ: %+v vs %+v", hit.Result, miss.Result)
	}
	diffCheck(t, "cache-hit", dup, hit.Graph, 7)
}
