package engine

// The persistent cache tier. The in-memory fingerprint cache fronts an
// optional Backend: on a memory miss the single-flight leader consults
// the backend before computing, and a successfully computed, non-degraded
// result is written through. The backend outlives the engine (and the
// process — see internal/cachestore), which is why cacheKey.String()
// encodes the complete pipeline configuration, not just the fingerprint.

import (
	"encoding/json"

	"assignmentmotion/internal/core"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/pass"
	"assignmentmotion/internal/printer"
)

// Backend is a pluggable second cache tier keyed by the engine's full
// cache-key string. Implementations must be safe for concurrent use and
// must return stored bytes verbatim or report a miss — the engine treats
// any payload it cannot decode as a miss and recomputes, so a backend may
// be lossy (evicting, crash-recovering) but must never be wrong.
// internal/cachestore is the on-disk implementation.
type Backend interface {
	// Get returns the payload stored under key, or ok=false.
	Get(key string) (data []byte, ok bool)
	// Put stores data under key. Errors are the backend's own concern
	// (the engine ignores them — a failed write costs a recompute later,
	// nothing else).
	Put(key string, data []byte) error
}

// persistVersion guards the persisted entry layout: bump it when the
// shape changes and old entries silently become misses.
const persistVersion = 1

// persistedEntry is the JSON shape of one result in the persistent tier.
// The graph travels as its .fg rendering (round-trippable through Parse),
// so entries are debuggable with a text editor and survive any change to
// in-memory graph representation.
type persistedEntry struct {
	Version int          `json:"v"`
	Program string       `json:"program"`
	Result  core.Result  `json:"result"`
	Events  []pass.Event `json:"events"`
}

// encodeEntry renders a completed computation for the persistent tier.
func encodeEntry(g *ir.Graph, res core.Result, events []pass.Event) ([]byte, error) {
	return json.Marshal(persistedEntry{
		Version: persistVersion,
		Program: printer.String(g),
		Result:  res,
		Events:  events,
	})
}

// decodeEntry parses a persisted payload back into a graph + statistics.
// Any defect — wrong version, undecodable JSON, unparseable program —
// reports ok=false and the caller recomputes.
func decodeEntry(data []byte) (g *ir.Graph, res core.Result, events []pass.Event, ok bool) {
	var ent persistedEntry
	if json.Unmarshal(data, &ent) != nil || ent.Version != persistVersion {
		return nil, core.Result{}, nil, false
	}
	// Optimized programs contain generated h<digits> temporaries, so they
	// parse with AllowTemps (printer.Fprint guarantees the round trip
	// reproduces the same Encode value).
	g, err := parse.ParseWith(ent.Program, parse.Options{AllowTemps: true})
	if err != nil || g.Validate() != nil {
		return nil, core.Result{}, nil, false
	}
	return g, ent.Result, ent.Events, true
}

// backendGet consults the persistent tier, decoding defensively.
func (e *Engine) backendGet(key cacheKey) (g *ir.Graph, res core.Result, events []pass.Event, ok bool) {
	if e.opts.Backend == nil {
		return nil, core.Result{}, nil, false
	}
	data, ok := e.opts.Backend.Get(key.String())
	if !ok {
		return nil, core.Result{}, nil, false
	}
	return decodeEntry(data)
}

// backendPut writes a clean result through to the persistent tier.
// Encoding or write failures are dropped: the in-memory tier already has
// the entry, and the worst case is a recompute after a restart.
func (e *Engine) backendPut(key cacheKey, g *ir.Graph, res core.Result, events []pass.Event) {
	if e.opts.Backend == nil {
		return
	}
	if data, err := encodeEntry(g, res, events); err == nil {
		e.opts.Backend.Put(key.String(), data)
	}
}
