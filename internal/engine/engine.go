// Package engine is the concurrent batch front end to the paper's global
// algorithm: it runs the three-phase pipeline (initialization → exhaustive
// aht/rae assignment-motion fixpoint → final flush, exactly core.Optimize)
// over many flow graphs at once on a bounded worker pool.
//
// The engine is built for heavy, untrusted traffic:
//
//   - a worker pool with configurable parallelism (default GOMAXPROCS);
//   - per-graph panic recovery and deadline/cancellation via
//     context.Context, so one pathological graph fails alone instead of
//     taking the batch down;
//   - a content-addressed result cache keyed by ir.Graph.Fingerprint with
//     single-flight deduplication, so duplicate graphs are optimized once
//     per engine lifetime;
//   - per-phase observability: timings, AM iteration counts, and cache
//     hit/miss counters aggregated into a batch Report.
//
// Inputs are never mutated: each job optimizes a private clone and the
// optimized clone is returned in its GraphResult. That makes the engine
// directly usable as a differential-testing harness (compare the result
// against the untouched input with internal/verify).
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"assignmentmotion/internal/am"
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/flush"
	"assignmentmotion/internal/ir"
)

// DefaultCacheSize bounds the result cache when Options.CacheSize is 0.
const DefaultCacheSize = 1024

// Options tune one Engine.
type Options struct {
	// Parallelism is the number of worker goroutines per batch.
	// <= 0 selects runtime.GOMAXPROCS(0).
	Parallelism int
	// Timeout bounds the optimization of a single graph. 0 means no
	// per-graph bound (the batch context still applies). A graph that
	// exceeds its deadline yields a context.DeadlineExceeded result;
	// its abandoned computation finishes in the background and is
	// discarded.
	Timeout time.Duration
	// CacheSize is the maximum number of cached results. 0 selects
	// DefaultCacheSize; negative disables caching entirely.
	CacheSize int
}

func (o Options) parallelism() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

// PanicError is the recovered panic of one optimization job.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("optimization panicked: %v", e.Value) }

// PhaseTimings records wall time spent per phase of the global algorithm.
type PhaseTimings struct {
	Init  time.Duration `json:"init"`
	AM    time.Duration `json:"am"`
	Flush time.Duration `json:"flush"`
	Total time.Duration `json:"total"`
}

func (t *PhaseTimings) add(u PhaseTimings) {
	t.Init += u.Init
	t.AM += u.AM
	t.Flush += u.Flush
	t.Total += u.Total
}

// GraphResult is the outcome of one graph in a batch.
type GraphResult struct {
	// Index is the graph's position in the input slice.
	Index int
	// Name is the input graph's name.
	Name string
	// Graph is the optimized clone of the input; nil when Err is set.
	Graph *ir.Graph
	// Result carries the per-phase statistics of the optimization (or of
	// the cached optimization on a cache hit).
	Result core.Result
	// Err is non-nil when the job failed: a *PanicError for recovered
	// panics, context.DeadlineExceeded / context.Canceled for deadline
	// and cancellation, or a validation error for nil inputs.
	Err error
	// CacheHit reports that the result was served from the cache.
	CacheHit bool
	// Fingerprint is the input's content address ("" if fingerprinting
	// itself failed on a malformed graph).
	Fingerprint string
	// Timings is the wall time of this job's phases (≈ 0 on cache hits).
	Timings PhaseTimings
}

// Report aggregates one batch.
type Report struct {
	Graphs      int           `json:"graphs"`
	Succeeded   int           `json:"succeeded"`
	Failed      int           `json:"failed"`
	CacheHits   int           `json:"cacheHits"`
	CacheMisses int           `json:"cacheMisses"`
	Parallelism int           `json:"parallelism"`
	Wall        time.Duration `json:"wall"`
	// Phase sums per-phase wall time across all jobs (CPU-parallel, so
	// the sum may exceed Wall).
	Phase PhaseTimings `json:"phase"`
	// AMIterations sums assignment-motion rounds across all jobs;
	// MaxAMIterations is the worst single graph.
	AMIterations    int `json:"amIterations"`
	MaxAMIterations int `json:"maxAmIterations"`
	// Results holds one entry per input graph, in input order.
	Results []GraphResult `json:"-"`
}

// Engine is a reusable batch optimizer. The zero value is not usable;
// construct with New. An Engine's cache persists across batches, so a
// long-lived engine serves repeated traffic with warm-cache latencies.
type Engine struct {
	opts  Options
	cache *cache // nil when caching is disabled
}

// New returns an Engine with the given options.
func New(opts Options) *Engine {
	e := &Engine{opts: opts}
	if opts.CacheSize >= 0 {
		size := opts.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		e.cache = newCache(size)
	}
	return e
}

// CacheStats reports the engine's cumulative cache behaviour.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// OptimizeBatch runs the global algorithm over every graph, at most
// opts.Parallelism at a time, and returns the aggregated report. Inputs
// are not mutated. The call honours ctx: once ctx is done, unstarted jobs
// are skipped and running jobs are abandoned, all reporting ctx's error.
func (e *Engine) OptimizeBatch(ctx context.Context, graphs []*ir.Graph) Report {
	start := time.Now()
	results := make([]GraphResult, len(graphs))

	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := e.opts.parallelism()
	if workers > len(graphs) {
		workers = len(graphs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = e.optimizeJob(ctx, i, graphs[i])
			}
		}()
	}
feed:
	for i := range graphs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			for j := i; j < len(graphs); j++ {
				results[j] = GraphResult{Index: j, Err: ctx.Err()}
				if graphs[j] != nil {
					results[j].Name = graphs[j].Name
				}
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	rep := Report{Graphs: len(graphs), Parallelism: workers, Results: results}
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			rep.Failed++
			continue
		}
		rep.Succeeded++
		if r.CacheHit {
			rep.CacheHits++
		} else {
			rep.CacheMisses++
		}
		rep.Phase.add(r.Timings)
		rep.AMIterations += r.Result.AM.Iterations
		if r.Result.AM.Iterations > rep.MaxAMIterations {
			rep.MaxAMIterations = r.Result.AM.Iterations
		}
	}
	rep.Wall = time.Since(start)
	return rep
}

// Optimize runs a single graph through the engine (pool of one). It is a
// convenience for callers that want caching, recovery, and timeouts
// without assembling a slice.
func (e *Engine) Optimize(ctx context.Context, g *ir.Graph) GraphResult {
	return e.optimizeJob(ctx, 0, g)
}

// OptimizeBatch is the one-shot form: a fresh Engine with opts, one batch.
func OptimizeBatch(ctx context.Context, graphs []*ir.Graph, opts Options) Report {
	return New(opts).OptimizeBatch(ctx, graphs)
}

// optimizeJob runs one graph with full isolation: fingerprinting, cache
// lookup, single-flight coordination, and the protected computation.
func (e *Engine) optimizeJob(ctx context.Context, idx int, g *ir.Graph) (r GraphResult) {
	r = GraphResult{Index: idx}
	if g == nil {
		r.Err = errors.New("engine: nil graph")
		return r
	}
	r.Name = g.Name
	if err := ctx.Err(); err != nil {
		r.Err = err
		return r
	}
	defer func() {
		// Fingerprinting malformed graphs may itself panic; everything
		// heavier is already recovered in the compute goroutine.
		if rec := recover(); rec != nil {
			r.Err = &PanicError{Value: rec, Stack: debug.Stack()}
			r.Graph = nil
		}
	}()
	start := time.Now()
	defer func() { r.Timings.Total = time.Since(start) }()

	if e.cache == nil {
		out, res, tm, err := e.compute(ctx, g)
		r.Graph, r.Result, r.Timings, r.Err = out, res, tm, err
		return r
	}

	fp := g.Fingerprint()
	r.Fingerprint = fp.String()
	if out, res, ok := e.cache.lookup(fp); ok {
		out.Name = g.Name // fingerprints ignore names; keep the caller's
		r.Graph, r.Result, r.CacheHit = out, res, true
		return r
	}
	leader, fl := e.cache.claim(fp)
	if !leader {
		select {
		case <-fl.done:
			if fl.ok {
				e.cache.hits.Add(1)
				out := fl.graph.Clone()
				out.Name = g.Name
				r.Graph, r.Result, r.CacheHit = out, fl.result, true
				return r
			}
			// The leader failed; fall through and compute for ourselves
			// (deterministic failures will fail here too, transient ones
			// — a timeout under load — get their honest retry).
		case <-ctx.Done():
			r.Err = ctx.Err()
			return r
		}
	}
	e.cache.misses.Add(1)
	out, res, tm, err := e.compute(ctx, g)
	r.Result, r.Timings = res, tm
	if leader {
		if err != nil {
			e.cache.abandon(fp, fl)
		} else {
			e.cache.complete(fp, fl, out.Clone(), res)
		}
	}
	r.Graph, r.Err = out, err
	return r
}

// computation is what the worker goroutine sends back.
type computation struct {
	g   *ir.Graph
	res core.Result
	tm  PhaseTimings
	err error
}

// compute runs the three phases of core.Optimize on a private clone of g,
// timing each phase, in a child goroutine so the deadline can abandon it.
// Context state is checked between phases, so cooperative cancellation is
// usually prompt; a truly stuck phase is abandoned at the deadline and its
// goroutine drains in the background (all phases terminate — the fixpoint
// is monotone — so abandoned work is garbage-collected, not leaked
// forever).
func (e *Engine) compute(ctx context.Context, g *ir.Graph) (*ir.Graph, core.Result, PhaseTimings, error) {
	if e.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.opts.Timeout)
		defer cancel()
	}
	ch := make(chan computation, 1)
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				ch <- computation{err: &PanicError{Value: rec, Stack: debug.Stack()}}
			}
		}()
		var c computation
		clone := g.Clone()
		clone.SplitCriticalEdges()

		// One analysis session for all phases: the AM fixpoint and the
		// final flush share the pooled arena and the universe caches.
		s := analysis.NewSession()
		defer s.Close()

		t := time.Now()
		c.res.Decomposed = core.Initialize(clone)
		c.tm.Init = time.Since(t)
		if err := ctx.Err(); err != nil {
			ch <- computation{err: err}
			return
		}

		t = time.Now()
		c.res.AM = am.RunWith(clone, s)
		c.tm.AM = time.Since(t)
		if err := ctx.Err(); err != nil {
			ch <- computation{err: err}
			return
		}

		t = time.Now()
		c.res.Flush = flush.RunWith(clone, s)
		c.tm.Flush = time.Since(t)

		c.g = clone
		ch <- c
	}()
	select {
	case c := <-ch:
		c.tm.Total = c.tm.Init + c.tm.AM + c.tm.Flush
		return c.g, c.res, c.tm, c.err
	case <-ctx.Done():
		return nil, core.Result{}, PhaseTimings{}, ctx.Err()
	}
}
