// Package engine is the concurrent batch front end to the pass pipeline:
// by default it runs the paper's global algorithm (initialization →
// exhaustive aht/rae assignment-motion fixpoint → final flush, exactly
// core.Optimize) over many flow graphs at once on a bounded worker pool,
// and Options.Passes swaps in any pipeline composed from the pass
// registry.
//
// The engine is built for heavy, untrusted traffic:
//
//   - a worker pool with configurable parallelism (default GOMAXPROCS);
//   - per-graph panic recovery and deadline/cancellation via
//     context.Context, so one pathological graph fails alone instead of
//     taking the batch down;
//   - a content-addressed result cache keyed by ir.Graph.Fingerprint plus
//     the pipeline spec, with single-flight deduplication, so duplicate
//     graphs are optimized once per engine lifetime — and a cached
//     "init,am,flush" result is never served to an "em,copyprop" batch;
//   - per-pass observability: every job runs through an instrumented
//     pipeline threading ONE analysis session end to end, and its
//     pass.Events (wall time, instruction deltas, solver visits/sweeps,
//     arena growth) are aggregated into the batch Report and streamed to
//     Options.Hook.
//
// Inputs are never mutated: each job optimizes a private clone and the
// optimized clone is returned in its GraphResult. That makes the engine
// directly usable as a differential-testing harness (compare the result
// against the untouched input with internal/verify).
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/fault"
	"assignmentmotion/internal/incr"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"

	// The engine resolves Options.Passes against the pass registry, so it
	// must link every self-registering pass package — not just the ones it
	// calls directly. Without these, a binary embedding the engine but not
	// the root facade (amoptd) silently serves a partial registry: its
	// /v1/passes listing and name resolution miss copyprop, dce, em, emcp,
	// gvn, gvn-emcp, mr, and pde. The facade's own blank imports mask the
	// gap in any test binary that imports assignmentmotion.
	_ "assignmentmotion/internal/aht"
	_ "assignmentmotion/internal/copyprop"
	_ "assignmentmotion/internal/dce"
	_ "assignmentmotion/internal/emcp"
	_ "assignmentmotion/internal/gvn"
	_ "assignmentmotion/internal/lcm"
	_ "assignmentmotion/internal/mr"
	_ "assignmentmotion/internal/pde"
	_ "assignmentmotion/internal/rae"
)

// DefaultCacheSize bounds the result cache when Options.CacheSize is 0.
const DefaultCacheSize = 1024

// Options tune one Engine.
type Options struct {
	// Parallelism is the number of worker goroutines per batch.
	// <= 0 selects runtime.GOMAXPROCS(0).
	Parallelism int
	// Timeout bounds the optimization of a single graph. 0 means no
	// per-graph bound (the batch context still applies). A graph that
	// exceeds its deadline yields a context.DeadlineExceeded result;
	// its abandoned computation finishes in the background and is
	// discarded.
	Timeout time.Duration
	// CacheSize is the maximum number of cached results. 0 selects
	// DefaultCacheSize; negative disables caching entirely.
	CacheSize int
	// Passes names the pipeline every job runs, resolved against the pass
	// registry. Empty selects the global algorithm (init, am, flush —
	// core.Optimize). Unknown names fail each job with a did-you-mean
	// error.
	Passes []string
	// Hook, when non-nil, receives one pass.Event per executed pass of
	// every computed (non-cached) job, tagged with the graph's name. It is
	// called from worker goroutines, possibly concurrently; the callee
	// must synchronize.
	Hook func(graph string, ev pass.Event)
	// Recovery selects the per-pass failure handling inside every job's
	// pipeline: Fail (default — a failing pass fails the whole graph,
	// reported as a typed fault error), Rollback (restore the last-good
	// checkpoint, stop, return the partially optimized graph as a
	// degraded result), or SkipAndContinue (restore, skip the offending
	// pass, run the remainder). Degraded results are never cached.
	Recovery pass.RecoveryPolicy
	// Budget caps each job's per-pass resources (wall time, solver
	// visits, AM fixpoint rounds); violations surface as
	// fault.ErrBudgetExceeded and are subject to Recovery.
	Budget fault.Budget
	// Inject, when non-nil, may replace each pipeline pass immediately
	// before execution (pass.Pipeline.Wrap). It is a test-only seam for
	// the fault-injection harness; production callers leave it nil.
	Inject func(index int, p pass.Pass) pass.Pass
	// Backend, when non-nil, is the persistent second cache tier behind
	// the in-memory cache (see internal/cachestore): consulted on memory
	// misses, written through on clean computations. Requires the
	// in-memory cache (CacheSize >= 0); with caching disabled the backend
	// is ignored. Several engines may share one Backend — the key encodes
	// the full pipeline configuration, so they never cross-contaminate.
	Backend Backend
	// Incremental enables the region-granular third tier behind the exact
	// memory/disk tiers: clean default-pipeline runs are recorded as
	// versioned region artifacts (through Backend when present, in
	// process otherwise), and a resubmitted graph that differs from a
	// recorded predecessor in a single region's interior re-optimizes
	// only that region, certified byte-identical to the cold run. Jobs
	// the certification refuses fall back to the cold path — the tier
	// costs time on a refusal, never correctness. Requires the in-memory
	// cache (CacheSize >= 0) and applies only to the default pipeline
	// (empty Passes).
	Incremental bool
	// OutcomeHook, when non-nil, receives every job's final GraphResult —
	// computed, cached, or failed — exactly once, from the worker
	// goroutine that finished it. The daemon's metrics hang off this; the
	// callee must synchronize.
	OutcomeHook func(r GraphResult)
	// SolverWorkers bounds intra-graph parallel dataflow solving: solves
	// over large graphs condense the CFG into SCC regions and fan
	// independent regions out to up to this many goroutines (see
	// internal/dataflow). <= 0 selects GOMAXPROCS divided by the batch
	// parallelism, so graph-level and region-level workers together stay
	// near the core count; 1 forces every solve serial.
	SolverWorkers int
}

func (o Options) solverWorkers() int {
	if o.SolverWorkers > 0 {
		return o.SolverWorkers
	}
	w := runtime.GOMAXPROCS(0) / o.parallelism()
	if w < 1 {
		w = 1
	}
	return w
}

func (o Options) parallelism() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

// pipelineSpec is the cache-key component identifying the pipeline: the
// default global algorithm is the empty string, everything else the
// comma-joined pass list.
func (o Options) pipelineSpec() string { return strings.Join(o.Passes, ",") }

// PanicError is the recovered panic of one optimization job. It is the
// fault taxonomy's panic error: errors.Is(err, fault.ErrPassPanic)
// matches it.
type PanicError = fault.PanicError

// Outcome classifies what happened to one graph in a batch.
type Outcome string

const (
	// OutcomeOptimized: the full pipeline ran to completion (or the
	// result was served from the cache, which only ever holds completed
	// runs).
	OutcomeOptimized Outcome = "optimized"
	// OutcomeDegraded: at least one pass failed and the recovery policy
	// absorbed it (rolled back or skipped); the returned graph is valid
	// and semantics preserving but not the pipeline's full fixpoint.
	// Degraded results are never cached.
	OutcomeDegraded Outcome = "degraded"
	// OutcomeFailed: the job produced no graph; Err carries the typed
	// failure.
	OutcomeFailed Outcome = "failed"
)

// PhaseTimings records wall time spent per phase of the global algorithm.
// The Init/AM/Flush split is populated from the pipeline events of the
// passes with those names; a custom pipeline without them only fills
// Total.
type PhaseTimings struct {
	Init  time.Duration `json:"init"`
	AM    time.Duration `json:"am"`
	Flush time.Duration `json:"flush"`
	Total time.Duration `json:"total"`
}

func (t *PhaseTimings) add(u PhaseTimings) {
	t.Init += u.Init
	t.AM += u.AM
	t.Flush += u.Flush
	t.Total += u.Total
}

// record folds one pipeline event into the phase split.
func (t *PhaseTimings) record(ev pass.Event) {
	switch ev.Pass {
	case "init":
		t.Init += ev.Wall
	case "am":
		t.AM += ev.Wall
	case "flush":
		t.Flush += ev.Wall
	}
}

// GraphResult is the outcome of one graph in a batch.
type GraphResult struct {
	// Index is the graph's position in the input slice.
	Index int
	// Name is the input graph's name.
	Name string
	// Graph is the optimized clone of the input; nil when Err is set.
	Graph *ir.Graph
	// Result carries the per-phase statistics of the optimization (or of
	// the cached optimization on a cache hit). It is populated by the
	// default global pipeline; custom Options.Passes report through
	// Passes instead.
	Result core.Result
	// Passes holds one instrumented event per executed pass, in pipeline
	// order. On a cache hit they are the events of the computation that
	// populated the cache.
	Passes []pass.Event
	// Outcome classifies the result: optimized (full pipeline), degraded
	// (recovery policy rolled back or skipped a failing pass), or failed.
	Outcome Outcome
	// Failures holds the typed per-pass failures the recovery policy
	// absorbed when Outcome is degraded (each a *fault.PassError naming
	// the offending pass).
	Failures []error
	// Err is non-nil when the job failed: a typed internal/fault error
	// (*fault.PassError wrapping panic/fixpoint/budget failures),
	// context.DeadlineExceeded / context.Canceled for deadline and
	// cancellation, or a validation error for nil inputs and unknown
	// pass names.
	Err error
	// CacheHit reports that the result was served from the cache.
	CacheHit bool
	// CacheTier names the tier that served a hit: "memory" (the engine's
	// LRU, including single-flight followers), "disk" (the persistent
	// Backend), or "region" (a certified incremental replay that reused
	// the clean regions of a recorded predecessor). Empty for computed
	// results.
	CacheTier string
	// RegionsTotal, RegionsReused, and RegionsRecomputed describe the
	// incremental tier's work when CacheTier is "region": the region
	// count of the decomposition, how many regions were stitched from
	// the predecessor's artifact, and how many were re-optimized (0 or
	// 1). All zero on cold runs and exact-tier hits.
	RegionsTotal      int
	RegionsReused     int
	RegionsRecomputed int
	// Fingerprint is the input's content address ("" if fingerprinting
	// itself failed on a malformed graph).
	Fingerprint string
	// Timings is the wall time of this job's phases (≈ 0 on cache hits).
	Timings PhaseTimings
}

// PassAggregate sums one pass's work across every computed job of a
// batch — the per-pass batch statistics behind amopt -trace-passes.
type PassAggregate struct {
	// Pass is the registry name; Ref its paper anchor.
	Pass string `json:"pass"`
	Ref  string `json:"ref,omitempty"`
	// Runs is the number of jobs that executed the pass.
	Runs int `json:"runs"`
	// Changes and Iterations sum the uniform pass stats.
	Changes    int `json:"changes"`
	Iterations int `json:"iterations"`
	// Wall sums the pass's wall time (CPU-parallel across workers, so the
	// sum may exceed the batch wall time).
	Wall time.Duration `json:"wall"`
	// Dataflow sums the solver work attributed to the pass.
	Dataflow dataflow.SolveStats `json:"dataflow"`
	// Arena sums the growth of the session arenas' peak footprint during
	// the pass — 0 for passes that run entirely inside warmed storage.
	Arena pass.ArenaMarks `json:"arena"`
}

// Report aggregates one batch.
type Report struct {
	Graphs    int `json:"graphs"`
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`
	// Degraded counts the succeeded jobs whose recovery policy absorbed
	// at least one pass failure (a subset of Succeeded).
	Degraded    int           `json:"degraded"`
	CacheHits   int           `json:"cacheHits"`
	CacheMisses int           `json:"cacheMisses"`
	Parallelism int           `json:"parallelism"`
	Wall        time.Duration `json:"wall"`
	// Phase sums per-phase wall time across all jobs (CPU-parallel, so
	// the sum may exceed Wall).
	Phase PhaseTimings `json:"phase"`
	// Passes aggregates the pipeline events of every computed job, in
	// pipeline order (cache hits are excluded — their work happened in the
	// job that populated the cache).
	Passes []PassAggregate `json:"passes"`
	// AMIterations sums assignment-motion rounds across all jobs;
	// MaxAMIterations is the worst single graph.
	AMIterations    int `json:"amIterations"`
	MaxAMIterations int `json:"maxAmIterations"`
	// RegionHits counts jobs served by the incremental region tier;
	// RegionsReused and RegionsRecomputed sum that tier's per-job region
	// accounting across the batch.
	RegionHits        int `json:"regionHits"`
	RegionsReused     int `json:"regionsReused"`
	RegionsRecomputed int `json:"regionsRecomputed"`
	// Results holds one entry per input graph, in input order.
	Results []GraphResult `json:"-"`
}

// Engine is a reusable batch optimizer. The zero value is not usable;
// construct with New. An Engine's cache persists across batches, so a
// long-lived engine serves repeated traffic with warm-cache latencies.
type Engine struct {
	opts    Options
	cache   *cache       // nil when caching is disabled
	incrDrv *incr.Driver // nil unless Options.Incremental (and caching on)
}

// New returns an Engine with the given options.
func New(opts Options) *Engine {
	e := &Engine{opts: opts}
	if opts.CacheSize >= 0 {
		size := opts.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		e.cache = newCache(size)
		if opts.Incremental {
			var st incr.Store
			if opts.Backend != nil {
				st = opts.Backend
			}
			e.incrDrv = incr.NewDriver(st)
		}
	}
	return e
}

// CacheStats reports the engine's cumulative cache behaviour.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// OptimizeBatch runs the engine's pipeline over every graph, at most
// opts.Parallelism at a time, and returns the aggregated report. Inputs
// are not mutated. The call honours ctx: once ctx is done, unstarted jobs
// are skipped and running jobs are abandoned, all reporting ctx's error.
func (e *Engine) OptimizeBatch(ctx context.Context, graphs []*ir.Graph) Report {
	start := time.Now()
	results := make([]GraphResult, len(graphs))

	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := e.opts.parallelism()
	if workers > len(graphs) {
		workers = len(graphs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = e.optimizeJob(ctx, i, graphs[i])
			}
		}()
	}
feed:
	for i := range graphs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			for j := i; j < len(graphs); j++ {
				results[j] = GraphResult{Index: j, Outcome: OutcomeFailed, Err: ctx.Err()}
				if graphs[j] != nil {
					results[j].Name = graphs[j].Name
				}
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	rep := Report{Graphs: len(graphs), Parallelism: workers, Results: results}
	agg := map[string]int{} // pass name -> index in rep.Passes
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			rep.Failed++
			continue
		}
		rep.Succeeded++
		if r.Outcome == OutcomeDegraded {
			rep.Degraded++
		}
		if r.CacheHit {
			rep.CacheHits++
			if r.CacheTier == "region" {
				rep.RegionHits++
				rep.RegionsReused += r.RegionsReused
				rep.RegionsRecomputed += r.RegionsRecomputed
			}
		} else {
			rep.CacheMisses++
			for _, ev := range r.Passes {
				k, ok := agg[ev.Pass]
				if !ok {
					k = len(rep.Passes)
					agg[ev.Pass] = k
					rep.Passes = append(rep.Passes, PassAggregate{Pass: ev.Pass, Ref: ev.Ref})
				}
				a := &rep.Passes[k]
				a.Runs++
				a.Changes += ev.Stats.Changes
				a.Iterations += ev.Stats.Iterations
				a.Wall += ev.Wall
				a.Dataflow.Solves += ev.Dataflow.Solves
				a.Dataflow.Visits += ev.Dataflow.Visits
				a.Dataflow.Sweeps += ev.Dataflow.Sweeps
				a.Arena.Words += ev.Arena.Words
				a.Arena.Ints += ev.Arena.Ints
				a.Arena.Vecs += ev.Arena.Vecs
			}
		}
		rep.Phase.add(r.Timings)
		it := amIterations(r)
		rep.AMIterations += it
		if it > rep.MaxAMIterations {
			rep.MaxAMIterations = it
		}
	}
	rep.Wall = time.Since(start)
	return rep
}

// amIterations extracts the assignment-motion round count of one job:
// from the typed Result on the default pipeline, from the "am" event of a
// custom one.
func amIterations(r *GraphResult) int {
	if r.Result.AM.Iterations > 0 {
		return r.Result.AM.Iterations
	}
	for _, ev := range r.Passes {
		if ev.Pass == "am" {
			return ev.Stats.Iterations
		}
	}
	return 0
}

// Optimize runs a single graph through the engine (pool of one). It is a
// convenience for callers that want caching, recovery, and timeouts
// without assembling a slice.
func (e *Engine) Optimize(ctx context.Context, g *ir.Graph) GraphResult {
	return e.optimizeJob(ctx, 0, g)
}

// OptimizeBatch is the one-shot form: a fresh Engine with opts, one batch.
func OptimizeBatch(ctx context.Context, graphs []*ir.Graph, opts Options) Report {
	return New(opts).OptimizeBatch(ctx, graphs)
}

// optimizeJob runs one graph with full isolation: fingerprinting, cache
// lookup, single-flight coordination, and the protected computation.
func (e *Engine) optimizeJob(ctx context.Context, idx int, g *ir.Graph) (r GraphResult) {
	// Registered first so it runs last: the hook observes the final r,
	// including errors filled in by the panic-recovery defer below.
	defer func() {
		if e.opts.OutcomeHook != nil {
			e.opts.OutcomeHook(r)
		}
	}()
	r = GraphResult{Index: idx, Outcome: OutcomeFailed}
	if g == nil {
		r.Err = errors.New("engine: nil graph")
		return r
	}
	r.Name = g.Name
	if err := ctx.Err(); err != nil {
		r.Err = err
		return r
	}
	defer func() {
		// Fingerprinting malformed graphs may itself panic; everything
		// heavier is already recovered in the compute goroutine.
		if rec := recover(); rec != nil {
			r.Err = &fault.PanicError{Value: rec, Stack: debug.Stack()}
			r.Graph = nil
			r.Outcome = OutcomeFailed
		}
	}()
	start := time.Now()
	defer func() { r.Timings.Total = time.Since(start) }()

	if e.cache == nil {
		c := e.compute(ctx, g, nil)
		r.Graph, r.Result, r.Passes, r.Timings, r.Err = c.g, c.res, c.events, c.tm, c.err
		r.Failures = c.failures
		r.Outcome = c.outcome()
		return r
	}

	key := cacheKey{
		fp:       g.Fingerprint(),
		pipeline: e.opts.pipelineSpec(),
		recovery: e.opts.Recovery,
		budget:   e.opts.Budget,
	}
	r.Fingerprint = key.fp.String()
	if hit, ok := e.cache.lookup(key); ok {
		out := hit.graph
		out.Name = g.Name // fingerprints ignore names; keep the caller's
		r.Graph, r.Result, r.Passes, r.CacheHit, r.CacheTier = out, hit.result, hit.events, true, "memory"
		r.Outcome = OutcomeOptimized
		return r
	}
	leader, fl := e.cache.claim(key)
	if !leader {
		select {
		case <-fl.done:
			if fl.ok {
				e.cache.hits.Add(1)
				out := fl.graph.Clone()
				out.Name = g.Name
				r.Graph, r.Result, r.Passes, r.CacheHit, r.CacheTier = out, fl.result, fl.events, true, "memory"
				r.Outcome = OutcomeOptimized
				return r
			}
			// The leader failed; fall through and compute for ourselves
			// (deterministic failures will fail here too, transient ones
			// — a timeout under load — get their honest retry).
		case <-ctx.Done():
			r.Err = ctx.Err()
			return r
		}
	}
	if leader {
		// The persistent tier answers memory misses: a daemon restarted
		// with a warm cache directory serves previously seen programs
		// without running a single pass. Only the single-flight leader
		// reads the disk, so a thundering herd on one key costs one read.
		if pg, pres, pevents, ok := e.backendGet(key); ok {
			out := pg.Clone()
			out.Name = g.Name
			e.cache.complete(key, fl, pg, pres, pevents)
			r.Graph, r.Result, r.Passes, r.CacheHit, r.CacheTier = out, pres, pevents, true, "disk"
			r.Outcome = OutcomeOptimized
			return r
		}
		// The region tier answers exact-tier misses: a graph that differs
		// from a recorded predecessor in one region's interior replays
		// only that region, certified byte-identical to the cold run. The
		// certified result is a complete clean optimization, so it
		// populates the exact tiers for the graph's own fingerprint.
		if w, ok := e.tryWarm(key, g); ok {
			res := warmResult(w)
			out := w.Graph
			out.Name = g.Name
			e.cache.complete(key, fl, out.Clone(), res, nil)
			e.backendPut(key, out, res, nil)
			r.Graph, r.Result, r.CacheHit, r.CacheTier = out, res, true, "region"
			r.RegionsTotal = w.RegionsTotal
			r.RegionsReused = w.RegionsReused
			r.RegionsRecomputed = w.RegionsTotal - w.RegionsReused
			r.Outcome = OutcomeOptimized
			return r
		}
	}
	e.cache.misses.Add(1)
	var rec *incr.Recorder
	if leader {
		rec = e.newRecorder(key, g)
	}
	c := e.compute(ctx, g, rec)
	r.Result, r.Passes, r.Timings = c.res, c.events, c.tm
	if leader {
		if c.err != nil || len(c.failures) > 0 {
			// Never store a degraded (rolled-back / pass-skipped) result
			// under the clean content-addressed key: a later identical
			// graph must get the full optimization, not the leftovers of
			// this job's recovery.
			e.cache.abandon(key, fl)
		} else {
			e.cache.complete(key, fl, c.g.Clone(), c.res, c.events)
			e.backendPut(key, c.g, c.res, c.events)
			e.incrRecord(key, rec)
		}
	}
	r.Graph, r.Err = c.g, c.err
	r.Failures = c.failures
	r.Outcome = c.outcome()
	return r
}

// computation is what the worker goroutine sends back.
type computation struct {
	g        *ir.Graph
	res      core.Result
	events   []pass.Event
	tm       PhaseTimings
	failures []error // per-pass failures absorbed by the recovery policy
	err      error
}

func (c *computation) outcome() Outcome {
	switch {
	case c.err != nil:
		return OutcomeFailed
	case len(c.failures) > 0:
		return OutcomeDegraded
	}
	return OutcomeOptimized
}

// compute runs the engine's pipeline on a private clone of g with ONE
// analysis session threaded through every pass, in a child goroutine so
// the deadline can abandon it. The context is also threaded INTO the
// pipeline (and, through the session, into the fixpoint rounds), so a
// deadline usually stops the computation cooperatively with a typed
// fault.ErrCanceled; the select below is the backstop for a truly stuck
// pass, whose abandoned goroutine drains in the background (all passes
// terminate — the fixpoints are monotone or capped — so abandoned work is
// garbage-collected, not leaked forever).
func (e *Engine) compute(ctx context.Context, g *ir.Graph, rec *incr.Recorder) computation {
	if e.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.opts.Timeout)
		defer cancel()
	}
	ch := make(chan computation, 1)
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				ch <- computation{err: &PanicError{Value: rec, Stack: debug.Stack()}}
			}
		}()
		var c computation
		clone := g.Clone()

		// One analysis session for the whole pipeline: every pass shares
		// the pooled arena and the universe caches.
		s := analysis.NewSession()
		defer s.Close()
		s.SetSolverWorkers(e.opts.solverWorkers())

		hook := func(ev pass.Event) {
			c.events = append(c.events, ev)
			c.tm.record(ev)
			if e.opts.Hook != nil {
				e.opts.Hook(g.Name, ev)
			}
		}

		// One pipeline shape for both the default global algorithm and a
		// custom pass list, so the recovery policy, the budget, and the
		// cancellation context apply uniformly at every pass boundary.
		var pl *pass.Pipeline
		if len(e.opts.Passes) == 0 {
			if rec != nil {
				pl = pass.New(core.PhasesObserved(&c.res, rec.Hooks(), rec.FlushObserver())...)
			} else {
				pl = pass.New(core.Phases(&c.res)...)
			}
		} else {
			var err error
			pl, err = pass.FromNames(e.opts.Passes...)
			if err != nil {
				ch <- computation{err: fmt.Errorf("engine: %w", err)}
				return
			}
		}
		pl.Hook = hook
		pl.Recovery = e.opts.Recovery
		pl.Budget = e.opts.Budget
		pl.Wrap = e.opts.Inject
		rep, err := pl.RunWith(ctx, clone, s)
		c.failures = rep.Failures
		if err != nil {
			ch <- computation{events: c.events, tm: c.tm, err: err}
			return
		}

		c.g = clone
		ch <- c
	}()
	select {
	case c := <-ch:
		return c
	case <-ctx.Done():
		return computation{err: ctx.Err()}
	}
}
