package engine

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"assignmentmotion/internal/core"
	"assignmentmotion/internal/fault"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"
)

// CacheStats reports the cumulative behaviour of one engine's cache.
type CacheStats struct {
	Hits    int64 // lookups answered from a stored result
	Misses  int64 // lookups that had to optimize
	Entries int   // results currently stored
}

// cacheKey addresses one cached outcome: the graph's content fingerprint
// plus the complete pipeline configuration that produced it — the pass
// spec, the recovery policy, and the resource budget. Mixing the whole
// configuration in keeps a shared cache (two engines over one persistent
// backend, or a future networked tier) from serving an "init,am,flush"
// result to an "em,copyprop" request, and from serving a result computed
// under a permissive budget to a request whose tighter budget would have
// rejected the computation. (Within one engine the configuration is
// constant, but the persistent backend outlives engines and daemons.)
type cacheKey struct {
	fp       ir.Fingerprint
	pipeline string
	recovery pass.RecoveryPolicy
	budget   fault.Budget
}

// String is the persistent-backend form of the key: every field that
// distinguishes two cacheKey values appears in the string, so the on-disk
// store separates entries exactly as the in-memory map does.
func (k cacheKey) String() string {
	return k.fp.String() + "|" + k.cfg()
}

// cfg is the configuration-only portion of the key — everything but the
// content fingerprint. The incremental tier groups recorded predecessors
// by it: two graphs are warm-replay candidates for each other exactly
// when they ran under the same pipeline configuration.
func (k cacheKey) cfg() string {
	return fmt.Sprintf("passes=%s|recovery=%s|budget=%d,%d,%d",
		k.pipeline, k.recovery,
		int64(k.budget.MaxPassWall), k.budget.MaxSolverVisits, k.budget.MaxAMIterations)
}

// entry is one cached optimization outcome. The stored graph is private to
// the cache; readers receive clones.
type entry struct {
	key    cacheKey
	graph  *ir.Graph
	result core.Result
	events []pass.Event
}

// cached is what a lookup hands out: a private clone of the stored graph
// plus the stored statistics (the events slice is shared read-only).
type cached struct {
	graph  *ir.Graph
	result core.Result
	events []pass.Event
}

// flight coordinates duplicate in-flight work on one key: the first
// worker to claim a key becomes the leader and computes; followers block
// on done and read the outcome. A failed leader (panic, timeout,
// cancellation) publishes ok=false and followers compute for themselves —
// errors are never cached, so a transient timeout cannot poison a key
// forever.
type flight struct {
	done   chan struct{}
	graph  *ir.Graph
	result core.Result
	events []pass.Event
	ok     bool
}

// cache is a content-addressed LRU of optimization results with
// single-flight deduplication. maxEntries <= 0 disables the bound.
type cache struct {
	mu         sync.Mutex
	entries    map[cacheKey]*list.Element
	ll         list.List // front = most recently used
	inflight   map[cacheKey]*flight
	maxEntries int

	hits   atomic.Int64
	misses atomic.Int64
}

func newCache(maxEntries int) *cache {
	return &cache{
		entries:    map[cacheKey]*list.Element{},
		inflight:   map[cacheKey]*flight{},
		maxEntries: maxEntries,
	}
}

// lookup returns the cached outcome for key, cloning the stored graph.
func (c *cache) lookup(key cacheKey) (cached, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return cached{}, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*entry)
	out := cached{graph: e.graph, result: e.result, events: e.events}
	c.mu.Unlock()
	c.hits.Add(1)
	out.graph = out.graph.Clone()
	return out, true
}

// claim registers the caller as leader for key, or returns the existing
// in-flight computation to wait on.
func (c *cache) claim(key cacheKey) (leader bool, fl *flight) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fl, ok := c.inflight[key]; ok {
		return false, fl
	}
	fl = &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	return true, fl
}

// complete publishes a leader's successful outcome: the result is stored
// (the cache takes ownership of g, so the caller must pass a private
// clone), followers are released, and the LRU is trimmed.
func (c *cache) complete(key cacheKey, fl *flight, g *ir.Graph, res core.Result, events []pass.Event) {
	c.mu.Lock()
	fl.graph, fl.result, fl.events, fl.ok = g, res, events, true
	delete(c.inflight, key)
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*entry)
		e.graph, e.result, e.events = g, res, events
	} else {
		c.entries[key] = c.ll.PushFront(&entry{key: key, graph: g, result: res, events: events})
		if c.maxEntries > 0 {
			for len(c.entries) > c.maxEntries {
				oldest := c.ll.Back()
				c.ll.Remove(oldest)
				delete(c.entries, oldest.Value.(*entry).key)
			}
		}
	}
	c.mu.Unlock()
	close(fl.done)
}

// abandon releases followers after a failed leader without caching.
func (c *cache) abandon(key cacheKey, fl *flight) {
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(fl.done)
}

func (c *cache) stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}
