package engine

import (
	"container/list"
	"sync"
	"sync/atomic"

	"assignmentmotion/internal/core"
	"assignmentmotion/internal/ir"
)

// CacheStats reports the cumulative behaviour of one engine's cache.
type CacheStats struct {
	Hits    int64 // lookups answered from a stored result
	Misses  int64 // lookups that had to optimize
	Entries int   // results currently stored
}

// entry is one cached optimization outcome. The stored graph is private to
// the cache; readers receive clones.
type entry struct {
	fp     ir.Fingerprint
	graph  *ir.Graph
	result core.Result
}

// flight coordinates duplicate in-flight work on one fingerprint: the
// first worker to claim a fingerprint becomes the leader and computes;
// followers block on done and read the outcome. A failed leader (panic,
// timeout, cancellation) publishes ok=false and followers compute for
// themselves — errors are never cached, so a transient timeout cannot
// poison a fingerprint forever.
type flight struct {
	done   chan struct{}
	graph  *ir.Graph
	result core.Result
	ok     bool
}

// cache is a content-addressed LRU of optimization results with
// single-flight deduplication. maxEntries <= 0 disables the bound.
type cache struct {
	mu         sync.Mutex
	entries    map[ir.Fingerprint]*list.Element
	ll         list.List // front = most recently used
	inflight   map[ir.Fingerprint]*flight
	maxEntries int

	hits   atomic.Int64
	misses atomic.Int64
}

func newCache(maxEntries int) *cache {
	return &cache{
		entries:    map[ir.Fingerprint]*list.Element{},
		inflight:   map[ir.Fingerprint]*flight{},
		maxEntries: maxEntries,
	}
}

// lookup returns the cached outcome for fp, cloning the stored graph.
func (c *cache) lookup(fp ir.Fingerprint) (*ir.Graph, core.Result, bool) {
	c.mu.Lock()
	el, ok := c.entries[fp]
	if !ok {
		c.mu.Unlock()
		return nil, core.Result{}, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*entry)
	g, res := e.graph, e.result
	c.mu.Unlock()
	c.hits.Add(1)
	return g.Clone(), res, true
}

// claim registers the caller as leader for fp, or returns the existing
// in-flight computation to wait on.
func (c *cache) claim(fp ir.Fingerprint) (leader bool, fl *flight) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fl, ok := c.inflight[fp]; ok {
		return false, fl
	}
	fl = &flight{done: make(chan struct{})}
	c.inflight[fp] = fl
	return true, fl
}

// complete publishes a leader's successful outcome: the result is stored
// (the cache takes ownership of g, so the caller must pass a private
// clone), followers are released, and the LRU is trimmed.
func (c *cache) complete(fp ir.Fingerprint, fl *flight, g *ir.Graph, res core.Result) {
	c.mu.Lock()
	fl.graph, fl.result, fl.ok = g, res, true
	delete(c.inflight, fp)
	if el, ok := c.entries[fp]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry).graph, el.Value.(*entry).result = g, res
	} else {
		c.entries[fp] = c.ll.PushFront(&entry{fp: fp, graph: g, result: res})
		if c.maxEntries > 0 {
			for len(c.entries) > c.maxEntries {
				oldest := c.ll.Back()
				c.ll.Remove(oldest)
				delete(c.entries, oldest.Value.(*entry).fp)
			}
		}
	}
	c.mu.Unlock()
	close(fl.done)
}

// abandon releases followers after a failed leader without caching.
func (c *cache) abandon(fp ir.Fingerprint, fl *flight) {
	c.mu.Lock()
	delete(c.inflight, fp)
	c.mu.Unlock()
	close(fl.done)
}

func (c *cache) stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}
