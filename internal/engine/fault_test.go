package engine

import (
	"context"
	"errors"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/corpus"
	"assignmentmotion/internal/fault"
	"assignmentmotion/internal/fault/inject"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"
	"assignmentmotion/internal/verify"
)

// corpusGraphs loads the embedded golden-corpus programs.
func corpusGraphs(t *testing.T) []*ir.Graph {
	t.Helper()
	var graphs []*ir.Graph
	for _, name := range corpus.Names() {
		graphs = append(graphs, corpus.Load(name))
	}
	if len(graphs) == 0 {
		t.Fatal("empty corpus")
	}
	return graphs
}

// prefixEncodes runs the clean global pipeline on a clone of g and returns
// the graph encoding after each pass: prefix[0] is the input, prefix[k] the
// state after pass k-1 — exactly the checkpoint Rollback must restore when
// pass k-1 is poisoned... shifted so prefix[k] is the last-good state for a
// fault at pipeline index k.
func prefixEncodes(t *testing.T, g *ir.Graph) []string {
	t.Helper()
	clone := g.Clone()
	prefix := []string{clone.Encode()}
	s := analysis.NewSession()
	defer s.Close()
	pl := pass.New(core.Phases(nil)...)
	pl.Hook = func(ev pass.Event) { prefix = append(prefix, clone.Encode()) }
	if _, err := pl.RunWith(context.Background(), clone, s); err != nil {
		t.Fatalf("clean run of %s: %v", g.Name, err)
	}
	return prefix
}

// TestChaosRollbackByteIdentity poisons every pipeline position of the
// global algorithm in turn, over the whole golden corpus, and asserts the
// central recovery contract: under Rollback the returned graph is
// byte-identical (ir.Graph.Encode) to the last-good checkpoint, and the
// input is never mutated.
func TestChaosRollbackByteIdentity(t *testing.T) {
	for _, g := range corpusGraphs(t) {
		prefix := prefixEncodes(t, g)
		npasses := len(prefix) - 1
		inputBefore := g.Encode()
		for k := 0; k < npasses; k++ {
			k := k
			e := New(Options{
				Parallelism: 1,
				Recovery:    pass.Rollback,
				Inject: func(index int, p pass.Pass) pass.Pass {
					if index != k {
						return p
					}
					p.RunWith = func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
						panic("chaos: poisoned pass")
					}
					return p
				},
			})
			r := e.Optimize(context.Background(), g)
			if r.Err != nil {
				t.Fatalf("%s/poison@%d: rollback must absorb the failure, got %v", g.Name, k, r.Err)
			}
			if r.Outcome != OutcomeDegraded || len(r.Failures) != 1 {
				t.Fatalf("%s/poison@%d: outcome %s, failures %v; want degraded with one failure", g.Name, k, r.Outcome, r.Failures)
			}
			if !errors.Is(r.Failures[0], fault.ErrPassPanic) {
				t.Errorf("%s/poison@%d: failure is not ErrPassPanic: %v", g.Name, k, r.Failures[0])
			}
			if got := r.Graph.Encode(); got != prefix[k] {
				t.Errorf("%s/poison@%d: result not byte-identical to last-good checkpoint\n--- got\n%s--- want\n%s",
					g.Name, k, got, prefix[k])
			}
			if err := r.Graph.Validate(); err != nil {
				t.Errorf("%s/poison@%d: degraded result invalid: %v", g.Name, k, err)
			}
			if g.Encode() != inputBefore {
				t.Fatalf("%s/poison@%d: input graph was mutated", g.Name, k)
			}
		}
	}
}

// TestChaosCacheNeverStoresDegraded proves the cache-cleanliness contract:
// a degraded (rolled-back) result must never be stored under the clean
// content key. Batch 1 runs with injection live and degrades some graphs;
// batch 2 on the SAME engine runs with injection gated off and must produce
// the full, clean optimization for every graph — if a degraded result had
// been cached, batch 2 would serve the leftovers.
func TestChaosCacheNeverStoresDegraded(t *testing.T) {
	graphs := corpusGraphs(t)
	var gate atomic.Bool
	gate.Store(true)
	inj := inject.New(inject.Config{Seed: 7, Rate: 0.5, Kinds: []inject.Kind{inject.Panic, inject.Corrupt}})
	e := New(Options{
		Parallelism: 4,
		Recovery:    pass.Rollback,
		Inject: func(index int, p pass.Pass) pass.Pass {
			if !gate.Load() {
				return p
			}
			return inj.Wrap(index, p)
		},
	})

	rep1 := e.OptimizeBatch(context.Background(), graphs)
	if rep1.Degraded == 0 {
		t.Fatalf("seed 7 at rate 0.5 fired no faults over the corpus (fired=%d) — chaos batch tested nothing", len(inj.Fired()))
	}

	gate.Store(false)
	rep2 := e.OptimizeBatch(context.Background(), graphs)
	for i, r := range rep2.Results {
		if r.Err != nil || r.Outcome != OutcomeOptimized {
			t.Fatalf("clean batch graph %d (%s): outcome %s, err %v", i, r.Name, r.Outcome, r.Err)
		}
		want := graphs[i].Clone()
		core.Optimize(want)
		if r.Graph.Encode() != want.Encode() {
			t.Errorf("graph %d (%s): clean batch served a stale degraded result\n--- got\n%s--- want\n%s",
				i, r.Name, r.Graph.Encode(), want.Encode())
		}
	}
}

// TestChaosGracefulBatchDegradation runs a mixed batch under injection and
// checks that poisoned graphs fail or degrade ALONE: every other graph's
// result equals the clean serial optimization, the report's counters are
// consistent, and no degraded or failed result is structurally invalid.
func TestChaosGracefulBatchDegradation(t *testing.T) {
	graphs := corpusGraphs(t)
	for seed := int64(0); seed < 4; seed++ {
		graphs = append(graphs, cfggen.Structured(seed, cfggen.Config{Size: 8}))
	}
	before := make([]string, len(graphs))
	for i, g := range graphs {
		before[i] = g.Encode()
	}

	inj := inject.New(inject.Config{Seed: 21, Rate: 0.35})
	rep := OptimizeBatch(context.Background(), graphs, Options{
		Parallelism: 4,
		CacheSize:   -1,
		Recovery:    pass.SkipAndContinue,
		Inject:      inj.Wrap,
	})

	if rep.Degraded == 0 && rep.Failed == 0 {
		t.Fatalf("seed 21 at rate 0.35 degraded nothing (fired=%d)", len(inj.Fired()))
	}
	if rep.Succeeded+rep.Failed != rep.Graphs {
		t.Fatalf("inconsistent counters: %+v", rep)
	}
	degraded := 0
	for i, r := range rep.Results {
		if graphs[i].Encode() != before[i] {
			t.Fatalf("graph %d (%s): input mutated", i, r.Name)
		}
		switch r.Outcome {
		case OutcomeOptimized:
			want := graphs[i].Clone()
			core.Optimize(want)
			if r.Graph.Encode() != want.Encode() {
				t.Errorf("graph %d (%s): clean graph did not get the clean result", i, r.Name)
			}
		case OutcomeDegraded:
			degraded++
			if len(r.Failures) == 0 {
				t.Errorf("graph %d (%s): degraded without recorded failures", i, r.Name)
			}
			if err := r.Graph.Validate(); err != nil {
				t.Errorf("graph %d (%s): degraded result invalid: %v", i, r.Name, err)
			}
			// Degraded results are still semantics preserving: skipping or
			// rolling back whole passes composes valid transformations.
			if v := verify.Equivalent(graphs[i], r.Graph, 4, 1); !v.Equivalent {
				t.Errorf("graph %d (%s): degraded result diverges: %s", i, r.Name, v.Detail)
			}
		case OutcomeFailed:
			if r.Err == nil {
				t.Errorf("graph %d (%s): failed without error", i, r.Name)
			}
		}
	}
	if degraded != rep.Degraded {
		t.Errorf("report says %d degraded, results say %d", rep.Degraded, degraded)
	}
}

// TestChaosSeededInjectionSweep is the time-boxed chaos sweep: seeds are
// drawn until the budget expires (default ~2s locally; CI sets
// CHAOS_SWEEP_SECONDS=30), each driving the full corpus through the engine
// under both recovery policies with all fault kinds live. The properties
// checked are the blanket ones: no panic escapes the engine, every
// returned graph validates, every outcome is internally consistent, and
// under Rollback each degraded result is byte-identical to one of the
// clean run's checkpoint states.
func TestChaosSeededInjectionSweep(t *testing.T) {
	budget := 2 * time.Second
	if v := os.Getenv("CHAOS_SWEEP_SECONDS"); v != "" {
		secs, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("CHAOS_SWEEP_SECONDS=%q: %v", v, err)
		}
		budget = time.Duration(secs) * time.Second
	} else if testing.Short() {
		budget = 500 * time.Millisecond
	}

	graphs := corpusGraphs(t)
	prefixes := make(map[string]map[string]bool, len(graphs)) // name -> set of checkpoint encodes
	for _, g := range graphs {
		set := map[string]bool{}
		for _, enc := range prefixEncodes(t, g) {
			set[enc] = true
		}
		prefixes[g.Name] = set
	}
	before := make([]string, len(graphs))
	for i, g := range graphs {
		before[i] = g.Encode()
	}

	start := time.Now()
	seeds, fired := 0, 0
	for seed := int64(1); time.Since(start) < budget; seed++ {
		seeds++
		for _, policy := range []pass.RecoveryPolicy{pass.Rollback, pass.SkipAndContinue} {
			inj := inject.New(inject.Config{Seed: seed, Rate: 0.4})
			rep := OptimizeBatch(context.Background(), graphs, Options{
				Parallelism: 4,
				CacheSize:   -1,
				Recovery:    policy,
				Inject:      inj.Wrap,
			})
			fired += len(inj.Fired())
			for i, r := range rep.Results {
				if graphs[i].Encode() != before[i] {
					t.Fatalf("seed %d/%s: graph %d (%s) input mutated", seed, policy, i, r.Name)
				}
				switch r.Outcome {
				case OutcomeOptimized, OutcomeDegraded:
					if r.Err != nil || r.Graph == nil {
						t.Fatalf("seed %d/%s: graph %s outcome %s with err=%v graph=%v", seed, policy, r.Name, r.Outcome, r.Err, r.Graph)
					}
					if err := r.Graph.Validate(); err != nil {
						t.Fatalf("seed %d/%s: graph %s returned invalid: %v", seed, policy, r.Name, err)
					}
					if policy == pass.Rollback && r.Outcome == OutcomeDegraded {
						if !prefixes[r.Name][r.Graph.Encode()] {
							t.Fatalf("seed %d: rollback result of %s matches no clean checkpoint state\n%s",
								seed, r.Name, r.Graph.Encode())
						}
					}
				case OutcomeFailed:
					if r.Err == nil {
						t.Fatalf("seed %d/%s: graph %s failed without error", seed, policy, r.Name)
					}
				default:
					t.Fatalf("seed %d/%s: graph %s has unknown outcome %q", seed, policy, r.Name, r.Outcome)
				}
			}
		}
	}
	if fired == 0 {
		t.Fatalf("sweep of %d seeds fired no faults — injection harness is dead", seeds)
	}
	t.Logf("chaos sweep: %d seeds, %d faults fired in %v", seeds, fired, time.Since(start))
}

// TestFaultCancellationNoGoroutineLeak cancels a batch mid-flight and
// checks that the engine winds down completely: canceled jobs report the
// cancellation, inputs are untouched, and the worker/computation goroutines
// drain (no leak).
func TestFaultCancellationNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	var graphs []*ir.Graph
	for seed := int64(0); seed < 24; seed++ {
		graphs = append(graphs, cfggen.Structured(seed, cfggen.Config{Size: 10}))
	}
	before := make([]string, len(graphs))
	for i, g := range graphs {
		before[i] = g.Encode()
	}

	ctx, cancel := context.WithCancel(context.Background())
	var once atomic.Bool
	rep := OptimizeBatch(ctx, graphs, Options{
		Parallelism: 4,
		CacheSize:   -1,
		Hook: func(graph string, ev pass.Event) {
			// Cancel as soon as the first pass of the batch completes, so
			// cancellation lands mid-pipeline for the in-flight jobs.
			if once.CompareAndSwap(false, true) {
				cancel()
			}
		},
	})
	cancel()

	sawCancel := false
	for i, r := range rep.Results {
		if graphs[i].Encode() != before[i] {
			t.Fatalf("graph %d: input mutated after cancellation", i)
		}
		if r.Err != nil {
			if !fault.IsCancellation(r.Err) && !errors.Is(r.Err, context.Canceled) {
				t.Errorf("graph %d (%s): non-cancellation error after cancel: %v", i, r.Name, r.Err)
			}
			if r.Outcome != OutcomeFailed {
				t.Errorf("graph %d (%s): canceled job has outcome %s", i, r.Name, r.Outcome)
			}
			sawCancel = true
		}
	}
	if !sawCancel {
		t.Skip("batch completed before cancellation landed; nothing to assert")
	}

	// Abandoned computation goroutines finish their (terminating) passes in
	// the background; give them a bounded window to drain.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines did not drain: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestFaultInjectorDeterminism pins the injector's core contract: the same
// seed fires the same faults regardless of scheduling or batch order.
func TestFaultInjectorDeterminism(t *testing.T) {
	graphs := corpusGraphs(t)
	run := func(parallelism int) []inject.Injection {
		inj := inject.New(inject.Config{Seed: 99, Rate: 0.5})
		OptimizeBatch(context.Background(), graphs, Options{
			Parallelism: parallelism,
			CacheSize:   -1,
			Recovery:    pass.SkipAndContinue,
			Inject:      inj.Wrap,
		})
		return inj.Fired()
	}
	serial, parallel := run(1), run(8)
	if len(serial) == 0 {
		t.Fatal("seed 99 fired nothing")
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial fired %d, parallel fired %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("injection %d differs: serial %+v, parallel %+v", i, serial[i], parallel[i])
		}
	}
}
