package engine

// The region-granular incremental tier. When Options.Incremental is set,
// every clean computation of the default global pipeline is observed by
// an incr.Recorder, and its manifest — per-region content digests,
// per-round boundary dataflow facts, and the post-AM program — is stored
// through the incr.Driver (backed by Options.Backend when present, an
// in-process store otherwise). A later job whose graph differs from a
// recorded predecessor in a single region's interior replays only that
// region and stitches the rest, certified byte-identical to the cold
// run; any certificate mismatch silently falls back to the cold path.

import (
	"assignmentmotion/internal/am"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/incr"
	"assignmentmotion/internal/ir"
)

// incrEligible reports whether a job is a candidate for incremental
// record/replay: the default global pipeline on a temp-free source. The
// τ-canonical region digests are only bijective on temp-free inputs, and
// only the default pipeline has the recorded aht/rae round structure.
func (e *Engine) incrEligible(g *ir.Graph) bool {
	return e.incrDrv != nil && len(e.opts.Passes) == 0 && len(g.Temps()) == 0
}

// newRecorder returns the recorder observing this job's computation, or
// nil when the job is not eligible for recording.
func (e *Engine) newRecorder(key cacheKey, g *ir.Graph) *incr.Recorder {
	if !e.incrEligible(g) {
		return nil
	}
	return incr.NewRecorder(key.fp.String(), key.cfg())
}

// tryWarm attempts a certified warm replay against the recorded
// predecessors of this configuration. ok=false means the caller computes
// cold.
func (e *Engine) tryWarm(key cacheKey, g *ir.Graph) (*incr.WarmResult, bool) {
	if !e.incrEligible(g) {
		return nil, false
	}
	return e.incrDrv.TryWarm(key.cfg(), key.fp.String(), g)
}

// incrRecord stores the manifest of a clean computation. A nil recorder,
// an invalidated recording, or a run that never reached the end hook all
// decay to a no-op — degraded or failed runs are never persisted.
func (e *Engine) incrRecord(key cacheKey, rec *incr.Recorder) {
	if e.incrDrv == nil || rec == nil {
		return
	}
	e.incrDrv.Record(key.cfg(), rec.Manifest())
}

// warmResult shapes a certified replay into the core.Result the cold run
// would have reported.
func warmResult(w *incr.WarmResult) core.Result {
	return core.Result{
		Decomposed: w.Decomposed,
		AM: am.Stats{
			Iterations: w.AMIterations,
			Eliminated: w.Eliminated,
			SplitEdges: w.SplitEdges,
		},
		Flush: w.Flush,
	}
}
