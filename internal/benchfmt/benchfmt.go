// Package benchfmt parses the text output of `go test -bench` into typed
// rows and renders them in the machine-readable layout of the repo's
// BENCH_*.json files. It exists so the benchmark numbers committed to the
// repository (and the ones recorded by the CI bench jobs) are produced by
// one tool instead of hand-transcribed — see cmd/benchjson.
package benchfmt

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Metric is one custom benchmark metric (b.ReportMetric): a unit name
// that is not one of the standard per-op units, e.g. "visits" or
// "AMiters".
type Metric struct {
	Name  string
	Value float64
}

// Row is one parsed benchmark result line.
type Row struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string
	// Procs is the stripped GOMAXPROCS suffix (1 if absent).
	Procs int
	// Iterations is the measured b.N.
	Iterations int64
	NsPerOp    float64
	// Metrics preserves custom metrics in report order.
	Metrics []Metric
	// BytesPerOp/AllocsPerOp are present only with -benchmem (HasMem).
	HasMem      bool
	BytesPerOp  int64
	AllocsPerOp int64
}

// Parse reads `go test -bench` output and returns the benchmark rows in
// input order, skipping all non-benchmark lines (goos/pkg headers, PASS,
// ok). Repeated rows from -count are all returned; see Aggregate.
func Parse(r io.Reader) ([]Row, error) {
	var rows []Row
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "Name N value unit [value unit]..."; a bare
		// "BenchmarkFoo" header line (no measurements yet) has < 4 fields.
		if len(fields) < 4 {
			continue
		}
		row := Row{Procs: 1}
		row.Name = fields[0]
		if i := strings.LastIndex(row.Name, "-"); i > 0 {
			if p, err := strconv.Atoi(row.Name[i+1:]); err == nil && p > 0 {
				row.Name, row.Procs = row.Name[:i], p
			}
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: bad iteration count in %q", line)
		}
		row.Iterations = n
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				row.NsPerOp = val
			case "B/op":
				row.HasMem = true
				row.BytesPerOp = int64(val)
			case "allocs/op":
				row.HasMem = true
				row.AllocsPerOp = int64(val)
			default:
				row.Metrics = append(row.Metrics, Metric{Name: unit, Value: val})
			}
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}

// Aggregate collapses -count repeats of the same benchmark into a single
// row per name, keeping the repeat with the minimum ns/op. The minimum is
// the noise-robust statistic for shared-CPU hosts: external load only
// ever inflates a measurement, so the smallest observation is the closest
// to the true cost. Custom metrics and allocation counts are taken from
// the same (minimum) repeat; in this repository they are deterministic
// across repeats anyway. Input order of first appearance is preserved.
func Aggregate(rows []Row) []Row {
	index := make(map[string]int)
	var out []Row
	for _, r := range rows {
		i, seen := index[r.Name]
		if !seen {
			index[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		if r.NsPerOp < out[i].NsPerOp {
			out[i] = r
		}
	}
	return out
}

// Environment describes the measuring host.
type Environment struct {
	GoVersion  string
	GOOS       string
	GOARCH     string
	CPU        string
	GOMAXPROCS int
	Note       string
}

// Doc is a full benchmark document in the BENCH_*.json layout.
type Doc struct {
	Description string
	Date        string
	Environment Environment
	Rows        []Row
}

// MarshalJSON renders the document with the exact key order of the
// committed BENCH_*.json files (name, iterations, nsPerOp, custom
// metrics, bytesPerOp, allocsPerOp), which map-based marshalling would
// alphabetize away.
func (d Doc) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteString("{\n")
	field := func(indent, key string, val any, comma bool) {
		b.WriteString(indent)
		kj, _ := json.Marshal(key)
		b.Write(kj)
		b.WriteString(": ")
		vj, err := json.Marshal(val)
		if err != nil {
			vj = []byte("null")
		}
		b.Write(vj)
		if comma {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	field("  ", "description", d.Description, true)
	field("  ", "date", d.Date, true)
	b.WriteString("  \"environment\": {\n")
	field("    ", "goVersion", d.Environment.GoVersion, true)
	field("    ", "goos", d.Environment.GOOS, true)
	field("    ", "goarch", d.Environment.GOARCH, true)
	field("    ", "cpu", d.Environment.CPU, true)
	field("    ", "gomaxprocs", d.Environment.GOMAXPROCS, d.Environment.Note != "")
	if d.Environment.Note != "" {
		field("    ", "note", d.Environment.Note, false)
	}
	b.WriteString("  },\n")
	b.WriteString("  \"benchmarks\": [\n")
	for i, r := range d.Rows {
		b.WriteString("    {\n")
		field("      ", "name", r.Name, true)
		field("      ", "iterations", r.Iterations, true)
		field("      ", "nsPerOp", jsonNumber(r.NsPerOp), r.HasMem || len(r.Metrics) > 0)
		for j, m := range r.Metrics {
			field("      ", m.Name, jsonNumber(m.Value), r.HasMem || j < len(r.Metrics)-1)
		}
		if r.HasMem {
			field("      ", "bytesPerOp", r.BytesPerOp, true)
			field("      ", "allocsPerOp", r.AllocsPerOp, false)
		}
		b.WriteString("    }")
		if i < len(d.Rows)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("  ]\n}")
	return b.Bytes(), nil
}

// jsonNumber renders integral floats as integers (12580, not 12580.0),
// matching the committed files.
func jsonNumber(v float64) any {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return int64(v)
	}
	return v
}
