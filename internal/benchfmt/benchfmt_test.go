package benchfmt

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: assignmentmotion
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSolverOrder/structured80/rpo-4         	     500	     14556 ns/op	         8.000 sweeps	       726.0 visits	   29904 B/op	     457 allocs/op
BenchmarkSolverOrder/structured80/rpo-4         	     500	     16102 ns/op	         8.000 sweeps	       726.0 visits	   29904 B/op	     457 allocs/op
BenchmarkSolverOrder/structured80/genkill-4     	     500	     12580 ns/op	         8.000 sweeps	       726.0 visits	   29896 B/op	     456 allocs/op
BenchmarkFingerprint          	       5	    152642 ns/op
PASS
ok  	assignmentmotion	2.292s
`

func TestParse(t *testing.T) {
	rows, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	r := rows[0]
	if r.Name != "BenchmarkSolverOrder/structured80/rpo" || r.Procs != 4 {
		t.Fatalf("bad name/procs: %q/%d", r.Name, r.Procs)
	}
	if r.Iterations != 500 || r.NsPerOp != 14556 {
		t.Fatalf("bad iterations/ns: %d/%v", r.Iterations, r.NsPerOp)
	}
	if !r.HasMem || r.BytesPerOp != 29904 || r.AllocsPerOp != 457 {
		t.Fatalf("bad mem: %+v", r)
	}
	if len(r.Metrics) != 2 || r.Metrics[0] != (Metric{"sweeps", 8}) || r.Metrics[1] != (Metric{"visits", 726}) {
		t.Fatalf("bad metrics: %+v", r.Metrics)
	}
	// A row without -benchmem and without a -procs suffix.
	fp := rows[3]
	if fp.Name != "BenchmarkFingerprint" || fp.Procs != 1 || fp.HasMem || len(fp.Metrics) != 0 {
		t.Fatalf("bad plain row: %+v", fp)
	}
}

func TestAggregateKeepsMinimum(t *testing.T) {
	rows, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	agg := Aggregate(rows)
	if len(agg) != 3 {
		t.Fatalf("got %d aggregated rows, want 3", len(agg))
	}
	if agg[0].Name != "BenchmarkSolverOrder/structured80/rpo" || agg[0].NsPerOp != 14556 {
		t.Fatalf("aggregate did not keep the minimum repeat: %+v", agg[0])
	}
	if agg[1].Name != "BenchmarkSolverOrder/structured80/genkill" {
		t.Fatalf("aggregate reordered rows: %+v", agg[1])
	}
}

func TestMarshalDocLayout(t *testing.T) {
	rows, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	doc := Doc{
		Description: "test doc",
		Date:        "2026-08-08",
		Environment: Environment{
			GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64",
			CPU: "Intel(R) Xeon(R) Processor @ 2.10GHz", GOMAXPROCS: 1,
			Note: "single-core container",
		},
		Rows: Aggregate(rows),
	}
	out, err := doc.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{
		`"description": "test doc"`,
		`"gomaxprocs": 1`,
		`"note": "single-core container"`,
		`"name": "BenchmarkSolverOrder/structured80/genkill"`,
		`"nsPerOp": 12580`,
		`"sweeps": 8`,
		`"visits": 726`,
		`"allocsPerOp": 457`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("marshalled doc missing %s\n%s", want, s)
		}
	}
	// Key order inside a row: nsPerOp before the custom metrics, memory
	// fields last.
	ns := strings.Index(s, `"nsPerOp": 14556`)
	sw := strings.Index(s, `"sweeps": 8`)
	al := strings.Index(s, `"allocsPerOp": 457`)
	if !(ns < sw && sw < al) {
		t.Errorf("row key order wrong: nsPerOp@%d sweeps@%d allocsPerOp@%d", ns, sw, al)
	}
}
