package am

// §4.3 names four classes of second-order effects that force the
// exhaustive iteration of rae and aht:
//
//	Hoisting-Elimination, Hoisting-Hoisting,
//	Elimination-Hoisting, Elimination-Elimination.
//
// Each test below builds a minimal witness for one class and checks that
// (a) a single hoist+eliminate round does NOT finish the job, and (b) the
// exhaustive fixpoint does — i.e. the effect is genuinely second-order.

import (
	"testing"

	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/printer"
)

func occurrences(g *ir.Graph, key string) int {
	n := 0
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Key() == key {
				n++
			}
		}
	}
	return n
}

// Hoisting-Elimination: hoisting a := x+y out of n4 merges nothing by
// itself, but it unblocks x := y+z, whose hoisting then creates a
// redundancy that elimination removes — Figure 8/9, the canonical case.
func TestSecondOrderHoistingElimination(t *testing.T) {
	src := `
graph he {
  entry n1
  exit n4
  block n1 { if c < 0 then n2 else n3 }
  block n2 { x := y + z
    goto n4 }
  block n3 { a := x + y
    goto n4 }
  block n4 {
    a := x + y
    x := y + z
    out(a, x)
  }
}
`
	one := parse.MustParse(src)
	RunBounded(one, 1)
	full := parse.MustParse(src)
	Run(full)
	if got := occurrences(one, "x:=y+z"); got < 2 {
		t.Errorf("single round already eliminated the redundancy (%d occurrences) — witness too weak", got)
	}
	// The fixpoint leaves one occurrence per arm and none in n4.
	for _, in := range full.BlockByName("n4").Instrs {
		if in.Kind == ir.KindAssign {
			t.Fatalf("fixpoint left %v in n4:\n%s", in, printer.String(full))
		}
	}
}

// Elimination-Hoisting: the redundant y := c+d in the loop body blocks
// x := y+z (y is an operand); only after rae removes it can the
// loop-invariant assignment leave the loop — the running example's core.
func TestSecondOrderEliminationHoisting(t *testing.T) {
	src := `
graph eh {
  entry n1
  exit n4
  block n1 {
    y := c + d
    goto n2
  }
  block n2 {
    y := c + d
    x := y + z
    k := k + 1
    if k < 5 then n2 else n4
  }
  block n4 { out(x, y, k) }
}
`
	one := parse.MustParse(src)
	RunBounded(one, 1)
	full := parse.MustParse(src)
	Run(full)
	// After the fixpoint, the loop body must not assign x anymore.
	for _, in := range full.BlockByName("n2").Instrs {
		if in.Key() == "x:=y+z" {
			t.Errorf("x := y+z still in the loop:\n%s", printer.String(full))
		}
	}
	// And x := y+z must have moved above the loop (into n1).
	if occurrences(full, "x:=y+z") == 0 {
		t.Fatalf("assignment vanished:\n%s", printer.String(full))
	}
	hoistedInOne := true
	for _, in := range one.BlockByName("n2").Instrs {
		if in.Key() == "x:=y+z" {
			hoistedInOne = false
		}
	}
	if hoistedInOne {
		t.Log("note: a single round already sufficed on this witness (rae runs after aht)")
	}
	checkEqual(t, src, full)
}

// Hoisting-Hoisting: v := x+1 is blocked by x := a+b in the same block;
// hoisting x := a+b away (merging with the arms) unblocks v := x+1, whose
// own hoisting needs a second round.
func TestSecondOrderHoistingHoisting(t *testing.T) {
	src := `
graph hh {
  entry n0
  exit n5
  block n0 { if c < 0 then n1 else n2 }
  block n1 { x := a + b
    goto n3 }
  block n2 { x := a + b
    goto n3 }
  block n3 {
    x := a + b
    v := x + 1
    goto n5
  }
  block n5 { out(x, v) }
}
`
	full := parse.MustParse(src)
	st := Run(full)
	// The fixpoint merges ALL of x := a+b above the branch (the arm
	// occurrences hoist to n0, making n3's redundant), and v := x+1 then
	// hoists out of n3 up to the branch's exits — stopped there by the
	// x-definition in n0.
	if got := occurrences(full, "x:=a+b"); got != 1 {
		t.Errorf("x := a+b occurs %d times, want 1:\n%s", got, printer.String(full))
	}
	if !hasInstr(full.BlockByName("n0"), "x:=a+b") {
		t.Errorf("x := a+b not merged into n0:\n%s", printer.String(full))
	}
	for _, in := range full.BlockByName("n3").Instrs {
		if in.Key() == "v:=x+1" {
			t.Errorf("v := x+1 did not leave n3:\n%s", printer.String(full))
		}
	}
	if got := occurrences(full, "v:=x+1"); got != 2 {
		t.Errorf("v := x+1 occurs %d times, want 2 (one per arm):\n%s", got, printer.String(full))
	}
	if st.Iterations < 2 {
		t.Errorf("expected a second-order interaction (>=2 iterations), got %d", st.Iterations)
	}
	checkEqual(t, src, full)
}

// Elimination-Elimination: removing the first duplicated chain link makes
// the next one redundant — the cross-block chain needs one rae round per
// link (also the C1c complexity adversary).
func TestSecondOrderEliminationElimination(t *testing.T) {
	src := `
graph ee {
  entry n0
  exit e
  block n0 {
    v1 := v0 + 1
    goto n1
  }
  block n1 {
    v2 := v1 + 1
    goto n2
  }
  block n2 {
    v1 := v0 + 1
    goto n3
  }
  block n3 {
    v2 := v1 + 1
    goto e
  }
  block e { out(v1, v2) }
}
`
	one := parse.MustParse(src)
	RunBounded(one, 1)
	if got := occurrences(one, "v2:=v1+1"); got != 2 {
		t.Errorf("after one round v2 := v1+1 occurs %d times, want 2 (not yet redundant)", got)
	}
	full := parse.MustParse(src)
	st := Run(full)
	if got := occurrences(full, "v1:=v0+1") + occurrences(full, "v2:=v1+1"); got != 2 {
		t.Errorf("fixpoint left %d occurrences, want 2:\n%s", got, printer.String(full))
	}
	if st.Iterations < 3 {
		t.Errorf("chain should need >=3 rounds, got %d", st.Iterations)
	}
	checkEqual(t, src, full)
}

func checkEqual(t *testing.T, src string, xform *ir.Graph) {
	t.Helper()
	orig := parse.MustParse(src)
	envs := []map[ir.Var]int64{
		{"a": 1, "b": 2, "c": -1, "d": 3, "y": 4, "z": 5, "x": 6, "v0": 7, "k": 0},
		{"a": 1, "b": 2, "c": 1, "d": 3, "y": 4, "z": 5, "x": 6, "v0": 7, "k": 0},
	}
	for _, env := range envs {
		r1, r2 := interp.Run(orig, env, 0), interp.Run(xform, env, 0)
		if !interp.TraceEqual(r1, r2) {
			t.Errorf("env %v: trace changed %v -> %v", env, r1.Trace, r2.Trace)
		}
	}
}
