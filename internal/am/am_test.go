package am

import (
	"testing"

	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/printer"
)

func hasInstr(b *ir.Block, key string) bool {
	for _, in := range b.Instrs {
		if in.Key() == key {
			return true
		}
	}
	return false
}

func countInstr(g *ir.Graph, key string) int {
	n := 0
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Key() == key {
				n++
			}
		}
	}
	return n
}

// checkSemantics runs original and transformed on a few environments and
// compares out-traces.
func checkSemantics(t *testing.T, orig, xform *ir.Graph, envs []map[ir.Var]int64) {
	t.Helper()
	for i, env := range envs {
		r1 := interp.Run(orig, env, 0)
		r2 := interp.Run(xform, env, 0)
		if !interp.TraceEqual(r1, r2) {
			t.Errorf("env %d: trace changed: %v vs %v\n%s", i, r1.Trace, r2.Trace, printer.String(xform))
		}
	}
}

const fig02 = `
graph fig02 {
  entry n1
  exit n4
  block n1 { if c < 0 then n2 else n3 }
  block n2 {
    z := a + b
    x := a + b
    goto n4
  }
  block n3 {
    x := a + b
    y := x + y
    if y < 100 then n3 else n4
  }
  block n4 { out(x, y, z) }
}
`

func TestFigure02FullAM(t *testing.T) {
	g := parse.MustParse(fig02)
	orig := g.Clone()
	st := Run(g)
	g.MustValidate()

	if !hasInstr(g.BlockByName("n1"), "x:=a+b") {
		t.Errorf("x := a+b not hoisted to n1:\n%s", printer.String(g))
	}
	if got := countInstr(g, "x:=a+b"); got != 1 {
		t.Errorf("x := a+b occurs %d times, want exactly 1 (loop copy must be eliminated as redundant):\n%s",
			got, printer.String(g))
	}
	if !hasInstr(g.BlockByName("n2"), "z:=a+b") {
		t.Error("z := a+b must stay in n2")
	}
	if st.Iterations < 2 {
		t.Errorf("expected at least 2 iterations (hoist enables elimination), got %d", st.Iterations)
	}

	checkSemantics(t, orig, g, []map[ir.Var]int64{
		{"c": -1, "a": 2, "b": 3},
		{"c": 1, "a": 2, "b": 3, "y": 0},
		{"c": 1, "a": 5, "b": 7, "y": 90},
	})

	// Dynamic win: on the loop path, x := a+b now executes once instead of
	// once per iteration.
	env := map[ir.Var]int64{"c": 1, "a": 2, "b": 3, "y": 0}
	before := interp.Run(orig, env, 0)
	after := interp.Run(g, env, 0)
	if after.Counts.ExprEvals >= before.Counts.ExprEvals {
		t.Errorf("expr evals %d -> %d; expected a strict decrease", before.Counts.ExprEvals, after.Counts.ExprEvals)
	}
}

// Figures 8 and 9: second-order effect that Dhamdhere's restricted AM
// misses. 1 → {2,3} → 4 with
//
//	n2: x := y+z          n3: a := x+y        n4: a := x+y; x := y+z; out(a,x)
const fig08 = `
graph fig08 {
  entry n1
  exit n4
  block n1 { if c < 0 then n2 else n3 }
  block n2 {
    x := y + z
    goto n4
  }
  block n3 {
    a := x + y
    goto n4
  }
  block n4 {
    a := x + y
    x := y + z
    out(a, x)
  }
}
`

func TestFigure08RestrictedAMGetsStuck(t *testing.T) {
	g := parse.MustParse(fig08)
	orig := g.Clone()
	RunRestricted(g)
	g.MustValidate()

	// Hoisting a := x+y is not immediately profitable (it removes no
	// occurrence of a := x+y), so restricted AM must refuse it, leaving
	// the partially redundant x := y+z in n4 (Figure 8).
	if !hasInstr(g.BlockByName("n4"), "x:=y+z") {
		t.Errorf("restricted AM removed x := y+z from n4 — too aggressive:\n%s", printer.String(g))
	}
	if !hasInstr(g.BlockByName("n4"), "a:=x+y") {
		t.Errorf("restricted AM removed a := x+y from n4:\n%s", printer.String(g))
	}
	checkSemantics(t, orig, g, []map[ir.Var]int64{
		{"c": -1, "x": 1, "y": 2, "z": 3},
		{"c": 1, "x": 1, "y": 2, "z": 3},
	})
}

func TestFigure09UnrestrictedAMSucceeds(t *testing.T) {
	g := parse.MustParse(fig08)
	orig := g.Clone()
	Run(g)
	g.MustValidate()

	// Figure 9(b): n2 = [x := y+z; a := x+y], n3 = [a := x+y; x := y+z],
	// n4 = [out(a,x)].
	n4 := g.BlockByName("n4")
	if hasInstr(n4, "x:=y+z") || hasInstr(n4, "a:=x+y") {
		t.Errorf("n4 still holds moved assignments:\n%s", printer.String(g))
	}
	n2, n3 := g.BlockByName("n2"), g.BlockByName("n3")
	if !hasInstr(n2, "x:=y+z") || !hasInstr(n2, "a:=x+y") {
		t.Errorf("n2 = %v, want both assignments", n2.Instrs)
	}
	if !hasInstr(n3, "a:=x+y") || !hasInstr(n3, "x:=y+z") {
		t.Errorf("n3 = %v, want both assignments", n3.Instrs)
	}
	if got := countInstr(g, "a:=x+y"); got != 2 {
		t.Errorf("a := x+y occurs %d times, want 2", got)
	}
	if got := countInstr(g, "x:=y+z"); got != 2 {
		t.Errorf("x := y+z occurs %d times, want 2", got)
	}

	envs := []map[ir.Var]int64{
		{"c": -1, "x": 1, "y": 2, "z": 3},
		{"c": 1, "x": 1, "y": 2, "z": 3},
	}
	checkSemantics(t, orig, g, envs)
	// Each path now executes 2 assignments instead of 3.
	for _, env := range envs {
		before := interp.Run(orig, env, 0)
		after := interp.Run(g, env, 0)
		if after.Counts.AssignExecs != 2 || before.Counts.AssignExecs != 3 {
			t.Errorf("assign execs %d -> %d, want 3 -> 2", before.Counts.AssignExecs, after.Counts.AssignExecs)
		}
	}
}

// Figure 10: the partially redundant assignment below a critical edge can
// only be eliminated after the edge is split.
const fig10 = `
graph fig10 {
  entry n0
  exit n4
  block n0 { if d < 0 then n1 else n2 }
  block n1 {
    x := a + b
    goto n3
  }
  block n2 { if d < 10 then n3 else n4 }
  block n3 {
    x := a + b
    goto n4
  }
  block n4 { out(x) }
}
`

func TestFigure10CriticalEdgeSplitting(t *testing.T) {
	g := parse.MustParse(fig10)
	orig := g.Clone()
	st := Run(g)
	g.MustValidate()
	if st.SplitEdges == 0 {
		t.Error("no critical edges split")
	}
	// n3 must no longer recompute on the path through n1.
	if hasInstr(g.BlockByName("n3"), "x:=a+b") {
		t.Errorf("x := a+b still in n3:\n%s", printer.String(g))
	}
	// The synthetic node on the former critical edge n2→n3 carries it.
	synth := g.BlockByName("sn2_n3")
	if synth == nil || !hasInstr(synth, "x:=a+b") {
		t.Errorf("synthetic node missing the assignment:\n%s", printer.String(g))
	}
	envs := []map[ir.Var]int64{
		{"d": -5, "a": 1, "b": 2},
		{"d": 5, "a": 1, "b": 2},
		{"d": 50, "a": 1, "b": 2},
	}
	checkSemantics(t, orig, g, envs)
	// Path through n1: previously 2 evaluations of a+b, now 1.
	before := interp.Run(orig, map[ir.Var]int64{"d": -5, "a": 1, "b": 2}, 0)
	after := interp.Run(g, map[ir.Var]int64{"d": -5, "a": 1, "b": 2}, 0)
	if before.Counts.ExprEvals != 2 || after.Counts.ExprEvals != 1 {
		t.Errorf("expr evals %d -> %d, want 2 -> 1", before.Counts.ExprEvals, after.Counts.ExprEvals)
	}
	// Path avoiding both assignments must not compute a+b at all.
	after2 := interp.Run(g, map[ir.Var]int64{"d": 50, "a": 1, "b": 2}, 0)
	if after2.Counts.ExprEvals != 0 {
		t.Errorf("unrelated path computes a+b %d times — motion was unsafe", after2.Counts.ExprEvals)
	}
}

func TestRunIsIdempotent(t *testing.T) {
	for _, src := range []string{fig02, fig08, fig10} {
		g := parse.MustParse(src)
		Run(g)
		enc := g.Encode()
		st := Run(g)
		if g.Encode() != enc {
			t.Errorf("%s: second Run changed the program", g.Name)
		}
		if st.Eliminated != 0 {
			t.Errorf("%s: second Run eliminated %d", g.Name, st.Eliminated)
		}
	}
}

func TestRestrictedNeverBeatsUnrestricted(t *testing.T) {
	for _, src := range []string{fig02, fig08, fig10} {
		gu := parse.MustParse(src)
		gr := parse.MustParse(src)
		Run(gu)
		RunRestricted(gr)
		envs := []map[ir.Var]int64{
			{"c": -1, "d": -5, "a": 1, "b": 2, "x": 3, "y": 4, "z": 5},
			{"c": 1, "d": 5, "a": 1, "b": 2, "x": 3, "y": 4, "z": 5},
			{"c": 1, "d": 50, "a": 1, "b": 2, "x": 3, "y": 90, "z": 5},
		}
		for _, env := range envs {
			ru := interp.Run(gu, env, 0)
			rr := interp.Run(gr, env, 0)
			if ru.Counts.AssignExecs > rr.Counts.AssignExecs {
				t.Errorf("%s env %v: unrestricted executes more assignments (%d > %d)",
					gu.Name, env, ru.Counts.AssignExecs, rr.Counts.AssignExecs)
			}
		}
	}
}
