package am

import (
	"testing"

	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
)

func TestRunBoundedCapBites(t *testing.T) {
	// The cross-block redundant chain needs one round per link (the
	// within-block cascade of EliminateBlocks does not apply across
	// blocks); with a cap of 1, later links survive.
	g := cfggen.RedundantChain(4)
	full := g.Clone()
	st := RunBounded(g, 1)
	if st.Iterations != 1 {
		t.Errorf("iterations = %d", st.Iterations)
	}
	if st.Eliminated >= 4 {
		t.Errorf("eliminated = %d; the cap did not bite", st.Eliminated)
	}
	stFull := Run(full)
	if stFull.Eliminated != 4 {
		t.Errorf("full run eliminated %d, want 4", stFull.Eliminated)
	}
	// Bounded result is still correct.
	env := map[ir.Var]int64{"v0": 3}
	r1 := interp.Run(g, env, 0)
	r2 := interp.Run(full, env, 0)
	if !interp.TraceEqual(r1, r2) {
		t.Error("bounded run changed semantics")
	}
}

func TestRunBoundedZeroMeansOne(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    x := p + q
    x := p + q
    goto e
  }
  block e { out(x) }
}
`)
	st := RunBounded(g, 0)
	if st.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", st.Iterations)
	}
	if st.Eliminated != 1 {
		t.Errorf("eliminated = %d", st.Eliminated)
	}
}

func TestEliminateFirstReachesSameCosts(t *testing.T) {
	for _, src := range []string{fig02, fig08, fig10} {
		g1 := parse.MustParse(src)
		g2 := parse.MustParse(src)
		Run(g1)
		RunEliminateFirst(g2)
		g1.MustValidate()
		g2.MustValidate()
		envs := []map[ir.Var]int64{
			{"c": -1, "d": -5, "a": 1, "b": 2, "x": 3, "y": 4, "z": 5},
			{"c": 1, "d": 5, "a": 1, "b": 2, "x": 3, "y": 4, "z": 5},
			{"c": 1, "d": 50, "a": 1, "b": 2, "x": 3, "y": 90, "z": 5},
		}
		for _, env := range envs {
			r1 := interp.Run(g1, env, 0)
			r2 := interp.Run(g2, env, 0)
			if !interp.TraceEqual(r1, r2) {
				t.Fatalf("%s: orders diverge semantically", g1.Name)
			}
			if r1.Counts.ExprEvals != r2.Counts.ExprEvals ||
				r1.Counts.AssignExecs != r2.Counts.AssignExecs {
				t.Errorf("%s env %v: costs differ between orders: evals %d/%d assigns %d/%d",
					g1.Name, env, r1.Counts.ExprEvals, r2.Counts.ExprEvals,
					r1.Counts.AssignExecs, r2.Counts.AssignExecs)
			}
		}
	}
}
