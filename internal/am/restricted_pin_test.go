package am

import (
	"testing"

	"assignmentmotion/internal/aht"
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/corpus"
	"assignmentmotion/internal/fault"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/rae"
)

// This file pins the batched admission test of TryRunRestrictedWith to
// the historical per-pattern-clone implementation: the reference below is
// a verbatim copy of the pre-batching fixpoint loop, and the tests assert
// byte-identical output (and identical Stats) across the whole golden
// corpus plus a generated graph sweep. If a future change makes the
// batched trial diverge from per-pattern trials — the per-pattern
// hoisting analyses interfering would be the mechanism — these tests
// catch it with the offending graph named.

// profitableSolo is the historical admission test: one clone and one
// hoist+eliminate trial for a single pattern.
func profitableSolo(g *ir.Graph, p ir.AssignPattern) bool {
	trial := g.Clone()
	before := trial.CountPattern(p)
	if before == 0 {
		return false
	}
	aht.ApplyMasked(trial, func(q ir.AssignPattern) bool { return q == p })
	rae.EliminateBlocks(trial)
	return trial.CountPattern(p) < before
}

// runRestrictedReference is the pre-batching TryRunRestrictedWith,
// kept as the differential oracle: per-pattern profitability trials, each
// on its own clone, evaluated on the evolving graph.
func runRestrictedReference(g *ir.Graph, s *analysis.Session) (Stats, error) {
	var st Stats
	st.SplitEdges = g.SplitCriticalEdges()
	limit := iterationLimit(g)
	for {
		st.Iterations++
		if st.Iterations > limit {
			st.Iterations = limit
			return st, &fault.NoFixpointError{Proc: "am-restricted", Iterations: limit, Limit: limit}
		}
		removed := rae.EliminateBlocksWith(g, s)
		st.Eliminated += removed
		changed := removed > 0

		u, _ := s.Universe(g)
		for _, p := range u.Patterns() {
			if profitableSolo(g, p) {
				if aht.ApplyWith(g, s, func(q ir.AssignPattern) bool { return q == p }) {
					changed = true
				}
				r := rae.EliminateBlocksWith(g, s)
				st.Eliminated += r
				changed = changed || r > 0
			}
		}
		if !changed {
			return st, nil
		}
	}
}

func pinOne(t *testing.T, name string, g *ir.Graph) {
	t.Helper()
	batched := g.Clone()
	reference := g.Clone()

	sb := analysis.NewSession()
	stB, errB := TryRunRestrictedWith(batched, sb)
	sb.Close()
	sr := analysis.NewSession()
	stR, errR := runRestrictedReference(reference, sr)
	sr.Close()

	if (errB == nil) != (errR == nil) {
		t.Fatalf("%s: batched err %v, reference err %v", name, errB, errR)
	}
	if got, want := batched.Encode(), reference.Encode(); got != want {
		t.Errorf("%s: batched admission diverges from per-pattern reference\nbatched:\n%s\nreference:\n%s", name, got, want)
	}
	if stB != stR {
		t.Errorf("%s: stats diverge: batched %+v, reference %+v", name, stB, stR)
	}
}

func TestRestrictedBatchedAdmissionPinsGoldenCorpus(t *testing.T) {
	for _, name := range corpus.Names() {
		pinOne(t, name, corpus.Load(name))
	}
}

func TestRestrictedBatchedAdmissionPinsGeneratedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("generated sweep is slow under -short")
	}
	for seed := 0; seed < 40; seed++ {
		g := cfggen.Structured(int64(seed), cfggen.Config{Size: 12})
		pinOne(t, g.Name, g)
	}
	for seed := 0; seed < 20; seed++ {
		g := cfggen.Unstructured(int64(seed), cfggen.Config{Size: 12})
		pinOne(t, g.Name, g)
	}
	for k := 1; k <= 6; k++ {
		pinOne(t, "chain", cfggen.RedundantChain(k))
	}
}
