// Package am drives the paper's assignment motion phase: the exhaustive
// fixpoint of assignment hoisting (internal/aht) and redundant assignment
// elimination (internal/rae). Iterating the two procedures until the
// program stabilizes is what captures all second-order effects —
// hoisting-elimination, hoisting-hoisting, elimination-hoisting, and
// elimination-elimination (§4.3).
//
// The package also implements the restricted baseline of Dhamdhere [6]
// discussed in §1.4, which only performs "immediately profitable"
// hoistings — those that enable the elimination of an occurrence of the
// hoisted pattern — and therefore misses second-order effects (Figure 8).
//
// Fixpoint detection is signal-based: aht.ApplyWith reports precisely
// whether it changed any instruction sequence and rae's removal count is
// zero exactly when it left the program alone, so a round with
// !hoisted && removed == 0 is the fixpoint. The iteration limit stays as
// a backstop that turns a termination bug into a typed failure instead of
// a hang: the Try* entry points return it as a *fault.NoFixpointError,
// and each round additionally honours the session's budget and
// cancellation context (fault.ErrBudgetExceeded / fault.ErrCanceled).
// The legacy Run* entry points are thin wrappers that keep the historical
// contract — they panic on any of those failures.
package am

import (
	"assignmentmotion/internal/aht"
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/fault"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"
	"assignmentmotion/internal/rae" // block-level elimination: identical results (see rae.EliminateBlocks), smaller solver
)

func init() {
	pass.Register(pass.Pass{
		Name:        "am",
		Description: "exhaustive assignment motion: the aht/rae fixpoint capturing all second-order effects",
		Ref:         "§4.3, Tables 1–2, Lemma 4.2",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			st, err := TryRunWith(g, s)
			return pass.Stats{Changes: st.Eliminated, Iterations: st.Iterations}, err
		},
	})
	pass.Register(pass.Pass{
		Name:        "am-restricted",
		Description: "Dhamdhere-style restricted AM: only immediately profitable hoistings (misses second-order effects)",
		Ref:         "§1.4, Figure 8; Dhamdhere [6]",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			st, err := TryRunRestrictedWith(g, s)
			return pass.Stats{Changes: st.Eliminated, Iterations: st.Iterations}, err
		},
	})
}

// Stats reports what one AM-phase run did.
type Stats struct {
	// Iterations is the number of hoist+eliminate rounds until
	// stabilization (at least 1; the final round observes no change).
	Iterations int
	// Eliminated is the total number of assignment occurrences removed
	// by redundant assignment elimination.
	Eliminated int
	// SplitEdges is the number of critical edges split up front.
	SplitEdges int
}

// Run applies the assignment motion phase to g in place: it splits
// critical edges, then alternates aht and rae until the program is
// invariant under both. The result is relatively assignment-optimal in the
// universe G* (Lemma 4.2). It panics if the fixpoint fails (see TryRun).
func Run(g *ir.Graph) Stats {
	s := analysis.NewSession()
	defer s.Close()
	return RunWith(g, s)
}

// TryRun is Run returning fixpoint failure as a typed error instead of
// panicking.
func TryRun(g *ir.Graph) (Stats, error) {
	s := analysis.NewSession()
	defer s.Close()
	return TryRunWith(g, s)
}

// RunWith is Run against an existing session, so a caller driving several
// phases (core.Optimize) shares one arena and one universe cache across
// all of them. Like Run it panics when the fixpoint fails; fault-aware
// callers use TryRunWith.
func RunWith(g *ir.Graph, s *analysis.Session) Stats {
	st, err := TryRunWith(g, s)
	if err != nil {
		panic("am: " + err.Error())
	}
	return st
}

// Hooks observe one exhaustive AM fixpoint from the inside, round by
// round — the seam the incremental recorder uses to capture boundary
// dataflow facts and per-region change signals without perturbing the
// run. Every field is optional. Vectors handed to the hooks live in the
// session arena and are only valid for the duration of the call.
type Hooks struct {
	// Begin fires once, after critical edges are split and before the
	// first round — the post-initialization state region digests and the
	// pattern universe snapshot are taken from.
	Begin func(g *ir.Graph, s *analysis.Session)
	// BeginRound fires at the start of round k (1-based).
	BeginRound func(k int)
	// HoistInfo receives the hoisting analysis before the rewrite.
	HoistInfo func(g *ir.Graph, info *aht.Info)
	// HoistDone receives per-block change flags after the rewrite.
	HoistDone func(g *ir.Graph, changedBlocks []bool)
	// ElimSolve receives the availability solve before the removal walk.
	ElimSolve func(g *ir.Graph, px *analysis.PatternIndex, availIn, availOut []bitvec.Vec)
	// ElimDone receives per-block removal counts after the walk.
	ElimDone func(g *ir.Graph, removedByBlock []int)
	// End fires once at the fixpoint, on success only.
	End func(g *ir.Graph, st Stats)
}

// TryRunWith is the fallible core of the assignment-motion phase. An
// iteration-limit overrun returns a *fault.NoFixpointError; an exhausted
// session budget or a canceled session context returns the corresponding
// typed fault error. In every error case the graph is left in the valid,
// semantics-preserved state of the last completed round — each round is a
// complete admissible transformation, so stopping between rounds never
// corrupts the program (it is merely not optimal yet).
func TryRunWith(g *ir.Graph, s *analysis.Session) (Stats, error) {
	return TryRunObservedWith(g, s, nil)
}

// TryRunObservedWith is TryRunWith reporting each round's analyses and
// rewrites to h (nil for the unobserved path). The observed run is
// byte-identical to the unobserved one — the hooks only read.
func TryRunObservedWith(g *ir.Graph, s *analysis.Session, h *Hooks) (Stats, error) {
	if h == nil {
		h = &Hooks{}
	}
	var st Stats
	st.SplitEdges = g.SplitCriticalEdges()
	if h.Begin != nil {
		h.Begin(g, s)
	}
	limit := iterationLimit(g)
	for {
		st.Iterations++
		if st.Iterations > limit {
			st.Iterations = limit
			return st, &fault.NoFixpointError{Proc: "am", Iterations: limit, Limit: limit}
		}
		if err := s.CheckBudget(st.Iterations); err != nil {
			st.Iterations--
			return st, err
		}
		if h.BeginRound != nil {
			h.BeginRound(st.Iterations)
		}
		var onInfo func(*aht.Info)
		var onHoistDone func([]bool)
		if h.HoistInfo != nil {
			onInfo = func(info *aht.Info) { h.HoistInfo(g, info) }
		}
		if h.HoistDone != nil {
			onHoistDone = func(changed []bool) { h.HoistDone(g, changed) }
		}
		hoisted := aht.ApplyObservedWith(g, s, nil, onInfo, onHoistDone)
		var onSolve func(*analysis.PatternIndex, []bitvec.Vec, []bitvec.Vec)
		var onElimDone func([]int)
		if h.ElimSolve != nil {
			onSolve = func(px *analysis.PatternIndex, in, out []bitvec.Vec) { h.ElimSolve(g, px, in, out) }
		}
		if h.ElimDone != nil {
			onElimDone = func(removed []int) { h.ElimDone(g, removed) }
		}
		removed := rae.EliminateBlocksObservedWith(g, s, onSolve, onElimDone)
		st.Eliminated += removed
		// aht's report is textual-change-precise and rae only deletes, so a
		// hoisting round can never be silently undone by the elimination
		// that follows it: no change in either procedure is the fixpoint.
		if !hoisted && removed == 0 {
			if h.End != nil {
				h.End(g, st)
			}
			return st, nil
		}
	}
}

// RunBounded is Run with the number of hoist+eliminate rounds capped at
// maxIterations — the §7 mitigation for time-critical compilation
// ("alternatively, one may limit the number of allowed hoisting and
// elimination steps heuristically"). The result is still semantics
// preserving and never worse than the input; it is simply not guaranteed
// to be relatively optimal when the cap bites. A cap <= 0 means one round.
func RunBounded(g *ir.Graph, maxIterations int) Stats {
	if maxIterations <= 0 {
		maxIterations = 1
	}
	s := analysis.NewSession()
	defer s.Close()
	var st Stats
	st.SplitEdges = g.SplitCriticalEdges()
	for st.Iterations < maxIterations {
		st.Iterations++
		hoisted := aht.ApplyWith(g, s, nil)
		removed := rae.EliminateBlocksWith(g, s)
		st.Eliminated += removed
		if !hoisted && removed == 0 {
			return st
		}
	}
	return st
}

// RunEliminateFirst is Run with the two procedures applied in the
// opposite order within each round (rae before aht). By the local
// confluence of the rewrite relation (Lemma 3.6) both orders reach
// cost-equivalent fixpoints; the verify package checks this empirically.
// Panics on fixpoint failure, like Run.
func RunEliminateFirst(g *ir.Graph) Stats {
	st, err := TryRunEliminateFirst(g)
	if err != nil {
		panic("am: " + err.Error())
	}
	return st
}

// TryRunEliminateFirst is RunEliminateFirst with typed-error reporting.
func TryRunEliminateFirst(g *ir.Graph) (Stats, error) {
	s := analysis.NewSession()
	defer s.Close()
	var st Stats
	st.SplitEdges = g.SplitCriticalEdges()
	limit := iterationLimit(g)
	for {
		st.Iterations++
		if st.Iterations > limit {
			st.Iterations = limit
			return st, &fault.NoFixpointError{Proc: "am (eliminate-first)", Iterations: limit, Limit: limit}
		}
		if err := s.CheckBudget(st.Iterations); err != nil {
			st.Iterations--
			return st, err
		}
		removed := rae.EliminateBlocksWith(g, s)
		st.Eliminated += removed
		hoisted := aht.ApplyWith(g, s, nil)
		if removed == 0 && !hoisted {
			return st, nil
		}
	}
}

// RunRestricted applies Dhamdhere-style restricted assignment motion: a
// hoisting of pattern α is performed only when it is immediately
// profitable, i.e. when hoisting α (followed by redundant assignment
// elimination) strictly decreases the number of occurrences of α. Rounds
// repeat until no profitable hoisting remains. Redundant assignment
// elimination itself is always applied — the restriction is on hoisting
// only, matching [6]. Panics on fixpoint failure.
func RunRestricted(g *ir.Graph) Stats {
	s := analysis.NewSession()
	defer s.Close()
	return RunRestrictedWith(g, s)
}

// RunRestrictedWith is RunRestricted against an existing session.
func RunRestrictedWith(g *ir.Graph, s *analysis.Session) Stats {
	st, err := TryRunRestrictedWith(g, s)
	if err != nil {
		panic("am: " + err.Error())
	}
	return st
}

// TryRunRestrictedWith is the fallible core of restricted AM, with the
// same error contract as TryRunWith.
func TryRunRestrictedWith(g *ir.Graph, s *analysis.Session) (Stats, error) {
	var st Stats
	st.SplitEdges = g.SplitCriticalEdges()
	limit := iterationLimit(g)
	for {
		st.Iterations++
		if st.Iterations > limit {
			st.Iterations = limit
			return st, &fault.NoFixpointError{Proc: "am-restricted", Iterations: limit, Limit: limit}
		}
		if err := s.CheckBudget(st.Iterations); err != nil {
			st.Iterations--
			return st, err
		}
		removed := rae.EliminateBlocksWith(g, s)
		st.Eliminated += removed
		changed := removed > 0

		// The session universe may carry patterns whose occurrences are all
		// gone by now; profitableSet reports false for those (occurrence
		// count 0), so the stale entries are harmless.
		u, _ := s.Universe(g)
		pats := u.Patterns()
		prof := profitableSet(g, pats)
		for i, p := range pats {
			if !prof[i] {
				continue
			}
			hoisted := aht.ApplyWith(g, s, func(q ir.AssignPattern) bool { return q == p })
			r := rae.EliminateBlocksWith(g, s)
			st.Eliminated += r
			if hoisted || r > 0 {
				changed = true
				// The graph evolved: admission decisions for the patterns
				// still ahead must be re-derived from the new state —
				// hoisting one chain link can make the next one profitable
				// within the same round (and, conversely, consume the
				// profit of a later pattern). One batched trial per CHANGE
				// instead of one clone per PATTERN: rounds where nothing
				// fires cost a single trial.
				copy(prof[i+1:], profitableSet(g, pats)[i+1:])
			}
		}
		if !changed {
			return st, nil
		}
	}
}

// profitableSet computes Dhamdhere's admission test — hoisting pattern p
// followed by elimination strictly decreases p's occurrence count — for
// every pattern of the universe in ONE batched trial: clone g once, hoist
// all patterns simultaneously, eliminate, and compare the per-pattern
// (masked) occurrence counts against the originals. The per-pattern
// hoisting analyses are independent (see aht.ApplyMasked), so the
// combined trial observes the same per-pattern deltas as |pats| solo
// trials would — the pin tests in restricted_pin_test.go certify batched
// admission byte-identical to the historical per-pattern-clone version
// across the golden corpus and a generated sweep. The trial runs on the
// uncached nil-session path; sharing the caller's session would rebind
// its caches to the throwaway graph.
func profitableSet(g *ir.Graph, pats []ir.AssignPattern) []bool {
	prof := make([]bool, len(pats))
	before := make([]int, len(pats))
	candidates := 0
	for i, p := range pats {
		before[i] = g.CountPattern(p)
		if before[i] > 0 {
			candidates++
		}
	}
	if candidates == 0 {
		return prof
	}
	trial := g.Clone()
	aht.Apply(trial)
	rae.EliminateBlocks(trial)
	for i, p := range pats {
		if before[i] > 0 && trial.CountPattern(p) < before[i] {
			prof[i] = true
		}
	}
	return prof
}

// iterationLimit bounds the fixpoint loop. §4.5 shows the number of
// procedure applications is at most quadratic in the program size; the
// limit is well above that and only exists to turn a termination bug into
// a loud failure instead of a hang.
func iterationLimit(g *ir.Graph) int {
	n := g.InstrCount() + len(g.Blocks)
	return 4*n*n + 64
}
