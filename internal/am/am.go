// Package am drives the paper's assignment motion phase: the exhaustive
// fixpoint of assignment hoisting (internal/aht) and redundant assignment
// elimination (internal/rae). Iterating the two procedures until the
// program stabilizes is what captures all second-order effects —
// hoisting-elimination, hoisting-hoisting, elimination-hoisting, and
// elimination-elimination (§4.3).
//
// The package also implements the restricted baseline of Dhamdhere [6]
// discussed in §1.4, which only performs "immediately profitable"
// hoistings — those that enable the elimination of an occurrence of the
// hoisted pattern — and therefore misses second-order effects (Figure 8).
package am

import (
	"fmt"

	"assignmentmotion/internal/aht"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/rae" // block-level elimination: identical results (see rae.EliminateBlocks), smaller solver
)

// Stats reports what one AM-phase run did.
type Stats struct {
	// Iterations is the number of hoist+eliminate rounds until
	// stabilization (at least 1; the final round observes no change).
	Iterations int
	// Eliminated is the total number of assignment occurrences removed
	// by redundant assignment elimination.
	Eliminated int
	// SplitEdges is the number of critical edges split up front.
	SplitEdges int
}

// Run applies the assignment motion phase to g in place: it splits
// critical edges, then alternates aht and rae until the program is
// invariant under both. The result is relatively assignment-optimal in the
// universe G* (Lemma 4.2).
func Run(g *ir.Graph) Stats {
	var st Stats
	st.SplitEdges = g.SplitCriticalEdges()
	limit := iterationLimit(g)
	for {
		st.Iterations++
		if st.Iterations > limit {
			panic(fmt.Sprintf("am: no fixpoint after %d iterations (termination bug)", limit))
		}
		before := g.Encode()
		hoisted := aht.Apply(g)
		st.Eliminated += rae.EliminateBlocks(g)
		if !hoisted && g.Encode() == before {
			return st
		}
		if g.Encode() == before {
			return st
		}
	}
}

// RunBounded is Run with the number of hoist+eliminate rounds capped at
// maxIterations — the §7 mitigation for time-critical compilation
// ("alternatively, one may limit the number of allowed hoisting and
// elimination steps heuristically"). The result is still semantics
// preserving and never worse than the input; it is simply not guaranteed
// to be relatively optimal when the cap bites. A cap <= 0 means one round.
func RunBounded(g *ir.Graph, maxIterations int) Stats {
	if maxIterations <= 0 {
		maxIterations = 1
	}
	var st Stats
	st.SplitEdges = g.SplitCriticalEdges()
	for st.Iterations < maxIterations {
		st.Iterations++
		before := g.Encode()
		aht.Apply(g)
		st.Eliminated += rae.EliminateBlocks(g)
		if g.Encode() == before {
			return st
		}
	}
	return st
}

// RunEliminateFirst is Run with the two procedures applied in the
// opposite order within each round (rae before aht). By the local
// confluence of the rewrite relation (Lemma 3.6) both orders reach
// cost-equivalent fixpoints; the verify package checks this empirically.
func RunEliminateFirst(g *ir.Graph) Stats {
	var st Stats
	st.SplitEdges = g.SplitCriticalEdges()
	limit := iterationLimit(g)
	for {
		st.Iterations++
		if st.Iterations > limit {
			panic(fmt.Sprintf("am: no fixpoint after %d iterations (termination bug)", limit))
		}
		before := g.Encode()
		st.Eliminated += rae.EliminateBlocks(g)
		aht.Apply(g)
		if g.Encode() == before {
			return st
		}
	}
}

// RunRestricted applies Dhamdhere-style restricted assignment motion: a
// hoisting of pattern α is performed only when it is immediately
// profitable, i.e. when hoisting α (followed by redundant assignment
// elimination) strictly decreases the number of occurrences of α. Rounds
// repeat until no profitable hoisting remains. Redundant assignment
// elimination itself is always applied — the restriction is on hoisting
// only, matching [6].
func RunRestricted(g *ir.Graph) Stats {
	var st Stats
	st.SplitEdges = g.SplitCriticalEdges()
	limit := iterationLimit(g)
	for {
		st.Iterations++
		if st.Iterations > limit {
			panic(fmt.Sprintf("am: restricted AM did not stabilize after %d iterations", limit))
		}
		before := g.Encode()
		st.Eliminated += rae.EliminateBlocks(g)

		u := ir.AssignUniverse(g)
		for _, p := range u.Patterns() {
			if profitable(g, p) {
				aht.ApplyMasked(g, func(q ir.AssignPattern) bool { return q.Key() == p.Key() })
				st.Eliminated += rae.EliminateBlocks(g)
			}
		}
		if g.Encode() == before {
			return st
		}
	}
}

// profitable reports whether hoisting pattern p followed by elimination
// strictly decreases p's occurrence count — Dhamdhere's admission test.
func profitable(g *ir.Graph, p ir.AssignPattern) bool {
	trial := g.Clone()
	before := trial.CountPattern(p)
	if before == 0 {
		return false
	}
	aht.ApplyMasked(trial, func(q ir.AssignPattern) bool { return q.Key() == p.Key() })
	rae.EliminateBlocks(trial)
	return trial.CountPattern(p) < before
}

// iterationLimit bounds the fixpoint loop. §4.5 shows the number of
// procedure applications is at most quadratic in the program size; the
// limit is well above that and only exists to turn a termination bug into
// a loud failure instead of a hang.
func iterationLimit(g *ir.Graph) int {
	n := g.InstrCount() + len(g.Blocks)
	return 4*n*n + 64
}
