package core

import (
	"reflect"
	"testing"

	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/printer"
	"assignmentmotion/internal/verify"
)

// Figure 4: the running example.
const running = `
graph running {
  entry b1
  exit b4
  block b1 {
    y := c + d
    goto b2
  }
  block b2 {
    if x + z > y + i then b3 else b4
  }
  block b3 {
    y := c + d
    x := y + z
    i := i + x
    goto b2
  }
  block b4 {
    x := y + z
    x := c + d
    out(i, x, y)
  }
}
`

func keys(b *ir.Block) []string {
	out := make([]string, 0, len(b.Instrs))
	for _, in := range b.Instrs {
		out = append(out, in.Key())
	}
	return out
}

func TestFigure12Initialization(t *testing.T) {
	g := parse.MustParse(running)
	n := Initialize(g)
	g.MustValidate()
	// 8 sites: y:=c+d (b1), both sides of b2's condition, three
	// assignments in b3, and two in b4.
	if n != 8 {
		t.Errorf("decomposed %d sites, want 8", n)
	}
	// Figure 12, with the paper's temp numbering: h1=c+d, h2=x+z, h3=y+i,
	// h4=y+z, h5=i+x.
	want := map[string][]string{
		"b1": {"h1:=c+d", "y:=h1"},
		"b2": {"h2:=x+z", "h3:=y+i", "h2>h3"},
		"b3": {"h1:=c+d", "y:=h1", "h4:=y+z", "x:=h4", "h5:=i+x", "i:=h5"},
		"b4": {"h4:=y+z", "x:=h4", "h1:=c+d", "x:=h1", "out(i,x,y)"},
	}
	for name, w := range want {
		if got := keys(g.BlockByName(name)); !reflect.DeepEqual(got, w) {
			t.Errorf("%s = %v, want %v", name, got, w)
		}
	}
}

func TestInitializeIdempotent(t *testing.T) {
	g := parse.MustParse(running)
	Initialize(g)
	enc := g.Encode()
	if n := Initialize(g); n != 0 {
		t.Errorf("second Initialize decomposed %d", n)
	}
	if g.Encode() != enc {
		t.Error("second Initialize changed the program")
	}
}

func TestInitializeSemantics(t *testing.T) {
	g := parse.MustParse(running)
	orig := g.Clone()
	Initialize(g)
	for _, env := range runningEnvs() {
		r1 := interp.Run(orig, env, 0)
		r2 := interp.Run(g, env, 0)
		if !interp.TraceEqual(r1, r2) {
			t.Errorf("env %v: trace %v -> %v", env, r1.Trace, r2.Trace)
		}
		// Initialization changes no expression evaluation counts.
		if r1.Counts.ExprEvals != r2.Counts.ExprEvals {
			t.Errorf("env %v: expr evals %d -> %d", env, r1.Counts.ExprEvals, r2.Counts.ExprEvals)
		}
	}
}

func TestFigure15GlobalAlgorithm(t *testing.T) {
	g := parse.MustParse(running)
	orig := g.Clone()
	Optimize(g)
	g.MustValidate()

	// Figure 5 / Figure 15: the unique result of the uniform algorithm.
	want := map[string][]string{
		"b1": {"h1:=c+d", "y:=h1", "h2:=x+z", "x:=y+z"},
		"b2": {"h2>y+i"},
		"b3": {"i:=i+x", "h2:=x+z"},
		"b4": {"x:=h1", "out(i,x,y)"},
	}
	for name, w := range want {
		if got := keys(g.BlockByName(name)); !reflect.DeepEqual(got, w) {
			t.Errorf("%s = %v, want %v\nfull result:\n%s", name, got, w, printer.String(g))
		}
	}
	checkSame(t, orig, g)
}

func TestGlobAlgSemanticsAndWins(t *testing.T) {
	g := parse.MustParse(running)
	orig := g.Clone()
	Optimize(g)
	for _, env := range runningEnvs() {
		r1 := interp.Run(orig, env, 0)
		r2 := interp.Run(g, env, 0)
		if r2.Counts.ExprEvals > r1.Counts.ExprEvals {
			t.Errorf("env %v: expression evaluations increased %d -> %d",
				env, r1.Counts.ExprEvals, r2.Counts.ExprEvals)
		}
	}
	// On a looping execution, the win must be strict: y := c+d and
	// x := y+z leave the loop.
	env := map[ir.Var]int64{"x": 100, "z": 0, "y": 0, "i": 1, "c": 2, "d": 3}
	r1 := interp.Run(orig, env, 0)
	r2 := interp.Run(g, env, 0)
	if r2.Counts.ExprEvals >= r1.Counts.ExprEvals {
		t.Errorf("loop env: expr evals %d -> %d, want strict decrease", r1.Counts.ExprEvals, r2.Counts.ExprEvals)
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	g := parse.MustParse(running)
	Optimize(g)
	enc := g.Encode()
	Optimize(g)
	if g.Encode() != enc {
		t.Errorf("Optimize not idempotent:\n%s\nvs\n%s", enc, g.Encode())
	}
}

// Figure 3: after initialization, AM alone performs the motion EM would.
func TestFigure03AMSubsumesEM(t *testing.T) {
	g := parse.MustParse(`
graph fig03 {
  entry n1
  exit n4
  block n1 { if c < 0 then n2 else n3 }
  block n2 {
    z := a + b
    x := a + b
    goto n4
  }
  block n3 {
    x := a + b
    y := x + y
    if y < 100 then n3 else n4
  }
  block n4 { out(x, y, z) }
}
`)
	orig := g.Clone()
	Optimize(g)
	g.MustValidate()
	// a+b must be evaluated exactly once on every execution — the
	// lazy placement may keep one static site per path, so the check is
	// dynamic, not static.
	envs := []map[ir.Var]int64{
		{"c": -1, "a": 2, "b": 3, "y": 0},  // n2 path
		{"c": 1, "a": 2, "b": 3, "y": 0},   // loop path, many iterations
		{"c": 1, "a": 2, "b": 3, "y": 999}, // loop path, zero iterations
	}
	for _, env := range envs {
		r := interp.Run(g, env, 0)
		abEvals := 0
		// Count a+b evaluations by comparing against a graph with the
		// pattern removed is overkill; instead rely on the fact that the
		// only compound expressions in fig03 are a+b and x+y, and x+y is
		// loop-carried (self-referential via y), so on the n2 path all
		// evaluations are a+b.
		if env["c"] < 0 {
			abEvals = r.Counts.ExprEvals
			if abEvals != 1 {
				t.Errorf("n2 path: a+b evaluated %d times, want 1\n%s", abEvals, printer.String(g))
			}
		}
		ro := interp.Run(orig, env, 0)
		if !interp.TraceEqual(ro, r) {
			t.Errorf("env %v: trace changed %v -> %v", env, ro.Trace, r.Trace)
		}
		if r.Counts.ExprEvals > ro.Counts.ExprEvals {
			t.Errorf("env %v: expr evals increased %d -> %d", env, ro.Counts.ExprEvals, r.Counts.ExprEvals)
		}
	}
	// On the loop path the win is strict: the original evaluates a+b once
	// per iteration, the optimized program once in total.
	envLoop := map[ir.Var]int64{"c": 1, "a": 2, "b": 3, "y": 0}
	if r1, r2 := interp.Run(orig, envLoop, 0), interp.Run(g, envLoop, 0); r2.Counts.ExprEvals >= r1.Counts.ExprEvals {
		t.Errorf("loop path: expr evals %d -> %d, want strict decrease", r1.Counts.ExprEvals, r2.Counts.ExprEvals)
	}
}

func TestConditionOnlyExpression(t *testing.T) {
	// An expression that occurs only in a branch condition is still
	// subject to motion: the loop-invariant condition side x+z must be
	// computed once, outside the loop.
	g := parse.MustParse(`
graph condonly {
  entry b1
  exit b3
  block b1 { goto b2 }
  block b2 {
    i := i + 1
    if x + z > i then b2 else b3
  }
  block b3 { out(i) }
}
`)
	orig := g.Clone()
	Optimize(g)
	g.MustValidate()
	env := map[ir.Var]int64{"x": 5, "z": 5, "i": 0}
	r1 := interp.Run(orig, env, 0)
	r2 := interp.Run(g, env, 0)
	if !interp.TraceEqual(r1, r2) {
		t.Fatalf("trace changed: %v vs %v\n%s", r1.Trace, r2.Trace, printer.String(g))
	}
	// Original: x+z evaluated 10 times (once per iteration) plus i+1s.
	// Optimized: x+z once.
	if r2.Counts.ExprEvals >= r1.Counts.ExprEvals {
		t.Errorf("expr evals %d -> %d, want strict decrease\n%s",
			r1.Counts.ExprEvals, r2.Counts.ExprEvals, printer.String(g))
	}
}

func TestStraightLineCSE(t *testing.T) {
	// Classic common-subexpression elimination falls out: a+b computed
	// once, second occurrence uses the temp, single-use temps are
	// reconstructed away.
	g := parse.MustParse(`
graph cse {
  entry a
  exit e
  block a {
    x := a + b
    y := a + b
    goto e
  }
  block e { out(x, y) }
}
`)
	orig := g.Clone()
	Optimize(g)
	env := map[ir.Var]int64{"a": 3, "b": 4}
	r := interp.Run(g, env, 0)
	if r.Counts.ExprEvals != 1 {
		t.Errorf("expr evals = %d, want 1\n%s", r.Counts.ExprEvals, printer.String(g))
	}
	checkSame(t, orig, g)
}

func TestNoTempsForSingleUse(t *testing.T) {
	// A once-used expression must not retain a temporary: the flush
	// reconstructs it (temporary-optimality, Theorem 5.4).
	g := parse.MustParse(`
graph single {
  entry a
  exit e
  block a {
    x := a + b
    goto e
  }
  block e { out(x) }
}
`)
	Optimize(g)
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == ir.KindAssign && g.IsTemp(in.LHS) {
				t.Errorf("unnecessary temporary kept: %v\n%s", in, printer.String(g))
			}
		}
	}
}

func runningEnvs() []map[ir.Var]int64 {
	return []map[ir.Var]int64{
		{"x": 0, "z": 0, "y": 0, "i": 0, "c": 0, "d": 0},
		{"x": 10, "z": 5, "y": 1, "i": 1, "c": 2, "d": 3},
		{"x": 100, "z": 50, "y": 0, "i": 1, "c": -2, "d": 3},
		{"x": -5, "z": 0, "y": 9, "i": 2, "c": 1, "d": 1},
	}
}

func checkSame(t *testing.T, orig, xform *ir.Graph) {
	t.Helper()
	for _, env := range runningEnvs() {
		r1 := interp.Run(orig, env, 0)
		r2 := interp.Run(xform, env, 0)
		if !interp.TraceEqual(r1, r2) {
			t.Errorf("env %v: trace changed %v -> %v\n%s", env, r1.Trace, r2.Trace, printer.String(xform))
		}
	}
}

// TestInitializeClobberGuard pins the re-initialization hazard found by the
// PR 6 differential sweep (unstructured/seed50): a propagation round can
// extend a temporary's live range beyond its defining copies, and a later
// initialization round that decomposes a NEW site of the same pattern would
// insert h_ε := ε over the live value. Initialize must leave such a site
// undecomposed.
func TestInitializeClobberGuard(t *testing.T) {
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := a / b
    x := h1
    goto m
  }
  block m {
    a := a + 1
    y := a / b
    goto e
  }
  block e { out(x, y, h1) }
}
`)
	orig := g.Clone()
	Initialize(g)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The new site of a/b in m must survive: h1's entry value is read at e.
	found := false
	for _, in := range g.BlockByName("m").Instrs {
		if in.Key() == "y:=a/b" {
			found = true
		}
		if in.Key() == "h1:=a/b" {
			t.Errorf("live temporary h1 clobbered by re-initialization: %v", blockKeys(g, "m"))
		}
	}
	if !found {
		t.Errorf("site disappeared: %v", blockKeys(g, "m"))
	}
	if rep := verify.Equivalent(orig, g, 4, 1); !rep.Equivalent {
		t.Errorf("semantics changed: %s", rep.Detail)
	}

	// A dead temporary imposes no constraint: the same program without the
	// propagated use of h1 decomposes fully, through the same temp.
	g2 := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := a / b
    x := h1
    goto m
  }
  block m {
    a := a + 1
    y := a / b
    goto e
  }
  block e { out(x, y) }
}
`)
	Initialize(g2)
	found = false
	for _, in := range g2.BlockByName("m").Instrs {
		if in.Key() == "h1:=a/b" {
			found = true
		}
	}
	if !found {
		t.Errorf("dead temp blocked decomposition: %v", blockKeys(g2, "m"))
	}
}

func blockKeys(g *ir.Graph, name string) []string {
	var out []string
	for _, in := range g.BlockByName(name).Instrs {
		out = append(out, in.Key())
	}
	return out
}
