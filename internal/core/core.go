// Package core implements the paper's contribution: the global algorithm
// for uniform elimination of partially redundant expressions and
// assignments (§4). It composes three phases:
//
//  1. Initialization (§4.2) — every assignment x := t with a non-trivial
//     right-hand side becomes h_t := t; x := h_t, and every non-trivial
//     branch-condition side ε is lifted into h_ε := ε. After this phase,
//     assignment motion subsumes expression motion (Lemma 4.1).
//  2. Assignment motion (§4.3) — the exhaustive aht/rae fixpoint
//     (internal/am), which captures all second-order effects and yields a
//     relatively assignment-optimal program (Lemma 4.2) that is also
//     relatively expression-optimal (Corollary 4.3).
//  3. Final flush (§4.4) — the lazy-code-motion variant of internal/flush,
//     which sinks temporary initializations to their latest points,
//     eliminates the unusable ones, and reconstructs single-use terms,
//     establishing relative temporary-optimality (Lemma 4.4).
//
// The composite result GGlobAlg is expression-optimal in the whole
// universe of programs obtainable by EM and AM transformations
// (Theorem 5.2) and relatively assignment- and temporary-optimal
// (Theorems 5.3, 5.4).
package core

import (
	"assignmentmotion/internal/am"
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/flush"
	"assignmentmotion/internal/ir"
)

// Result reports what one Optimize run did, per phase.
type Result struct {
	// Decomposed is the number of assignments and condition sides split
	// by the initialization phase.
	Decomposed int
	// AM carries the assignment-motion phase statistics.
	AM am.Stats
	// Flush carries the final flush statistics.
	Flush flush.Stats
}

// Optimize runs the full global algorithm on g in place and returns the
// per-phase statistics. The graph is edge-split, normalized, and valid on
// return.
func Optimize(g *ir.Graph) Result {
	var res Result
	g.SplitCriticalEdges()
	res.Decomposed = Initialize(g)
	// One session carries the arena, pattern universe, and iteration orders
	// across the whole run: every aht/rae round of the motion fixpoint and
	// the final flush draw from the same pooled storage.
	s := analysis.NewSession()
	defer s.Close()
	res.AM = am.RunWith(g, s)
	res.Flush = flush.RunWith(g, s)
	return res
}

// Initialize applies the initialization phase to g in place and returns
// the number of decomposed sites. It is idempotent: instances h := ε and
// trivial right-hand sides are left alone.
func Initialize(g *ir.Graph) int {
	decomposed := 0
	for _, b := range g.Blocks {
		next := make([]ir.Instr, 0, len(b.Instrs))
		for _, in := range b.Instrs {
			switch in.Kind {
			case ir.KindAssign:
				if in.RHS.Trivial() || g.IsTemp(in.LHS) {
					next = append(next, in)
					continue
				}
				h := g.TempFor(in.RHS)
				next = append(next, ir.NewAssign(h, in.RHS), ir.NewAssign(in.LHS, ir.VarTerm(h)))
				decomposed++
			case ir.KindCond:
				l, r := in.CondL, in.CondR
				if !l.Trivial() {
					h := g.TempFor(l)
					next = append(next, ir.NewAssign(h, l))
					l = ir.VarTerm(h)
					decomposed++
				}
				if !r.Trivial() {
					h := g.TempFor(r)
					next = append(next, ir.NewAssign(h, r))
					r = ir.VarTerm(h)
					decomposed++
				}
				next = append(next, ir.NewCond(in.CondOp, l, r))
			default:
				next = append(next, in)
			}
		}
		b.Instrs = next
	}
	g.Normalize()
	return decomposed
}
