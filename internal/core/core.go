// Package core implements the paper's contribution: the global algorithm
// for uniform elimination of partially redundant expressions and
// assignments (§4). It composes three phases:
//
//  1. Initialization (§4.2) — every assignment x := t with a non-trivial
//     right-hand side becomes h_t := t; x := h_t, and every non-trivial
//     branch-condition side ε is lifted into h_ε := ε. After this phase,
//     assignment motion subsumes expression motion (Lemma 4.1).
//  2. Assignment motion (§4.3) — the exhaustive aht/rae fixpoint
//     (internal/am), which captures all second-order effects and yields a
//     relatively assignment-optimal program (Lemma 4.2) that is also
//     relatively expression-optimal (Corollary 4.3).
//  3. Final flush (§4.4) — the lazy-code-motion variant of internal/flush,
//     which sinks temporary initializations to their latest points,
//     eliminates the unusable ones, and reconstructs single-use terms,
//     establishing relative temporary-optimality (Lemma 4.4).
//
// The composite result GGlobAlg is expression-optimal in the whole
// universe of programs obtainable by EM and AM transformations
// (Theorem 5.2) and relatively assignment- and temporary-optimal
// (Theorems 5.3, 5.4).
package core

import (
	"assignmentmotion/internal/am"
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/flush"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"
)

// Result reports what one Optimize run did, per phase.
type Result struct {
	// Decomposed is the number of assignments and condition sides split
	// by the initialization phase.
	Decomposed int
	// AM carries the assignment-motion phase statistics.
	AM am.Stats
	// Flush carries the final flush statistics.
	Flush flush.Stats
}

// Optimize runs the full global algorithm on g in place and returns the
// per-phase statistics. The graph is edge-split, normalized, and valid on
// return.
func Optimize(g *ir.Graph) Result {
	// One session carries the arena, pattern universe, and iteration orders
	// across the whole run: every aht/rae round of the motion fixpoint and
	// the final flush draw from the same pooled storage.
	s := analysis.NewSession()
	defer s.Close()
	return OptimizeWith(g, s, nil)
}

// OptimizeWith is Optimize as a three-pass pipeline (init, am, flush) over
// an existing session. The optional hook receives one instrumented event
// per phase — wall time, instruction deltas, solver work — which is how
// amopt observes the global algorithm per phase. It panics on a pipeline
// failure (the legacy contract); fault-aware callers use TryOptimizeWith
// or run Phases under their own pipeline, as internal/engine does.
func OptimizeWith(g *ir.Graph, s *analysis.Session, hook func(pass.Event)) Result {
	res, err := TryOptimizeWith(g, s, hook)
	if err != nil {
		panic("core: global pipeline failed: " + err.Error())
	}
	return res
}

// TryOptimizeWith is OptimizeWith returning pipeline failures (fixpoint
// overrun, exhausted session budget, cancellation) as typed fault errors.
// The run inherits the session's context, so a deadline attached there
// interrupts the AM fixpoint between rounds.
func TryOptimizeWith(g *ir.Graph, s *analysis.Session, hook func(pass.Event)) (Result, error) {
	var res Result
	pl := pass.New(Phases(&res)...)
	pl.Hook = hook
	_, err := pl.RunWith(nil, g, s)
	return res, err
}

// Phases returns the three phases of the global algorithm as pipeline
// passes. The detailed per-phase statistics are accumulated into res when
// it is non-nil (the uniform pass.Stats shape is reported either way).
// These are the same transformations the registry serves under "init",
// "am", and "flush"; this constructor exists so composite drivers
// (Optimize, the batch engine) can keep the typed Result while running on
// the instrumented pipeline path.
func Phases(res *Result) []pass.Pass {
	return PhasesObserved(res, nil, nil)
}

// PhasesObserved is Phases with am- and flush-phase observation hooks
// threaded through (see am.Hooks and flush.Observer); the incremental
// recorder rides the default pipeline this way without perturbing
// instrumentation or results.
func PhasesObserved(res *Result, hooks *am.Hooks, fobs *flush.Observer) []pass.Pass {
	if res == nil {
		res = &Result{}
	}
	return []pass.Pass{
		phase("init", func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			g.SplitCriticalEdges()
			res.Decomposed = Initialize(g)
			return pass.Stats{Changes: res.Decomposed, Iterations: 1}, nil
		}),
		phase("am", func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			var err error
			res.AM, err = am.TryRunObservedWith(g, s, hooks)
			return pass.Stats{Changes: res.AM.Eliminated, Iterations: res.AM.Iterations}, err
		}),
		phase("flush", func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			res.Flush = flush.RunObservedWith(g, s, fobs)
			changes := res.Flush.DroppedInits + res.Flush.InsertedInits + res.Flush.Reconstructed
			return pass.Stats{Changes: changes, Iterations: 1}, nil
		}),
	}
}

// phase copies the registered pass's metadata (the registrations of the
// imported am and flush packages, and core's own "init", are guaranteed to
// have run) and overrides the body with a closure that additionally
// captures the typed phase statistics.
func phase(name string, run func(*ir.Graph, *analysis.Session) (pass.Stats, error)) pass.Pass {
	p, ok := pass.Lookup(name)
	if !ok {
		panic("core: phase " + name + " not registered")
	}
	p.RunWith = run
	return p
}

func init() {
	pass.Register(pass.Pass{
		Name:        "init",
		Description: "initialization: decompose every assignment and condition side through a temporary (EM becomes AM)",
		Ref:         "§4.2, Figure 12, Lemma 4.1",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			g.SplitCriticalEdges()
			return pass.Stats{Changes: Initialize(g), Iterations: 1}, nil
		},
	})
	pass.Register(pass.Pass{
		Name:        "globalg",
		Description: "the full global algorithm: init, exhaustive assignment motion, final flush",
		Ref:         "§4, Theorems 5.2–5.4",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			res, err := TryOptimizeWith(g, s, nil)
			return pass.Stats{
				Changes: res.Decomposed + res.AM.Eliminated +
					res.Flush.DroppedInits + res.Flush.InsertedInits + res.Flush.Reconstructed,
				Iterations: res.AM.Iterations,
			}, err
		},
	})
}

// Initialize applies the initialization phase to g in place and returns
// the number of decomposed sites. It is idempotent: instances h := ε and
// trivial right-hand sides are left alone.
//
// Re-initialization clobber guard: on a graph that already carries
// temporaries from an earlier round, a propagation pass may have extended a
// temporary's live range beyond its defining copies (copy propagation
// substitutes h_ε for the copy targets — the very mechanism of the §6
// interleaving). Decomposing a NEW computation site of ε then inserts a
// fresh definition h_ε := ε that overwrites the value those propagated uses
// still need on paths through the site. Such a site is left undecomposed:
// h_ε is consulted against a temp-only liveness analysis, and a site is
// split only where h_ε is dead. On a temp-free graph (the first round, and
// every run of the global algorithm on source programs) no temporary is
// ever live across its protocol uses, so the guard never fires there.
func Initialize(g *ir.Graph) int {
	// Expression patterns that already have a temporary, from earlier rounds.
	existing := map[ir.Term]ir.Var{}
	for _, h := range g.Temps() {
		if e, ok := g.TempExpr(h); ok {
			existing[e] = h
		}
	}
	var liveOut [][]map[ir.Var]bool
	if len(existing) > 0 {
		liveOut = tempLiveOut(g)
	}
	// clobbers reports whether inserting h := ε after position k of block bi
	// would overwrite a value of h some reachable use still needs.
	clobbers := func(bi, k int, e ir.Term) bool {
		h, ok := existing[e]
		return ok && liveOut[bi][k][h]
	}
	// condClobbers is the guard for a branch site: the definition is
	// inserted BEFORE the branch, so a read of h by the branch itself (its
	// other side, after propagation) needs the old value too.
	var scratch []ir.Var
	condClobbers := func(bi, k int, in ir.Instr, e ir.Term) bool {
		h, ok := existing[e]
		if !ok {
			return false
		}
		if liveOut[bi][k][h] {
			return true
		}
		scratch = in.Uses(scratch[:0])
		for _, v := range scratch {
			if v == h {
				return true
			}
		}
		return false
	}

	decomposed := 0
	for bi, b := range g.Blocks {
		next := make([]ir.Instr, 0, len(b.Instrs))
		for k, in := range b.Instrs {
			switch in.Kind {
			case ir.KindAssign:
				if in.RHS.Trivial() || g.IsTemp(in.LHS) || clobbers(bi, k, in.RHS) {
					next = append(next, in)
					continue
				}
				h := g.TempFor(in.RHS)
				next = append(next, ir.NewAssign(h, in.RHS), ir.NewAssign(in.LHS, ir.VarTerm(h)))
				decomposed++
			case ir.KindCond:
				l, r := in.CondL, in.CondR
				if !l.Trivial() && !condClobbers(bi, k, in, l) {
					h := g.TempFor(l)
					next = append(next, ir.NewAssign(h, l))
					l = ir.VarTerm(h)
					decomposed++
				}
				if !r.Trivial() && !condClobbers(bi, k, in, r) {
					h := g.TempFor(r)
					next = append(next, ir.NewAssign(h, r))
					r = ir.VarTerm(h)
					decomposed++
				}
				next = append(next, ir.NewCond(in.CondOp, l, r))
			default:
				next = append(next, in)
			}
		}
		b.Instrs = next
	}
	g.Normalize()
	return decomposed
}

// tempLiveOut computes, for every instruction position, the set of
// registered temporaries live immediately AFTER the instruction — the
// values a re-initialization must not overwrite there. A standard backward
// may-liveness restricted to the temp domain; graphs and temp counts are
// small, so plain map sets suffice.
func tempLiveOut(g *ir.Graph) [][]map[ir.Var]bool {
	nb := len(g.Blocks)
	use := make([]map[ir.Var]bool, nb)
	def := make([]map[ir.Var]bool, nb)
	var scratch []ir.Var
	for i, b := range g.Blocks {
		use[i], def[i] = map[ir.Var]bool{}, map[ir.Var]bool{}
		for _, in := range b.Instrs {
			scratch = in.Uses(scratch[:0])
			for _, v := range scratch {
				if g.IsTemp(v) && !def[i][v] {
					use[i][v] = true
				}
			}
			if v, ok := in.Defs(); ok && g.IsTemp(v) {
				def[i][v] = true
			}
		}
	}

	liveIn := make([]map[ir.Var]bool, nb)
	blockOut := make([]map[ir.Var]bool, nb)
	for i := range liveIn {
		liveIn[i] = map[ir.Var]bool{}
		blockOut[i] = map[ir.Var]bool{}
	}
	for changed := true; changed; {
		changed = false
		for i := nb - 1; i >= 0; i-- {
			out := map[ir.Var]bool{}
			for _, sid := range g.Blocks[i].Succs {
				for v := range liveIn[sid] {
					out[v] = true
				}
			}
			blockOut[i] = out
			for v := range use[i] {
				if !liveIn[i][v] {
					liveIn[i][v] = true
					changed = true
				}
			}
			for v := range out {
				if !def[i][v] && !liveIn[i][v] {
					liveIn[i][v] = true
					changed = true
				}
			}
		}
	}

	// Per-instruction live-out by a backward walk from each block's exit.
	outAt := make([][]map[ir.Var]bool, nb)
	for i, b := range g.Blocks {
		n := len(b.Instrs)
		outAt[i] = make([]map[ir.Var]bool, n)
		live := map[ir.Var]bool{}
		for v := range blockOut[i] {
			live[v] = true
		}
		for k := n - 1; k >= 0; k-- {
			snap := make(map[ir.Var]bool, len(live))
			for v := range live {
				snap[v] = true
			}
			outAt[i][k] = snap
			in := b.Instrs[k]
			if v, ok := in.Defs(); ok {
				delete(live, v)
			}
			scratch = in.Uses(scratch[:0])
			for _, v := range scratch {
				if g.IsTemp(v) {
					live[v] = true
				}
			}
		}
	}
	return outAt
}
