// Package metrics computes the static and dynamic program measures used
// by the paper's optimality results and by the experiment harness:
// occurrence counts per pattern, temporary counts, temporary lifetime
// ranges (§3.2, "tmp-optimality"), and aggregated dynamic costs over
// input ensembles.
package metrics

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
)

// Static summarizes a program's static shape.
type Static struct {
	Blocks       int
	Instrs       int
	Assignments  int
	Expressions  int // occurrences of non-trivial terms
	TempInits    int // assignments h := ε
	TempCount    int // distinct temporaries occurring
	TempLifetime int // total lifetime range length (instructions), see LifetimeRanges
}

// Measure computes the static summary of g.
func Measure(g *ir.Graph) Static {
	var s Static
	s.Blocks = len(g.Blocks)
	tempSeen := map[ir.Var]bool{}
	var terms []ir.Term
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			s.Instrs++
			if in.Kind == ir.KindAssign {
				s.Assignments++
				if g.IsTemp(in.LHS) {
					if e, ok := g.TempExpr(in.LHS); ok && e.Equal(in.RHS) {
						s.TempInits++
					}
					tempSeen[in.LHS] = true
				}
			}
			terms = in.Terms(terms[:0])
			for _, t := range terms {
				if !t.Trivial() {
					s.Expressions++
				}
			}
			for _, v := range in.Uses(nil) {
				if g.IsTemp(v) {
					tempSeen[v] = true
				}
			}
		}
	}
	s.TempCount = len(tempSeen)
	s.TempLifetime = TotalLifetime(g)
	return s
}

// TotalLifetime sums, over all temporaries, the number of instructions at
// which the temporary is "in flight": instructions lying on some path from
// an initialization h := ε to a use of h with no re-initialization in
// between (the paper's lifetime ranges, §4 footnote 4). Smaller is better;
// the final flush minimizes this among expression-optimal programs.
func TotalLifetime(g *ir.Graph) int {
	prog := analysis.NewProg(g)
	total := 0
	for _, h := range g.Temps() {
		expr, _ := g.TempExpr(h)
		total += lifetimeOf(prog, h, expr)
	}
	return total
}

// lifetimeOf counts instructions reachable forward from an instance of h
// before any re-initialization, that can also reach a use of h backward
// without crossing an instance. The count includes the use site, not the
// defining instance itself.
func lifetimeOf(prog *analysis.Prog, h ir.Var, expr ir.Term) int {
	n := prog.Len()
	// Forward: "defined" — some path from an instance reaches this point.
	defined := make([]bool, n)
	var work []int
	for i := 0; i < n; i++ {
		if analysis.IsInst(&prog.Ins[i], h, expr) {
			for _, s := range prog.Succs(i) {
				if !defined[s] {
					defined[s] = true
					work = append(work, s)
				}
			}
		}
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		if analysis.IsInst(&prog.Ins[i], h, expr) {
			continue // re-initialization cuts the range
		}
		for _, s := range prog.Succs(i) {
			if !defined[s] {
				defined[s] = true
				work = append(work, s)
			}
		}
	}
	// Backward: "needed" — some path reaches a use before an instance.
	needed := make([]bool, n)
	work = work[:0]
	for i := 0; i < n; i++ {
		if analysis.UsesTemp(&prog.Ins[i], h) {
			if !needed[i] {
				needed[i] = true
				work = append(work, i)
			}
		}
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range prog.Preds(i) {
			if needed[p] || analysis.IsInst(&prog.Ins[p], h, expr) {
				continue
			}
			needed[p] = true
			work = append(work, p)
		}
	}
	count := 0
	for i := 0; i < n; i++ {
		if defined[i] && needed[i] {
			count++
		}
	}
	return count
}

// Dynamic aggregates interpreter counts over an ensemble of inputs.
type Dynamic struct {
	Runs            int
	ExprEvals       int
	AssignExecs     int
	TempAssignExecs int
	Steps           int
	Truncated       int
}

// Add accumulates one run.
func (d *Dynamic) Add(r interp.Result) {
	d.Runs++
	d.ExprEvals += r.Counts.ExprEvals
	d.AssignExecs += r.Counts.AssignExecs
	d.TempAssignExecs += r.Counts.TempAssignExecs
	d.Steps += r.Counts.Steps
	if r.Truncated {
		d.Truncated++
	}
}

// MeanExprEvals returns average expression evaluations per run.
func (d Dynamic) MeanExprEvals() float64 {
	if d.Runs == 0 {
		return 0
	}
	return float64(d.ExprEvals) / float64(d.Runs)
}

// MeanAssignExecs returns average assignment executions per run.
func (d Dynamic) MeanAssignExecs() float64 {
	if d.Runs == 0 {
		return 0
	}
	return float64(d.AssignExecs) / float64(d.Runs)
}

// RandomEnvs builds count random environments over the given variables,
// drawn deterministically from seed. Values are small integers so branch
// conditions exercise both arms.
func RandomEnvs(vars []ir.Var, count int, seed int64) []map[ir.Var]int64 {
	rng := rand.New(rand.NewSource(seed))
	envs := make([]map[ir.Var]int64, count)
	for i := range envs {
		env := make(map[ir.Var]int64, len(vars))
		for _, v := range vars {
			env[v] = int64(rng.Intn(21) - 10)
		}
		envs[i] = env
	}
	return envs
}

// Evaluate runs g on every environment and aggregates the counts.
func Evaluate(g *ir.Graph, envs []map[ir.Var]int64, maxSteps int) Dynamic {
	var d Dynamic
	for _, env := range envs {
		d.Add(interp.Run(g, env, maxSteps))
	}
	return d
}

// String renders the static summary as a one-line report.
func (s Static) String() string {
	return fmt.Sprintf("blocks=%d instrs=%d assigns=%d exprs=%d tempInits=%d temps=%d lifetime=%d",
		s.Blocks, s.Instrs, s.Assignments, s.Expressions, s.TempInits, s.TempCount, s.TempLifetime)
}

// Table formats rows of label→Dynamic as an aligned text table, sorted by
// mean expression evaluations. The experiment harness uses it for its
// reports.
func Table(rows map[string]Dynamic) string {
	type row struct {
		name string
		d    Dynamic
	}
	list := make([]row, 0, len(rows))
	for k, v := range rows {
		list = append(list, row{k, v})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].d.MeanExprEvals() != list[j].d.MeanExprEvals() {
			return list[i].d.MeanExprEvals() < list[j].d.MeanExprEvals()
		}
		return list[i].name < list[j].name
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %12s %12s %12s %8s\n", "pipeline", "expr/run", "assign/run", "temp/run", "trunc")
	for _, r := range list {
		fmt.Fprintf(&sb, "%-16s %12.2f %12.2f %12.2f %8d\n",
			r.name, r.d.MeanExprEvals(), r.d.MeanAssignExecs(),
			float64(r.d.TempAssignExecs)/float64(max(1, r.d.Runs)), r.d.Truncated)
	}
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
