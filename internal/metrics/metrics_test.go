package metrics

import (
	"strings"
	"testing"

	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
)

func TestMeasureStatic(t *testing.T) {
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := a + b
    x := h1
    y := c
    if x < 3 then b else e
  }
  block b {
    z := h1
    goto e
  }
  block e { out(x, y, z) }
}
`)
	s := Measure(g)
	if s.Blocks != 3 {
		t.Errorf("blocks = %d", s.Blocks)
	}
	if s.Instrs != 6 {
		t.Errorf("instrs = %d", s.Instrs)
	}
	if s.Assignments != 4 {
		t.Errorf("assignments = %d", s.Assignments)
	}
	if s.Expressions != 1 { // a+b; the condition sides are trivial
		t.Errorf("expressions = %d", s.Expressions)
	}
	if s.TempInits != 1 || s.TempCount != 1 {
		t.Errorf("tempInits=%d tempCount=%d", s.TempInits, s.TempCount)
	}
	if s.TempLifetime <= 0 {
		t.Errorf("lifetime = %d", s.TempLifetime)
	}
	if str := s.String(); !strings.Contains(str, "blocks=3") {
		t.Errorf("String = %q", str)
	}
}

func TestLifetimeAdjacent(t *testing.T) {
	// Init immediately followed by its single use: the range covers just
	// the use instruction.
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := a + b
    x := h1
    goto e
  }
  block e { out(x) }
}
`)
	if got := TotalLifetime(g); got != 1 {
		t.Errorf("lifetime = %d, want 1", got)
	}
}

func TestLifetimeStretched(t *testing.T) {
	// Unrelated instructions inside the range extend it.
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := a + b
    p := 1
    q := 2
    x := h1
    goto e
  }
  block e { out(x, p, q) }
}
`)
	if got := TotalLifetime(g); got != 3 {
		t.Errorf("lifetime = %d, want 3 (p, q, and the use)", got)
	}
}

func TestLifetimeCutByReinit(t *testing.T) {
	// A re-initialization starts a new range; instructions before it and
	// after the last use do not count twice.
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := a + b
    x := h1
    h1 := a + b
    y := h1
    goto e
  }
  block e { out(x, y) }
}
`)
	if got := TotalLifetime(g); got != 2 {
		t.Errorf("lifetime = %d, want 2 (each use site only)", got)
	}
}

func TestLifetimeDeadInitIsZero(t *testing.T) {
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := a + b
    x := 1
    goto e
  }
  block e { out(x) }
}
`)
	if got := TotalLifetime(g); got != 0 {
		t.Errorf("lifetime = %d, want 0 for a dead init", got)
	}
}

func TestLifetimeAcrossBranch(t *testing.T) {
	// Used on one arm only: the range covers the branch instruction, the
	// using arm, not the other arm.
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := a + b
    if c < 0 then l else r
  }
  block l {
    x := h1
    goto e
  }
  block r {
    x := 2
    goto e
  }
  block e { out(x) }
}
`)
	// Range: the condition, l's use. r's x := 2 is not "needed".
	if got := TotalLifetime(g); got != 2 {
		t.Errorf("lifetime = %d, want 2", got)
	}
}

func TestRandomEnvsDeterministic(t *testing.T) {
	vars := []ir.Var{"a", "b", "c"}
	e1 := RandomEnvs(vars, 5, 7)
	e2 := RandomEnvs(vars, 5, 7)
	if len(e1) != 5 {
		t.Fatalf("count = %d", len(e1))
	}
	for i := range e1 {
		for _, v := range vars {
			if e1[i][v] != e2[i][v] {
				t.Fatal("not deterministic")
			}
		}
	}
	e3 := RandomEnvs(vars, 5, 8)
	same := true
	for i := range e1 {
		for _, v := range vars {
			if e1[i][v] != e3[i][v] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical environments")
	}
}

func TestDynamicAggregation(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    x := a + b
    goto e
  }
  block e { out(x) }
}
`)
	envs := RandomEnvs(g.SourceVars(), 4, 1)
	d := Evaluate(g, envs, 0)
	if d.Runs != 4 {
		t.Errorf("runs = %d", d.Runs)
	}
	if d.ExprEvals != 4 || d.MeanExprEvals() != 1 {
		t.Errorf("exprEvals = %d mean %f", d.ExprEvals, d.MeanExprEvals())
	}
	if d.AssignExecs != 4 || d.MeanAssignExecs() != 1 {
		t.Errorf("assigns = %d", d.AssignExecs)
	}
	var zero Dynamic
	if zero.MeanExprEvals() != 0 || zero.MeanAssignExecs() != 0 {
		t.Error("zero-run means not 0")
	}
	var d2 Dynamic
	d2.Add(interp.Result{Truncated: true})
	if d2.Truncated != 1 {
		t.Error("truncation not counted")
	}
}

func TestTable(t *testing.T) {
	rows := map[string]Dynamic{
		"b": {Runs: 2, ExprEvals: 10, AssignExecs: 4},
		"a": {Runs: 2, ExprEvals: 2, AssignExecs: 4},
	}
	out := Table(rows)
	ai := strings.Index(out, "a ")
	bi := strings.Index(out, "b ")
	if ai == -1 || bi == -1 || ai > bi {
		t.Errorf("table not sorted by expr/run:\n%s", out)
	}
	if !strings.Contains(out, "pipeline") {
		t.Errorf("missing header:\n%s", out)
	}
}
