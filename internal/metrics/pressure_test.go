package metrics

import (
	"testing"

	"assignmentmotion/internal/parse"
)

func TestMaxTempPressureZeroWithoutTemps(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a { x := p + q
    goto e }
  block e { out(x) }
}
`)
	if got := MaxTempPressure(g); got != 0 {
		t.Errorf("pressure = %d", got)
	}
}

func TestMaxTempPressureOverlap(t *testing.T) {
	// h1 and h2 are live simultaneously between the second init and the
	// first use.
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := p + q
    h2 := p - q
    x := h1
    y := h2
    goto e
  }
  block e { out(x, y) }
}
`)
	if got := MaxTempPressure(g); got != 2 {
		t.Errorf("pressure = %d, want 2", got)
	}
}

func TestMaxTempPressureSequential(t *testing.T) {
	// Sequential, non-overlapping lifetimes: pressure 1.
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := p + q
    x := h1
    h2 := p - q
    y := h2
    goto e
  }
  block e { out(x, y) }
}
`)
	if got := MaxTempPressure(g); got != 1 {
		t.Errorf("pressure = %d, want 1", got)
	}
}

func TestMaxTempPressureAcrossBranch(t *testing.T) {
	// h1 live across the whole diamond (used below the join), h2 only on
	// one arm.
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := p + q
    if c < 0 then l else r
  }
  block l {
    h2 := p - q
    x := h2
    goto j
  }
  block r {
    x := 1
    goto j
  }
  block j {
    y := h1
    goto e
  }
  block e { out(x, y) }
}
`)
	if got := MaxTempPressure(g); got != 2 {
		t.Errorf("pressure = %d, want 2", got)
	}
}

func TestMaxTempPressureReinitCuts(t *testing.T) {
	// A re-initialization starts a fresh range; no overlap with itself.
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := p + q
    x := h1
    p := 7
    h1 := p + q
    y := h1
    goto e
  }
  block e { out(x, y) }
}
`)
	if got := MaxTempPressure(g); got != 1 {
		t.Errorf("pressure = %d, want 1", got)
	}
}
