package metrics

import (
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/ir"
)

// MaxTempPressure returns the maximum number of temporaries simultaneously
// live at any program point — the register-pressure cost of the introduced
// temporaries that the paper's temporary-optimality (lifetime ranges,
// Theorem 5.4) is a proxy for. A temporary is live at a point when some
// path from there reaches a use of it before a re-initialization.
func MaxTempPressure(g *ir.Graph) int {
	temps := g.Temps()
	bits := len(temps)
	if bits == 0 {
		return 0
	}
	index := make(map[ir.Var]int, bits)
	for i, h := range temps {
		index[h] = i
	}
	prog := analysis.NewProg(g)
	n := prog.Len()

	use := make([]bitvec.Vec, n)
	def := make([]bitvec.Vec, n)
	for i := 0; i < n; i++ {
		use[i] = bitvec.New(bits)
		def[i] = bitvec.New(bits)
		in := &prog.Ins[i]
		for t, h := range temps {
			if analysis.UsesTemp(in, h) {
				use[i].Set(t)
			}
		}
		if v, ok := in.Defs(); ok {
			if t, isTemp := index[v]; isTemp {
				def[i].Set(t)
			}
		}
	}

	// Backward: solver "in" is liveness at the instruction exit, "out" at
	// its entry = use ∨ (in ∧ ¬def), the dense gen/kill form.
	res := dataflow.Solve(dataflow.Problem{
		N: n, Bits: bits, Dir: dataflow.Backward, Meet: dataflow.Any,
		Preds: prog.Preds, Succs: prog.Succs,
		Gen:  use,
		Kill: def,
	})

	max := 0
	for i := 0; i < n; i++ {
		if c := res.In[i].PopCount(); c > max {
			max = c
		}
		if c := res.Out[i].PopCount(); c > max {
			max = c
		}
	}
	return max
}
