package incr

import (
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/flush"
	"assignmentmotion/internal/ir"
)

// flushReplay replays the final flush phase (§4.4, Table 3) on the dirty
// region alone, against the boundary facts the recorder captured from the
// cold run. The delayability and usability analyses are gen/kill bit-vector
// frameworks, so their meet-over-paths solution at any region instruction
// is determined by the region's own instructions plus the facts arriving on
// the region's boundary edges — and the clean regions' content is by
// construction identical to the recording, so the recorded boundary facts
// are exact. The region's own exported facts are certified against the
// recording; any mismatch refuses the replay and the caller falls back to
// the cold path.
//
// The temp universes of the recording and the live run must agree as sets
// of bound expressions (a bijection by expression key); an edit that adds
// or removes a whole expression falls back to cold. Returns the flush
// statistics attributable to the dirty region's blocks — the cold values
// for the clean regions come from the manifest.
func (rp *replayer) flushReplay() (flush.Stats, bool) {
	g, man := rp.g, rp.man
	temps := g.Temps()
	bits := len(temps)
	if bits != len(man.Temps) {
		return flush.Stats{}, false
	}
	if bits == 0 {
		// Nothing bound to a temporary: cold flush is the identity.
		return flush.Stats{}, true
	}
	exprs := make([]ir.Term, bits)
	t2man := make([]int, bits)
	man2t := constInts(bits, -1)
	manIdx := make(map[string]int, bits)
	for mt, k := range man.Temps {
		manIdx[k] = mt
	}
	for t, h := range temps {
		e, ok := g.TempExpr(h)
		if !ok {
			return flush.Stats{}, false
		}
		exprs[t] = e
		mt, ok := manIdx[e.Key()]
		if !ok || man2t[mt] >= 0 {
			return flush.Stats{}, false
		}
		t2man[t] = mt
		man2t[mt] = t
	}
	// tvec translates a recorded temp-space bitset into the live ordering;
	// certify checks a live fact vector against its recorded counterpart.
	tvec := func(raw []byte) (bitvec.Vec, bool) {
		v := bitvec.New(bits)
		for _, mt := range byteBits(raw) {
			if mt >= bits {
				return bitvec.Vec{}, false
			}
			v.Set(man2t[mt])
		}
		return v, true
	}
	certify := func(live bitvec.Vec, raw []byte) bool {
		okAll := true
		live.ForEach(func(t int) {
			if !byteBit(raw, t2man[t]) {
				okAll = false
			}
		})
		if !okAll {
			return false
		}
		for _, mt := range byteBits(raw) {
			if mt >= bits || !live.Get(man2t[mt]) {
				return false
			}
		}
		return true
	}

	// Region instruction indexing: the sub-problem is instruction-level,
	// over the dirty region's post-AM content.
	nr := len(rp.rblocks)
	offs := make([]int, nr)
	ni := 0
	for si, bi := range rp.rblocks {
		offs[si] = ni
		ni += len(g.Blocks[bi].Instrs)
	}
	last := func(si int) int { return offs[si] + len(g.Blocks[rp.rblocks[si]].Instrs) - 1 }
	owner := make([]int, ni)
	for si, bi := range rp.rblocks {
		for kk := range g.Blocks[bi].Instrs {
			owner[offs[si]+kk] = si
		}
	}

	// Local predicates (Table 3), exactly as cold flush computes them.
	isInst := make([]bitvec.Vec, ni)
	used := make([]bitvec.Vec, ni)
	blocked := make([]bitvec.Vec, ni)
	for si, bi := range rp.rblocks {
		b := g.Blocks[bi]
		for kk := range b.Instrs {
			i := offs[si] + kk
			isInst[i] = bitvec.New(bits)
			used[i] = bitvec.New(bits)
			blocked[i] = bitvec.New(bits)
			in := &b.Instrs[kk]
			for t, h := range temps {
				if analysis.IsInst(in, h, exprs[t]) {
					isInst[i].Set(t)
				}
				if analysis.UsesTemp(in, h) {
					used[i].Set(t)
				}
				if analysis.BlocksInit(in, h, exprs[t]) {
					blocked[i].Set(t)
				}
			}
		}
	}

	// Delayability: forward, all-paths. Context nodes inject the recorded
	// meet of the external predecessors' exit facts at each boundary-entry
	// block.
	dctxOf := constInts(nr, -1)
	var dFact []bitvec.Vec
	var dHome []int
	for si, bi := range rp.rblocks {
		if len(rp.extPred[si]) == 0 {
			continue
		}
		raw, ok := man.DExt[bi]
		if !ok {
			return flush.Stats{}, false
		}
		v, ok := tvec(raw)
		if !ok {
			return flush.Stats{}, false
		}
		dctxOf[si] = ni + len(dFact)
		dFact = append(dFact, v)
		dHome = append(dHome, si)
	}
	nD := ni + len(dFact)
	emptyV := bitvec.New(bits)
	genD := make([]bitvec.Vec, nD)
	killD := make([]bitvec.Vec, nD)
	for i := 0; i < ni; i++ {
		genD[i] = isInst[i]
		k := bitvec.New(bits)
		k.CopyFrom(used[i])
		k.Or(blocked[i])
		killD[i] = k
	}
	for c := ni; c < nD; c++ {
		genD[c], killD[c] = emptyV, emptyV
	}
	entrySub := -1
	if s := rp.sub[int(g.Entry)]; s >= 0 {
		entrySub = offs[s]
	}
	delay := dataflow.Solve(dataflow.Problem{
		N: nD, Bits: bits, Dir: dataflow.Forward, Meet: dataflow.All,
		Preds: func(i int) []int {
			if i >= ni {
				return nil
			}
			si := owner[i]
			if i > offs[si] {
				return []int{i - 1}
			}
			var out []int
			for _, p := range g.Blocks[rp.rblocks[si]].Preds {
				if ps := rp.sub[p]; ps >= 0 {
					out = append(out, last(ps))
				}
			}
			if dctxOf[si] >= 0 {
				out = append(out, dctxOf[si])
			}
			return out
		},
		Succs: func(i int) []int {
			if i >= ni {
				return []int{offs[dHome[i-ni]]}
			}
			si := owner[i]
			if i < last(si) {
				return []int{i + 1}
			}
			var out []int
			for _, s := range g.Blocks[rp.rblocks[si]].Succs {
				if ss := rp.sub[s]; ss >= 0 {
					out = append(out, offs[ss])
				}
			}
			return out
		},
		Gen: genD, Kill: killD,
		Boundary: func(i int, in bitvec.Vec) {
			switch {
			case i >= ni:
				in.CopyFrom(dFact[i-ni])
			case i == entrySub:
				in.ClearAll()
			}
		},
	})
	ndelay, xdelay := delay.In, delay.Out
	for si, bi := range rp.rblocks {
		if len(rp.extSucc[si]) == 0 {
			continue
		}
		raw, ok := man.DOut[bi]
		if !ok || !certify(xdelay[last(si)], raw) {
			return flush.Stats{}, false
		}
	}

	// Usability: backward, some-path. Context nodes inject the recorded
	// join of the external successors' entry facts at each boundary-exit
	// block.
	uctxOf := constInts(nr, -1)
	var uFact []bitvec.Vec
	var uHome []int
	for si, bi := range rp.rblocks {
		if len(rp.extSucc[si]) == 0 {
			continue
		}
		raw, ok := man.UExt[bi]
		if !ok {
			return flush.Stats{}, false
		}
		v, ok := tvec(raw)
		if !ok {
			return flush.Stats{}, false
		}
		uctxOf[si] = ni + len(uFact)
		uFact = append(uFact, v)
		uHome = append(uHome, si)
	}
	nU := ni + len(uFact)
	genU := make([]bitvec.Vec, nU)
	killU := make([]bitvec.Vec, nU)
	for i := 0; i < ni; i++ {
		genU[i], killU[i] = used[i], isInst[i]
	}
	for c := ni; c < nU; c++ {
		genU[c], killU[c] = emptyV, emptyV
	}
	use := dataflow.Solve(dataflow.Problem{
		N: nU, Bits: bits, Dir: dataflow.Backward, Meet: dataflow.Any,
		Preds: func(i int) []int {
			if i >= ni {
				return []int{last(uHome[i-ni])}
			}
			si := owner[i]
			if i > offs[si] {
				return []int{i - 1}
			}
			var out []int
			for _, p := range g.Blocks[rp.rblocks[si]].Preds {
				if ps := rp.sub[p]; ps >= 0 {
					out = append(out, last(ps))
				}
			}
			return out
		},
		Succs: func(i int) []int {
			if i >= ni {
				return nil
			}
			si := owner[i]
			if i < last(si) {
				return []int{i + 1}
			}
			var out []int
			for _, s := range g.Blocks[rp.rblocks[si]].Succs {
				if ss := rp.sub[s]; ss >= 0 {
					out = append(out, offs[ss])
				}
			}
			if uctxOf[si] >= 0 {
				out = append(out, uctxOf[si])
			}
			return out
		},
		Gen: genU, Kill: killU,
		Boundary: func(i int, in bitvec.Vec) {
			if i >= ni {
				in.CopyFrom(uFact[i-ni])
			}
		},
	})
	xusable, nusable := use.In, use.Out
	for si, bi := range rp.rblocks {
		if len(rp.extPred[si]) == 0 {
			continue
		}
		raw, ok := man.UEnt[bi]
		if !ok || !certify(nusable[offs[si]], raw) {
			return flush.Stats{}, false
		}
	}

	// Latestness (no further fixpoint). The N-DELAYABLE facts of external
	// successor blocks come from the recording.
	nLatest := make([]bitvec.Vec, ni)
	xLatest := make([]bitvec.Vec, ni)
	scratch := bitvec.New(bits)
	for i := 0; i < ni; i++ {
		nl := ndelay[i].Copy()
		scratch.CopyFrom(used[i])
		scratch.Or(blocked[i])
		nl.And(scratch)
		nLatest[i] = nl

		xl := xdelay[i].Copy()
		si := owner[i]
		if i < last(si) {
			scratch.CopyFrom(ndelay[i+1])
			scratch.Not()
			xl.And(scratch)
		} else {
			b := g.Blocks[rp.rblocks[si]]
			if len(b.Succs) == 0 {
				// Program exit: an initialization delayed past the last
				// instruction is dead.
				xl.ClearAll()
			} else {
				scratch.SetAll()
				for _, s := range b.Succs {
					if ss := rp.sub[s]; ss >= 0 {
						scratch.And(ndelay[offs[ss]])
					} else {
						raw, ok := man.NDEnt[int(s)]
						if !ok {
							return flush.Stats{}, false
						}
						v, ok := tvec(raw)
						if !ok {
							return flush.Stats{}, false
						}
						scratch.And(v)
					}
				}
				scratch.Not()
				xl.And(scratch)
			}
		}
		xLatest[i] = xl
	}

	// Rewrite the region's blocks exactly as cold flush does.
	var st flush.Stats
	for si, bi := range rp.rblocks {
		b := g.Blocks[bi]
		next := make([]ir.Instr, 0, len(b.Instrs))
		var appendAfter []ir.Instr
		for kk, in := range b.Instrs {
			i := offs[si] + kk
			for t := 0; t < bits; t++ {
				if !nLatest[i].Get(t) {
					continue
				}
				usedHere := used[i].Get(t)
				usedLater := xusable[i].Get(t)
				switch {
				case usedLater:
					next = append(next, ir.NewAssign(temps[t], exprs[t]))
					st.InsertedInits++
				case usedHere:
					if !flush.CanReconstruct(in, temps[t]) {
						next = append(next, ir.NewAssign(temps[t], exprs[t]))
						st.InsertedInits++
					}
				}
			}
			if isInst[i].Any() {
				st.DroppedInits++
			} else {
				out := in
				for t := 0; t < bits; t++ {
					if nLatest[i].Get(t) && used[i].Get(t) &&
						!xusable[i].Get(t) && flush.CanReconstruct(in, temps[t]) {
						out = flush.Reconstruct(out, temps[t], exprs[t])
						st.Reconstructed++
					}
				}
				next = append(next, out)
			}
			for t := 0; t < bits; t++ {
				if xLatest[i].Get(t) && xusable[i].Get(t) {
					appendAfter = append(appendAfter, ir.NewAssign(temps[t], exprs[t]))
					st.InsertedInits++
				}
			}
		}
		if len(appendAfter) > 0 {
			if _, branch := b.Cond(); branch {
				// Cold flush panics here (edge splitting forbids it);
				// a replay refuses and lets the cold path decide.
				return flush.Stats{}, false
			}
		}
		b.Instrs = normalizeInstrs(append(next, appendAfter...))
	}
	return st, true
}
