package incr_test

import (
	"fmt"
	"strings"
	"testing"

	"assignmentmotion/internal/am"
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/flush"
	"assignmentmotion/internal/incr"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/pass"
)

// chainProg builds a straight-line chain of n blocks, each accumulating
// through a per-block constant. The AM fixpoint shifts every pattern one
// block upstream per round — a long cascade in which a one-block edit
// eventually reaches every region, so warm replays of edited chains must
// detect the divergence and refuse.
func chainProg(n int, edits map[int]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph chain {\n  entry s0\n  exit done\n")
	for i := 0; i < n; i++ {
		c := i + 1
		if v, ok := edits[i]; ok {
			c = v
		}
		next := fmt.Sprintf("s%d", i+1)
		if i == n-1 {
			next = "done"
		}
		fmt.Fprintf(&b, "  block s%d {\n    acc := acc + %d\n    goto %s\n  }\n", i, c, next)
	}
	fmt.Fprintf(&b, "  block done { out(acc) }\n}\n")
	return b.String()
}

// diamondProg builds a chain of nd branch diamonds. The branch condition
// computes the one global expression u+v, which hoists to the entry and
// crosses every region boundary identically in every variant. Each
// diamond's arms and join carry per-diamond copy patterns that are
// permanently blocked at the diamond's branch (the opposite arm never
// wants them), so an edit inside one diamond stays inside its region.
// The duplicated p+q in the taken arm feeds rae one removal per diamond,
// which unblocks a copy hoist the round after — a small ladder that
// keeps the fixpoint multi-round.
func diamondProg(nd int, edit map[int]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph diamonds {\n  entry s0\n  exit done\n")
	fmt.Fprintf(&b, "  block s0 {\n    pre := u + v\n    goto d0\n  }\n")
	for i := 0; i < nd; i++ {
		fmt.Fprintf(&b, "  block d%d {\n    if u + v < 7 then a%d else b%d\n  }\n", i, i, i)
		armY := fmt.Sprintf("y%d := p + q", i)
		if v, ok := edit[i]; ok {
			armY = v
		}
		fmt.Fprintf(&b, "  block a%d {\n    x%d := p + q\n    %s\n    goto j%d\n  }\n", i, i, armY, i)
		fmt.Fprintf(&b, "  block b%d {\n    z%d := p - q\n    goto j%d\n  }\n", i, i, i)
		next := fmt.Sprintf("d%d", i+1)
		if i == nd-1 {
			next = "done"
		}
		fmt.Fprintf(&b, "  block j%d {\n    w%d := x%d\n    goto %s\n  }\n", i, i, i, next)
	}
	fmt.Fprintf(&b, "  block done { out(u) }\n}\n")
	return b.String()
}

func mustParse(t *testing.T, src string) *ir.Graph {
	t.Helper()
	g, err := parse.ParseWith(src, parse.Options{})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return g
}

// coldRun runs the default global pipeline on a clone of g, optionally
// observed by a recorder, and returns the optimized clone.
func coldRun(t *testing.T, g *ir.Graph, rec *incr.Recorder) (*ir.Graph, core.Result) {
	t.Helper()
	clone := g.Clone()
	s := analysis.NewSession()
	defer s.Close()
	var res core.Result
	var hooks *am.Hooks
	var fobs *flush.Observer
	if rec != nil {
		hooks = rec.Hooks()
		fobs = rec.FlushObserver()
	}
	pl := pass.New(core.PhasesObserved(&res, hooks, fobs)...)
	if _, err := pl.RunWith(nil, clone, s); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return clone, res
}

func record(t *testing.T, src string) (*incr.Manifest, *ir.Graph, core.Result) {
	t.Helper()
	g := mustParse(t, src)
	rec := incr.NewRecorder(g.Fingerprint().String(), "test-cfg")
	opt, res := coldRun(t, g, rec)
	man := rec.Manifest()
	if man == nil {
		t.Fatal("recorder produced no manifest")
	}
	return man, opt, res
}

// TestReplayContainedEdit is the core byte-identity check: a one-block
// edit in a region's interior replays warm and reproduces the cold
// optimization of the edited program exactly.
func TestReplayContainedEdit(t *testing.T) {
	const nd = 30 // 4 blocks per diamond + entry + exit → multiple regions
	man, _, coldBaseRes := record(t, diamondProg(nd, nil))
	if man.K < 2 {
		t.Fatalf("expected a multi-round fixpoint, got K=%d", man.K)
	}

	// Edit diamond 4: its arm drops the duplicated p+q for a local copy.
	// Both the removed and the added pattern are blocked inside the
	// diamond, so the edit is contained in the first region's interior.
	edited := mustParse(t, diamondProg(nd, map[int]string{4: "y4 := x4"}))
	warm, ok := incr.Replay(edited, man)
	if !ok {
		t.Fatal("warm replay did not certify for a contained edit")
	}
	coldG, coldRes := coldRun(t, edited, nil)
	if got, want := warm.Graph.Encode(), coldG.Encode(); got != want {
		t.Fatalf("warm result differs from cold:\nwarm:\n%s\ncold:\n%s", got, want)
	}
	if warm.AMIterations != coldRes.AM.Iterations {
		t.Errorf("iterations: warm %d cold %d", warm.AMIterations, coldRes.AM.Iterations)
	}
	if warm.Eliminated != coldRes.AM.Eliminated {
		t.Errorf("eliminated: warm %d cold %d", warm.Eliminated, coldRes.AM.Eliminated)
	}
	if warm.Flush != coldRes.Flush {
		t.Errorf("flush stats: warm %+v cold %+v", warm.Flush, coldRes.Flush)
	}
	if warm.RegionsTotal < 3 {
		t.Errorf("expected a multi-region decomposition, got %d regions", warm.RegionsTotal)
	}
	if warm.RegionsReused != warm.RegionsTotal-1 {
		t.Errorf("reused %d of %d regions, want all but one", warm.RegionsReused, warm.RegionsTotal)
	}
	_ = coldBaseRes
}

// TestReplaySingleRegion degenerates to a whole-graph replay: a small
// graph is one region, the edit dirties it, nothing is stitched — the
// result must still be byte-identical.
func TestReplaySingleRegion(t *testing.T) {
	man, _, _ := record(t, chainProg(6, nil))
	edited := mustParse(t, chainProg(6, map[int]int{3: 77}))
	warm, ok := incr.Replay(edited, man)
	if !ok {
		t.Fatal("single-region replay did not certify")
	}
	coldG, _ := coldRun(t, edited, nil)
	if warm.Graph.Encode() != coldG.Encode() {
		t.Fatal("single-region warm result differs from cold")
	}
	if warm.RegionsTotal != 1 || warm.RegionsReused != 0 {
		t.Errorf("regions: total %d reused %d, want 1/0", warm.RegionsTotal, warm.RegionsReused)
	}
}

// TestReplayNeverWrong feeds edits that change the cross-region
// interface (removing the accumulator anchor changes how far patterns
// hoist). The replay may certify or refuse, but when it certifies the
// result must be byte-identical to cold.
func TestReplayNeverWrong(t *testing.T) {
	const n = 100
	man, _, _ := record(t, chainProg(n, nil))

	// An interface-changing edit: block 50 loses its acc definition, so
	// upstream patterns hoist differently.
	var b strings.Builder
	for _, line := range strings.Split(chainProg(n, nil), "\n") {
		b.WriteString(strings.Replace(line, "acc := acc + 51", "q := q * 3", 1))
		b.WriteString("\n")
	}
	edited := mustParse(t, b.String())
	if warm, ok := incr.Replay(edited, man); ok {
		coldG, _ := coldRun(t, edited, nil)
		if warm.Graph.Encode() != coldG.Encode() {
			t.Fatal("certified replay differs from cold on interface-changing edit")
		}
	}

	// A structural edit (different block count) must refuse outright.
	shorter := mustParse(t, chainProg(n-1, nil))
	if _, ok := incr.Replay(shorter, man); ok {
		t.Fatal("replay certified across a structural edit")
	}
}

// TestDriverRoundTrip exercises the heads ring and store seam with the
// in-process fallback store.
func TestDriverRoundTrip(t *testing.T) {
	const nd = 25
	d := incr.NewDriver(nil)
	cfg := "passes=|recovery=fail|budget=0,0,0"

	man, _, _ := record(t, diamondProg(nd, nil))
	man.Cfg = cfg
	d.Record(cfg, man)

	edited := mustParse(t, diamondProg(nd, map[int]string{12: "y12 := x12"}))
	warm, ok := d.TryWarm(cfg, edited.Fingerprint().String(), edited)
	if !ok {
		t.Fatal("driver found no warm path after Record")
	}
	coldG, _ := coldRun(t, edited, nil)
	if warm.Graph.Encode() != coldG.Encode() {
		t.Fatal("driver warm result differs from cold")
	}

	// The same fingerprint must not warm against itself.
	base := mustParse(t, diamondProg(nd, nil))
	if _, ok := d.TryWarm(cfg, man.Fp, base); ok {
		t.Fatal("TryWarm replayed a graph against its own manifest")
	}

	// A different config must miss.
	if _, ok := d.TryWarm("other-cfg", edited.Fingerprint().String(), edited); ok {
		t.Fatal("TryWarm crossed configs")
	}
}
