package incr

import (
	"assignmentmotion/internal/aht"
	"assignmentmotion/internal/am"
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/flush"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/printer"
)

// Recorder observes one cold run of the default pipeline through
// am.Hooks and assembles the Manifest a later warm run replays against.
// Recording is strictly read-only: the observed run's result is
// byte-identical to an unobserved one. If anything looks inconsistent
// (a hook sequence the recorder does not expect, a universe that grew
// mid-fixpoint), the recorder invalidates itself and Manifest returns
// nil — the run simply is not recorded.
type Recorder struct {
	fp, cfg string
	m       *Manifest
	rs      *ir.RegionSet
	u       *ir.PatternSet
	px      *analysis.PatternIndex
	extSucc [][]int
	extPred [][]int
	cur     *RoundRec
	ok      bool
	done    bool // AM fixpoint observed to completion
	fdone   bool // flush observed to completion
}

// NewRecorder returns a recorder for a run of the given source
// fingerprint under the given engine config key.
func NewRecorder(fp, cfg string) *Recorder {
	return &Recorder{fp: fp, cfg: cfg, ok: true}
}

// Hooks returns the am.Hooks that drive the recording; pass them to
// core.PhasesObserved.
func (r *Recorder) Hooks() *am.Hooks {
	return &am.Hooks{
		Begin:      r.begin,
		BeginRound: r.beginRound,
		HoistInfo:  r.hoistInfo,
		HoistDone:  r.hoistDone,
		ElimSolve:  r.elimSolve,
		ElimDone:   r.elimDone,
		End:        r.end,
	}
}

// FlushObserver returns the flush.Observer that records the flush
// phase's boundary facts and final program; pass it to
// core.PhasesObserved alongside Hooks.
func (r *Recorder) FlushObserver() *flush.Observer {
	return &flush.Observer{
		Analyzed: r.flushAnalyzed,
		Done:     r.flushDone,
	}
}

// Manifest returns the completed manifest, or nil when the run failed,
// was never observed to finish, or recording was invalidated.
func (r *Recorder) Manifest() *Manifest {
	if !r.ok || !r.done || !r.fdone {
		return nil
	}
	return r.m
}

func (r *Recorder) begin(g *ir.Graph, s *analysis.Session) {
	if r.m != nil { // a second fixpoint under one recorder: not a shape we record
		r.ok = false
		return
	}
	r.rs = s.Regions(g)
	r.u, r.px = s.Universe(g)
	n := len(g.Blocks)
	m := &Manifest{
		Version: Version,
		Fp:      r.fp,
		Cfg:     r.cfg,
		NBlocks: n,
		Entry:   int(g.Entry),
		Exit:    int(g.Exit),
		Succs:   make([][]int, n),
		Regions: make([][]int, r.rs.Len()),
		Sums:    RegionSums(g, r.rs),
	}
	for i, b := range g.Blocks {
		m.Succs[i] = nodeInts(b.Succs)
	}
	for i, region := range r.rs.Regions {
		m.Regions[i] = nodeInts(region)
	}
	enc := varEncoder{g: g}
	m.Universe = make([]PatternRec, r.u.Len())
	for id, p := range r.u.Patterns() {
		m.Universe[id] = enc.pattern(p)
	}
	r.extSucc = make([][]int, n)
	r.extPred = make([][]int, n)
	for i, b := range g.Blocks {
		for _, sid := range b.Succs {
			if r.rs.Of[sid] != r.rs.Of[i] {
				r.extSucc[i] = append(r.extSucc[i], int(sid))
			}
		}
		for _, pid := range b.Preds {
			if r.rs.Of[pid] != r.rs.Of[i] {
				r.extPred[i] = append(r.extPred[i], int(pid))
			}
		}
	}
	r.m = m
}

func (r *Recorder) beginRound(int) {
	if r.m == nil {
		r.ok = false
		return
	}
	r.cur = &RoundRec{
		XExt: map[int][]byte{}, NEntry: map[int][]byte{}, XExit: map[int][]byte{},
		FExt: map[int][]byte{}, Pin: map[string][]int{},
		InsN: map[int][]int{}, InsX: map[int][]int{},
		AExt: map[int][]byte{}, AOut: map[int][]byte{},
	}
}

func (r *Recorder) hoistInfo(g *ir.Graph, info *aht.Info) {
	if !r.ok || r.cur == nil || info.U != r.u || r.u.Len() != len(r.m.Universe) {
		r.ok = false
		return
	}
	w := r.u.Len()
	rec := func(v bitvec.Vec) []byte { return vecBytes(v.Bits(), w) }
	scratch := bitvec.New(w)
	for i := range g.Blocks {
		if len(r.extSucc[i]) > 0 {
			scratch.SetAll()
			for _, m := range r.extSucc[i] {
				scratch.And(info.NHoistable[m])
			}
			r.cur.XExt[i] = vecBytes(scratch.Bits(), w)
			r.cur.XExit[i] = rec(info.XHoistable[i])
		}
		if len(r.extPred[i]) > 0 {
			r.cur.NEntry[i] = rec(info.NHoistable[i])
			scratch.ClearAll()
			full := bitvec.NewFull(w)
			for _, p := range r.extPred[i] {
				scratch.OrAndNot(full, info.XHoistable[p])
			}
			r.cur.FExt[i] = vecBytes(scratch.Bits(), w)
			for _, p := range r.extPred[i] {
				pb := g.Blocks[p]
				if _, branch := pb.Cond(); branch && info.XInsert[p].Any() {
					key := itoa(i) + "," + itoa(p)
					r.cur.Pin[key] = info.OrderedIDs(info.XInsert[p].Copy())
				}
			}
		}
	}
	for i := range g.Blocks {
		if info.NInsert[i].Any() {
			r.cur.InsN[i] = info.OrderedIDs(info.NInsert[i].Copy())
		}
		if info.XInsert[i].Any() {
			r.cur.InsX[i] = info.OrderedIDs(info.XInsert[i].Copy())
		}
	}
	// First-occurrence positions at round start: the global first
	// position, its region, and the first position outside that region.
	pos1 := constSlice(w, -1)
	reg1 := constSlice(w, -1)
	pos2 := constSlice(w, -1)
	for i, b := range g.Blocks {
		region := int64(r.rs.Of[i])
		for k := range b.Instrs {
			id, isOcc := r.px.OccID(&b.Instrs[k])
			if !isOcc {
				continue
			}
			pos := int64(i)<<20 | int64(k)
			switch {
			case pos1[id] < 0:
				pos1[id], reg1[id] = pos, region
			case reg1[id] != region && pos2[id] < 0:
				pos2[id] = pos
			}
		}
	}
	r.cur.Pos1, r.cur.Reg1, r.cur.Pos2 = pos1, reg1, pos2
}

func (r *Recorder) hoistDone(_ *ir.Graph, changed []bool) {
	if !r.ok || r.cur == nil {
		return
	}
	byRegion := make([]bool, r.rs.Len())
	for i, c := range changed {
		if c {
			byRegion[r.rs.Of[i]] = true
		}
	}
	r.cur.Changed = byRegion
}

func (r *Recorder) elimSolve(g *ir.Graph, _ *analysis.PatternIndex, _, availOut []bitvec.Vec) {
	if !r.ok || r.cur == nil {
		return
	}
	w := r.u.Len()
	scratch := bitvec.New(w)
	for i := range g.Blocks {
		if len(r.extPred[i]) > 0 {
			scratch.SetAll()
			for _, p := range r.extPred[i] {
				scratch.And(availOut[p])
			}
			r.cur.AExt[i] = vecBytes(scratch.Bits(), w)
		}
		if len(r.extSucc[i]) > 0 {
			r.cur.AOut[i] = vecBytes(availOut[i].Bits(), w)
		}
	}
}

func (r *Recorder) elimDone(_ *ir.Graph, removedByBlock []int) {
	if !r.ok || r.cur == nil {
		return
	}
	byRegion := make([]int, r.rs.Len())
	for i, c := range removedByBlock {
		byRegion[r.rs.Of[i]] += c
	}
	r.cur.Removed = byRegion
	if r.cur.Changed == nil {
		r.ok = false
		return
	}
	r.m.Rounds = append(r.m.Rounds, *r.cur)
	r.cur = nil
}

func (r *Recorder) end(g *ir.Graph, st am.Stats) {
	if !r.ok || r.m == nil {
		r.ok = false
		return
	}
	r.m.K = st.Iterations
	r.m.Eliminated = st.Eliminated
	if len(r.m.Rounds) != r.m.K || r.u.Len() != len(r.m.Universe) {
		r.ok = false
		return
	}
	r.done = true
}

// flushAnalyzed records the flush analyses' boundary facts: what every
// region imports from and exports to the rest of the graph through the
// delayability and usability solves, in temp-canonical bit space.
func (r *Recorder) flushAnalyzed(g *ir.Graph, info *flush.Info) {
	if !r.ok || r.m == nil || !r.done {
		r.ok = false
		return
	}
	w := len(info.Temps)
	r.m.Temps = make([]string, w)
	for t, h := range info.Temps {
		e, ok := g.TempExpr(h)
		if !ok {
			r.ok = false
			return
		}
		r.m.Temps[t] = e.Key()
	}
	prog := info.Prog
	first := func(i int) int { return prog.BlockStart(ir.NodeID(i)) }
	last := func(i int) int { return first(i) + len(g.Blocks[i].Instrs) - 1 }
	r.m.DExt = map[int][]byte{}
	r.m.DOut = map[int][]byte{}
	r.m.NDEnt = map[int][]byte{}
	r.m.UExt = map[int][]byte{}
	r.m.UEnt = map[int][]byte{}
	scratch := bitvec.New(w)
	for i := range g.Blocks {
		if len(r.extPred[i]) > 0 {
			scratch.SetAll()
			for _, p := range r.extPred[i] {
				scratch.And(info.XDelayable[last(p)])
			}
			r.m.DExt[i] = vecBytes(scratch.Bits(), w)
			r.m.NDEnt[i] = vecBytes(info.NDelayable[first(i)].Bits(), w)
			r.m.UEnt[i] = vecBytes(info.NUsable[first(i)].Bits(), w)
		}
		if len(r.extSucc[i]) > 0 {
			r.m.DOut[i] = vecBytes(info.XDelayable[last(i)].Bits(), w)
			scratch.ClearAll()
			for _, m := range r.extSucc[i] {
				scratch.Or(info.NUsable[first(m)])
			}
			r.m.UExt[i] = vecBytes(scratch.Bits(), w)
		}
	}
}

// flushDone records the per-region flush statistics and the final
// program — the run's result, which stitching copies clean regions from.
func (r *Recorder) flushDone(g *ir.Graph, total flush.Stats, perBlock []flush.Stats) {
	if !r.ok || r.m == nil || !r.done || r.m.Temps == nil || len(perBlock) != len(r.rs.Of) {
		r.ok = false
		return
	}
	fr := make([][3]int, r.rs.Len())
	for i, st := range perBlock {
		reg := r.rs.Of[i]
		fr[reg][0] += st.DroppedInits
		fr[reg][1] += st.InsertedInits
		fr[reg][2] += st.Reconstructed
	}
	r.m.FlushRegions = fr
	r.m.FlushTotal = [3]int{total.DroppedInits, total.InsertedInits, total.Reconstructed}
	// printer output round-trips through parse with an identical Encode
	// (the same guarantee the engine's persistent tier relies on).
	r.m.Final = printer.String(g)
	r.m.seedFinal(g.Clone())
	r.fdone = true
}

func nodeInts(ids []ir.NodeID) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

func constSlice(n int, v int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		buf[p] = '-'
	}
	return string(buf[p:])
}
