// Package incr implements region-granular incremental re-optimization:
// a versioned, content-addressed artifact layer that lets an edited
// graph reuse the optimization work of every region the edit did not
// touch, while staying byte-identical to a cold whole-graph run.
//
// A cold run of the default pipeline records a Manifest: the post-init
// region decomposition and per-region content digests, the per-round
// boundary dataflow facts every region exchanged with the rest of the
// graph during the AM fixpoint (the hoisting facts N/X at region
// boundaries, insertion sequences crossing boundaries, availability at
// region exits), per-round first-occurrence positions (which pin the
// insertion order), per-region change signals, the flush phase's
// boundary facts (delayability and usability at region boundaries),
// and the final optimized program. A warm run diffs a resubmitted
// graph's regions against a predecessor manifest, replays the recorded
// AM rounds and the final flush on the single dirty region as compact
// boundary-pinned sub-problems, certifies at every step that the dirty
// region's exported facts match the recording (which, by induction,
// pins the untouched regions' entire trajectories), and stitches the
// recorded clean-region results back — so warm cost scales with the
// dirty region, not the graph. Any certificate mismatch abandons the
// replay and falls back to the cold path, so the byte-identity
// guarantee is unconditional.
package incr

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"strconv"
	"strings"
	"sync"

	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
)

// Version is the manifest envelope version. Any change to the recorded
// shape must bump it; decoding rejects other versions, which simply
// demotes old artifacts to cold runs.
const Version = 2

// headsMax bounds the per-config ring of recent fingerprints a warm run
// diffs against.
const headsMax = 8

// tauPrefix marks a temporary in temp-canonical serializations. Temps
// are numbered by creation order, which shifts under edits, so region
// digests and manifest patterns name a temp by the expression it binds
// (h_ε ↦ "τ(ε)") — a naming that is invariant across resubmissions.
const tauPrefix = "\x00τ("

// Manifest is the per-graph incremental artifact: everything a warm run
// needs to replay one dirty region and reuse the rest. It is stored
// JSON-encoded behind the engine's Backend seam, keyed by config and
// source fingerprint.
type Manifest struct {
	Version int    `json:"v"`
	Fp      string `json:"fp"`  // source-graph fingerprint
	Cfg     string `json:"cfg"` // engine config key (pipeline/recovery/budget)

	// Post-init structure, in block slice-index space. An edit that
	// changes any of these is a structural edit and replays cold.
	NBlocks int     `json:"n"`
	Entry   int     `json:"entry"`
	Exit    int     `json:"exit"`
	Succs   [][]int `json:"succs"`

	// Region decomposition of the post-init graph and the per-region
	// temp-canonical content digests the diff runs against.
	Regions [][]int  `json:"regions"`
	Sums    []string `json:"sums"`

	// Universe is the post-init pattern universe in ID order,
	// temp-canonically encoded. Recorded bit vectors index into it.
	Universe []PatternRec `json:"universe"`

	K      int        `json:"k"` // AM rounds to fixpoint (incl. final no-change round)
	Rounds []RoundRec `json:"rounds"`

	// Eliminated is the total rae removal count, for cross-checking.
	Eliminated int `json:"eliminated"`

	// Temps is the post-AM temp universe in g.Temps() order, named by the
	// canonical key of each temp's bound expression. The flush boundary
	// vectors below are bitsets over it.
	Temps []string `json:"temps"`

	// Flush boundary facts, keyed by block slice index. DExt is the meet
	// of external predecessors' exit X-DELAYABLE (injected), DOut the
	// block's own exit X-DELAYABLE (certified); NDEnt the entry
	// N-DELAYABLE of boundary-entry blocks (injected into the dirty
	// region's X-LATEST computation); UExt the join of external
	// successors' entry N-USABLE (injected), UEnt the block's own entry
	// N-USABLE (certified).
	DExt  map[int][]byte `json:"dext,omitempty"`
	DOut  map[int][]byte `json:"dout,omitempty"`
	NDEnt map[int][]byte `json:"ndent,omitempty"`
	UExt  map[int][]byte `json:"uext,omitempty"`
	UEnt  map[int][]byte `json:"uent,omitempty"`

	// FlushRegions attributes the flush statistics to regions
	// (dropped, inserted, reconstructed per region); FlushTotal is their
	// sum, i.e. the cold run's flush.Stats.
	FlushRegions [][3]int `json:"fregions"`
	FlushTotal   [3]int   `json:"ftotal"`

	// Final is the whole optimized program after flush — the run's
	// result — in canonical form. Stitching copies the clean regions'
	// blocks out of it, renaming temps by binding.
	Final string `json:"final"`

	// finalG memoizes the parsed Final graph: recorded manifests are
	// seeded with a clone of the live result, decoded ones parse once on
	// first replay.
	finalOnce sync.Once
	finalG    *ir.Graph
}

// finalGraph returns the parsed Final program, or nil when Final does not
// parse (a corrupt artifact: the caller refuses the replay).
func (m *Manifest) finalGraph() *ir.Graph {
	m.finalOnce.Do(func() {
		if m.finalG != nil {
			return
		}
		g, err := parse.ParseWith(m.Final, parse.Options{AllowTemps: true})
		if err != nil {
			return
		}
		m.finalG = g
	})
	return m.finalG
}

// seedFinal installs an already-materialized final graph (the recorder's
// live result), so in-process replays never re-parse.
func (m *Manifest) seedFinal(g *ir.Graph) {
	m.finalOnce.Do(func() { m.finalG = g })
}

// PatternRec is one assignment pattern, temp-canonically encoded: vars
// carry tauPrefix+exprKey+")" when they are temporaries.
type PatternRec struct {
	L  string `json:"l"`
	Op string `json:"op,omitempty"`
	A  OpRec  `json:"a"`
	B  OpRec  `json:"b,omitempty"`
}

// OpRec is one operand.
type OpRec struct {
	C bool   `json:"c,omitempty"`
	K int64  `json:"k,omitempty"`
	V string `json:"v,omitempty"`
}

// RoundRec captures one AM round. Map keys are block slice indices;
// vectors are bitsets over the manifest universe.
type RoundRec struct {
	// Backward (hoisting) boundary facts. XExt is the meet of external
	// successors' N-HOISTABLE (the input a replay injects); NEntry,
	// XExit are the facts the region exports (certification targets).
	XExt   map[int][]byte `json:"xext,omitempty"`
	NEntry map[int][]byte `json:"nentry,omitempty"`
	XExit  map[int][]byte `json:"xexit,omitempty"`
	// FExt is the external frontier contribution ∨ ¬X-HOISTABLE over
	// external predecessors, for entry blocks.
	FExt map[int][]byte `json:"fext,omitempty"`
	// Pin records prepend sequences entering a block from an external
	// branch predecessor, keyed "block,pred", as ordered pattern IDs.
	Pin map[string][]int `json:"pin,omitempty"`
	// InsN / InsX record each block's insertion sets as ordered pattern
	// ID lists (first-occurrence order). Clean blocks' lists certify
	// that the edit did not reorder their insertions; a dirty branch
	// block's InsX pins the sequence it prepends into clean successors.
	InsN map[int][]int `json:"insn,omitempty"`
	InsX map[int][]int `json:"insx,omitempty"`
	// First-occurrence positions at round start, per pattern ID:
	// Pos1 is the global first position (block<<20|instr, -1 absent),
	// Reg1 its region, Pos2 the first position outside that region
	// (-1 absent). Together they yield the exact first position outside
	// ANY single dirty region.
	Pos1 []int64 `json:"pos1"`
	Reg1 []int64 `json:"reg1"`
	Pos2 []int64 `json:"pos2"`
	// Forward (availability) boundary facts: AExt the meet of external
	// predecessors' exit availability (input), AOut the region's exit
	// availability (certification target).
	AExt map[int][]byte `json:"aext,omitempty"`
	AOut map[int][]byte `json:"aout,omitempty"`
	// Per-region change signals: whether hoisting rewrote any block of
	// the region this round, and how many occurrences rae removed.
	Changed []bool `json:"changed"`
	Removed []int  `json:"removed"`
}

// Encode serializes the manifest.
func (m *Manifest) Encode() ([]byte, error) { return json.Marshal(m) }

// DecodeManifest parses a stored manifest, rejecting other versions.
func DecodeManifest(data []byte) (*Manifest, bool) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil || m.Version != Version {
		return nil, false
	}
	return &m, true
}

// ManifestKey is the artifact-store key of the manifest for one
// (config, source fingerprint) pair.
func ManifestKey(cfg, fp string) string {
	return "incr|v" + strconv.Itoa(Version) + "|" + cfg + "|" + fp
}

// HeadsKey is the store key of the per-config ring of recent source
// fingerprints (the predecessor candidates a warm run diffs against).
func HeadsKey(cfg string) string { return "incr-heads|v" + strconv.Itoa(Version) + "|" + cfg }

// --- temp-canonical encoding -------------------------------------------

// varEncoder renames temporaries to their binding-based canonical name.
type varEncoder struct{ g *ir.Graph }

func (e varEncoder) enc(v ir.Var) string {
	if e.g.IsTemp(v) {
		if expr, ok := e.g.TempExpr(v); ok {
			return tauPrefix + expr.Key() + ")"
		}
	}
	return string(v)
}

func (e varEncoder) operand(o ir.Operand) OpRec {
	if o.IsConst {
		return OpRec{C: true, K: o.Const}
	}
	return OpRec{V: e.enc(o.Var)}
}

func (e varEncoder) pattern(p ir.AssignPattern) PatternRec {
	rec := PatternRec{L: e.enc(p.LHS), Op: string(p.RHS.Op), A: e.operand(p.RHS.Args[0])}
	if !p.RHS.Trivial() {
		rec.B = e.operand(p.RHS.Args[1])
	}
	return rec
}

func (e varEncoder) writeOperand(w io.Writer, o ir.Operand) {
	if o.IsConst {
		io.WriteString(w, strconv.FormatInt(o.Const, 10))
		return
	}
	io.WriteString(w, e.enc(o.Var))
}

func (e varEncoder) writeTerm(w io.Writer, t ir.Term) {
	e.writeOperand(w, t.Args[0])
	if !t.Trivial() {
		io.WriteString(w, string(t.Op))
		e.writeOperand(w, t.Args[1])
	}
}

func (e varEncoder) writeInstr(w io.Writer, in ir.Instr) {
	switch in.Kind {
	case ir.KindSkip:
		io.WriteString(w, "skip")
	case ir.KindAssign:
		io.WriteString(w, e.enc(in.LHS))
		io.WriteString(w, ":=")
		e.writeTerm(w, in.RHS)
	case ir.KindOut:
		io.WriteString(w, "out(")
		for i, a := range in.Args {
			if i > 0 {
				io.WriteString(w, ",")
			}
			e.writeOperand(w, a)
		}
		io.WriteString(w, ")")
	case ir.KindCond:
		e.writeTerm(w, in.CondL)
		io.WriteString(w, string(in.CondOp))
		e.writeTerm(w, in.CondR)
	}
}

// RegionSums computes the temp-canonical content digest of every region:
// each member block's slice index, instructions (temps named by their
// bound expression), and successor indices. Equal digests mean the
// regions' content is identical up to the global temp numbering shift an
// edit elsewhere induces.
func RegionSums(g *ir.Graph, rs *ir.RegionSet) []string {
	enc := varEncoder{g: g}
	sums := make([]string, rs.Len())
	for r, region := range rs.Regions {
		h := sha256.New()
		for _, id := range region {
			b := g.Block(id)
			io.WriteString(h, "b")
			io.WriteString(h, strconv.Itoa(int(id)))
			io.WriteString(h, "|")
			for k := range b.Instrs {
				enc.writeInstr(h, b.Instrs[k])
				io.WriteString(h, ";")
			}
			io.WriteString(h, "->")
			for _, s := range b.Succs {
				io.WriteString(h, strconv.Itoa(int(s)))
				io.WriteString(h, ",")
			}
			io.WriteString(h, "\n")
		}
		sums[r] = hex.EncodeToString(h.Sum(nil))
	}
	return sums
}

// decodeVar resolves a temp-canonical var name in the namespace of g:
// source vars map to themselves, τ(ε) names to g's temp bound to ε.
// ok is false when g has no temp for ε.
func decodeVar(g *ir.Graph, tempByKey map[string]ir.Var, name string) (ir.Var, bool) {
	if !strings.HasPrefix(name, tauPrefix) {
		return ir.Var(name), true
	}
	key := strings.TrimSuffix(strings.TrimPrefix(name, tauPrefix), ")")
	v, ok := tempByKey[key]
	return v, ok
}

// tempKeyMap indexes g's temporaries by the canonical key of their
// bound expression.
func tempKeyMap(g *ir.Graph) map[string]ir.Var {
	m := make(map[string]ir.Var)
	for _, h := range g.Temps() {
		if e, ok := g.TempExpr(h); ok {
			m[e.Key()] = h
		}
	}
	return m
}

// decodePattern resolves a manifest pattern into g's namespace.
func decodePattern(g *ir.Graph, tempByKey map[string]ir.Var, rec PatternRec) (ir.AssignPattern, bool) {
	decodeOp := func(o OpRec) (ir.Operand, bool) {
		if o.C {
			return ir.ConstOp(o.K), true
		}
		v, ok := decodeVar(g, tempByKey, o.V)
		return ir.VarOp(v), ok
	}
	lhs, ok := decodeVar(g, tempByKey, rec.L)
	if !ok {
		return ir.AssignPattern{}, false
	}
	a, ok := decodeOp(rec.A)
	if !ok {
		return ir.AssignPattern{}, false
	}
	if rec.Op == "" {
		return ir.AssignPattern{LHS: lhs, RHS: ir.OperandTerm(a)}, true
	}
	b, ok := decodeOp(rec.B)
	if !ok {
		return ir.AssignPattern{}, false
	}
	return ir.AssignPattern{LHS: lhs, RHS: ir.Term{Op: ir.Op(rec.Op), Args: [2]ir.Operand{a, b}}}, true
}

// --- bitset codec -------------------------------------------------------

func vecBytes(bits []int, width int) []byte {
	out := make([]byte, (width+7)/8)
	for _, i := range bits {
		out[i/8] |= 1 << (i % 8)
	}
	return out
}

func byteBit(b []byte, i int) bool {
	if i/8 >= len(b) {
		return false
	}
	return b[i/8]&(1<<(i%8)) != 0
}

func byteBits(b []byte) []int {
	var out []int
	for i := 0; i < len(b)*8; i++ {
		if byteBit(b, i) {
			out = append(out, i)
		}
	}
	return out
}
