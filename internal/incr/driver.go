package incr

import (
	"encoding/json"
	"sync"

	"assignmentmotion/internal/ir"
)

// Store is the persistence seam of the incremental layer: the engine's
// Backend satisfies it directly (internal/cachestore on disk), and a nil
// store selects an in-process map, so incremental reuse works within one
// engine lifetime even without a cache directory.
type Store interface {
	Get(key string) (data []byte, ok bool)
	Put(key string, data []byte) error
}

// memStore is the in-process fallback store. Entries are bounded by the
// heads ring: when a fingerprint falls off the ring its manifest is
// deleted, so the map holds at most headsMax manifests per config.
type memStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func (st *memStore) Get(key string) ([]byte, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	data, ok := st.m[key]
	return data, ok
}

func (st *memStore) Put(key string, data []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.m[key] = data
	return nil
}

func (st *memStore) delete(key string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.m, key)
}

// Driver owns the incremental artifact flow of one engine: storing
// manifests recorded on clean cold runs, maintaining the per-config ring
// of recent fingerprints, and attempting warm replays against it.
type Driver struct {
	st  Store
	mem *memStore // non-nil when st is the in-process fallback

	// mu serializes read-modify-write of the heads ring. Manifest bytes
	// themselves go through the store's own synchronization.
	mu sync.Mutex

	// decoded caches Manifest objects by store key, seeded by Record with
	// the live manifest and populated by TryWarm after a decode, so the
	// hot warm path skips JSON decoding (and, via the manifest's memoized
	// final graph, re-parsing). Bounded like the store: an entry is
	// dropped when its fingerprint falls off a heads ring, with a global
	// size backstop for many-config engines.
	decMu   sync.Mutex
	decoded map[string]*Manifest
}

// decodedMax caps the decoded-manifest cache across all configs.
const decodedMax = 4 * headsMax

func (d *Driver) decGet(key string) (*Manifest, bool) {
	d.decMu.Lock()
	defer d.decMu.Unlock()
	m, ok := d.decoded[key]
	return m, ok
}

func (d *Driver) decPut(key string, m *Manifest) {
	d.decMu.Lock()
	defer d.decMu.Unlock()
	if len(d.decoded) >= decodedMax {
		for k := range d.decoded {
			delete(d.decoded, k)
			if len(d.decoded) < decodedMax {
				break
			}
		}
	}
	d.decoded[key] = m
}

func (d *Driver) decDelete(key string) {
	d.decMu.Lock()
	defer d.decMu.Unlock()
	delete(d.decoded, key)
}

// NewDriver returns a driver over st; a nil st selects the in-process
// fallback store.
func NewDriver(st Store) *Driver {
	d := &Driver{st: st, decoded: map[string]*Manifest{}}
	if st == nil {
		d.mem = &memStore{m: map[string][]byte{}}
		d.st = d.mem
	}
	return d
}

// Record stores the manifest of a clean cold run and pushes its
// fingerprint to the front of the config's heads ring.
func (d *Driver) Record(cfg string, m *Manifest) {
	if m == nil {
		return
	}
	data, err := m.Encode()
	if err != nil {
		return
	}
	d.st.Put(ManifestKey(cfg, m.Fp), data)
	d.decPut(ManifestKey(cfg, m.Fp), m)

	d.mu.Lock()
	defer d.mu.Unlock()
	heads := d.loadHeads(cfg)
	next := make([]string, 0, len(heads)+1)
	next = append(next, m.Fp)
	for _, h := range heads {
		if h != m.Fp {
			next = append(next, h)
		}
	}
	for len(next) > headsMax {
		evicted := next[len(next)-1]
		next = next[:len(next)-1]
		d.decDelete(ManifestKey(cfg, evicted))
		if d.mem != nil {
			d.mem.delete(ManifestKey(cfg, evicted))
		}
	}
	if data, err := json.Marshal(next); err == nil {
		d.st.Put(HeadsKey(cfg), data)
	}
}

// TryWarm attempts a warm replay of src (whose fingerprint is fp)
// against the recorded predecessors of cfg, most recent first. ok=false
// means no predecessor certified — the caller runs cold.
func (d *Driver) TryWarm(cfg, fp string, src *ir.Graph) (*WarmResult, bool) {
	d.mu.Lock()
	heads := d.loadHeads(cfg)
	d.mu.Unlock()
	for _, h := range heads {
		if h == fp {
			// An identical graph is the memory/disk tiers' business.
			continue
		}
		key := ManifestKey(cfg, h)
		man, cached := d.decGet(key)
		if !cached {
			data, ok := d.st.Get(key)
			if !ok {
				continue
			}
			man, ok = DecodeManifest(data)
			if !ok || man.Fp != h || man.Cfg != cfg {
				continue
			}
			d.decPut(key, man)
		}
		if res, ok := Replay(src, man); ok {
			return res, true
		}
	}
	return nil, false
}

func (d *Driver) loadHeads(cfg string) []string {
	data, ok := d.st.Get(HeadsKey(cfg))
	if !ok {
		return nil
	}
	var heads []string
	if json.Unmarshal(data, &heads) != nil {
		return nil
	}
	if len(heads) > headsMax {
		heads = heads[:headsMax]
	}
	return heads
}
