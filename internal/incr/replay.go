package incr

import (
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/flush"
	"assignmentmotion/internal/ir"
)

// WarmResult is the outcome of a successful warm replay: a fully
// optimized graph byte-identical to what the cold global algorithm would
// produce, plus the statistics the engine reports for it.
type WarmResult struct {
	Graph         *ir.Graph
	Decomposed    int
	SplitEdges    int
	AMIterations  int
	Eliminated    int
	Flush         flush.Stats
	RegionsTotal  int
	RegionsReused int
}

// Replay attempts to optimize src by replaying the recorded run in man:
// init runs in full (it is cheap), the post-init graph is diffed against
// the manifest's region digests, and when at most one region differs the
// recorded AM rounds and the final flush are replayed on that region
// alone as boundary-pinned sub-problems, certified against the recording
// at every exported fact. The untouched regions' final content is
// stitched back from the manifest, so the warm path's cost is linear in
// the dirty region, not the graph. ok=false means the replay could not
// be certified — the caller falls back to the cold path, so a false here
// costs time, never correctness.
func Replay(src *ir.Graph, man *Manifest) (*WarmResult, bool) {
	if len(src.Temps()) > 0 {
		// τ-canonical naming is only bijective on temp-free sources.
		return nil, false
	}
	g := src.Clone()
	split := g.SplitCriticalEdges()
	decomposed := core.Initialize(g)

	// Structural certificate: the edit must not have changed the
	// post-init shape the recording is expressed in.
	if len(g.Blocks) != man.NBlocks || int(g.Entry) != man.Entry || int(g.Exit) != man.Exit ||
		len(man.Succs) != man.NBlocks {
		return nil, false
	}
	for i, b := range g.Blocks {
		if !eqInts(nodeInts(b.Succs), man.Succs[i]) {
			return nil, false
		}
	}
	rs := ir.Regionize(g, 0)
	if rs.Len() != len(man.Regions) || len(man.Sums) != rs.Len() {
		return nil, false
	}
	for i, region := range rs.Regions {
		if !eqInts(nodeInts(region), man.Regions[i]) {
			return nil, false
		}
	}
	if man.K < 1 || len(man.Rounds) != man.K || len(man.FlushRegions) != rs.Len() {
		return nil, false
	}

	sums := RegionSums(g, rs)
	dirty := -1
	for r := range sums {
		if sums[r] != man.Sums[r] {
			if dirty >= 0 {
				return nil, false // more than one dirty region: cold
			}
			dirty = r
		}
	}

	rp := &replayer{g: g, man: man, rs: rs, dirty: dirty}
	if !rp.prepare() {
		return nil, false
	}
	eliminated := 0
	var fst flush.Stats
	switch {
	case dirty >= 0 && rs.Len() == 1:
		// The whole graph is the dirty region: nothing is stitched and no
		// recorded boundary fact applies — flush simply runs live.
		var ok bool
		eliminated, ok = rp.replayRounds()
		if !ok {
			return nil, false
		}
		fst = flush.RunWith(g, nil)
	case dirty >= 0:
		var ok bool
		eliminated, ok = rp.replayRounds()
		if !ok {
			return nil, false
		}
		fst, ok = rp.flushReplay()
		if !ok {
			return nil, false
		}
		for r, rec := range man.FlushRegions {
			if r == dirty {
				continue
			}
			fst.DroppedInits += rec[0]
			fst.InsertedInits += rec[1]
			fst.Reconstructed += rec[2]
		}
		if !rp.stitchFinal() {
			return nil, false
		}
	default:
		eliminated = man.Eliminated
		fst = flush.Stats{
			DroppedInits:  man.FlushTotal[0],
			InsertedInits: man.FlushTotal[1],
			Reconstructed: man.FlushTotal[2],
		}
		if !rp.stitchFinal() {
			return nil, false
		}
	}
	reused := rs.Len()
	if dirty >= 0 {
		reused--
	}
	return &WarmResult{
		Graph:         g,
		Decomposed:    decomposed,
		SplitEdges:    split,
		AMIterations:  man.K,
		Eliminated:    eliminated,
		Flush:         fst,
		RegionsTotal:  rs.Len(),
		RegionsReused: reused,
	}, true
}

// replayer carries the per-attempt state of one warm replay.
type replayer struct {
	g     *ir.Graph
	man   *Manifest
	rs    *ir.RegionSet
	dirty int

	u       *ir.PatternSet
	px      *analysis.PatternIndex
	selfRef bitvec.Vec

	// Pattern-ID translation between the manifest universe and the live
	// one, by decoded temp-canonical equality (-1 = unmapped).
	man2live []int
	live2man []int

	// Dirty-region geometry: member blocks ascending, block→sub-problem
	// index (-1 outside), and the external adjacency of each member.
	rblocks []int
	sub     []int
	extPred [][]int
	extSucc [][]int
}

func (rp *replayer) prepare() bool {
	man, g := rp.man, rp.g
	var s *analysis.Session // nil session: plain one-shot universe
	rp.u, rp.px = s.Universe(g)
	rp.selfRef = rp.px.SelfRef()
	mw, lw := len(man.Universe), rp.u.Len()

	for _, rec := range man.Rounds {
		if len(rec.Pos1) != mw || len(rec.Reg1) != mw || len(rec.Pos2) != mw ||
			len(rec.Changed) != rp.rs.Len() || len(rec.Removed) != rp.rs.Len() {
			return false
		}
	}

	tempByKey := tempKeyMap(g)
	rp.man2live = constInts(mw, -1)
	rp.live2man = constInts(lw, -1)
	for mid, rec := range man.Universe {
		p, ok := decodePattern(g, tempByKey, rec)
		if !ok {
			continue
		}
		if lid, ok := rp.u.ID(p); ok {
			rp.man2live[mid] = lid
			rp.live2man[lid] = mid
		}
	}

	if rp.dirty < 0 {
		return true
	}
	region := rp.rs.Regions[rp.dirty]
	rp.rblocks = nodeInts(region)
	rp.sub = constInts(len(g.Blocks), -1)
	for si, b := range rp.rblocks {
		rp.sub[b] = si
	}
	rp.extPred = make([][]int, len(rp.rblocks))
	rp.extSucc = make([][]int, len(rp.rblocks))
	for si, bi := range rp.rblocks {
		b := g.Blocks[bi]
		for _, p := range b.Preds {
			if rp.sub[p] < 0 {
				rp.extPred[si] = append(rp.extPred[si], int(p))
			}
		}
		for _, s := range b.Succs {
			if rp.sub[s] < 0 {
				rp.extSucc[si] = append(rp.extSucc[si], int(s))
			}
		}
	}
	return true
}

// replayRounds replays the K recorded AM rounds on the dirty region and
// returns the total number of eliminated occurrences (recorded outside +
// live inside), or ok=false on any certificate mismatch.
func (rp *replayer) replayRounds() (int, bool) {
	eliminated := 0
	for k := 0; k < rp.man.K; k++ {
		rec := &rp.man.Rounds[k]

		mpos, ok := rp.mergedPositions(rec)
		if !ok {
			return 0, false
		}
		hoistChanged, ok := rp.hoistRound(rec, mpos)
		if !ok {
			return 0, false
		}
		removed, ok := rp.elimRound(rec)
		if !ok {
			return 0, false
		}
		eliminated += removed

		// Round-count alignment: the live round must agree with the
		// recording on whether the global fixpoint loop continues.
		outsideChanged := false
		outsideRemoved := 0
		for r := range rec.Changed {
			if r == rp.dirty {
				continue
			}
			if rec.Changed[r] {
				outsideChanged = true
			}
			outsideRemoved += rec.Removed[r]
		}
		eliminated += outsideRemoved
		continues := hoistChanged || outsideChanged || removed > 0 || outsideRemoved > 0
		if (k < rp.man.K-1) != continues {
			return 0, false
		}
	}
	return eliminated, true
}

// mergedPositions computes, for every live pattern ID, the global
// first-occurrence position this round exactly as the cold run would see
// it: the minimum of the recorded first position outside the dirty
// region (exact — the clean regions' content is the predecessor's) and
// the live first position inside the dirty region. -1 means absent.
func (rp *replayer) mergedPositions(rec *RoundRec) ([]int64, bool) {
	lw := rp.u.Len()
	mpos := constSlice(lw, -1)
	// The region's canonical block list is not in graph order, so keep the
	// minimum position per pattern — cold occRank order is exactly the
	// numeric order of global first-occurrence positions.
	for _, bi := range rp.rblocks {
		b := rp.g.Blocks[bi]
		for kk := range b.Instrs {
			id, ok := rp.px.OccID(&b.Instrs[kk])
			if !ok {
				continue
			}
			pos := int64(bi)<<20 | int64(kk)
			if mpos[id] < 0 || pos < mpos[id] {
				mpos[id] = pos
			}
		}
	}
	for lid := 0; lid < lw; lid++ {
		mid := rp.live2man[lid]
		if mid < 0 {
			continue
		}
		outside := int64(-1)
		if p1 := rec.Pos1[mid]; p1 >= 0 {
			if rec.Reg1[mid] != int64(rp.dirty) {
				outside = p1
			} else {
				outside = rec.Pos2[mid]
			}
		}
		if outside >= 0 && (mpos[lid] < 0 || outside < mpos[lid]) {
			mpos[lid] = outside
		}
	}
	return mpos, true
}

// hoistRound runs one aht round restricted to the dirty region with the
// recorded boundary facts injected, certifies the region's exported
// facts and insertion orders against the recording, and performs the
// insert/remove rewrite on the region's blocks. It reports whether any
// region block changed (the cold round's change signal restricted to the
// region).
func (rp *replayer) hoistRound(rec *RoundRec, mpos []int64) (bool, bool) {
	g, lw := rp.g, rp.u.Len()
	nr := len(rp.rblocks)

	// Per-block local predicates and candidates, as cold aht computes them.
	locH := make([]bitvec.Vec, nr)
	locB := make([]bitvec.Vec, nr)
	cand := make([][]int, nr)
	for si, bi := range rp.rblocks {
		locH[si], locB[si], cand[si] = rp.px.BlockLocals(g.Blocks[bi])
	}

	// Sub-problem: region blocks plus one context node per block with
	// external successors, carrying the recorded meet of their
	// N-HOISTABLE facts. A context node has no upstream in the backward
	// orientation, so the solver's Boundary hook presets its fact and an
	// empty gen/kill transfer exports it unchanged.
	var ctxOf []int // sub index of block si's context node, -1 none
	ctxOf = constInts(nr, -1)
	ctxFact := []bitvec.Vec{}
	ctxHome := []int{} // context node -> owning sub block
	for si := range rp.rblocks {
		if len(rp.extSucc[si]) == 0 {
			continue
		}
		raw, ok := rec.XExt[rp.rblocks[si]]
		if !ok {
			return false, false
		}
		v, ok := rp.strictVec(raw, lw)
		if !ok {
			return false, false
		}
		ctxOf[si] = nr + len(ctxFact)
		ctxFact = append(ctxFact, v)
		ctxHome = append(ctxHome, si)
	}
	n := nr + len(ctxFact)
	gen := make([]bitvec.Vec, n)
	kill := make([]bitvec.Vec, n)
	empty := bitvec.New(lw)
	for si := 0; si < nr; si++ {
		gen[si], kill[si] = locH[si], locB[si]
	}
	for c := nr; c < n; c++ {
		gen[c], kill[c] = empty, empty
	}
	exit := int(g.Exit)
	succs := func(i int) []int {
		if i >= nr {
			return nil
		}
		var out []int
		for _, s := range g.Blocks[rp.rblocks[i]].Succs {
			if rp.sub[s] >= 0 {
				out = append(out, rp.sub[s])
			}
		}
		if ctxOf[i] >= 0 {
			out = append(out, ctxOf[i])
		}
		return out
	}
	preds := func(i int) []int {
		if i >= nr {
			return []int{ctxHome[i-nr]}
		}
		var out []int
		for _, p := range g.Blocks[rp.rblocks[i]].Preds {
			if rp.sub[p] >= 0 {
				out = append(out, rp.sub[p])
			}
		}
		return out
	}
	res := dataflow.Solve(dataflow.Problem{
		N: n, Bits: lw, Dir: dataflow.Backward, Meet: dataflow.All,
		Preds: preds, Succs: succs,
		Gen: gen, Kill: kill,
		Boundary: func(i int, in bitvec.Vec) {
			switch {
			case i >= nr:
				in.CopyFrom(ctxFact[i-nr])
			case rp.rblocks[i] == exit:
				in.ClearAll()
			}
		},
	})
	xh := res.In[:nr]  // X-HOISTABLE per region block
	nh := res.Out[:nr] // N-HOISTABLE per region block

	// Certify the region's exported hoisting facts.
	for si, bi := range rp.rblocks {
		if len(rp.extPred[si]) > 0 && !rp.certifyVec(nh[si], rec.NEntry[bi]) {
			return false, false
		}
		if len(rp.extSucc[si]) > 0 && !rp.certifyVec(xh[si], rec.XExit[bi]) {
			return false, false
		}
	}

	// Insertion points, with the external frontier taken from the
	// recording (lenient translation: an unmapped pattern cannot be set
	// in any live fact, and the frontier is only ever intersected with
	// live facts).
	full := bitvec.NewFull(lw)
	nIns := make([]bitvec.Vec, nr)
	xIns := make([]bitvec.Vec, nr)
	for si, bi := range rp.rblocks {
		ni := nh[si].Copy()
		if ir.NodeID(bi) != g.Entry {
			frontier := bitvec.New(lw)
			for _, p := range g.Blocks[bi].Preds {
				if rp.sub[p] >= 0 {
					frontier.OrAndNot(full, xh[rp.sub[p]])
				}
			}
			if len(rp.extPred[si]) > 0 {
				raw, ok := rec.FExt[bi]
				if !ok {
					return false, false
				}
				rp.lenientOr(frontier, raw)
			}
			ni.And(frontier)
		}
		nIns[si] = ni
		xi := xh[si].Copy()
		xi.And(locB[si])
		xIns[si] = xi
	}

	// A dirty branch block with external successors prepends its X-INSERT
	// sequence into clean blocks: both the set and the order must match
	// the recording exactly.
	for si, bi := range rp.rblocks {
		if len(rp.extSucc[si]) == 0 {
			continue
		}
		if _, branch := g.Blocks[bi].Cond(); !branch {
			continue
		}
		if !rp.certifyList(rec.InsX[bi], xIns[si], mpos) {
			return false, false
		}
	}
	// Clean blocks' insertion sets are pinned by the certified boundary
	// facts; their ORDER depends on global first-occurrence ranks, which
	// the edit could reorder — certify that the live merged positions
	// keep every recorded clean-block sequence strictly increasing.
	for biStr, list := range rec.InsN {
		if rp.sub[biStr] < 0 && !rp.certifyOrder(list, mpos) {
			return false, false
		}
	}
	for biStr, list := range rec.InsX {
		if rp.sub[biStr] < 0 && !rp.certifyOrder(list, mpos) {
			return false, false
		}
	}

	// Rewrite the region's blocks exactly as cold aht does.
	prepend := make([][]ir.Instr, nr)
	appendAtEnd := make([][]ir.Instr, nr)
	for si, bi := range rp.rblocks {
		if !xIns[si].Any() {
			continue
		}
		instrs, ok := rp.materialize(xIns[si], mpos)
		if !ok {
			return false, false
		}
		if _, branch := g.Blocks[bi].Cond(); branch {
			for _, s := range g.Blocks[bi].Succs {
				ss := rp.sub[s]
				if ss < 0 {
					continue // clean successor: content arrives via stitching
				}
				if len(g.Block(s).Preds) != 1 {
					return false, false
				}
				prepend[ss] = append(prepend[ss], instrs...)
			}
		} else {
			appendAtEnd[si] = append(appendAtEnd[si], instrs...)
		}
	}
	for si, bi := range rp.rblocks {
		// Prepends arriving from a clean branch predecessor (recorded as
		// ordered Pin sequences). Edge splitting guarantees a block fed by
		// a branch has that branch as its only predecessor, so Pin and an
		// internal branch prepend never mix.
		for _, p := range rp.extPred[si] {
			if list, ok := rec.Pin[itoa(bi)+","+itoa(p)]; ok {
				instrs, ok := rp.materializeList(list)
				if !ok {
					return false, false
				}
				prepend[si] = append(instrs, prepend[si]...)
			}
		}
		if nIns[si].Any() {
			instrs, ok := rp.materialize(nIns[si], mpos)
			if !ok {
				return false, false
			}
			prepend[si] = append(prepend[si], instrs...)
		}
	}

	changed := false
	for si, bi := range rp.rblocks {
		b := g.Blocks[bi]
		if len(prepend[si]) == 0 && len(appendAtEnd[si]) == 0 && !locH[si].Any() {
			continue
		}
		drop := bitvec.New(len(b.Instrs))
		locH[si].ForEach(func(id int) { drop.Set(cand[si][id]) })
		next := make([]ir.Instr, 0, len(prepend[si])+len(b.Instrs)+len(appendAtEnd[si]))
		next = append(next, prepend[si]...)
		for kk, in := range b.Instrs {
			if !drop.Get(kk) {
				next = append(next, in)
			}
		}
		next = append(next, appendAtEnd[si]...)
		if !sameInstrs(next, b.Instrs) {
			changed = true
		}
		b.Instrs = normalizeInstrs(next)
	}
	return changed, true
}

// elimRound runs one rae round restricted to the dirty region with the
// recorded entry availability injected, certifies the region's exported
// availability, and performs the removal walk. Returns the number of
// occurrences removed inside the region.
func (rp *replayer) elimRound(rec *RoundRec) (int, bool) {
	g, lw := rp.g, rp.u.Len()
	nr := len(rp.rblocks)

	gen := make([]bitvec.Vec, 0, nr)
	kill := make([]bitvec.Vec, 0, nr)
	for _, bi := range rp.rblocks {
		b := g.Blocks[bi]
		gv, kv := bitvec.New(lw), bitvec.New(lw)
		for kk := range b.Instrs {
			in := &b.Instrs[kk]
			rp.px.AndNotKill(in, gv)
			rp.px.OrKill(in, kv)
			if id, ok := rp.px.OccID(in); ok && !rp.selfRef.Get(id) {
				gv.Set(id)
				kv.Clear(id)
			}
		}
		gen = append(gen, gv)
		kill = append(kill, kv)
	}

	ctxOf := constInts(nr, -1)
	ctxFact := []bitvec.Vec{}
	ctxHome := []int{}
	for si := range rp.rblocks {
		if len(rp.extPred[si]) == 0 {
			continue
		}
		raw, ok := rec.AExt[rp.rblocks[si]]
		if !ok {
			return 0, false
		}
		v, ok := rp.strictVec(raw, lw)
		if !ok {
			return 0, false
		}
		ctxOf[si] = nr + len(ctxFact)
		ctxFact = append(ctxFact, v)
		ctxHome = append(ctxHome, si)
	}
	n := nr + len(ctxFact)
	empty := bitvec.New(lw)
	for c := nr; c < n; c++ {
		gen = append(gen, empty)
		kill = append(kill, empty)
	}
	entry := int(g.Entry)
	preds := func(i int) []int {
		if i >= nr {
			return nil
		}
		var out []int
		for _, p := range g.Blocks[rp.rblocks[i]].Preds {
			if rp.sub[p] >= 0 {
				out = append(out, rp.sub[p])
			}
		}
		if ctxOf[i] >= 0 {
			out = append(out, ctxOf[i])
		}
		return out
	}
	succs := func(i int) []int {
		if i >= nr {
			return []int{ctxHome[i-nr]}
		}
		var out []int
		for _, s := range g.Blocks[rp.rblocks[i]].Succs {
			if rp.sub[s] >= 0 {
				out = append(out, rp.sub[s])
			}
		}
		return out
	}
	res := dataflow.Solve(dataflow.Problem{
		N: n, Bits: lw, Dir: dataflow.Forward, Meet: dataflow.All,
		Preds: preds, Succs: succs,
		Gen: gen, Kill: kill,
		Boundary: func(i int, in bitvec.Vec) {
			switch {
			case i >= nr:
				in.CopyFrom(ctxFact[i-nr])
			case rp.rblocks[i] == entry:
				in.ClearAll()
			}
		},
	})

	for si, bi := range rp.rblocks {
		if len(rp.extSucc[si]) > 0 && !rp.certifyVec(res.Out[si], rec.AOut[bi]) {
			return 0, false
		}
	}

	removed := 0
	avail := bitvec.New(lw)
	for si, bi := range rp.rblocks {
		b := g.Blocks[bi]
		avail.CopyFrom(res.In[si])
		kept := b.Instrs[:0]
		for kk := range b.Instrs {
			in := &b.Instrs[kk]
			id, isOcc := rp.px.OccID(in)
			if isOcc && avail.Get(id) {
				removed++
				continue
			}
			rp.px.AndNotKill(in, avail)
			if isOcc && !rp.selfRef.Get(id) {
				avail.Set(id)
			}
			kept = append(kept, *in)
		}
		b.Instrs = normalizeInstrs(kept)
	}
	return removed, true
}

// stitchFinal copies the recorded final (post-flush) content into every
// clean block, renaming the manifest's temporaries into the live graph's
// by their bound expression. The dirty region's blocks keep their
// replayed content (with no dirty region, every block is stitched). The
// parsed final graph is memoized on the manifest, so repeated warm runs
// off the same recording pay the parse once.
func (rp *replayer) stitchFinal() bool {
	postG := rp.man.finalGraph()
	if postG == nil || len(postG.Blocks) != len(rp.g.Blocks) {
		return false
	}
	liveTemps := tempKeyMap(rp.g)
	for i, b := range rp.g.Blocks {
		if rp.dirty >= 0 && rp.rs.Of[i] == rp.dirty {
			continue
		}
		pb := postG.Blocks[i]
		if !eqInts(nodeInts(pb.Succs), nodeInts(b.Succs)) {
			return false
		}
		instrs := make([]ir.Instr, len(pb.Instrs))
		for kk := range pb.Instrs {
			in, ok := remapInstr(postG, liveTemps, pb.Instrs[kk])
			if !ok {
				return false
			}
			instrs[kk] = in
		}
		b.Instrs = instrs
	}
	return true
}

// remapInstr rewrites one recorded instruction into the live graph's
// namespace: source variables map to themselves, the recording's
// temporaries to the live temporary bound to the same expression.
func remapInstr(from *ir.Graph, liveTemps map[string]ir.Var, in ir.Instr) (ir.Instr, bool) {
	ok := true
	mapVar := func(v ir.Var) ir.Var {
		if !from.IsTemp(v) {
			return v
		}
		e, has := from.TempExpr(v)
		if !has {
			ok = false
			return v
		}
		lv, has := liveTemps[e.Key()]
		if !has {
			ok = false
			return v
		}
		return lv
	}
	mapOperand := func(o ir.Operand) ir.Operand {
		if o.IsConst {
			return o
		}
		return ir.VarOp(mapVar(o.Var))
	}
	mapTerm := func(t ir.Term) ir.Term {
		t.Args[0] = mapOperand(t.Args[0])
		if !t.Trivial() {
			t.Args[1] = mapOperand(t.Args[1])
		}
		return t
	}
	out := in
	switch in.Kind {
	case ir.KindAssign:
		out.LHS = mapVar(in.LHS)
		out.RHS = mapTerm(in.RHS)
	case ir.KindOut:
		out.Args = append([]ir.Operand(nil), in.Args...)
		for i := range out.Args {
			out.Args[i] = mapOperand(out.Args[i])
		}
	case ir.KindCond:
		out.CondL = mapTerm(in.CondL)
		out.CondR = mapTerm(in.CondR)
	}
	return out, ok
}

// --- translation and certification helpers ------------------------------

// strictVec translates a recorded manifest-space bitset into live space.
// Every set bit must map: these vectors are injected as live facts, and a
// pattern absent from the live universe cannot carry a live fact.
func (rp *replayer) strictVec(raw []byte, lw int) (bitvec.Vec, bool) {
	v := bitvec.New(lw)
	for _, mid := range byteBits(raw) {
		if mid >= len(rp.man2live) || rp.man2live[mid] < 0 {
			return bitvec.Vec{}, false
		}
		v.Set(rp.man2live[mid])
	}
	return v, true
}

// lenientOr folds a recorded frontier contribution into dst, dropping
// bits of patterns absent from the live universe (such patterns cannot
// be set in any live fact the frontier is intersected with).
func (rp *replayer) lenientOr(dst bitvec.Vec, raw []byte) {
	for _, mid := range byteBits(raw) {
		if mid < len(rp.man2live) && rp.man2live[mid] >= 0 {
			dst.Set(rp.man2live[mid])
		}
	}
}

// certifyVec checks a live fact vector against its recorded counterpart:
// every live bit must map to a set recorded bit and vice versa.
func (rp *replayer) certifyVec(live bitvec.Vec, raw []byte) bool {
	okAll := true
	live.ForEach(func(lid int) {
		mid := rp.live2man[lid]
		if mid < 0 || !byteBit(raw, mid) {
			okAll = false
		}
	})
	if !okAll {
		return false
	}
	for _, mid := range byteBits(raw) {
		if mid >= len(rp.man2live) {
			return false
		}
		lid := rp.man2live[mid]
		if lid < 0 || !live.Get(lid) {
			return false
		}
	}
	return true
}

// certifyList checks that a live insertion set equals the recorded
// ordered list and that the live merged positions reproduce its order.
func (rp *replayer) certifyList(list []int, live bitvec.Vec, mpos []int64) bool {
	if len(list) != live.PopCount() {
		return false
	}
	prev := int64(-1)
	for _, mid := range list {
		if mid < 0 || mid >= len(rp.man2live) {
			return false
		}
		lid := rp.man2live[mid]
		if lid < 0 || !live.Get(lid) {
			return false
		}
		p := mpos[lid]
		if p < 0 || p <= prev {
			return false
		}
		prev = p
	}
	return true
}

// certifyOrder checks that the live merged positions keep a recorded
// clean-block insertion sequence strictly increasing (set membership is
// already pinned by the certified boundary facts).
func (rp *replayer) certifyOrder(list []int, mpos []int64) bool {
	prev := int64(-1)
	for _, mid := range list {
		if mid < 0 || mid >= len(rp.man2live) {
			return false
		}
		lid := rp.man2live[mid]
		if lid < 0 {
			return false
		}
		p := mpos[lid]
		if p < 0 || p <= prev {
			return false
		}
		prev = p
	}
	return true
}

// materialize renders a live insertion set as instructions ordered by
// merged first-occurrence position — the cold run's occRank order.
func (rp *replayer) materialize(v bitvec.Vec, mpos []int64) ([]ir.Instr, bool) {
	ids := v.Bits()
	for _, id := range ids {
		if mpos[id] < 0 {
			return nil, false
		}
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && mpos[ids[j]] < mpos[ids[j-1]]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	out := make([]ir.Instr, 0, len(ids))
	for _, id := range ids {
		p := rp.u.Pattern(id)
		out = append(out, ir.NewAssign(p.LHS, p.RHS))
	}
	return out, true
}

// materializeList renders a recorded ordered pattern-ID sequence (a Pin)
// as live instructions, in the recorded order.
func (rp *replayer) materializeList(list []int) ([]ir.Instr, bool) {
	out := make([]ir.Instr, 0, len(list))
	for _, mid := range list {
		if mid < 0 || mid >= len(rp.man2live) || rp.man2live[mid] < 0 {
			return nil, false
		}
		p := rp.u.Pattern(rp.man2live[mid])
		out = append(out, ir.NewAssign(p.LHS, p.RHS))
	}
	return out, true
}

// --- small utilities ----------------------------------------------------

func sameInstrs(a, b []ir.Instr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// normalizeInstrs is ir.Graph.Normalize restricted to one block: skips
// are stripped and an emptied block keeps a single skip.
func normalizeInstrs(instrs []ir.Instr) []ir.Instr {
	kept := instrs[:0]
	for _, in := range instrs {
		if in.Kind != ir.KindSkip {
			kept = append(kept, in)
		}
	}
	if len(kept) == 0 {
		kept = append(kept, ir.Skip())
	}
	return kept
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func constInts(n, v int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}
