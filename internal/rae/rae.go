// Package rae implements redundant assignment elimination — procedure
// "rae" of the paper's assignment motion phase (Table 2).
//
// An occurrence of an assignment pattern α ≡ v := t is redundant if every
// path from s to it passes another occurrence of α with neither v nor an
// operand of t modified in between (Definition 3.4). Redundancy is computed
// by a forward bit-vector analysis over instructions:
//
//	N-REDUNDANT(ι) = false                       if ι = ι_s
//	               = ∏_{ι' ∈ pred(ι)} X-REDUNDANT(ι')   otherwise
//	X-REDUNDANT(ι) = GEN(ι) + ASS-TRANSP(ι) · N-REDUNDANT(ι)
//
// where GEN(ι,α) holds when ι is an occurrence of α and α is not
// self-referential (for x := x+1 the execution itself invalidates the
// association — the side condition of Table 2). The published equation
// reads ASS-TRANSP · (EXECUTED + N-REDUNDANT); taken literally that would
// never generate redundancy because an occurrence of α modifies v and so is
// not transparent for α. The availability form above is the intended
// reading (see DESIGN.md).
package rae

import (
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"
)

// Info holds the analysis result.
type Info struct {
	Prog *analysis.Prog
	U    *ir.PatternSet
	// NRedundant[i] is the redundancy vector at the entry of instruction i
	// (global index in Prog); XRedundant[i] at its exit.
	NRedundant []bitvec.Vec
	XRedundant []bitvec.Vec
}

// Analyze computes the redundancy analysis for g.
func Analyze(g *ir.Graph) *Info {
	return AnalyzeWith(g, nil)
}

// AnalyzeWith is Analyze drawing its pattern universe and vector storage
// from session s (nil for the uncached path). The result shares the
// session's arena and must be consumed before the arena is released.
func AnalyzeWith(g *ir.Graph, s *analysis.Session) *Info {
	prog := analysis.NewProg(g)
	u, px := s.Universe(g)
	ar := s.Arena()
	n, bits := prog.Len(), u.Len()

	// Dense gen/kill form: GEN is the occurrence's own pattern (unless
	// self-referential) as a shared singleton vector, KILL the index's
	// shared per-definition kill vector — X-REDUNDANT = GEN ∨
	// (N-REDUNDANT ∧ ASS-TRANSP). GEN winning over KILL in the fused
	// kernel is exactly the availability reading: an occurrence kills its
	// own pattern's transparency but re-generates it.
	gen := ar.Vecs(n)
	kill := ar.Vecs(n)
	selfRef := px.SelfRef()
	for i := 0; i < n; i++ {
		in := &prog.Ins[i]
		kill[i] = px.KillVec(in)
		gen[i] = px.Empty()
		if id, ok := px.OccID(in); ok && !selfRef.Get(id) {
			gen[i] = px.GenVec(id)
		}
	}

	entry := prog.EntryIndex()
	res := dataflow.Solve(dataflow.Problem{
		N:       n,
		Bits:    bits,
		Dir:     dataflow.Forward,
		Meet:    dataflow.All,
		Preds:   prog.Preds,
		Succs:   prog.Succs,
		Arena:   ar,
		Stats:   s.DataflowStats(),
		Workers: s.SolverWorkersFor(n),
		Gen:     gen,
		Kill:    kill,
		Boundary: func(i int, in bitvec.Vec) {
			if i == entry {
				in.ClearAll()
			}
		},
	})
	return &Info{Prog: prog, U: u, NRedundant: res.In, XRedundant: res.Out}
}

func init() {
	pass.Register(pass.Pass{
		Name:        "rae",
		Description: "one redundant-assignment-elimination step: remove every totally redundant occurrence",
		Ref:         "§4.3, Table 2, Figure 14",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			return pass.Stats{Changes: EliminateBlocksWith(g, s), Iterations: 1}, nil
		},
	})
}

// Eliminate applies the elimination step: it removes every assignment that
// is redundant at its entry and returns the number of removed occurrences.
// The graph is re-normalized, so blocks never become empty.
func Eliminate(g *ir.Graph) int {
	return EliminateMasked(g, nil)
}

// EliminateMasked is Eliminate restricted to the assignment patterns
// accepted by mask (nil accepts all). The expression-motion baseline uses
// this to eliminate only redundant temporary initializations h_ε := ε.
func EliminateMasked(g *ir.Graph, mask func(ir.AssignPattern) bool) int {
	return EliminateMaskedWith(g, nil, mask)
}

// EliminateMaskedWith is EliminateMasked running against session s: the
// universe is reused across rounds and the analysis vectors come from the
// session's arena, rewound before returning. The removal count is the
// precise change signal (the procedure only removes instructions).
func EliminateMaskedWith(g *ir.Graph, s *analysis.Session, mask func(ir.AssignPattern) bool) int {
	ar := s.Arena()
	m := ar.Mark()
	defer ar.Release(m)
	info := AnalyzeWith(g, s)
	removed := 0
	idx := 0
	for _, b := range g.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			drop := false
			if in.Kind == ir.KindAssign {
				p := in.Pattern()
				if id, ok := info.U.ID(p); ok && info.NRedundant[idx].Get(id) &&
					(mask == nil || mask(p)) {
					drop = true
				}
			}
			if drop {
				removed++
			} else {
				kept = append(kept, in)
			}
			idx++
		}
		b.Instrs = kept
	}
	g.Normalize()
	return removed
}
