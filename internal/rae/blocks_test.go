package rae

import (
	"testing"

	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/parse"
)

func TestEliminateBlocksMatchesInstructionLevelFixpoint(t *testing.T) {
	// The block-level walk may collapse an in-block redundancy chain in
	// one application where the batch instruction-level analysis needs
	// one application per link, so the comparison is between fixpoints.
	toFixpoint := func(step func() int) int {
		total := 0
		for {
			n := step()
			total += n
			if n == 0 {
				return total
			}
		}
	}
	run := func(seed int64, structured bool) {
		var base = cfggen.Structured(seed, cfggen.Config{Size: 10})
		if !structured {
			base = cfggen.Unstructured(seed, cfggen.Config{Size: 12})
		}
		base.SplitCriticalEdges()
		g1 := base.Clone()
		g2 := base.Clone()
		n1 := toFixpoint(func() int { return Eliminate(g1) })
		n2 := toFixpoint(func() int { return EliminateBlocks(g2) })
		if n1 != n2 {
			t.Errorf("seed %d structured=%v: removed %d vs %d", seed, structured, n1, n2)
		}
		if g1.Encode() != g2.Encode() {
			t.Errorf("seed %d structured=%v: fixpoints differ:\n%s\nvs\n%s",
				seed, structured, g1.Encode(), g2.Encode())
		}
	}
	for seed := int64(0); seed < 40; seed++ {
		run(seed, true)
		run(seed, false)
	}
}

func TestEliminateBlocksCollapsesInBlockChain(t *testing.T) {
	// The "successively eliminating" reading: a duplicated dependency
	// chain inside ONE block disappears in a single application.
	g := parse.MustParse(`
graph chain {
  entry a
  exit e
  block a {
    v1 := v0 + 1
    v2 := v1 + 1
    v1 := v0 + 1
    v2 := v1 + 1
    goto e
  }
  block e { out(v1, v2) }
}
`)
	if n := EliminateBlocks(g); n != 2 {
		t.Errorf("block-level removed %d, want 2 in one application", n)
	}
	g2 := parse.MustParse(`
graph chain {
  entry a
  exit e
  block a {
    v1 := v0 + 1
    v2 := v1 + 1
    v1 := v0 + 1
    v2 := v1 + 1
    goto e
  }
  block e { out(v1, v2) }
}
`)
	if n := Eliminate(g2); n != 1 {
		t.Errorf("instruction-level removed %d in one application, want 1", n)
	}
}

func TestEliminateBlocksWithinBlockChain(t *testing.T) {
	// The in-block walk must see availability established earlier in the
	// same block and respect in-block kills.
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    y := a + b
    z := y
    y := a + b
    a := 1
    y := a + b
    goto e
  }
  block e { out(y, z) }
}
`)
	if n := EliminateBlocks(g); n != 1 {
		t.Errorf("removed %d, want 1 (second occurrence only; third follows a kill)", n)
	}
}

func TestEliminateBlocksEmptyUniverse(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a { out(x)
    goto e }
  block e { skip }
}
`)
	if n := EliminateBlocks(g); n != 0 {
		t.Errorf("removed %d from assignment-free program", n)
	}
}
