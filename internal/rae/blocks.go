package rae

import (
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/ir"
)

// EliminateBlocks is Eliminate computed at basic-block granularity — the
// variant Table 2's footnote describes ("the analysis is employed at the
// instruction level … only for the ease of presentation; it can
// straightforwardly be modified to work on basic blocks").
//
// Per block the usual gen/kill composition summarizes the instruction
// sequence; a block-level availability analysis (#blocks nodes instead of
// #instructions) computes entry redundancy; a final in-block walk finds
// and removes the redundant occurrences.
//
// The in-block walk realizes the paper's "successively eliminating"
// wording literally: removing a redundant occurrence leaves availability
// intact, so a chain of redundant occurrences within one block collapses
// in a single application — where the batch instruction-level Eliminate
// needs one application per link. Both variants are sound and reach the
// same rae-fixpoint (checked by property tests); per-application counts
// may differ on in-block chains.
func EliminateBlocks(g *ir.Graph) int {
	u := ir.AssignUniverse(g)
	px := analysis.NewPatternIndex(u)
	n, bits := len(g.Blocks), u.Len()
	if bits == 0 {
		return 0
	}
	selfRef := px.SelfRef()

	gen := make([]bitvec.Vec, n)
	kill := make([]bitvec.Vec, n)
	for i, b := range g.Blocks {
		gen[i] = bitvec.New(bits)
		kill[i] = bitvec.New(bits)
		for k := range b.Instrs {
			in := &b.Instrs[k]
			px.AndNotKill(in, gen[i])
			px.OrKill(in, kill[i])
			if id, ok := px.OccID(in); ok && !selfRef.Get(id) {
				gen[i].Set(id)
				kill[i].Clear(id)
			}
		}
	}

	entry := int(g.Entry)
	res := dataflow.Solve(dataflow.Problem{
		N: n, Bits: bits, Dir: dataflow.Forward, Meet: dataflow.All,
		Preds: func(i int) []int { return blockIDs(g.Blocks[i].Preds) },
		Succs: func(i int) []int { return blockIDs(g.Blocks[i].Succs) },
		Transfer: func(i int, in, out bitvec.Vec) {
			out.CopyFrom(in)
			out.AndNot(kill[i])
			out.Or(gen[i])
		},
		Boundary: func(i int, in bitvec.Vec) {
			if i == entry {
				in.ClearAll()
			}
		},
	})

	removed := 0
	avail := bitvec.New(bits)
	for i, b := range g.Blocks {
		avail.CopyFrom(res.In[i])
		kept := b.Instrs[:0]
		for k := range b.Instrs {
			in := &b.Instrs[k]
			id, isOcc := px.OccID(in)
			if isOcc && avail.Get(id) {
				removed++
				// The removed occurrence was redundant: the association
				// already holds, so availability is unchanged.
				continue
			}
			px.AndNotKill(in, avail)
			if isOcc && !selfRef.Get(id) {
				avail.Set(id)
			}
			kept = append(kept, *in)
		}
		b.Instrs = kept
	}
	g.Normalize()
	return removed
}

func blockIDs(ids []ir.NodeID) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}
