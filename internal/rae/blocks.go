package rae

import (
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/ir"
)

// EliminateBlocks is Eliminate computed at basic-block granularity — the
// variant Table 2's footnote describes ("the analysis is employed at the
// instruction level … only for the ease of presentation; it can
// straightforwardly be modified to work on basic blocks").
//
// Per block the usual gen/kill composition summarizes the instruction
// sequence; a block-level availability analysis (#blocks nodes instead of
// #instructions) computes entry redundancy; a final in-block walk finds
// and removes the redundant occurrences.
//
// The in-block walk realizes the paper's "successively eliminating"
// wording literally: removing a redundant occurrence leaves availability
// intact, so a chain of redundant occurrences within one block collapses
// in a single application — where the batch instruction-level Eliminate
// needs one application per link. Both variants are sound and reach the
// same rae-fixpoint (checked by property tests); per-application counts
// may differ on in-block chains.
func EliminateBlocks(g *ir.Graph) int {
	return EliminateBlocksWith(g, nil)
}

// EliminateBlocksWith is EliminateBlocks running against session s (nil
// for the uncached path): the pattern universe, index, and iteration order
// are reused across the rounds of a motion fixpoint and all analysis
// storage comes from the session's arena, rewound before returning. The
// returned count doubles as the precise change signal — the procedure only
// ever removes instructions, so zero removals means the graph is
// textually unchanged.
func EliminateBlocksWith(g *ir.Graph, s *analysis.Session) int {
	return EliminateBlocksObservedWith(g, s, nil, nil)
}

// EliminateBlocksObservedWith is EliminateBlocksWith with observation
// hooks for the incremental recorder: onSolve fires after the
// availability solve, before any removal — the vectors live in the
// session arena and must be copied, not retained; onDone fires after
// the removal walk with per-block removal counts.
func EliminateBlocksObservedWith(g *ir.Graph, s *analysis.Session, onSolve func(px *analysis.PatternIndex, availIn, availOut []bitvec.Vec), onDone func(removedByBlock []int)) int {
	u, px := s.Universe(g)
	n, bits := len(g.Blocks), u.Len()
	if bits == 0 {
		return 0
	}
	ar := s.Arena()
	mark := ar.Mark()
	defer ar.Release(mark)
	bv := s.Blocks(g)
	selfRef := px.SelfRef()

	gen := ar.Vecs(n)
	kill := ar.Vecs(n)
	for i, b := range g.Blocks {
		gen[i] = ar.Vec(bits)
		kill[i] = ar.Vec(bits)
		for k := range b.Instrs {
			in := &b.Instrs[k]
			px.AndNotKill(in, gen[i])
			px.OrKill(in, kill[i])
			if id, ok := px.OccID(in); ok && !selfRef.Get(id) {
				gen[i].Set(id)
				kill[i].Clear(id)
			}
		}
	}

	entry := int(g.Entry)
	res := dataflow.Solve(dataflow.Problem{
		N: n, Bits: bits, Dir: dataflow.Forward, Meet: dataflow.All,
		Preds:   bv.Preds,
		Succs:   bv.Succs,
		Order:   bv.FwdOrder,
		Arena:   ar,
		Stats:   s.DataflowStats(),
		Workers: s.SolverWorkersFor(n),
		Gen:     gen,
		Kill:    kill,
		Boundary: func(i int, in bitvec.Vec) {
			if i == entry {
				in.ClearAll()
			}
		},
	})

	if onSolve != nil {
		onSolve(px, res.In, res.Out)
	}

	removed := 0
	var removedByBlock []int
	if onDone != nil {
		removedByBlock = make([]int, n)
	}
	avail := ar.Vec(bits)
	for i, b := range g.Blocks {
		avail.CopyFrom(res.In[i])
		kept := b.Instrs[:0]
		for k := range b.Instrs {
			in := &b.Instrs[k]
			id, isOcc := px.OccID(in)
			if isOcc && avail.Get(id) {
				removed++
				if removedByBlock != nil {
					removedByBlock[i]++
				}
				// The removed occurrence was redundant: the association
				// already holds, so availability is unchanged.
				continue
			}
			px.AndNotKill(in, avail)
			if isOcc && !selfRef.Get(id) {
				avail.Set(id)
			}
			kept = append(kept, *in)
		}
		b.Instrs = kept
	}
	g.Normalize()
	if onDone != nil {
		onDone(removedByBlock)
	}
	return removed
}
