package rae

import (
	"strings"
	"testing"

	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
)

func countPattern(g *ir.Graph, key string) int {
	n := 0
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == ir.KindAssign && in.Pattern().Key() == key {
				n++
			}
		}
	}
	return n
}

func TestStraightLineRedundancy(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    y := a + b
    z := y
    y := a + b
    goto e
  }
  block e { out(y, z) }
}
`)
	if n := Eliminate(g); n != 1 {
		t.Fatalf("eliminated %d, want 1", n)
	}
	if countPattern(g, "y:=a+b") != 1 {
		t.Errorf("occurrences left: %d", countPattern(g, "y:=a+b"))
	}
}

func TestUseDoesNotKillRedundancy(t *testing.T) {
	// Reading y between the occurrences does not invalidate y = a+b.
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    y := a + b
    out(y)
    y := a + b
    goto e
  }
  block e { out(y) }
}
`)
	if n := Eliminate(g); n != 1 {
		t.Errorf("eliminated %d, want 1", n)
	}
}

func TestOperandKillBlocksRedundancy(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    y := a + b
    a := 1
    y := a + b
    goto e
  }
  block e { out(y) }
}
`)
	if n := Eliminate(g); n != 0 {
		t.Errorf("eliminated %d, want 0 (a modified in between)", n)
	}
}

func TestLHSKillBlocksRedundancy(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    y := a + b
    y := 7
    y := a + b
    goto e
  }
  block e { out(y) }
}
`)
	if n := Eliminate(g); n != 0 {
		t.Errorf("eliminated %d, want 0 (y overwritten in between)", n)
	}
}

func TestSelfReferentialNeverRedundant(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    x := x + 1
    x := x + 1
    goto e
  }
  block e { out(x) }
}
`)
	if n := Eliminate(g); n != 0 {
		t.Errorf("eliminated %d, want 0 (x := x+1 is self-referential)", n)
	}
}

func TestDiamondBothPathsRedundant(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry s
  exit e
  block s { if c < 0 then l else r }
  block l { y := a + b
    goto j }
  block r { y := a + b
    goto j }
  block j { y := a + b
    goto e }
  block e { out(y) }
}
`)
	if n := Eliminate(g); n != 1 {
		t.Fatalf("eliminated %d, want 1 (join occurrence)", n)
	}
	// The occurrence in j must be the one removed.
	j := g.BlockByName("j")
	for _, in := range j.Instrs {
		if in.Kind == ir.KindAssign {
			t.Errorf("join still contains %v", in)
		}
	}
}

func TestDiamondOnePathNotRedundant(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry s
  exit e
  block s { if c < 0 then l else r }
  block l { y := a + b
    goto j }
  block r { z := 1
    goto j }
  block j { y := a + b
    goto e }
  block e { out(y, z) }
}
`)
	if n := Eliminate(g); n != 0 {
		t.Errorf("eliminated %d, want 0 (right path lacks the assignment)", n)
	}
}

func TestLoopInvariantRedundancy(t *testing.T) {
	// The in-loop occurrence is redundant w.r.t. the preheader occurrence
	// because nothing in the loop modifies y, a, or b; the greatest
	// fixpoint must carry redundancy around the back edge.
	g := parse.MustParse(`
graph g {
  entry pre
  exit e
  block pre {
    y := a + b
    goto hdr
  }
  block hdr { if i < 10 then body else e }
  block body {
    y := a + b
    i := i + 1
    goto hdr
  }
  block e { out(y) }
}
`)
	if n := Eliminate(g); n != 1 {
		t.Errorf("eliminated %d, want 1", n)
	}
	if countPattern(g, "y:=a+b") != 1 {
		t.Error("loop occurrence survived")
	}
}

func TestLoopWithKillNotRedundant(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry pre
  exit e
  block pre {
    y := a + b
    goto hdr
  }
  block hdr { if i < 10 then body else e }
  block body {
    a := a + 1
    y := a + b
    i := i + 1
    goto hdr
  }
  block e { out(y) }
}
`)
	if n := Eliminate(g); n != 0 {
		t.Errorf("eliminated %d, want 0 (a changes each iteration)", n)
	}
}

func TestRedundancyThroughOccurrence(t *testing.T) {
	// Three occurrences in a row: the 2nd is redundant via the 1st, the
	// 3rd via either; batch elimination must remove both at once and keep
	// exactly the first.
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    y := a + b
    y := a + b
    y := a + b
    goto e
  }
  block e { out(y) }
}
`)
	if n := Eliminate(g); n != 2 {
		t.Fatalf("eliminated %d, want 2", n)
	}
	if countPattern(g, "y:=a+b") != 1 {
		t.Error("wrong survivor count")
	}
}

func TestCopiesAndConstantsAreEligible(t *testing.T) {
	// rae works on all assignment patterns, including copies x := y and
	// constant assignments.
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    x := y
    z := 5
    x := y
    z := 5
    goto e
  }
  block e { out(x, z) }
}
`)
	if n := Eliminate(g); n != 2 {
		t.Errorf("eliminated %d, want 2", n)
	}
}

func TestEliminateEmptiesBlockSafely(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    y := a + b
    goto m
  }
  block m {
    y := a + b
    goto e
  }
  block e { out(y) }
}
`)
	if n := Eliminate(g); n != 1 {
		t.Fatalf("eliminated %d", n)
	}
	g.MustValidate() // block m must now hold a skip
	m := g.BlockByName("m")
	if len(m.Instrs) != 1 || m.Instrs[0].Kind != ir.KindSkip {
		t.Errorf("m = %v", m.Instrs)
	}
}

func TestAnalyzeVectors(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    y := a + b
    z := y
    goto e
  }
  block e { out(z) }
}
`)
	info := Analyze(g)
	p := ir.AssignPattern{LHS: "y", RHS: ir.BinTerm(ir.OpAdd, ir.VarOp("a"), ir.VarOp("b"))}
	id, ok := info.U.ID(p)
	if !ok {
		t.Fatal("pattern missing from universe")
	}
	// At instruction 0 (the occurrence) entry: not redundant; at its
	// exit: redundant; carried through z := y (transparent) and out.
	if info.NRedundant[0].Get(id) {
		t.Error("redundant at entry of its own first occurrence")
	}
	if !info.XRedundant[0].Get(id) {
		t.Error("not redundant at exit of occurrence")
	}
	if !info.NRedundant[1].Get(id) || !info.XRedundant[1].Get(id) {
		t.Error("redundancy not carried through transparent copy")
	}
}

func TestIdempotent(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    y := a + b
    y := a + b
    goto e
  }
  block e { out(y) }
}
`)
	Eliminate(g)
	enc := g.Encode()
	if n := Eliminate(g); n != 0 {
		t.Errorf("second pass eliminated %d", n)
	}
	if g.Encode() != enc {
		t.Error("second pass changed program")
	}
}

func TestEncodeSanity(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a { y := a + b
    goto e }
  block e { out(y) }
}
`)
	if !strings.Contains(g.Encode(), "y:=a+b") {
		t.Error("encode misses instruction")
	}
}
