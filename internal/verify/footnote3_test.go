package verify_test

import (
	"testing"

	"assignmentmotion/internal/am"
	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/dce"
	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/metrics"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/printer"
)

// TestFootnote3DCERemovesTraps reproduces the paper's footnote 3: the
// assignment q := p / d is dead (q is never read), yet under trapping
// semantics its evaluation is observable when d = 0. Dead code
// elimination removes it — and with it the run-time error — which is why
// the paper's admissible motions exclude dead-code elimination. The
// paper's own transformations must preserve the trap.
func TestFootnote3DCERemovesTraps(t *testing.T) {
	src := `
graph trapdemo {
  entry a
  exit e
  block a {
    q := p / d
    x := p + 1
    goto e
  }
  block e { out(x) }
}
`
	env := map[ir.Var]int64{"p": 5, "d": 0}
	opts := interp.Options{TrapOnDivZero: true}

	orig := parse.MustParse(src)
	rOrig := interp.RunWith(orig, env, 0, opts)
	if !rOrig.Trapped {
		t.Fatal("original program did not trap — witness broken")
	}

	// DCE removes the dead division — and the trap with it.
	gDCE := parse.MustParse(src)
	if n := dce.Run(gDCE); n == 0 {
		t.Fatal("dce removed nothing — witness broken")
	}
	rDCE := interp.RunWith(gDCE, env, 0, opts)
	if rDCE.Trapped {
		t.Errorf("dce kept the trap?\n%s", printer.String(gDCE))
	}

	// The paper's pipelines preserve it.
	for name, run := range map[string]func(*ir.Graph){
		"am":      func(g *ir.Graph) { am.Run(g) },
		"globalg": func(g *ir.Graph) { core.Optimize(g) },
	} {
		g := parse.MustParse(src)
		run(g)
		r := interp.RunWith(g, env, 0, opts)
		if !r.Trapped {
			t.Errorf("%s removed the run-time error — motion not admissible:\n%s",
				name, printer.String(g))
		}
	}
}

// TestMotionPreservesTrapsOnRandomPrograms: the stronger Theorem 5.1
// statement under trapping semantics — on every sampled program and
// input, the paper's pipelines trap exactly when the original does
// (hoisting may only move an evaluation to a point with identical
// operand values, and elimination removes only re-evaluations).
func TestMotionPreservesTrapsOnRandomPrograms(t *testing.T) {
	opts := interp.Options{TrapOnDivZero: true}
	pipelines := map[string]func(*ir.Graph){
		"am":      func(g *ir.Graph) { am.Run(g) },
		"globalg": func(g *ir.Graph) { core.Optimize(g) },
	}
	trapsSeen := 0
	for seed := int64(0); seed < 20; seed++ {
		orig := cfggen.Structured(seed, cfggen.Config{Size: 8})
		envs := metrics.RandomEnvs(orig.SourceVars(), 6, seed*3+1)
		for pname, run := range pipelines {
			g := orig.Clone()
			run(g)
			for _, env := range envs {
				r1 := interp.RunWith(orig, env, 0, opts)
				r2 := interp.RunWith(g, env, 0, opts)
				if r1.Trapped {
					trapsSeen++
				}
				if r1.Trapped != r2.Trapped {
					t.Fatalf("seed %d %s env %v: trap behaviour changed (%v -> %v)\n%s",
						seed, pname, env, r1.Trapped, r2.Trapped, printer.String(g))
				}
				if !r1.Trapped && !interp.TraceEqual(r1, r2) {
					t.Fatalf("seed %d %s env %v: trace changed", seed, pname, env)
				}
			}
		}
	}
	if trapsSeen == 0 {
		t.Log("note: no traps occurred on this suite; property held vacuously")
	}
}

// TestTrapSemanticsNormalRunsUnaffected: on trap-free inputs, RunWith and
// Run agree completely.
func TestTrapSemanticsNormalRunsUnaffected(t *testing.T) {
	src := `
graph ok {
  entry a
  exit e
  block a {
    q := p / d
    x := q % d
    goto e
  }
  block e { out(q, x) }
}
`
	g := parse.MustParse(src)
	env := map[ir.Var]int64{"p": 7, "d": 2}
	r1 := interp.Run(g, env, 0)
	r2 := interp.RunWith(g, env, 0, interp.Options{TrapOnDivZero: true})
	if r2.Trapped || !interp.TraceEqual(r1, r2) {
		t.Errorf("trap mode changed a trap-free run: %+v vs %+v", r1.Trace, r2.Trace)
	}
	// And trapping in a condition side stops the run too.
	g2 := parse.MustParse(`
graph condtrap {
  entry a
  exit e
  block a { if p / d > 1 then b else e }
  block b { x := 1
    goto e }
  block e { out(x) }
}
`)
	r3 := interp.RunWith(g2, map[ir.Var]int64{"p": 3, "d": 0}, 0, interp.Options{TrapOnDivZero: true})
	if !r3.Trapped {
		t.Error("condition-side division by zero did not trap")
	}
}
