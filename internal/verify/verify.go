// Package verify provides the semantics-preservation oracle used by the
// property tests and experiments: two programs are deemed equivalent when
// they produce identical out-traces on a shared ensemble of random
// environments (Theorem 5.1 checks, S1 in DESIGN.md).
package verify

import (
	"fmt"

	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/metrics"
)

// Report describes an equivalence check.
type Report struct {
	Equivalent bool
	// Runs is the number of environments compared.
	Runs int
	// Detail describes the first divergence, if any.
	Detail string
	// A and B aggregate the dynamic costs observed, usable for
	// optimality comparisons on top of the equivalence check.
	A, B metrics.Dynamic
}

// Equivalent runs a and b on `runs` random environments derived from seed
// and compares traces. Environments range over the union of both programs'
// source variables so that renamed/retargeted temporaries do not perturb
// the inputs.
func Equivalent(a, b *ir.Graph, runs int, seed int64) Report {
	vars := unionSourceVars(a, b)
	envs := metrics.RandomEnvs(vars, runs, seed)
	rep := Report{Equivalent: true, Runs: runs}
	for i, env := range envs {
		ra := interp.Run(a, env, 0)
		rb := interp.Run(b, env, 0)
		rep.A.Add(ra)
		rep.B.Add(rb)
		if !interp.TraceEqual(ra, rb) {
			rep.Equivalent = false
			rep.Detail = fmt.Sprintf("env %d (%v): trace %v vs %v", i, env, head(ra.Trace), head(rb.Trace))
			return rep
		}
	}
	return rep
}

func head(t []int64) []int64 {
	if len(t) > 12 {
		return t[:12]
	}
	return t
}

func unionSourceVars(a, b *ir.Graph) []ir.Var {
	seen := map[ir.Var]bool{}
	var out []ir.Var
	for _, g := range []*ir.Graph{a, b} {
		for _, v := range g.SourceVars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}
