package verify_test

import (
	"testing"
	"testing/quick"

	"assignmentmotion/internal/am"
	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/copyprop"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/dce"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/lcm"
	"assignmentmotion/internal/metrics"
	"assignmentmotion/internal/mr"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/pde"
	"assignmentmotion/internal/printer"
)

const seeds = 25
const runsPerSeed = 6

type pipeline struct {
	name string
	run  func(*ir.Graph)
}

// paperPipelines are the semantics-preserving transformations of the
// paper; dce is excluded because it is only observationally safe under the
// total interpreter semantics (it still appears in TestDCEPreservesTotal).
var paperPipelines = []pipeline{
	{"init", func(g *ir.Graph) { g.SplitCriticalEdges(); core.Initialize(g) }},
	{"am", func(g *ir.Graph) { am.Run(g) }},
	{"am-restricted", func(g *ir.Graph) { am.RunRestricted(g) }},
	{"lcm", func(g *ir.Graph) { lcm.Run(g) }},
	{"mr", func(g *ir.Graph) { mr.Run(g) }},
	{"globalg", func(g *ir.Graph) { core.Optimize(g) }},
	{"globalg+tidy", func(g *ir.Graph) { core.Optimize(g); g.Tidy() }},
	{"copyprop", func(g *ir.Graph) { copyprop.Run(g) }},
}

func generators() map[string]func(int64) *ir.Graph {
	return map[string]func(int64) *ir.Graph{
		"structured": func(s int64) *ir.Graph {
			return cfggen.Structured(s, cfggen.Config{Size: 10})
		},
		"unstructured": func(s int64) *ir.Graph {
			return cfggen.Unstructured(s, cfggen.Config{Size: 12})
		},
	}
}

// TestPipelinesPreserveSemantics is the Theorem 5.1 property check: every
// pipeline preserves the out-trace on random programs and inputs.
func TestPipelinesPreserveSemantics(t *testing.T) {
	for genName, gen := range generators() {
		for seed := int64(0); seed < seeds; seed++ {
			orig := gen(seed)
			for _, p := range paperPipelines {
				g := orig.Clone()
				p.run(g)
				if err := g.Validate(); err != nil {
					t.Fatalf("%s seed %d %s: invalid graph: %v\n%s",
						genName, seed, p.name, err, printer.String(g))
				}
				rep := Equivalent(orig, g, runsPerSeed, seed*31+7)
				if !rep.Equivalent {
					t.Fatalf("%s seed %d: %s changed semantics: %s\noriginal:\n%s\ntransformed:\n%s",
						genName, seed, p.name, rep.Detail, printer.String(orig), printer.String(g))
				}
			}
		}
	}
}

// TestExpressionOptimalityDominance is the Theorem 5.2 property check on
// sampled executions: the global algorithm never evaluates more
// expressions than the original program or any baseline.
func TestExpressionOptimalityDominance(t *testing.T) {
	for genName, gen := range generators() {
		for seed := int64(0); seed < seeds; seed++ {
			orig := gen(seed)
			glob := orig.Clone()
			core.Optimize(glob)

			rivals := map[string]*ir.Graph{"original": orig}
			for _, p := range []pipeline{paperPipelines[1], paperPipelines[2], paperPipelines[3]} {
				g := orig.Clone()
				p.run(g)
				rivals[p.name] = g
			}
			for name, rival := range rivals {
				rep := Equivalent(rival, glob, runsPerSeed, seed*17+3)
				if !rep.Equivalent {
					t.Fatalf("%s seed %d: globalg vs %s diverged: %s", genName, seed, name, rep.Detail)
				}
				if rep.B.ExprEvals > rep.A.ExprEvals {
					t.Errorf("%s seed %d: globalg evaluates more expressions than %s (%d > %d)\nglob:\n%s\nrival:\n%s",
						genName, seed, name, rep.B.ExprEvals, rep.A.ExprEvals,
						printer.String(glob), printer.String(rival))
				}
			}
		}
	}
}

// TestOptimizeStableOnRandomPrograms is the fixpoint-stability check
// behind relative optimality (Theorems 5.3/5.4): re-running the global
// algorithm must not improve any cost measure. Syntactic one-shot
// idempotence does not hold for the composite — the final flush may sink
// an initialization and thereby re-enable a purely cosmetic within-block
// reorder on the next run — so the check is (a) all static and dynamic
// costs are unchanged by a second run, and (b) the process converges
// syntactically by the third run.
func TestOptimizeStableOnRandomPrograms(t *testing.T) {
	for genName, gen := range generators() {
		for seed := int64(0); seed < seeds; seed++ {
			g := gen(seed)
			core.Optimize(g)
			first := g.Clone()
			core.Optimize(g)

			rep := Equivalent(first, g, runsPerSeed, seed*13+5)
			if !rep.Equivalent {
				t.Fatalf("%s seed %d: second Optimize changed semantics: %s", genName, seed, rep.Detail)
			}
			if rep.B.ExprEvals != rep.A.ExprEvals ||
				rep.B.AssignExecs != rep.A.AssignExecs ||
				rep.B.TempAssignExecs != rep.A.TempAssignExecs {
				t.Errorf("%s seed %d: second Optimize changed costs: %+v vs %+v",
					genName, seed, rep.A, rep.B)
			}
			m1, m2 := metrics.Measure(first), metrics.Measure(g)
			if m1.Instrs != m2.Instrs || m1.Assignments != m2.Assignments ||
				m1.Expressions != m2.Expressions {
				t.Errorf("%s seed %d: second Optimize changed static shape: %v vs %v",
					genName, seed, m1, m2)
			}
			// TempLifetime counts instructions inside the init→use range;
			// a second run may cosmetically shrink it by hoisting an
			// unrelated assignment out of the range, but must never grow it.
			if m2.TempLifetime > m1.TempLifetime {
				t.Errorf("%s seed %d: second Optimize grew temp lifetimes: %d -> %d",
					genName, seed, m1.TempLifetime, m2.TempLifetime)
			}

			enc := g.Encode()
			core.Optimize(g)
			if g.Encode() != enc {
				t.Errorf("%s seed %d: Optimize did not converge by the third run", genName, seed)
			}
		}
	}
}

// TestAMIsAssignmentStable: after the AM phase, neither hoisting nor
// elimination applies — Lemma 4.2's relative assignment optimality.
func TestAMIsAssignmentStable(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		g := cfggen.Structured(seed, cfggen.Config{Size: 10})
		am.Run(g)
		enc := g.Encode()
		st := am.Run(g)
		if g.Encode() != enc || st.Eliminated != 0 {
			t.Errorf("seed %d: AM phase not stable (eliminated %d)", seed, st.Eliminated)
		}
	}
}

// TestAMOrderConfluence: by local confluence (Lemma 3.6) the hoist-first
// and eliminate-first fixpoints are cost-equivalent on random programs.
func TestAMOrderConfluence(t *testing.T) {
	for genName, gen := range generators() {
		for seed := int64(0); seed < seeds; seed++ {
			g1 := gen(seed)
			g2 := g1.Clone()
			am.Run(g1)
			am.RunEliminateFirst(g2)
			rep := Equivalent(g1, g2, runsPerSeed, seed*19+11)
			if !rep.Equivalent {
				t.Fatalf("%s seed %d: orders diverge semantically: %s", genName, seed, rep.Detail)
			}
			if rep.A.ExprEvals != rep.B.ExprEvals || rep.A.AssignExecs != rep.B.AssignExecs {
				t.Errorf("%s seed %d: orders reach different costs: evals %d/%d assigns %d/%d",
					genName, seed, rep.A.ExprEvals, rep.B.ExprEvals,
					rep.A.AssignExecs, rep.B.AssignExecs)
			}
		}
	}
}

// TestPDESafeUnderTotalSemantics: like dce, pde is observationally safe
// under the total interpreter semantics and must never increase cost.
func TestPDESafeUnderTotalSemantics(t *testing.T) {
	for genName, gen := range generators() {
		for seed := int64(0); seed < seeds; seed++ {
			orig := gen(seed)
			g := orig.Clone()
			pde.Run(g)
			if err := g.Validate(); err != nil {
				t.Fatalf("%s seed %d: %v", genName, seed, err)
			}
			rep := Equivalent(orig, g, runsPerSeed, seed+13)
			if !rep.Equivalent {
				t.Fatalf("%s seed %d: pde changed semantics: %s", genName, seed, rep.Detail)
			}
			if rep.B.AssignExecs > rep.A.AssignExecs {
				t.Errorf("%s seed %d: pde increased assignments %d -> %d",
					genName, seed, rep.A.AssignExecs, rep.B.AssignExecs)
			}
		}
	}
}

// TestDCEPreservesTotal: under the total semantics, dce must preserve
// traces too.
func TestDCEPreservesTotal(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		orig := cfggen.Structured(seed, cfggen.Config{Size: 10})
		g := orig.Clone()
		dce.Run(g)
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := Equivalent(orig, g, runsPerSeed, seed)
		if !rep.Equivalent {
			t.Errorf("seed %d: dce changed semantics: %s", seed, rep.Detail)
		}
	}
}

// TestQuickStructuredGlobAlg drives the whole pipeline through
// testing/quick over arbitrary seeds.
func TestQuickStructuredGlobAlg(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		seed %= 1 << 20
		orig := cfggen.Structured(seed, cfggen.Config{Size: 8})
		g := orig.Clone()
		core.Optimize(g)
		rep := Equivalent(orig, g, 4, seed+1)
		return rep.Equivalent && rep.B.ExprEvals <= rep.A.ExprEvals
	}
	cfgq := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfgq); err != nil {
		t.Error(err)
	}
}

// TestQuickUnstructuredAM drives assignment motion over arbitrary
// unstructured seeds.
func TestQuickUnstructuredAM(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		seed %= 1 << 20
		orig := cfggen.Unstructured(seed, cfggen.Config{Size: 10})
		g := orig.Clone()
		am.Run(g)
		return Equivalent(orig, g, 4, seed+1).Equivalent
	}
	cfgq := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfgq); err != nil {
		t.Error(err)
	}
}

// TestEquivalentDetectsDifference sanity-checks the oracle itself.
func TestEquivalentDetectsDifference(t *testing.T) {
	a := parse.MustParse(`
graph a {
  entry s
  exit e
  block s { x := p + 1
    goto e }
  block e { out(x) }
}
`)
	b := parse.MustParse(`
graph b {
  entry s
  exit e
  block s { x := p + 2
    goto e }
  block e { out(x) }
}
`)
	rep := Equivalent(a, b, 5, 1)
	if rep.Equivalent {
		t.Error("oracle failed to distinguish +1 from +2")
	}
	if rep.Detail == "" {
		t.Error("no detail reported")
	}
}
