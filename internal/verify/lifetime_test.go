package verify_test

import (
	"testing"

	"assignmentmotion/internal/am"
	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/flush"
	"assignmentmotion/internal/metrics"
)

// TestFlushImprovesTemporaryCosts is the Theorem 5.4 experiment: comparing
// GAssMot (the "busy" earliest placement after init + assignment motion)
// with GGlobAlg (after the final flush), the flush must never increase —
// and typically strictly decreases — the number of temporaries, their
// static initializations, their lifetimes, and the dynamic count of
// assignments to temporaries, while keeping expression evaluations intact
// (Lemma 4.4(3b): GGlobAlg ~exp GAssMot).
func TestFlushImprovesTemporaryCosts(t *testing.T) {
	strictLifetimeWins := 0
	strictTempWins := 0
	for seed := int64(0); seed < 30; seed++ {
		busy := cfggen.Structured(seed, cfggen.Config{Size: 10})
		busy.SplitCriticalEdges()
		core.Initialize(busy)
		am.Run(busy)

		lazy := busy.Clone()
		flush.Run(lazy)

		mBusy := metrics.Measure(busy)
		mLazy := metrics.Measure(lazy)
		if pb, pl := metrics.MaxTempPressure(busy), metrics.MaxTempPressure(lazy); pl > pb {
			t.Errorf("seed %d: flush increased temp pressure %d -> %d", seed, pb, pl)
		}
		if mLazy.TempLifetime > mBusy.TempLifetime {
			t.Errorf("seed %d: flush increased lifetimes %d -> %d", seed, mBusy.TempLifetime, mLazy.TempLifetime)
		}
		if mLazy.TempInits > mBusy.TempInits {
			t.Errorf("seed %d: flush increased static inits %d -> %d", seed, mBusy.TempInits, mLazy.TempInits)
		}
		if mLazy.TempLifetime < mBusy.TempLifetime {
			strictLifetimeWins++
		}

		rep := Equivalent(busy, lazy, runsPerSeed, seed*5+2)
		if !rep.Equivalent {
			t.Fatalf("seed %d: flush changed semantics: %s", seed, rep.Detail)
		}
		if rep.B.TempAssignExecs > rep.A.TempAssignExecs {
			t.Errorf("seed %d: flush increased dynamic temp assignments %d -> %d",
				seed, rep.A.TempAssignExecs, rep.B.TempAssignExecs)
		}
		if rep.B.TempAssignExecs < rep.A.TempAssignExecs {
			strictTempWins++
		}
		if rep.B.ExprEvals != rep.A.ExprEvals {
			t.Errorf("seed %d: flush changed expression evaluations %d -> %d (violates ~exp)",
				seed, rep.A.ExprEvals, rep.B.ExprEvals)
		}
	}
	// The effect must actually show up somewhere on the suite, or the
	// experiment is vacuous.
	if strictLifetimeWins == 0 {
		t.Error("flush never shortened a lifetime on the whole suite")
	}
	if strictTempWins == 0 {
		t.Error("flush never removed a dynamic temp assignment on the whole suite")
	}
}
