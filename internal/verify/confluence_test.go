package verify_test

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"assignmentmotion/internal/aht"
	"assignmentmotion/internal/am"
	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/printer"
	"assignmentmotion/internal/rae"
)

// multisetEncode renders g ignoring instruction order within blocks:
// single-pattern steps re-prepend their own pattern in front of other
// co-located independent patterns, so the *textual* encoding can cycle
// through permutations at the motion fixpoint while the per-block
// instruction multisets — which determine all dynamic costs and all
// cross-block motion opportunities — are stable.
func multisetEncode(g *ir.Graph) string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		keys := make([]string, 0, len(b.Instrs))
		for i := range b.Instrs {
			keys = append(keys, b.Instrs[i].Key())
		}
		sort.Strings(keys)
		sb.WriteString(b.Name)
		sb.WriteByte('[')
		sb.WriteString(strings.Join(keys, ";"))
		sb.WriteString("]\n")
	}
	return sb.String()
}

// randomInterleaving drives the rewrite relation ` with single-pattern
// steps in a random order until the per-block instruction multisets stop
// changing. Lemma 3.6 (local confluence) plus termination implies every
// maximal strategy reaches the same fixpoint costs as the canonical
// aht/rae iteration.
func randomInterleaving(g *ir.Graph, rng *rand.Rand) {
	g.SplitCriticalEdges()
	for round := 0; ; round++ {
		if round > 10_000 {
			panic("confluence: no fixpoint after 10000 rounds")
		}
		before := multisetEncode(g)
		u := ir.AssignUniverse(g)
		pats := append([]ir.AssignPattern(nil), u.Patterns()...)
		rng.Shuffle(len(pats), func(i, j int) { pats[i], pats[j] = pats[j], pats[i] })
		for _, p := range pats {
			key := p.Key()
			mask := func(q ir.AssignPattern) bool { return q.Key() == key }
			if rng.Intn(2) == 0 {
				aht.ApplyMasked(g, mask)
				rae.EliminateMasked(g, mask)
			} else {
				rae.EliminateMasked(g, mask)
				aht.ApplyMasked(g, mask)
			}
		}
		if multisetEncode(g) == before {
			return
		}
	}
}

// TestConfluenceRandomInterleavings: several random maximal strategies and
// the canonical AM phase all reach programs with identical dynamic costs.
func TestConfluenceRandomInterleavings(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		base := cfggen.Structured(seed, cfggen.Config{Size: 8})
		canonical := base.Clone()
		am.Run(canonical)

		for variant := int64(0); variant < 3; variant++ {
			g := base.Clone()
			randomInterleaving(g, rand.New(rand.NewSource(seed*100+variant)))
			g.MustValidate()
			rep := Equivalent(canonical, g, 6, seed*7+variant)
			if !rep.Equivalent {
				t.Fatalf("seed %d variant %d: interleaving diverges semantically: %s\ncanonical:\n%s\nvariant:\n%s",
					seed, variant, rep.Detail, printer.String(canonical), printer.String(g))
			}
			if rep.A.ExprEvals != rep.B.ExprEvals || rep.A.AssignExecs != rep.B.AssignExecs {
				t.Errorf("seed %d variant %d: interleaving reaches different costs: evals %d/%d assigns %d/%d\ncanonical:\n%s\nvariant:\n%s",
					seed, variant, rep.A.ExprEvals, rep.B.ExprEvals,
					rep.A.AssignExecs, rep.B.AssignExecs,
					printer.String(canonical), printer.String(g))
			}
		}
	}
}
