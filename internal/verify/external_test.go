// The verify tests live in an external test package: they drive the
// transformation packages (am, aht, rae, ...), which now register
// themselves with internal/pass, whose pipeline Debug mode in turn calls
// back into verify — an import cycle if the tests were in-package.
package verify_test

import "assignmentmotion/internal/verify"

// Equivalent aliases the function under test for the pre-existing
// in-package call sites.
var Equivalent = verify.Equivalent
