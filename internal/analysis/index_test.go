package analysis

import (
	"testing"

	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/ir"
)

// TestIndexMatchesPredicates is the differential test between the fast
// per-variable-vector index and the reference predicates: on random
// programs, every derived vector must agree bit-for-bit.
func TestIndexMatchesPredicates(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := cfggen.Structured(seed, cfggen.Config{Size: 8})
		u := ir.AssignUniverse(g)
		px := NewPatternIndex(u)
		bits := u.Len()

		for _, b := range g.Blocks {
			for k := range b.Instrs {
				in := &b.Instrs[k]

				// OccID vs Executed.
				for id := 0; id < bits; id++ {
					p := u.PatternAt(id)
					occID, isOcc := px.OccID(in)
					if Executed(in, p) != (isOcc && occID == id) {
						t.Fatalf("seed %d: OccID disagrees with Executed at %v / %v", seed, in, p)
					}
				}

				// Kill vector vs ¬AssTransp.
				kill := bitvec.New(bits)
				px.OrKill(in, kill)
				for id := 0; id < bits; id++ {
					if kill.Get(id) == AssTransp(in, u.PatternAt(id)) {
						t.Fatalf("seed %d: kill bit %d disagrees with AssTransp at %v", seed, id, in)
					}
				}
				// AndNotKill is the complement operation.
				full := bitvec.NewFull(bits)
				px.AndNotKill(in, full)
				for id := 0; id < bits; id++ {
					if full.Get(id) != AssTransp(in, u.PatternAt(id)) {
						t.Fatalf("seed %d: AndNotKill bit %d wrong at %v", seed, id, in)
					}
				}

				// Blocked vector vs BlocksPattern.
				blocked := bitvec.New(bits)
				px.OrBlocked(in, blocked)
				for id := 0; id < bits; id++ {
					if blocked.Get(id) != BlocksPattern(in, u.PatternAt(id)) {
						t.Fatalf("seed %d: blocked bit %d disagrees with BlocksPattern at %v (%v)",
							seed, id, in, u.Pattern(id))
					}
				}
			}

			// BlockLocals vs LocHoistable/LocBlocked/CandidateIndex.
			locH, locB, cands := px.BlockLocals(b)
			for id := 0; id < bits; id++ {
				p := u.PatternAt(id)
				if locH.Get(id) != LocHoistable(b, p) {
					t.Fatalf("seed %d block %s: LocHoistable bit %d disagrees", seed, b.Name, id)
				}
				if locB.Get(id) != LocBlocked(b, p) {
					t.Fatalf("seed %d block %s: LocBlocked bit %d disagrees", seed, b.Name, id)
				}
				k, ok := CandidateIndex(b, p)
				ck, cok := cands[id], cands[id] >= 0
				if ok != cok || (ok && k != ck) {
					t.Fatalf("seed %d block %s: candidate for %v: %d/%v vs %d/%v",
						seed, b.Name, p, k, ok, ck, cok)
				}
			}

			// BlockLocalsReverse: sinking candidates are the mirror image.
			locS, locBR, scands := px.BlockLocalsReverse(b)
			if !locBR.Equal(locB) {
				t.Fatalf("seed %d block %s: reverse LocBlocked differs", seed, b.Name)
			}
			for id := 0; id < bits; id++ {
				p := u.PatternAt(id)
				k, ok := refSinkCandidate(b, p)
				sk, sok := scands[id]
				if locS.Get(id) != ok || ok != sok || (ok && k != sk) {
					t.Fatalf("seed %d block %s: sink candidate for %v: %d/%v vs %d/%v",
						seed, b.Name, p, k, ok, sk, sok)
				}
			}
		}
	}
}

// refSinkCandidate is the reference definition: the last occurrence not
// followed by a blocker.
func refSinkCandidate(b *ir.Block, p *ir.AssignPattern) (int, bool) {
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		in := &b.Instrs[i]
		if Executed(in, p) {
			return i, true
		}
		if BlocksPattern(in, p) {
			return 0, false
		}
	}
	return 0, false
}

func TestSelfRefVector(t *testing.T) {
	g := ir.NewGraph("t")
	b := g.AddBlock("a")
	b.Instrs = []ir.Instr{
		ir.NewAssign("x", ir.BinTerm(ir.OpAdd, ir.VarOp("x"), ir.ConstOp(1))),
		ir.NewAssign("y", ir.BinTerm(ir.OpAdd, ir.VarOp("a"), ir.VarOp("b"))),
	}
	u := ir.AssignUniverse(g)
	px := NewPatternIndex(u)
	sr := px.SelfRef()
	idX, _ := u.ID(ir.AssignPattern{LHS: "x", RHS: ir.BinTerm(ir.OpAdd, ir.VarOp("x"), ir.ConstOp(1))})
	idY, _ := u.ID(ir.AssignPattern{LHS: "y", RHS: ir.BinTerm(ir.OpAdd, ir.VarOp("a"), ir.VarOp("b"))})
	if !sr.Get(idX) || sr.Get(idY) {
		t.Errorf("selfref = %v", sr)
	}
}
