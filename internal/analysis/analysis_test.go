package analysis

import (
	"reflect"
	"testing"

	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
)

// Value-taking wrappers: the production predicates take pointers for the
// hot loops; the tests stay readable with values.
func blocksPattern(in ir.Instr, p ir.AssignPattern) bool         { return BlocksPattern(&in, &p) }
func assTransp(in ir.Instr, p ir.AssignPattern) bool             { return AssTransp(&in, &p) }
func executed(in ir.Instr, p ir.AssignPattern) bool              { return Executed(&in, &p) }
func usesTemp(in ir.Instr, h ir.Var) bool                        { return UsesTemp(&in, h) }
func isInst(in ir.Instr, h ir.Var, e ir.Term) bool               { return IsInst(&in, h, e) }
func blocksInit(in ir.Instr, h ir.Var, e ir.Term) bool           { return BlocksInit(&in, h, e) }
func candidateIndex(b *ir.Block, p ir.AssignPattern) (int, bool) { return CandidateIndex(b, &p) }
func locHoistable(b *ir.Block, p ir.AssignPattern) bool          { return LocHoistable(b, &p) }
func locBlocked(b *ir.Block, p ir.AssignPattern) bool            { return LocBlocked(b, &p) }

func pat(lhs string, rhs ir.Term) ir.AssignPattern {
	return ir.AssignPattern{LHS: ir.Var(lhs), RHS: rhs}
}

func add(a, b string) ir.Term { return ir.BinTerm(ir.OpAdd, ir.VarOp(ir.Var(a)), ir.VarOp(ir.Var(b))) }

func TestBlocksPattern(t *testing.T) {
	p := pat("x", add("a", "b")) // x := a+b
	cases := []struct {
		in   ir.Instr
		want bool
		why  string
	}{
		{ir.NewAssign("a", ir.ConstTerm(1)), true, "modifies operand a"},
		{ir.NewAssign("b", ir.ConstTerm(1)), true, "modifies operand b"},
		{ir.NewAssign("x", ir.ConstTerm(1)), true, "modifies x"},
		{ir.NewAssign("y", ir.VarTerm("x")), true, "uses x"},
		{ir.NewAssign("x", add("a", "b")), true, "occurrence blocks itself"},
		{ir.NewAssign("y", add("c", "d")), false, "unrelated assignment"},
		{ir.NewOut(ir.VarOp("x")), true, "out uses x"},
		{ir.NewOut(ir.VarOp("a")), false, "out reads operand only"},
		{ir.NewCond(ir.OpLT, ir.VarTerm("x"), ir.ConstTerm(0)), true, "cond uses x"},
		{ir.NewCond(ir.OpLT, ir.VarTerm("a"), ir.ConstTerm(0)), false, "cond reads operand only"},
		{ir.Skip(), false, "skip blocks nothing"},
	}
	for _, c := range cases {
		if got := blocksPattern(c.in, p); got != c.want {
			t.Errorf("blocksPattern(%v): got %v, want %v (%s)", c.in, got, c.want, c.why)
		}
	}
}

func TestAssTranspAndExecuted(t *testing.T) {
	p := pat("x", add("a", "b"))
	occ := ir.NewAssign("x", add("a", "b"))
	if !executed(occ, p) {
		t.Error("occurrence not detected")
	}
	if assTransp(occ, p) {
		t.Error("occurrence transparent for itself (modifies x)")
	}
	if !assTransp(ir.NewAssign("y", add("c", "d")), p) {
		t.Error("unrelated assignment not transparent")
	}
	if assTransp(ir.NewAssign("a", ir.ConstTerm(0)), p) {
		t.Error("operand modification transparent")
	}
	// out and cond never modify anything, hence always transparent.
	if !assTransp(ir.NewOut(ir.VarOp("x")), p) {
		t.Error("out not transparent")
	}
	if executed(ir.NewAssign("x", add("a", "c")), p) {
		t.Error("different RHS detected as occurrence")
	}
}

func TestCandidateIndexFigure13(t *testing.T) {
	// Figure 13, left block:
	//   x := d; y := a+b; x := 3*y; a := c; y := a+b
	// The first y := a+b is the candidate (x := d does not block it);
	// the second is blocked by a := c (and by the first occurrence).
	b := &ir.Block{Instrs: []ir.Instr{
		ir.NewAssign("x", ir.VarTerm("d")),
		ir.NewAssign("y", add("a", "b")),
		ir.NewAssign("x", ir.BinTerm(ir.OpMul, ir.ConstOp(3), ir.VarOp("y"))),
		ir.NewAssign("a", ir.VarTerm("c")),
		ir.NewAssign("y", add("a", "b")),
	}}
	p := pat("y", add("a", "b"))
	idx, ok := candidateIndex(b, p)
	if !ok || idx != 1 {
		t.Errorf("candidate = %d %v, want 1 true", idx, ok)
	}
	if !locHoistable(b, p) {
		t.Error("LocHoistable false")
	}
	if !locBlocked(b, p) {
		t.Error("LocBlocked false (occurrence itself blocks)")
	}

	// Figure 13, right block: a := d kills a before the first y := a+b,
	// so there is no candidate at all.
	b2 := &ir.Block{Instrs: []ir.Instr{
		ir.NewAssign("a", ir.VarTerm("d")),
		ir.NewAssign("y", add("a", "b")),
		ir.NewAssign("x", ir.BinTerm(ir.OpMul, ir.ConstOp(3), ir.VarOp("y"))),
		ir.NewAssign("a", ir.VarTerm("c")),
		ir.NewAssign("y", add("a", "b")),
	}}
	if _, ok := candidateIndex(b2, p); ok {
		t.Error("found candidate despite a := d blockade")
	}
	if locHoistable(b2, p) {
		t.Error("LocHoistable true despite blockade")
	}
}

func TestTempPredicates(t *testing.T) {
	expr := add("a", "b")
	inst := ir.NewAssign("h1", expr)
	if !isInst(inst, "h1", expr) {
		t.Error("instance not detected")
	}
	if isInst(ir.NewAssign("h1", add("a", "c")), "h1", expr) {
		t.Error("wrong-expression assignment detected as instance")
	}
	if !usesTemp(ir.NewAssign("x", ir.VarTerm("h1")), "h1") {
		t.Error("use not detected")
	}
	if usesTemp(inst, "h1") {
		t.Error("instance counted as use")
	}
	// BLOCKED: modifications of ε's operands block sinking of h := ε;
	// the instance itself does not.
	if !blocksInit(ir.NewAssign("a", ir.ConstTerm(0)), "h1", expr) {
		t.Error("operand modification does not block init")
	}
	if blocksInit(inst, "h1", expr) {
		t.Error("instance blocks its own initialization")
	}
	if !blocksInit(ir.NewAssign("h1", ir.VarTerm("z")), "h1", expr) {
		t.Error("foreign write to h does not block")
	}
	if blocksInit(ir.NewOut(ir.VarOp("a")), "h1", expr) {
		t.Error("out blocks init")
	}
}

func TestProgFlattening(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit c
  block a {
    x := 1
    if x < 2 then b else c
  }
  block b {
    y := 2
    goto c
  }
  block c { out(x, y) }
}
`)
	p := NewProg(g)
	if p.Len() != 4 {
		t.Fatalf("len = %d, want 4", p.Len())
	}
	if p.EntryIndex() != 0 {
		t.Errorf("entry index = %d", p.EntryIndex())
	}
	// Instruction 1 (the cond) succeeds instruction 0 and precedes the
	// first instructions of b and c.
	if !reflect.DeepEqual(p.Succs(0), []int{1}) {
		t.Errorf("succs(0) = %v", p.Succs(0))
	}
	bStart := p.BlockStart(g.BlockByName("b").ID)
	cStart := p.BlockStart(g.BlockByName("c").ID)
	if !reflect.DeepEqual(p.Succs(1), []int{bStart, cStart}) {
		t.Errorf("succs(1) = %v, want [%d %d]", p.Succs(1), bStart, cStart)
	}
	if !reflect.DeepEqual(p.Preds(cStart), []int{1, bStart}) && !reflect.DeepEqual(p.Preds(cStart), []int{bStart, 1}) {
		t.Errorf("preds(c) = %v", p.Preds(cStart))
	}
	if p.ExitIndex() != cStart {
		t.Errorf("exit index = %d, want %d", p.ExitIndex(), cStart)
	}
	if got := p.Index(Point{Block: g.BlockByName("b").ID, Index: 0}); got != bStart {
		t.Errorf("Index = %d", got)
	}
}
