package analysis

import (
	"context"
	"time"

	"assignmentmotion/internal/arena"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/fault"
	"assignmentmotion/internal/ir"
)

// Session carries the reusable analysis state of one optimization run over
// one graph: the solver arena, the assignment-pattern universe with its
// PatternIndex, and the block-level iteration orders. The assignment-motion
// fixpoint (internal/am) re-runs aht and rae many times over the same
// graph; without a session every round rebuilt all of this from scratch,
// which dominated the allocation profile of Optimize (PR-1 baseline:
// ~3.6M allocs per 100 small graphs).
//
// Caches revalidate against the graph's version counters (ir.Graph.Version
// / StructVersion): the universe is re-scanned — map hits only, IDs stay
// stable — when the graph mutated, and the iteration orders are recomputed
// only when the block/edge structure changed, which inside a motion
// fixpoint is never (edges are split up front).
//
// A nil *Session is valid everywhere one is accepted and means "no
// caching, no arena": every helper falls back to fresh allocation. A
// Session must not be shared between goroutines.
type Session struct {
	ar *arena.Arena
	df dataflow.SolveStats

	// Fault-tolerance state: the run's context and budget, plus the
	// per-pass baselines the budget is measured against. See CheckBudget.
	ctx        context.Context
	budget     fault.Budget
	passStart  time.Time
	passVisits int

	g        *ir.Graph
	u        *ir.PatternSet
	px       *PatternIndex
	uVersion uint64
	uValid   bool

	fwdOrder    []int
	bwdOrder    []int
	succsInt    [][]int
	predsInt    [][]int
	orderStruct uint64
	orderValid  bool

	regions       *ir.RegionSet
	regionsStruct uint64
	regionsValid  bool

	solverWorkers int
}

// parallelSolveMinNodes is the graph size below which intra-graph
// parallel solving is never worth the scheduling overhead: a solve over a
// few dozen blocks finishes in microseconds, well under the cost of
// fanning components out to goroutines. Large generated or inlined flow
// graphs (thousands of blocks) are where the condensation has enough
// independent regions to occupy a pool.
const parallelSolveMinNodes = 512

// NewSession returns a session backed by a pooled arena. Callers must
// Close it to return the arena to the pool.
func NewSession() *Session {
	return &Session{ar: arena.Get()}
}

// Close releases the session's arena back to the pool. The session (and
// any analysis result carved from its arena) must not be used afterwards.
func (s *Session) Close() {
	if s == nil {
		return
	}
	arena.Put(s.ar)
	s.ar = nil
}

// Arena returns the session's arena (nil for a nil session). Passes
// bracket each round with Mark/Release on it so that the steady state of a
// fixpoint allocates nothing.
func (s *Session) Arena() *arena.Arena {
	if s == nil {
		return nil
	}
	return s.ar
}

// DataflowStats returns the session's solver-work tally, which every
// analysis run under this session points its dataflow.Problem.Stats at.
// The pass pipeline snapshots it around each pass to report per-pass
// Visits/Sweeps. Nil for a nil session (and dataflow treats a nil tally as
// "don't count").
func (s *Session) DataflowStats() *dataflow.SolveStats {
	if s == nil {
		return nil
	}
	return &s.df
}

// DataflowSnapshot returns a copy of the current solver-work tally (zero
// for a nil session), for delta computations with SolveStats.Delta.
func (s *Session) DataflowSnapshot() dataflow.SolveStats {
	if s == nil {
		return dataflow.SolveStats{}
	}
	return s.df
}

// SetContext attaches the run's cancellation context to the session, so
// fixpoint procedures observe engine deadlines between rounds (through
// CheckBudget), not only between graphs. Nil-safe no-op.
func (s *Session) SetContext(ctx context.Context) {
	if s == nil {
		return
	}
	s.ctx = ctx
}

// Context returns the attached context, or context.Background when none
// was set (or the session is nil).
func (s *Session) Context() context.Context {
	if s == nil || s.ctx == nil {
		return context.Background()
	}
	return s.ctx
}

// SetBudget attaches a resource budget to the session. The pass pipeline
// sets it from Pipeline.Budget; a nil session accepts (and ignores) it.
func (s *Session) SetBudget(b fault.Budget) {
	if s == nil {
		return
	}
	s.budget = b
}

// Budget returns the attached budget (zero for a nil session).
func (s *Session) Budget() fault.Budget {
	if s == nil {
		return fault.Budget{}
	}
	return s.budget
}

// BeginPass marks a pass boundary for budget accounting: the per-pass
// wall clock and solver-visit baselines reset here. The pipeline calls it
// immediately before running each pass. Nil-safe no-op.
func (s *Session) BeginPass() {
	if s == nil {
		return
	}
	s.passVisits = s.df.Visits
	if !s.budget.Zero() {
		s.passStart = time.Now()
	}
}

// CheckBudget reports the first violated constraint of the session's
// budget or context as a typed fault error, or nil. Fixpoint procedures
// (the AM phase, the EM/CP interleaving) call it once per round with
// their current round count, which turns runaway fixpoints and expired
// engine deadlines into typed failures at the next round boundary instead
// of hangs. amIters is the caller's current fixpoint round (pass 0 from
// non-iterating contexts). Nil-safe: a nil session has no budget and no
// context, so the check is free and always passes.
func (s *Session) CheckBudget(amIters int) error {
	if s == nil {
		return nil
	}
	if s.ctx != nil {
		select {
		case <-s.ctx.Done():
			return &fault.CanceledError{Err: s.ctx.Err()}
		default:
		}
	}
	b := s.budget
	if b.Zero() {
		return nil
	}
	if b.MaxAMIterations > 0 && amIters > b.MaxAMIterations {
		return &fault.BudgetError{Resource: "am iterations", Used: int64(amIters), Limit: int64(b.MaxAMIterations)}
	}
	if b.MaxSolverVisits > 0 {
		if used := s.df.Visits - s.passVisits; used > b.MaxSolverVisits {
			return &fault.BudgetError{Resource: "solver visits", Used: int64(used), Limit: int64(b.MaxSolverVisits)}
		}
	}
	if b.MaxPassWall > 0 && !s.passStart.IsZero() {
		if used := time.Since(s.passStart); used > b.MaxPassWall {
			return &fault.BudgetError{Resource: "pass wall time", Used: int64(used), Limit: int64(b.MaxPassWall)}
		}
	}
	return nil
}

// SetSolverWorkers sets the worker-pool bound for intra-graph parallel
// dataflow solving. 0 or 1 keeps every solve serial; n > 1 lets solves
// over sufficiently large graphs (see SolverWorkersFor) condense the CFG
// into SCC regions and solve independent regions on up to n goroutines.
// Nil-safe no-op, so nil-session call sites stay serial.
func (s *Session) SetSolverWorkers(n int) {
	if s == nil {
		return
	}
	s.solverWorkers = n
}

// SolverWorkersFor returns the dataflow.Problem.Workers value for a solve
// over n nodes: the configured pool bound when the graph is large enough
// for region-level parallelism to pay, otherwise 0 (serial). This is the
// policy half of the mechanism/policy split — the solver itself obeys
// whatever it is told, so tests can force parallel solves on small graphs
// by setting Workers directly.
func (s *Session) SolverWorkersFor(n int) int {
	if s == nil || s.solverWorkers <= 1 || n < parallelSolveMinNodes {
		return 0
	}
	return s.solverWorkers
}

// Universe returns the assignment-pattern universe of g and its
// PatternIndex, cached across calls. On a graph mutation the universe is
// re-synced in place (stable IDs, see ir.PatternSet.AddFrom) and the index
// is rebuilt only when a genuinely new pattern appeared — which inside an
// aht/rae fixpoint never happens, since hoisting re-inserts existing
// patterns and elimination only removes occurrences.
func (s *Session) Universe(g *ir.Graph) (*ir.PatternSet, *PatternIndex) {
	if s == nil {
		u := ir.AssignUniverse(g)
		return u, NewPatternIndex(u)
	}
	if s.g != g || !s.uValid {
		s.invalidate(g)
		s.u = ir.AssignUniverse(g)
		s.px = NewPatternIndex(s.u)
		s.uVersion = g.Version()
		s.uValid = true
		return s.u, s.px
	}
	if v := g.Version(); v != s.uVersion {
		if s.u.AddFrom(g) {
			s.px = NewPatternIndex(s.u)
		}
		s.uVersion = v
	}
	return s.u, s.px
}

// BlockView is the cached block-level solver geometry of one graph: int
// adjacency (so the solver's hot loop does not convert NodeIDs per visit)
// and the two iteration orders — reverse postorder from the entry along
// successors for forward problems, reverse postorder from the exit along
// predecessors for backward ones.
type BlockView struct {
	Preds func(i int) []int
	Succs func(i int) []int
	// FwdOrder / BwdOrder are nil when no session caches them (the solver
	// then derives its own order).
	FwdOrder []int
	BwdOrder []int
}

// Blocks returns the solver geometry for g's basic blocks, cached until
// the graph's block/edge structure changes — which inside a motion
// fixpoint is never, since critical edges are split up front. Works on a
// nil session (no caching, per-call adjacency conversion).
func (s *Session) Blocks(g *ir.Graph) BlockView {
	if s == nil {
		return BlockView{
			Preds: func(i int) []int { return nodeInts(g.Blocks[i].Preds) },
			Succs: func(i int) []int { return nodeInts(g.Blocks[i].Succs) },
		}
	}
	if s.g != g {
		s.invalidate(g)
	}
	if sv := g.StructVersion(); !s.orderValid || sv != s.orderStruct || len(s.succsInt) != len(g.Blocks) {
		n := len(g.Blocks)
		s.succsInt = make([][]int, n)
		s.predsInt = make([][]int, n)
		for i, b := range g.Blocks {
			s.succsInt[i] = nodeInts(b.Succs)
			s.predsInt[i] = nodeInts(b.Preds)
		}
		succs := func(i int) []int { return s.succsInt[i] }
		preds := func(i int) []int { return s.predsInt[i] }
		s.fwdOrder = dataflow.FlowOrder(n, []int{int(g.Entry)}, succs)
		s.bwdOrder = dataflow.FlowOrder(n, []int{int(g.Exit)}, preds)
		s.orderStruct = sv
		s.orderValid = true
	}
	return BlockView{
		Preds:    func(i int) []int { return s.predsInt[i] },
		Succs:    func(i int) []int { return s.succsInt[i] },
		FwdOrder: s.fwdOrder,
		BwdOrder: s.bwdOrder,
	}
}

// UniverseDelta is Universe for a caller that knows which blocks changed
// since the last sync: the resync scans only those blocks instead of the
// whole graph, keying the cache per region rather than per graph
// version. The contract mirrors ir.PatternSet.AddFromBlocks — every
// block outside changed must be textually unchanged since the session
// last synced with g. On a nil session or an unbound graph it degrades
// to the full Universe scan.
func (s *Session) UniverseDelta(g *ir.Graph, changed []ir.NodeID) (*ir.PatternSet, *PatternIndex) {
	if s == nil || s.g != g || !s.uValid {
		return s.Universe(g)
	}
	if v := g.Version(); v != s.uVersion {
		bs := make([]*ir.Block, len(changed))
		for i, id := range changed {
			bs[i] = g.Block(id)
		}
		if s.u.AddFromBlocks(bs) {
			s.px = NewPatternIndex(s.u)
		}
		s.uVersion = v
	}
	return s.u, s.px
}

// Regions returns the deterministic region decomposition of g, cached
// until the graph's block/edge structure changes. Instruction-level
// edits (everything a motion round does) keep the decomposition valid;
// only structural mutation invalidates it — so an edit re-keys one
// region's analysis state, not the session.
func (s *Session) Regions(g *ir.Graph) *ir.RegionSet {
	if s == nil {
		return ir.Regionize(g, 0)
	}
	if s.g != g {
		s.invalidate(g)
	}
	if sv := g.StructVersion(); !s.regionsValid || sv != s.regionsStruct || len(s.regions.Of) != len(g.Blocks) {
		s.regions = ir.Regionize(g, 0)
		s.regionsStruct = sv
		s.regionsValid = true
	}
	return s.regions
}

// invalidate rebinds the session to a new graph, dropping all caches.
func (s *Session) invalidate(g *ir.Graph) {
	s.g = g
	s.uValid = false
	s.orderValid = false
	s.regionsValid = false
}

// nodeInts converts a NodeID adjacency list to int indices without
// allocation beyond the result slice.
func nodeInts(ids []ir.NodeID) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}
