package analysis

import (
	"assignmentmotion/internal/arena"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/ir"
)

// PatternIndex precomputes, for one assignment-pattern universe, the
// per-variable effect vectors that let the analyses build their local
// predicate vectors in O(1) bit-vector operations per instruction instead
// of testing every (instruction, pattern) pair:
//
//   - killByDef[v]: patterns invalidated when v is (re)defined — those
//     with LHS v or with v among their RHS operands;
//   - blockByUse[v]: patterns blocked when v is read — those with LHS v
//     (motion of x := t must not cross a read of x);
//   - selfRef: patterns whose LHS occurs in their RHS (never redundant,
//     Table 2's side condition).
type PatternIndex struct {
	U          *ir.PatternSet
	killByDef  map[ir.Var]bitvec.Vec
	blockByUse map[ir.Var]bitvec.Vec
	selfRef    bitvec.Vec
	empty      bitvec.Vec   // shared all-zero vector for absent variables
	singleton  []bitvec.Vec // lazily built shared {id} vectors (see GenVec)
}

// NewPatternIndex builds the index for u.
func NewPatternIndex(u *ir.PatternSet) *PatternIndex {
	bits := u.Len()
	px := &PatternIndex{
		U:          u,
		killByDef:  map[ir.Var]bitvec.Vec{},
		blockByUse: map[ir.Var]bitvec.Vec{},
		selfRef:    bitvec.New(bits),
		empty:      bitvec.New(bits),
	}
	vec := func(m map[ir.Var]bitvec.Vec, v ir.Var) bitvec.Vec {
		w, ok := m[v]
		if !ok {
			w = bitvec.New(bits)
			m[v] = w
		}
		return w
	}
	for id := 0; id < bits; id++ {
		p := u.PatternAt(id)
		vec(px.killByDef, p.LHS).Set(id)
		vec(px.blockByUse, p.LHS).Set(id)
		if !p.RHS.Args[0].IsConst {
			vec(px.killByDef, p.RHS.Args[0].Var).Set(id)
		}
		if !p.RHS.Trivial() && !p.RHS.Args[1].IsConst {
			vec(px.killByDef, p.RHS.Args[1].Var).Set(id)
		}
		if p.SelfReferential() {
			px.selfRef.Set(id)
		}
	}
	return px
}

// SelfRef returns the vector of self-referential patterns (shared; do not
// mutate).
func (px *PatternIndex) SelfRef() bitvec.Vec { return px.selfRef }

// OccID returns the pattern ID of instruction in when it is an assignment
// whose pattern belongs to the universe.
func (px *PatternIndex) OccID(in *ir.Instr) (int, bool) {
	if in.Kind != ir.KindAssign {
		return 0, false
	}
	return px.U.ID(ir.AssignPattern{LHS: in.LHS, RHS: in.RHS})
}

// killVec returns the patterns whose value association is destroyed by
// instruction in (Table 2's ¬ASS-TRANSP): those killed by in's definition.
func (px *PatternIndex) killVec(in *ir.Instr) bitvec.Vec {
	if in.Kind != ir.KindAssign {
		return px.empty
	}
	if v, ok := px.killByDef[in.LHS]; ok {
		return v
	}
	return px.empty
}

// KillVec returns killVec(in) for callers assembling the dense gen/kill
// form of an instruction-level problem. The vector is shared index state:
// read-only.
func (px *PatternIndex) KillVec(in *ir.Instr) bitvec.Vec { return px.killVec(in) }

// Empty returns the shared all-zero vector (read-only), the Gen/Kill
// entry of instructions with no effect on a problem.
func (px *PatternIndex) Empty() bitvec.Vec { return px.empty }

// GenVec returns the shared singleton vector {id} (read-only), the Gen
// entry of an occurrence of pattern id. Built lazily: only patterns that
// actually occur pay for a vector.
func (px *PatternIndex) GenVec(id int) bitvec.Vec {
	if px.singleton == nil {
		px.singleton = make([]bitvec.Vec, px.U.Len())
	}
	if px.singleton[id].Len() == 0 {
		v := bitvec.New(px.U.Len())
		v.Set(id)
		px.singleton[id] = v
	}
	return px.singleton[id]
}

// OrKill ors killVec(in) into dst.
func (px *PatternIndex) OrKill(in *ir.Instr, dst bitvec.Vec) {
	dst.Or(px.killVec(in))
}

// AndNotKill removes killVec(in) from dst (dst = dst · ASS-TRANSP(in)).
func (px *PatternIndex) AndNotKill(in *ir.Instr, dst bitvec.Vec) {
	dst.AndNot(px.killVec(in))
}

// OrBlocked ors into dst every pattern blocked by instruction in: those
// killed by in's definition plus those whose LHS is read by in.
func (px *PatternIndex) OrBlocked(in *ir.Instr, dst bitvec.Vec) {
	dst.Or(px.killVec(in))
	switch in.Kind {
	case ir.KindAssign:
		px.orUseBlocks(&in.RHS, dst)
	case ir.KindOut:
		for i := range in.Args {
			if !in.Args[i].IsConst {
				if v, ok := px.blockByUse[in.Args[i].Var]; ok {
					dst.Or(v)
				}
			}
		}
	case ir.KindCond:
		px.orUseBlocks(&in.CondL, dst)
		px.orUseBlocks(&in.CondR, dst)
	}
}

func (px *PatternIndex) orUseBlocks(t *ir.Term, dst bitvec.Vec) {
	if !t.Args[0].IsConst {
		if v, ok := px.blockByUse[t.Args[0].Var]; ok {
			dst.Or(v)
		}
	}
	if !t.Trivial() && !t.Args[1].IsConst {
		if v, ok := px.blockByUse[t.Args[1].Var]; ok {
			dst.Or(v)
		}
	}
}

// BlockLocals computes Table 1's LOC-HOISTABLE and LOC-BLOCKED vectors for
// block b in one forward walk, also returning the block-local candidate
// instruction index per pattern (-1 when the pattern has no candidate in
// b), for the insertion step's removals. Candidates: the first occurrence
// of a pattern not preceded by a blocker.
func (px *PatternIndex) BlockLocals(b *ir.Block) (locHoistable, locBlocked bitvec.Vec, candidates []int) {
	return px.BlockLocalsArena(b, nil)
}

// BlockLocalsArena is BlockLocals with the vectors and the candidate table
// carved from ar (heap when nil), for the hoisting fixpoint's per-round
// analysis.
func (px *PatternIndex) BlockLocalsArena(b *ir.Block, ar *arena.Arena) (locHoistable, locBlocked bitvec.Vec, candidates []int) {
	bits := px.U.Len()
	locHoistable = ar.Vec(bits)
	locBlocked = ar.Vec(bits)
	candidates = ar.Ints(bits)
	for id := range candidates {
		candidates[id] = -1
	}
	for i := range b.Instrs {
		in := &b.Instrs[i]
		if id, ok := px.OccID(in); ok && !locBlocked.Get(id) && !locHoistable.Get(id) {
			locHoistable.Set(id)
			candidates[id] = i
		}
		px.OrBlocked(in, locBlocked)
	}
	return locHoistable, locBlocked, candidates
}

// BlockLocalsReverse is BlockLocals for sinking: candidates are the last
// occurrences not followed by a blocker.
func (px *PatternIndex) BlockLocalsReverse(b *ir.Block) (locSinkable, locBlocked bitvec.Vec, candidates map[int]int) {
	bits := px.U.Len()
	locSinkable = bitvec.New(bits)
	locBlocked = bitvec.New(bits)
	candidates = map[int]int{}
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		in := &b.Instrs[i]
		if id, ok := px.OccID(in); ok && !locBlocked.Get(id) && !locSinkable.Get(id) {
			locSinkable.Set(id)
			candidates[id] = i
		}
		px.OrBlocked(in, locBlocked)
	}
	return locSinkable, locBlocked, candidates
}
