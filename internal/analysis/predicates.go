package analysis

import "assignmentmotion/internal/ir"

// The predicates below take pointers: they run in O(instructions ×
// patterns) loops inside every analysis, where passing the ~200-byte
// instruction struct by value dominates the profile.

// termUsesVar reports whether v occurs in *t, without allocating.
func termUsesVar(t *ir.Term, v ir.Var) bool {
	if !t.Args[0].IsConst && t.Args[0].Var == v {
		return true
	}
	return !t.Trivial() && !t.Args[1].IsConst && t.Args[1].Var == v
}

// instrUsesVar reports whether instruction *in reads v.
func instrUsesVar(in *ir.Instr, v ir.Var) bool {
	switch in.Kind {
	case ir.KindAssign:
		return termUsesVar(&in.RHS, v)
	case ir.KindOut:
		for i := range in.Args {
			if !in.Args[i].IsConst && in.Args[i].Var == v {
				return true
			}
		}
	case ir.KindCond:
		return termUsesVar(&in.CondL, v) || termUsesVar(&in.CondR, v)
	}
	return false
}

// BlocksPattern reports whether instruction in blocks motion of the
// assignment pattern α ≡ x := t (Definition 3.1 discussion): in modifies an
// operand of t, or uses or modifies x. Note that an occurrence of α itself
// blocks α (it modifies x), which is why at most the first occurrence in a
// basic block is a hoisting candidate (Figure 13).
func BlocksPattern(in *ir.Instr, p *ir.AssignPattern) bool {
	if in.Kind == ir.KindAssign {
		if in.LHS == p.LHS { // modifies x
			return true
		}
		if termUsesVar(&p.RHS, in.LHS) { // modifies an operand of t
			return true
		}
	}
	return instrUsesVar(in, p.LHS) // uses x
}

// AssTransp is Table 2's ASS-TRANSP: instruction in is transparent for
// α ≡ v := t, i.e. neither v nor any operand of t is modified by in.
func AssTransp(in *ir.Instr, p *ir.AssignPattern) bool {
	if in.Kind != ir.KindAssign {
		return true
	}
	if in.LHS == p.LHS {
		return false
	}
	return !termUsesVar(&p.RHS, in.LHS)
}

// Executed is Table 2's EXECUTED: instruction in is an occurrence of α.
func Executed(in *ir.Instr, p *ir.AssignPattern) bool {
	return in.Kind == ir.KindAssign && in.LHS == p.LHS && in.RHS == p.RHS
}

// CandidateIndex returns the index of the hoisting candidate of pattern p
// in block b: the first occurrence of p that is not preceded (within the
// block) by any instruction blocking p. There is at most one candidate per
// block because an occurrence blocks every later one (Figure 13).
func CandidateIndex(b *ir.Block, p *ir.AssignPattern) (int, bool) {
	for i := range b.Instrs {
		in := &b.Instrs[i]
		if Executed(in, p) {
			return i, true
		}
		if BlocksPattern(in, p) {
			return 0, false
		}
	}
	return 0, false
}

// LocHoistable is Table 1's LOC-HOISTABLE: block b contains a hoisting
// candidate of p.
func LocHoistable(b *ir.Block, p *ir.AssignPattern) bool {
	_, ok := CandidateIndex(b, p)
	return ok
}

// LocBlocked is Table 1's LOC-BLOCKED: some instruction of b blocks p.
func LocBlocked(b *ir.Block, p *ir.AssignPattern) bool {
	for i := range b.Instrs {
		if BlocksPattern(&b.Instrs[i], p) {
			return true
		}
	}
	return false
}

// UsesTemp is Table 3's USED: instruction in reads temporary h.
func UsesTemp(in *ir.Instr, h ir.Var) bool { return instrUsesVar(in, h) }

// IsInst is Table 3's IS-INST: instruction in is an instance of h := ε.
func IsInst(in *ir.Instr, h ir.Var, expr ir.Term) bool {
	return in.Kind == ir.KindAssign && in.LHS == h && in.RHS == expr
}

// BlocksInit is Table 3's BLOCKED: instruction in blocks sinking of the
// initialization h := ε, i.e. modifies an operand of ε or modifies h by
// other means. (Uses of h are handled separately by USED in the equations.)
func BlocksInit(in *ir.Instr, h ir.Var, expr ir.Term) bool {
	if in.Kind != ir.KindAssign {
		return false
	}
	if in.LHS == h && !IsInst(in, h, expr) {
		return true
	}
	return termUsesVar(&expr, in.LHS)
}
