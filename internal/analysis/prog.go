// Package analysis provides the instruction-level program view and the
// local predicates shared by the paper's data flow analyses: blocking,
// transparency, occurrence, use, and hoisting-candidate predicates for
// assignment patterns (Tables 1–3).
package analysis

import "assignmentmotion/internal/ir"

// Point locates one instruction: block ID and index within the block.
type Point struct {
	Block ir.NodeID
	Index int
}

// Prog is a flattened instruction-level view of a flow graph, giving every
// instruction a dense global index with predecessor/successor relations.
// The instruction-level analyses of Tables 2 and 3 run over this view.
// Prog requires the Normalize invariant (no empty blocks); it is a snapshot
// and must be rebuilt after the graph is transformed.
type Prog struct {
	G     *ir.Graph
	Ins   []ir.Instr // global index -> instruction (copy)
	Pts   []Point    // global index -> location
	start []int      // block ID -> global index of its first instruction
	preds [][]int
	succs [][]int
}

// NewProg flattens g.
func NewProg(g *ir.Graph) *Prog {
	p := &Prog{G: g, start: make([]int, len(g.Blocks))}
	for _, b := range g.Blocks {
		if len(b.Instrs) == 0 {
			panic("analysis: empty block (run Normalize)")
		}
		p.start[b.ID] = len(p.Ins)
		for i, in := range b.Instrs {
			p.Ins = append(p.Ins, in)
			p.Pts = append(p.Pts, Point{Block: b.ID, Index: i})
		}
	}
	n := len(p.Ins)
	p.preds = make([][]int, n)
	p.succs = make([][]int, n)
	for _, b := range g.Blocks {
		first := p.start[b.ID]
		last := first + len(b.Instrs) - 1
		for i := first; i < last; i++ {
			p.succs[i] = append(p.succs[i], i+1)
			p.preds[i+1] = append(p.preds[i+1], i)
		}
		for _, s := range b.Succs {
			sFirst := p.start[s]
			p.succs[last] = append(p.succs[last], sFirst)
			p.preds[sFirst] = append(p.preds[sFirst], last)
		}
	}
	return p
}

// Len returns the number of instructions.
func (p *Prog) Len() int { return len(p.Ins) }

// Preds returns the instruction-level predecessors of instruction i.
func (p *Prog) Preds(i int) []int { return p.preds[i] }

// Succs returns the instruction-level successors of instruction i.
func (p *Prog) Succs(i int) []int { return p.succs[i] }

// EntryIndex returns the global index of the first instruction of the
// entry block — the paper's instruction "ι_s".
func (p *Prog) EntryIndex() int { return p.start[p.G.Entry] }

// ExitIndex returns the global index of the last instruction of the exit
// block.
func (p *Prog) ExitIndex() int {
	return p.start[p.G.Exit] + len(p.G.Block(p.G.Exit).Instrs) - 1
}

// BlockStart returns the global index of the first instruction of block id.
func (p *Prog) BlockStart(id ir.NodeID) int { return p.start[id] }

// Index returns the global index of the instruction at pt.
func (p *Prog) Index(pt Point) int { return p.start[pt.Block] + pt.Index }
