package lcm

import (
	"testing"

	"assignmentmotion/internal/core"
	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/printer"
)

// Figure 1: 1 → {2,3} → 4.
const fig01 = `
graph fig01 {
  entry n1
  exit n4
  block n1 { if c < 0 then n2 else n3 }
  block n2 {
    z := a + b
    x := a + b
    goto n4
  }
  block n3 {
    x := a + b
    y := x + y
    goto n4
  }
  block n4 { out(x, y, z) }
}
`

func TestFigure01ExpressionMotion(t *testing.T) {
	g := parse.MustParse(fig01)
	orig := g.Clone()
	Run(g)
	g.MustValidate()

	envs := []map[ir.Var]int64{
		{"c": -1, "a": 2, "b": 3, "y": 1},
		{"c": 1, "a": 2, "b": 3, "y": 1},
	}
	for _, env := range envs {
		r1 := interp.Run(orig, env, 0)
		r2 := interp.Run(g, env, 0)
		if !interp.TraceEqual(r1, r2) {
			t.Fatalf("trace changed: %v -> %v\n%s", r1.Trace, r2.Trace, printer.String(g))
		}
	}
	// Left path: a+b was evaluated twice, now once.
	left := interp.Run(g, envs[0], 0)
	if left.Counts.ExprEvals != 1 {
		t.Errorf("left path expr evals = %d, want 1\n%s", left.Counts.ExprEvals, printer.String(g))
	}
}

const running = `
graph running {
  entry b1
  exit b4
  block b1 {
    y := c + d
    goto b2
  }
  block b2 {
    if x + z > y + i then b3 else b4
  }
  block b3 {
    y := c + d
    x := y + z
    i := i + x
    goto b2
  }
  block b4 {
    x := y + z
    x := c + d
    out(i, x, y)
  }
}
`

func runningEnvLoop() map[ir.Var]int64 {
	return map[ir.Var]int64{"x": 100, "z": 0, "y": 0, "i": 1, "c": 2, "d": 3}
}

func TestFigure06aSeparateEM(t *testing.T) {
	g := parse.MustParse(running)
	orig := g.Clone()
	Run(g)
	g.MustValidate()

	// EM alone must keep the loop-invariant *assignment* x := y+z (as
	// x := h4 with an in-loop initialization h4 := y+z): the blockade by
	// y's redefinition and the use of x in the loop condition is an
	// assignment-level problem EM cannot see past (§1.2).
	b3 := g.BlockByName("b3")
	computesYZ := false
	for _, in := range b3.Instrs {
		if in.Kind == ir.KindAssign && in.RHS.Key() == "y+z" {
			computesYZ = true
		}
	}
	if !computesYZ {
		t.Errorf("EM alone removed y+z from the loop — it must not:\n%s", printer.String(g))
	}

	// c+d must be computed only outside the loop: y := c+d in b3 becomes
	// a temp use.
	for _, in := range b3.Instrs {
		if in.Kind == ir.KindAssign && in.RHS.Key() == "c+d" {
			t.Errorf("c+d still computed in the loop:\n%s", printer.String(g))
		}
	}

	env := runningEnvLoop()
	r1 := interp.Run(orig, env, 0)
	r2 := interp.Run(g, env, 0)
	if !interp.TraceEqual(r1, r2) {
		t.Fatalf("trace changed: %v -> %v", r1.Trace, r2.Trace)
	}
	if r2.Counts.ExprEvals >= r1.Counts.ExprEvals {
		t.Errorf("EM gave no improvement: %d -> %d", r1.Counts.ExprEvals, r2.Counts.ExprEvals)
	}
}

func TestGlobAlgStrictlyBeatsEMOnRunningExample(t *testing.T) {
	gEM := parse.MustParse(running)
	gGlob := parse.MustParse(running)
	Run(gEM)
	core.Optimize(gGlob)

	env := runningEnvLoop()
	rEM := interp.Run(gEM, env, 0)
	rGlob := interp.Run(gGlob, env, 0)
	if !interp.TraceEqual(rEM, rGlob) {
		t.Fatalf("EM and GlobAlg disagree: %v vs %v", rEM.Trace, rGlob.Trace)
	}
	if rGlob.Counts.ExprEvals >= rEM.Counts.ExprEvals {
		t.Errorf("GlobAlg (%d expr evals) not strictly better than EM (%d) on the loop",
			rGlob.Counts.ExprEvals, rEM.Counts.ExprEvals)
	}
	// Theorem 5.2 is about expression evaluations; for assignments the
	// guarantee is relative optimality, so only require no regression.
	if rGlob.Counts.AssignExecs > rEM.Counts.AssignExecs {
		t.Errorf("GlobAlg (%d assign execs) worse than EM (%d)",
			rGlob.Counts.AssignExecs, rEM.Counts.AssignExecs)
	}
}

func TestLoopInvariantHoisting(t *testing.T) {
	// A do-while-shaped loop: the body executes at least once, so a+b is
	// down-safe at the preheader and the invariant hoists out. (In a
	// zero-trip while-loop neither LCM nor AM may hoist it — the exit
	// path never computes a+b; see TestZeroTripLoopStaysPut.)
	g := parse.MustParse(`
graph loopinv {
  entry pre
  exit post
  block pre { goto body }
  block body {
    x := a + b
    i := i + 1
    if i < 10 then body else post
  }
  block post { out(x, i) }
}
`)
	orig := g.Clone()
	Run(g)
	g.MustValidate()
	env := map[ir.Var]int64{"a": 3, "b": 4, "i": 0}
	r1 := interp.Run(orig, env, 0)
	r2 := interp.Run(g, env, 0)
	if !interp.TraceEqual(r1, r2) {
		t.Fatalf("trace changed\n%s", printer.String(g))
	}
	// Original: 10 evaluations of a+b + 10 of i+1. Optimized: 1 + 10.
	if want := r1.Counts.ExprEvals - 9; r2.Counts.ExprEvals != want {
		t.Errorf("expr evals = %d, want %d\n%s", r2.Counts.ExprEvals, want, printer.String(g))
	}
}

func TestZeroTripLoopStaysPut(t *testing.T) {
	// Hoisting a+b above the while-header would compute it on executions
	// that never enter the loop — unsafe, so LCM must leave it inside.
	g := parse.MustParse(`
graph whileloop {
  entry pre
  exit post
  block pre { goto hdr }
  block hdr { if i < 10 then body else post }
  block body {
    x := a + b
    i := i + 1
    goto hdr
  }
  block post { out(x, i) }
}
`)
	Run(g)
	g.MustValidate()
	// Zero-trip execution must not evaluate a+b.
	r := interp.Run(g, map[ir.Var]int64{"a": 3, "b": 4, "i": 99}, 0)
	if r.Counts.ExprEvals != 0 {
		t.Errorf("zero-trip execution evaluates %d expressions, want 0\n%s",
			r.Counts.ExprEvals, printer.String(g))
	}
}

func TestEMDoesNotTouchPlainAssignments(t *testing.T) {
	// A program with only trivial right-hand sides is EM-invariant up to
	// the (identity) decomposition.
	g := parse.MustParse(`
graph plain {
  entry a
  exit e
  block a {
    x := y
    z := x
    x := y
    goto e
  }
  block e { out(x, z) }
}
`)
	st := Run(g)
	g.MustValidate()
	if st.Decomposed != 0 {
		t.Errorf("decomposed %d trivial sites", st.Decomposed)
	}
	// The redundant copy x := y survives EM (it is an assignment-level
	// redundancy).
	n := 0
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Key() == "x:=y" {
				n++
			}
		}
	}
	if n != 2 {
		t.Errorf("x := y occurs %d times, want 2 (EM must not eliminate assignments)", n)
	}
}

func TestNoSafetyViolation(t *testing.T) {
	// a+b occurs on one branch only; EM must not compute it on the other.
	g := parse.MustParse(`
graph safety {
  entry s
  exit e
  block s { if c < 0 then l else r }
  block l {
    x := a + b
    goto e
  }
  block r {
    x := 1
    goto e
  }
  block e { out(x) }
}
`)
	Run(g)
	g.MustValidate()
	r := interp.Run(g, map[ir.Var]int64{"c": 1, "a": 1, "b": 2}, 0)
	if r.Counts.ExprEvals != 0 {
		t.Errorf("safety violated: %d evaluations on the a+b-free path\n%s",
			r.Counts.ExprEvals, printer.String(g))
	}
}

func TestRunIdempotent(t *testing.T) {
	g := parse.MustParse(running)
	Run(g)
	enc := g.Encode()
	Run(g)
	if g.Encode() != enc {
		t.Errorf("lcm not idempotent:\n%s\nvs\n%s", enc, g.Encode())
	}
}
