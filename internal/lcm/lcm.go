// Package lcm implements the expression-motion baseline: lazy code motion
// in the sense of Knoop/Rüthing/Steffen (PLDI'92, TOPLAS'94), the "separate
// effect of EM" shown in Figure 6(a) of the paper.
//
// The implementation exploits the paper's own Initialization Phase Lemma
// (Lemma 4.1): after decomposing every assignment x := t into
// h_t := t; x := h_t, every admissible expression motion corresponds to an
// admissible assignment motion of the initialization patterns h_ε := ε
// alone. Lazy code motion is therefore realized as
//
//  1. the initialization decomposition (internal/core.Initialize),
//  2. the aht/rae fixpoint restricted to h_ε := ε patterns — hoisting to
//     earliest down-safe points and eliminating redundant computations —
//  3. the final flush (internal/flush), which is the "lazy" part: it sinks
//     initializations to their latest points (minimal lifetimes) and
//     removes or reconstructs unusable ones, exactly as lcm's delayability
//     and isolation analyses do.
//
// The crucial difference from the full global algorithm is that the
// original assignments x := h_t never move and are never eliminated; EM
// consequently misses every second-order effect between assignments and
// expressions (§1.2).
package lcm

import (
	"fmt"

	"assignmentmotion/internal/aht"
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/flush"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"
	"assignmentmotion/internal/rae"
)

func init() {
	pass.Register(pass.Pass{
		Name:        "em",
		Description: "expression-motion baseline: lazy code motion over initialization patterns (original assignments never move)",
		Ref:         "§1.2, Figure 6(a); Knoop/Rüthing/Steffen PLDI'92",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			st := RunWith(g, s)
			return pass.Stats{Changes: st.Decomposed + st.Eliminated, Iterations: st.Iterations}, nil
		},
	})
}

// Stats reports what one lazy-code-motion run did.
type Stats struct {
	// Decomposed is the number of sites split by initialization.
	Decomposed int
	// Iterations is the number of hoist+eliminate rounds.
	Iterations int
	// Eliminated is the number of redundant initializations removed.
	Eliminated int
	// Flush carries the final flush statistics.
	Flush flush.Stats
}

// Run applies lazy code motion to g in place.
func Run(g *ir.Graph) Stats {
	s := analysis.NewSession()
	defer s.Close()
	return RunWith(g, s)
}

// RunWith is Run against an existing session, so a caller driving several
// passes (the pass pipeline, the §6 EM/CP interleaving) shares one arena
// and one universe cache across all of them.
func RunWith(g *ir.Graph, s *analysis.Session) Stats {
	var st Stats
	g.SplitCriticalEdges()
	st.Decomposed = core.Initialize(g)

	isInit := func(p ir.AssignPattern) bool {
		e, ok := g.TempExpr(p.LHS)
		return ok && e.Equal(p.RHS)
	}
	n := g.InstrCount() + len(g.Blocks)
	limit := 4*n*n + 64
	for {
		st.Iterations++
		if st.Iterations > limit {
			panic(fmt.Sprintf("lcm: no fixpoint after %d iterations", limit))
		}
		hoisted := aht.ApplyWith(g, s, isInit)
		removed := rae.EliminateMaskedWith(g, s, isInit)
		st.Eliminated += removed
		if !hoisted && removed == 0 {
			break
		}
	}
	st.Flush = flush.RunWith(g, s)
	return st
}
