// Package emcp implements the §6 interleaving of expression motion and
// copy propagation (Figure 20(a), cf. [8]): lazy code motion alternates
// with global copy propagation until the program stabilizes. This is the
// classical workaround for 3-address decomposition blocking expression
// motion — copy propagation re-exposes motion opportunities that the
// decomposition's copies hide — and the baseline the paper's uniform
// algorithm is measured against.
//
// The interleaving is capped at 16 rounds: unlike the AM fixpoint it has
// no termination guarantee in general (§6 notes the interaction is ad
// hoc), and 16 rounds is far beyond what any of the corpus programs need.
package emcp

import (
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/copyprop"
	"assignmentmotion/internal/gvn"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/lcm"
	"assignmentmotion/internal/pass"
)

// MaxRounds caps the EM/CP interleaving.
const MaxRounds = 16

func init() {
	pass.Register(pass.Pass{
		Name:        "emcp",
		Description: "EM/CP interleaving: lazy code motion alternating with copy propagation to a (capped) fixpoint",
		Ref:         "§6, Figure 20(a); cf. [8]",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			st, err := TryRunWith(g, s)
			return pass.Stats{
				Changes:    st.Eliminated + st.Replaced,
				Iterations: st.Rounds,
			}, err
		},
	})
	pass.Register(pass.Pass{
		Name:        "gvn-emcp",
		Description: "GVN/EM/CP interleaving: value numbering before each EM/CP round, measuring the GVN->AM second-order effect",
		Ref:         "§6, Figure 20(a) + Saleena & Paleri, arXiv:1303.1880",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			st, err := TryRunGVNWith(g, s)
			return pass.Stats{
				Changes:    st.Numbered + st.Eliminated + st.Replaced,
				Iterations: st.Rounds,
			}, err
		},
	})
}

// Stats reports what one EM/CP interleaving run did.
type Stats struct {
	// Rounds is the number of EM+CP rounds until stabilization (or the
	// MaxRounds cap).
	Rounds int
	// Decomposed is the total number of sites split by the EM rounds'
	// initialization phases.
	Decomposed int
	// Eliminated is the total number of redundant initializations removed
	// by the EM rounds.
	Eliminated int
	// Replaced is the total number of operand occurrences rewritten by the
	// copy propagation rounds.
	Replaced int
	// Numbered is the total number of recomputations rewritten into copies
	// by the value-numbering rounds (gvn-emcp only; zero for plain emcp).
	Numbered int
}

// Run applies the EM/CP interleaving to g in place.
func Run(g *ir.Graph) Stats {
	s := analysis.NewSession()
	defer s.Close()
	return RunWith(g, s)
}

// RunWith is Run against an existing session: every EM and CP round
// shares one arena and one universe cache instead of rebuilding them per
// round, which is where the legacy facade loop spent most of its
// allocations. Budget and cancellation failures panic (legacy contract);
// fault-aware callers use TryRunWith.
func RunWith(g *ir.Graph, s *analysis.Session) Stats {
	st, err := TryRunWith(g, s)
	if err != nil {
		panic("emcp: " + err.Error())
	}
	return st
}

// TryRunWith is the fallible form of RunWith: each EM+CP round honours
// the session's budget and cancellation context, so an engine deadline
// interrupts the interleaving between rounds instead of between graphs.
// On error the graph is left in the valid state of the last completed
// round (every round is a complete, semantics-preserving transformation).
func TryRunWith(g *ir.Graph, s *analysis.Session) (Stats, error) {
	return interleave(g, s, false)
}

// RunGVN applies the GVN/EM/CP interleaving to g in place: every round
// first rewrites equivalent recomputations into copies by global value
// numbering, then runs lazy code motion and copy propagation. Running GVN
// first shrinks the expression-pattern universe the motion analyses range
// over — the second-order interaction the gvn-emcp composite exists to
// measure.
func RunGVN(g *ir.Graph) Stats {
	s := analysis.NewSession()
	defer s.Close()
	st, err := TryRunGVNWith(g, s)
	if err != nil {
		panic("gvn-emcp: " + err.Error())
	}
	return st
}

// TryRunGVNWith is the fallible form of RunGVN against an existing session,
// with the same budget/cancellation contract as TryRunWith.
func TryRunGVNWith(g *ir.Graph, s *analysis.Session) (Stats, error) {
	return interleave(g, s, true)
}

// interleave runs the (optionally GVN-prefixed) EM/CP rounds to a capped
// fixpoint. Every round is a complete, semantics-preserving transformation,
// so on error the graph is the valid result of the last completed round.
func interleave(g *ir.Graph, s *analysis.Session, withGVN bool) (Stats, error) {
	var st Stats
	for st.Rounds < MaxRounds {
		st.Rounds++
		if err := s.CheckBudget(st.Rounds); err != nil {
			st.Rounds--
			return st, err
		}
		before := g.Encode()
		if withGVN {
			numbered, _, err := gvn.TryRunWith(g, s)
			st.Numbered += numbered
			if err != nil {
				return st, err
			}
		}
		em := lcm.RunWith(g, s)
		st.Decomposed += em.Decomposed
		st.Eliminated += em.Eliminated
		replaced, _ := copyprop.RunWith(g, s)
		st.Replaced += replaced
		if g.Encode() == before {
			return st, nil
		}
	}
	return st, nil
}
