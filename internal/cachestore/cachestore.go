// Package cachestore is a persistent, content-addressed result store:
// the on-disk second tier behind the engine's in-memory fingerprint
// cache. A daemon that restarts reopens the same directory and keeps its
// warm cache — the optimizations of this module are deterministic
// functions of the input graph and the pipeline configuration, so a
// stored result is valid forever.
//
// The store is deliberately paranoid about the disk:
//
//   - writes are atomic (temp file in the same directory + rename), so a
//     crash mid-write never leaves a half-visible entry;
//   - every entry embeds its key and a SHA-256 checksum of its payload;
//     a read that fails to decode, names a different key (hash
//     collision, truncation), or fails the checksum deletes the file and
//     reports a miss — corrupted state costs one recompute, never a
//     wrong answer;
//   - total payload size is capped; inserting past the cap evicts
//     least-recently-used entries (access order survives restarts via
//     the index file, falling back to file mtimes).
//
// All methods are safe for concurrent use.
package cachestore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultMaxBytes caps the store's payload when Open is given maxBytes 0:
// 256 MiB, roomy for hundreds of thousands of optimized programs.
const DefaultMaxBytes = 256 << 20

// entryExt is the filename suffix of stored entries.
const entryExt = ".cache.json"

// indexFile persists the LRU access order and cumulative stats across
// restarts. It is advisory: a missing or corrupt index degrades to
// mtime-ordered eviction, never to data loss.
const indexFile = "index.json"

// Stats reports the cumulative behaviour of one Store since Open.
type Stats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Puts        int64 `json:"puts"`
	Evictions   int64 `json:"evictions"`
	Corruptions int64 `json:"corruptions"`
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
}

// envelope is the on-disk shape of one entry: the full key (the filename
// is only its hash), a SHA-256 of the payload, and the payload itself.
type envelope struct {
	Key  string `json:"key"`
	Sum  string `json:"sum"`
	Data []byte `json:"data"`
}

// indexEntry is one record of the persisted index, oldest first.
type indexEntry struct {
	File string `json:"file"`
	Size int64  `json:"size"`
}

// persistedIndex is the indexFile shape.
type persistedIndex struct {
	Order []indexEntry `json:"order"` // LRU order, least recent first
}

// record is the in-memory index entry for one stored file.
type record struct {
	file string
	size int64
	prev *record
	next *record
}

// Store is a persistent content-addressed cache directory. Construct with
// Open; the zero value is not usable.
type Store struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	index map[string]*record // file base name -> record
	// LRU list: head.next is least recently used, tail.prev most recent.
	head, tail *record
	bytes      int64

	hits        int64
	misses      int64
	puts        int64
	evictions   int64
	corruptions int64
}

// Open creates (if needed) and loads the store rooted at dir. maxBytes
// caps the total payload size; 0 selects DefaultMaxBytes, negative
// disables the cap. Existing entries are indexed in LRU order from the
// persisted index when present, otherwise by file modification time.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes == 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, index: map[string]*record{}}
	s.head = &record{}
	s.tail = &record{}
	s.head.next, s.tail.prev = s.tail, s.head
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// load scans the directory into the LRU index. Stale temp files from a
// crashed writer are removed.
func (s *Store) load() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	type onDisk struct {
		file  string
		size  int64
		mtime time.Time
	}
	var found []onDisk
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ".tmp-") {
			os.Remove(filepath.Join(s.dir, name)) // crashed writer leftovers
			continue
		}
		if !strings.HasSuffix(name, entryExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, onDisk{file: name, size: info.Size(), mtime: info.ModTime()})
	}
	// Oldest first, so the insertion below leaves the most recent at the
	// tail (= evicted last).
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })

	// The persisted index, when readable, refines the mtime order with the
	// true access order of the previous run.
	if data, err := os.ReadFile(filepath.Join(s.dir, indexFile)); err == nil {
		var idx persistedIndex
		if json.Unmarshal(data, &idx) == nil && len(idx.Order) > 0 {
			pos := make(map[string]int, len(idx.Order))
			for i, e := range idx.Order {
				pos[e.File] = i + 1
			}
			sort.SliceStable(found, func(i, j int) bool {
				pi, pj := pos[found[i].file], pos[found[j].file]
				if pi == 0 || pj == 0 {
					return pi != 0 // unknown files (newer than the index) last = most recent
				}
				return pi < pj
			})
		}
	}
	for _, f := range found {
		r := &record{file: f.file, size: f.size}
		s.index[f.file] = r
		s.pushBack(r)
		s.bytes += f.size
	}
	s.evictLocked()
	return nil
}

// fileFor maps a key to its stable file name: a SHA-256 of the key, so
// arbitrary key strings (fingerprints plus pipeline configuration) become
// safe, fixed-length path components.
func fileFor(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + entryExt
}

// Get returns the payload stored under key, or ok=false. A corrupt entry
// (undecodable, key mismatch, checksum failure) is deleted and reported
// as a miss.
func (s *Store) Get(key string) ([]byte, bool) {
	file := fileFor(key)
	data, err := os.ReadFile(filepath.Join(s.dir, file))
	if err != nil {
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil || env.Key != key || !sumOK(env) {
		s.discardCorrupt(file)
		return nil, false
	}
	s.mu.Lock()
	s.hits++
	if r, ok := s.index[file]; ok {
		s.unlink(r)
		s.pushBack(r)
	}
	s.mu.Unlock()
	// Best-effort mtime touch so the LRU order survives a restart even
	// without a flushed index.
	now := time.Now()
	os.Chtimes(filepath.Join(s.dir, file), now, now)
	return env.Data, true
}

func sumOK(env envelope) bool {
	sum := sha256.Sum256(env.Data)
	return env.Sum == hex.EncodeToString(sum[:])
}

// discardCorrupt removes a damaged entry and accounts for it.
func (s *Store) discardCorrupt(file string) {
	s.mu.Lock()
	s.corruptions++
	s.misses++
	if r, ok := s.index[file]; ok {
		s.unlink(r)
		delete(s.index, file)
		s.bytes -= r.size
	}
	s.mu.Unlock()
	os.Remove(filepath.Join(s.dir, file))
}

// Put stores data under key, atomically: the entry is written to a temp
// file in the store directory and renamed into place, then the LRU is
// trimmed to the byte cap. Storing an entry larger than the whole cap is
// a no-op rather than an error — the store's job is to help, not to veto.
func (s *Store) Put(key string, data []byte) error {
	sum := sha256.Sum256(data)
	env := envelope{Key: key, Sum: hex.EncodeToString(sum[:]), Data: data}
	blob, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	if s.maxBytes > 0 && int64(len(blob)) > s.maxBytes {
		return nil
	}
	file := fileFor(key)
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cachestore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cachestore: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, file)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cachestore: %w", err)
	}

	s.mu.Lock()
	s.puts++
	if r, ok := s.index[file]; ok {
		s.bytes += int64(len(blob)) - r.size
		r.size = int64(len(blob))
		s.unlink(r)
		s.pushBack(r)
	} else {
		r := &record{file: file, size: int64(len(blob))}
		s.index[file] = r
		s.pushBack(r)
		s.bytes += r.size
	}
	s.evictLocked()
	s.mu.Unlock()
	return nil
}

// evictLocked trims least-recently-used entries until the byte cap holds.
// Caller holds s.mu.
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes && s.head.next != s.tail {
		r := s.head.next
		s.unlink(r)
		delete(s.index, r.file)
		s.bytes -= r.size
		s.evictions++
		os.Remove(filepath.Join(s.dir, r.file))
	}
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats returns a snapshot of the store's cumulative counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits: s.hits, Misses: s.misses, Puts: s.puts,
		Evictions: s.evictions, Corruptions: s.corruptions,
		Entries: len(s.index), Bytes: s.bytes,
	}
}

// Flush persists the LRU access order to the index file (atomically, like
// every other write). Call it on graceful shutdown; a crash without it
// only degrades the next run's eviction order to mtimes.
func (s *Store) Flush() error {
	s.mu.Lock()
	idx := persistedIndex{}
	for r := s.head.next; r != s.tail; r = r.next {
		idx.Order = append(idx.Order, indexEntry{File: r.file, Size: r.size})
	}
	s.mu.Unlock()
	blob, err := json.Marshal(idx)
	if err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cachestore: flush: %w", errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, indexFile)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cachestore: %w", err)
	}
	return nil
}

// Close flushes the index. The store holds no other resources (every
// read/write opens and closes its own file).
func (s *Store) Close() error { return s.Flush() }

// unlink removes r from the LRU list. Caller holds s.mu.
func (s *Store) unlink(r *record) {
	r.prev.next = r.next
	r.next.prev = r.prev
	r.prev, r.next = nil, nil
}

// pushBack appends r at the most-recently-used end. Caller holds s.mu.
func (s *Store) pushBack(r *record) {
	r.prev = s.tail.prev
	r.next = s.tail
	s.tail.prev.next = r
	s.tail.prev = r
}
