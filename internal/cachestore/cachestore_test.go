package cachestore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get on empty store reported a hit")
	}
	payload := []byte("optimized program text")
	if err := s.Put("key-1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("key-1")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 put, 1 entry", st)
	}
}

func TestOverwriteReplaces(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("new and longer")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k")
	if !ok || string(got) != "new and longer" {
		t.Fatalf("Get after overwrite = %q, %v", got, ok)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d after overwrite; want 1", n)
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("warm", []byte("cached result")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("warm")
	if !ok || string(got) != "cached result" {
		t.Fatalf("reopened Get = %q, %v; want the persisted payload", got, ok)
	}
}

// entryFiles lists the stored entry files of dir.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), entryExt) {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestCorruptEntryIsDiscarded(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(path string) error
	}{
		{"truncated", func(p string) error { return os.WriteFile(p, []byte(`{"key":"k","su`), 0o644) }},
		{"not-json", func(p string) error { return os.WriteFile(p, []byte("garbage bytes"), 0o644) }},
		{"bad-sum", func(p string) error {
			return os.WriteFile(p, []byte(`{"key":"k","sum":"00","data":"aGk="}`), 0o644)
		}},
		{"wrong-key", func(p string) error {
			// A well-formed envelope for a DIFFERENT key at this path: the
			// read must reject it rather than serve another key's payload.
			other, err := Open(filepath.Dir(p)+"-other", 0)
			if err != nil {
				return err
			}
			if err := other.Put("other-key", []byte("other payload")); err != nil {
				return err
			}
			files := entryFilesErr(filepath.Dir(p) + "-other")
			if len(files) != 1 {
				return fmt.Errorf("expected 1 entry, got %d", len(files))
			}
			data, err := os.ReadFile(filepath.Join(filepath.Dir(p)+"-other", files[0]))
			if err != nil {
				return err
			}
			return os.WriteFile(p, data, 0o644)
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put("k", []byte("payload")); err != nil {
				t.Fatal(err)
			}
			files := entryFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("want 1 entry file, got %v", files)
			}
			if err := tc.corrupt(filepath.Join(dir, files[0])); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("k"); ok {
				t.Fatalf("Get on corrupt entry = %q, true; want a miss", got)
			}
			if left := entryFiles(t, dir); len(left) != 0 {
				t.Fatalf("corrupt entry not deleted: %v", left)
			}
			if st := s.Stats(); st.Corruptions != 1 {
				t.Fatalf("Corruptions = %d; want 1", st.Corruptions)
			}
			// The key is recomputable: a fresh Put must work again.
			if err := s.Put("k", []byte("payload")); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get("k"); !ok {
				t.Fatal("re-Put after corruption did not restore the entry")
			}
		})
	}
}

func entryFilesErr(dir string) []string {
	entries, _ := os.ReadDir(dir)
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), entryExt) {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestLRUEvictionBySize(t *testing.T) {
	dir := t.TempDir()
	// Envelope overhead (key + sum + json) is ~200 bytes; each 1 KiB
	// payload lands well under 2 KiB on disk. Cap at ~4 entries' worth.
	payload := bytes.Repeat([]byte("x"), 1024)
	s, err := Open(dir, 6*1024)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions after exceeding the byte cap: %+v", st)
	}
	if st.Bytes > 6*1024 {
		t.Fatalf("store over cap after eviction: %d bytes", st.Bytes)
	}
	// The most recent key survives, the oldest is gone.
	if _, ok := s.Get("key-7"); !ok {
		t.Fatal("most recent entry was evicted")
	}
	if _, ok := s.Get("key-0"); ok {
		t.Fatal("oldest entry survived eviction")
	}
}

func TestLRUOrderRespectsGets(t *testing.T) {
	payload := bytes.Repeat([]byte("y"), 1024)
	s, err := Open(t.TempDir(), 5*1024)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key-0 so key-1 becomes the eviction victim.
	if _, ok := s.Get("key-0"); !ok {
		t.Fatal("key-0 missing before eviction")
	}
	if err := s.Put("key-3", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("key-0"); !ok {
		t.Fatal("recently read key-0 was evicted")
	}
	if _, ok := s.Get("key-1"); ok {
		t.Fatal("least recently used key-1 survived")
	}
}

func TestEvictionOrderSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("z"), 1024)
	s, err := Open(dir, -1) // uncapped while populating
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get("key-0"); !ok { // key-0 most recent
		t.Fatal("key-0 missing")
	}
	if err := s.Close(); err != nil { // flushes the access order
		t.Fatal(err)
	}

	s2, err := Open(dir, 4*1024) // reopen capped: room for ~2 entries + a new one
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Put("key-3", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("key-1"); ok {
		t.Fatal("key-1 (least recently used before restart) survived eviction")
	}
	if _, ok := s2.Get("key-0"); !ok {
		t.Fatal("key-0 (most recently used before restart) was evicted")
	}
}

func TestStaleTempFilesRemovedOnOpen(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ".tmp-12345"), []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-12345")); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived Open")
	}
}

func TestOversizedPayloadIsSkippedNotStored(t *testing.T) {
	s, err := Open(t.TempDir(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("huge", bytes.Repeat([]byte("h"), 4096)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("huge"); ok {
		t.Fatal("payload larger than the whole cap was stored")
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("Len = %d; want 0", n)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("key-%d", i%10)
				if i%3 == 0 {
					if err := s.Put(key, []byte(key+" payload")); err != nil {
						t.Error(err)
						return
					}
				} else if got, ok := s.Get(key); ok && string(got) != key+" payload" {
					t.Errorf("Get(%s) returned another key's payload: %q", key, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestFlushIsAtomicAndReloadable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the index: Open must still succeed (mtime fallback).
	if err := os.WriteFile(filepath.Join(dir, indexFile), []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := s2.Len(); n != 5 {
		t.Fatalf("Len after reopen with corrupt index = %d; want 5", n)
	}
}

func TestMtimeFallbackOrdersEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("m"), 1024)
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	// No Flush: force distinct mtimes oldest-first, remove any index.
	os.Remove(filepath.Join(dir, indexFile))
	base := time.Now().Add(-time.Hour)
	for i, f := range entryFilesSorted(t, dir, s) {
		ts := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, f), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir, 2*1024)
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries after capped reopen = %d; want 1 (two oldest evicted)", st.Entries)
	}
	if _, ok := s2.Get("key-2"); !ok {
		t.Fatal("newest entry (by mtime) was evicted; LRU fallback ignored mtimes")
	}
}

// entryFilesSorted returns the entry files in Put order (key-0, key-1, ...).
func entryFilesSorted(t *testing.T, dir string, s *Store) []string {
	t.Helper()
	out := make([]string, 0, 3)
	for i := 0; ; i++ {
		f := fileFor(fmt.Sprintf("key-%d", i))
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			break
		}
		out = append(out, f)
	}
	return out
}

// TestConcurrentReadersDuringEviction hammers a tightly capped store with
// writers that force a continuous eviction sweep while readers race the
// sweep on the same keys. Run under -race this pins the locking of the
// LRU bookkeeping; functionally it asserts a reader never observes another
// key's payload — an evicted-mid-read entry must decay to a clean miss.
func TestConcurrentReadersDuringEviction(t *testing.T) {
	// Cap so only ~4 of the 16 distinct entries fit: every writer round
	// evicts, so readers constantly hit files the sweep is unlinking.
	s, err := Open(t.TempDir(), 2048)
	if err != nil {
		t.Fatal(err)
	}
	payload := func(i int) []byte {
		return bytes.Repeat([]byte{byte('a' + i%16)}, 256)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (w*7 + i) % 16
				if err := s.Put(fmt.Sprintf("evict-key-%d", k), payload(k)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (r*5 + i) % 16
				if got, ok := s.Get(fmt.Sprintf("evict-key-%d", k)); ok && !bytes.Equal(got, payload(k)) {
					t.Errorf("Get(evict-key-%d) returned wrong payload %q", k, got[:1])
					return
				}
			}
		}(r)
	}
	wg.Wait()
	st := s.Stats()
	if st.Evictions == 0 {
		t.Error("cap never triggered an eviction — the test exercised nothing")
	}
	if st.Corruptions != 0 {
		t.Errorf("eviction sweep corrupted %d entries", st.Corruptions)
	}
	if st.Bytes > 2048 {
		t.Errorf("store over its cap after the sweep: %d bytes", st.Bytes)
	}
}

// TestIndexRecoversFromDeletedArtifact: the persisted index names a file
// that was deleted out from under the store (operator cleanup, another
// process). Reopening must recover — the directory scan is the source of
// truth, the index only refines LRU order — with consistent accounting
// and a clean miss for the deleted entry.
func TestIndexRecoversFromDeletedArtifact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"keep-a", "victim", "keep-b"}
	for _, k := range keys {
		if err := s.Put(k, []byte(k+" payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil { // persists index.json naming all three
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, fileFor("victim"))); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("reopen after artifact deletion: %v", err)
	}
	if n := s2.Len(); n != 2 {
		t.Errorf("reopened store indexes %d entries, want 2", n)
	}
	if _, ok := s2.Get("victim"); ok {
		t.Error("deleted artifact still served")
	}
	for _, k := range []string{"keep-a", "keep-b"} {
		got, ok := s2.Get(k)
		if !ok || string(got) != k+" payload" {
			t.Errorf("surviving entry %q lost: ok=%v got=%q", k, ok, got)
		}
	}
	// The stale index row must not poison accounting: stored bytes equal
	// the surviving files' sizes exactly.
	var want int64
	for _, k := range []string{"keep-a", "keep-b"} {
		info, err := os.Stat(filepath.Join(dir, fileFor(k)))
		if err != nil {
			t.Fatal(err)
		}
		want += info.Size()
	}
	if st := s2.Stats(); st.Bytes != want {
		t.Errorf("bytes accounting after recovery: have %d, want %d", st.Bytes, want)
	}
}
