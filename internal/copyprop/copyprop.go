// Package copyprop implements global copy propagation: uses of a variable
// v are replaced by w wherever the copy v := w is available on every path
// (v = w is guaranteed to hold). Section 6 of the paper discusses EM
// interleaved with copy propagation (cf. [8]) as the usual workaround for
// 3-address decomposition blocking expression motion (Figure 20(a)); this
// package provides that baseline.
package copyprop

import (
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"
)

func init() {
	pass.Register(pass.Pass{
		Name:        "copyprop",
		Description: "global copy propagation: replace uses through available copies, iterated to a fixpoint",
		Ref:         "§6, Figure 20(a); cf. [8]",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			replaced, rounds := RunWith(g, s)
			return pass.Stats{Changes: replaced, Iterations: rounds}, nil
		},
	})
}

// copyPat is a copy pattern v := w.
type copyPat struct {
	dst, src ir.Var
}

// Run propagates copies in g until no further replacement is possible and
// returns the number of replaced operand occurrences. Chains (t := s;
// u := t; use of u) are resolved by iterating to a fixpoint.
func Run(g *ir.Graph) int {
	replaced, _ := RunWith(g, nil)
	return replaced
}

// RunWith is Run against session s (nil for the uncached path): the
// availability vectors come from the session's arena and solver work is
// tallied into the session for per-pass reporting. It additionally returns
// the number of analysis+replacement rounds until the fixpoint.
func RunWith(g *ir.Graph, s *analysis.Session) (replaced, rounds int) {
	for {
		rounds++
		n := runOnce(g, s)
		replaced += n
		if n == 0 {
			return replaced, rounds
		}
	}
}

// runOnce performs one availability analysis + replacement sweep.
func runOnce(g *ir.Graph, s *analysis.Session) int {
	prog := analysis.NewProg(g)

	// Collect copy patterns v := w (trivial variable RHS, v ≠ w).
	var pats []copyPat
	index := map[copyPat]int{}
	for _, in := range prog.Ins {
		if p, ok := copyOf(in); ok {
			if _, seen := index[p]; !seen {
				index[p] = len(pats)
				pats = append(pats, p)
			}
		}
	}
	if len(pats) == 0 {
		return 0
	}
	bits := len(pats)
	n := prog.Len()

	ar := s.Arena()
	mark := ar.Mark()
	defer ar.Release(mark)

	gen := ar.Vecs(n)
	kill := ar.Vecs(n)
	for i := 0; i < n; i++ {
		gen[i] = ar.Vec(bits)
		kill[i] = ar.Vec(bits)
		in := prog.Ins[i]
		if v, ok := in.Defs(); ok {
			for id, p := range pats {
				if p.dst == v || p.src == v {
					kill[i].Set(id)
				}
			}
		}
		if p, ok := copyOf(in); ok {
			id := index[p]
			gen[i].Set(id)
			kill[i].Clear(id) // the copy re-establishes itself
		}
	}

	entry := prog.EntryIndex()
	res := dataflow.Solve(dataflow.Problem{
		N: n, Bits: bits, Dir: dataflow.Forward, Meet: dataflow.All,
		Preds: prog.Preds, Succs: prog.Succs,
		Arena: ar,
		Stats: s.DataflowStats(),
		Transfer: func(i int, in, out bitvec.Vec) {
			out.CopyFrom(in)
			out.AndNot(kill[i])
			out.Or(gen[i])
		},
		Boundary: func(i int, in bitvec.Vec) {
			if i == entry {
				in.ClearAll()
			}
		},
	})

	// Replacement: substitute w for v in every use where v := w is
	// available at the instruction entry.
	subst := func(idx int, o ir.Operand) (ir.Operand, bool) {
		if o.IsConst {
			return o, false
		}
		for id, p := range pats {
			if p.dst == o.Var && res.In[idx].Get(id) {
				return ir.VarOp(p.src), true
			}
		}
		return o, false
	}
	substTerm := func(idx int, t ir.Term) (ir.Term, int) {
		changed := 0
		ops := t.Operands()
		for k, o := range ops {
			if no, ok := subst(idx, o); ok {
				t.Args[k] = no
				changed++
			}
			_ = o
		}
		return t, changed
	}

	replaced := 0
	idx := 0
	for _, b := range g.Blocks {
		for k, in := range b.Instrs {
			switch in.Kind {
			case ir.KindAssign:
				rhs, c := substTerm(idx, in.RHS)
				if c > 0 {
					b.Instrs[k] = ir.NewAssign(in.LHS, rhs)
					replaced += c
				}
			case ir.KindOut:
				args := append([]ir.Operand(nil), in.Args...)
				c := 0
				for a, o := range args {
					if no, ok := subst(idx, o); ok {
						args[a] = no
						c++
					}
				}
				if c > 0 {
					b.Instrs[k] = ir.NewOut(args...)
					replaced += c
				}
			case ir.KindCond:
				l, cl := substTerm(idx, in.CondL)
				r, cr := substTerm(idx, in.CondR)
				if cl+cr > 0 {
					b.Instrs[k] = ir.NewCond(in.CondOp, l, r)
					replaced += cl + cr
				}
			}
			idx++
		}
	}
	g.Normalize() // a copy x := y rewritten to x := x becomes skip
	return replaced
}

func copyOf(in ir.Instr) (copyPat, bool) {
	if in.Kind == ir.KindAssign && in.RHS.Trivial() && !in.RHS.Args[0].IsConst &&
		in.RHS.Args[0].Var != in.LHS {
		return copyPat{dst: in.LHS, src: in.RHS.Args[0].Var}, true
	}
	return copyPat{}, false
}
