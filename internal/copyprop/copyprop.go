// Package copyprop implements unified global copy AND constant
// propagation: uses of a variable v are replaced by w — a variable or an
// integer literal — wherever the copy v := w is available on every path
// (v = w is guaranteed to hold), and terms whose operands have all become
// literals are folded in the same fixpoint.
//
// The unification follows Sreekala & Paleri, "Copy Propagation subsumes
// Constant Propagation" (arXiv:2207.03894): a constant assignment v := 7 is
// just a copy whose source happens to be a literal, so one availability
// lattice over copy patterns v := o (o a variable or literal) performs both
// propagations, and folding a fully-literal term re-creates a literal copy
// that feeds the next round. Section 6 of the source paper discusses EM
// interleaved with copy propagation (cf. [8]) as the usual workaround for
// 3-address decomposition blocking expression motion (Figure 20(a)); this
// package provides that baseline, now subsuming the constant variant.
//
// Folding uses the interpreter's arithmetic; division and remainder with a
// literal zero divisor are deliberately NOT folded, so the transformation
// is semantics-preserving under both the default total semantics and the
// trapping semantics of interp.Options.TrapOnDivZero.
package copyprop

import (
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"
)

func init() {
	pass.Register(pass.Pass{
		Name:        "copyprop",
		Description: "unified copy+constant propagation: replace uses through available (variable or literal) copies and fold literal terms, iterated to a fixpoint",
		Ref:         "§6, Figure 20(a); cf. [8]; Sreekala & Paleri, arXiv:2207.03894",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			replaced, rounds := RunWith(g, s)
			return pass.Stats{Changes: replaced, Iterations: rounds}, nil
		},
	})
}

// copyPat is a copy pattern v := o, where o is a variable or a literal.
type copyPat struct {
	dst ir.Var
	src ir.Operand
}

// Run propagates copies and constants in g until no further replacement or
// fold is possible and returns the number of rewritten operand occurrences
// plus folded terms. Chains (t := s; u := t; use of u) and fold cascades
// (x := 2+3 creating the literal copy x := 5) are resolved by iterating to
// a fixpoint.
func Run(g *ir.Graph) int {
	replaced, _ := RunWith(g, nil)
	return replaced
}

// RunWith is Run against session s (nil for the uncached path): the
// availability vectors come from the session's arena and solver work is
// tallied into the session for per-pass reporting. It additionally returns
// the number of analysis+replacement rounds until the fixpoint.
func RunWith(g *ir.Graph, s *analysis.Session) (replaced, rounds int) {
	for {
		rounds++
		n := runOnce(g, s)
		replaced += n
		if n == 0 {
			return replaced, rounds
		}
	}
}

// runOnce performs one availability analysis + replacement + folding sweep.
func runOnce(g *ir.Graph, s *analysis.Session) int {
	prog := analysis.NewProg(g)

	// Collect copy patterns v := o (trivial RHS; for a variable source,
	// v ≠ o — v := v is skip — while every literal source qualifies).
	var pats []copyPat
	index := map[copyPat]int{}
	for _, in := range prog.Ins {
		if p, ok := copyOf(in); ok {
			if _, seen := index[p]; !seen {
				index[p] = len(pats)
				pats = append(pats, p)
			}
		}
	}

	changed := 0
	if len(pats) > 0 {
		changed += propagate(g, s, prog, pats, index)
	}
	changed += fold(g)
	if changed > 0 {
		g.Normalize() // a copy x := y rewritten to x := x becomes skip
	}
	return changed
}

// propagate runs the availability analysis over pats and substitutes
// available sources into uses, returning the number of replaced operands.
func propagate(g *ir.Graph, s *analysis.Session, prog *analysis.Prog, pats []copyPat, index map[copyPat]int) int {
	bits := len(pats)
	n := prog.Len()

	ar := s.Arena()
	mark := ar.Mark()
	defer ar.Release(mark)

	gen := ar.Vecs(n)
	kill := ar.Vecs(n)
	for i := 0; i < n; i++ {
		gen[i] = ar.Vec(bits)
		kill[i] = ar.Vec(bits)
		in := prog.Ins[i]
		if v, ok := in.Defs(); ok {
			for id, p := range pats {
				if p.dst == v || (!p.src.IsConst && p.src.Var == v) {
					kill[i].Set(id)
				}
			}
		}
		if p, ok := copyOf(in); ok {
			id := index[p]
			gen[i].Set(id)
			kill[i].Clear(id) // the copy re-establishes itself
		}
	}

	entry := prog.EntryIndex()
	res := dataflow.Solve(dataflow.Problem{
		N: n, Bits: bits, Dir: dataflow.Forward, Meet: dataflow.All,
		Preds: prog.Preds, Succs: prog.Succs,
		Arena:   ar,
		Stats:   s.DataflowStats(),
		Workers: s.SolverWorkersFor(n),
		Gen:     gen,
		Kill:    kill,
		Boundary: func(i int, in bitvec.Vec) {
			if i == entry {
				in.ClearAll()
			}
		},
	})

	// Replacement: substitute o for v in every use where v := o is
	// available at the instruction entry.
	subst := func(idx int, o ir.Operand) (ir.Operand, bool) {
		if o.IsConst {
			return o, false
		}
		for id, p := range pats {
			if p.dst == o.Var && res.In[idx].Get(id) {
				return p.src, true
			}
		}
		return o, false
	}
	substTerm := func(idx int, t ir.Term) (ir.Term, int) {
		changed := 0
		for k, o := range t.Operands() {
			if no, ok := subst(idx, o); ok {
				t.Args[k] = no
				changed++
			}
		}
		return t, changed
	}

	replaced := 0
	idx := 0
	for _, b := range g.Blocks {
		for k, in := range b.Instrs {
			switch in.Kind {
			case ir.KindAssign:
				rhs, c := substTerm(idx, in.RHS)
				if c > 0 {
					b.Instrs[k] = ir.NewAssign(in.LHS, rhs)
					replaced += c
				}
			case ir.KindOut:
				args := append([]ir.Operand(nil), in.Args...)
				c := 0
				for a, o := range args {
					if no, ok := subst(idx, o); ok {
						args[a] = no
						c++
					}
				}
				if c > 0 {
					b.Instrs[k] = ir.NewOut(args...)
					replaced += c
				}
			case ir.KindCond:
				l, cl := substTerm(idx, in.CondL)
				r, cr := substTerm(idx, in.CondR)
				if cl+cr > 0 {
					b.Instrs[k] = ir.NewCond(in.CondOp, l, r)
					replaced += cl + cr
				}
			}
			idx++
		}
	}
	return replaced
}

// fold rewrites every compound term whose operands are both literals into
// its literal value — assignment right-hand sides and branch-condition
// sides alike — and returns the number of folded terms. A folded
// assignment becomes a literal copy, which the next propagation round
// treats like any other copy pattern; that cascade is exactly how the
// unified lattice subsumes classical constant propagation.
func fold(g *ir.Graph) int {
	folded := 0
	for _, b := range g.Blocks {
		for k, in := range b.Instrs {
			switch in.Kind {
			case ir.KindAssign:
				if t, ok := foldTerm(in.RHS); ok {
					b.Instrs[k] = ir.NewAssign(in.LHS, t)
					folded++
				}
			case ir.KindCond:
				l, okL := foldTerm(in.CondL)
				r, okR := foldTerm(in.CondR)
				if okL || okR {
					if !okL {
						l = in.CondL
					}
					if !okR {
						r = in.CondR
					}
					b.Instrs[k] = ir.NewCond(in.CondOp, l, r)
					if okL {
						folded++
					}
					if okR {
						folded++
					}
				}
			}
		}
	}
	return folded
}

// foldTerm evaluates a compound term with two literal operands, mirroring
// the interpreter's arithmetic. Division and remainder by a literal zero
// are left unfolded: under the default total semantics they yield 0, but
// under trapping semantics they are run-time errors, and a propagation
// baseline must preserve both (§3 footnote 3 applies the same caution to
// the motion passes).
func foldTerm(t ir.Term) (ir.Term, bool) {
	if t.Trivial() || !t.Args[0].IsConst || !t.Args[1].IsConst {
		return t, false
	}
	a, b := t.Args[0].Const, t.Args[1].Const
	var v int64
	switch t.Op {
	case ir.OpAdd:
		v = a + b
	case ir.OpSub:
		v = a - b
	case ir.OpMul:
		v = a * b
	case ir.OpDiv:
		if b == 0 {
			return t, false
		}
		v = a / b
	case ir.OpRem:
		if b == 0 {
			return t, false
		}
		v = a % b
	default:
		return t, false
	}
	return ir.ConstTerm(v), true
}

func copyOf(in ir.Instr) (copyPat, bool) {
	if in.Kind != ir.KindAssign || !in.RHS.Trivial() {
		return copyPat{}, false
	}
	o := in.RHS.Args[0]
	if !o.IsConst && o.Var == in.LHS {
		return copyPat{}, false
	}
	return copyPat{dst: in.LHS, src: o}, true
}
