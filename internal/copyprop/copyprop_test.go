package copyprop

import (
	"testing"

	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/printer"
)

func instrKeys(g *ir.Graph, name string) []string {
	var out []string
	for _, in := range g.BlockByName(name).Instrs {
		out = append(out, in.Key())
	}
	return out
}

func TestStraightLinePropagation(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    t := s
    x := t + 1
    goto e
  }
  block e { out(x, t) }
}
`)
	orig := g.Clone()
	n := Run(g)
	if n == 0 {
		t.Fatal("nothing propagated")
	}
	keys := instrKeys(g, "a")
	if keys[1] != "x:=s+1" {
		t.Errorf("a = %v", keys)
	}
	// out(t) also becomes out(s).
	if e := instrKeys(g, "e"); e[0] != "out(x,s)" {
		t.Errorf("e = %v", e)
	}
	checkTraces(t, orig, g, []map[ir.Var]int64{{"s": 5}})
}

func TestKillStopsPropagation(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    t := s
    s := 9
    x := t + 1
    goto e
  }
  block e { out(x, s) }
}
`)
	orig := g.Clone()
	Run(g)
	if keys := instrKeys(g, "a"); keys[2] != "x:=t+1" {
		t.Errorf("propagated past kill of s: %v", keys)
	}
	checkTraces(t, orig, g, []map[ir.Var]int64{{"s": 5}})
}

func TestDstKillStopsPropagation(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    t := s
    t := 9
    x := t + 1
    goto e
  }
  block e { out(x) }
}
`)
	orig := g.Clone()
	Run(g)
	// The dead copy t := s must NOT reach the use — but the literal copy
	// t := 9 that killed it does, and 9+1 folds.
	if keys := instrKeys(g, "a"); keys[2] != "x:=10" {
		t.Errorf("want the literal copy propagated and folded, got: %v", keys)
	}
	for _, in := range g.BlockByName("a").Instrs {
		if in.Key() == "x:=s+1" {
			t.Errorf("propagated past kill of t := s: %v", instrKeys(g, "a"))
		}
	}
	checkTraces(t, orig, g, []map[ir.Var]int64{{"s": 5}})
}

func TestDiamondMeet(t *testing.T) {
	// The copy holds on one path only: no propagation below the join.
	g := parse.MustParse(`
graph g {
  entry s0
  exit e
  block s0 { if c < 0 then l else r }
  block l { t := s
    goto j }
  block r { t := 9
    goto j }
  block j { x := t + 1
    goto e }
  block e { out(x) }
}
`)
	orig := g.Clone()
	Run(g)
	if keys := instrKeys(g, "j"); keys[0] != "x:=t+1" {
		t.Errorf("unsafe propagation at join: %v", keys)
	}
	checkTraces(t, orig, g, []map[ir.Var]int64{{"c": -1, "s": 5}, {"c": 1, "s": 5}})
}

func TestChainPropagation(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    t := s
    u := t
    x := u + 1
    goto e
  }
  block e { out(x) }
}
`)
	orig := g.Clone()
	Run(g)
	if keys := instrKeys(g, "a"); keys[2] != "x:=s+1" {
		t.Errorf("chain not resolved: %v", keys)
	}
	checkTraces(t, orig, g, []map[ir.Var]int64{{"s": 5}})
}

func TestCopyCycleBecomesSkip(t *testing.T) {
	// y := x; x := y — the second copy turns into x := x ≡ skip.
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    y := x
    x := y
    goto e
  }
  block e { out(x, y) }
}
`)
	orig := g.Clone()
	Run(g)
	for _, in := range g.BlockByName("a").Instrs {
		if in.Key() == "x:=y" {
			t.Errorf("x := y not simplified: %v", instrKeys(g, "a"))
		}
	}
	checkTraces(t, orig, g, []map[ir.Var]int64{{"x": 3}})
}

func TestPropagateIntoCondition(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    t := s
    if t < 10 then b else e
  }
  block b { x := 1
    goto e }
  block e { out(x) }
}
`)
	orig := g.Clone()
	Run(g)
	cond, _ := g.BlockByName("a").Cond()
	if cond.Key() != "s<10" {
		t.Errorf("cond = %v", cond)
	}
	checkTraces(t, orig, g, []map[ir.Var]int64{{"s": 5}, {"s": 50}})
}

func TestLoopCarriedCopyNotPropagated(t *testing.T) {
	// t := s inside the loop, but s changes each iteration: within one
	// iteration the copy holds until s := s+1 kills it.
	g := parse.MustParse(`
graph g {
  entry pre
  exit e
  block pre { goto body }
  block body {
    t := s
    s := s + 1
    x := t + 1
    if s < 5 then body else e
  }
  block e { out(x, t, s) }
}
`)
	orig := g.Clone()
	Run(g)
	// x := t+1 sits after the kill of s; must not become x := s+1.
	if keys := instrKeys(g, "body"); keys[2] != "x:=t+1" {
		t.Errorf("body = %v", keys)
	}
	checkTraces(t, orig, g, []map[ir.Var]int64{{"s": 0}})
}

func checkTraces(t *testing.T, orig, xform *ir.Graph, envs []map[ir.Var]int64) {
	t.Helper()
	for _, env := range envs {
		r1, r2 := interp.Run(orig, env, 0), interp.Run(xform, env, 0)
		if !interp.TraceEqual(r1, r2) {
			t.Errorf("env %v: trace changed %v -> %v\n%s", env, r1.Trace, r2.Trace, printer.String(xform))
		}
	}
}
