// Package bitvec provides dense bit vectors sized to a fixed universe.
//
// All dataflow analyses in this module are bit-vector problems over the
// assignment- or expression-pattern universe of a flow graph (cf. Tables 1–3
// of the paper). Vector length is fixed at creation; operations panic on
// length mismatch, which in this code base always indicates a programming
// error (mixing vectors from different pattern universes), never bad input.
package bitvec

import (
	"math/bits"
	"strings"
)

const wordBits = 64

// Vec is a fixed-length bit vector. The zero value is an empty vector of
// length 0; use New for a sized vector.
type Vec struct {
	n     int
	words []uint64
}

// New returns a zeroed vector with n bits.
func New(n int) Vec {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return Vec{n: n, words: make([]uint64, WordsFor(n))}
}

// WordsFor returns the number of 64-bit words backing an n-bit vector.
func WordsFor(n int) int {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return (n + wordBits - 1) / wordBits
}

// Wrap returns an n-bit vector backed by words, which must have exactly
// WordsFor(n) elements. The contents are used as-is and the storage is
// shared with the caller — this is how the solver arena carves vectors out
// of one flat allocation.
func Wrap(n int, words []uint64) Vec {
	if len(words) != WordsFor(n) {
		panic("bitvec: Wrap with wrong word count")
	}
	return Vec{n: n, words: words}
}

// NewFull returns a vector with all n bits set.
func NewFull(n int) Vec {
	v := New(n)
	v.SetAll()
	return v
}

// Len reports the number of bits in v.
func (v Vec) Len() int { return v.n }

func (v Vec) check(i int) {
	if i < 0 || i >= v.n {
		panic("bitvec: index out of range")
	}
}

func (v Vec) checkLen(o Vec) {
	if v.n != o.n {
		panic("bitvec: length mismatch")
	}
}

// Get reports whether bit i is set.
func (v Vec) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<(i%wordBits)) != 0
}

// Set sets bit i.
func (v Vec) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << (i % wordBits)
}

// Clear clears bit i.
func (v Vec) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << (i % wordBits)
}

// SetTo sets bit i to b.
func (v Vec) SetTo(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// SetAll sets every bit.
func (v Vec) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trim()
}

// ClearAll clears every bit.
func (v Vec) ClearAll() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// trim zeroes the unused high bits of the last word so that Equal and
// PopCount stay exact after SetAll/Not.
func (v Vec) trim() {
	if r := v.n % wordBits; r != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << r) - 1
	}
}

// Copy returns an independent copy of v.
func (v Vec) Copy() Vec {
	w := Vec{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// CopyFrom overwrites v with the contents of o.
func (v Vec) CopyFrom(o Vec) {
	v.checkLen(o)
	copy(v.words, o.words)
}

// And sets v = v ∧ o and reports whether v changed.
func (v Vec) And(o Vec) bool {
	v.checkLen(o)
	changed := false
	for i := range v.words {
		next := v.words[i] & o.words[i]
		if next != v.words[i] {
			changed = true
			v.words[i] = next
		}
	}
	return changed
}

// Or sets v = v ∨ o and reports whether v changed.
func (v Vec) Or(o Vec) bool {
	v.checkLen(o)
	changed := false
	for i := range v.words {
		next := v.words[i] | o.words[i]
		if next != v.words[i] {
			changed = true
			v.words[i] = next
		}
	}
	return changed
}

// AndNot sets v = v ∧ ¬o and reports whether v changed.
func (v Vec) AndNot(o Vec) bool {
	v.checkLen(o)
	changed := false
	for i := range v.words {
		next := v.words[i] &^ o.words[i]
		if next != v.words[i] {
			changed = true
			v.words[i] = next
		}
	}
	return changed
}

// CopyAnd sets v = a ∧ b in one fused pass — the two-operand meet
// kernel: a confluence node's first two incoming facts combine without an
// intermediate CopyFrom sweep.
func (v Vec) CopyAnd(a, b Vec) {
	v.checkLen(a)
	v.checkLen(b)
	vw := v.words
	for i := range vw {
		vw[i] = a.words[i] & b.words[i]
	}
}

// CopyOr sets v = a ∨ b in one fused pass (see CopyAnd).
func (v Vec) CopyOr(a, b Vec) {
	v.checkLen(a)
	v.checkLen(b)
	vw := v.words
	for i := range vw {
		vw[i] = a.words[i] | b.words[i]
	}
}

// GenKillUpdate sets v = gen ∨ (in ∧ ¬kill) and reports whether v
// changed. This is the entire transfer function of a gen/kill dataflow
// problem fused into one word-parallel pass — 64 patterns per machine
// word, no intermediate vector, change detection folded into the same
// sweep. It is the hot loop of dataflow.Solve's dense path; v may alias
// none of the operands' storage regions except bitwise-identically (the
// solver passes v = out[i], which is disjoint from gen/kill/in).
func (v Vec) GenKillUpdate(gen, in, kill Vec) bool {
	v.checkLen(gen)
	v.checkLen(in)
	v.checkLen(kill)
	changed := false
	vw := v.words
	for i := range vw {
		next := gen.words[i] | (in.words[i] &^ kill.words[i])
		if next != vw[i] {
			changed = true
			vw[i] = next
		}
	}
	return changed
}

// OrAndNot sets v = v ∨ (a ∧ ¬b) and reports whether v changed — the
// three-operand accumulation kernel (for example, frontier computations
// of the form ⋃ ¬X accumulate full ∧ ¬X without materializing the
// complement).
func (v Vec) OrAndNot(a, b Vec) bool {
	v.checkLen(a)
	v.checkLen(b)
	changed := false
	vw := v.words
	for i := range vw {
		next := vw[i] | (a.words[i] &^ b.words[i])
		if next != vw[i] {
			changed = true
			vw[i] = next
		}
	}
	return changed
}

// MeetGenKillUpdate fuses a dataflow node's entire visit into one
// word-parallel pass: the meet of the upstream facts
//
//	m = ⋀_{u ∈ ups} outs[u]   (all=true)   or   ⋁_{u ∈ ups} outs[u]
//
// is stored into in, and out is updated to gen ∨ (m ∧ ¬kill) with change
// detection folded into the same sweep. ups must be non-empty. Compared
// to a separate meet and transfer this touches every word exactly once,
// with no intermediate vector and no per-operation length checks — it is
// the inner loop of dataflow.Solve's dense gen/kill path. out may appear
// among the sources (a flow self-loop): for each word the sources are
// read before out is written, which is exactly the serial meet-then-
// transfer order.
func MeetGenKillUpdate(out, gen, kill, in Vec, outs []Vec, ups []int, all bool) bool {
	out.checkLen(gen)
	out.checkLen(kill)
	out.checkLen(in)
	for _, u := range ups {
		out.checkLen(outs[u])
	}
	n := len(out.words)
	if n == 0 {
		return false
	}
	// One and two upstream neighbours cover almost every CFG node; those
	// cases get dedicated loops with the slices resliced to a common
	// length so the compiler can eliminate the bounds checks. Wider joins
	// fall back to sequential meet passes plus one fused update.
	ow, iw, gw, kw := out.words[:n], in.words[:n], gen.words[:n], kill.words[:n]
	changed := false
	switch len(ups) {
	case 1:
		s0 := outs[ups[0]].words[:n]
		for w := 0; w < n; w++ {
			m := s0[w]
			iw[w] = m
			next := gw[w] | (m &^ kw[w])
			if next != ow[w] {
				changed = true
				ow[w] = next
			}
		}
	case 2:
		s0, s1 := outs[ups[0]].words[:n], outs[ups[1]].words[:n]
		if all {
			for w := 0; w < n; w++ {
				m := s0[w] & s1[w]
				iw[w] = m
				next := gw[w] | (m &^ kw[w])
				if next != ow[w] {
					changed = true
					ow[w] = next
				}
			}
		} else {
			for w := 0; w < n; w++ {
				m := s0[w] | s1[w]
				iw[w] = m
				next := gw[w] | (m &^ kw[w])
				if next != ow[w] {
					changed = true
					ow[w] = next
				}
			}
		}
	default:
		if all {
			in.CopyAnd(outs[ups[0]], outs[ups[1]])
			for _, u := range ups[2:] {
				in.And(outs[u])
			}
		} else {
			in.CopyOr(outs[ups[0]], outs[ups[1]])
			for _, u := range ups[2:] {
				in.Or(outs[u])
			}
		}
		return out.GenKillUpdate(gen, in, kill)
	}
	return changed
}

// Not sets v = ¬v.
func (v Vec) Not() {
	for i := range v.words {
		v.words[i] = ^v.words[i]
	}
	v.trim()
}

// Equal reports whether v and o have identical contents.
func (v Vec) Equal(o Vec) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Any reports whether any bit is set.
func (v Vec) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// PopCount returns the number of set bits.
func (v Vec) PopCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls f for every set bit, in increasing order.
func (v Vec) ForEach(f func(i int)) {
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &^= 1 << b
		}
	}
}

// Bits returns the indices of all set bits in increasing order.
func (v Vec) Bits() []int {
	out := make([]int, 0, v.PopCount())
	v.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders v as a 0/1 string, bit 0 first, for test diagnostics.
func (v Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
