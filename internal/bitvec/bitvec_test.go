package bitvec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("len = %d", v.Len())
	}
	if v.Any() {
		t.Error("fresh vector has bits set")
	}
	v.Set(0)
	v.Set(64)
	v.Set(129)
	for _, i := range []int{0, 64, 129} {
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.Get(1) || v.Get(63) || v.Get(128) {
		t.Error("unexpected bit set")
	}
	if got := v.PopCount(); got != 3 {
		t.Errorf("popcount = %d", got)
	}
	v.Clear(64)
	if v.Get(64) {
		t.Error("clear failed")
	}
	v.SetTo(64, true)
	if !v.Get(64) {
		t.Error("SetTo(true) failed")
	}
	v.SetTo(64, false)
	if v.Get(64) {
		t.Error("SetTo(false) failed")
	}
}

func TestSetAllAndNotRespectLength(t *testing.T) {
	v := New(70)
	v.SetAll()
	if got := v.PopCount(); got != 70 {
		t.Errorf("popcount after SetAll = %d, want 70", got)
	}
	v.Not()
	if v.Any() {
		t.Error("Not(SetAll) left bits set")
	}
	v.Not()
	if got := v.PopCount(); got != 70 {
		t.Errorf("popcount after double Not = %d, want 70", got)
	}
	if !v.Equal(NewFull(70)) {
		t.Error("NewFull differs from SetAll")
	}
}

func TestBooleanOpsAndChangeReporting(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(3)
	a.Set(77)
	b.Set(77)
	b.Set(99)

	c := a.Copy()
	if changed := c.And(b); !changed {
		t.Error("And reported no change")
	}
	if !reflect.DeepEqual(c.Bits(), []int{77}) {
		t.Errorf("And bits = %v", c.Bits())
	}
	if changed := c.And(b); changed {
		t.Error("idempotent And reported change")
	}

	c = a.Copy()
	if changed := c.Or(b); !changed {
		t.Error("Or reported no change")
	}
	if !reflect.DeepEqual(c.Bits(), []int{3, 77, 99}) {
		t.Errorf("Or bits = %v", c.Bits())
	}

	c = a.Copy()
	if changed := c.AndNot(b); !changed {
		t.Error("AndNot reported no change")
	}
	if !reflect.DeepEqual(c.Bits(), []int{3}) {
		t.Errorf("AndNot bits = %v", c.Bits())
	}
}

func TestCopySemantics(t *testing.T) {
	a := New(10)
	a.Set(5)
	b := a.Copy()
	b.Set(6)
	if a.Get(6) {
		t.Error("Copy shares storage")
	}
	c := New(10)
	c.CopyFrom(a)
	if !c.Equal(a) {
		t.Error("CopyFrom incomplete")
	}
}

func TestEqualLengthSensitive(t *testing.T) {
	if New(5).Equal(New(6)) {
		t.Error("vectors of different length equal")
	}
}

func TestForEachOrder(t *testing.T) {
	v := New(200)
	want := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, i := range want {
		v.Set(i)
	}
	if got := v.Bits(); !reflect.DeepEqual(got, want) {
		t.Errorf("Bits = %v, want %v", got, want)
	}
}

func TestString(t *testing.T) {
	v := New(4)
	v.Set(1)
	v.Set(3)
	if got := v.String(); got != "0101" {
		t.Errorf("String = %q", got)
	}
}

func TestMismatchedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("And on mismatched lengths did not panic")
		}
	}()
	New(5).And(New(6))
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Get out of range did not panic")
		}
	}()
	New(5).Get(5)
}

// Property: De Morgan over random vectors — ¬(a ∧ b) == ¬a ∨ ¬b.
func TestQuickDeMorgan(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%150 + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			a.SetTo(i, rng.Intn(2) == 0)
			b.SetTo(i, rng.Intn(2) == 0)
		}
		left := a.Copy()
		left.And(b)
		left.Not()
		na, nb := a.Copy(), b.Copy()
		na.Not()
		nb.Not()
		na.Or(nb)
		return left.Equal(na)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PopCount(a ∨ b) + PopCount(a ∧ b) == PopCount(a) + PopCount(b).
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%150 + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			a.SetTo(i, rng.Intn(2) == 0)
			b.SetTo(i, rng.Intn(2) == 0)
		}
		or, and := a.Copy(), a.Copy()
		or.Or(b)
		and.And(b)
		return or.PopCount()+and.PopCount() == a.PopCount()+b.PopCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
