package bitvec

// Word-boundary tests for the fused three-operand kernels. The widths
// exercise every boundary class: sub-word (1, 63), exactly one word (64),
// one word plus a bit (65), and just under two words (127). Contents are
// driven from a seeded reference model over individual bits, so every
// (gen, in, kill) combination at every lane — including the partial last
// word — is checked against the naive per-bit definition.

import (
	"math/rand"
	"testing"
)

var kernelWidths = []int{1, 63, 64, 65, 127}

// fill sets each bit of v with probability num/den under rng, mirroring
// the same decisions into the model slice.
func fill(v Vec, model []bool, rng *rand.Rand, num, den int) {
	for i := 0; i < v.Len(); i++ {
		b := rng.Intn(den) < num
		v.SetTo(i, b)
		model[i] = b
	}
}

func checkAgainstModel(t *testing.T, tag string, v Vec, model []bool) {
	t.Helper()
	for i := 0; i < v.Len(); i++ {
		if v.Get(i) != model[i] {
			t.Fatalf("%s: bit %d = %v, want %v", tag, i, v.Get(i), model[i])
		}
	}
}

func TestGenKillUpdateMatchesPerBitDefinition(t *testing.T) {
	for _, n := range kernelWidths {
		rng := rand.New(rand.NewSource(int64(n)))
		gen, in, kill, dst := New(n), New(n), New(n), New(n)
		mg, mi, mk, md := make([]bool, n), make([]bool, n), make([]bool, n), make([]bool, n)
		for round := 0; round < 64; round++ {
			fill(gen, mg, rng, 1, 3)
			fill(in, mi, rng, 1, 2)
			fill(kill, mk, rng, 1, 3)
			fill(dst, md, rng, 1, 2)

			wantChanged := false
			for i := 0; i < n; i++ {
				next := mg[i] || (mi[i] && !mk[i])
				if next != md[i] {
					wantChanged = true
				}
				md[i] = next
			}
			if got := dst.GenKillUpdate(gen, in, kill); got != wantChanged {
				t.Fatalf("width %d round %d: GenKillUpdate changed=%v, want %v", n, round, got, wantChanged)
			}
			checkAgainstModel(t, "GenKillUpdate", dst, md)

			// Idempotence: a second application from the same inputs must
			// report no change (the solver's fixpoint test relies on it).
			if dst.GenKillUpdate(gen, in, kill) {
				t.Fatalf("width %d round %d: GenKillUpdate not idempotent", n, round)
			}
		}
	}
}

func TestGenKillUpdateSingleBitSweep(t *testing.T) {
	// Exhaustive single-lane sweep: for every width and every bit
	// position, all 8 (gen, in, kill) combinations at that position.
	for _, n := range kernelWidths {
		for pos := 0; pos < n; pos++ {
			for mask := 0; mask < 8; mask++ {
				gen, in, kill, dst := New(n), New(n), New(n), New(n)
				g, i, k := mask&1 != 0, mask&2 != 0, mask&4 != 0
				gen.SetTo(pos, g)
				in.SetTo(pos, i)
				kill.SetTo(pos, k)
				want := g || (i && !k)
				changed := dst.GenKillUpdate(gen, in, kill)
				if dst.Get(pos) != want {
					t.Fatalf("width %d pos %d mask %b: got %v, want %v", n, pos, mask, dst.Get(pos), want)
				}
				if changed != want {
					t.Fatalf("width %d pos %d mask %b: changed=%v, want %v (dst started zero)", n, pos, mask, changed, want)
				}
				if got := dst.PopCount(); got != b2i(want) {
					t.Fatalf("width %d pos %d mask %b: popcount %d, stray bits set", n, pos, mask, got)
				}
			}
		}
	}
}

func TestOrAndNotMatchesPerBitDefinition(t *testing.T) {
	for _, n := range kernelWidths {
		rng := rand.New(rand.NewSource(int64(n) * 31))
		a, b, dst := New(n), New(n), New(n)
		ma, mb, md := make([]bool, n), make([]bool, n), make([]bool, n)
		for round := 0; round < 64; round++ {
			fill(a, ma, rng, 1, 2)
			fill(b, mb, rng, 1, 3)
			fill(dst, md, rng, 1, 2)

			wantChanged := false
			for i := 0; i < n; i++ {
				next := md[i] || (ma[i] && !mb[i])
				if next != md[i] {
					wantChanged = true
				}
				md[i] = next
			}
			if got := dst.OrAndNot(a, b); got != wantChanged {
				t.Fatalf("width %d round %d: OrAndNot changed=%v, want %v", n, round, got, wantChanged)
			}
			checkAgainstModel(t, "OrAndNot", dst, md)
			if dst.OrAndNot(a, b) {
				t.Fatalf("width %d round %d: OrAndNot not idempotent", n, round)
			}
		}
	}
}

func TestKernelsKeepHighBitsClear(t *testing.T) {
	// The unused high bits of the last word must stay zero through the
	// kernels, or Equal/PopCount would go wrong on 1, 63, 65, 127.
	for _, n := range kernelWidths {
		full := NewFull(n)
		dst := New(n)
		dst.GenKillUpdate(full, full, New(n))
		if dst.PopCount() != n {
			t.Fatalf("width %d: GenKillUpdate popcount %d, want %d", n, dst.PopCount(), n)
		}
		if !dst.Equal(full) {
			t.Fatalf("width %d: GenKillUpdate result != full", n)
		}
		dst2 := New(n)
		dst2.OrAndNot(full, New(n))
		if dst2.PopCount() != n || !dst2.Equal(full) {
			t.Fatalf("width %d: OrAndNot high-bit leak", n)
		}
	}
}

func TestKernelLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GenKillUpdate with mismatched widths did not panic")
		}
	}()
	New(64).GenKillUpdate(New(64), New(63), New(64))
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
