package paths

import (
	"testing"

	"assignmentmotion/internal/am"
	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/lcm"
	"assignmentmotion/internal/mr"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/printer"
)

const diamond = `
graph d {
  entry s
  exit e
  block s { if c < 0 then l else r }
  block l {
    x := a + b
    z := a + b
    goto e
  }
  block r {
    x := 1
    goto e
  }
  block e { out(x, z) }
}
`

func TestWalkCountsPerPath(t *testing.T) {
	g := parse.MustParse(diamond)
	left, ok := Walk(g, []bool{true}, 0)
	if !ok {
		t.Fatal("walk bound hit")
	}
	if left.Expressions != 2 || left.Assignments != 2 || left.Blocks != 3 {
		t.Errorf("left = %+v", left)
	}
	right, _ := Walk(g, []bool{false}, 0)
	if right.Expressions != 0 || right.Assignments != 1 {
		t.Errorf("right = %+v", right)
	}
	// Missing decisions default to false (the right arm).
	def, _ := Walk(g, nil, 0)
	if def != right {
		t.Errorf("default walk = %+v, want %+v", def, right)
	}
}

func TestWalkBoundOnCycle(t *testing.T) {
	g := parse.MustParse(`
graph loop {
  entry a
  exit e
  block a { goto b }
  block b { if x < 1 then b else e }
  block e { out(x) }
}
`)
	// Always taking the first successor loops forever; the bound fires.
	if _, ok := Walk(g, []bool{true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true, true}, 8); ok {
		t.Error("cyclic walk terminated unexpectedly")
	}
	// Exiting immediately works.
	if _, ok := Walk(g, []bool{false}, 8); !ok {
		t.Error("exit path did not terminate")
	}
}

func TestAcyclic(t *testing.T) {
	if !Acyclic(parse.MustParse(diamond)) {
		t.Error("diamond reported cyclic")
	}
	g := parse.MustParse(`
graph loop {
  entry a
  exit e
  block a { goto b }
  block b { if x < 1 then b else e }
  block e { out(x) }
}
`)
	if Acyclic(g) {
		t.Error("loop reported acyclic")
	}
}

func TestEnumerate(t *testing.T) {
	g := parse.MustParse(diamond)
	decs := Enumerate(g, 0)
	if len(decs) != 2 {
		t.Fatalf("paths = %v", decs)
	}
	// Nested diamonds multiply.
	g2 := cfggen.Structured(3, cfggen.Config{Size: 6, NoLoops: true})
	if !Acyclic(g2) {
		t.Fatal("NoLoops produced a cycle")
	}
	decs2 := Enumerate(g2, 0)
	if len(decs2) == 0 {
		t.Fatal("no paths enumerated")
	}
	// Every enumerated decision string must reach the exit.
	for _, d := range decs2 {
		if _, ok := Walk(g2, d, 0); !ok {
			t.Errorf("decisions %v did not reach the exit", d)
		}
	}
}

func TestEnumeratePanicsOnCycle(t *testing.T) {
	g := parse.MustParse(`
graph loop {
  entry a
  exit e
  block a { goto b }
  block b { if x < 1 then b else e }
  block e { out(x) }
}
`)
	defer func() {
		if recover() == nil {
			t.Error("no panic on cyclic graph")
		}
	}()
	Enumerate(g, 0)
}

// TestAllPathsExpressionOptimality is the exact (non-sampled) Theorem 5.2
// check on loop-free programs: on EVERY path, the global algorithm's
// result evaluates at most as many expressions as the original and as
// every EM/AM-universe rival.
func TestAllPathsExpressionOptimality(t *testing.T) {
	rivals := map[string]func(*ir.Graph){
		"original":      func(*ir.Graph) {},
		"mr":            func(g *ir.Graph) { mr.Run(g) },
		"em":            func(g *ir.Graph) { lcm.Run(g) },
		"am":            func(g *ir.Graph) { am.Run(g) },
		"am-restricted": func(g *ir.Graph) { am.RunRestricted(g) },
	}
	for seed := int64(0); seed < 30; seed++ {
		base := cfggen.Structured(seed, cfggen.Config{Size: 9, NoLoops: true})
		glob := base.Clone()
		core.Optimize(glob)
		for name, run := range rivals {
			rival := base.Clone()
			run(rival)
			ok, detail := DominatesOnAllPaths(glob, rival, 4096)
			if !ok {
				t.Errorf("seed %d: globalg not path-dominant over %s: %s\nglob:\n%srival:\n%s",
					seed, name, detail, printer.String(glob), printer.String(rival))
			}
		}
	}
}

// TestAllPathsTempDominance: on every path, the flushed result uses at
// most as many temporary assignments as the unflushed one.
func TestAllPathsTempDominance(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		busy := cfggen.Structured(seed, cfggen.Config{Size: 9, NoLoops: true})
		busy.SplitCriticalEdges()
		core.Initialize(busy)
		am.Run(busy)
		lazy := busy.Clone()
		core.Optimize(lazy) // includes the flush
		for _, d := range Enumerate(busy, 4096) {
			cb, okb := Walk(busy, d, 0)
			cl, okl := Walk(lazy, d, 0)
			if !okb || !okl {
				t.Fatalf("seed %d: walk bound hit", seed)
			}
			if cl.TempAssignments > cb.TempAssignments {
				t.Errorf("seed %d decisions %v: flush increased temp assignments %d -> %d",
					seed, d, cb.TempAssignments, cl.TempAssignments)
			}
		}
	}
}
