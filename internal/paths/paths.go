// Package paths implements the paper's path-based cost formalism
// literally: for programs and paths p ∈ P[s,e], the occurrence counts
// #(p_G, π) of a pattern π on p (§2), and the induced per-path comparison
// underlying the optimality preorders of Definition 3.8.
//
// Two graphs related by EM/AM transformations have the same branch
// structure along corresponding executions (motion never adds, removes,
// or reorders branch conditions on a path), so a path is identified by
// its sequence of branch decisions. Walking both graphs with the same
// decision string therefore visits corresponding paths, and for loop-free
// programs all paths can be enumerated exhaustively — giving an exact,
// all-paths check of Theorem 5.2 instead of a sampled one.
package paths

import (
	"fmt"

	"assignmentmotion/internal/ir"
)

// Cost aggregates the static occurrence counts along one path.
type Cost struct {
	// Expressions is Σ_ε #(p, ε): occurrences of non-trivial terms.
	Expressions int
	// Assignments is Σ_α #(p, α): assignment instructions on the path.
	Assignments int
	// TempAssignments counts assignments whose target is a temporary.
	TempAssignments int
	// Blocks is the path length in blocks.
	Blocks int
}

// Walk follows g from the entry, taking decisions[i] at the i-th branch
// node encountered (true = first successor); a missing decision defaults
// to false. It returns the accumulated static cost. maxBlocks bounds the
// walk so that cyclic graphs cannot loop forever; the bool result is
// false when the bound was hit before reaching the exit.
func Walk(g *ir.Graph, decisions []bool, maxBlocks int) (Cost, bool) {
	if maxBlocks <= 0 {
		maxBlocks = 4 * len(g.Blocks)
	}
	var c Cost
	cur := g.Entry
	branch := 0
	var terms []ir.Term
	for {
		if c.Blocks >= maxBlocks {
			return c, false
		}
		b := g.Block(cur)
		c.Blocks++
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Kind == ir.KindAssign {
				c.Assignments++
				if g.IsTemp(in.LHS) {
					c.TempAssignments++
				}
			}
			terms = in.Terms(terms[:0])
			for _, t := range terms {
				if !t.Trivial() {
					c.Expressions++
				}
			}
		}
		switch len(b.Succs) {
		case 0:
			return c, true
		case 1:
			cur = b.Succs[0]
		case 2:
			take := false
			if branch < len(decisions) {
				take = decisions[branch]
			}
			branch++
			if take {
				cur = b.Succs[0]
			} else {
				cur = b.Succs[1]
			}
		default:
			panic(fmt.Sprintf("paths: block %s has %d successors", b.Name, len(b.Succs)))
		}
	}
}

// Acyclic reports whether g contains no cycle.
func Acyclic(g *ir.Graph) bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(g.Blocks))
	var visit func(ir.NodeID) bool
	visit = func(n ir.NodeID) bool {
		switch color[n] {
		case grey:
			return false
		case black:
			return true
		}
		color[n] = grey
		for _, s := range g.Block(n).Succs {
			if !visit(s) {
				return false
			}
		}
		color[n] = black
		return true
	}
	return visit(g.Entry)
}

// Enumerate returns the decision strings of all s→e paths of an acyclic
// graph, up to max (0 = unlimited). It panics on cyclic graphs — use
// Walk with explicit decisions there.
func Enumerate(g *ir.Graph, max int) [][]bool {
	if !Acyclic(g) {
		panic("paths: Enumerate on cyclic graph")
	}
	var out [][]bool
	var walk func(n ir.NodeID, decisions []bool)
	walk = func(n ir.NodeID, decisions []bool) {
		if max > 0 && len(out) >= max {
			return
		}
		b := g.Block(n)
		switch len(b.Succs) {
		case 0:
			out = append(out, append([]bool(nil), decisions...))
		case 1:
			walk(b.Succs[0], decisions)
		case 2:
			walk(b.Succs[0], append(decisions, true))
			walk(b.Succs[1], append(decisions, false))
		}
	}
	walk(g.Entry, nil)
	return out
}

// DominatesOnAllPaths reports whether, on every corresponding path of the
// acyclic graphs a and b (identified by branch decisions), a's expression
// count is ≤ b's. It returns a description of the first violating path
// otherwise.
func DominatesOnAllPaths(a, b *ir.Graph, max int) (bool, string) {
	decs := Enumerate(b, max)
	for _, d := range decs {
		ca, oka := Walk(a, d, 0)
		cb, okb := Walk(b, d, 0)
		if !oka || !okb {
			return false, fmt.Sprintf("walk bound hit on decisions %v", d)
		}
		if ca.Expressions > cb.Expressions {
			return false, fmt.Sprintf("decisions %v: %d > %d expressions", d, ca.Expressions, cb.Expressions)
		}
	}
	return true, ""
}
