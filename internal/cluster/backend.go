package cluster

// The remote cache tier. Engine cache misses consult the owning peer's
// persistent store before computing locally, so a node serving a job it
// does not own (coordinator fallback, redistribution after a peer death,
// a forwarded request) still benefits from the cluster's caches.
//
// The wrapper is deliberately read-only toward the cluster:
//
//   - Get tries the local store first, then — only for engine cache keys,
//     which start with the 64-hex graph fingerprint — fetches the entry
//     from the key's owner. Remote hits are NOT written back locally:
//     ownership stays with the peer, and the defensive decodeEntry layer
//     upstream treats any corrupt or stale payload as a miss.
//   - Put always writes the local store only. A node never pushes entries
//     into a peer's store, so the degraded-never-cached invariant reduces
//     to each engine's own local discipline — which PR 4 already tests.
//
// Incremental-reuse keys ("incr|...", "incr-heads|...") never route:
// region manifests describe the local node's warm history and are
// meaningless on a peer.
//
// Fetches are best-effort with a short timeout and no retries — on any
// failure the engine simply computes, which is always correct.

import (
	"context"
	"io"
	"net/http"
	"net/url"
)

// Backend mirrors engine.Backend structurally (and therefore also
// incr.Store) without importing the engine package.
type Backend interface {
	Get(key string) ([]byte, bool)
	Put(key string, data []byte) error
}

// CachePath is the peer-to-peer cache fetch endpoint. The handler (in
// internal/server) reads the node's own store directly — it never goes
// through a RemoteBackend, so fetches cannot recurse.
const CachePath = "/internal/v1/cache"

// fingerprintHexLen is the length of ir.Fingerprint.String(): a sha256
// in hex.
const fingerprintHexLen = 64

// routableKey extracts the fingerprint prefix of an engine cache key
// ("<64 hex>|passes=..."). Any other key shape — notably the incr
// manifest keys — reports false and stays local.
func routableKey(key string) (fp string, ok bool) {
	if len(key) <= fingerprintHexLen || key[fingerprintHexLen] != '|' {
		return "", false
	}
	for i := 0; i < fingerprintHexLen; i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", false
		}
	}
	return key[:fingerprintHexLen], true
}

// remoteBackend is the Backend the server hands its engines in cluster
// mode.
type remoteBackend struct {
	node  *Node
	local Backend
}

// RemoteBackend wraps the node's local store with the remote fetch tier.
func (n *Node) RemoteBackend(local Backend) Backend {
	return &remoteBackend{node: n, local: local}
}

func (b *remoteBackend) Get(key string) ([]byte, bool) {
	if data, ok := b.local.Get(key); ok {
		return data, true
	}
	fp, ok := routableKey(key)
	if !ok {
		return nil, false
	}
	// Route by fingerprint, not the full key, so cache fetches agree with
	// job routing about who owns the graph.
	route := b.node.Route(fp)
	if route.Local || len(route.Peers) == 0 {
		return nil, false
	}
	data, ok := b.node.fetchEntry(route.Peers[0], key)
	if !ok {
		b.node.met.remoteCacheMisses.Add(1)
		return nil, false
	}
	b.node.met.remoteCacheHits.Add(1)
	return data, true
}

func (b *remoteBackend) Put(key string, data []byte) error {
	return b.local.Put(key, data)
}

// fetchEntry GETs one cache entry from a peer. Any failure is a miss.
func (n *Node) fetchEntry(peer, key string) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.fetchTimeout())
	defer cancel()
	u := peer + CachePath + "?key=" + url.QueryEscape(key)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, false
	}
	req.Header.Set(ForwardedHeader, n.cfg.Self)
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBody))
	if err != nil || len(data) == 0 {
		return nil, false
	}
	return data, true
}
