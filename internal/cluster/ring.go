package cluster

// The consistent-hash ring. Each member (a node's advertised base URL)
// owns a contiguous share of the 64-bit hash space through a fixed set
// of virtual nodes, so adding or removing one member reshuffles only
// ~1/N of the keyspace. Jobs route by graph fingerprint, which keeps
// each node's memory/disk/region caches hot for its own shard.
//
// The ring is immutable after construction: membership is static
// configuration (the -peers flag), and failure handling is the health
// layer's job — a down member stays in the ring so its shard snaps back
// to it on recovery, and routing simply skips it while it is down.

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// vnode is one virtual point of a member on the ring.
type vnode struct {
	hash   uint64
	member string
}

// ring is the immutable consistent-hash ring.
type ring struct {
	vnodes  []vnode  // sorted by hash
	members []string // distinct members, sorted
}

// hashKey positions a key (or a virtual node label) on the ring. It
// truncates a sha256: vnode labels are highly structured (the same URL
// with a small integer suffix), and weaker string hashes cluster them
// badly enough to skew member shares by 10x. A cryptographic hash keeps
// placement uniform no matter how low-entropy the labels are, and ring
// construction is a one-time cost.
func hashKey(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds a ring with `replicas` virtual nodes per member.
// Duplicate members collapse; an empty member list yields an empty ring
// (every Replicas call returns nil).
func newRing(members []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultVirtualNodes
	}
	seen := map[string]bool{}
	r := &ring{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		r.members = append(r.members, m)
	}
	sort.Strings(r.members)
	r.vnodes = make([]vnode, 0, len(r.members)*replicas)
	for _, m := range r.members {
		for i := 0; i < replicas; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: hashKey(m + "#" + itoa(i)), member: m})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		if r.vnodes[i].hash != r.vnodes[j].hash {
			return r.vnodes[i].hash < r.vnodes[j].hash
		}
		// Hash ties (vanishingly rare) break deterministically by name so
		// every node computes the identical ring.
		return r.vnodes[i].member < r.vnodes[j].member
	})
	return r
}

// itoa avoids strconv for the tiny vnode labels.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// Replicas returns every member in ring preference order for key: the
// owner (first virtual node at or after the key's hash), then the
// distinct members of the successive virtual nodes. The full membership
// always appears exactly once, so a caller can walk the list as a
// fail-over sequence.
func (r *ring) Replicas(key string) []string {
	if len(r.vnodes) == 0 {
		return nil
	}
	h := hashKey(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	out := make([]string, 0, len(r.members))
	seen := map[string]bool{}
	for k := 0; k < len(r.vnodes) && len(out) < len(r.members); k++ {
		m := r.vnodes[(i+k)%len(r.vnodes)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// Owner returns the primary member for key ("" on an empty ring),
// ignoring health — the health-aware preference walk lives in
// Node.Route.
func (r *ring) Owner(key string) string {
	if reps := r.Replicas(key); len(reps) > 0 {
		return reps[0]
	}
	return ""
}

// Shares reports each member's fraction of the hash space — the ring
// ownership gauge exported on /metrics, and a balance check in tests.
func (r *ring) Shares() map[string]float64 {
	shares := make(map[string]float64, len(r.members))
	if len(r.vnodes) == 0 {
		return shares
	}
	if len(r.vnodes) == 1 {
		shares[r.vnodes[0].member] = 1
		return shares
	}
	const whole = float64(1<<63) * 2 // 2^64
	for i, vn := range r.vnodes {
		// Unsigned subtraction wraps, which is exactly the segment length
		// on a circular space (i == 0 is the wrap-around segment).
		span := vn.hash - r.vnodes[(i+len(r.vnodes)-1)%len(r.vnodes)].hash
		shares[vn.member] += float64(span) / whole
	}
	return shares
}

// Members returns the ring membership, sorted.
func (r *ring) Members() []string { return r.members }
