package cluster

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"assignmentmotion/internal/fault"
)

// fakePeer is an httptest peer that records forwarded requests.
type fakePeer struct {
	ts      *httptest.Server
	hits    atomic.Int64
	handler atomic.Value // func(w, r)
}

func newFakePeer(t *testing.T, h http.HandlerFunc) *fakePeer {
	t.Helper()
	p := &fakePeer{}
	p.handler.Store(h)
	p.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p.hits.Add(1)
		p.handler.Load().(http.HandlerFunc)(w, r)
	}))
	t.Cleanup(p.ts.Close)
	return p
}

func okHandler(body string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, body)
	}
}

func forwardNode(t *testing.T, peers ...string) *Node {
	t.Helper()
	return newTestNode(t, Config{
		Self:         "http://self.test:1",
		Peers:        peers,
		HedgeAfter:   -1, // individual tests opt in
		Retries:      -1,
		RetryBackoff: time.Millisecond,
	})
}

func TestForwardRelaysResponse(t *testing.T) {
	peer := newFakePeer(t, func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get(ForwardedHeader); got != "http://self.test:1" {
			t.Errorf("forwarded header = %q", got)
		}
		body, _ := io.ReadAll(r.Body)
		if string(body) != `{"x":1}` {
			t.Errorf("forwarded body = %q", body)
		}
		okHandler(`{"ok":true}`)(w, r)
	})
	n := forwardNode(t, peer.ts.URL)
	res, err := n.Forward(context.Background(), []string{peer.ts.URL}, "/v1/optimize", []byte(`{"x":1}`))
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if res.Status != 200 || string(res.Body) != `{"ok":true}` || res.Peer != peer.ts.URL {
		t.Fatalf("result = %+v", res)
	}
	if res.Hedged {
		t.Fatal("primary win reported as hedged")
	}
}

// Peer answers (4xx/500/504) are the owner's real verdicts: relayed,
// never failed over.
func TestForwardRelaysNonRetryableStatus(t *testing.T) {
	bad := newFakePeer(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no such pass", http.StatusBadRequest)
	})
	good := newFakePeer(t, okHandler(`{}`))
	n := forwardNode(t, bad.ts.URL, good.ts.URL)
	res, err := n.Forward(context.Background(), []string{bad.ts.URL, good.ts.URL}, "/p", nil)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if res.Status != http.StatusBadRequest || res.Peer != bad.ts.URL {
		t.Fatalf("result = %+v, want the 400 relayed from the first peer", res)
	}
	if good.hits.Load() != 0 {
		t.Fatal("failover ran despite a definitive peer answer")
	}
}

// Shedding statuses fail over to the next replica.
func TestForwardFailsOverOnShed(t *testing.T) {
	shed := newFakePeer(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "busy", http.StatusTooManyRequests)
	})
	good := newFakePeer(t, okHandler(`{"winner":true}`))
	n := forwardNode(t, shed.ts.URL, good.ts.URL)
	res, err := n.Forward(context.Background(), []string{shed.ts.URL, good.ts.URL}, "/p", nil)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if res.Peer != good.ts.URL || string(res.Body) != `{"winner":true}` {
		t.Fatalf("result = %+v", res)
	}
	// Shed is not a transport failure: the peer must stay routable.
	if !n.Healthy(shed.ts.URL) {
		t.Fatal("shedding peer was marked down")
	}
}

// A transport-dead peer is marked down and the request fails over.
func TestForwardTransportErrorMarksDownAndFailsOver(t *testing.T) {
	dead := newFakePeer(t, okHandler(`{}`))
	dead.ts.Close() // connection refused from here on
	good := newFakePeer(t, okHandler(`{"ok":1}`))
	n := forwardNode(t, dead.ts.URL, good.ts.URL)
	res, err := n.Forward(context.Background(), []string{dead.ts.URL, good.ts.URL}, "/p", nil)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if res.Peer != good.ts.URL {
		t.Fatalf("winner = %q, want the live peer", res.Peer)
	}
	if n.Healthy(dead.ts.URL) {
		t.Fatal("dead peer not marked down")
	}
	_, failures := n.Metrics().ForwardCounts()
	if failures[dead.ts.URL] == 0 {
		t.Fatal("no forward failure recorded for the dead peer")
	}
}

// Exhausting every candidate yields a typed peer-unavailable error.
func TestForwardExhaustionIsPeerUnavailable(t *testing.T) {
	dead := newFakePeer(t, okHandler(`{}`))
	dead.ts.Close()
	n := newTestNode(t, Config{
		Self:         "http://self.test:1",
		Peers:        []string{dead.ts.URL},
		HedgeAfter:   -1,
		Retries:      1,
		RetryBackoff: time.Millisecond,
	})
	_, err := n.Forward(context.Background(), []string{dead.ts.URL}, "/p", nil)
	if err == nil {
		t.Fatal("exhausted forward succeeded")
	}
	if !errors.Is(err, fault.ErrPeerUnavailable) {
		t.Fatalf("error %v is not ErrPeerUnavailable", err)
	}
	var pe *fault.PeerError
	if !errors.As(err, &pe) || pe.Attempts != 2 {
		t.Fatalf("error %#v, want PeerError with 2 attempts (1 try + 1 retry)", err)
	}
	if fault.HTTPStatus(err) != http.StatusServiceUnavailable {
		t.Fatalf("HTTPStatus = %d, want 503", fault.HTTPStatus(err))
	}
	if n.Metrics().retries.Load() != 1 {
		t.Fatalf("retries = %d, want 1", n.Metrics().retries.Load())
	}

	// An empty candidate list short-circuits to the same taxonomy.
	_, err = n.Forward(context.Background(), nil, "/p", nil)
	if !errors.Is(err, fault.ErrPeerUnavailable) {
		t.Fatalf("empty-candidate error %v is not ErrPeerUnavailable", err)
	}
}

// A slow primary triggers a hedge to the next replica; the hedge wins
// and the primary is canceled.
func TestForwardHedgesSlowPrimary(t *testing.T) {
	primaryCanceled := make(chan struct{}, 1)
	slow := newFakePeer(t, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			primaryCanceled <- struct{}{}
		case <-time.After(5 * time.Second):
		}
	})
	fast := newFakePeer(t, okHandler(`{"fast":true}`))
	n := newTestNode(t, Config{
		Self:       "http://self.test:1",
		Peers:      []string{slow.ts.URL, fast.ts.URL},
		HedgeAfter: 20 * time.Millisecond,
		Retries:    -1,
	})
	start := time.Now()
	res, err := n.Forward(context.Background(), []string{slow.ts.URL, fast.ts.URL}, "/p", nil)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if res.Peer != fast.ts.URL || !res.Hedged {
		t.Fatalf("result = %+v, want hedged win from the fast peer", res)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedged forward took %v; the slow primary was awaited", elapsed)
	}
	launched, wins := n.Metrics().HedgeCount()
	if launched != 1 || wins != 1 {
		t.Fatalf("hedge metrics launched=%d wins=%d, want 1/1", launched, wins)
	}
	select {
	case <-primaryCanceled:
	case <-time.After(2 * time.Second):
		t.Fatal("losing primary attempt was not canceled")
	}
	// The slow peer answered nothing wrong — it must not be down.
	if !n.Healthy(slow.ts.URL) {
		t.Fatal("slow peer was marked down by hedging")
	}
}

// The caller's deadline bounds the whole retry budget.
func TestForwardHonorsContextDeadline(t *testing.T) {
	stall := newFakePeer(t, func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	})
	n := newTestNode(t, Config{
		Self:       "http://self.test:1",
		Peers:      []string{stall.ts.URL},
		HedgeAfter: -1,
		Retries:    5,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := n.Forward(ctx, []string{stall.ts.URL}, "/p", nil)
	if err == nil {
		t.Fatal("deadline-bounded forward succeeded")
	}
	if !errors.Is(err, fault.ErrPeerUnavailable) {
		t.Fatalf("error %v is not ErrPeerUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("forward ran %v past its deadline", elapsed)
	}
}
