package cluster

// The forwarding client: bounded retries with backoff across the ring
// replicas of a key, plus hedging — when the primary has not answered
// within HedgeAfter, a second attempt launches against the next replica
// and the first acceptable response wins while every other in-flight
// attempt is canceled. Transport-level failures mark the peer down (the
// prober owns recovery) and fail over to the next candidate immediately;
// overload and gateway statuses (429/502/503) fail over without marking
// down, because the peer is alive and merely shedding. Every other
// status is the peer's real answer and is relayed as-is.
//
// The caller's context bounds the whole operation, so a forwarded
// request spends at most the original request's remaining deadline
// budget across all attempts.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"assignmentmotion/internal/fault"
)

// ForwardedHeader marks a request as already forwarded once. A node that
// receives it always computes locally — forwards never chain, so a
// misconfigured or split-brain ring cannot loop a request.
const ForwardedHeader = "X-Amoptd-Forwarded"

// maxForwardBody bounds a relayed peer response (matches the server's
// own request cap order of magnitude).
const maxForwardBody = 64 << 20

// ForwardResult is the winning peer response of a Forward call.
type ForwardResult struct {
	Peer        string // peer that answered
	Status      int    // its HTTP status (never a retryable one)
	ContentType string
	Body        []byte
	Hedged      bool // true when a hedged attempt won
}

// forwardAttempt is one (peer, retry-cycle) slot in the attempt plan.
type forwardAttempt struct {
	peer  string
	cycle int
	hedge bool
}

// attemptOutcome is what one in-flight attempt reports back.
type attemptOutcome struct {
	att forwardAttempt
	res *ForwardResult
	err error
}

// retryableStatus reports whether a peer status means "try the next
// replica": the peer is alive but shedding (429) or itself failed to
// reach its own dependency (502/503, which includes drain).
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests ||
		code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable
}

// Forward POSTs body to the candidate peers in preference order and
// returns the first acceptable response. peers is typically
// Route(key).Peers. On exhaustion — every attempt hit the wire and died,
// or every peer shed — it returns a *fault.PeerError that maps to 503
// peer-unavailable. A non-retryable peer status (including 4xx/5xx) is
// NOT an error here: it is the owner's real answer, relayed verbatim.
func (n *Node) Forward(ctx context.Context, peers []string, path string, body []byte) (*ForwardResult, error) {
	if len(peers) == 0 {
		return nil, &fault.PeerError{Attempts: 0, Unreachable: true, Err: errors.New("no candidate peers")}
	}

	// The attempt plan: every candidate once per cycle, 1 + retries()
	// cycles. Hedges and failures both just advance through the plan.
	var plan []forwardAttempt
	for c := 0; c <= n.cfg.retries(); c++ {
		for _, p := range peers {
			plan = append(plan, forwardAttempt{peer: p, cycle: c})
		}
	}

	actx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels every losing in-flight attempt

	results := make(chan attemptOutcome, len(plan))
	next := 0 // index into plan of the next attempt to launch
	inflight := 0
	launched := 0
	var lastPeer string
	var lastErr error

	launch := func(hedge bool) {
		att := plan[next]
		att.hedge = hedge
		next++
		inflight++
		launched++
		lastPeer = att.peer
		n.met.forward(att.peer)
		if att.cycle > 0 {
			n.met.retries.Add(1)
		}
		if hedge {
			n.met.hedges.Add(1)
		}
		go func() {
			res, err := n.post(actx, att.peer, path, body)
			select {
			case results <- attemptOutcome{att: att, res: res, err: err}:
			case <-actx.Done():
			}
		}()
	}

	launch(false)

	// One timer drives both hedging and retry backoff: after each event
	// we decide when (and why) the next attempt should start.
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

	arm := func(d time.Duration) {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(d)
	}

	pendingRetry := false // next launch is a failure-driven retry, not a hedge
	hedgeEnabled := n.cfg.hedgeAfter() > 0
	if hedgeEnabled && next < len(plan) {
		arm(n.cfg.hedgeAfter())
	}

	// backoffFor returns the pre-launch delay when the plan crosses into
	// retry cycle c (exponential in c, jittered).
	backoffFor := func(c int) time.Duration {
		if c <= 0 {
			return 0
		}
		d := n.cfg.retryBackoff() << (c - 1)
		return n.health.jitter(d)
	}

	for {
		select {
		case <-ctx.Done():
			return nil, &fault.PeerError{Peer: lastPeer, Attempts: launched, Unreachable: true, Err: ctx.Err()}

		case <-timer.C:
			if next >= len(plan) {
				break
			}
			launch(!pendingRetry)
			pendingRetry = false
			if hedgeEnabled && next < len(plan) {
				arm(n.cfg.hedgeAfter())
			}

		case out := <-results:
			inflight--
			if out.err == nil && !retryableStatus(out.res.Status) {
				if out.att.hedge {
					n.met.hedgeWins.Add(1)
					out.res.Hedged = true
				}
				return out.res, nil
			}
			// Retryable: transport death or a shedding status.
			if out.err != nil {
				lastErr = out.err
				n.met.forwardFailure(out.att.peer)
				n.health.markDown(out.att.peer, out.err.Error())
			} else {
				lastErr = fmt.Errorf("peer %s answered %d", out.att.peer, out.res.Status)
			}
			if next < len(plan) {
				// Fail over. Crossing into a new cycle waits out the retry
				// backoff first; within a cycle the next replica starts now.
				if plan[next].cycle > plan[next-1].cycle {
					pendingRetry = true
					arm(backoffFor(plan[next].cycle))
				} else {
					launch(false)
					if hedgeEnabled && next < len(plan) {
						arm(n.cfg.hedgeAfter())
					}
				}
			} else if inflight == 0 {
				return nil, &fault.PeerError{Peer: lastPeer, Attempts: launched, Unreachable: true, Err: lastErr}
			}
		}
	}
}

// post runs one forwarded POST against one peer.
func (n *Node) post(ctx context.Context, peer, path string, body []byte) (*ForwardResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, n.cfg.Self)
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBody))
	if err != nil {
		return nil, err
	}
	return &ForwardResult{
		Peer:        peer,
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		Body:        data,
	}, nil
}
