package cluster

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// memStore is a minimal local Backend for tests.
type memStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemStore() *memStore { return &memStore{m: map[string][]byte{}} }

func (s *memStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

func (s *memStore) Put(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), data...)
	return nil
}

func (s *memStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

const testFP = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

func TestRoutableKey(t *testing.T) {
	cases := []struct {
		key string
		ok  bool
	}{
		{testFP + "|passes=am|recovery=off|budget=1,2,3", true},
		{testFP, false},                           // no config suffix
		{testFP + "x", false},                     // no separator at 64
		{"incr|v3|passes=am|" + testFP, false},    // incr manifest key
		{"incr-heads|v3|passes=am", false},        // incr heads key
		{strings.ToUpper(testFP) + "|cfg", false}, // not lowercase hex
		{testFP[:63] + "||cfg", false},            // short fingerprint
		{"", false},
	}
	for _, c := range cases {
		fp, ok := routableKey(c.key)
		if ok != c.ok {
			t.Errorf("routableKey(%q) ok = %v, want %v", c.key, ok, c.ok)
		}
		if ok && fp != testFP {
			t.Errorf("routableKey(%q) fp = %q", c.key, fp)
		}
	}
}

// A remote-backend Get consults the key's owner on local miss, and a
// Put never leaves the node.
func TestRemoteBackendFetchesFromOwner(t *testing.T) {
	peerStore := newMemStore()
	key := testFP + "|passes=am|recovery=off|budget=0,0,0"
	peerStore.Put(key, []byte(`{"entry":1}`))

	var fetches int
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != CachePath {
			http.NotFound(w, r)
			return
		}
		fetches++
		data, ok := peerStore.Get(r.URL.Query().Get("key"))
		if !ok {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		w.Write(data)
	}))
	defer peer.Close()

	// Coordinator mode: every fingerprint's owner is the single peer, so
	// the route is never local and the fetch path always exercises.
	n := newTestNode(t, Config{
		Self:  "http://self.test:1",
		Peers: []string{peer.URL},
		Mode:  ModeCoordinator,
	})
	local := newMemStore()
	b := n.RemoteBackend(local)

	// Remote hit: served by the peer, NOT copied into the local store.
	data, ok := b.Get(key)
	if !ok || string(data) != `{"entry":1}` {
		t.Fatalf("Get = %q, %v", data, ok)
	}
	if local.len() != 0 {
		t.Fatal("remote hit was written through to the local store")
	}
	if n.Metrics().remoteCacheHits.Load() != 1 {
		t.Fatalf("remote hits = %d, want 1", n.Metrics().remoteCacheHits.Load())
	}

	// Remote miss.
	missKey := strings.Replace(key, "0123", "ffff", 1)
	if _, ok := b.Get(missKey); ok {
		t.Fatal("miss reported as hit")
	}
	if n.Metrics().remoteCacheMisses.Load() != 1 {
		t.Fatalf("remote misses = %d, want 1", n.Metrics().remoteCacheMisses.Load())
	}

	// Local hit short-circuits the peer.
	before := fetches
	local.Put(key, []byte(`{"local":1}`))
	if data, ok := b.Get(key); !ok || string(data) != `{"local":1}` {
		t.Fatalf("local Get = %q, %v", data, ok)
	}
	if fetches != before {
		t.Fatal("local hit still fetched from the peer")
	}

	// Incremental keys stay local even on miss.
	before = fetches
	if _, ok := b.Get("incr|v3|passes=am|" + testFP); ok {
		t.Fatal("incr key hit out of nowhere")
	}
	if fetches != before {
		t.Fatal("incr key was routed to a peer")
	}

	// Put is local-only.
	if err := b.Put(key+"-put", []byte("x")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, ok := local.Get(key + "-put"); !ok {
		t.Fatal("Put missed the local store")
	}
	if _, ok := peerStore.Get(key + "-put"); ok {
		t.Fatal("Put leaked to the peer store")
	}
}

// A dead owner degrades a remote fetch to a plain miss — never an error.
func TestRemoteBackendDeadPeerIsMiss(t *testing.T) {
	peer := httptest.NewServer(http.NotFoundHandler())
	peer.Close()
	n := newTestNode(t, Config{
		Self:  "http://self.test:1",
		Peers: []string{peer.URL},
		Mode:  ModeCoordinator,
	})
	b := n.RemoteBackend(newMemStore())
	if _, ok := b.Get(testFP + "|cfg"); ok {
		t.Fatal("dead peer produced a hit")
	}
	if n.Metrics().remoteCacheMisses.Load() != 1 {
		t.Fatal("dead-peer fetch not counted as miss")
	}
}

// When the key's route says "local", the backend must not call any peer
// (the owner consults itself via its ordinary store tiers).
func TestRemoteBackendLocalOwnerNoFetch(t *testing.T) {
	var fetched bool
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fetched = true
		http.NotFound(w, r)
	}))
	defer peer.Close()
	n := newTestNode(t, Config{
		Self:  "http://self.test:1",
		Peers: []string{peer.URL},
	})
	n.MarkDown(peer.URL) // all remote candidates gone -> worker owns everything
	b := n.RemoteBackend(newMemStore())
	if _, ok := b.Get(testFP + "|cfg"); ok {
		t.Fatal("phantom hit")
	}
	if fetched {
		t.Fatal("locally-owned key was fetched from a peer")
	}
}
