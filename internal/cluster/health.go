package cluster

// Per-peer health checking. Every peer gets a prober goroutine that GETs
// its /healthz on a fixed interval while the peer is up. A failed probe
// (or a transport failure reported by the forwarding layer) marks the
// peer down; a down peer is re-probed on an exponential backoff with
// jitter, so a dead peer costs a bounded, de-synchronized trickle of
// probes instead of a thundering re-probe herd, and snaps back to the
// regular cadence on the first success.
//
// A draining peer answers /healthz with 503 (the PR 5 drain contract),
// so drain naturally reads as down here and traffic routes away before
// the peer stops serving.

import (
	"context"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// peerState is the health record of one peer.
type peerState struct {
	up           bool
	failures     int           // consecutive probe failures
	backoff      time.Duration // current re-probe delay while down
	lastChange   time.Time
	lastProbeErr string
}

// health owns the probe loops and the up/down map.
type health struct {
	cfg    Config
	client *http.Client
	met    *Metrics

	mu    sync.Mutex
	peers map[string]*peerState
	rng   *rand.Rand

	stop chan struct{}
	wg   sync.WaitGroup
}

func newHealth(cfg Config, client *http.Client, met *Metrics) *health {
	h := &health{
		cfg:    cfg,
		client: client,
		met:    met,
		peers:  map[string]*peerState{},
		rng:    rand.New(rand.NewSource(cfg.seed())),
		stop:   make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		// Peers start up: the first probe corrects an optimistic default
		// within one interval, while a pessimistic default would refuse
		// all routing during startup even when every peer is fine.
		h.peers[p] = &peerState{up: true, backoff: cfg.downBackoff()}
	}
	return h
}

// start launches one prober per peer.
func (h *health) start() {
	for peer := range h.peers {
		h.wg.Add(1)
		go h.probeLoop(peer)
	}
}

func (h *health) close() {
	close(h.stop)
	h.wg.Wait()
}

// healthy reports whether peer is currently routable. Unknown peers
// (never configured) are not.
func (h *health) healthy(peer string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.peers[peer]
	return ok && st.up
}

// markDown records an externally observed failure (a forward that died
// on the wire). The prober owns recovery: the peer stays down until a
// probe succeeds.
func (h *health) markDown(peer string, reason string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.peers[peer]
	if !ok || !st.up {
		return
	}
	st.up = false
	st.failures++
	st.lastChange = time.Now()
	st.lastProbeErr = reason
	h.met.peerDown(peer)
}

// snapshot returns the current up/down view for metrics and /readyz.
func (h *health) snapshot() map[string]bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]bool, len(h.peers))
	for p, st := range h.peers {
		out[p] = st.up
	}
	return out
}

// probeLoop drives one peer: a steady cadence while up, exponential
// backoff with jitter while down.
func (h *health) probeLoop(peer string) {
	defer h.wg.Done()
	timer := time.NewTimer(h.jitter(h.cfg.probeInterval()))
	defer timer.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-timer.C:
		}
		ok, reason := h.probe(peer)
		timer.Reset(h.record(peer, ok, reason))
	}
}

// probe GETs the peer's liveness endpoint once.
func (h *health) probe(peer string) (ok bool, reason string) {
	h.met.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
	if err != nil {
		return false, err.Error()
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false, err.Error()
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, resp.Status
	}
	return true, ""
}

// record folds one probe outcome into the peer's state and returns the
// delay before the next probe.
func (h *health) record(peer string, ok bool, reason string) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.peers[peer]
	if st == nil {
		return h.cfg.probeInterval()
	}
	if ok {
		if !st.up {
			st.up = true
			st.lastChange = time.Now()
			h.met.peerUp(peer)
		}
		st.failures = 0
		st.backoff = h.cfg.downBackoff()
		st.lastProbeErr = ""
		return h.jitterLocked(h.cfg.probeInterval())
	}
	h.met.probeFailures.Add(1)
	if st.up {
		st.up = false
		st.lastChange = time.Now()
		h.met.peerDown(peer)
	}
	st.failures++
	st.lastProbeErr = reason
	delay := st.backoff
	st.backoff *= 2
	if limit := h.cfg.maxDownBackoff(); st.backoff > limit {
		st.backoff = limit
	}
	return h.jitterLocked(delay)
}

// jitter spreads a delay by ±25% so probers (and retry cycles) across
// the fleet never synchronize.
func (h *health) jitter(d time.Duration) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.jitterLocked(d)
}

func (h *health) jitterLocked(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	f := 0.75 + 0.5*h.rng.Float64()
	return time.Duration(float64(d) * f)
}
