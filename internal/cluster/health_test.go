package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition never held: %s", msg)
}

func newTestNode(t *testing.T, cfg Config) *Node {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

// A peer whose /healthz fails goes down within a probe interval, and
// comes back up when the endpoint recovers.
func TestHealthProbeMarksDownAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		if !healthy.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer peer.Close()

	n := newTestNode(t, Config{
		Self:          "http://self.test:1",
		Peers:         []string{peer.URL},
		ProbeInterval: 10 * time.Millisecond,
		DownBackoff:   10 * time.Millisecond,
	})
	n.Start()
	defer n.Stop()

	waitFor(t, 2*time.Second, func() bool { return n.Healthy(peer.URL) }, "peer never seen up")

	healthy.Store(false)
	waitFor(t, 2*time.Second, func() bool { return !n.Healthy(peer.URL) }, "peer never marked down")

	healthy.Store(true)
	waitFor(t, 2*time.Second, func() bool { return n.Healthy(peer.URL) }, "peer never recovered")

	if n.Metrics().downEvents.Load() < 1 || n.Metrics().upEvents.Load() < 1 {
		t.Fatalf("transition counters: down=%d up=%d, want >=1 each",
			n.Metrics().downEvents.Load(), n.Metrics().upEvents.Load())
	}
}

// While a peer is down, re-probe delays grow exponentially up to the
// cap, then reset to the probe cadence on recovery.
func TestHealthBackoffGrowsAndResets(t *testing.T) {
	cfg := Config{
		Self:           "http://self.test:1",
		Peers:          []string{"http://peer.test:1"},
		ProbeInterval:  100 * time.Millisecond,
		DownBackoff:    20 * time.Millisecond,
		MaxDownBackoff: 80 * time.Millisecond,
	}
	n := newTestNode(t, cfg)
	h := n.health

	// Jitter is ±25%, so compare against the unjittered bounds.
	within := func(d, base time.Duration) bool {
		return d >= base*3/4 && d <= base*5/4
	}
	d1 := h.record("http://peer.test:1", false, "boom")
	d2 := h.record("http://peer.test:1", false, "boom")
	d3 := h.record("http://peer.test:1", false, "boom")
	d4 := h.record("http://peer.test:1", false, "boom")
	if !within(d1, 20*time.Millisecond) || !within(d2, 40*time.Millisecond) || !within(d3, 80*time.Millisecond) {
		t.Fatalf("backoff sequence %v %v %v, want ~20ms ~40ms ~80ms", d1, d2, d3)
	}
	if !within(d4, 80*time.Millisecond) {
		t.Fatalf("backoff %v exceeded cap ~80ms", d4)
	}

	dUp := h.record("http://peer.test:1", true, "")
	if !within(dUp, 100*time.Millisecond) {
		t.Fatalf("recovered delay %v, want ~probe interval", dUp)
	}
	dDownAgain := h.record("http://peer.test:1", false, "boom")
	if !within(dDownAgain, 20*time.Millisecond) {
		t.Fatalf("backoff after recovery %v, want reset to ~20ms", dDownAgain)
	}
}

// MarkDown (the forwarder's report) flips a peer immediately; only the
// prober brings it back.
func TestHealthMarkDown(t *testing.T) {
	n := newTestNode(t, Config{
		Self:  "http://self.test:1",
		Peers: []string{"http://peer.test:1"},
	})
	if !n.Healthy("http://peer.test:1") {
		t.Fatal("peer should start optimistically up")
	}
	n.MarkDown("http://peer.test:1")
	if n.Healthy("http://peer.test:1") {
		t.Fatal("peer still healthy after MarkDown")
	}
	// Redundant mark-downs must not double-count transitions.
	n.MarkDown("http://peer.test:1")
	if got := n.Metrics().downEvents.Load(); got != 1 {
		t.Fatalf("down transitions = %d, want 1", got)
	}
	if n.Healthy("http://unknown.test:1") {
		t.Fatal("unknown peer must not be healthy")
	}
}

// Route prefers healthy peers ranked ahead of self and falls back to
// local when the ranking says so.
func TestNodeRouteRespectsHealth(t *testing.T) {
	peers := []string{"http://node-a:1", "http://node-b:1"}
	n := newTestNode(t, Config{Self: "http://node-c:1", Peers: peers})

	// Find a key each peer owns, from self's worker-mode viewpoint.
	ownedBy := func(m string) string {
		for i := 0; ; i++ {
			key := "probe-" + itoa(i)
			if n.Owner(key) == m {
				return key
			}
		}
	}
	keyA := ownedBy("http://node-a:1")
	if r := n.Route(keyA); r.Local || len(r.Peers) == 0 || r.Peers[0] != "http://node-a:1" {
		t.Fatalf("route for a-owned key = %+v", r)
	}

	// Owner down: the next healthy replica leads; if that is self, the
	// job is local (redistribution-to-self).
	n.MarkDown("http://node-a:1")
	r := n.Route(keyA)
	if len(r.Peers) > 0 && r.Peers[0] == "http://node-a:1" {
		t.Fatalf("route still targets down peer: %+v", r)
	}

	// All peers down: a worker always serves its whole keyspace itself.
	n.MarkDown("http://node-b:1")
	for i := 0; i < 20; i++ {
		if r := n.Route("k-" + itoa(i)); !r.Local {
			t.Fatalf("key %d not local with all peers down: %+v", i, r)
		}
	}

	selfKey := ownedBy("http://node-c:1")
	if r := n.Route(selfKey); !r.Local {
		t.Fatalf("self-owned key routed remotely: %+v", r)
	}
}

// A coordinator is never in the ring and never routes local.
func TestCoordinatorRouting(t *testing.T) {
	n := newTestNode(t, Config{
		Self:  "http://coord:1",
		Peers: []string{"http://node-a:1", "http://node-b:1"},
		Mode:  ModeCoordinator,
	})
	if len(n.Members()) != 2 {
		t.Fatalf("coordinator ring members = %v", n.Members())
	}
	for i := 0; i < 20; i++ {
		if r := n.Route("k-" + itoa(i)); r.Local {
			t.Fatal("coordinator routed a key to itself")
		}
	}
	if !n.Ready() {
		t.Fatal("coordinator with healthy peers should be ready")
	}
	n.MarkDown("http://node-a:1")
	n.MarkDown("http://node-b:1")
	if n.Ready() {
		t.Fatal("coordinator with no healthy peers should not be ready")
	}
	// With every worker down the coordinator has no route at all; the
	// server's fallback policy decides what happens next.
	if r := n.Route("k-0"); r.Local || len(r.Peers) != 0 {
		t.Fatalf("dead-cluster coordinator route = %+v, want empty", r)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing Self accepted")
	}
	if _, err := New(Config{Self: "not-a-url"}); err == nil {
		t.Fatal("relative Self accepted")
	}
	if _, err := New(Config{Self: "http://a:1/"}); err == nil {
		t.Fatal("trailing slash accepted")
	}
	if _, err := New(Config{Self: "http://a:1", Mode: ModeCoordinator}); err == nil {
		t.Fatal("peerless coordinator accepted")
	}
	if _, err := New(Config{Self: "http://a:1", Mode: "router"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	n, err := New(Config{Self: "http://a:1", Peers: []string{"http://a:1", "http://b:1", "http://b:1"}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := len(n.Peers()); got != 1 {
		t.Fatalf("self/duplicate peers not deduped: %v", n.Peers())
	}
	if _, err := ParseMode("worker"); err != nil {
		t.Fatalf("ParseMode(worker): %v", err)
	}
	if _, err := ParseMode("boss"); err == nil {
		t.Fatal("ParseMode accepted junk")
	}
}
