package cluster

import (
	"fmt"
	"testing"
)

func ringMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://node-%d:8080", i)
	}
	return out
}

// Every node must compute the identical ring from the same membership,
// regardless of the order the members were listed in.
func TestRingDeterministicAcrossListOrder(t *testing.T) {
	members := ringMembers(5)
	reversed := make([]string, len(members))
	for i, m := range members {
		reversed[len(members)-1-i] = m
	}
	a := newRing(members, 0)
	b := newRing(reversed, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner %q vs %q", key, a.Owner(key), b.Owner(key))
		}
	}
}

// Replicas must be a permutation of the full membership with the owner
// first, so the fail-over walk can always reach every node.
func TestRingReplicasCoverMembership(t *testing.T) {
	r := newRing(ringMembers(4), 0)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		reps := r.Replicas(key)
		if len(reps) != 4 {
			t.Fatalf("key %q: %d replicas, want 4", key, len(reps))
		}
		if reps[0] != r.Owner(key) {
			t.Fatalf("key %q: first replica %q is not the owner %q", key, reps[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, m := range reps {
			if seen[m] {
				t.Fatalf("key %q: duplicate replica %q", key, m)
			}
			seen[m] = true
		}
	}
}

// With virtual nodes, keyspace shares should be roughly even, and sum
// to 1.
func TestRingSharesBalanced(t *testing.T) {
	r := newRing(ringMembers(4), 0)
	shares := r.Shares()
	var total float64
	for m, s := range shares {
		total += s
		if s < 0.10 || s > 0.45 {
			t.Errorf("member %s owns %.3f of the keyspace; want roughly 0.25", m, s)
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("shares sum to %.6f, want 1", total)
	}
}

// Removing one member must only remap the keys that member owned — the
// consistent-hashing property that keeps caches warm through membership
// changes.
func TestRingRemovalOnlyRemapsLostShard(t *testing.T) {
	members := ringMembers(5)
	full := newRing(members, 0)
	reduced := newRing(members[:4], 0)
	lost := members[4]
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before != lost && before != after {
			t.Fatalf("key %q moved from surviving member %q to %q", key, before, after)
		}
		if before == lost && after == lost {
			t.Fatalf("key %q still owned by removed member", key)
		}
	}
}

func TestRingDegenerateCases(t *testing.T) {
	empty := newRing(nil, 0)
	if reps := empty.Replicas("k"); reps != nil {
		t.Fatalf("empty ring returned replicas %v", reps)
	}
	if owner := empty.Owner("k"); owner != "" {
		t.Fatalf("empty ring returned owner %q", owner)
	}

	single := newRing([]string{"http://only:1"}, 1)
	if owner := single.Owner("k"); owner != "http://only:1" {
		t.Fatalf("single-member ring owner = %q", owner)
	}
	if s := single.Shares()["http://only:1"]; s != 1 {
		t.Fatalf("single-member share = %g, want 1", s)
	}

	dup := newRing([]string{"http://a:1", "http://a:1", "", "http://b:1"}, 0)
	if got := len(dup.Members()); got != 2 {
		t.Fatalf("dedup ring has %d members, want 2", got)
	}
}

func TestItoa(t *testing.T) {
	for _, n := range []int{0, 1, 9, 10, 63, 100, 12345} {
		if got, want := itoa(n), fmt.Sprintf("%d", n); got != want {
			t.Fatalf("itoa(%d) = %q, want %q", n, got, want)
		}
	}
}
