// Package cluster turns a set of amoptd daemons into one fault-tolerant
// optimization service. Jobs route to peers by graph-fingerprint
// consistent hashing, so each node's memory/disk/region caches stay hot
// for its own shard, behind a full failure-handling stack:
//
//   - per-peer health checking: /healthz probes on a steady cadence,
//     mark-down on failure, exponential backoff with jitter before
//     re-probe (health.go);
//   - bounded retries with backoff and deadline budgets on forwarded
//     requests, and hedged forwarding to the next ring replica when the
//     primary exceeds a latency threshold — first success wins, the
//     loser is canceled (client.go);
//   - distributed single-flight: all nodes route a fingerprint to the
//     same owner, whose engine-level single-flight collapses the
//     cluster-wide thundering herd into exactly one optimization;
//   - a remote cache backend that lets a node falling back to local
//     compute first consult the owning peer's persistent store
//     (backend.go);
//   - mid-batch redistribution: when a peer dies, its in-flight jobs
//     re-enqueue to the surviving replicas (or the local engine) — the
//     routing layer in internal/server drives this off Forward errors.
//
// Failure semantics follow the PR 4/5 taxonomy: peer failures surface as
// typed fault.PeerError values (503 when no replica is reachable, 502
// when a peer answers garbage) and are never cached or persisted — the
// degraded-never-cached invariant holds cluster-wide because only each
// node's own engine writes its stores, and engines never store degraded
// or failed results.
package cluster

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"
)

// Mode selects a node's role in the ring.
type Mode string

const (
	// ModeWorker: a full ring member — owns a shard, computes locally,
	// forwards jobs whose owner is a healthy peer ranked ahead of it.
	ModeWorker Mode = "worker"
	// ModeCoordinator: a router that is NOT a ring member — it owns no
	// shard and forwards every job to the workers. Whether it may compute
	// locally as a last resort is the server's LocalFallback policy.
	ModeCoordinator Mode = "coordinator"
)

// ParseMode validates a -cluster-mode flag value.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeWorker, ModeCoordinator:
		return Mode(s), nil
	}
	return "", fmt.Errorf("unknown cluster mode %q (want %q or %q)", s, ModeWorker, ModeCoordinator)
}

// defaultVirtualNodes balances the ring to within a few percent per
// member without making ring construction or the shares gauge heavy.
const defaultVirtualNodes = 64

// Config describes one node's view of the cluster. Membership is static
// configuration: every node must be started with the same overall member
// set (its own URL in Self, the rest in Peers) for the rings to agree.
type Config struct {
	// Self is this node's advertised base URL (scheme://host:port). In
	// worker mode it joins the ring; in coordinator mode it only labels
	// metrics and loop-prevention headers.
	Self string
	// Peers are the other nodes' advertised base URLs.
	Peers []string
	// Mode selects worker (default) or coordinator.
	Mode Mode
	// VirtualNodes per ring member (0 = 64).
	VirtualNodes int
	// ProbeInterval is the health-probe cadence while a peer is up
	// (0 = 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (0 = 1s).
	ProbeTimeout time.Duration
	// DownBackoff is the first re-probe delay after a peer goes down; it
	// doubles per consecutive failure up to MaxDownBackoff
	// (0 = ProbeInterval, capped at 10 × ProbeInterval).
	DownBackoff    time.Duration
	MaxDownBackoff time.Duration
	// HedgeAfter launches a hedged forward to the next ring replica when
	// the primary has not answered within this duration. 0 selects the
	// 50ms default; negative disables hedging.
	HedgeAfter time.Duration
	// Retries is the number of extra forward cycles over the candidate
	// peers after the first fails (0 = 2; negative = no retries).
	Retries int
	// RetryBackoff is the base delay between retry cycles, doubled per
	// cycle with jitter (0 = 25ms).
	RetryBackoff time.Duration
	// FetchTimeout bounds one remote cache fetch (0 = 250ms).
	FetchTimeout time.Duration
	// Seed fixes the jitter stream for deterministic tests (0 = 1).
	Seed int64
	// Transport overrides the HTTP transport (tests). Nil uses a
	// dedicated transport with sane per-peer connection reuse.
	Transport http.RoundTripper
}

func (c Config) probeInterval() time.Duration {
	if c.ProbeInterval <= 0 {
		return time.Second
	}
	return c.ProbeInterval
}

func (c Config) probeTimeout() time.Duration {
	if c.ProbeTimeout <= 0 {
		return time.Second
	}
	return c.ProbeTimeout
}

func (c Config) downBackoff() time.Duration {
	if c.DownBackoff <= 0 {
		return c.probeInterval()
	}
	return c.DownBackoff
}

func (c Config) maxDownBackoff() time.Duration {
	if c.MaxDownBackoff <= 0 {
		return 10 * c.probeInterval()
	}
	return c.MaxDownBackoff
}

func (c Config) hedgeAfter() time.Duration {
	if c.HedgeAfter == 0 {
		return 50 * time.Millisecond
	}
	return c.HedgeAfter
}

func (c Config) retries() int {
	if c.Retries == 0 {
		return 2
	}
	if c.Retries < 0 {
		return 0
	}
	return c.Retries
}

func (c Config) retryBackoff() time.Duration {
	if c.RetryBackoff <= 0 {
		return 25 * time.Millisecond
	}
	return c.RetryBackoff
}

func (c Config) fetchTimeout() time.Duration {
	if c.FetchTimeout <= 0 {
		return 250 * time.Millisecond
	}
	return c.FetchTimeout
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// Route is the health-aware answer to "who should run this key?".
type Route struct {
	// Local: this node is the first healthy replica (worker mode), or no
	// remote candidate exists and the caller decides whether local
	// compute is allowed.
	Local bool
	// Peers are the healthy remote candidates in ring preference order:
	// forward to Peers[0], hedge to Peers[1], fail over down the list.
	Peers []string
}

// Node is one daemon's cluster runtime: the ring, the health prober, the
// forwarding client, and the metrics. Construct with New, then Start the
// probers; Stop before process exit.
type Node struct {
	cfg    Config
	ring   *ring
	health *health
	met    *Metrics
	client *http.Client
}

// New validates cfg and builds the node. The ring holds Self (worker
// mode) plus every peer; coordinators stay out of the ring.
func New(cfg Config) (*Node, error) {
	if cfg.Mode == "" {
		cfg.Mode = ModeWorker
	}
	if cfg.Mode != ModeWorker && cfg.Mode != ModeCoordinator {
		return nil, fmt.Errorf("cluster: unknown mode %q", cfg.Mode)
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self URL is required")
	}
	for _, u := range append([]string{cfg.Self}, cfg.Peers...) {
		p, err := url.Parse(u)
		if err != nil || p.Scheme == "" || p.Host == "" {
			return nil, fmt.Errorf("cluster: %q is not an absolute base URL", u)
		}
		if strings.HasSuffix(u, "/") {
			return nil, fmt.Errorf("cluster: %q must not end in /", u)
		}
	}
	peers := dedup(cfg.Peers, cfg.Self)
	cfg.Peers = peers

	members := peers
	if cfg.Mode == ModeWorker {
		members = append([]string{cfg.Self}, peers...)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: coordinator mode needs at least one peer")
	}

	transport := cfg.Transport
	if transport == nil {
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConnsPerHost = 32
		transport = t
	}
	client := &http.Client{Transport: transport}

	met := newMetrics()
	return &Node{
		cfg:    cfg,
		ring:   newRing(members, cfg.VirtualNodes),
		health: newHealth(cfg, client, met),
		met:    met,
		client: client,
	}, nil
}

// dedup drops empty strings, duplicates, and self from a peer list,
// preserving order.
func dedup(peers []string, self string) []string {
	seen := map[string]bool{self: true, "": true}
	out := make([]string, 0, len(peers))
	for _, p := range peers {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Start launches the health probers.
func (n *Node) Start() { n.health.start() }

// Stop terminates the probers. Idempotent it is not — call once.
func (n *Node) Stop() { n.health.close() }

// Self returns this node's advertised URL.
func (n *Node) Self() string { return n.cfg.Self }

// Mode returns the node's role.
func (n *Node) Mode() Mode { return n.cfg.Mode }

// Members returns the ring membership (workers only; a coordinator is
// not a member).
func (n *Node) Members() []string { return n.ring.Members() }

// Peers returns the configured peer list.
func (n *Node) Peers() []string { return n.cfg.Peers }

// Healthy reports the current health of one peer (self is always
// healthy).
func (n *Node) Healthy(peer string) bool {
	if peer == n.cfg.Self {
		return true
	}
	return n.health.healthy(peer)
}

// HealthyPeerCount counts currently-routable peers.
func (n *Node) HealthyPeerCount() int {
	c := 0
	for _, up := range n.health.snapshot() {
		if up {
			c++
		}
	}
	return c
}

// MarkDown records an externally observed peer failure (used by the
// forwarding layer on transport errors; tests use it to force routing).
func (n *Node) MarkDown(peer string) { n.health.markDown(peer, "marked down by forwarder") }

// Ready reports whether this node can meaningfully serve cluster
// traffic: workers are ready as ring members; a coordinator is ready
// while at least one worker is healthy. The server folds its own drain
// state and fallback policy on top for /readyz.
func (n *Node) Ready() bool {
	if n.cfg.Mode == ModeWorker {
		return true
	}
	return n.HealthyPeerCount() > 0
}

// Owner returns the primary ring member for key, health-blind.
func (n *Node) Owner(key string) string { return n.ring.Owner(key) }

// Route computes the health-aware routing decision for key.
//
// Worker mode: walk the ring preference order; every healthy peer ranked
// ahead of self is a forward candidate, and self's own position ends the
// walk — if no healthy peer outranks us, the job is ours (this is how a
// dead owner's shard redistributes to the next replica, and how it snaps
// back when the owner recovers). Coordinator mode: self holds no rank,
// so every healthy member is a candidate and Local is never set.
func (n *Node) Route(key string) Route {
	reps := n.ring.Replicas(key)
	var peers []string
	for _, m := range reps {
		if m == n.cfg.Self {
			if len(peers) == 0 {
				return Route{Local: true}
			}
			break
		}
		if n.Healthy(m) {
			peers = append(peers, m)
		}
	}
	if len(peers) == 0 {
		// No healthy remote candidate. A worker always has itself; a
		// coordinator reports an empty route and the server applies its
		// fallback policy.
		return Route{Local: n.cfg.Mode == ModeWorker}
	}
	return Route{Peers: peers}
}

// Metrics exposes the counters (for tests and the server's
// redistribution accounting).
func (n *Node) Metrics() *Metrics { return n.met }

// PeerStatus is one row of the cluster introspection endpoint.
type PeerStatus struct {
	URL     string  `json:"url"`
	Healthy bool    `json:"healthy"`
	Member  bool    `json:"ringMember"`
	Share   float64 `json:"ringShare"`
}

// Status reports the node's live view of the cluster, self included.
func (n *Node) Status() []PeerStatus {
	shares := n.ring.Shares()
	members := map[string]bool{}
	for _, m := range n.ring.Members() {
		members[m] = true
	}
	up := n.health.snapshot()
	out := []PeerStatus{{
		URL:     n.cfg.Self,
		Healthy: true,
		Member:  members[n.cfg.Self],
		Share:   shares[n.cfg.Self],
	}}
	peers := append([]string(nil), n.cfg.Peers...)
	sort.Strings(peers)
	for _, p := range peers {
		out = append(out, PeerStatus{URL: p, Healthy: up[p], Member: members[p], Share: shares[p]})
	}
	return out
}

// WriteMetrics renders the cluster section of /metrics: the counter
// registry plus the health- and ring-derived gauges.
func (n *Node) WriteMetrics(w io.Writer) {
	fmt.Fprintf(w, "# HELP amoptd_cluster_peer_up Peer health as seen by this node (1 up, 0 down).\n")
	fmt.Fprintf(w, "# TYPE amoptd_cluster_peer_up gauge\n")
	up := n.health.snapshot()
	peers := make([]string, 0, len(up))
	for p := range up {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	for _, p := range peers {
		v := 0
		if up[p] {
			v = 1
		}
		fmt.Fprintf(w, "amoptd_cluster_peer_up{peer=%q} %d\n", p, v)
	}
	fmt.Fprintf(w, "# HELP amoptd_cluster_ring_members Ring members (workers).\n")
	fmt.Fprintf(w, "# TYPE amoptd_cluster_ring_members gauge\n")
	fmt.Fprintf(w, "amoptd_cluster_ring_members %d\n", len(n.ring.Members()))
	fmt.Fprintf(w, "# HELP amoptd_cluster_ring_share Fraction of the keyspace owned per ring member.\n")
	fmt.Fprintf(w, "# TYPE amoptd_cluster_ring_share gauge\n")
	shares := n.ring.Shares()
	members := append([]string(nil), n.ring.Members()...)
	for _, m := range members {
		fmt.Fprintf(w, "amoptd_cluster_ring_share{member=%q} %g\n", m, shares[m])
	}
	n.met.write(w)
}
