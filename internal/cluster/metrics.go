package cluster

// Cluster observability, rendered into the daemon's Prometheus text
// exposition by Node.WriteMetrics (the server appends it to its own
// /metrics output). Counters capture the full failure-handling stack:
// forwards and their failures per peer, retry and hedge activity,
// mid-batch redistributions, probe traffic, and up/down transitions;
// gauges expose the live peer health and the ring ownership shares.

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics is the cluster metric registry of one Node.
type Metrics struct {
	mu              sync.Mutex
	forwards        map[string]int64 // peer -> forward attempts
	forwardFailures map[string]int64 // peer -> transport-level failures

	retries       atomic.Int64 // forward attempts beyond the first cycle
	hedges        atomic.Int64 // hedged attempts launched
	hedgeWins     atomic.Int64 // requests won by a hedged attempt
	redistributed atomic.Int64 // jobs re-run elsewhere after their peer died

	probes        atomic.Int64
	probeFailures atomic.Int64
	downEvents    atomic.Int64 // up -> down transitions
	upEvents      atomic.Int64 // down -> up transitions

	remoteCacheHits   atomic.Int64 // remote-backend fetches answered by a peer
	remoteCacheMisses atomic.Int64 // remote-backend fetches that missed or failed
}

func newMetrics() *Metrics {
	return &Metrics{
		forwards:        map[string]int64{},
		forwardFailures: map[string]int64{},
	}
}

func (m *Metrics) forward(peer string) {
	m.mu.Lock()
	m.forwards[peer]++
	m.mu.Unlock()
}

func (m *Metrics) forwardFailure(peer string) {
	m.mu.Lock()
	m.forwardFailures[peer]++
	m.mu.Unlock()
}

func (m *Metrics) peerDown(string) { m.downEvents.Add(1) }
func (m *Metrics) peerUp(string)   { m.upEvents.Add(1) }

// Redistributed counts one job that lost its owning peer mid-flight and
// was re-enqueued elsewhere (a surviving replica or the local engine).
func (m *Metrics) Redistributed() { m.redistributed.Add(1) }

// RedistributedCount reports the redistribution counter (for tests).
func (m *Metrics) RedistributedCount() int64 { return m.redistributed.Load() }

// HedgeCount reports launched hedges and hedge wins (for tests).
func (m *Metrics) HedgeCount() (launched, wins int64) {
	return m.hedges.Load(), m.hedgeWins.Load()
}

// ForwardCounts reports per-peer forwards and failures (for tests).
func (m *Metrics) ForwardCounts() (forwards, failures map[string]int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	forwards = make(map[string]int64, len(m.forwards))
	for k, v := range m.forwards {
		forwards[k] = v
	}
	failures = make(map[string]int64, len(m.forwardFailures))
	for k, v := range m.forwardFailures {
		failures[k] = v
	}
	return forwards, failures
}

// write renders the registry; the Node adds the health- and ring-derived
// gauges itself (they live outside this struct).
func (m *Metrics) write(w io.Writer) {
	m.mu.Lock()
	peers := make([]string, 0, len(m.forwards))
	for p := range m.forwards {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	failPeers := make([]string, 0, len(m.forwardFailures))
	for p := range m.forwardFailures {
		failPeers = append(failPeers, p)
	}
	sort.Strings(failPeers)
	fwd := make(map[string]int64, len(peers))
	for _, p := range peers {
		fwd[p] = m.forwards[p]
	}
	ff := make(map[string]int64, len(failPeers))
	for _, p := range failPeers {
		ff[p] = m.forwardFailures[p]
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP amoptd_cluster_forwards_total Forward attempts per peer (including retries and hedges).\n")
	fmt.Fprintf(w, "# TYPE amoptd_cluster_forwards_total counter\n")
	for _, p := range peers {
		fmt.Fprintf(w, "amoptd_cluster_forwards_total{peer=%q} %d\n", p, fwd[p])
	}
	fmt.Fprintf(w, "# HELP amoptd_cluster_forward_failures_total Forward attempts that died on the wire, per peer.\n")
	fmt.Fprintf(w, "# TYPE amoptd_cluster_forward_failures_total counter\n")
	for _, p := range failPeers {
		fmt.Fprintf(w, "amoptd_cluster_forward_failures_total{peer=%q} %d\n", p, ff[p])
	}
	fmt.Fprintf(w, "# HELP amoptd_cluster_retries_total Forward attempts beyond each request's first try.\n")
	fmt.Fprintf(w, "# TYPE amoptd_cluster_retries_total counter\n")
	fmt.Fprintf(w, "amoptd_cluster_retries_total %d\n", m.retries.Load())
	fmt.Fprintf(w, "# HELP amoptd_cluster_hedges_total Hedged forwards launched after the primary exceeded the latency threshold.\n")
	fmt.Fprintf(w, "# TYPE amoptd_cluster_hedges_total counter\n")
	fmt.Fprintf(w, "amoptd_cluster_hedges_total %d\n", m.hedges.Load())
	fmt.Fprintf(w, "# HELP amoptd_cluster_hedge_wins_total Forwards won by a hedged attempt.\n")
	fmt.Fprintf(w, "# TYPE amoptd_cluster_hedge_wins_total counter\n")
	fmt.Fprintf(w, "amoptd_cluster_hedge_wins_total %d\n", m.hedgeWins.Load())
	fmt.Fprintf(w, "# HELP amoptd_cluster_redistributed_total Jobs re-enqueued to a survivor after their peer failed mid-flight.\n")
	fmt.Fprintf(w, "# TYPE amoptd_cluster_redistributed_total counter\n")
	fmt.Fprintf(w, "amoptd_cluster_redistributed_total %d\n", m.redistributed.Load())
	fmt.Fprintf(w, "# HELP amoptd_cluster_probes_total Health probes sent.\n")
	fmt.Fprintf(w, "# TYPE amoptd_cluster_probes_total counter\n")
	fmt.Fprintf(w, "amoptd_cluster_probes_total %d\n", m.probes.Load())
	fmt.Fprintf(w, "# HELP amoptd_cluster_probe_failures_total Health probes that failed.\n")
	fmt.Fprintf(w, "# TYPE amoptd_cluster_probe_failures_total counter\n")
	fmt.Fprintf(w, "amoptd_cluster_probe_failures_total %d\n", m.probeFailures.Load())
	fmt.Fprintf(w, "# HELP amoptd_cluster_peer_transitions_total Peer up/down transitions observed.\n")
	fmt.Fprintf(w, "# TYPE amoptd_cluster_peer_transitions_total counter\n")
	fmt.Fprintf(w, "amoptd_cluster_peer_transitions_total{to=\"down\"} %d\n", m.downEvents.Load())
	fmt.Fprintf(w, "amoptd_cluster_peer_transitions_total{to=\"up\"} %d\n", m.upEvents.Load())
	fmt.Fprintf(w, "# HELP amoptd_cluster_remote_cache_hits_total Cache fetches answered by the owning peer's store.\n")
	fmt.Fprintf(w, "# TYPE amoptd_cluster_remote_cache_hits_total counter\n")
	fmt.Fprintf(w, "amoptd_cluster_remote_cache_hits_total %d\n", m.remoteCacheHits.Load())
	fmt.Fprintf(w, "# HELP amoptd_cluster_remote_cache_misses_total Cache fetches the owning peer could not answer.\n")
	fmt.Fprintf(w, "# TYPE amoptd_cluster_remote_cache_misses_total counter\n")
	fmt.Fprintf(w, "amoptd_cluster_remote_cache_misses_total %d\n", m.remoteCacheMisses.Load())
}
