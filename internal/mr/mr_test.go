package mr

import (
	"testing"

	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/lcm"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/printer"
	"assignmentmotion/internal/verify"
)

func hasInstr(g *ir.Graph, name, key string) bool {
	for _, in := range g.BlockByName(name).Instrs {
		if in.Key() == key {
			return true
		}
	}
	return false
}

const fig01 = `
graph fig01 {
  entry n1
  exit n4
  block n1 { if c < 0 then n2 else n3 }
  block n2 {
    z := a + b
    x := a + b
    goto n4
  }
  block n3 {
    x := a + b
    y := x + y
    goto n4
  }
  block n4 { out(x, y, z) }
}
`

func TestFigure01BusyPlacement(t *testing.T) {
	g := parse.MustParse(fig01)
	orig := g.Clone()
	st := Run(g)
	g.MustValidate()
	if st.Inserted != 1 || st.Reloaded != 3 {
		t.Errorf("stats = %+v\n%s", st, printer.String(g))
	}
	// MR realizes exactly the paper's Figure 1(b): h := a+b in node 1.
	if !hasInstr(g, "n1", "h1:=a+b") {
		t.Errorf("no insertion in n1:\n%s", printer.String(g))
	}
	for _, name := range []string{"n2", "n3"} {
		for _, in := range g.BlockByName(name).Instrs {
			if in.Kind == ir.KindAssign && in.RHS.Key() == "a+b" {
				t.Errorf("%s still computes a+b:\n%s", name, printer.String(g))
			}
		}
	}
	rep := verify.Equivalent(orig, g, 12, 3)
	if !rep.Equivalent {
		t.Fatalf("semantics changed: %s", rep.Detail)
	}
	if rep.B.ExprEvals > rep.A.ExprEvals {
		t.Errorf("MR increased evaluations %d -> %d", rep.A.ExprEvals, rep.B.ExprEvals)
	}
	// The left path drops from 2 evaluations to 1.
	left := interp.Run(g, map[ir.Var]int64{"c": -1, "a": 2, "b": 3}, 0)
	if left.Counts.ExprEvals != 1 {
		t.Errorf("left path evals = %d, want 1", left.Counts.ExprEvals)
	}
}

func TestFigure10CriticalEdgeStopsMR(t *testing.T) {
	// MR cannot place code on edges; the partial redundancy behind the
	// critical edge n2->n3 is beyond it, while LCM (with edge splitting)
	// removes it.
	src := `
graph fig10 {
  entry n0
  exit n4
  block n0 { if d < 0 then n1 else n2 }
  block n1 {
    x := a + b
    goto n3
  }
  block n2 { if d < 10 then n3 else n4 }
  block n3 {
    x := a + b
    goto n4
  }
  block n4 { out(x) }
}
`
	gMR := parse.MustParse(src)
	gLCM := parse.MustParse(src)
	orig := parse.MustParse(src)
	Run(gMR)
	gMR.MustValidate()
	lcm.Run(gLCM)

	envN1 := map[ir.Var]int64{"d": -5, "a": 1, "b": 2} // path n0->n1->n3
	rOrig := interp.Run(orig, envN1, 0)
	rMR := interp.Run(gMR, envN1, 0)
	rLCM := interp.Run(gLCM, envN1, 0)
	if rOrig.Counts.ExprEvals != 2 {
		t.Fatalf("original evals = %d, want 2", rOrig.Counts.ExprEvals)
	}
	if rMR.Counts.ExprEvals != 2 {
		t.Errorf("MR evals = %d, want 2 (stuck on the critical edge)\n%s",
			rMR.Counts.ExprEvals, printer.String(gMR))
	}
	if rLCM.Counts.ExprEvals != 1 {
		t.Errorf("LCM evals = %d, want 1", rLCM.Counts.ExprEvals)
	}
}

func TestZeroTripSafety(t *testing.T) {
	// MR is down-safe: nothing may be computed on the zero-trip path.
	g := parse.MustParse(`
graph whileloop {
  entry pre
  exit post
  block pre { goto hdr }
  block hdr { if i < 10 then body else post }
  block body {
    x := a + b
    i := i + 1
    goto hdr
  }
  block post { out(x, i) }
}
`)
	Run(g)
	g.MustValidate()
	r := interp.Run(g, map[ir.Var]int64{"i": 99, "a": 1, "b": 2}, 0)
	if r.Counts.ExprEvals != 0 {
		t.Errorf("zero-trip path evaluates %d expressions\n%s", r.Counts.ExprEvals, printer.String(g))
	}
}

func TestDoWhileLoopInvariant(t *testing.T) {
	// In a do-while loop MR hoists the invariant like everyone else.
	g := parse.MustParse(`
graph dowhile {
  entry pre
  exit post
  block pre { goto body }
  block body {
    x := a + b
    i := i + 1
    if i < 10 then body else post
  }
  block post { out(x, i) }
}
`)
	orig := g.Clone()
	Run(g)
	g.MustValidate()
	env := map[ir.Var]int64{"a": 3, "b": 4, "i": 0}
	r1, r2 := interp.Run(orig, env, 0), interp.Run(g, env, 0)
	if !interp.TraceEqual(r1, r2) {
		t.Fatal("trace changed")
	}
	if want := r1.Counts.ExprEvals - 9; r2.Counts.ExprEvals != want {
		t.Errorf("evals = %d, want %d\n%s", r2.Counts.ExprEvals, want, printer.String(g))
	}
}

func TestSaveAtDownwardExposed(t *testing.T) {
	// The kill forces a save at the recomputation so later uses read h.
	g := parse.MustParse(`
graph save {
  entry a
  exit e
  block a {
    x := p + q
    p := 1
    y := p + q
    goto m
  }
  block m {
    z := p + q
    goto e
  }
  block e { out(x, y, z) }
}
`)
	orig := g.Clone()
	st := Run(g)
	g.MustValidate()
	if st.Saved == 0 {
		t.Errorf("no save performed: %+v\n%s", st, printer.String(g))
	}
	rep := verify.Equivalent(orig, g, 12, 7)
	if !rep.Equivalent {
		t.Fatalf("semantics changed: %s\n%s", rep.Detail, printer.String(g))
	}
	// m must no longer recompute p+q.
	for _, in := range g.BlockByName("m").Instrs {
		if in.Kind == ir.KindAssign && !in.RHS.Trivial() {
			t.Errorf("m still computes: %v\n%s", in, printer.String(g))
		}
	}
}

func TestMRSafeOnUnstructuredPrograms(t *testing.T) {
	// Irreducible control flow and critical edges everywhere: MR must stay
	// semantics preserving and never pessimize expression counts.
	for seed := int64(0); seed < 25; seed++ {
		orig := cfggen.Unstructured(seed, cfggen.Config{Size: 12})
		g := orig.Clone()
		Run(g)
		g.MustValidate()
		rep := verify.Equivalent(orig, g, 6, seed+9)
		if !rep.Equivalent {
			t.Fatalf("seed %d: MR changed semantics: %s\n%s", seed, rep.Detail, printer.String(g))
		}
		if rep.B.ExprEvals > rep.A.ExprEvals {
			t.Errorf("seed %d: MR increased evaluations %d -> %d", seed, rep.A.ExprEvals, rep.B.ExprEvals)
		}
	}
}

func TestMRBetweenOriginalAndLCM(t *testing.T) {
	// Sampled ordering: LCM <= MR <= original in expression evaluations,
	// everything semantics preserving.
	for seed := int64(0); seed < 25; seed++ {
		orig := cfggen.Structured(seed, cfggen.Config{Size: 10})
		gMR := orig.Clone()
		Run(gMR)
		gMR.MustValidate()
		rep := verify.Equivalent(orig, gMR, 6, seed+1)
		if !rep.Equivalent {
			t.Fatalf("seed %d: MR changed semantics: %s\n%s", seed, rep.Detail, printer.String(gMR))
		}
		if rep.B.ExprEvals > rep.A.ExprEvals {
			t.Errorf("seed %d: MR increased evaluations %d -> %d", seed, rep.A.ExprEvals, rep.B.ExprEvals)
		}

		gLCM := orig.Clone()
		lcm.Run(gLCM)
		repL := verify.Equivalent(gMR, gLCM, 6, seed+2)
		if !repL.Equivalent {
			t.Fatalf("seed %d: MR and LCM disagree semantically: %s", seed, repL.Detail)
		}
		if repL.B.ExprEvals > repL.A.ExprEvals {
			t.Errorf("seed %d: LCM (%d evals) worse than MR (%d)", seed, repL.B.ExprEvals, repL.A.ExprEvals)
		}

		gGlob := orig.Clone()
		core.Optimize(gGlob)
		repG := verify.Equivalent(gMR, gGlob, 6, seed+3)
		if !repG.Equivalent {
			t.Fatalf("seed %d: MR and GlobAlg disagree semantically: %s", seed, repG.Detail)
		}
		if repG.B.ExprEvals > repG.A.ExprEvals {
			t.Errorf("seed %d: GlobAlg (%d evals) worse than MR (%d)", seed, repG.B.ExprEvals, repG.A.ExprEvals)
		}
	}
}

// TestAvailabilityJustifiedReloadGetsSave is the regression test for the
// demand-analysis fix: the reload in j is justified purely by the
// availability of v2+v2 at p's exit (computed by p's branch condition),
// while PPOUT_p is false because the other arm has no use — the
// PPOUT-based textbook save criterion would leave h uninitialized.
func TestAvailabilityJustifiedReloadGetsSave(t *testing.T) {
	g := parse.MustParse(`
graph avreload {
  entry p
  exit e
  block p { if v2 + v2 == w then j else k }
  block j {
    x := v2 + v2
    goto e
  }
  block k {
    x := 1
    goto e
  }
  block e { out(x) }
}
`)
	orig := g.Clone()
	st := Run(g)
	g.MustValidate()
	rep := verify.Equivalent(orig, g, 16, 11)
	if !rep.Equivalent {
		t.Fatalf("miscompiled: %s\n%s", rep.Detail, printer.String(g))
	}
	// If MR performed the reload it must have saved at p.
	if st.Reloaded > 0 && st.Saved == 0 {
		t.Errorf("reload without save: %+v\n%s", st, printer.String(g))
	}
	// And the j path must now evaluate v2+v2 once, not twice.
	r := interp.Run(g, map[ir.Var]int64{"v2": 3, "w": 6}, 0)
	if r.Counts.ExprEvals != 1 {
		t.Errorf("j path evals = %d, want 1\n%s", r.Counts.ExprEvals, printer.String(g))
	}
}

func TestIdempotentOnRedundancyFreeInput(t *testing.T) {
	g := parse.MustParse(`
graph plain {
  entry a
  exit e
  block a {
    x := p + q
    goto e
  }
  block e { out(x) }
}
`)
	enc := g.Encode()
	st := Run(g)
	if st.Inserted+st.Reloaded+st.Saved != 0 || g.Encode() != enc {
		t.Errorf("MR changed a redundancy-free program: %+v\n%s", st, printer.String(g))
	}
}
