// Package mr implements the original partial redundancy elimination of
// Morel and Renvoise (CACM 1979) — reference [19] of the paper, the
// algorithm all later expression-motion work (Dhamdhere's adaptations
// [3, 6], Drechsler/Stadel [9], and lazy code motion [15, 16]) descends
// from. It serves as a historical baseline in the experiment harness.
//
// MR solves, per expression, a BIDIRECTIONAL bit-vector system over basic
// blocks ("placement possible", PP):
//
//	AVIN_i  = ∏_{p∈pred(i)} AVOUT_p              (∅ at the entry block)
//	AVOUT_i = COMP_i + AVIN_i · TRANSP_i
//	ANTOUT_i = ∏_{s∈succ(i)} ANTIN_s             (∅ at the exit block)
//	ANTIN_i  = ANTLOC_i + TRANSP_i · ANTOUT_i
//
//	PPOUT_i = ∏_{s∈succ(i)} PPIN_s               (∅ at the exit block)
//	PPIN_i  = ANTIN_i · (ANTLOC_i + TRANSP_i · PPOUT_i)
//	          · ∏_{p∈pred(i)} (AVOUT_p + PPOUT_p)   (∅ at the entry block)
//
// computed as a greatest fixpoint, followed by the placement:
//
//	INSERT_i  = PPOUT_i · ¬AVOUT_i · (¬PPIN_i + ¬TRANSP_i)  — h := e at end
//	RELOAD_i  = PPIN_i  · ANTLOC_i   — upward-exposed occurrences use h
//
// and a demand-driven save analysis: a reload consumes h at its block
// entry, and the demand propagates backward until a supplier (an INSERT,
// or a block computing e, whose downward-exposed occurrence then also
// stores into h):
//
//	NEEDOUT_i = Σ_{s∈succ(i)} NEEDIN_s              (∅ at the exit block)
//	NEEDIN_i  = RELOAD_i + NEEDOUT_i · ¬INSERT_i · ¬COMP_i
//	SAVE_i    = COMP_i · NEEDOUT_i   (skipped when a reload already keeps
//	                                  h valid through the block exit)
//
// The demand formulation generalizes the textbook SAVE = COMP·PPOUT: a
// reload may be justified through a predecessor's *availability* alone
// (the AVOUT_p disjunct of PPIN), in which case PPOUT is false along the
// supplying path and the PPOUT-based save would never materialize h —
// the randomized property tests of internal/verify caught exactly that
// miscompilation.
//
// Crucially MR places computations only at block boundaries — it has no
// synthetic nodes — so a partial redundancy behind a critical edge
// (Figure 10 of the paper) is beyond its reach, which the tests and the
// experiment harness demonstrate against lazy code motion.
package mr

import (
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"
)

func init() {
	pass.Register(pass.Pass{
		Name:        "mr",
		Description: "Morel/Renvoise partial redundancy elimination: bidirectional PP system, block-boundary placement only",
		Ref:         "Morel/Renvoise CACM'79 [19]; §1.2 baseline",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			st := RunWith(g, s)
			return pass.Stats{Changes: st.Inserted + st.Reloaded + st.Saved, Iterations: 1}, nil
		},
	})
}

// Stats reports what one MR run did.
type Stats struct {
	// Inserted counts h := e insertions, Reloaded replaced occurrences,
	// Saved occurrences extended with a store into h.
	Inserted, Reloaded, Saved int
}

// locals holds the per-block local predicates over the expression
// universe.
type locals struct {
	antloc []bitvec.Vec // upward-exposed computation
	comp   []bitvec.Vec // downward-exposed computation
	transp []bitvec.Vec // no operand killed in the block
}

// Run applies Morel/Renvoise PRE to g in place.
func Run(g *ir.Graph) Stats {
	return RunWith(g, nil)
}

// RunWith is Run against session s (nil for the uncached path). MR's four
// fixpoint systems are hand-rolled round-robin iterations — the
// bidirectional PP system does not fit the uni-directional solver — so the
// session is used only to tally their work (one "solve" per system, one
// sweep per round) for the pass pipeline's per-pass reporting.
func RunWith(g *ir.Graph, s *analysis.Session) Stats {
	eu := ir.ExprUniverse(g)
	bits := eu.Len()
	var st Stats
	if bits == 0 {
		return st
	}
	df := s.DataflowStats()
	loc := computeLocals(g, eu)

	avin, avout := solveAvailability(g, loc, bits, df)
	_, antin := solveAnticipability(g, loc, bits, df)
	ppin, ppout := solvePP(g, loc, avout, antin, bits, df)
	_ = avin

	// Placement predicates per block.
	n := len(g.Blocks)
	inserts := make([]bitvec.Vec, n)
	reloads := make([]bitvec.Vec, n)
	for i := range g.Blocks {
		insert := ppout[i].Copy()
		notAv := avout[i].Copy()
		notAv.Not()
		insert.And(notAv)
		weak := ppin[i].Copy()
		weak.And(loc.transp[i])
		weak.Not() // ¬PPIN + ¬TRANSP
		insert.And(weak)
		inserts[i] = insert

		reload := ppin[i].Copy()
		reload.And(loc.antloc[i])
		reloads[i] = reload
	}

	// Demand analysis: which blocks must supply h at their exit.
	needout := solveDemand(g, loc, inserts, reloads, bits, df)

	// Transformation. All expressions are transformed in one pass; the
	// per-expression transformations are independent (each has its own
	// temporary, and inserted instances only add occurrences of their own
	// expression).
	for i, b := range g.Blocks {
		save := loc.comp[i].Copy()
		save.And(needout[i])
		st.apply(g, b, eu, inserts[i], reloads[i], save)
	}
	g.Normalize()
	return st
}

// solveDemand computes NEEDOUT: the least fixpoint of the backward demand
// system above.
func solveDemand(g *ir.Graph, loc *locals, inserts, reloads []bitvec.Vec, bits int, df *dataflow.SolveStats) []bitvec.Vec {
	n := len(g.Blocks)
	needout := make([]bitvec.Vec, n)
	needin := make([]bitvec.Vec, n)
	for i := 0; i < n; i++ {
		needout[i] = bitvec.New(bits)
		needin[i] = bitvec.New(bits)
	}
	startSolve(df)
	for changed := true; changed; {
		changed = false
		sweep(df, n)
		for i := n - 1; i >= 0; i-- {
			b := g.Blocks[i]
			out := bitvec.New(bits)
			for _, s := range b.Succs {
				out.Or(needin[int(s)])
			}
			if !out.Equal(needout[i]) {
				needout[i].CopyFrom(out)
				changed = true
			}
			in := out.Copy()
			in.AndNot(inserts[i])
			in.AndNot(loc.comp[i])
			in.Or(reloads[i])
			if !in.Equal(needin[i]) {
				needin[i].CopyFrom(in)
				changed = true
			}
		}
	}
	return needout
}

func computeLocals(g *ir.Graph, eu *ir.ExprSet) *locals {
	n, bits := len(g.Blocks), eu.Len()
	loc := &locals{
		antloc: make([]bitvec.Vec, n),
		comp:   make([]bitvec.Vec, n),
		transp: make([]bitvec.Vec, n),
	}
	// killByVar[v] = expressions with operand v.
	killByVar := map[ir.Var]bitvec.Vec{}
	for id := 0; id < bits; id++ {
		e := eu.Expr(id)
		for _, v := range e.Vars(nil) {
			w, ok := killByVar[v]
			if !ok {
				w = bitvec.New(bits)
				killByVar[v] = w
			}
			w.Set(id)
		}
	}
	var terms []ir.Term
	for i, b := range g.Blocks {
		antloc := bitvec.New(bits)
		comp := bitvec.New(bits)
		killed := bitvec.New(bits)
		for k := range b.Instrs {
			in := &b.Instrs[k]
			terms = in.Terms(terms[:0])
			for _, t := range terms {
				if t.Trivial() {
					continue
				}
				id, ok := eu.ID(t)
				if !ok {
					continue
				}
				if !killed.Get(id) {
					antloc.Set(id)
				}
				comp.Set(id)
			}
			if v, ok := in.Defs(); ok {
				if kv, ok := killByVar[v]; ok {
					comp.AndNot(kv)
					killed.Or(kv)
				}
			}
		}
		loc.antloc[i] = antloc
		loc.comp[i] = comp
		killed.Not()
		loc.transp[i] = killed
	}
	return loc
}

// startSolve and sweep feed MR's hand-rolled fixpoints into the session's
// solver tally so per-pass reporting covers them too.
func startSolve(df *dataflow.SolveStats) {
	if df != nil {
		df.Solves++
	}
}

func sweep(df *dataflow.SolveStats, visits int) {
	if df != nil {
		df.Sweeps++
		df.Visits += visits
	}
}

func solveAvailability(g *ir.Graph, loc *locals, bits int, df *dataflow.SolveStats) (avin, avout []bitvec.Vec) {
	n := len(g.Blocks)
	avin = fullVecs(n, bits)
	avout = fullVecs(n, bits)
	startSolve(df)
	for changed := true; changed; {
		changed = false
		sweep(df, n)
		for i, b := range g.Blocks {
			in := avin[i]
			if b.ID == g.Entry {
				in.ClearAll()
			} else {
				in.SetAll()
				for _, p := range b.Preds {
					in.And(avout[int(p)])
				}
			}
			next := in.Copy()
			next.And(loc.transp[i])
			next.Or(loc.comp[i])
			if !next.Equal(avout[i]) {
				avout[i].CopyFrom(next)
				changed = true
			}
		}
	}
	return avin, avout
}

func solveAnticipability(g *ir.Graph, loc *locals, bits int, df *dataflow.SolveStats) (antout, antin []bitvec.Vec) {
	n := len(g.Blocks)
	antout = fullVecs(n, bits)
	antin = fullVecs(n, bits)
	startSolve(df)
	for changed := true; changed; {
		changed = false
		sweep(df, n)
		for i := n - 1; i >= 0; i-- {
			b := g.Blocks[i]
			out := antout[i]
			if b.ID == g.Exit {
				out.ClearAll()
			} else {
				out.SetAll()
				for _, s := range b.Succs {
					out.And(antin[int(s)])
				}
			}
			next := out.Copy()
			next.And(loc.transp[i])
			next.Or(loc.antloc[i])
			if !next.Equal(antin[i]) {
				antin[i].CopyFrom(next)
				changed = true
			}
		}
	}
	return antout, antin
}

// solvePP iterates the bidirectional system to its greatest fixpoint.
func solvePP(g *ir.Graph, loc *locals, avout, antin []bitvec.Vec, bits int, df *dataflow.SolveStats) (ppin, ppout []bitvec.Vec) {
	n := len(g.Blocks)
	ppin = fullVecs(n, bits)
	ppout = fullVecs(n, bits)
	scratch := bitvec.New(bits)
	startSolve(df)
	for changed := true; changed; {
		changed = false
		sweep(df, n)
		for i, b := range g.Blocks {
			// PPOUT_i = ∏ succ PPIN (∅ at exit).
			out := scratch
			if b.ID == g.Exit {
				out.ClearAll()
			} else {
				out.SetAll()
				for _, s := range b.Succs {
					out.And(ppin[int(s)])
				}
			}
			if !out.Equal(ppout[i]) {
				ppout[i].CopyFrom(out)
				changed = true
			}

			// PPIN_i (∅ at entry).
			in := bitvec.New(bits)
			if b.ID != g.Entry {
				in.CopyFrom(ppout[i])
				in.And(loc.transp[i])
				in.Or(loc.antloc[i])
				in.And(antin[i])
				for _, p := range b.Preds {
					pred := avout[int(p)].Copy()
					pred.Or(ppout[int(p)])
					in.And(pred)
				}
			}
			if !in.Equal(ppin[i]) {
				ppin[i].CopyFrom(in)
				changed = true
			}
		}
	}
	return ppin, ppout
}

// apply performs the placement in one block.
func (st *Stats) apply(g *ir.Graph, b *ir.Block, eu *ir.ExprSet, insert, reload, save bitvec.Vec) {
	bits := eu.Len()
	// Walk the block replacing upward-exposed occurrences (reload) and
	// extending the downward-exposed occurrence (save). A reload that
	// stays valid to the block exit makes the save unnecessary.
	killed := bitvec.New(bits)
	hValid := bitvec.New(bits) // h := e known to hold at this point
	next := make([]ir.Instr, 0, len(b.Instrs)+2)

	// lastSaveSite[id] remembers the index in `next` of the instruction
	// that must be rewritten into a save; resolved after the walk.
	type savePoint struct{ nextIdx int }
	lastSave := map[int]savePoint{}

	for k := range b.Instrs {
		in := b.Instrs[k]
		rewritten := in
		var occs []ir.Term
		occs = in.Terms(occs[:0])
		for _, t := range occs {
			if t.Trivial() {
				continue
			}
			id, ok := eu.ID(t)
			if !ok {
				continue
			}
			h := g.TempFor(t)
			switch {
			case reload.Get(id) && !killed.Get(id):
				// Upward exposed: use h instead of recomputing.
				rewritten = replaceExpr(rewritten, t, ir.VarTerm(h))
				hValid.Set(id)
				st.Reloaded++
			case save.Get(id):
				// Possibly the downward-exposed computation; remember the
				// site — a later occurrence supersedes it.
				lastSave[id] = savePoint{nextIdx: len(next)}
			}
		}
		next = append(next, rewritten)
		if v, ok := rewritten.Defs(); ok {
			// Kills: operand redefinitions invalidate both the pending
			// saves' validity tracking and hValid.
			for id := 0; id < bits; id++ {
				if eu.Expr(id).UsesVar(v) {
					killed.Set(id)
					hValid.Clear(id)
				}
			}
		}
	}

	// Resolve saves: rewrite x := e into h := e; x := h (or prepend
	// h := e before a condition) unless h is already valid at exit.
	// Process in descending index order so earlier insertions do not
	// shift later sites.
	type pending struct{ idx, id int }
	var saves []pending
	for id, sp := range lastSave {
		if hValid.Get(id) {
			continue // a reload already guarantees h at exit
		}
		saves = append(saves, pending{sp.nextIdx, id})
	}
	// Sort descending by index.
	for i := 0; i < len(saves); i++ {
		for j := i + 1; j < len(saves); j++ {
			if saves[j].idx > saves[i].idx {
				saves[i], saves[j] = saves[j], saves[i]
			}
		}
	}
	for _, sp := range saves {
		e := eu.Expr(sp.id)
		h := g.TempFor(e)
		in := next[sp.idx]
		switch {
		case in.Kind == ir.KindAssign && in.RHS.Equal(e):
			next[sp.idx] = ir.NewAssign(in.LHS, ir.VarTerm(h))
			next = insertAt(next, sp.idx, ir.NewAssign(h, e))
		default:
			// Condition (or a reload-rewritten instruction): compute h
			// just before and substitute the side.
			next[sp.idx] = replaceExpr(in, e, ir.VarTerm(h))
			next = insertAt(next, sp.idx, ir.NewAssign(h, e))
		}
		st.Saved++
	}

	// Insertions at the block end (before a trailing condition).
	insert.ForEach(func(id int) {
		e := eu.Expr(id)
		h := g.TempFor(e)
		inst := ir.NewAssign(h, e)
		if m := len(next); m > 0 && next[m-1].Kind == ir.KindCond {
			next = insertAt(next, m-1, inst)
		} else {
			next = append(next, inst)
		}
		st.Inserted++
	})

	b.Instrs = next
}

// replaceExpr substitutes `to` for the occurrence of expression `from` in
// the instruction (assignment RHS or condition side).
func replaceExpr(in ir.Instr, from, to ir.Term) ir.Instr {
	switch in.Kind {
	case ir.KindAssign:
		if in.RHS.Equal(from) {
			return ir.NewAssign(in.LHS, to)
		}
	case ir.KindCond:
		l, r := in.CondL, in.CondR
		if l.Equal(from) {
			l = to
		}
		if r.Equal(from) {
			r = to
		}
		return ir.NewCond(in.CondOp, l, r)
	}
	return in
}

func insertAt(s []ir.Instr, i int, in ir.Instr) []ir.Instr {
	s = append(s, ir.Instr{})
	copy(s[i+1:], s[i:])
	s[i] = in
	return s
}

func fullVecs(n, bits int) []bitvec.Vec {
	out := make([]bitvec.Vec, n)
	for i := range out {
		out[i] = bitvec.NewFull(bits)
	}
	return out
}
