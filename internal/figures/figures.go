// Package figures embeds every worked example of the paper as a ".fg"
// program and exposes loaders for tests, benchmarks, the experiment
// harness, and the example binaries. The table in DESIGN.md ("Experiment
// index") maps each figure to its reproduction artifact; fig07 and fig16
// are topology reconstructions, documented in EXPERIMENTS.md.
package figures

import (
	"embed"
	"sort"
	"strings"

	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
)

//go:embed fg/*.fg
var files embed.FS

// Names returns the available figure names, sorted.
func Names() []string {
	entries, err := files.ReadDir("fg")
	if err != nil {
		panic(err)
	}
	var out []string
	for _, e := range entries {
		out = append(out, strings.TrimSuffix(e.Name(), ".fg"))
	}
	sort.Strings(out)
	return out
}

// Source returns the .fg source text of the named figure.
func Source(name string) string {
	data, err := files.ReadFile("fg/" + name + ".fg")
	if err != nil {
		panic("figures: unknown figure " + name)
	}
	return string(data)
}

// Load parses the named figure into a fresh graph.
func Load(name string) *ir.Graph {
	g, err := parse.Parse(Source(name))
	if err != nil {
		panic("figures: " + name + ": " + err.Error())
	}
	return g
}
