package figures

import (
	"reflect"
	"testing"

	"assignmentmotion/internal/am"
	"assignmentmotion/internal/copyprop"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/lcm"
	"assignmentmotion/internal/metrics"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/printer"
	"assignmentmotion/internal/verify"
)

func TestAllFiguresParseValidateRoundTrip(t *testing.T) {
	names := Names()
	if len(names) < 7 {
		t.Fatalf("only %d figures embedded: %v", len(names), names)
	}
	for _, name := range names {
		g := Load(name)
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		g2, err := parse.ParseWith(printer.String(g), parse.Options{AllowTemps: true})
		if err != nil {
			t.Errorf("%s: round trip failed: %v", name, err)
			continue
		}
		if g.Encode() != g2.Encode() {
			t.Errorf("%s: round trip changed graph", name)
		}
	}
}

// checkPreserved asserts semantics preservation on random inputs.
func checkPreserved(t *testing.T, name string, orig, xform *ir.Graph) {
	t.Helper()
	rep := verify.Equivalent(orig, xform, 16, 42)
	if !rep.Equivalent {
		t.Fatalf("%s: semantics changed: %s\n%s", name, rep.Detail, printer.String(xform))
	}
}

func count(g *ir.Graph, key string) int {
	n := 0
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Key() == key {
				n++
			}
		}
	}
	return n
}

func hasInstr(b *ir.Block, key string) bool {
	for _, in := range b.Instrs {
		if in.Key() == key {
			return true
		}
	}
	return false
}

// F7 — Figure 7: motion across an irreducible loop; no motion into the
// first loop; residual partial redundancy at n6.
func TestFigure07Loops(t *testing.T) {
	g := Load("fig07")
	orig := g.Clone()
	am.Run(g)
	g.MustValidate()

	// n11's occurrence is absorbed across the irreducible loop.
	if hasInstr(g.BlockByName("n11"), "x:=y+z") {
		t.Errorf("x := y+z not moved out of n11:\n%s", printer.String(g))
	}
	// The irreducible loop itself must stay clean.
	for _, name := range []string{"la", "lb"} {
		if hasInstr(g.BlockByName(name), "x:=y+z") {
			t.Errorf("x := y+z moved INTO irreducible loop node %s", name)
		}
	}
	// n6's occurrence remains (partially redundant, but eliminating it
	// would require motion into loop1).
	if !hasInstr(g.BlockByName("n6"), "x:=y+z") {
		t.Errorf("n6 lost its occurrence:\n%s", printer.String(g))
	}
	// loop1's body keeps its (blocked) occurrence and gains nothing.
	body := g.BlockByName("body1")
	if !hasInstr(body, "x:=y+z") || count(g, "x:=y+z") != 2 {
		t.Errorf("loop1 disturbed; occurrences=%d:\n%s", count(g, "x:=y+z"), printer.String(g))
	}
	checkPreserved(t, "fig07", orig, g)
}

// F16 — Figures 16/17: the goals "expression-optimal" and "minimal
// temporary lifetimes / assignment counts" genuinely conflict, so full
// assignment-/temporary-optimality is impossible. GlobAlg picks the
// expression-optimal solution; shortening h1's lifetime by recomputing
// c+d at n6 would cost an extra expression evaluation.
func TestFigure16OptimalityTradeoff(t *testing.T) {
	g := Load("fig16")
	orig := g.Clone()
	core.Optimize(g)
	g.MustValidate()
	checkPreserved(t, "fig16", orig, g)

	// GlobAlg's result: both n6-paths execute 4 assignments and evaluate
	// 2 expressions; h1 stays live across n3/n4.
	envP1 := map[ir.Var]int64{"p": -1, "q": 5, "a": 1, "b": 2, "c": 3, "d": 4}
	envP2 := map[ir.Var]int64{"p": 5, "q": 5, "a": 1, "b": 2, "c": 3, "d": 4}
	envP5 := map[ir.Var]int64{"p": -1, "q": -5, "a": 1, "b": 2, "c": 3, "d": 4}
	for _, env := range []map[ir.Var]int64{envP1, envP2} {
		r := interp.Run(g, env, 0)
		if r.Counts.ExprEvals != 2 {
			t.Errorf("env %v: expr evals = %d, want 2\n%s", env, r.Counts.ExprEvals, printer.String(g))
		}
		if r.Counts.AssignExecs != 4 {
			t.Errorf("env %v: assign execs = %d, want 4\n%s", env, r.Counts.AssignExecs, printer.String(g))
		}
	}
	// The n5 path must stay lean: one evaluation (c+d), three assignments.
	r5 := interp.Run(g, envP5, 0)
	if r5.Counts.ExprEvals != 1 || r5.Counts.AssignExecs != 3 {
		t.Errorf("n5 path: evals=%d assigns=%d, want 1/3\n%s",
			r5.Counts.ExprEvals, r5.Counts.AssignExecs, printer.String(g))
	}

	// The short-lifetime alternative: keep a := c+d late and direct.
	// It is semantically equal and has strictly smaller temp lifetime,
	// but is NOT expression-optimal — demonstrating the conflict.
	alt := parse.MustParseTemps(`
graph fig16alt {
  entry s
  exit e
  block s { if p < 0 then n1 else n2 }
  block n1 {
    h1 := c + d
    a := h1
    goto n3
  }
  block n2 {
    h1 := c + d
    b := h1
    goto n3
  }
  block n3 { goto n4 }
  block n4 { if q < 0 then n5 else n6 }
  block n5 {
    x := 1
    goto e
  }
  block n6 {
    x := a + b
    a := c + d
    goto e
  }
  block e { out(a, b, x) }
}
`)
	checkPreserved(t, "fig16-alt", orig, alt)
	mGlob, mAlt := metrics.Measure(g), metrics.Measure(alt)
	if mAlt.TempLifetime >= mGlob.TempLifetime {
		t.Errorf("alternative does not shorten lifetimes: %d vs %d", mAlt.TempLifetime, mGlob.TempLifetime)
	}
	rAlt := interp.Run(alt, envP1, 0)
	if rAlt.Counts.ExprEvals <= 2 {
		t.Errorf("alternative unexpectedly expression-optimal (evals=%d); tradeoff demo broken", rAlt.Counts.ExprEvals)
	}
}

// F18/19/20 — Section 6 pragmatics: EM stuck on 3-address code, EM+CP
// recovers the expressions, uniform EM&AM empties the loop and beats both.
func TestFigure18Pragmatics(t *testing.T) {
	base := Load("fig18")
	env := map[ir.Var]int64{"a": 1, "b": 2, "c": 3, "k": 0}

	em := base.Clone()
	lcm.Run(em)
	em.MustValidate()

	emcp := base.Clone()
	for i := 0; i < 6; i++ {
		before := emcp.Encode()
		lcm.Run(emcp)
		copyprop.Run(emcp)
		if emcp.Encode() == before {
			break
		}
	}
	emcp.MustValidate()

	glob := base.Clone()
	core.Optimize(glob)
	glob.MustValidate()

	for name, g := range map[string]*ir.Graph{"em": em, "emcp": emcp, "glob": glob} {
		checkPreserved(t, "fig18-"+name, base, g)
	}

	rOrig := interp.Run(base, env, 0)
	rEM := interp.Run(em, env, 0)
	rEMCP := interp.Run(emcp, env, 0)
	rGlob := interp.Run(glob, env, 0)

	// Figure 19(b): EM alone leaves t+c in the loop — strictly more
	// evaluations than EM+CP (Figure 20(a)).
	if !(rEM.Counts.ExprEvals < rOrig.Counts.ExprEvals) {
		t.Errorf("EM gave no improvement: %d vs %d", rEM.Counts.ExprEvals, rOrig.Counts.ExprEvals)
	}
	if !(rEMCP.Counts.ExprEvals < rEM.Counts.ExprEvals) {
		t.Errorf("EM+CP (%d evals) not better than EM (%d)", rEMCP.Counts.ExprEvals, rEM.Counts.ExprEvals)
	}
	// Figure 20(b): the uniform algorithm matches EM+CP on expressions
	// and strictly beats it on assignments (the loop is emptied).
	if rGlob.Counts.ExprEvals > rEMCP.Counts.ExprEvals {
		t.Errorf("GlobAlg (%d evals) worse than EM+CP (%d)", rGlob.Counts.ExprEvals, rEMCP.Counts.ExprEvals)
	}
	if !(rGlob.Counts.AssignExecs < rEMCP.Counts.AssignExecs) {
		t.Errorf("GlobAlg (%d assigns) not strictly better than EM+CP (%d)",
			rGlob.Counts.AssignExecs, rEMCP.Counts.AssignExecs)
	}
	if !(rGlob.Counts.AssignExecs < rEM.Counts.AssignExecs) {
		t.Errorf("GlobAlg (%d assigns) not strictly better than EM (%d)",
			rGlob.Counts.AssignExecs, rEM.Counts.AssignExecs)
	}

	// Figure 20(b) literally: the loop body holds only the counter
	// update and the condition.
	n2 := glob.BlockByName("n2")
	for _, in := range n2.Instrs {
		switch in.Key() {
		case "k:=k+1", "k<5", "skip":
		default:
			t.Errorf("loop body not emptied, contains %q:\n%s", in.Key(), printer.String(glob))
		}
	}
}

// TestFiguresGlobAlgAlwaysSafeAndStable covers every embedded figure with
// the full pipeline.
func TestFiguresGlobAlgAlwaysSafeAndStable(t *testing.T) {
	for _, name := range Names() {
		orig := Load(name)
		g := orig.Clone()
		core.Optimize(g)
		g.MustValidate()
		checkPreserved(t, name, orig, g)
		rep := verify.Equivalent(orig, g, 12, 7)
		if rep.B.ExprEvals > rep.A.ExprEvals {
			t.Errorf("%s: GlobAlg increased expression evaluations %d -> %d",
				name, rep.A.ExprEvals, rep.B.ExprEvals)
		}
	}
}

func TestSourceAndNames(t *testing.T) {
	want := []string{"fig01", "fig02", "fig07", "fig08", "fig10", "fig16", "fig18", "running"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names = %v, want %v", got, want)
	}
	if src := Source("running"); len(src) == 0 {
		t.Error("empty source")
	}
	defer func() {
		if recover() == nil {
			t.Error("Source on unknown figure did not panic")
		}
	}()
	Source("nope")
}
