package figures

import (
	"embed"
	"flag"
	"os"
	"testing"

	"assignmentmotion/internal/core"
	"assignmentmotion/internal/printer"
)

//go:embed golden/*.fg
var goldenFiles embed.FS

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden GlobAlg outputs")

// TestGoldenGlobAlgOutputs pins the exact optimizer output for every
// figure. These are regression anchors: any change — even a benign
// reordering — must be reviewed and re-blessed with
//
//	go test ./internal/figures -run TestGolden -update-golden
func TestGoldenGlobAlgOutputs(t *testing.T) {
	for _, name := range Names() {
		g := Load(name)
		core.Optimize(g)
		got := printer.String(g)
		path := "golden/" + name + ".globalg.fg"
		if *updateGolden {
			if err := os.WriteFile("internal/figures/"+path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := goldenFiles.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden file (run with -update-golden): %v", name, err)
		}
		if got != string(want) {
			t.Errorf("%s: optimizer output changed.\n--- want\n%s\n--- got\n%s\n(re-bless with -update-golden if intended)",
				name, want, got)
		}
	}
}

// TestGoldenFilesReparse ensures the checked-in goldens are themselves
// valid programs.
func TestGoldenFilesReparse(t *testing.T) {
	entries, err := goldenFiles.ReadDir("golden")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(Names()) {
		t.Errorf("golden count %d != figure count %d", len(entries), len(Names()))
	}
}
