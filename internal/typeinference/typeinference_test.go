package typeinference

import (
	"testing"

	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
)

func TestCompileInfersTypes(t *testing.T) {
	g, res, err := Compile(`
		fn scale(x: int, k: int) {
			return x * k
		}
		fn hot(x: int): bool {
			return x > 100
		}
		prog p {
			let a = scale(n, 3)
			let warm = hot(a)
			out(a, warm)
		}
	`)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if g == nil {
		t.Fatal("Compile returned nil graph")
	}
	if got := res.Funcs["scale"].Result; got != Int {
		t.Errorf("scale result = %v, want int", got)
	}
	if got := res.Funcs["hot"].Result; got != Bool {
		t.Errorf("hot result = %v, want bool", got)
	}
	if got := res.ProgVars["a"]; got != Int {
		t.Errorf("a = %v, want int", got)
	}
	if got := res.ProgVars["warm"]; got != Bool {
		t.Errorf("warm = %v, want bool", got)
	}
	if len(res.Inputs) != 1 || res.Inputs[0] != "n" {
		t.Errorf("Inputs = %v, want [n]", res.Inputs)
	}
	if len(res.Diags) != 0 {
		t.Errorf("unexpected diagnostics: %v", res.Diags)
	}
	r := interp.Run(g, map[ir.Var]int64{"n": 50}, interp.DefaultMaxSteps)
	if len(r.Trace) != 2 || r.Trace[0] != 150 || r.Trace[1] != 1 {
		t.Errorf("trace = %v, want [150 1]", r.Trace)
	}
}

func TestCompileStrictFails(t *testing.T) {
	cases := []struct {
		name string
		src  string
		code string
	}{
		{"bool arith", `prog p { let a = true + 1 }`, CodeTypeMismatch},
		{"int cond", `prog p { let a = 1 if a { out(a) } }`, CodeCondNotBool},
		{"bool to int", `prog p { let a: int = true }`, CodeTypeMismatch},
		{"assign flips type", `prog p { let a = 1 a := true }`, CodeTypeMismatch},
		{"undeclared in fn", `fn f(x: int): int { return y } prog p { out(f(1)) }`, CodeUndeclaredVar},
		{"redeclared", `prog p { let a = 1 let a = 2 }`, CodeRedeclaredVar},
		{"use before let", `prog p { out(a) let a = 2 }`, CodeUseBeforeLet},
		{"arg type", `fn f(b: bool): int { return 1 } prog p { out(f(3)) }`, CodeTypeMismatch},
		{"arity", `fn f(x: int): int { return x } prog p { out(f()) }`, CodeArity},
		{"undefined fn", `prog p { out(g(1)) }`, CodeUndefinedFunc},
		{"recursion", `fn f(x: int): int { return f(x) } prog p { out(f(1)) }`, CodeRecursion},
		{"mutual recursion", `
			fn f(x: int): int { return g(x) }
			fn g(x: int): int { return f(x) }
			prog p { out(f(1)) }`, CodeRecursion},
		{"missing return", `fn f(x: int): int { let y = x } prog p { out(f(1)) }`, CodeMissingReturn},
		{"mixed returns", `
			fn f(x: int) {
				if x > 0 { return true }
				return 1
			}
			prog p { out(f(1)) }`, CodeTypeMismatch},
		{"result annotation", `fn f(x: int): bool { return x + 1 } prog p { out(f(1)) }`, CodeTypeMismatch},
		{"break outside loop", `prog p { break }`, CodeLoopContext},
		{"return in prog", `prog p { return 1 }`, CodeReturnContext},
		{"reserved temp", `prog p { let h1 = 1 }`, CodeReservedName},
		{"duplicate fn", `fn f(x: int): int { return x } fn f(y: int): int { return y } prog p { out(f(1)) }`, CodeDuplicateFunc},
		{"duplicate param", `fn f(x: int, x: int): int { return x } prog p { out(f(1, 2)) }`, CodeDuplicateParam},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, res, err := Compile(tc.src)
			if err == nil {
				t.Fatalf("Compile succeeded, want %s error", tc.code)
			}
			if g != nil {
				t.Error("Compile returned a graph alongside the error")
			}
			if res == nil {
				t.Fatal("Compile returned nil result")
			}
			found := false
			for _, d := range res.Diags {
				if d.Code == tc.code {
					found = true
				}
			}
			if !found {
				t.Errorf("no %s diagnostic; got %v (err %v)", tc.code, res.Diags, err)
			}
		})
	}
}

func TestInspectToleratesErrors(t *testing.T) {
	// Several independent problems; inspect mode must report all of them
	// and still type what it can.
	res, err := Inspect(`
		fn f(x: int): int {
			return x + missing
		}
		prog p {
			let a = 1
			let b = g(a)
			let a = true + 2
			out(a, b)
		}
	`)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	codes := map[string]int{}
	for _, d := range res.Diags {
		codes[d.Code]++
	}
	for _, want := range []string{CodeUndeclaredVar, CodeUndefinedFunc, CodeRedeclaredVar, CodeTypeMismatch} {
		if codes[want] == 0 {
			t.Errorf("missing %s diagnostic; got %v", want, res.Diags)
		}
	}
	// Partial results survive the errors.
	if got := res.ProgVars["a"]; got != Int {
		t.Errorf("a = %v, want int (partial result)", got)
	}
	if got := res.Funcs["f"].Params; len(got) != 1 || got[0] != Int {
		t.Errorf("f params = %v, want [int]", got)
	}
	for _, d := range res.Diags {
		if d.Pos.Line == 0 {
			t.Errorf("diagnostic %v lacks a position", d)
		}
		if d.Severity != SeverityError && d.Severity != SeverityWarning {
			t.Errorf("diagnostic %v has invalid severity", d)
		}
	}
}

func TestInspectSyntaxErrorStillFails(t *testing.T) {
	if _, err := Inspect(`prog p { let = 1 }`); err == nil {
		t.Fatal("Inspect accepted a syntax error")
	}
}

func TestUnreachableIsWarning(t *testing.T) {
	g, res, err := Compile(`
		prog p {
			let i = 0
			while i < 3 {
				i := i + 1
				continue
				i := 99
			}
			out(i)
		}
	`)
	if err != nil {
		t.Fatalf("Compile: %v (unreachable code must be a warning, not an error)", err)
	}
	warned := false
	for _, d := range res.Diags {
		if d.Code == CodeUnreachable && d.Severity == SeverityWarning {
			warned = true
		}
	}
	if !warned {
		t.Errorf("no unreachable-code warning; diags %v", res.Diags)
	}
	r := interp.Run(g, nil, interp.DefaultMaxSteps)
	if len(r.Trace) != 1 || r.Trace[0] != 3 {
		t.Errorf("trace = %v, want [3]", r.Trace)
	}
}

func TestInferenceThroughCallChain(t *testing.T) {
	// f's result is inferred, g calls f before f is declared in source
	// order; the call-graph ordering must still type g correctly.
	_, res, err := Compile(`
		fn g(x: int) {
			return f(x) > 0
		}
		fn f(x: int) {
			return x * x
		}
		prog p {
			out(g(3))
		}
	`)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if got := res.Funcs["f"].Result; got != Int {
		t.Errorf("f result = %v, want int", got)
	}
	if got := res.Funcs["g"].Result; got != Bool {
		t.Errorf("g result = %v, want bool", got)
	}
}

func TestErrsFilter(t *testing.T) {
	res, err := Inspect(`
		prog p {
			let i = 0
			while i < 2 { i := i + 1 break skip }
			out(missingfn(i))
		}
	`)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	errs := res.Errs()
	if len(errs) == 0 {
		t.Fatal("Errs() empty; want the undefined-func error")
	}
	for _, d := range errs {
		if d.Severity != SeverityError {
			t.Errorf("Errs() returned %v", d)
		}
	}
	if len(errs) == len(res.Diags) {
		t.Errorf("expected at least one warning to be filtered out; diags %v", res.Diags)
	}
}
