// Package typeinference checks the typed dialect: per-variable types with
// inference (annotations are optional), function signatures, scope and
// reachability rules. It runs in two modes. The strict mode (Check,
// Compile) fails on the first error, for the compile pipeline. InspectMode
// (Inspect) is the tooling mode: it tolerates errors and returns partial
// results — every type it could still infer — plus the full structured
// diagnostic list, so editors and linters see the whole picture from one
// pass over a broken program.
package typeinference

import (
	"fmt"
	"sort"

	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
)

// Type is an inferred variable type. Unknown means inference could not
// decide — only possible alongside diagnostics.
type Type int

const (
	Unknown Type = iota
	Int
	Bool
)

func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case Bool:
		return "bool"
	}
	return "unknown"
}

func typeOfName(name string) Type {
	switch name {
	case parse.TypeInt:
		return Int
	case parse.TypeBool:
		return Bool
	}
	return Unknown
}

// Severity of a diagnostic. Errors fail strict checking; warnings never do.
const (
	SeverityError   = "error"
	SeverityWarning = "warning"
)

// Diagnostic is one structured finding: a stable machine-readable code, a
// source position, and a human message.
type Diagnostic struct {
	Pos      parse.Pos `json:"pos"`
	Code     string    `json:"code"`
	Severity string    `json:"severity"`
	Message  string    `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%d:%d: %s", d.Pos.Line, d.Pos.Col, d.Message)
}

// Diagnostic codes.
const (
	CodeDuplicateFunc  = "duplicate-func"
	CodeDuplicateParam = "duplicate-param"
	CodeRecursion      = "recursive-call"
	CodeUndefinedFunc  = "undefined-func"
	CodeArity          = "arity-mismatch"
	CodeUndeclaredVar  = "undeclared-var"
	CodeRedeclaredVar  = "redeclared-var"
	CodeUseBeforeLet   = "use-before-declaration"
	CodeTypeMismatch   = "type-mismatch"
	CodeCondNotBool    = "condition-not-bool"
	CodeReservedName   = "reserved-temp-name"
	CodeLoopContext    = "outside-loop"
	CodeReturnContext  = "return-outside-function"
	CodeMissingReturn  = "missing-return"
	CodeUnreachable    = "unreachable-code"
)

// Signature is a function's checked type.
type Signature struct {
	Params []Type `json:"params"`
	Result Type   `json:"result"`
}

// Result is everything one checking pass learned.
type Result struct {
	// Funcs maps function name → signature.
	Funcs map[string]Signature `json:"funcs,omitempty"`
	// FuncVars maps function name → its parameters and locals with types.
	FuncVars map[string]map[string]Type `json:"funcVars,omitempty"`
	// ProgVars maps program-scope variables (declared, assigned, or free)
	// to their types.
	ProgVars map[string]Type `json:"progVars,omitempty"`
	// Inputs lists the program's free variables — read before any
	// assignment, bound at execution time — in sorted order.
	Inputs []string `json:"inputs,omitempty"`
	// Diags holds every finding, in source order of discovery.
	Diags []Diagnostic `json:"diags,omitempty"`
}

// Errs returns the error-severity diagnostics.
func (r *Result) Errs() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Severity == SeverityError {
			out = append(out, d)
		}
	}
	return out
}

// Options configure checking.
type Options struct {
	// InspectMode relaxes validation: checking never fails on semantic
	// errors; they are all collected as diagnostics alongside the partial
	// results. Syntax errors still fail, upstream, in the parser.
	InspectMode bool
}

// Check type-checks a parsed unit. In strict mode (InspectMode false), the
// returned error summarizes the first error diagnostic; the Result is
// still populated with everything learned up to and past it. In
// InspectMode the error is always nil.
func Check(u *parse.Unit, opts Options) (*Result, error) {
	c := &checker{
		opts:  opts,
		funcs: map[string]*parse.FuncDecl{},
		res: &Result{
			Funcs:    map[string]Signature{},
			FuncVars: map[string]map[string]Type{},
			ProgVars: map[string]Type{},
		},
	}
	c.run(u)
	if !opts.InspectMode {
		if errs := c.res.Errs(); len(errs) > 0 {
			return c.res, fmt.Errorf("%s", errs[0])
		}
	}
	return c.res, nil
}

// Inspect parses and checks src in InspectMode: semantic problems become
// diagnostics, never errors. Only a lex/parse failure returns an error.
func Inspect(src string) (*Result, error) {
	u, err := parse.ParseUnit(src)
	if err != nil {
		return nil, err
	}
	return Check(u, Options{InspectMode: true})
}

// Compile is the strict front door: parse, check, lower. The Result is
// returned even when checking fails, for error reporting with types.
func Compile(src string) (*ir.Graph, *Result, error) {
	u, err := parse.ParseUnit(src)
	if err != nil {
		return nil, nil, err
	}
	res, err := Check(u, Options{})
	if err != nil {
		return nil, res, err
	}
	g, err := u.Lower()
	if err != nil {
		return nil, res, err
	}
	return g, res, nil
}

type checker struct {
	opts      Options
	funcs     map[string]*parse.FuncDecl
	res       *Result
	loopDepth int
	// returns accumulates the inferred result type of each function whose
	// annotation was omitted.
	returns map[string]Type
}

func (c *checker) diag(at parse.Pos, code, severity, format string, args ...any) {
	c.res.Diags = append(c.res.Diags, Diagnostic{
		Pos: at, Code: code, Severity: severity, Message: fmt.Sprintf(format, args...),
	})
}

func (c *checker) errf(at parse.Pos, code, format string, args ...any) {
	c.diag(at, code, SeverityError, format, args...)
}

// varInfo tracks one variable in a scope.
type varInfo struct {
	typ   Type
	let   bool // declared with let (or a parameter)
	input bool // program-scope free variable read before assignment
}

// scope is one flat checking scope: a function (strict: every name must be
// a parameter or local) or the program (free variables are inputs, as in
// the flat dialects).
type scope struct {
	fn   *parse.FuncDecl // nil for the program
	vars map[string]*varInfo
}

func (c *checker) run(u *parse.Unit) {
	// Declarations and signature skeletons first, so bodies can call in
	// any order.
	for _, fn := range u.Funcs {
		if c.funcs[fn.Name] != nil {
			c.errf(fn.Pos, CodeDuplicateFunc, "duplicate function %q", fn.Name)
			continue
		}
		c.funcs[fn.Name] = fn
		sig := Signature{Result: typeOfName(fn.Result)}
		for _, p := range fn.Params {
			sig.Params = append(sig.Params, typeOfName(p.Typ))
		}
		c.res.Funcs[fn.Name] = sig
	}

	// Check functions in call-graph order so inferred result types are
	// available at call sites; cycles are reported and broken.
	for _, fn := range c.sortFuncs(u) {
		c.checkFunc(fn)
	}

	if u.Prog != nil {
		c.checkProg(u.Prog)
	}
}

// sortFuncs returns the functions in callee-before-caller order, emitting
// recursion diagnostics for call-graph cycles (which the inliner cannot
// lower).
func (c *checker) sortFuncs(u *parse.Unit) []*parse.FuncDecl {
	type edge struct {
		callee string
		at     parse.Pos
	}
	callees := map[string][]edge{}
	for name, fn := range c.funcs {
		var list []edge
		walkCalls(fn.Body, func(call *parse.CallExpr) {
			list = append(list, edge{callee: call.Name, at: call.Pos})
		})
		callees[name] = list
	}
	const (
		white = iota
		gray
		black
	)
	state := map[string]int{}
	var order []*parse.FuncDecl
	var visit func(name string)
	visit = func(name string) {
		state[name] = gray
		for _, e := range callees[name] {
			target := c.funcs[e.callee]
			if target == nil {
				continue // undefined: reported while checking the body
			}
			switch state[e.callee] {
			case white:
				visit(e.callee)
			case gray:
				c.errf(e.at, CodeRecursion,
					"recursive call to %q (functions must not recurse)", e.callee)
			}
		}
		state[name] = black
		order = append(order, c.funcs[name])
	}
	// Iterate declaration order for deterministic output.
	for _, fn := range u.Funcs {
		if c.funcs[fn.Name] == fn && state[fn.Name] == white {
			visit(fn.Name)
		}
	}
	return order
}

func walkCalls(stmts []parse.Stmt, f func(*parse.CallExpr)) {
	var walkExpr func(parse.Expr)
	walkExpr = func(e parse.Expr) {
		switch e := e.(type) {
		case *parse.BinExpr:
			walkExpr(e.L)
			walkExpr(e.R)
		case *parse.CallExpr:
			f(e)
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	var walk func([]parse.Stmt)
	walk = func(stmts []parse.Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *parse.LetStmt:
				walkExpr(s.Init)
			case *parse.AssignStmt:
				walkExpr(s.Value)
			case *parse.OutStmt:
				for _, a := range s.Args {
					walkExpr(a)
				}
			case *parse.IfStmt:
				walkExpr(s.Cond)
				walk(s.Then)
				walk(s.Else)
			case *parse.WhileStmt:
				walkExpr(s.Cond)
				walk(s.Body)
			case *parse.DoWhileStmt:
				walk(s.Body)
				walkExpr(s.Cond)
			case *parse.ReturnStmt:
				walkExpr(s.Value)
			}
		}
	}
	walk(stmts)
}

func (c *checker) checkFunc(fn *parse.FuncDecl) {
	sc := &scope{fn: fn, vars: map[string]*varInfo{}}
	for _, p := range fn.Params {
		c.checkName(p.Pos, p.Name)
		if _, dup := sc.vars[p.Name]; dup {
			c.errf(p.Pos, CodeDuplicateParam, "duplicate parameter %q", p.Name)
			continue
		}
		sc.vars[p.Name] = &varInfo{typ: typeOfName(p.Typ), let: true}
	}

	saved := c.loopDepth
	c.loopDepth = 0
	terminated := c.checkStmts(fn.Body, sc, &returnCtx{fn: fn, declared: typeOfName(fn.Result)})
	c.loopDepth = saved

	if !terminated {
		c.errf(fn.Pos, CodeMissingReturn, "function %q does not return on every path", fn.Name)
	}

	// Publish the (possibly refined) signature and variable types.
	sig := c.res.Funcs[fn.Name]
	if rc := c.returns[fn.Name]; rc != Unknown && sig.Result == Unknown {
		sig.Result = rc
	}
	c.res.Funcs[fn.Name] = sig
	vars := map[string]Type{}
	for name, vi := range sc.vars {
		vars[name] = vi.typ
	}
	c.res.FuncVars[fn.Name] = vars
}

func (c *checker) checkProg(prog *parse.ProgDecl) {
	sc := &scope{vars: map[string]*varInfo{}}
	c.checkStmts(prog.Body, sc, &returnCtx{})
	var inputs []string
	for name, vi := range sc.vars {
		c.res.ProgVars[name] = vi.typ
		if vi.input {
			inputs = append(inputs, name)
		}
	}
	sort.Strings(inputs)
	c.res.Inputs = inputs
}

// returnCtx carries return typing for the enclosing function; zero value
// means program scope.
type returnCtx struct {
	fn       *parse.FuncDecl
	declared Type // annotated result type, or Unknown
}

func (c *checker) checkName(at parse.Pos, name string) {
	if ir.IsTempName(ir.Var(name)) {
		c.errf(at, CodeReservedName,
			"variable %q uses the reserved temporary spelling h<digits>", name)
	}
}

// checkStmts checks a list, reporting unreachable trailing statements
// (once per list — the first unreachable statement names the tail). It
// returns whether control cannot fall out of the list.
func (c *checker) checkStmts(stmts []parse.Stmt, sc *scope, rc *returnCtx) bool {
	terminated, reported := false, false
	for _, s := range stmts {
		if terminated && !reported {
			at := s.StmtPos()
			c.diag(at, CodeUnreachable, SeverityWarning, "unreachable statement")
			reported = true
		}
		if c.checkStmt(s, sc, rc) {
			terminated = true
		}
	}
	return terminated
}

func (c *checker) checkStmt(s parse.Stmt, sc *scope, rc *returnCtx) bool {
	switch s := s.(type) {
	case *parse.LetStmt:
		c.checkName(s.Pos, s.Name)
		it := c.typeExpr(s.Init, sc)
		declared := typeOfName(s.Typ)
		if declared != Unknown && it != Unknown && declared != it {
			c.errf(s.Init.ExprPos(), CodeTypeMismatch,
				"cannot initialize %s variable %q with %s value", declared, s.Name, it)
		}
		typ := declared
		if typ == Unknown {
			typ = it
		}
		if vi, exists := sc.vars[s.Name]; exists {
			code := CodeRedeclaredVar
			msg := "variable %q already declared"
			if vi.input {
				code, msg = CodeUseBeforeLet, "variable %q used before its declaration"
			}
			c.errf(s.Pos, code, msg, s.Name)
			vi.typ = typ
			vi.let = true
		} else {
			sc.vars[s.Name] = &varInfo{typ: typ, let: true}
		}
		return false
	case *parse.AssignStmt:
		c.checkName(s.Pos, s.Name)
		vt := c.typeExpr(s.Value, sc)
		vi := sc.vars[s.Name]
		if vi == nil {
			if sc.fn != nil {
				c.errf(s.Pos, CodeUndeclaredVar,
					"variable %q is not a parameter or local of function %q", s.Name, sc.fn.Name)
				if c.opts.InspectMode {
					sc.vars[s.Name] = &varInfo{typ: vt}
				}
				return false
			}
			// Program scope: assignment introduces the variable, as in the
			// flat dialects.
			sc.vars[s.Name] = &varInfo{typ: vt}
			return false
		}
		if vi.typ == Unknown {
			vi.typ = vt
		} else if vt != Unknown && vt != vi.typ {
			c.errf(s.Value.ExprPos(), CodeTypeMismatch,
				"cannot assign %s value to %s variable %q", vt, vi.typ, s.Name)
		}
		return false
	case *parse.OutStmt:
		for _, a := range s.Args {
			c.typeExpr(a, sc) // int and bool both print
		}
		return false
	case *parse.SkipStmt:
		return false
	case *parse.IfStmt:
		c.checkCond(s.Cond, sc)
		thenTerm := c.checkStmts(s.Then, sc, rc)
		elseTerm := false
		if s.Else != nil {
			elseTerm = c.checkStmts(s.Else, sc, rc)
		}
		return thenTerm && elseTerm && s.Else != nil
	case *parse.WhileStmt:
		c.checkCond(s.Cond, sc)
		c.loopDepth++
		c.checkStmts(s.Body, sc, rc)
		c.loopDepth--
		return false
	case *parse.DoWhileStmt:
		c.loopDepth++
		c.checkStmts(s.Body, sc, rc)
		c.loopDepth--
		c.checkCond(s.Cond, sc)
		return false
	case *parse.BreakStmt:
		if c.loopDepth == 0 {
			c.errf(s.Pos, CodeLoopContext, "break outside a loop")
		}
		return true
	case *parse.ContinueStmt:
		if c.loopDepth == 0 {
			c.errf(s.Pos, CodeLoopContext, "continue outside a loop")
		}
		return true
	case *parse.ReturnStmt:
		vt := c.typeExpr(s.Value, sc)
		if rc.fn == nil {
			c.errf(s.Pos, CodeReturnContext, "return outside a function")
			return true
		}
		c.recordReturn(rc, s, vt)
		return true
	}
	return false
}

// recordReturn unifies one return's type into the function's result type.
func (c *checker) recordReturn(rc *returnCtx, s *parse.ReturnStmt, vt Type) {
	name := rc.fn.Name
	if rc.declared != Unknown {
		if vt != Unknown && vt != rc.declared {
			c.errf(s.Value.ExprPos(), CodeTypeMismatch,
				"function %q returns %s, got %s", name, rc.declared, vt)
		}
		return
	}
	if c.returns == nil {
		c.returns = map[string]Type{}
	}
	prev := c.returns[name]
	switch {
	case prev == Unknown:
		c.returns[name] = vt
	case vt != Unknown && vt != prev:
		c.errf(s.Value.ExprPos(), CodeTypeMismatch,
			"function %q returns %s here but %s elsewhere", name, vt, prev)
	}
}

func (c *checker) checkCond(e parse.Expr, sc *scope) {
	t := c.typeExpr(e, sc)
	if t != Unknown && t != Bool {
		c.errf(e.ExprPos(), CodeCondNotBool, "condition has type %s, want bool", t)
	}
}

// typeExpr infers the type of e, reporting mismatches along the way.
func (c *checker) typeExpr(e parse.Expr, sc *scope) Type {
	switch e := e.(type) {
	case *parse.IntLit:
		return Int
	case *parse.BoolLit:
		return Bool
	case *parse.VarRef:
		c.checkName(e.Pos, e.Name)
		if vi, ok := sc.vars[e.Name]; ok {
			return vi.typ
		}
		if sc.fn != nil {
			c.errf(e.Pos, CodeUndeclaredVar,
				"variable %q is not a parameter or local of function %q", e.Name, sc.fn.Name)
			if c.opts.InspectMode {
				sc.vars[e.Name] = &varInfo{}
			}
			return Unknown
		}
		// Program scope: a read of an unseen variable is a free input;
		// inputs are integers.
		sc.vars[e.Name] = &varInfo{typ: Int, input: true}
		return Int
	case *parse.BinExpr:
		lt := c.typeExpr(e.L, sc)
		rt := c.typeExpr(e.R, sc)
		want := "operands of %q must be int, got %s"
		if lt == Bool {
			c.errf(e.L.ExprPos(), CodeTypeMismatch, want, e.Op, lt)
		}
		if rt == Bool {
			c.errf(e.R.ExprPos(), CodeTypeMismatch, want, e.Op, rt)
		}
		if e.Op.IsRel() {
			return Bool
		}
		return Int
	case *parse.CallExpr:
		fn := c.funcs[e.Name]
		if fn == nil {
			c.errf(e.Pos, CodeUndefinedFunc, "call to undefined function %q", e.Name)
			for _, a := range e.Args {
				c.typeExpr(a, sc)
			}
			return Unknown
		}
		sig := c.res.Funcs[e.Name]
		if len(e.Args) != len(sig.Params) {
			c.errf(e.Pos, CodeArity, "%q takes %d argument(s), got %d",
				e.Name, len(sig.Params), len(e.Args))
		}
		for i, a := range e.Args {
			at := c.typeExpr(a, sc)
			if i < len(sig.Params) && at != Unknown && sig.Params[i] != Unknown && at != sig.Params[i] {
				c.errf(a.ExprPos(), CodeTypeMismatch,
					"argument %d of %q must be %s, got %s", i+1, e.Name, sig.Params[i], at)
			}
		}
		return sig.Result
	}
	return Unknown
}
