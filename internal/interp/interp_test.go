package interp

import (
	"reflect"
	"testing"

	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
)

func run(t *testing.T, src string, init map[ir.Var]int64) Result {
	t.Helper()
	g, err := parse.ParseWith(src, parse.Options{AllowTemps: true})
	if err != nil {
		t.Fatal(err)
	}
	return Run(g, init, 0)
}

func TestStraightLine(t *testing.T) {
	res := run(t, `
graph g {
  entry a
  exit b
  block a {
    x := 2 + 3
    y := x * x
    goto b
  }
  block b { out(x, y) }
}
`, nil)
	if !reflect.DeepEqual(res.Trace, []int64{5, 25}) {
		t.Errorf("trace = %v", res.Trace)
	}
	if res.Counts.ExprEvals != 2 {
		t.Errorf("expr evals = %d, want 2", res.Counts.ExprEvals)
	}
	if res.Counts.AssignExecs != 2 {
		t.Errorf("assign execs = %d, want 2", res.Counts.AssignExecs)
	}
	if res.Truncated {
		t.Error("truncated")
	}
}

func TestBranchTaken(t *testing.T) {
	src := `
graph g {
  entry a
  exit e
  block a { if x < 10 then b else c }
  block b { y := 1
    goto e }
  block c { y := 2
    goto e }
  block e { out(y) }
}
`
	if res := run(t, src, map[ir.Var]int64{"x": 5}); res.Trace[0] != 1 {
		t.Errorf("then-branch trace = %v", res.Trace)
	}
	if res := run(t, src, map[ir.Var]int64{"x": 15}); res.Trace[0] != 2 {
		t.Errorf("else-branch trace = %v", res.Trace)
	}
}

func TestLoopCountsAndTermination(t *testing.T) {
	src := `
graph g {
  entry a
  exit e
  block a {
    i := 0
    s := 0
    goto hdr
  }
  block hdr { if i < 4 then body else e }
  block body {
    s := s + i
    i := i + 1
    goto hdr
  }
  block e { out(s) }
}
`
	res := run(t, src, nil)
	if !reflect.DeepEqual(res.Trace, []int64{6}) {
		t.Errorf("trace = %v", res.Trace)
	}
	// 4 iterations × 2 compound assignments = 8 expr evals (cond sides are
	// trivial: i and 4).
	if res.Counts.ExprEvals != 8 {
		t.Errorf("expr evals = %d, want 8", res.Counts.ExprEvals)
	}
	if res.Counts.AssignExecs != 2+8 {
		t.Errorf("assign execs = %d, want 10", res.Counts.AssignExecs)
	}
}

func TestCompoundCondSidesCountAsExprEvals(t *testing.T) {
	res := run(t, `
graph g {
  entry a
  exit e
  block a { if x + z > y + i then b else e }
  block b { goto e }
  block e { out(x) }
}
`, map[ir.Var]int64{"x": 1, "z": 1, "y": 0, "i": 0})
	if res.Counts.ExprEvals != 2 {
		t.Errorf("expr evals = %d, want 2 (both condition sides)", res.Counts.ExprEvals)
	}
}

func TestInfiniteLoopTruncates(t *testing.T) {
	res := run(t, `
graph g {
  entry a
  exit e
  block a { goto a2 }
  block a2 { x := x + 1
    if x > 0 then a2 else e }
  block e { out(x) }
}
`, nil)
	if !res.Truncated {
		t.Error("infinite loop not truncated")
	}
	if res.Counts.Steps < DefaultMaxSteps {
		t.Errorf("steps = %d", res.Counts.Steps)
	}
}

func TestDivisionByZeroIsTotal(t *testing.T) {
	res := run(t, `
graph g {
  entry a
  exit e
  block a {
    x := 7 / y
    z := 7 % y
    goto e
  }
  block e { out(x, z) }
}
`, map[ir.Var]int64{"y": 0})
	if !reflect.DeepEqual(res.Trace, []int64{0, 0}) {
		t.Errorf("trace = %v", res.Trace)
	}
}

func TestTempAssignExecs(t *testing.T) {
	res := run(t, `
graph g {
  entry a
  exit e
  block a {
    h1 := x + y
    z := h1
    goto e
  }
  block e { out(z) }
}
`, map[ir.Var]int64{"x": 2, "y": 3})
	if res.Counts.TempAssignExecs != 1 {
		t.Errorf("temp assign execs = %d, want 1", res.Counts.TempAssignExecs)
	}
	if res.Counts.AssignExecs != 2 {
		t.Errorf("assign execs = %d, want 2", res.Counts.AssignExecs)
	}
	if !reflect.DeepEqual(res.Trace, []int64{5}) {
		t.Errorf("trace = %v", res.Trace)
	}
}

func TestAllRelops(t *testing.T) {
	cases := []struct {
		op   string
		x    int64
		want int64
	}{
		{"<", 1, 1}, {"<", 2, 2},
		{"<=", 2, 1}, {"<=", 3, 2},
		{">", 3, 1}, {">", 2, 2},
		{">=", 2, 1}, {">=", 1, 2},
		{"==", 2, 1}, {"==", 3, 2},
		{"!=", 3, 1}, {"!=", 2, 2},
	}
	for _, c := range cases {
		src := `
graph g {
  entry a
  exit e
  block a { if x ` + c.op + ` 2 then b1 else b2 }
  block b1 { y := 1
    goto e }
  block b2 { y := 2
    goto e }
  block e { out(y) }
}
`
		res := run(t, src, map[ir.Var]int64{"x": c.x})
		if res.Trace[0] != c.want {
			t.Errorf("op %s with x=%d: trace %v, want [%d]", c.op, c.x, res.Trace, c.want)
		}
	}
}

func TestAllArithOps(t *testing.T) {
	res := run(t, `
graph g {
  entry a
  exit e
  block a {
    p := 7 + 2
    q := 7 - 2
    r := 7 * 2
    s := 7 / 2
    t := 7 % 2
    goto e
  }
  block e { out(p, q, r, s, t) }
}
`, nil)
	if !reflect.DeepEqual(res.Trace, []int64{9, 5, 14, 3, 1}) {
		t.Errorf("trace = %v", res.Trace)
	}
}

func TestTraceEqual(t *testing.T) {
	a := Result{Trace: []int64{1, 2, 3}}
	b := Result{Trace: []int64{1, 2, 3}}
	if !TraceEqual(a, b) {
		t.Error("equal traces reported unequal")
	}
	b.Trace = []int64{1, 2}
	if TraceEqual(a, b) {
		t.Error("unequal traces reported equal")
	}
	// Truncated: compare common prefix.
	b.Truncated = true
	if !TraceEqual(a, b) {
		t.Error("truncated prefix comparison failed")
	}
	b.Trace = []int64{1, 9}
	if TraceEqual(a, b) {
		t.Error("diverging truncated prefix reported equal")
	}
}
