// Package interp executes flow graphs over integer environments and counts
// the cost measures the paper's optimality results are stated in:
// expression evaluations (Theorem 5.2), assignment executions
// (Theorem 5.3), and assignments to temporaries (Theorem 5.4).
//
// Semantics: variables hold int64 values and default to 0; out(...) appends
// its argument values to the observable trace; a branch transfers control
// to the first successor when its condition holds and to the second
// otherwise. Division and remainder by zero yield 0 — a total semantics, so
// that "same out-trace" is a sound and complete equivalence oracle for the
// motion transformations, which may reorder an assignment relative to an
// out statement that does not mention its variables.
package interp

import (
	"fmt"

	"assignmentmotion/internal/ir"
)

// Counts aggregates the dynamic cost measures of one execution.
type Counts struct {
	// ExprEvals counts evaluations of non-trivial terms: compound
	// right-hand sides and compound branch-condition sides. This is the
	// paper's primary cost measure (expression optimality, Theorem 5.2).
	ExprEvals int
	// AssignExecs counts executed assignment instructions, including
	// trivial copies and assignments to temporaries (Theorem 5.3).
	AssignExecs int
	// TempAssignExecs counts executed assignments whose target is a
	// temporary h_ε (Theorem 5.4).
	TempAssignExecs int
	// Steps counts all executed instructions (incl. skip and out).
	Steps int
	// Blocks counts basic-block entries.
	Blocks int
}

// Result reports one execution.
type Result struct {
	Counts Counts
	// Trace is the flattened sequence of values written by out().
	Trace []int64
	// Env is the final environment.
	Env map[ir.Var]int64
	// Truncated is true when the step budget ran out before the exit
	// node completed; Trace then holds the prefix produced so far.
	Truncated bool
	// Trapped is true when Options.TrapOnDivZero was set and a division
	// or remainder by zero occurred; execution stopped at that point.
	Trapped bool
}

// Options tune the execution semantics.
type Options struct {
	// TrapOnDivZero makes division/remainder by zero abort the execution
	// (Trapped = true) instead of yielding 0. This is the semantics under
	// which the paper's footnote 3 distinction is observable: admissible
	// assignment motion preserves run-time errors, while dead code
	// elimination may remove them.
	TrapOnDivZero bool
}

// DefaultMaxSteps bounds executions of programs with loops.
const DefaultMaxSteps = 100_000

// Run executes g starting from a copy of init (missing variables are 0)
// with the given step budget; maxSteps <= 0 selects DefaultMaxSteps.
func Run(g *ir.Graph, init map[ir.Var]int64, maxSteps int) Result {
	return RunWith(g, init, maxSteps, Options{})
}

// RunWith is Run with explicit semantic options.
func RunWith(g *ir.Graph, init map[ir.Var]int64, maxSteps int, opts Options) Result {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	env := make(map[ir.Var]int64, len(init)+8)
	for v, x := range init {
		env[v] = x
	}
	res := Result{Env: env}

	cur := g.Entry
	for {
		b := g.Block(cur)
		res.Counts.Blocks++
		takeThen := false
		for _, in := range b.Instrs {
			if res.Counts.Steps >= maxSteps {
				res.Truncated = true
				return res
			}
			res.Counts.Steps++
			switch in.Kind {
			case ir.KindSkip:
				// no effect
			case ir.KindAssign:
				v, trapped := evalTermOpt(in.RHS, env, &res.Counts, opts)
				if trapped {
					res.Trapped = true
					return res
				}
				env[in.LHS] = v
				res.Counts.AssignExecs++
				if g.IsTemp(in.LHS) {
					res.Counts.TempAssignExecs++
				}
			case ir.KindOut:
				for _, o := range in.Args {
					res.Trace = append(res.Trace, evalOperand(o, env))
				}
			case ir.KindCond:
				l, trapL := evalTermOpt(in.CondL, env, &res.Counts, opts)
				r, trapR := evalTermOpt(in.CondR, env, &res.Counts, opts)
				if trapL || trapR {
					res.Trapped = true
					return res
				}
				takeThen = evalRel(in.CondOp, l, r)
			}
		}
		switch len(b.Succs) {
		case 0:
			if cur != g.Exit {
				panic(fmt.Sprintf("interp: dead end at non-exit block %s", b.Name))
			}
			return res
		case 1:
			cur = b.Succs[0]
		case 2:
			if takeThen {
				cur = b.Succs[0]
			} else {
				cur = b.Succs[1]
			}
		default:
			panic(fmt.Sprintf("interp: block %s has %d successors", b.Name, len(b.Succs)))
		}
	}
}

func evalOperand(o ir.Operand, env map[ir.Var]int64) int64 {
	if o.IsConst {
		return o.Const
	}
	return env[o.Var]
}

func evalTermOpt(t ir.Term, env map[ir.Var]int64, c *Counts, opts Options) (int64, bool) {
	if t.Trivial() {
		return evalOperand(t.Args[0], env), false
	}
	c.ExprEvals++
	a := evalOperand(t.Args[0], env)
	b := evalOperand(t.Args[1], env)
	switch t.Op {
	case ir.OpAdd:
		return a + b, false
	case ir.OpSub:
		return a - b, false
	case ir.OpMul:
		return a * b, false
	case ir.OpDiv:
		if b == 0 {
			return 0, opts.TrapOnDivZero
		}
		return a / b, false
	case ir.OpRem:
		if b == 0 {
			return 0, opts.TrapOnDivZero
		}
		return a % b, false
	}
	panic(fmt.Sprintf("interp: unknown operator %q", t.Op))
}

func evalRel(op ir.Op, a, b int64) bool {
	switch op {
	case ir.OpLT:
		return a < b
	case ir.OpLE:
		return a <= b
	case ir.OpGT:
		return a > b
	case ir.OpGE:
		return a >= b
	case ir.OpEQ:
		return a == b
	case ir.OpNE:
		return a != b
	}
	panic(fmt.Sprintf("interp: unknown relational operator %q", op))
}

// TraceEqual compares two traces; when either execution was truncated the
// comparison is on the common prefix (a truncated run may have stopped
// mid-output).
func TraceEqual(a, b Result) bool {
	ta, tb := a.Trace, b.Trace
	if a.Truncated || b.Truncated {
		n := len(ta)
		if len(tb) < n {
			n = len(tb)
		}
		ta, tb = ta[:n], tb[:n]
	}
	if len(ta) != len(tb) {
		return false
	}
	for i := range ta {
		if ta[i] != tb[i] {
			return false
		}
	}
	return true
}
