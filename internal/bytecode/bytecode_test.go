package bytecode_test

import (
	"fmt"
	"math/rand"
	"testing"

	"assignmentmotion/internal/bytecode"
	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/core"
	"assignmentmotion/internal/corpus"
	"assignmentmotion/internal/figures"
	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/pass"
)

// requireSame is the differential oracle: every observable of the two
// executions must agree exactly — trace, all five Counts, flags, and the
// final environment.
func requireSame(t *testing.T, label string, want, got interp.Result) {
	t.Helper()
	if want.Counts != got.Counts {
		t.Fatalf("%s: counts interp=%+v bytecode=%+v", label, want.Counts, got.Counts)
	}
	if want.Truncated != got.Truncated || want.Trapped != got.Trapped {
		t.Fatalf("%s: flags interp=(%v,%v) bytecode=(%v,%v)",
			label, want.Truncated, want.Trapped, got.Truncated, got.Trapped)
	}
	if len(want.Trace) != len(got.Trace) {
		t.Fatalf("%s: trace interp=%v bytecode=%v", label, want.Trace, got.Trace)
	}
	for i := range want.Trace {
		if want.Trace[i] != got.Trace[i] {
			t.Fatalf("%s: trace interp=%v bytecode=%v", label, want.Trace, got.Trace)
		}
	}
	if len(want.Env) != len(got.Env) {
		t.Fatalf("%s: env interp=%v bytecode=%v", label, want.Env, got.Env)
	}
	for v, x := range want.Env {
		if gx, ok := got.Env[v]; !ok || gx != x {
			t.Fatalf("%s: env[%s] interp=%d bytecode=%v", label, v, x, got.Env[v])
		}
	}
}

// diffOne runs g under both engines across environments, budgets, and both
// trap modes.
func diffOne(t *testing.T, label string, g *ir.Graph, envs []map[ir.Var]int64, budgets []int) {
	t.Helper()
	p, err := bytecode.Compile(g)
	if err != nil {
		t.Fatalf("%s: Compile: %v", label, err)
	}
	for ei, env := range envs {
		for _, budget := range budgets {
			for _, trap := range []bool{false, true} {
				opts := interp.Options{TrapOnDivZero: trap}
				want := interp.RunWith(g, env, budget, opts)
				got := p.RunWith(env, budget, opts)
				requireSame(t, fmt.Sprintf("%s env%d budget=%d trap=%v", label, ei, budget, trap), want, got)
			}
		}
	}
}

// corpusEnvs builds a few environments exercising zeros, positives,
// negatives, and div-by-zero-prone values over the graph's source vars.
func corpusEnvs(g *ir.Graph, rng *rand.Rand) []map[ir.Var]int64 {
	vars := g.SourceVars()
	mk := func(f func(i int) int64) map[ir.Var]int64 {
		env := make(map[ir.Var]int64, len(vars))
		for i, v := range vars {
			env[v] = f(i)
		}
		return env
	}
	return []map[ir.Var]int64{
		nil,
		mk(func(i int) int64 { return int64(i + 1) }),
		mk(func(i int) int64 { return int64(-i) }),
		mk(func(i int) int64 { return rng.Int63n(7) - 3 }), // zeros included
		mk(func(i int) int64 { return rng.Int63() - rng.Int63() }),
	}
}

var diffBudgets = []int{0, 1, 2, 7, 100, interp.DefaultMaxSteps}

func TestDifferentialCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range corpus.Names() {
		g := corpus.Load(name)
		diffOne(t, "corpus/"+name, g, corpusEnvs(g, rng), diffBudgets)
	}
}

func TestDifferentialFigures(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, name := range figures.Names() {
		g := figures.Load(name)
		diffOne(t, "figures/"+name, g, corpusEnvs(g, rng), diffBudgets)
	}
}

// TestDifferentialOptimized compiles the optimized form of every corpus
// program: the executor must agree with the interpreter on post-motion
// graphs too (temporaries, moved assignments).
func TestDifferentialOptimized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, name := range corpus.Names() {
		g := corpus.Load(name)
		pl := pass.New(core.Phases(nil)...)
		if _, err := pl.Run(g); err != nil {
			t.Fatalf("%s: optimize: %v", name, err)
		}
		diffOne(t, "optimized/"+name, g, corpusEnvs(g, rng), diffBudgets)
	}
}

func TestDifferentialCfggenSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for seed := int64(0); seed < 60; seed++ {
		g := cfggen.Structured(seed, cfggen.Config{})
		label := fmt.Sprintf("cfggen/%d", seed)
		diffOne(t, label, g, corpusEnvs(g, rng), []int{0, 3, 50})

		opt := g.Clone()
		pl := pass.New(core.Phases(nil)...)
		if _, err := pl.Run(opt); err != nil {
			t.Fatalf("%s: optimize: %v", label, err)
		}
		diffOne(t, label+"/opt", opt, corpusEnvs(opt, rng), []int{0, 3, 50})
	}
}

// TestDifferentialFunCorpus covers every embedded typed front-end
// program, raw and optimized.
func TestDifferentialFunCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, name := range corpus.FunNames() {
		g := corpus.LoadFun(name)
		diffOne(t, "fun/"+name, g, corpusEnvs(g, rng), diffBudgets)

		opt := g.Clone()
		pl := pass.New(core.Phases(nil)...)
		if _, err := pl.Run(opt); err != nil {
			t.Fatalf("%s: optimize: %v", name, err)
		}
		diffOne(t, "fun/"+name+"/opt", opt, corpusEnvs(opt, rng), diffBudgets)
	}
}

func TestDifferentialTypedPrograms(t *testing.T) {
	srcs := map[string]string{
		"calls": `
			fn square(x: int): int { return x * x }
			prog p {
				let a = square(n)
				let b = square(n + 1)
				out(a, b, a - b)
			}`,
		"divtrap": `
			prog p {
				let q = a / b
				let r = a % b
				out(q, r)
			}`,
		"loopy": `
			fn step(x: int): int { return x * 2 + 1 }
			prog p {
				let i = 0
				let acc = 0
				while i < 40 {
					acc := acc + step(i)
					i := i + 1
				}
				out(acc)
			}`,
	}
	rng := rand.New(rand.NewSource(5))
	for name, src := range srcs {
		g, err := parse.ParseFun(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		diffOne(t, "typed/"+name, g, corpusEnvs(g, rng), diffBudgets)
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	g := ir.NewGraph("bad")
	b := g.AddBlock("b")
	b.Instrs = []ir.Instr{ir.Skip()}
	g.Entry, g.Exit = b.ID, b.ID
	g.Block(b.ID).Instrs = nil // empty block: invalid
	if _, err := bytecode.Compile(g); err == nil {
		t.Fatal("Compile accepted an invalid graph")
	}
}

func TestProgramAccessors(t *testing.T) {
	g := parse.MustParse(`graph g {
		entry s
		exit e
		block s { x := a + b goto e }
		block e { out(x) }
	}`)
	p, err := bytecode.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "g" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Len() == 0 {
		t.Error("Len = 0")
	}
	if p.Disasm() == "" {
		t.Error("Disasm empty")
	}
}

// BenchmarkRunCompiled compares one execution of a looping corpus program
// through the compiled executor against the tree-walking interpreter. The
// acceptance bar is a ≥2× speedup, recorded in BENCH_engine.json.
func BenchmarkRunCompiled(b *testing.B) {
	g := corpus.Load("interp")
	env := map[ir.Var]int64{}
	for i, v := range g.SourceVars() {
		env[v] = int64(i + 3)
	}
	b.Run("bytecode", func(b *testing.B) {
		p, err := bytecode.Compile(g)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := p.Run(env, interp.DefaultMaxSteps)
			if res.Trapped {
				b.Fatal("trapped")
			}
		}
	})
	b.Run("treewalk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := interp.Run(g, env, interp.DefaultMaxSteps)
			if res.Trapped {
				b.Fatal("trapped")
			}
		}
	})
}
