// Package bytecode compiles flow graphs into a compact executable form: a
// flat instruction array with resolved block offsets, variables interned
// to register slots, and operators lowered to small enums. The register
// executor is trace- and Counts-equivalent to the tree-walking
// internal/interp — the differential suite holds it to that, exactly — but
// runs several times faster because the hot loop touches no maps, no
// strings, and no per-step allocations.
package bytecode

import (
	"fmt"
	"strings"

	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
)

type opcode uint8

const (
	opBlock opcode = iota // block entry: Blocks++, not a step
	opSkip
	opAssign
	opOut
	opJump
	opCond
	opHalt
)

// aop is an arithmetic operator, pre-decoded from ir.Op (a string) so the
// executor switches on a byte.
type aop uint8

const (
	aopNone aop = iota // trivial term: operand A alone
	aopAdd
	aopSub
	aopMul
	aopDiv
	aopRem
)

// rop is a relational operator.
type rop uint8

const (
	ropLT rop = iota
	ropLE
	ropGT
	ropGE
	ropEQ
	ropNE
)

// marg is one pre-resolved operand: a register index, or a constant when
// reg < 0.
type marg struct {
	reg int32
	val int64
}

// cterm is a compiled 3-address term: at most one operator over two
// operands. op == aopNone means the trivial term a.
type cterm struct {
	op   aop
	a, b marg
}

// instr is one compiled instruction. A single struct with a kind tag keeps
// the code array flat and the dispatch loop branch-predictable.
type instr struct {
	op     opcode
	rel    rop   // opCond
	temp   bool  // opAssign: destination is a registered temporary
	dst    int32 // opAssign destination register
	to     int32 // opJump target; opCond then-target
	toElse int32 // opCond else-target
	t      cterm // opAssign RHS
	l, r   cterm // opCond sides
	args   []marg
}

// Program is a compiled graph, ready to execute any number of times.
type Program struct {
	name  string
	code  []instr
	start int32
	vars  []ir.Var // register index → variable
	regOf map[ir.Var]int32
}

// Name returns the source graph's name.
func (p *Program) Name() string { return p.name }

// Len returns the number of compiled instructions.
func (p *Program) Len() int { return len(p.code) }

// Compile lowers g. The graph must be valid (ir.Validate); in particular a
// branch condition may appear only as the final instruction of a
// two-successor block, which is what lets conditions compile to a single
// two-target branch instruction.
func Compile(g *ir.Graph) (*Program, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("bytecode: %w", err)
	}
	p := &Program{name: g.Name, regOf: map[ir.Var]int32{}}
	reg := func(v ir.Var) int32 {
		if r, ok := p.regOf[v]; ok {
			return r
		}
		r := int32(len(p.vars))
		p.vars = append(p.vars, v)
		p.regOf[v] = r
		return r
	}
	operand := func(o ir.Operand) marg {
		if o.IsConst {
			return marg{reg: -1, val: o.Const}
		}
		return marg{reg: reg(o.Var)}
	}
	term := func(t ir.Term) (cterm, error) {
		if t.Trivial() {
			return cterm{op: aopNone, a: operand(t.Args[0])}, nil
		}
		var op aop
		switch t.Op {
		case ir.OpAdd:
			op = aopAdd
		case ir.OpSub:
			op = aopSub
		case ir.OpMul:
			op = aopMul
		case ir.OpDiv:
			op = aopDiv
		case ir.OpRem:
			op = aopRem
		default:
			return cterm{}, fmt.Errorf("bytecode: unknown operator %q", t.Op)
		}
		return cterm{op: op, a: operand(t.Args[0]), b: operand(t.Args[1])}, nil
	}

	// First pass: emit per-block code, recording block start offsets and
	// leaving jump targets as block IDs to patch once all offsets exist.
	startOf := map[ir.NodeID]int32{}
	type fixup struct {
		pc     int
		then   ir.NodeID
		orElse ir.NodeID
		cond   bool
	}
	var fixups []fixup
	for _, b := range g.Blocks {
		startOf[b.ID] = int32(len(p.code))
		p.code = append(p.code, instr{op: opBlock})
		for i, in := range b.Instrs {
			last := i == len(b.Instrs)-1
			switch in.Kind {
			case ir.KindSkip:
				p.code = append(p.code, instr{op: opSkip})
			case ir.KindAssign:
				t, err := term(in.RHS)
				if err != nil {
					return nil, err
				}
				p.code = append(p.code, instr{
					op: opAssign, dst: reg(in.LHS), temp: g.IsTemp(in.LHS), t: t,
				})
			case ir.KindOut:
				args := make([]marg, len(in.Args))
				for j, o := range in.Args {
					args[j] = operand(o)
				}
				p.code = append(p.code, instr{op: opOut, args: args})
			case ir.KindCond:
				if !last || len(b.Succs) != 2 {
					return nil, fmt.Errorf("bytecode: block %s: condition not the final instruction of a two-successor block", b.Name)
				}
				l, err := term(in.CondL)
				if err != nil {
					return nil, err
				}
				r, err := term(in.CondR)
				if err != nil {
					return nil, err
				}
				var rl rop
				switch in.CondOp {
				case ir.OpLT:
					rl = ropLT
				case ir.OpLE:
					rl = ropLE
				case ir.OpGT:
					rl = ropGT
				case ir.OpGE:
					rl = ropGE
				case ir.OpEQ:
					rl = ropEQ
				case ir.OpNE:
					rl = ropNE
				default:
					return nil, fmt.Errorf("bytecode: unknown relational operator %q", in.CondOp)
				}
				fixups = append(fixups, fixup{pc: len(p.code), then: b.Succs[0], orElse: b.Succs[1], cond: true})
				p.code = append(p.code, instr{op: opCond, rel: rl, l: l, r: r})
			default:
				return nil, fmt.Errorf("bytecode: block %s: unknown instruction kind", b.Name)
			}
		}
		switch len(b.Succs) {
		case 0:
			if b.ID != g.Exit {
				return nil, fmt.Errorf("bytecode: dead end at non-exit block %s", b.Name)
			}
			p.code = append(p.code, instr{op: opHalt})
		case 1:
			fixups = append(fixups, fixup{pc: len(p.code), then: b.Succs[0]})
			p.code = append(p.code, instr{op: opJump})
		case 2:
			// Terminated by the opCond emitted above; Validate guarantees
			// the final instruction is the condition.
		default:
			return nil, fmt.Errorf("bytecode: block %s has %d successors", b.Name, len(b.Succs))
		}
	}
	for _, f := range fixups {
		p.code[f.pc].to = startOf[f.then]
		if f.cond {
			p.code[f.pc].toElse = startOf[f.orElse]
		}
	}
	p.start = startOf[g.Entry]
	return p, nil
}

// Run executes the program; see interp.Run for the semantics replicated.
func (p *Program) Run(init map[ir.Var]int64, maxSteps int) interp.Result {
	return p.RunWith(init, maxSteps, interp.Options{})
}

// RunWith executes the compiled program with explicit options. The result
// — trace, final environment, truncation/trap flags, and every Counts
// field — is identical to interp.RunWith on the source graph.
func (p *Program) RunWith(init map[ir.Var]int64, maxSteps int, opts interp.Options) interp.Result {
	if maxSteps <= 0 {
		maxSteps = interp.DefaultMaxSteps
	}
	regs := make([]int64, len(p.vars))
	written := make([]bool, len(p.vars))
	for v, x := range init {
		if r, ok := p.regOf[v]; ok {
			regs[r] = x
		}
	}

	var c interp.Counts
	var trace []int64
	truncated, trapped := false, false
	trapZero := opts.TrapOnDivZero

	value := func(m marg) int64 {
		if m.reg < 0 {
			return m.val
		}
		return regs[m.reg]
	}
	// eval mirrors interp.evalTermOpt: trivial terms cost nothing;
	// compound terms count one ExprEval; division and remainder by zero
	// yield 0 unless trapping.
	eval := func(t *cterm) (int64, bool) {
		if t.op == aopNone {
			return value(t.a), false
		}
		c.ExprEvals++
		a, b := value(t.a), value(t.b)
		switch t.op {
		case aopAdd:
			return a + b, false
		case aopSub:
			return a - b, false
		case aopMul:
			return a * b, false
		case aopDiv:
			if b == 0 {
				return 0, trapZero
			}
			return a / b, false
		default: // aopRem
			if b == 0 {
				return 0, trapZero
			}
			return a % b, false
		}
	}

	code := p.code
	pc := p.start
loop:
	for {
		in := &code[pc]
		switch in.op {
		case opBlock:
			c.Blocks++
			pc++
		case opSkip:
			if c.Steps >= maxSteps {
				truncated = true
				break loop
			}
			c.Steps++
			pc++
		case opAssign:
			if c.Steps >= maxSteps {
				truncated = true
				break loop
			}
			c.Steps++
			v, trap := eval(&in.t)
			if trap {
				trapped = true
				break loop
			}
			regs[in.dst] = v
			written[in.dst] = true
			c.AssignExecs++
			if in.temp {
				c.TempAssignExecs++
			}
			pc++
		case opOut:
			if c.Steps >= maxSteps {
				truncated = true
				break loop
			}
			c.Steps++
			for i := range in.args {
				trace = append(trace, value(in.args[i]))
			}
			pc++
		case opJump:
			pc = in.to
		case opCond:
			if c.Steps >= maxSteps {
				truncated = true
				break loop
			}
			c.Steps++
			l, trapL := eval(&in.l)
			r, trapR := eval(&in.r)
			if trapL || trapR {
				trapped = true
				break loop
			}
			take := false
			switch in.rel {
			case ropLT:
				take = l < r
			case ropLE:
				take = l <= r
			case ropGT:
				take = l > r
			case ropGE:
				take = l >= r
			case ropEQ:
				take = l == r
			case ropNE:
				take = l != r
			}
			if take {
				pc = in.to
			} else {
				pc = in.toElse
			}
		case opHalt:
			break loop
		}
	}

	env := make(map[ir.Var]int64, len(init)+8)
	for v, x := range init {
		env[v] = x
	}
	for r, w := range written {
		if w {
			env[p.vars[r]] = regs[r]
		}
	}
	return interp.Result{
		Counts:    c,
		Trace:     trace,
		Env:       env,
		Truncated: truncated,
		Trapped:   trapped,
	}
}

// Execute compiles and runs g once; the convenience form for one-shot
// callers (the CLI, the server).
func Execute(g *ir.Graph, init map[ir.Var]int64, maxSteps int, opts interp.Options) (interp.Result, error) {
	p, err := Compile(g)
	if err != nil {
		return interp.Result{}, err
	}
	return p.RunWith(init, maxSteps, opts), nil
}

// Disasm renders the compiled form for debugging and tests.
func (p *Program) Disasm() string {
	var sb strings.Builder
	argStr := func(m marg) string {
		if m.reg < 0 {
			return fmt.Sprintf("%d", m.val)
		}
		return string(p.vars[m.reg])
	}
	termStr := func(t cterm) string {
		if t.op == aopNone {
			return argStr(t.a)
		}
		ops := [...]string{aopAdd: "+", aopSub: "-", aopMul: "*", aopDiv: "/", aopRem: "%"}
		return fmt.Sprintf("%s %s %s", argStr(t.a), ops[t.op], argStr(t.b))
	}
	rels := [...]string{ropLT: "<", ropLE: "<=", ropGT: ">", ropGE: ">=", ropEQ: "==", ropNE: "!="}
	for pc, in := range p.code {
		switch in.op {
		case opBlock:
			fmt.Fprintf(&sb, "%4d  block\n", pc)
		case opSkip:
			fmt.Fprintf(&sb, "%4d  skip\n", pc)
		case opAssign:
			fmt.Fprintf(&sb, "%4d  %s := %s\n", pc, p.vars[in.dst], termStr(in.t))
		case opOut:
			parts := make([]string, len(in.args))
			for i, a := range in.args {
				parts[i] = argStr(a)
			}
			fmt.Fprintf(&sb, "%4d  out(%s)\n", pc, strings.Join(parts, ", "))
		case opJump:
			fmt.Fprintf(&sb, "%4d  jump %d\n", pc, in.to)
		case opCond:
			fmt.Fprintf(&sb, "%4d  if %s %s %s then %d else %d\n",
				pc, termStr(in.l), rels[in.rel], termStr(in.r), in.to, in.toElse)
		case opHalt:
			fmt.Fprintf(&sb, "%4d  halt\n", pc)
		}
	}
	return sb.String()
}
