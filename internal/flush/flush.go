// Package flush implements the final flush phase (§4.4, Table 3): a
// lazy-code-motion-style transformation that moves every temporary
// initialization h_ε := ε to its latest safe program point, keeps only the
// initializations that are usable (the value is needed on some program
// continuation), and reconstructs the original term at single-use sites.
//
// Two uni-directional bit-vector analyses over instructions (one bit per
// temporary) drive the transformation:
//
//	Delayability (forward, all paths, greatest fixpoint):
//	  N-DELAYABLE(ι) = false                     if ι = ι_s
//	                 = ∏_{ι'∈pred(ι)} X-DELAYABLE(ι')   otherwise
//	  X-DELAYABLE(ι) = IS-INST(ι) + N-DELAYABLE(ι) · ¬USED(ι) · ¬BLOCKED(ι)
//
//	Usability (backward, some path, least fixpoint):
//	  N-USABLE(ι) = USED(ι) + ¬IS-INST(ι) · X-USABLE(ι)
//	  X-USABLE(ι) = Σ_{ι'∈succ(ι)} N-USABLE(ι')
//
// From these (no further fixpoint):
//
//	N-LATEST(ι) = N-DELAYABLE*(ι) · (USED(ι) + BLOCKED(ι))
//	X-LATEST(ι) = X-DELAYABLE*(ι) · ¬∏_{ι'∈succ(ι)} N-DELAYABLE*(ι')
//	N-INIT(ι)   = N-LATEST(ι) · X-USABLE*(ι)      — plus forced
//	              initializations at non-reconstructible single uses
//	X-INIT(ι)   = X-LATEST(ι) · X-USABLE*(ι)
//	RECONSTRUCT(ι) = USED(ι) · N-LATEST(ι) · ¬X-USABLE*(ι)
//
// RECONSTRUCT inlines ε where the grammar allows a term: copy assignments
// v := h and trivial branch-condition sides. A single use inside out(...)
// keeps its initialization instead (see DESIGN.md).
package flush

import (
	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"
)

func init() {
	pass.Register(pass.Pass{
		Name:        "flush",
		Description: "final flush: sink temporary initializations to latest points, drop unusable ones, reconstruct single uses",
		Ref:         "§4.4, Table 3, Lemma 4.4",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			st := RunWith(g, s)
			return pass.Stats{
				Changes:    st.DroppedInits + st.InsertedInits + st.Reconstructed,
				Iterations: 1,
			}, nil
		},
	})
}

// Info exposes the flush analyses for tests and diagnostics. Vectors are
// indexed by instruction (analysis.Prog order) and bit-indexed by temp
// position in Temps.
type Info struct {
	Prog  *analysis.Prog
	Temps []ir.Var
	Exprs []ir.Term

	NDelayable []bitvec.Vec
	XDelayable []bitvec.Vec
	NUsable    []bitvec.Vec
	XUsable    []bitvec.Vec
	NLatest    []bitvec.Vec
	XLatest    []bitvec.Vec

	// Local predicate vectors (Table 3), kept for the transformation.
	isInst  []bitvec.Vec
	used    []bitvec.Vec
	blocked []bitvec.Vec
}

// Analyze computes the delayability and usability analyses for g.
func Analyze(g *ir.Graph) *Info {
	return AnalyzeWith(g, nil)
}

// AnalyzeWith is Analyze with all bit-vector storage carved from session
// s's arena (heap when s is nil). The result shares the arena and must be
// consumed before it is released.
func AnalyzeWith(g *ir.Graph, s *analysis.Session) *Info {
	prog := analysis.NewProg(g)
	ar := s.Arena()
	temps := g.Temps()
	exprs := make([]ir.Term, len(temps))
	for i, h := range temps {
		e, ok := g.TempExpr(h)
		if !ok {
			panic("flush: unregistered temp " + string(h))
		}
		exprs[i] = e
	}
	info := &Info{Prog: prog, Temps: temps, Exprs: exprs}
	n, bits := prog.Len(), len(temps)

	isInst := ar.Vecs(n)
	used := ar.Vecs(n)
	blocked := ar.Vecs(n)
	for i := 0; i < n; i++ {
		isInst[i] = ar.Vec(bits)
		used[i] = ar.Vec(bits)
		blocked[i] = ar.Vec(bits)
		in := &prog.Ins[i]
		for t, h := range temps {
			if analysis.IsInst(in, h, exprs[t]) {
				isInst[i].Set(t)
			}
			if analysis.UsesTemp(in, h) {
				used[i].Set(t)
			}
			if analysis.BlocksInit(in, h, exprs[t]) {
				blocked[i].Set(t)
			}
		}
	}
	info.isInst, info.used, info.blocked = isInst, used, blocked

	// Delayability in gen/kill form: X-DELAYABLE = IS-INST ∨
	// (N-DELAYABLE ∧ ¬(USED ∨ BLOCKED)); the combined kill vector is
	// materialized once per instruction.
	stopKill := ar.Vecs(n)
	for i := 0; i < n; i++ {
		stopKill[i] = ar.Vec(bits)
		stopKill[i].CopyFrom(used[i])
		stopKill[i].Or(blocked[i])
	}

	entry := prog.EntryIndex()
	delay := dataflow.Solve(dataflow.Problem{
		N: n, Bits: bits, Dir: dataflow.Forward, Meet: dataflow.All,
		Preds: prog.Preds, Succs: prog.Succs,
		Arena:   ar,
		Stats:   s.DataflowStats(),
		Workers: s.SolverWorkersFor(n),
		Gen:     isInst,
		Kill:    stopKill,
		Boundary: func(i int, in bitvec.Vec) {
			if i == entry {
				in.ClearAll()
			}
		},
	})
	info.NDelayable, info.XDelayable = delay.In, delay.Out

	// Usability in gen/kill form. Backward: solver "in" is the fact at the
	// instruction's exit (X-USABLE), "out" at its entry (N-USABLE) =
	// USED ∨ (X-USABLE ∧ ¬IS-INST).
	use := dataflow.Solve(dataflow.Problem{
		N: n, Bits: bits, Dir: dataflow.Backward, Meet: dataflow.Any,
		Preds: prog.Preds, Succs: prog.Succs,
		Arena:   ar,
		Stats:   s.DataflowStats(),
		Workers: s.SolverWorkersFor(n),
		Gen:     used,
		Kill:    isInst,
	})
	info.XUsable, info.NUsable = use.In, use.Out

	info.NLatest = ar.Vecs(n)
	info.XLatest = ar.Vecs(n)
	stop := ar.Vec(bits)
	allDelay := ar.Vec(bits)
	for i := 0; i < n; i++ {
		nl := ar.Vec(bits)
		nl.CopyFrom(info.NDelayable[i])
		stop.CopyFrom(used[i])
		stop.Or(blocked[i])
		nl.And(stop)
		info.NLatest[i] = nl

		xl := ar.Vec(bits)
		xl.CopyFrom(info.XDelayable[i])
		succs := prog.Succs(i)
		allDelay.SetAll()
		for _, s := range succs {
			allDelay.And(info.NDelayable[s])
		}
		allDelay.Not() // ∃ successor not delayable; empty succs ⇒ all false
		xl.And(allDelay)
		if len(succs) == 0 {
			// Program exit: an initialization delayed past the last
			// instruction is dead.
			xl.ClearAll()
		}
		info.XLatest[i] = xl
	}
	return info
}

// Stats reports what one flush run did.
type Stats struct {
	// DroppedInits is the number of original h := ε instances removed.
	DroppedInits int
	// InsertedInits is the number of initializations placed at latest
	// points (including forced ones at non-reconstructible single uses).
	InsertedInits int
	// Reconstructed is the number of instructions whose single use of a
	// temporary was replaced by the original term.
	Reconstructed int
}

// Observer receives read-only views of one flush run: the analyses while
// their arena storage is still live, and the finished graph with the
// per-block statistics. Observation never changes the run's result.
type Observer struct {
	// Analyzed fires after the analyses complete, before the rewrite.
	// The Info's vectors are arena-backed and only valid for the call.
	Analyzed func(g *ir.Graph, info *Info)
	// Done fires after the rewrite and normalization, with the total
	// statistics and their attribution to blocks (indexed by block
	// slice position).
	Done func(g *ir.Graph, total Stats, perBlock []Stats)
}

// Run applies the final flush to g in place.
func Run(g *ir.Graph) Stats {
	return RunWith(g, nil)
}

// RunWith is Run drawing analysis storage from session s; the arena is
// rewound before returning, so a flush inside a warmed-up Optimize call
// allocates only the rewritten instruction slices.
func RunWith(g *ir.Graph, s *analysis.Session) Stats {
	return RunObservedWith(g, s, nil)
}

// RunObservedWith is RunWith observed by obs (nil observes nothing).
func RunObservedWith(g *ir.Graph, s *analysis.Session, obs *Observer) Stats {
	ar := s.Arena()
	m := ar.Mark()
	defer ar.Release(m)
	info := AnalyzeWith(g, s)
	if obs != nil && obs.Analyzed != nil {
		obs.Analyzed(g, info)
	}
	var st Stats
	var perBlock []Stats
	if obs != nil && obs.Done != nil {
		perBlock = make([]Stats, len(g.Blocks))
		defer func() { obs.Done(g, st, perBlock) }()
	}
	bits := len(info.Temps)
	if bits == 0 {
		return st
	}

	idx := 0
	for bIdx, b := range g.Blocks {
		before := st
		next := make([]ir.Instr, 0, len(b.Instrs))
		var appendAfter []ir.Instr
		for _, in := range b.Instrs {
			// Initializations placed immediately before ι: the paper's
			// N-INIT plus forced initializations at single uses that
			// cannot be reconstructed.
			for t := 0; t < bits; t++ {
				if !info.NLatest[idx].Get(t) {
					continue
				}
				usedHere := info.used[idx].Get(t)
				usedLater := info.XUsable[idx].Get(t)
				switch {
				case usedLater:
					next = append(next, initInstr(info, t))
					st.InsertedInits++
				case usedHere:
					if !CanReconstruct(in, info.Temps[t]) {
						next = append(next, initInstr(info, t))
						st.InsertedInits++
					}
				}
			}

			switch {
			case instanceBit(info, idx) >= 0:
				// Original instance: dropped (re-materialized at latest
				// points above).
				st.DroppedInits++
			default:
				out := in
				for t := 0; t < bits; t++ {
					if info.NLatest[idx].Get(t) && info.used[idx].Get(t) &&
						!info.XUsable[idx].Get(t) && CanReconstruct(in, info.Temps[t]) {
						out = Reconstruct(out, info.Temps[t], info.Exprs[t])
						st.Reconstructed++
					}
				}
				next = append(next, out)
			}

			// X-INIT: initializations placed immediately after ι.
			for t := 0; t < bits; t++ {
				if info.XLatest[idx].Get(t) && info.XUsable[idx].Get(t) {
					appendAfter = append(appendAfter, initInstr(info, t))
					st.InsertedInits++
				}
			}
			idx++
		}
		if len(appendAfter) > 0 {
			if _, branch := b.Cond(); branch {
				panic("flush: X-INIT after a branch condition; critical edges must be split")
			}
		}
		b.Instrs = append(next, appendAfter...)
		if perBlock != nil {
			perBlock[bIdx] = Stats{
				DroppedInits:  st.DroppedInits - before.DroppedInits,
				InsertedInits: st.InsertedInits - before.InsertedInits,
				Reconstructed: st.Reconstructed - before.Reconstructed,
			}
		}
	}
	g.Normalize()
	return st
}

func initInstr(info *Info, t int) ir.Instr {
	return ir.NewAssign(info.Temps[t], info.Exprs[t])
}

// instanceBit returns the temp index for which instruction idx is an
// instance, or -1.
func instanceBit(info *Info, idx int) int {
	bitsSet := info.isInst[idx].Bits()
	if len(bitsSet) == 0 {
		return -1
	}
	return bitsSet[0]
}

// CanReconstruct reports whether the single use of h in instruction in can
// be replaced by the originating term within the 3-address grammar: a copy
// assignment v := h, or a trivial branch-condition side that is exactly h.
// Exported for the incremental layer, whose region-restricted flush replay
// must make the identical decision.
func CanReconstruct(in ir.Instr, h ir.Var) bool {
	switch in.Kind {
	case ir.KindAssign:
		return in.RHS.Trivial() && !in.RHS.Args[0].IsConst && in.RHS.Args[0].Var == h
	case ir.KindCond:
		return trivialVarSide(in.CondL, h) || trivialVarSide(in.CondR, h)
	}
	return false
}

func trivialVarSide(t ir.Term, h ir.Var) bool {
	return t.Trivial() && !t.Args[0].IsConst && t.Args[0].Var == h
}

// Reconstruct replaces the use of h in in by expr.
func Reconstruct(in ir.Instr, h ir.Var, expr ir.Term) ir.Instr {
	switch in.Kind {
	case ir.KindAssign:
		return ir.NewAssign(in.LHS, expr)
	case ir.KindCond:
		l, r := in.CondL, in.CondR
		if trivialVarSide(l, h) {
			l = expr
		}
		if trivialVarSide(r, h) {
			r = expr
		}
		return ir.NewCond(in.CondOp, l, r)
	}
	return in
}
