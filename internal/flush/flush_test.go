package flush

import (
	"reflect"
	"testing"

	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/printer"
)

func keys(b *ir.Block) []string {
	out := make([]string, 0, len(b.Instrs))
	for _, in := range b.Instrs {
		out = append(out, in.Key())
	}
	return out
}

func TestSingleUseReconstructed(t *testing.T) {
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := a + b
    x := h1
    goto e
  }
  block e { out(x) }
}
`)
	st := Run(g)
	g.MustValidate()
	if st.Reconstructed != 1 || st.DroppedInits != 1 || st.InsertedInits != 0 {
		t.Errorf("stats = %+v", st)
	}
	if got := keys(g.BlockByName("a")); !reflect.DeepEqual(got, []string{"x:=a+b"}) {
		t.Errorf("a = %v", got)
	}
}

func TestDoubleUseKeepsInit(t *testing.T) {
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := a + b
    x := h1
    y := h1
    goto e
  }
  block e { out(x, y) }
}
`)
	st := Run(g)
	if st.InsertedInits != 1 || st.Reconstructed != 0 {
		t.Errorf("stats = %+v\n%s", st, printer.String(g))
	}
	if got := keys(g.BlockByName("a")); !reflect.DeepEqual(got, []string{"h1:=a+b", "x:=h1", "y:=h1"}) {
		t.Errorf("a = %v", got)
	}
}

func TestDeadInitDropped(t *testing.T) {
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := a + b
    x := 1
    goto e
  }
  block e { out(x) }
}
`)
	st := Run(g)
	if st.DroppedInits != 1 || st.InsertedInits != 0 {
		t.Errorf("stats = %+v\n%s", st, printer.String(g))
	}
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == ir.KindAssign && g.IsTemp(in.LHS) {
				t.Errorf("dead init survived: %v", in)
			}
		}
	}
}

func TestInitSunkToUse(t *testing.T) {
	// The init is delayable through unrelated code; it must land right
	// before its (double) use, shortening the lifetime.
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := a + b
    q := 1
    r := 2
    x := h1
    y := h1
    goto e
  }
  block e { out(x, y, q, r) }
}
`)
	Run(g)
	want := []string{"q:=1", "r:=2", "h1:=a+b", "x:=h1", "y:=h1"}
	if got := keys(g.BlockByName("a")); !reflect.DeepEqual(got, want) {
		t.Errorf("a = %v, want %v", got, want)
	}
}

func TestInitStopsAtBlockade(t *testing.T) {
	// a := 7 modifies an operand of a+b, so the init cannot sink past it
	// even though the use is further down.
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := a + b
    a := 7
    x := h1
    y := h1
    goto e
  }
  block e { out(x, y, a) }
}
`)
	orig := g.Clone()
	Run(g)
	want := []string{"h1:=a+b", "a:=7", "x:=h1", "y:=h1"}
	if got := keys(g.BlockByName("a")); !reflect.DeepEqual(got, want) {
		t.Errorf("a = %v, want %v", got, want)
	}
	env := map[ir.Var]int64{"a": 1, "b": 2}
	r1, r2 := interp.Run(orig, env, 0), interp.Run(g, env, 0)
	if !interp.TraceEqual(r1, r2) {
		t.Errorf("trace changed: %v -> %v", r1.Trace, r2.Trace)
	}
}

func TestBlockedSingleUseReconstructs(t *testing.T) {
	// Single use behind a blockade: latest point is before the blockade
	// (a := 7), the use site itself is not latest, so the init must stay
	// (it cannot be reconstructed at x := h1 because the value of a+b
	// there differs).
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := a + b
    a := 7
    x := h1
    goto e
  }
  block e { out(x, a) }
}
`)
	orig := g.Clone()
	Run(g)
	g.MustValidate()
	want := []string{"h1:=a+b", "a:=7", "x:=h1"}
	if got := keys(g.BlockByName("a")); !reflect.DeepEqual(got, want) {
		t.Errorf("a = %v, want %v", got, want)
	}
	env := map[ir.Var]int64{"a": 1, "b": 2}
	r1, r2 := interp.Run(orig, env, 0), interp.Run(g, env, 0)
	if !interp.TraceEqual(r1, r2) {
		t.Errorf("trace changed: %v -> %v (flush unsoundly reconstructed)", r1.Trace, r2.Trace)
	}
}

func TestReconstructIntoCondition(t *testing.T) {
	// A temp used once, in a branch condition side, is inlined
	// (Figure 15's "h2 > y+i").
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := y + i
    if x > h1 then b else e
  }
  block b { x := 0
    goto e }
  block e { out(x) }
}
`)
	st := Run(g)
	g.MustValidate()
	if st.Reconstructed != 1 {
		t.Errorf("stats = %+v\n%s", st, printer.String(g))
	}
	cond, _ := g.BlockByName("a").Cond()
	if cond.Key() != "x>y+i" {
		t.Errorf("cond = %v", cond)
	}
}

func TestOutUseForcesInit(t *testing.T) {
	// out(h1) cannot carry a compound term; the initialization must be
	// kept even for a single use.
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := a + b
    goto e
  }
  block e { out(h1) }
}
`)
	orig := g.Clone()
	st := Run(g)
	g.MustValidate()
	if st.InsertedInits != 1 {
		t.Errorf("stats = %+v\n%s", st, printer.String(g))
	}
	e := g.BlockByName("e")
	if got := keys(e); !reflect.DeepEqual(got, []string{"h1:=a+b", "out(h1)"}) {
		t.Errorf("e = %v", got)
	}
	env := map[ir.Var]int64{"a": 1, "b": 2}
	r1, r2 := interp.Run(orig, env, 0), interp.Run(g, env, 0)
	if !interp.TraceEqual(r1, r2) {
		t.Errorf("trace changed: %v -> %v", r1.Trace, r2.Trace)
	}
}

func TestPartialDeadInitSunkIntoBranch(t *testing.T) {
	// h1 is used only on the left arm; lazy placement moves the init into
	// that arm so the right arm never computes a+b.
	g := parse.MustParseTemps(`
graph g {
  entry s
  exit e
  block s {
    h1 := a + b
    if c < 0 then l else r
  }
  block l {
    x := h1
    y := h1
    goto e
  }
  block r {
    x := 0
    goto e
  }
  block e { out(x, y) }
}
`)
	orig := g.Clone()
	Run(g)
	g.MustValidate()
	if got := keys(g.BlockByName("l")); !reflect.DeepEqual(got, []string{"h1:=a+b", "x:=h1", "y:=h1"}) {
		t.Errorf("l = %v", got)
	}
	for _, in := range g.BlockByName("s").Instrs {
		if in.Kind == ir.KindAssign && g.IsTemp(in.LHS) {
			t.Errorf("init not sunk out of s: %v", in)
		}
	}
	// The right path now evaluates nothing.
	r := interp.Run(g, map[ir.Var]int64{"c": 1, "a": 1, "b": 2}, 0)
	if r.Counts.ExprEvals != 0 {
		t.Errorf("right path evaluates %d expressions, want 0", r.Counts.ExprEvals)
	}
	checkSameTraces(t, orig, g)
}

func TestMergeRequiresInitOnBothPaths(t *testing.T) {
	// Instances on both arms of a diamond, use below the join: delayable
	// on both paths, so the inits merge into a single latest init at the
	// join-side use.
	g := parse.MustParseTemps(`
graph g {
  entry s
  exit e
  block s { if c < 0 then l else r }
  block l {
    h1 := a + b
    goto j
  }
  block r {
    h1 := a + b
    goto j
  }
  block j {
    x := h1
    y := h1
    goto e
  }
  block e { out(x, y) }
}
`)
	Run(g)
	g.MustValidate()
	if got := keys(g.BlockByName("j")); !reflect.DeepEqual(got, []string{"h1:=a+b", "x:=h1", "y:=h1"}) {
		t.Errorf("j = %v", got)
	}
	total := 0
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == ir.KindAssign && in.LHS == "h1" {
				total++
			}
		}
	}
	if total != 1 {
		t.Errorf("h1 init count = %d, want 1 (merged)", total)
	}
}

func TestXLatestAtPathIntoJoin(t *testing.T) {
	// The init is delayable on the left path but the join has a
	// non-delayable right path; the init must materialize at the end of
	// the left arm (X-INIT), not above the branch and not at the join.
	g := parse.MustParseTemps(`
graph g {
  entry s
  exit e
  block s { if c < 0 then l else r }
  block l {
    h1 := a + b
    q := 1
    goto j
  }
  block r {
    a := 5
    goto j
  }
  block j {
    x := h1
    y := h1
    goto e
  }
  block e { out(x, y, q) }
}
`)
	orig := g.Clone()
	Run(g)
	g.MustValidate()
	l := g.BlockByName("l")
	if got := keys(l); !reflect.DeepEqual(got, []string{"q:=1", "h1:=a+b"}) {
		t.Errorf("l = %v (init must sink to the arm exit)", got)
	}
	checkSameTraces(t, orig, g)
}

func TestNoTempsNoChange(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a { x := a + b
    goto e }
  block e { out(x) }
}
`)
	enc := g.Encode()
	st := Run(g)
	if st != (Stats{}) || g.Encode() != enc {
		t.Errorf("flush changed a temp-free program: %+v", st)
	}
}

func TestIdempotent(t *testing.T) {
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := a + b
    x := h1
    y := h1
    goto e
  }
  block e { out(x, y) }
}
`)
	Run(g)
	enc := g.Encode()
	Run(g)
	if g.Encode() != enc {
		t.Errorf("flush not idempotent:\n%s\nvs\n%s", enc, g.Encode())
	}
}

func TestAnalyzeVectors(t *testing.T) {
	g := parse.MustParseTemps(`
graph g {
  entry a
  exit e
  block a {
    h1 := a + b
    q := 1
    x := h1
    goto e
  }
  block e { out(x, q) }
}
`)
	info := Analyze(g)
	if len(info.Temps) != 1 || info.Temps[0] != "h1" {
		t.Fatalf("temps = %v", info.Temps)
	}
	// Instruction indices: 0 h1:=a+b, 1 q:=1, 2 x:=h1, 3 out.
	if !info.XDelayable[0].Get(0) || !info.NDelayable[1].Get(0) || !info.NDelayable[2].Get(0) {
		t.Error("delayability wrong")
	}
	if info.XDelayable[2].Get(0) {
		t.Error("delayable past the use")
	}
	if !info.NLatest[2].Get(0) {
		t.Error("latest not at the use")
	}
	if info.XUsable[2].Get(0) {
		t.Error("usable after the only use")
	}
	if !info.NUsable[2].Get(0) || !info.XUsable[1].Get(0) {
		t.Error("usability wrong")
	}
}

func checkSameTraces(t *testing.T, orig, xform *ir.Graph) {
	t.Helper()
	envs := []map[ir.Var]int64{
		{"a": 1, "b": 2, "c": -1},
		{"a": 1, "b": 2, "c": 1},
		{"a": -3, "b": 7, "c": 0},
	}
	for _, env := range envs {
		r1, r2 := interp.Run(orig, env, 0), interp.Run(xform, env, 0)
		if !interp.TraceEqual(r1, r2) {
			t.Errorf("env %v: trace changed %v -> %v\n%s", env, r1.Trace, r2.Trace, printer.String(xform))
		}
	}
}
