// Package gvn implements global value numbering in the partition-refinement
// style of Saleena & Paleri, "A Simple Algorithm for Global Value Numbering"
// (arXiv:1303.1880): a forward data flow analysis whose facts are partitions
// of program terms into value-equivalence classes. At every program point
// the analysis knows which variables, constants, and expressions are
// guaranteed to hold the same value on every path from the entry, and the
// transformation replaces a recomputation of an already-available value by
// a copy from a variable (or constant) of the same class — or by skip when
// the target itself already holds the value.
//
// The IR makes the classical algorithm pleasantly small: terms carry at
// most one operator (§2 of the source paper), so value expressions never
// nest and the per-point partition ranges over the finite set of variables,
// literals, and single-operator expressions of the program. The join of two
// partitions at a control-flow merge is computed by Kildall's product
// construction: a value is known in the merged state exactly when it is
// known on both sides, and two terms are equivalent after the merge exactly
// when they are equivalent on both sides.
//
// Relationship to assignment motion (the repository's central study): GVN
// converts equivalent-expression recomputations into trivial copies BEFORE
// the initialization phase decomposes the program, which shrinks the
// expression-pattern universe the AM/EM bit-vector analyses range over —
// the second-order interaction measured by the gvn-emcp composite and the
// BENCH_dataflow.json "gvnUniverse" rows.
package gvn

import (
	"sort"
	"strconv"
	"strings"

	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/fault"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"
)

func init() {
	pass.Register(pass.Pass{
		Name:        "gvn",
		Description: "global value numbering: replace recomputations of available values by copies (partition refinement)",
		Ref:         "Saleena & Paleri, arXiv:1303.1880; cf. arXiv:1504.03239",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			replaced, sweeps, err := TryRunWith(g, s)
			return pass.Stats{Changes: replaced, Iterations: sweeps}, err
		},
	})
}

// exprKey is a value expression: an operator applied to two value numbers.
// Two syntactic terms map to the same exprKey in a state exactly when their
// operands are pairwise value-equivalent there.
type exprKey struct {
	op   ir.Op
	l, r int
}

// state is the data flow fact at one program point: a partition of terms
// into value classes, represented by value numbers. vars and consts bind
// leaves to their class; exprs records that applying op to the classes
// (l, r) is known to yield the class it maps to — knowledge established by
// an executed assignment upstream, which is exactly what makes a later
// syntactic recomputation redundant. Value numbers are meaningful only
// within one state; joins build a fresh numbering.
type state struct {
	vars   map[ir.Var]int
	consts map[int64]int
	exprs  map[exprKey]int
	next   int
}

// newState returns a state with every program literal pre-bound to its own
// class (a literal's value is itself, everywhere), in sorted order so value
// numbers are deterministic.
func newState(literals []int64) *state {
	s := &state{
		vars:   map[ir.Var]int{},
		consts: make(map[int64]int, len(literals)),
		exprs:  map[exprKey]int{},
	}
	for _, c := range literals {
		s.consts[c] = s.next
		s.next++
	}
	return s
}

func (s *state) clone() *state {
	c := &state{
		vars:   make(map[ir.Var]int, len(s.vars)),
		consts: make(map[int64]int, len(s.consts)),
		exprs:  make(map[exprKey]int, len(s.exprs)),
		next:   s.next,
	}
	for k, v := range s.vars {
		c.vars[k] = v
	}
	for k, v := range s.consts {
		c.consts[k] = v
	}
	for k, v := range s.exprs {
		c.exprs[k] = v
	}
	return c
}

// fresh allocates a new singleton class.
func (s *state) fresh() int {
	n := s.next
	s.next++
	return n
}

// vnVar returns v's class, binding it to a fresh singleton on first sight
// (an unknown value is distinct from everything until proven otherwise).
func (s *state) vnVar(v ir.Var) int {
	if n, ok := s.vars[v]; ok {
		return n
	}
	n := s.fresh()
	s.vars[v] = n
	return n
}

// vnConst returns c's class. Literals are pre-seeded; the fallback covers
// literals a transformation introduced after the seeding scan.
func (s *state) vnConst(c int64) int {
	if n, ok := s.consts[c]; ok {
		return n
	}
	n := s.fresh()
	s.consts[c] = n
	return n
}

func (s *state) vnOperand(o ir.Operand) int {
	if o.IsConst {
		return s.vnConst(o.Const)
	}
	return s.vnVar(o.Var)
}

// vnTerm returns the class of t, creating a fresh class (and recording the
// value expression) for a first-seen compound term.
func (s *state) vnTerm(t ir.Term) int {
	if t.Trivial() {
		return s.vnOperand(t.Args[0])
	}
	k := exprKey{op: t.Op, l: s.vnOperand(t.Args[0]), r: s.vnOperand(t.Args[1])}
	if n, ok := s.exprs[k]; ok {
		return n
	}
	n := s.fresh()
	s.exprs[k] = n
	return n
}

// transfer applies one instruction to the state. Only assignments change
// value knowledge: the target leaves its old class and joins the class of
// the right-hand side (computed before the rebinding, so x := x+1 reads the
// old x). out and branch instructions read values without changing them.
func (s *state) transfer(in ir.Instr) {
	if in.Kind != ir.KindAssign {
		return
	}
	n := s.vnTerm(in.RHS)
	s.vars[in.LHS] = n
}

// join is Kildall's product construction: the partition containing exactly
// the equivalences common to a and b. A pair of classes (one from each
// side) becomes one merged class; value expressions survive when both their
// operand classes and (transitively) the expressions establishing them
// survive on both sides, so the closure iterates until no new merged
// expression appears.
func join(a, b *state) *state {
	out := &state{vars: map[ir.Var]int{}, consts: map[int64]int{}, exprs: map[exprKey]int{}}
	type vnPair struct{ x, y int }
	pairs := map[vnPair]int{}
	merged := func(x, y int) int {
		if n, ok := pairs[vnPair{x, y}]; ok {
			return n
		}
		n := out.fresh()
		pairs[vnPair{x, y}] = n
		return n
	}
	for v, x := range a.vars {
		if y, ok := b.vars[v]; ok {
			out.vars[v] = merged(x, y)
		}
	}
	for c, x := range a.consts {
		if y, ok := b.consts[c]; ok {
			out.consts[c] = merged(x, y)
		}
	}
	// Index b's expressions by operator to keep the closure loop tight.
	byOp := map[ir.Op][]exprKey{}
	for k := range b.exprs {
		byOp[k.op] = append(byOp[k.op], k)
	}
	for {
		added := false
		for ka, na := range a.exprs {
			for _, kb := range byOp[ka.op] {
				pl, okL := pairs[vnPair{ka.l, kb.l}]
				if !okL {
					continue
				}
				pr, okR := pairs[vnPair{ka.r, kb.r}]
				if !okR {
					continue
				}
				nk := exprKey{op: ka.op, l: pl, r: pr}
				if _, seen := out.exprs[nk]; seen {
					continue
				}
				out.exprs[nk] = merged(na, b.exprs[kb])
				added = true
			}
		}
		if !added {
			return out
		}
	}
}

// canon renders the information content of the state — the induced
// equivalences, not the arbitrary value numbers — as a string, for fixpoint
// detection. Classes are renumbered in a deterministic traversal (sorted
// variables, then sorted literals, then expressions in canonical-key order,
// closed transitively); expressions whose operand classes are not anchored
// in any leaf are unreachable garbage and are dropped, so two states
// carrying the same knowledge canonicalize identically.
func (s *state) canon() string {
	canonOf := map[int]int{}
	next := 0
	number := func(vn int) int {
		if id, ok := canonOf[vn]; ok {
			return id
		}
		canonOf[vn] = next
		next++
		return canonOf[vn]
	}

	var sb strings.Builder
	vars := make([]string, 0, len(s.vars))
	for v := range s.vars {
		vars = append(vars, string(v))
	}
	sort.Strings(vars)
	for _, v := range vars {
		sb.WriteString(v)
		sb.WriteByte('=')
		sb.WriteString(strconv.Itoa(number(s.vars[ir.Var(v)])))
		sb.WriteByte(';')
	}
	consts := make([]int64, 0, len(s.consts))
	for c := range s.consts {
		consts = append(consts, c)
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i] < consts[j] })
	for _, c := range consts {
		sb.WriteString(strconv.FormatInt(c, 10))
		sb.WriteByte('=')
		sb.WriteString(strconv.Itoa(number(s.consts[c])))
		sb.WriteByte(';')
	}

	type canonExpr struct {
		op   ir.Op
		l, r int
		key  exprKey
	}
	done := map[exprKey]bool{}
	for {
		var ready []canonExpr
		for k := range s.exprs {
			if done[k] {
				continue
			}
			cl, okL := canonOf[k.l]
			if !okL {
				continue
			}
			cr, okR := canonOf[k.r]
			if !okR {
				continue
			}
			ready = append(ready, canonExpr{op: k.op, l: cl, r: cr, key: k})
		}
		if len(ready) == 0 {
			return sb.String()
		}
		sort.Slice(ready, func(i, j int) bool {
			if ready[i].op != ready[j].op {
				return ready[i].op < ready[j].op
			}
			if ready[i].l != ready[j].l {
				return ready[i].l < ready[j].l
			}
			return ready[i].r < ready[j].r
		})
		for _, e := range ready {
			sb.WriteString(string(e.op))
			sb.WriteByte('(')
			sb.WriteString(strconv.Itoa(e.l))
			sb.WriteByte(',')
			sb.WriteString(strconv.Itoa(e.r))
			sb.WriteString(")=")
			sb.WriteString(strconv.Itoa(number(s.exprs[e.key])))
			sb.WriteByte(';')
			done[e.key] = true
		}
	}
}

// literalsOf collects every integer literal occurring in g, sorted.
func literalsOf(g *ir.Graph) []int64 {
	seen := map[int64]bool{}
	addTerm := func(t ir.Term) {
		for _, o := range t.Operands() {
			if o.IsConst {
				seen[o.Const] = true
			}
		}
	}
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			switch in.Kind {
			case ir.KindAssign:
				addTerm(in.RHS)
			case ir.KindOut:
				for _, o := range in.Args {
					if o.IsConst {
						seen[o.Const] = true
					}
				}
			case ir.KindCond:
				addTerm(in.CondL)
				addTerm(in.CondR)
			}
		}
	}
	out := make([]int64, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Run applies global value numbering to g in place and returns the number
// of rewritten instructions.
func Run(g *ir.Graph) int {
	replaced, _, err := TryRunWith(g, nil)
	if err != nil {
		panic("gvn: " + err.Error())
	}
	return replaced
}

// RunWith is Run against session s (nil for the uncached path): the block
// iteration order comes from the session's cache and the analysis work is
// tallied into the session's solver counters for per-pass reporting. It
// additionally returns the number of fixpoint sweeps over the block order.
func RunWith(g *ir.Graph, s *analysis.Session) (replaced, sweeps int) {
	replaced, sweeps, err := TryRunWith(g, s)
	if err != nil {
		panic("gvn: " + err.Error())
	}
	return replaced, sweeps
}

// TryRunWith is the fallible form of RunWith: each analysis sweep honours
// the session's budget and cancellation context, and a fixpoint overrun
// surfaces as fault.ErrNoFixpoint instead of spinning. On error the graph
// is unchanged (the rewrite happens only after the analysis converges).
func TryRunWith(g *ir.Graph, s *analysis.Session) (replaced, sweeps int, err error) {
	ins, sweeps, visits, err := analyze(g, s)
	if st := s.DataflowStats(); st != nil {
		st.Solves++
		st.Visits += visits
		st.Sweeps += sweeps
	}
	if err != nil {
		return 0, sweeps, err
	}
	return rewrite(g, ins), sweeps, nil
}

// analyze solves the value-partition data flow problem at block
// granularity and returns the entry state of every block (nil for blocks
// unreachable from the entry). visits counts block transfer evaluations,
// the same unit the bit-vector solver reports.
func analyze(g *ir.Graph, s *analysis.Session) (ins []*state, sweeps, visits int, err error) {
	n := len(g.Blocks)
	view := s.Blocks(g)
	order := view.FwdOrder
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	literals := literalsOf(g)

	ins = make([]*state, n)
	outs := make([]*state, n)
	inCanon := make([]string, n)
	entry := int(g.Entry)

	// The partition at a point can only coarsen sweep over sweep (joins
	// remove equivalences, transfer is monotone), and its height is bounded
	// by the number of distinct terms, so convergence is fast; the backstop
	// flags termination bugs, not slow inputs.
	maxSweeps := 4*n + 2*g.InstrCount() + 16
	for {
		sweeps++
		if sweeps > maxSweeps {
			return nil, sweeps, visits, &fault.NoFixpointError{Proc: "gvn", Iterations: sweeps, Limit: maxSweeps}
		}
		if err := s.CheckBudget(0); err != nil {
			return nil, sweeps, visits, err
		}
		changed := false
		for _, i := range order {
			var m *state
			if i == entry {
				m = newState(literals)
			} else {
				for _, p := range view.Preds(i) {
					if outs[p] == nil {
						continue
					}
					if m == nil {
						m = outs[p].clone()
					} else {
						m = join(m, outs[p])
					}
				}
			}
			if m == nil {
				continue // unreachable so far
			}
			c := m.canon()
			if ins[i] != nil && c == inCanon[i] {
				continue
			}
			ins[i] = m
			inCanon[i] = c
			visits++
			out := m.clone()
			for _, in := range g.Blocks[i].Instrs {
				out.transfer(in)
			}
			outs[i] = out
			changed = true
		}
		if !changed {
			return ins, sweeps, visits, nil
		}
	}
}

// rewrite walks every reachable block under its entry state and replaces
// assignments whose value is already available:
//
//   - v := t where v's current class is already t's class becomes skip (the
//     assignment cannot change anything — the classical "second computation
//     into the same variable" case);
//   - v := t with a compound t whose value expression is known becomes a
//     copy v := c from the literal of the class, or v := w from the
//     alphabetically first variable of the class — turning a recomputation
//     into a trivial copy for copy propagation and assignment motion to
//     finish off.
//
// States are tracked through the ORIGINAL instructions: a rewritten copy
// carries strictly less syntactic knowledge (no value expression), but the
// original's knowledge remains true value-wise, so later decisions in the
// same block stay maximal and sound.
func rewrite(g *ir.Graph, ins []*state) int {
	replaced := 0
	for i, b := range g.Blocks {
		st := ins[i]
		if st == nil {
			continue
		}
		st = st.clone()
		for k := range b.Instrs {
			orig := b.Instrs[k]
			if orig.Kind == ir.KindAssign {
				if nt := replacement(st, orig); nt != nil {
					b.Instrs[k] = ir.NewAssign(orig.LHS, *nt)
					replaced++
				}
			}
			st.transfer(orig)
		}
	}
	if replaced > 0 {
		g.Normalize()
	}
	return replaced
}

// replacement returns the cheaper right-hand side for an assignment whose
// value is already available in st, or nil. The choice is deterministic:
// the target itself (yielding skip via the x := x identification), else the
// class's literal (a class holds at most one — distinct literals are never
// joined), else the alphabetically first variable of the class.
func replacement(st *state, in ir.Instr) *ir.Term {
	var n int
	if in.RHS.Trivial() {
		n = st.vnOperand(in.RHS.Args[0])
	} else {
		k := exprKey{op: in.RHS.Op, l: st.vnOperand(in.RHS.Args[0]), r: st.vnOperand(in.RHS.Args[1])}
		got, ok := st.exprs[k]
		if !ok {
			return nil // first computation of this value
		}
		n = got
	}
	if cur, ok := st.vars[in.LHS]; ok && cur == n {
		t := ir.VarTerm(in.LHS) // NewAssign identifies v := v with skip
		return &t
	}
	if in.RHS.Trivial() {
		return nil // already a minimal copy
	}
	for c, vn := range st.consts {
		if vn == n {
			t := ir.ConstTerm(c)
			return &t
		}
	}
	best := ir.Var("")
	for v, vn := range st.vars {
		if vn == n && v != in.LHS && (best == "" || v < best) {
			best = v
		}
	}
	if best == "" {
		return nil // value known equal but no longer held anywhere
	}
	t := ir.VarTerm(best)
	return &t
}
