package gvn

import (
	"testing"

	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
	"assignmentmotion/internal/printer"
	"assignmentmotion/internal/verify"
)

func instrKeys(g *ir.Graph, name string) []string {
	var out []string
	for _, in := range g.BlockByName(name).Instrs {
		out = append(out, in.Key())
	}
	return out
}

func checkTraces(t *testing.T, orig, xform *ir.Graph) {
	t.Helper()
	if rep := verify.Equivalent(orig, xform, 4, 1); !rep.Equivalent {
		t.Errorf("semantics changed: %s\n%s", rep.Detail, printer.String(xform))
	}
}

func TestRecomputationBecomesCopy(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    x := a + b
    y := a + b
    goto e
  }
  block e { out(x, y) }
}
`)
	orig := g.Clone()
	if n := Run(g); n == 0 {
		t.Fatal("nothing rewritten")
	}
	if keys := instrKeys(g, "a"); keys[1] != "y:=x" {
		t.Errorf("a = %v", keys)
	}
	checkTraces(t, orig, g)
}

func TestRecomputationIntoSameVarBecomesSkip(t *testing.T) {
	// The second x := a+b cannot change anything: x already holds that value.
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    x := a + b
    out(x)
    x := a + b
    goto e
  }
  block e { out(x) }
}
`)
	orig := g.Clone()
	Run(g)
	count := 0
	for _, k := range instrKeys(g, "a") {
		if k == "x:=a+b" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("want exactly one computation left, got %d: %v", count, instrKeys(g, "a"))
	}
	checkTraces(t, orig, g)
}

func TestOperandKillBlocksEquivalence(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    x := a + b
    a := a + 1
    y := a + b
    goto e
  }
  block e { out(x, y) }
}
`)
	orig := g.Clone()
	Run(g)
	if keys := instrKeys(g, "a"); keys[2] != "y:=a+b" {
		t.Errorf("unsound rewrite past kill of a: %v", keys)
	}
	checkTraces(t, orig, g)
}

func TestCrossBlockEquivalence(t *testing.T) {
	// The value flows across a block boundary — the availability is global,
	// not per-block.
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    x := a + b
    goto m
  }
  block m {
    out(x)
    y := a + b
    goto e
  }
  block e { out(y) }
}
`)
	orig := g.Clone()
	Run(g)
	if keys := instrKeys(g, "m"); keys[1] != "y:=x" {
		t.Errorf("m = %v", keys)
	}
	checkTraces(t, orig, g)
}

func TestDiamondBothSidesCompute(t *testing.T) {
	// Both branches establish x = a+b, so below the join y := a+b is a
	// recomputation — the cross-path case block-local value numbering misses.
	g := parse.MustParse(`
graph g {
  entry s0
  exit e
  block s0 { if c < 0 then l else r }
  block l { x := a + b
    goto j }
  block r { x := a + b
    out(x)
    goto j }
  block j { y := a + b
    goto e }
  block e { out(x, y) }
}
`)
	orig := g.Clone()
	Run(g)
	if keys := instrKeys(g, "j"); keys[0] != "y:=x" {
		t.Errorf("join equivalence missed: %v", keys)
	}
	checkTraces(t, orig, g)
}

func TestDiamondOneSideComputes(t *testing.T) {
	// Only one branch computes a+b: the join must drop the equivalence.
	g := parse.MustParse(`
graph g {
  entry s0
  exit e
  block s0 { if c < 0 then l else r }
  block l { x := a + b
    goto j }
  block r { x := 0
    goto j }
  block j { y := a + b
    goto e }
  block e { out(x, y) }
}
`)
	orig := g.Clone()
	Run(g)
	if keys := instrKeys(g, "j"); keys[0] != "y:=a+b" {
		t.Errorf("unsound rewrite below one-sided availability: %v", keys)
	}
	checkTraces(t, orig, g)
}

func TestCopyMakesOperandsEquivalent(t *testing.T) {
	// b := a puts a and b in one class, so a+1 and b+1 are the same value —
	// the equivalence syntactic availability (rae, lcm) cannot see.
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    b := a
    x := a + 1
    y := b + 1
    goto e
  }
  block e { out(x, y) }
}
`)
	orig := g.Clone()
	Run(g)
	if keys := instrKeys(g, "a"); keys[2] != "y:=x" {
		t.Errorf("copy-induced equivalence missed: %v", keys)
	}
	checkTraces(t, orig, g)
}

func TestLoopBackEdgeJoin(t *testing.T) {
	// x := a+b inside the loop with a killed each trip: the back edge join
	// must not pretend the value survives the kill.
	g := parse.MustParse(`
graph g {
  entry pre
  exit e
  block pre { goto body }
  block body {
    x := a + b
    a := a + 1
    y := a + b
    if a < 4 then body else e
  }
  block e { out(x, y, a) }
}
`)
	orig := g.Clone()
	Run(g)
	if keys := instrKeys(g, "body"); keys[2] != "y:=a+b" {
		t.Errorf("unsound loop rewrite: %v", keys)
	}
	checkTraces(t, orig, g)
}

func TestLoopInvariantValueStable(t *testing.T) {
	// a and b are loop-invariant; x := a+b recomputed each trip after the
	// first is redundant only if the analysis proves x still holds it on the
	// back edge — which it does, so the body copy collapses to skip.
	g := parse.MustParse(`
graph g {
  entry pre
  exit e
  block pre {
    x := a + b
    goto body
  }
  block body {
    x := a + b
    i := i + 1
    if i < 4 then body else e
  }
  block e { out(x, i) }
}
`)
	orig := g.Clone()
	Run(g)
	for _, k := range instrKeys(g, "body") {
		if k == "x:=a+b" {
			t.Errorf("loop-invariant recomputation kept: %v", instrKeys(g, "body"))
		}
	}
	checkTraces(t, orig, g)
}

func TestDeterministicRepresentative(t *testing.T) {
	// Two variables hold the value; the alphabetically first one is chosen,
	// independent of map iteration order.
	src := `
graph g {
  entry a
  exit e
  block a {
    w := a + b
    q := w
    z := a + b
    goto e
  }
  block e { out(w, q, z) }
}
`
	want := ""
	for i := 0; i < 32; i++ {
		g := parse.MustParse(src)
		Run(g)
		enc := g.Encode()
		if want == "" {
			want = enc
		} else if enc != want {
			t.Fatalf("run %d: nondeterministic output\n--- first\n%s\n--- now\n%s", i, want, enc)
		}
	}
	g := parse.MustParse(src)
	Run(g)
	if keys := instrKeys(g, "a"); keys[2] != "z:=q" {
		t.Errorf("want alphabetically first representative q, got %v", keys)
	}
}

func TestIdempotentOnGeneratedCorpus(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g := cfggen.Structured(seed, cfggen.Config{Size: 12})
		Run(g)
		enc := g.Encode()
		n := Run(g)
		if n != 0 {
			t.Errorf("seed %d: second run rewrote %d instructions", seed, n)
		}
		if g.Encode() != enc {
			t.Errorf("seed %d: second run changed the graph", seed)
		}
	}
}

func TestSessionCountersTallied(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    x := a + b
    y := a + b
    goto e
  }
  block e { out(x, y) }
}
`)
	s := analysis.NewSession()
	defer s.Close()
	replaced, sweeps, err := TryRunWith(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if replaced != 1 || sweeps == 0 {
		t.Errorf("replaced=%d sweeps=%d", replaced, sweeps)
	}
	st := s.DataflowStats()
	if st.Solves != 1 || st.Sweeps == 0 || st.Visits == 0 {
		t.Errorf("solver counters not tallied: %+v", st)
	}
}
