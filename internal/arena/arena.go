// Package arena provides reusable backing storage for the dataflow solver
// and the analyses built on top of it.
//
// Every bit-vector analysis in this module allocates the same shape of data
// per run: O(N) vectors of a fixed width, plus a few integer work arrays.
// The assignment-motion fixpoint (internal/am) re-runs the aht and rae
// analyses many times over one graph, so allocating that storage fresh each
// round dominated the allocation profile of Optimize (see BENCH_engine.json,
// PR 1 baseline). An Arena is a bump allocator over three flat stores —
// []uint64 for vector words, []int for worklists and orders, []bitvec.Vec
// for result headers — that a pass acquires once (via the sync.Pool) and
// rewinds between rounds with Mark/Release. In the steady state of an AM
// fixpoint the arena has warmed up to the high-water mark of one round and
// further rounds allocate nothing.
//
// All methods are nil-safe: a nil *Arena falls back to plain heap
// allocations, so code paths that are not perf-critical (tests, one-shot
// diagnostics) can pass nil and stay simple.
package arena

import (
	"sync"

	"assignmentmotion/internal/bitvec"
)

// Arena is a bump allocator. The zero value is ready to use. An Arena must
// not be used from more than one goroutine at a time.
type Arena struct {
	words []uint64
	ints  []int
	vecs  []bitvec.Vec
	wOff  int
	iOff  int
	vOff  int
	// High-water marks since the last Reset. Release rewinds the offsets
	// but not these, so they report the peak footprint of a whole run even
	// when every round is bracketed by Mark/Release.
	wHi int
	iHi int
	vHi int
}

// Mark is a rewind point returned by (*Arena).Mark.
type Mark struct{ w, i, v int }

// Mark records the current allocation offsets. Storage carved after a Mark
// is reclaimed by the matching Release.
func (a *Arena) Mark() Mark {
	if a == nil {
		return Mark{}
	}
	return Mark{w: a.wOff, i: a.iOff, v: a.vOff}
}

// Release rewinds the arena to m. Slices carved since the mark must no
// longer be used; their storage will be handed out again.
func (a *Arena) Release(m Mark) {
	if a == nil {
		return
	}
	a.wOff, a.iOff, a.vOff = m.w, m.i, m.v
}

// Reset rewinds the arena to empty, keeping its capacity.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.wOff, a.iOff, a.vOff = 0, 0, 0
	a.wHi, a.iHi, a.vHi = 0, 0, 0
}

// HighWater reports the peak allocation offsets — vector words, ints, and
// vector headers — reached since the last Reset. Because Release does not
// rewind the peaks, instrumentation (internal/pass) can diff HighWater
// around a pass to see how much arena storage the pass actually touched,
// Mark/Release brackets and all. Zero for a nil arena.
func (a *Arena) HighWater() (words, ints, vecs int) {
	if a == nil {
		return 0, 0, 0
	}
	return a.wHi, a.iHi, a.vHi
}

// Words carves a zeroed []uint64 of length n.
func (a *Arena) Words(n int) []uint64 {
	if a == nil {
		return make([]uint64, n)
	}
	if a.wOff+n > len(a.words) {
		grow(&a.words, a.wOff, n)
	}
	s := a.words[a.wOff : a.wOff+n : a.wOff+n]
	a.wOff += n
	if a.wOff > a.wHi {
		a.wHi = a.wOff
	}
	clear(s)
	return s
}

// Ints carves a zeroed []int of length n.
func (a *Arena) Ints(n int) []int {
	if a == nil {
		return make([]int, n)
	}
	if a.iOff+n > len(a.ints) {
		grow(&a.ints, a.iOff, n)
	}
	s := a.ints[a.iOff : a.iOff+n : a.iOff+n]
	a.iOff += n
	if a.iOff > a.iHi {
		a.iHi = a.iOff
	}
	clear(s)
	return s
}

// Vecs carves a zeroed []bitvec.Vec of length n (headers only; the vectors
// themselves are carved individually with Vec).
func (a *Arena) Vecs(n int) []bitvec.Vec {
	if a == nil {
		return make([]bitvec.Vec, n)
	}
	if a.vOff+n > len(a.vecs) {
		grow(&a.vecs, a.vOff, n)
	}
	s := a.vecs[a.vOff : a.vOff+n : a.vOff+n]
	a.vOff += n
	if a.vOff > a.vHi {
		a.vHi = a.vOff
	}
	clear(s)
	return s
}

// Vec carves a zeroed bit vector of the given width.
func (a *Arena) Vec(bits int) bitvec.Vec {
	if a == nil {
		return bitvec.New(bits)
	}
	return bitvec.Wrap(bits, a.Words(bitvec.WordsFor(bits)))
}

// grow replaces *store with a larger backing array. Slices carved before
// the growth keep pointing into the old array and stay valid; only their
// storage is not reclaimed until the next warm cycle.
func grow[T any](store *[]T, off, need int) {
	size := 2*len(*store) + need
	if size < 64 {
		size = 64
	}
	next := make([]T, size)
	copy(next, (*store)[:off])
	*store = next
}

var pool = sync.Pool{New: func() any { return &Arena{} }}

// Get returns an empty arena from the process-wide pool.
func Get() *Arena {
	a := pool.Get().(*Arena)
	a.Reset()
	return a
}

// Put returns a to the pool. Passing nil is a no-op. The caller must not
// retain any slice carved from a.
func Put(a *Arena) {
	if a != nil {
		pool.Put(a)
	}
}
