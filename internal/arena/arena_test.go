package arena

import (
	"testing"

	"assignmentmotion/internal/bitvec"
)

func TestCarvesAreZeroedAndSized(t *testing.T) {
	var a Arena
	w := a.Words(3)
	if len(w) != 3 {
		t.Fatalf("Words(3) len %d", len(w))
	}
	is := a.Ints(5)
	if len(is) != 5 {
		t.Fatalf("Ints(5) len %d", len(is))
	}
	v := a.Vec(130)
	if v.Len() != 130 || v.Any() {
		t.Fatalf("Vec(130): len %d any %v", v.Len(), v.Any())
	}
	vs := a.Vecs(4)
	if len(vs) != 4 {
		t.Fatalf("Vecs(4) len %d", len(vs))
	}
	for i := range w {
		if w[i] != 0 {
			t.Fatal("Words not zeroed")
		}
	}
	for i := range is {
		if is[i] != 0 {
			t.Fatal("Ints not zeroed")
		}
	}
}

func TestReleaseRewindsAndRezeroes(t *testing.T) {
	var a Arena
	m := a.Mark()
	v1 := a.Vec(64)
	v1.SetAll()
	a.Release(m)
	v2 := a.Vec(64)
	if v2.Any() {
		t.Fatal("carve after Release not re-zeroed")
	}
	// v1 and v2 share storage by design; this is the reuse being tested.
	v2.Set(3)
	if !v1.Get(3) {
		t.Fatal("expected v1/v2 to alias the rewound region")
	}
}

func TestGrowthKeepsOldCarvesValid(t *testing.T) {
	var a Arena
	first := a.Ints(4)
	for i := range first {
		first[i] = i + 1
	}
	// Force many growths past the initial capacity.
	for k := 0; k < 12; k++ {
		_ = a.Ints(1 << k)
	}
	for i := range first {
		if first[i] != i+1 {
			t.Fatalf("old carve corrupted after growth: %v", first)
		}
	}
}

func TestNilArenaFallsBackToHeap(t *testing.T) {
	var a *Arena
	if got := a.Vec(10); got.Len() != 10 {
		t.Fatal("nil arena Vec")
	}
	if got := a.Words(2); len(got) != 2 {
		t.Fatal("nil arena Words")
	}
	if got := a.Ints(2); len(got) != 2 {
		t.Fatal("nil arena Ints")
	}
	if got := a.Vecs(2); len(got) != 2 {
		t.Fatal("nil arena Vecs")
	}
	m := a.Mark() // all no-ops
	a.Release(m)
	a.Reset()
}

func TestPoolRoundTrip(t *testing.T) {
	a := Get()
	v := a.Vec(32)
	v.SetAll()
	Put(a)
	b := Get()
	defer Put(b)
	if w := b.Vec(32); w.Any() {
		t.Fatal("pooled arena handed out dirty storage")
	}
	Put(nil) // must not panic
}

func TestWrapContract(t *testing.T) {
	words := make([]uint64, bitvec.WordsFor(70))
	v := bitvec.Wrap(70, words)
	v.Set(69)
	if words[1] == 0 {
		t.Fatal("Wrap does not alias the supplied words")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Wrap with wrong word count did not panic")
		}
	}()
	bitvec.Wrap(70, make([]uint64, 1))
}
