package parse

import "assignmentmotion/internal/ir"

// This file defines the syntax tree of the typed dialect ("fun" dialect):
// the structured mini-language extended with function definitions, typed
// "let" declarations, calls, and booleans. ParseUnit (typed.go) produces a
// *Unit; internal/typeinference checks it; Unit.Lower (lower.go) inlines
// calls and desugars the result into a plain ir.Graph so every downstream
// pass works unchanged.

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// Type names as written in source. The empty string means "not annotated";
// typeinference fills it in.
const (
	TypeInt  = "int"
	TypeBool = "bool"
)

// Unit is one source file of the typed dialect: zero or more function
// definitions followed by a single program.
type Unit struct {
	Funcs []*FuncDecl
	Prog  *ProgDecl
}

// FuncDecl is "fn name(params): result { body }". Result is "" when the
// annotation is omitted (inferred from return statements). Every function
// returns a value; there are no void functions.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []Param
	Result string // TypeInt, TypeBool, or "" (inferred)
	Body   []Stmt
}

// Param is one "name: type" function parameter. Parameter types are
// mandatory — they anchor the inference.
type Param struct {
	Pos  Pos
	Name string
	Typ  string
}

// ProgDecl is "prog name { body }".
type ProgDecl struct {
	Pos  Pos
	Name string
	Body []Stmt
}

// Stmt is a statement node.
type Stmt interface {
	StmtPos() Pos
	stmtNode()
}

// LetStmt is "let name[: typ] = init". Declares a new variable.
type LetStmt struct {
	Pos  Pos
	Name string
	Typ  string // TypeInt, TypeBool, or "" (inferred from Init)
	Init Expr
}

// AssignStmt is "name := value" to an already-declared variable.
type AssignStmt struct {
	Pos   Pos
	Name  string
	Value Expr
}

// OutStmt is "out(args...)".
type OutStmt struct {
	Pos  Pos
	Args []Expr
}

// SkipStmt is "skip".
type SkipStmt struct {
	Pos Pos
}

// IfStmt is "if cond { then } [else { else }]"; an "else if" chain parses
// as an Else list holding a single IfStmt. Else is nil when absent.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// WhileStmt is "while cond { body }".
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body []Stmt
}

// DoWhileStmt is "do { body } while cond".
type DoWhileStmt struct {
	Pos  Pos
	Body []Stmt
	Cond Expr
}

// BreakStmt / ContinueStmt refer to the innermost loop.
type BreakStmt struct{ Pos Pos }
type ContinueStmt struct{ Pos Pos }

// ReturnStmt is "return value"; only valid inside a function.
type ReturnStmt struct {
	Pos   Pos
	Value Expr
}

func (s *LetStmt) StmtPos() Pos      { return s.Pos }
func (s *AssignStmt) StmtPos() Pos   { return s.Pos }
func (s *OutStmt) StmtPos() Pos      { return s.Pos }
func (s *SkipStmt) StmtPos() Pos     { return s.Pos }
func (s *IfStmt) StmtPos() Pos       { return s.Pos }
func (s *WhileStmt) StmtPos() Pos    { return s.Pos }
func (s *DoWhileStmt) StmtPos() Pos  { return s.Pos }
func (s *BreakStmt) StmtPos() Pos    { return s.Pos }
func (s *ContinueStmt) StmtPos() Pos { return s.Pos }
func (s *ReturnStmt) StmtPos() Pos   { return s.Pos }

func (*LetStmt) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*OutStmt) stmtNode()      {}
func (*SkipStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}

// Expr is an expression node.
type Expr interface {
	ExprPos() Pos
	exprNode()
}

// IntLit is an integer literal; unary minus is folded in by the parser.
type IntLit struct {
	Pos   Pos
	Value int64
}

// BoolLit is "true" or "false".
type BoolLit struct {
	Pos   Pos
	Value bool
}

// VarRef reads a variable.
type VarRef struct {
	Pos  Pos
	Name string
}

// BinExpr is a binary operation: arithmetic (+ - * / %, int → int) or
// relational (< <= > >= == !=, int → bool, non-associative).
type BinExpr struct {
	Pos Pos
	Op  ir.Op
	L   Expr
	R   Expr
}

// CallExpr calls a function defined in the same unit.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

func (e *IntLit) ExprPos() Pos   { return e.Pos }
func (e *BoolLit) ExprPos() Pos  { return e.Pos }
func (e *VarRef) ExprPos() Pos   { return e.Pos }
func (e *BinExpr) ExprPos() Pos  { return e.Pos }
func (e *CallExpr) ExprPos() Pos { return e.Pos }

func (*IntLit) exprNode()   {}
func (*BoolLit) exprNode()  {}
func (*VarRef) exprNode()   {}
func (*BinExpr) exprNode()  {}
func (*CallExpr) exprNode() {}
