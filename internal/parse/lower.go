package parse

import (
	"errors"
	"fmt"
	"strconv"

	"assignmentmotion/internal/ir"
)

// ParseFun parses a typed-dialect source file and lowers it to a flow
// graph, inlining every call. It performs only the scope checks needed for
// a sound lowering; internal/typeinference.Compile is the fully checked
// entry point (types, reachability, diagnostics).
func ParseFun(src string) (*ir.Graph, error) {
	u, err := ParseUnit(src)
	if err != nil {
		return nil, err
	}
	return u.Lower()
}

// MustParseFun is ParseFun that panics on error, with the source position
// and offending line in the message.
func MustParseFun(src string) *ir.Graph {
	g, err := ParseFun(src)
	if err != nil {
		panic(mustMessage("parse.MustParseFun", src, err))
	}
	return g
}

// inlineCallBudget bounds the total number of calls inlined for one unit.
// Nested non-recursive calls can still multiply code size exponentially
// (f calls g twice, g calls h twice, ...); the budget turns that into a
// clean error instead of an effectively unbounded graph.
const inlineCallBudget = 10_000

// Lower desugars the unit into a single flow graph. Functions disappear:
// every call site is inlined, with the callee's parameters and locals
// renamed to per-function instances ("<fn>_<name>") and each call result
// landing in a per-site variable. Because a function's instances are
// shared by all of its call sites, repeated calls materialize as repeated
// assignment patterns — exactly the redundancy the motion passes exist to
// remove. Booleans lower to 0/1 integers; a relational expression in value
// position materializes through a two-way branch.
//
// Lower checks what it needs for soundness — function scope, arity,
// recursion, the inline budget, return coverage, loop context — but not
// types; ill-typed programs lower by the same 0/1 encoding.
func (u *Unit) Lower() (*ir.Graph, error) {
	if u.Prog == nil {
		return nil, errors.New("parse: unit has no prog declaration")
	}
	l := &lowerer{
		b:       ir.NewBuilder(u.Prog.Name),
		funcs:   map[string]*FuncDecl{},
		mangles: map[string]map[string]ir.Var{},
		taken:   collectIdents(u),
	}
	l.ns = &nestedState{prefix: freshPrefixFrom(l.taken)}
	for _, fn := range u.Funcs {
		if l.funcs[fn.Name] != nil {
			return nil, fmt.Errorf("%d:%d: duplicate function %q", fn.Pos.Line, fn.Pos.Col, fn.Name)
		}
		l.funcs[fn.Name] = fn
	}
	entry := l.newBlock()
	l.cur = entry
	terminated, err := l.lowerStmts(u.Prog.Body, &loweringFrame{})
	if err != nil {
		return nil, err
	}
	if terminated {
		return nil, fmt.Errorf("%d:%d: program %q ends in break or continue",
			u.Prog.Pos.Line, u.Prog.Pos.Col, u.Prog.Name)
	}
	g, err := l.b.Finish(entry, l.cur)
	if err != nil {
		return nil, fmt.Errorf("prog %q: %w", u.Prog.Name, err)
	}
	return g, nil
}

// lowerer carries the state of one Unit.Lower run.
type lowerer struct {
	b      *ir.Builder
	ns     *nestedState // decomposition + bool temporaries, memoized by term key
	nblock int
	cur    string // block currently receiving instructions
	loops  []*typedLoop
	funcs  map[string]*FuncDecl
	// mangles memoizes the per-function rename table: the same instance
	// variables serve every call site of a function.
	mangles map[string]map[string]ir.Var
	taken   map[string]bool // identifiers in use; freshVar extends it
	stack   []string        // functions currently being inlined (recursion guard)
	calls   int             // inlined calls so far, against inlineCallBudget
	rets    int             // per-call-site result variable counter
}

type typedLoop struct {
	continueTo   string
	breakTo      string
	usedContinue bool
	usedBreak    bool
}

// loweringFrame is one inlining context: nil rename means program scope
// (names lower as themselves), a function frame renames through its table
// and rejects anything outside it.
type loweringFrame struct {
	fn     *FuncDecl
	rename map[string]ir.Var
	retVar ir.Var
	retTo  string
}

func (l *lowerer) resolve(fr *loweringFrame, name string, at Pos) (ir.Var, error) {
	if fr.rename == nil {
		return ir.Var(name), nil
	}
	if v, ok := fr.rename[name]; ok {
		return v, nil
	}
	return "", fmt.Errorf("%d:%d: variable %q is not a parameter or local of function %q",
		at.Line, at.Col, name, fr.fn.Name)
}

func (l *lowerer) newBlock() string {
	l.nblock++
	return fmt.Sprintf("b%d", l.nblock)
}

func (l *lowerer) emit(in ir.Instr) {
	l.b.Block(l.cur).Instr(in)
}

// freshVar returns base, or the first "base_N" that collides with neither
// a source identifier nor an earlier allocation nor the reserved temp
// spelling.
func (l *lowerer) freshVar(base string) ir.Var {
	name := base
	for i := 1; l.taken[name] || ir.IsTempName(ir.Var(name)); i++ {
		name = base + "_" + strconv.Itoa(i)
	}
	l.taken[name] = true
	return ir.Var(name)
}

// mangleFunc builds (once) the instance-variable table of fn.
func (l *lowerer) mangleFunc(fn *FuncDecl) map[string]ir.Var {
	if m := l.mangles[fn.Name]; m != nil {
		return m
	}
	m := map[string]ir.Var{}
	for _, p := range fn.Params {
		if _, ok := m[p.Name]; !ok {
			m[p.Name] = l.freshVar(fn.Name + "_" + p.Name)
		}
	}
	collectLets(fn.Body, func(name string) {
		if _, ok := m[name]; !ok {
			m[name] = l.freshVar(fn.Name + "_" + name)
		}
	})
	l.mangles[fn.Name] = m
	return m
}

// lowerStmts lowers a statement list into the current block chain. It
// returns true when control cannot fall out of the list (break, continue,
// return, or an if whose branches all terminate); any trailing statements
// are unreachable and dropped — typeinference reports them.
func (l *lowerer) lowerStmts(stmts []Stmt, fr *loweringFrame) (bool, error) {
	for _, s := range stmts {
		terminated, err := l.lowerStmt(s, fr)
		if err != nil {
			return false, err
		}
		if terminated {
			return true, nil
		}
	}
	return false, nil
}

func (l *lowerer) lowerStmt(s Stmt, fr *loweringFrame) (bool, error) {
	switch s := s.(type) {
	case *LetStmt:
		return false, l.lowerAssign(fr, s.Name, s.Pos, s.Init)
	case *AssignStmt:
		return false, l.lowerAssign(fr, s.Name, s.Pos, s.Value)
	case *OutStmt:
		args := make([]ir.Operand, len(s.Args))
		for i, a := range s.Args {
			o, err := l.lowerOperand(a, fr)
			if err != nil {
				return false, err
			}
			args[i] = o
		}
		l.emit(ir.NewOut(args...))
		return false, nil
	case *SkipStmt:
		l.emit(ir.Skip())
		return false, nil
	case *IfStmt:
		return l.lowerIf(s, fr)
	case *WhileStmt:
		return false, l.lowerWhile(s, fr)
	case *DoWhileStmt:
		return l.lowerDoWhile(s, fr)
	case *BreakStmt, *ContinueStmt:
		at := s.StmtPos()
		if len(l.loops) == 0 {
			kw := "break"
			if _, ok := s.(*ContinueStmt); ok {
				kw = "continue"
			}
			return false, fmt.Errorf("%d:%d: %s outside a loop", at.Line, at.Col, kw)
		}
		top := l.loops[len(l.loops)-1]
		target := top.breakTo
		if _, ok := s.(*ContinueStmt); ok {
			target = top.continueTo
			top.usedContinue = true
		} else {
			top.usedBreak = true
		}
		l.b.Edge(l.cur, target)
		return true, nil
	case *ReturnStmt:
		if fr.retVar == "" {
			at := s.StmtPos()
			return false, fmt.Errorf("%d:%d: return outside a function", at.Line, at.Col)
		}
		if err := l.lowerValueInto(fr.retVar, s.Value, fr); err != nil {
			return false, err
		}
		l.b.Edge(l.cur, fr.retTo)
		return true, nil
	}
	at := s.StmtPos()
	return false, fmt.Errorf("%d:%d: unsupported statement %T", at.Line, at.Col, s)
}

// lowerAssign lowers "name := value" (and let, which is the same after
// scope checking) in fr.
func (l *lowerer) lowerAssign(fr *loweringFrame, name string, at Pos, value Expr) error {
	v, err := l.resolve(fr, name, at)
	if err != nil {
		return err
	}
	return l.lowerValueInto(v, value, fr)
}

// lowerValueInto assigns value to dst. A direct call lands its result in
// dst without an intermediate result variable.
func (l *lowerer) lowerValueInto(dst ir.Var, value Expr, fr *loweringFrame) error {
	if call, ok := value.(*CallExpr); ok {
		_, err := l.lowerCall(call, fr, dst)
		return err
	}
	t, err := l.lowerTermExpr(value, fr)
	if err != nil {
		return err
	}
	l.emit(ir.NewAssign(dst, t))
	return nil
}

func (l *lowerer) lowerIf(s *IfStmt, fr *loweringFrame) (bool, error) {
	if err := l.lowerCond(s.Cond, fr); err != nil {
		return false, err
	}
	condBlk := l.cur
	thenB := l.newBlock()
	join := l.newBlock()
	elseTarget := join
	if s.Else != nil {
		elseTarget = l.newBlock()
	}
	l.b.Edge(condBlk, thenB)
	l.b.Edge(condBlk, elseTarget)

	l.cur = thenB
	thenTerm, err := l.lowerStmts(s.Then, fr)
	if err != nil {
		return false, err
	}
	if !thenTerm {
		l.b.Edge(l.cur, join)
	}
	elseTerm := false
	if s.Else != nil {
		l.cur = elseTarget
		elseTerm, err = l.lowerStmts(s.Else, fr)
		if err != nil {
			return false, err
		}
		if !elseTerm {
			l.b.Edge(l.cur, join)
		}
	}
	if thenTerm && elseTerm {
		// Both branches left; the join block was never created and
		// anything after the if is unreachable.
		return true, nil
	}
	l.cur = join
	return false, nil
}

func (l *lowerer) lowerWhile(s *WhileStmt, fr *loweringFrame) error {
	hdr := l.newBlock()
	l.b.Edge(l.cur, hdr)
	l.cur = hdr
	if err := l.lowerCond(s.Cond, fr); err != nil {
		return err
	}
	condBlk := l.cur
	body := l.newBlock()
	after := l.newBlock()
	l.b.Edge(condBlk, body)
	l.b.Edge(condBlk, after)

	// continue re-enters at hdr so the full condition chain (including any
	// decomposition or call blocks) re-executes.
	l.loops = append(l.loops, &typedLoop{continueTo: hdr, breakTo: after})
	l.cur = body
	bodyTerm, err := l.lowerStmts(s.Body, fr)
	l.loops = l.loops[:len(l.loops)-1]
	if err != nil {
		return err
	}
	if !bodyTerm {
		l.b.Edge(l.cur, hdr)
	}
	l.cur = after
	return nil
}

func (l *lowerer) lowerDoWhile(s *DoWhileStmt, fr *loweringFrame) (bool, error) {
	body := l.newBlock()
	condEntry := l.newBlock()
	after := l.newBlock()
	l.b.Edge(l.cur, body)

	loop := &typedLoop{continueTo: condEntry, breakTo: after}
	l.loops = append(l.loops, loop)
	l.cur = body
	bodyTerm, err := l.lowerStmts(s.Body, fr)
	l.loops = l.loops[:len(l.loops)-1]
	if err != nil {
		return false, err
	}
	if !bodyTerm {
		l.b.Edge(l.cur, condEntry)
	}
	if bodyTerm && !loop.usedContinue {
		// The condition is unreachable: the body always leaves the loop.
		// Don't materialize dangling blocks; control continues after the
		// loop only if some break targeted it.
		if !loop.usedBreak {
			return true, nil
		}
		l.cur = after
		return false, nil
	}
	l.cur = condEntry
	if err := l.lowerCond(s.Cond, fr); err != nil {
		return false, err
	}
	l.b.Edge(l.cur, body)
	l.b.Edge(l.cur, after)
	l.cur = after
	return false, nil
}

// lowerCond emits the branch condition for e into the current block. The
// caller adds the two outgoing edges (then-target first). A relational
// expression branches directly; any other (bool-typed) expression compares
// its 0/1 value against 0.
func (l *lowerer) lowerCond(e Expr, fr *loweringFrame) error {
	if be, ok := e.(*BinExpr); ok && be.Op.IsRel() {
		lt, err := l.lowerTermExpr(be.L, fr)
		if err != nil {
			return err
		}
		rt, err := l.lowerTermExpr(be.R, fr)
		if err != nil {
			return err
		}
		l.emit(ir.NewCond(be.Op, lt, rt))
		return nil
	}
	o, err := l.lowerOperand(e, fr)
	if err != nil {
		return err
	}
	l.emit(ir.NewCond(ir.OpNE, ir.OperandTerm(o), ir.ConstTerm(0)))
	return nil
}

// lowerTermExpr reduces e to a 3-address term (at most one operator),
// decomposing nested sub-expressions through memoized temporaries exactly
// as the nested dialect does.
func (l *lowerer) lowerTermExpr(e Expr, fr *loweringFrame) (ir.Term, error) {
	if be, ok := e.(*BinExpr); ok && be.Op.IsArith() {
		lo, err := l.lowerOperand(be.L, fr)
		if err != nil {
			return ir.Term{}, err
		}
		ro, err := l.lowerOperand(be.R, fr)
		if err != nil {
			return ir.Term{}, err
		}
		return ir.BinTerm(be.Op, lo, ro), nil
	}
	o, err := l.lowerOperand(e, fr)
	if err != nil {
		return ir.Term{}, err
	}
	return ir.OperandTerm(o), nil
}

// lowerOperand reduces e to a single operand, introducing decomposition
// temporaries, bool materialization, or call inlining as needed.
func (l *lowerer) lowerOperand(e Expr, fr *loweringFrame) (ir.Operand, error) {
	switch e := e.(type) {
	case *IntLit:
		return ir.ConstOp(e.Value), nil
	case *BoolLit:
		if e.Value {
			return ir.ConstOp(1), nil
		}
		return ir.ConstOp(0), nil
	case *VarRef:
		v, err := l.resolve(fr, e.Name, e.Pos)
		if err != nil {
			return ir.Operand{}, err
		}
		return ir.VarOp(v), nil
	case *CallExpr:
		return l.lowerCall(e, fr, "")
	case *BinExpr:
		if e.Op.IsArith() {
			t, err := l.lowerTermExpr(e, fr)
			if err != nil {
				return ir.Operand{}, err
			}
			v := l.ns.tempFor(t.Key())
			l.emit(ir.NewAssign(v, t))
			return ir.VarOp(v), nil
		}
		return l.materializeBool(e, fr)
	}
	at := e.ExprPos()
	return ir.Operand{}, fmt.Errorf("%d:%d: unsupported expression %T", at.Line, at.Col, e)
}

// materializeBool turns a relational expression in value position into a
// 0/1 variable via a two-way branch. The variable is memoized by the
// condition's spelling, so repeated occurrences share one name (each still
// computes its own value; sharing is the optimizer's job).
func (l *lowerer) materializeBool(e *BinExpr, fr *loweringFrame) (ir.Operand, error) {
	lt, err := l.lowerTermExpr(e.L, fr)
	if err != nil {
		return ir.Operand{}, err
	}
	rt, err := l.lowerTermExpr(e.R, fr)
	if err != nil {
		return ir.Operand{}, err
	}
	// The "?" namespace cannot collide with Term.Key spellings.
	v := l.ns.tempFor("?" + string(e.Op) + "|" + lt.Key() + "|" + rt.Key())
	l.emit(ir.NewCond(e.Op, lt, rt))
	condBlk := l.cur
	tB := l.newBlock()
	fB := l.newBlock()
	join := l.newBlock()
	l.b.Edge(condBlk, tB)
	l.b.Edge(condBlk, fB)
	l.b.Block(tB).Assign(v, ir.ConstTerm(1))
	l.b.Edge(tB, join)
	l.b.Block(fB).Assign(v, ir.ConstTerm(0))
	l.b.Edge(fB, join)
	l.cur = join
	return ir.VarOp(v), nil
}

// lowerCall inlines a call. When dst is non-empty the result lands there;
// otherwise a fresh per-site result variable is allocated. Arguments are
// evaluated left to right in the caller's frame, copied into the callee's
// parameter instances, and the body is lowered with returns rewired to a
// continuation block.
func (l *lowerer) lowerCall(e *CallExpr, fr *loweringFrame, dst ir.Var) (ir.Operand, error) {
	fn := l.funcs[e.Name]
	if fn == nil {
		return ir.Operand{}, fmt.Errorf("%d:%d: call to undefined function %q",
			e.Pos.Line, e.Pos.Col, e.Name)
	}
	for _, active := range l.stack {
		if active == e.Name {
			return ir.Operand{}, fmt.Errorf("%d:%d: recursive call to %q (functions must not recurse)",
				e.Pos.Line, e.Pos.Col, e.Name)
		}
	}
	if len(e.Args) != len(fn.Params) {
		return ir.Operand{}, fmt.Errorf("%d:%d: %q takes %d argument(s), got %d",
			e.Pos.Line, e.Pos.Col, e.Name, len(fn.Params), len(e.Args))
	}
	l.calls++
	if l.calls > inlineCallBudget {
		return ir.Operand{}, fmt.Errorf("%d:%d: inline budget exceeded (more than %d calls after inlining)",
			e.Pos.Line, e.Pos.Col, inlineCallBudget)
	}

	args := make([]ir.Operand, len(e.Args))
	for i, a := range e.Args {
		o, err := l.lowerOperand(a, fr)
		if err != nil {
			return ir.Operand{}, err
		}
		args[i] = o
	}
	rename := l.mangleFunc(fn)
	for i, p := range fn.Params {
		l.emit(ir.NewAssign(rename[p.Name], ir.OperandTerm(args[i])))
	}
	ret := dst
	if ret == "" {
		l.rets++
		ret = l.freshVar(e.Name + "_ret" + strconv.Itoa(l.rets))
	}
	cont := l.newBlock()
	nfr := &loweringFrame{fn: fn, rename: rename, retVar: ret, retTo: cont}
	l.stack = append(l.stack, e.Name)
	savedLoops := l.loops
	l.loops = nil // the callee must not see the caller's loops
	terminated, err := l.lowerStmts(fn.Body, nfr)
	l.loops = savedLoops
	l.stack = l.stack[:len(l.stack)-1]
	if err != nil {
		return ir.Operand{}, err
	}
	if !terminated {
		return ir.Operand{}, fmt.Errorf("%d:%d: function %q does not return on every path",
			fn.Pos.Line, fn.Pos.Col, fn.Name)
	}
	l.cur = cont
	return ir.VarOp(ret), nil
}

// collectLets calls f with every let-declared name in the statement tree.
func collectLets(stmts []Stmt, f func(string)) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *LetStmt:
			f(s.Name)
		case *IfStmt:
			collectLets(s.Then, f)
			collectLets(s.Else, f)
		case *WhileStmt:
			collectLets(s.Body, f)
		case *DoWhileStmt:
			collectLets(s.Body, f)
		}
	}
}

// collectIdents gathers every identifier spelled anywhere in the unit, the
// seed set for collision-free generated names.
func collectIdents(u *Unit) map[string]bool {
	used := map[string]bool{}
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch e := e.(type) {
		case *VarRef:
			used[e.Name] = true
		case *BinExpr:
			walkExpr(e.L)
			walkExpr(e.R)
		case *CallExpr:
			used[e.Name] = true
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	var walkStmts func([]Stmt)
	walkStmts = func(stmts []Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *LetStmt:
				used[s.Name] = true
				walkExpr(s.Init)
			case *AssignStmt:
				used[s.Name] = true
				walkExpr(s.Value)
			case *OutStmt:
				for _, a := range s.Args {
					walkExpr(a)
				}
			case *IfStmt:
				walkExpr(s.Cond)
				walkStmts(s.Then)
				walkStmts(s.Else)
			case *WhileStmt:
				walkExpr(s.Cond)
				walkStmts(s.Body)
			case *DoWhileStmt:
				walkStmts(s.Body)
				walkExpr(s.Cond)
			case *ReturnStmt:
				walkExpr(s.Value)
			}
		}
	}
	for _, fn := range u.Funcs {
		used[fn.Name] = true
		for _, p := range fn.Params {
			used[p.Name] = true
		}
		walkStmts(fn.Body)
	}
	if u.Prog != nil {
		used[u.Prog.Name] = true
		walkStmts(u.Prog.Body)
	}
	return used
}
