package parse

import (
	"reflect"
	"testing"

	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
)

func keys(g *ir.Graph, name string) []string {
	var out []string
	for _, in := range g.BlockByName(name).Instrs {
		out = append(out, in.Key())
	}
	return out
}

func TestNestedFigure18Decomposition(t *testing.T) {
	// Figure 18(a) → 18(b): x := a+b+c decomposes into t1 := a+b;
	// x := t1+c.
	g := MustParseNested(`
graph fig18a {
  entry n1
  exit n2
  block n1 {
    x := a + b + c
    goto n2
  }
  block n2 { out(x) }
}
`)
	want := []string{"t1:=a+b", "x:=t1+c"}
	if got := keys(g, "n1"); !reflect.DeepEqual(got, want) {
		t.Errorf("n1 = %v, want %v", got, want)
	}
}

func TestNestedPrecedence(t *testing.T) {
	g := MustParseNested(`
graph prec {
  entry a
  exit e
  block a {
    x := a0 + b0 * c0
    y := (a0 + b0) * c0
    goto e
  }
  block e { out(x, y) }
}
`)
	got := keys(g, "a")
	want := []string{"t1:=b0*c0", "x:=a0+t1", "t2:=a0+b0", "y:=t2*c0"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("a = %v, want %v", got, want)
	}
	// Semantics check: 2 + 3*4 = 14; (2+3)*4 = 20.
	r := interp.Run(g, map[ir.Var]int64{"a0": 2, "b0": 3, "c0": 4}, 0)
	if !reflect.DeepEqual(r.Trace, []int64{14, 20}) {
		t.Errorf("trace = %v", r.Trace)
	}
}

func TestNestedDeepExpression(t *testing.T) {
	g := MustParseNested(`
graph deep {
  entry a
  exit e
  block a {
    x := ((p + q) * (p - q)) % (p + 1)
    goto e
  }
  block e { out(x) }
}
`)
	// (3+2)*(3-2) % 4 = 5 % 4 = 1
	r := interp.Run(g, map[ir.Var]int64{"p": 3, "q": 2}, 0)
	if !reflect.DeepEqual(r.Trace, []int64{1}) {
		t.Errorf("trace = %v", r.Trace)
	}
	// All instructions must be 3-address.
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			for _, tm := range in.Terms(nil) {
				if !tm.Trivial() && !tm.Op.IsArith() {
					t.Errorf("non-3-address term %v", tm)
				}
			}
		}
	}
}

func TestNestedConditionSides(t *testing.T) {
	g := MustParseNested(`
graph conds {
  entry a
  exit e
  block a {
    if p + q * 2 > r - 1 then b else e
  }
  block b {
    x := 1
    goto e
  }
  block e { out(x) }
}
`)
	a := keys(g, "a")
	// q*2 must be lowered; p + t1 and r - 1 fit in condition sides.
	want := []string{"t1:=q*2", "p+t1>r-1"}
	if !reflect.DeepEqual(a, want) {
		t.Errorf("a = %v, want %v", a, want)
	}
	r := interp.Run(g, map[ir.Var]int64{"p": 1, "q": 2, "r": 3}, 0)
	if !reflect.DeepEqual(r.Trace, []int64{1}) { // 1+4 > 2 → then-branch
		t.Errorf("trace = %v", r.Trace)
	}
}

func TestNestedOutArguments(t *testing.T) {
	g := MustParseNested(`
graph outs {
  entry a
  exit e
  block a { goto e }
  block e { out(p + q, 7, r) }
}
`)
	got := keys(g, "e")
	want := []string{"t1:=p+q", "out(t1,7,r)"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("e = %v, want %v", got, want)
	}
}

func TestNestedPrefixAvoidsCollision(t *testing.T) {
	// The program already uses t1, so decomposition must pick another
	// prefix.
	g := MustParseNested(`
graph clash {
  entry a
  exit e
  block a {
    t1 := 5
    x := a0 + b0 + t1
    goto e
  }
  block e { out(x, t1) }
}
`)
	got := keys(g, "a")
	want := []string{"t1:=5", "u1:=a0+b0", "x:=u1+t1"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("a = %v, want %v", got, want)
	}
}

func TestNestedPlainProgramsUnchanged(t *testing.T) {
	src := `
graph plain {
  entry a
  exit e
  block a {
    x := a0 + b0
    goto e
  }
  block e { out(x) }
}
`
	g1 := MustParse(src)
	g2 := MustParseNested(src)
	if g1.Encode() != g2.Encode() {
		t.Errorf("nested mode changed a plain program:\n%s\nvs\n%s", g1.Encode(), g2.Encode())
	}
}

func TestNestedUnbalancedParen(t *testing.T) {
	_, err := ParseNested(`
graph bad {
  entry a
  exit e
  block a {
    x := (a0 + b0
    goto e
  }
  block e { out(x) }
}
`)
	if err == nil {
		t.Error("unbalanced parenthesis accepted")
	}
}

func TestNestedNegativeLiterals(t *testing.T) {
	g := MustParseNested(`
graph neg {
  entry a
  exit e
  block a {
    x := -3 + p - -2
    goto e
  }
  block e { out(x) }
}
`)
	r := interp.Run(g, map[ir.Var]int64{"p": 10}, 0)
	if !reflect.DeepEqual(r.Trace, []int64{9}) {
		t.Errorf("trace = %v", r.Trace)
	}
}
