package parse

import (
	"testing"

	"assignmentmotion/internal/core"
	"assignmentmotion/internal/printer"
)

// FuzzParse checks that the parser never panics and that every accepted
// program is valid, round-trips through the printer, and survives the
// full optimization pipeline.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`graph g { entry a exit e block a { x := 1 goto e } block e { out(x) } }`,
		`graph g { entry a exit e block a { if x + z > y then a2 else e } block a2 { y := c + d goto e } block e { out(y) } }`,
		`graph g { entry a exit e block a { skip goto e } block e { skip } }`,
		`graph running {
  entry b1
  exit b4
  block b1 { y := c + d
    goto b2 }
  block b2 { if x + z > y + i then b3 else b4 }
  block b3 { y := c + d
    x := y + z
    i := i + x
    goto b2 }
  block b4 { x := y + z
    out(i, x, y) }
}`,
		`graph g { entry a exit e block a { x := -5 % y goto e } block e { out(x) } }`,
		"graph g {", "", "# comment only", "graph g { entry a exit a block a { } }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted invalid graph: %v", verr)
		}
		text := printer.String(g)
		g2, err := ParseWith(text, Options{AllowTemps: true})
		if err != nil {
			t.Fatalf("print output does not re-parse: %v\n%s", err, text)
		}
		if g.Encode() != g2.Encode() {
			t.Fatalf("round trip changed program:\n%s\nvs\n%s", g.Encode(), g2.Encode())
		}
		// The optimizer must not panic or corrupt the graph either.
		core.Optimize(g)
		if verr := g.Validate(); verr != nil {
			t.Fatalf("optimizer produced invalid graph: %v", verr)
		}
	})
}

// FuzzParseNested does the same for the nested-expression grammar.
func FuzzParseNested(f *testing.F) {
	seeds := []string{
		`graph g { entry a exit e block a { x := a + b + c goto e } block e { out(x) } }`,
		`graph g { entry a exit e block a { x := (a + b) * (c - 1) % d goto e } block e { out(x + 1) } }`,
		`graph g { entry a exit e block a { if p + q * 2 > r - 1 then a2 else e } block a2 { x := 1 goto e } block e { out(x) } }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseNested(src)
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted invalid graph: %v", verr)
		}
		// Everything must be 3-address after lowering.
		for _, b := range g.Blocks {
			for i := range b.Instrs {
				for _, tm := range b.Instrs[i].Terms(nil) {
					if !tm.Trivial() && !tm.Op.IsArith() {
						t.Fatalf("non-3-address term %v", tm)
					}
				}
			}
		}
	})
}

// FuzzFun does the same for the typed front-end: the parser and lowerer
// must never panic, every accepted unit lowers to a valid graph, and the
// optimizer plus the compiled executor must agree with the tree-walking
// interpreter on it.
func FuzzFun(f *testing.F) {
	seeds := []string{
		`prog p { let a = 1 out(a) }`,
		`fn square(x: int): int { return x * x }
prog p { let a = square(n) let b = square(n) out(a, b) }`,
		`fn even(x: int): bool { return x % 2 == 0 }
prog p {
	let i = 0
	let hits = 0
	while i < 10 {
		if even(i + k) { hits := hits + 1 }
		i := i + 1
	}
	out(hits)
}`,
		`prog p {
	let i = 0
	do { i := i + 1 if i > 3 { break } } while true
	out(i)
}`,
		`fn f(x: int) { return -x }
prog p { out(f(1) < 2, f(f(m))) }`,
		`prog p { let x: bool = 1 < 2 if x { out(1) } else { out(0) } }`,
		"fn", "prog p {", "", `prog p { return 1 }`, `prog p { let h1 = 1 }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseFun(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted invalid graph: %v\n%s", verr, src)
		}
		core.Optimize(g)
		if verr := g.Validate(); verr != nil {
			t.Fatalf("optimizer produced invalid graph: %v\n%s", verr, src)
		}
	})
}
