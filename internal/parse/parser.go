package parse

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"assignmentmotion/internal/ir"
)

// Options configure parsing.
type Options struct {
	// AllowTemps permits variables spelled like generated temporaries
	// ("h" + digits). Source programs must not use them — the reserved
	// spelling is what lets every phase recognize temporaries — but tests
	// that describe intermediate (post-initialization) programs need them.
	// Any such variable used as "hN := a op b" is registered as the
	// temporary for that expression.
	AllowTemps bool
}

// Parse parses a single graph from src.
func Parse(src string) (*ir.Graph, error) {
	return ParseWith(src, Options{})
}

// ParseWith parses a single graph from src with explicit options.
func ParseWith(src string, opts Options) (*ir.Graph, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, opts: opts}
	g, err := p.parseGraph()
	if err != nil {
		return nil, err
	}
	return g, nil
}

// ParseFile parses the graph in the named file.
func ParseFile(path string) (*ir.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s:%w", path, err)
	}
	return g, nil
}

// MustParse parses src and panics on error; for tests and examples. The
// panic message carries the source position and the offending line, not
// just the bare error.
func MustParse(src string) *ir.Graph {
	g, err := Parse(src)
	if err != nil {
		panic(mustMessage("parse.MustParse", src, err))
	}
	return g
}

// MustParseTemps parses src with AllowTemps and panics on error.
func MustParseTemps(src string) *ir.Graph {
	g, err := ParseWith(src, Options{AllowTemps: true})
	if err != nil {
		panic(mustMessage("parse.MustParseTemps", src, err))
	}
	return g
}

// mustMessage builds the panic message of the Must* entry points: the
// failing function, the "line:col: detail" error, and — when the error's
// leading line number resolves inside src — the offending source line with
// a caret under the error column.
func mustMessage(fn, src string, err error) string {
	msg := fmt.Sprintf("%s: %v", fn, err)
	line, col, ok := errorPosition(err)
	if !ok {
		return msg
	}
	lines := strings.Split(src, "\n")
	if line < 1 || line > len(lines) {
		return msg
	}
	text := lines[line-1]
	caret := len(text)
	if col >= 1 && col <= len(text)+1 {
		caret = col - 1
	}
	return fmt.Sprintf("%s\n\t%s\n\t%s^", msg, text, strings.Repeat(" ", caret))
}

// errorPosition extracts the leading "line:col:" of a parse error.
func errorPosition(err error) (line, col int, ok bool) {
	parts := strings.SplitN(err.Error(), ":", 3)
	if len(parts) < 3 {
		return 0, 0, false
	}
	line, lerr := strconv.Atoi(strings.TrimSpace(parts[0]))
	col, cerr := strconv.Atoi(strings.TrimSpace(parts[1]))
	if lerr != nil || cerr != nil {
		return 0, 0, false
	}
	return line, col, true
}

type parser struct {
	toks []token
	pos  int
	opts Options
	// nested, when non-nil, enables the full-precedence expression
	// grammar with canonical 3-address decomposition (see ParseNested).
	nested *nestedState
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }

func (p *parser) errorf(t token, format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, p.errorf(t, "expected %s, found %s", what, t)
	}
	p.advance()
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.cur()
	if t.kind != tokIdent || t.text != kw {
		return p.errorf(t, "expected %q, found %s", kw, t)
	}
	p.advance()
	return nil
}

func (p *parser) ident(what string) (token, error) {
	t, err := p.expect(tokIdent, what)
	if err != nil {
		return t, err
	}
	if isKeyword(t.text) {
		return t, p.errorf(t, "keyword %q cannot be used as %s", t.text, what)
	}
	return t, nil
}

// blockDecl is the parse-time form of a block before edge resolution.
type blockDecl struct {
	name   string
	tok    token
	instrs []ir.Instr
	// terminator
	gotoTarget string // "goto" target, or ""
	condThen   string // "if" targets, or ""
	condElse   string
	termTok    token
}

func (p *parser) parseGraph() (*ir.Graph, error) {
	if err := p.expectKeyword("graph"); err != nil {
		return nil, err
	}
	nameTok, err := p.ident("graph name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}

	var entry, exit string
	var entryTok, exitTok token
	var decls []*blockDecl
	byName := map[string]*blockDecl{}

	for p.cur().kind != tokRBrace {
		t := p.cur()
		if t.kind != tokIdent {
			return nil, p.errorf(t, "expected declaration, found %s", t)
		}
		switch t.text {
		case "entry":
			p.advance()
			id, err := p.ident("entry block name")
			if err != nil {
				return nil, err
			}
			if entry != "" {
				return nil, p.errorf(id, "duplicate entry declaration")
			}
			entry, entryTok = id.text, id
		case "exit":
			p.advance()
			id, err := p.ident("exit block name")
			if err != nil {
				return nil, err
			}
			if exit != "" {
				return nil, p.errorf(id, "duplicate exit declaration")
			}
			exit, exitTok = id.text, id
		case "block":
			d, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			if byName[d.name] != nil {
				return nil, p.errorf(d.tok, "duplicate block %q", d.name)
			}
			byName[d.name] = d
			decls = append(decls, d)
		default:
			return nil, p.errorf(t, "expected entry, exit, or block, found %q", t.text)
		}
	}
	p.advance() // }
	if _, err := p.expect(tokEOF, "end of input"); err != nil {
		return nil, err
	}

	if entry == "" {
		return nil, p.errorf(nameTok, "graph %q has no entry declaration", nameTok.text)
	}
	if exit == "" {
		return nil, p.errorf(nameTok, "graph %q has no exit declaration", nameTok.text)
	}
	if byName[entry] == nil {
		return nil, p.errorf(entryTok, "entry block %q not declared", entry)
	}
	if byName[exit] == nil {
		return nil, p.errorf(exitTok, "exit block %q not declared", exit)
	}

	// Terminator discipline: the exit block flows nowhere; everything else
	// must say where it goes.
	for _, d := range decls {
		isExit := d.name == exit
		hasTerm := d.gotoTarget != "" || d.condThen != ""
		if isExit && hasTerm {
			return nil, p.errorf(d.termTok, "exit block %q must not have a terminator", d.name)
		}
		if !isExit && !hasTerm {
			return nil, p.errorf(d.tok, "block %q has no goto or if terminator", d.name)
		}
	}

	g := ir.NewGraph(nameTok.text)
	ids := map[string]ir.NodeID{}
	for _, d := range decls {
		ids[d.name] = g.AddBlock(d.name).ID
	}
	resolve := func(d *blockDecl, target string) (ir.NodeID, error) {
		id, ok := ids[target]
		if !ok {
			return 0, p.errorf(d.termTok, "block %q jumps to undeclared block %q", d.name, target)
		}
		return id, nil
	}
	for _, d := range decls {
		blk := g.Block(ids[d.name])
		blk.Instrs = d.instrs
		switch {
		case d.gotoTarget != "":
			id, err := resolve(d, d.gotoTarget)
			if err != nil {
				return nil, err
			}
			g.AddEdge(blk.ID, id)
		case d.condThen != "":
			thenID, err := resolve(d, d.condThen)
			if err != nil {
				return nil, err
			}
			elseID, err := resolve(d, d.condElse)
			if err != nil {
				return nil, err
			}
			g.AddEdge(blk.ID, thenID)
			g.AddEdge(blk.ID, elseID)
		}
	}
	g.Entry, g.Exit = ids[entry], ids[exit]
	g.Normalize()
	if p.opts.AllowTemps {
		if err := registerTemps(g); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph %q: %w", g.Name, err)
	}
	return g, nil
}

// registerTemps binds every assignment "hN := a op b" in g as the defining
// instance of temporary hN, so that graphs describing intermediate
// (post-initialization) programs carry a consistent temp registry.
func registerTemps(g *ir.Graph) error {
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Kind != ir.KindAssign || !ir.IsTempName(in.LHS) || in.RHS.Trivial() {
				continue
			}
			if prev, ok := g.TempExpr(in.LHS); ok && !prev.Equal(in.RHS) {
				return fmt.Errorf("graph %q: temporary %s initialized with both %s and %s",
					g.Name, in.LHS, prev, in.RHS)
			}
			g.RegisterTemp(in.LHS, in.RHS)
		}
	}
	return nil
}

func (p *parser) parseBlock() (*blockDecl, error) {
	if err := p.expectKeyword("block"); err != nil {
		return nil, err
	}
	nameTok, err := p.ident("block name")
	if err != nil {
		return nil, err
	}
	d := &blockDecl{name: nameTok.text, tok: nameTok}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	for p.cur().kind != tokRBrace {
		if d.gotoTarget != "" || d.condThen != "" {
			return nil, p.errorf(p.cur(), "statement after terminator in block %q", d.name)
		}
		if err := p.parseStmt(d); err != nil {
			return nil, err
		}
	}
	p.advance() // }
	return d, nil
}

func (p *parser) parseStmt(d *blockDecl) error {
	t := p.cur()
	if t.kind != tokIdent {
		return p.errorf(t, "expected statement, found %s", t)
	}
	switch t.text {
	case "skip":
		p.advance()
		d.instrs = append(d.instrs, ir.Skip())
		return nil
	case "out":
		p.advance()
		if _, err := p.expect(tokLParen, "("); err != nil {
			return err
		}
		var args []ir.Operand
		if p.cur().kind != tokRParen {
			for {
				o, err := p.parseArgOperand(d)
				if err != nil {
					return err
				}
				args = append(args, o)
				if p.cur().kind != tokComma {
					break
				}
				p.advance()
			}
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return err
		}
		d.instrs = append(d.instrs, ir.NewOut(args...))
		return nil
	case "goto":
		d.termTok = t
		p.advance()
		id, err := p.ident("goto target")
		if err != nil {
			return err
		}
		d.gotoTarget = id.text
		return nil
	case "if":
		d.termTok = t
		p.advance()
		l, err := p.parseStmtTerm(d)
		if err != nil {
			return err
		}
		opTok, err := p.expect(tokOp, "relational operator")
		if err != nil {
			return err
		}
		op := ir.Op(opTok.text)
		if !op.IsRel() {
			return p.errorf(opTok, "%q is not a relational operator", opTok.text)
		}
		r, err := p.parseStmtTerm(d)
		if err != nil {
			return err
		}
		if err := p.expectKeyword("then"); err != nil {
			return err
		}
		thenTok, err := p.ident("then target")
		if err != nil {
			return err
		}
		if err := p.expectKeyword("else"); err != nil {
			return err
		}
		elseTok, err := p.ident("else target")
		if err != nil {
			return err
		}
		d.condThen, d.condElse = thenTok.text, elseTok.text
		d.instrs = append(d.instrs, ir.NewCond(op, l, r))
		return nil
	default:
		// assignment: IDENT := term
		v, err := p.variable("assignment target")
		if err != nil {
			return err
		}
		if _, err := p.expect(tokAssign, ":="); err != nil {
			return err
		}
		rhs, err := p.parseStmtTerm(d)
		if err != nil {
			return err
		}
		d.instrs = append(d.instrs, ir.NewAssign(v, rhs))
		return nil
	}
}

// parseStmtTerm parses a right-hand side or condition side: a plain
// 3-address term, or — in nested mode — a full expression that is lowered
// to a term with decomposition assignments appended to d.
func (p *parser) parseStmtTerm(d *blockDecl) (ir.Term, error) {
	if p.nested == nil {
		return p.parseTerm()
	}
	e, err := p.parseExpr()
	if err != nil {
		return ir.Term{}, err
	}
	return p.lowerToTerm(d, e), nil
}

// parseArgOperand parses an out(...) argument: a plain operand, or — in
// nested mode — an expression reduced to an operand.
func (p *parser) parseArgOperand(d *blockDecl) (ir.Operand, error) {
	if p.nested == nil {
		return p.parseOperand()
	}
	e, err := p.parseExpr()
	if err != nil {
		return ir.Operand{}, err
	}
	return p.lowerToOperand(d, e), nil
}

// variable parses a variable name, enforcing the reserved temp spelling.
func (p *parser) variable(what string) (ir.Var, error) {
	t, err := p.ident(what)
	if err != nil {
		return "", err
	}
	v := ir.Var(t.text)
	if ir.IsTempName(v) && !p.opts.AllowTemps {
		return "", p.errorf(t, "variable %q uses the reserved temporary spelling h<digits>", t.text)
	}
	return v, nil
}

func (p *parser) parseTerm() (ir.Term, error) {
	a, err := p.parseOperand()
	if err != nil {
		return ir.Term{}, err
	}
	t := p.cur()
	if t.kind == tokOp && ir.Op(t.text).IsArith() {
		p.advance()
		b, err := p.parseOperand()
		if err != nil {
			return ir.Term{}, err
		}
		return ir.BinTerm(ir.Op(t.text), a, b), nil
	}
	return ir.OperandTerm(a), nil
}

func (p *parser) parseOperand() (ir.Operand, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return ir.Operand{}, p.errorf(t, "integer %q out of range", t.text)
		}
		return ir.ConstOp(n), nil
	case t.kind == tokOp && t.text == "-":
		p.advance()
		it, err := p.expect(tokInt, "integer after unary -")
		if err != nil {
			return ir.Operand{}, err
		}
		n, err := strconv.ParseInt("-"+it.text, 10, 64)
		if err != nil {
			return ir.Operand{}, p.errorf(it, "integer -%q out of range", it.text)
		}
		return ir.ConstOp(n), nil
	case t.kind == tokIdent:
		v, err := p.variable("operand")
		if err != nil {
			return ir.Operand{}, err
		}
		return ir.VarOp(v), nil
	}
	return ir.Operand{}, p.errorf(t, "expected operand, found %s", t)
}
