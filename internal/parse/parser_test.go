package parse

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"assignmentmotion/internal/ir"
)

const runningExample = `
// Figure 4 of the paper: the running example.
graph running {
  entry b1
  exit b4
  block b1 {
    y := c + d
    goto b2
  }
  block b2 {
    if x + z > y + i then b3 else b4
  }
  block b3 {
    y := c + d
    x := y + z
    i := i + x
    goto b2
  }
  block b4 {
    x := y + z
    x := c + d
    out(i, x, y)
  }
}
`

func TestParseRunningExample(t *testing.T) {
	g, err := Parse(runningExample)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "running" {
		t.Errorf("name = %q", g.Name)
	}
	if len(g.Blocks) != 4 {
		t.Fatalf("%d blocks", len(g.Blocks))
	}
	if g.EntryBlock().Name != "b1" || g.ExitBlock().Name != "b4" {
		t.Error("entry/exit wrong")
	}
	b2 := g.BlockByName("b2")
	cond, ok := b2.Cond()
	if !ok {
		t.Fatal("b2 has no condition")
	}
	if cond.CondL.Key() != "x+z" || cond.CondOp != ir.OpGT || cond.CondR.Key() != "y+i" {
		t.Errorf("cond = %v", cond)
	}
	if g.Block(b2.Succs[0]).Name != "b3" || g.Block(b2.Succs[1]).Name != "b4" {
		t.Error("branch successor order wrong")
	}
	b3 := g.BlockByName("b3")
	if len(b3.Instrs) != 3 {
		t.Fatalf("b3 instrs = %v", b3.Instrs)
	}
	if b3.Instrs[1].Key() != "x:=y+z" {
		t.Errorf("b3[1] = %v", b3.Instrs[1])
	}
	b4 := g.BlockByName("b4")
	last := b4.Instrs[len(b4.Instrs)-1]
	if last.Kind != ir.KindOut || len(last.Args) != 3 {
		t.Errorf("b4 out = %v", last)
	}
}

func TestParseConstantsAndOps(t *testing.T) {
	g := MustParse(`
graph g {
  entry a
  exit b
  block a {
    x := 3 * y
    z := -5
    w := x % 2
    q := x / z
    r := x - 1
    goto b
  }
  block b { out(q, r, w) }
}
`)
	a := g.BlockByName("a")
	if a.Instrs[0].Key() != "x:=3*y" {
		t.Errorf("instr 0 = %v", a.Instrs[0])
	}
	if a.Instrs[1].RHS.Args[0].Const != -5 {
		t.Errorf("instr 1 = %v", a.Instrs[1])
	}
	if a.Instrs[2].Key() != "w:=x%2" || a.Instrs[3].Key() != "q:=x/z" || a.Instrs[4].Key() != "r:=x-1" {
		t.Errorf("ops parsed wrong: %v", a.Instrs)
	}
}

func TestParseSelfAssignBecomesSkip(t *testing.T) {
	g := MustParse(`
graph g {
  entry a
  exit b
  block a {
    x := x
    goto b
  }
  block b { out(x) }
}
`)
	a := g.BlockByName("a")
	if len(a.Instrs) != 1 || a.Instrs[0].Kind != ir.KindSkip {
		t.Errorf("x := x not normalized to skip: %v", a.Instrs)
	}
}

func TestParseRejectsTempSpelling(t *testing.T) {
	_, err := Parse(`
graph g {
  entry a
  exit b
  block a { h1 := x + y
    goto b }
  block b { out(x) }
}
`)
	if err == nil || !strings.Contains(err.Error(), "reserved temporary spelling") {
		t.Errorf("err = %v", err)
	}
}

func TestParseAllowTempsRegisters(t *testing.T) {
	g, err := ParseWith(`
graph g {
  entry a
  exit b
  block a {
    h1 := x + y
    z := h1
    goto b
  }
  block b { out(z, h1) }
}
`, Options{AllowTemps: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsTemp("h1") {
		t.Fatal("h1 not registered")
	}
	if e, _ := g.TempExpr("h1"); e.Key() != "x+y" {
		t.Errorf("h1 expr = %v", e)
	}
}

func TestParseAllowTempsConflict(t *testing.T) {
	_, err := ParseWith(`
graph g {
  entry a
  exit b
  block a {
    h1 := x + y
    h1 := x * y
    goto b
  }
  block b { out(h1) }
}
`, Options{AllowTemps: true})
	if err == nil || !strings.Contains(err.Error(), "initialized with both") {
		t.Errorf("err = %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing entry", `graph g { exit b block b { skip } }`, "no entry"},
		{"missing exit", `graph g { entry b block b { skip } }`, "no exit"},
		{"undeclared entry", `graph g { entry a exit b block b { skip } }`, "not declared"},
		{"no terminator", `graph g { entry a exit b block a { skip } block b { skip } }`, "no goto or if"},
		{"exit terminator", `graph g { entry a exit b block a { goto b } block b { goto a } }`, "must not have a terminator"},
		{"stmt after terminator", `graph g { entry a exit b block a { goto b skip } block b { skip } }`, "after terminator"},
		{"undeclared target", `graph g { entry a exit b block a { goto c } block b { skip } }`, "undeclared block"},
		{"duplicate block", `graph g { entry a exit b block a { goto b } block a { goto b } block b { skip } }`, "duplicate block"},
		{"keyword variable", `graph g { entry a exit b block a { then := 1 goto b } block b { skip } }`, "keyword"},
		{"bad relop", `graph g { entry a exit b block a { if x + y then b else b } block b { skip } }`, "relational"},
		{"nested term", `graph g { entry a exit b block a { x := a + b + c goto b } block b { skip } }`, ""},
		{"bad char", `graph g { entry a exit b block a { x := a & b goto b } block b { skip } }`, "unexpected character"},
		{"duplicate entry", `graph g { entry a entry a exit b block a { goto b } block b { skip } }`, "duplicate entry"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("parse succeeded for %q", c.src)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestParseComments(t *testing.T) {
	g := MustParse(`
# hash comment
graph g { // line comment
  entry a
  exit b
  block a {
    x := 1 // trailing
    goto b
  }
  block b { out(x) }
}
`)
	if g.BlockByName("a").Instrs[0].Key() != "x:=1" {
		t.Error("comment handling broke parsing")
	}
}

func TestParseValidatesGraph(t *testing.T) {
	// Block c is declared but unreachable.
	_, err := Parse(`
graph g {
  entry a
  exit b
  block a { goto b }
  block b { out(x) }
  block c { goto b }
}
`)
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("err = %v", err)
	}
}

func TestParseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.fg")
	if err := os.WriteFile(path, []byte(`
graph g {
  entry a
  exit b
  block a { x := 1
    goto b }
  block b { out(x) }
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "g" {
		t.Errorf("name = %q", g.Name)
	}
	if _, err := ParseFile(filepath.Join(dir, "missing.fg")); err == nil {
		t.Error("missing file accepted")
	}
	// Errors carry the file name.
	bad := filepath.Join(dir, "bad.fg")
	if err := os.WriteFile(bad, []byte("graph {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseFile(bad); err == nil || !strings.Contains(err.Error(), "bad.fg") {
		t.Errorf("err = %v", err)
	}
}

func TestMustParseTempsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseTemps did not panic")
		}
	}()
	MustParseTemps("graph {")
}

func TestErrorsCarryPositions(t *testing.T) {
	_, err := Parse("graph g {\n  entry a\n  exit b\n  block a { x := & }\n}")
	if err == nil || !strings.Contains(err.Error(), "4:") {
		t.Errorf("err = %v, want line 4 position", err)
	}
}

func TestMustParsePanicMessage(t *testing.T) {
	src := "graph g {\n  entry b0\n  exit b0\n  block b0 {\n    x : 1\n    out(x)\n  }\n}\n"
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("MustParse did not panic on a syntax error")
		}
		msg, ok := rec.(string)
		if !ok {
			t.Fatalf("panic value is %T, want string", rec)
		}
		if !strings.Contains(msg, "parse.MustParse") {
			t.Errorf("panic message does not name the entry point: %q", msg)
		}
		if !strings.Contains(msg, "5:") {
			t.Errorf("panic message does not carry the source line: %q", msg)
		}
		if !strings.Contains(msg, "x : 1") {
			t.Errorf("panic message does not quote the offending line: %q", msg)
		}
		if !strings.Contains(msg, "^") {
			t.Errorf("panic message has no caret: %q", msg)
		}
	}()
	MustParse(src)
}

func TestMustMessageWithoutPosition(t *testing.T) {
	msg := mustMessage("parse.MustParse", "src", os.ErrNotExist)
	if !strings.Contains(msg, "parse.MustParse") || strings.Contains(msg, "^") {
		t.Errorf("positionless error must format without a caret: %q", msg)
	}
}
