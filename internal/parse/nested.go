package parse

import (
	"fmt"
	"strings"

	"assignmentmotion/internal/ir"
)

// ParseNested parses a graph whose right-hand sides and condition sides
// may be arbitrarily nested expressions with the usual precedence
// ("*", "/", "%" bind tighter than "+", "-"; parentheses allowed) and
// canonically decomposes them into 3-address form along the inductive
// structure of the terms — the transformation of §6 / Figure 18:
//
//	x := a + b + c        ⇒   t1 := a + b
//	                          x  := t1 + c
//
// Decomposition temporaries use a fresh identifier prefix that does not
// collide with any identifier of the source program (preferring t1, t2,
// …, as the paper writes them). Operands of out(...) may also be nested
// and are reduced to variables the same way.
func ParseNested(src string) (*ir.Graph, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	prefix := freshPrefix(toks)
	p := &parser{toks: toks, opts: Options{}, nested: &nestedState{prefix: prefix}}
	return p.parseGraph()
}

// MustParseNested is ParseNested that panics on error, with the source
// position and offending line in the message.
func MustParseNested(src string) *ir.Graph {
	g, err := ParseNested(src)
	if err != nil {
		panic(mustMessage("parse.MustParseNested", src, err))
	}
	return g
}

// nestedState carries the decomposition-temporary allocator. Temporaries
// are memoized by sub-term spelling — the "special naming discipline" of
// Briggs/Cooper that §6 mentions: syntactically identical sub-terms
// always decompose through the same temporary, so the later phases see
// them as one assignment pattern (each occurrence still carries its own
// initialization; sharing is the optimizer's job).
type nestedState struct {
	prefix string
	next   int
	byTerm map[string]ir.Var
}

func (ns *nestedState) tempFor(key string) ir.Var {
	if ns.byTerm == nil {
		ns.byTerm = map[string]ir.Var{}
	}
	if v, ok := ns.byTerm[key]; ok {
		return v
	}
	ns.next++
	v := ir.Var(fmt.Sprintf("%s%d", ns.prefix, ns.next))
	ns.byTerm[key] = v
	return v
}

// freshPrefix picks a temp prefix not colliding with program identifiers:
// the first of t, u, w, tmp whose digit-suffixed forms are unused.
func freshPrefix(toks []token) string {
	used := map[string]bool{}
	for _, t := range toks {
		if t.kind == tokIdent {
			used[t.text] = true
		}
	}
	return freshPrefixFrom(used)
}

// freshPrefixFrom is freshPrefix over a pre-collected identifier set; the
// typed dialect's lowering works from the syntax tree, not the tokens.
func freshPrefixFrom(used map[string]bool) string {
	for _, prefix := range []string{"t", "u", "w", "tmp", "dtmp"} {
		ok := true
		for id := range used {
			if strings.HasPrefix(id, prefix) && allDigits(id[len(prefix):]) && len(id) > len(prefix) {
				ok = false
				break
			}
		}
		if ok {
			return prefix
		}
	}
	return "dtmp_"
}

func allDigits(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// expr is a parse-time expression tree.
type expr struct {
	leaf ir.Operand // valid when l == nil
	op   ir.Op
	l, r *expr
}

// parseExpr parses a full-precedence expression (nested mode only).
func (p *parser) parseExpr() (*expr, error) {
	e, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == tokOp && (t.text == "+" || t.text == "-") {
			// A "-" directly followed by an integer could be either a
			// binary minus or the start of something else; in expression
			// position it is always binary here because unary minus is
			// folded into integer literals by parseAtom.
			p.advance()
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			e = &expr{op: ir.Op(t.text), l: e, r: r}
			continue
		}
		return e, nil
	}
}

func (p *parser) parseMul() (*expr, error) {
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == tokOp && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.advance()
			r, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			e = &expr{op: ir.Op(t.text), l: e, r: r}
			continue
		}
		return e, nil
	}
}

func (p *parser) parseAtom() (*expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		o, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return &expr{leaf: o}, nil
	}
}

// lowerToTerm reduces e to a 3-address term (at most one operator),
// appending decomposition assignments to d.
func (p *parser) lowerToTerm(d *blockDecl, e *expr) ir.Term {
	if e.l == nil {
		return ir.OperandTerm(e.leaf)
	}
	lo := p.lowerToOperand(d, e.l)
	ro := p.lowerToOperand(d, e.r)
	return ir.BinTerm(e.op, lo, ro)
}

// lowerToOperand reduces e to a single operand, introducing a fresh
// decomposition temporary when e is compound.
func (p *parser) lowerToOperand(d *blockDecl, e *expr) ir.Operand {
	if e.l == nil {
		return e.leaf
	}
	t := p.lowerToTerm(d, e)
	v := p.nested.tempFor(t.Key())
	d.instrs = append(d.instrs, ir.NewAssign(v, t))
	return ir.VarOp(v)
}
