// Package parse implements the textual ".fg" flow-graph language used by
// the examples, tests, and the amopt command line tool.
//
// The grammar mirrors the paper's program model directly:
//
//	graph    = "graph" IDENT "{" decl* "}"
//	decl     = "entry" IDENT | "exit" IDENT | "block" IDENT "{" stmt* "}"
//	stmt     = IDENT ":=" term
//	         | "out" "(" [ operand { "," operand } ] ")"
//	         | "skip"
//	         | "goto" IDENT
//	         | "if" term relop term "then" IDENT "else" IDENT
//	term     = operand [ arithop operand ]
//	operand  = IDENT | INT
//	arithop  = "+" | "-" | "*" | "/" | "%"
//	relop    = "<" | "<=" | ">" | ">=" | "==" | "!="
//
// Line comments start with "//" or "#". Every non-exit block must end in a
// goto or an if; the exit block must end in neither.
package parse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokAssign // :=
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokComma
	tokColon // ':' alone — type annotations of the typed dialect
	tokEq    // '=' alone — "let" initializers of the typed dialect
	tokOp    // arithmetic or relational operator symbol
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for {
		c, ok := l.peekByte()
		if !ok {
			return
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		default:
			return
		}
	}
}

func (l *lexer) skipLine() {
	for {
		c, ok := l.peekByte()
		if !ok || c == '\n' {
			return
		}
		l.advance()
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	c, ok := l.peekByte()
	if !ok {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	switch {
	case isIdentStart(c):
		start := l.pos
		for {
			c, ok := l.peekByte()
			if !ok || !isIdentCont(c) {
				break
			}
			l.advance()
			_ = c
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	case c >= '0' && c <= '9':
		start := l.pos
		for {
			c, ok := l.peekByte()
			if !ok || c < '0' || c > '9' {
				break
			}
			l.advance()
		}
		return token{kind: tokInt, text: l.src[start:l.pos], line: line, col: col}, nil
	}
	l.advance()
	two := func(second byte, twoText, oneText string) (token, error) {
		if n, ok := l.peekByte(); ok && n == second {
			l.advance()
			return token{kind: tokOp, text: twoText, line: line, col: col}, nil
		}
		if oneText == "" {
			return token{}, l.errorf(line, col, "unexpected character %q", string(c))
		}
		return token{kind: tokOp, text: oneText, line: line, col: col}, nil
	}
	switch c {
	case '{':
		return token{kind: tokLBrace, text: "{", line: line, col: col}, nil
	case '}':
		return token{kind: tokRBrace, text: "}", line: line, col: col}, nil
	case '(':
		return token{kind: tokLParen, text: "(", line: line, col: col}, nil
	case ')':
		return token{kind: tokRParen, text: ")", line: line, col: col}, nil
	case ',':
		return token{kind: tokComma, text: ",", line: line, col: col}, nil
	case ':':
		if n, ok := l.peekByte(); ok && n == '=' {
			l.advance()
			return token{kind: tokAssign, text: ":=", line: line, col: col}, nil
		}
		return token{kind: tokColon, text: ":", line: line, col: col}, nil
	case '+', '-', '*', '/', '%':
		return token{kind: tokOp, text: string(c), line: line, col: col}, nil
	case '<':
		return two('=', "<=", "<")
	case '>':
		return two('=', ">=", ">")
	case '=':
		if n, ok := l.peekByte(); ok && n == '=' {
			l.advance()
			return token{kind: tokOp, text: "==", line: line, col: col}, nil
		}
		return token{kind: tokEq, text: "=", line: line, col: col}, nil
	case '!':
		return two('=', "!=", "")
	}
	return token{}, l.errorf(line, col, "unexpected character %q", string(c))
}

// lexAll tokenizes the whole input; used by the parser.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

// keywords that may not be used as identifiers for blocks or variables,
// across both the .fg flow-graph syntax and the structured mini-language.
var keywords = map[string]bool{
	"graph": true, "entry": true, "exit": true, "block": true,
	"out": true, "skip": true, "goto": true,
	"if": true, "then": true, "else": true,
	"prog": true, "while": true, "do": true,
	"break": true, "continue": true,
	// typed dialect
	"fn": true, "let": true, "return": true,
	"true": true, "false": true, "int": true, "bool": true,
}

func isKeyword(s string) bool { return keywords[strings.ToLower(s)] }
