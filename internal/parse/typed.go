package parse

import (
	"strconv"

	"assignmentmotion/internal/ir"
)

// ParseUnit parses a source file of the typed dialect into its syntax
// tree. The grammar extends the structured mini-language (ParseProgram)
// with functions, typed let declarations, calls, and booleans:
//
//	unit    = fndecl* progdecl
//	fndecl  = "fn" IDENT "(" [ param { "," param } ] ")" [ ":" type ] "{" stmt* "}"
//	param   = IDENT ":" type
//	type    = "int" | "bool"
//	progdecl= "prog" IDENT "{" stmt* "}"
//	stmt    = "let" IDENT [ ":" type ] "=" expr
//	        | IDENT ":=" expr
//	        | "out" "(" [ expr { "," expr } ] ")"
//	        | "skip"
//	        | "if" expr "{" stmt* "}" [ "else" ( ifstmt | "{" stmt* "}" ) ]
//	        | "while" expr "{" stmt* "}"
//	        | "do" "{" stmt* "}" "while" expr
//	        | "break" | "continue"
//	        | "return" expr                       (functions only)
//	expr    = sum [ relop sum ]                   (relops non-associative)
//	sum     = mul { ("+" | "-") mul }
//	mul     = unary { ("*" | "/" | "%") unary }
//	unary   = "-" unary | atom
//	atom    = INT | "true" | "false" | IDENT | IDENT "(" [ expr { "," expr } ] ")"
//	        | "(" expr ")"
//
// ParseUnit reports only syntax errors; name, type, and reachability
// checking is internal/typeinference's job, and lowering to an ir.Graph is
// Unit.Lower's. ParseFun runs all three.
func ParseUnit(src string) (*Unit, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &typedParser{parser: parser{toks: toks}}
	return p.parseUnit()
}

type typedParser struct {
	parser
}

func pos(t token) Pos { return Pos{Line: t.line, Col: t.col} }

// at reports whether the current token is the given keyword.
func (p *typedParser) at(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && t.text == kw
}

func (p *typedParser) parseUnit() (*Unit, error) {
	u := &Unit{}
	for p.at("fn") {
		fd, err := p.parseFn()
		if err != nil {
			return nil, err
		}
		u.Funcs = append(u.Funcs, fd)
	}
	if err := p.expectKeyword("prog"); err != nil {
		return nil, err
	}
	nameTok, err := p.ident("program name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	body, err := p.stmts()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBrace, "}"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEOF, "end of input"); err != nil {
		return nil, err
	}
	u.Prog = &ProgDecl{Pos: pos(nameTok), Name: nameTok.text, Body: body}
	return u, nil
}

func (p *typedParser) parseFn() (*FuncDecl, error) {
	p.advance() // fn
	nameTok, err := p.ident("function name")
	if err != nil {
		return nil, err
	}
	fd := &FuncDecl{Pos: pos(nameTok), Name: nameTok.text}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	if p.cur().kind != tokRParen {
		for {
			pn, err := p.ident("parameter name")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokColon, ": before parameter type"); err != nil {
				return nil, err
			}
			pt, err := p.typeName()
			if err != nil {
				return nil, err
			}
			fd.Params = append(fd.Params, Param{Pos: pos(pn), Name: pn.text, Typ: pt})
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	if p.cur().kind == tokColon {
		p.advance()
		rt, err := p.typeName()
		if err != nil {
			return nil, err
		}
		fd.Result = rt
	}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	body, err := p.stmts()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBrace, "}"); err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

// typeName parses "int" or "bool".
func (p *typedParser) typeName() (string, error) {
	t := p.cur()
	if t.kind == tokIdent && (t.text == TypeInt || t.text == TypeBool) {
		p.advance()
		return t.text, nil
	}
	return "", p.errorf(t, "expected type (int or bool), found %s", t)
}

// stmts parses statements until the closing brace (not consumed).
// Context rules (return only in functions, break only in loops) are
// checked semantically, not syntactically, so inspect tooling sees them
// as diagnostics.
func (p *typedParser) stmts() ([]Stmt, error) {
	var list []Stmt
	for {
		t := p.cur()
		if t.kind == tokRBrace || t.kind == tokEOF {
			return list, nil
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		list = append(list, s)
	}
}

func (p *typedParser) stmt() (Stmt, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, p.errorf(t, "expected statement, found %s", t)
	}
	switch t.text {
	case "let":
		p.advance()
		nameTok, err := p.ident("variable name")
		if err != nil {
			return nil, err
		}
		typ := ""
		if p.cur().kind == tokColon {
			p.advance()
			typ, err = p.typeName()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokEq, "= after let declaration"); err != nil {
			return nil, err
		}
		init, err := p.parseTypedExpr()
		if err != nil {
			return nil, err
		}
		return &LetStmt{Pos: pos(nameTok), Name: nameTok.text, Typ: typ, Init: init}, nil
	case "skip":
		p.advance()
		return &SkipStmt{Pos: pos(t)}, nil
	case "out":
		p.advance()
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		var args []Expr
		if p.cur().kind != tokRParen {
			for {
				e, err := p.parseTypedExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, e)
				if p.cur().kind != tokComma {
					break
				}
				p.advance()
			}
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return &OutStmt{Pos: pos(t), Args: args}, nil
	case "if":
		return p.parseTypedIf()
	case "while":
		p.advance()
		cond, err := p.parseTypedExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.braced()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: pos(t), Cond: cond, Body: body}, nil
	case "do":
		p.advance()
		body, err := p.braced()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("while"); err != nil {
			return nil, err
		}
		cond, err := p.parseTypedExpr()
		if err != nil {
			return nil, err
		}
		return &DoWhileStmt{Pos: pos(t), Body: body, Cond: cond}, nil
	case "break":
		p.advance()
		return &BreakStmt{Pos: pos(t)}, nil
	case "continue":
		p.advance()
		return &ContinueStmt{Pos: pos(t)}, nil
	case "return":
		p.advance()
		e, err := p.parseTypedExpr()
		if err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: pos(t), Value: e}, nil
	default:
		nameTok, err := p.ident("assignment target")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokAssign, ":="); err != nil {
			return nil, err
		}
		e, err := p.parseTypedExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: pos(nameTok), Name: nameTok.text, Value: e}, nil
	}
}

// braced parses "{ stmt* }".
func (p *typedParser) braced() ([]Stmt, error) {
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	list, err := p.stmts()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBrace, "}"); err != nil {
		return nil, err
	}
	return list, nil
}

func (p *typedParser) parseTypedIf() (Stmt, error) {
	t := p.cur()
	p.advance() // if
	cond, err := p.parseTypedExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.braced()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: pos(t), Cond: cond, Then: then}
	if p.at("else") {
		p.advance()
		if p.at("if") {
			elif, err := p.parseTypedIf()
			if err != nil {
				return nil, err
			}
			s.Else = []Stmt{elif}
		} else {
			s.Else, err = p.braced()
			if err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// parseTypedExpr parses a full expression: sum [relop sum]. Relational
// operators are non-associative, as in the flat dialect.
func (p *typedParser) parseTypedExpr() (Expr, error) {
	l, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokOp && ir.Op(t.text).IsRel() {
		p.advance()
		r, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Pos: pos(t), Op: ir.Op(t.text), L: l, R: r}, nil
	}
	return l, nil
}

func (p *typedParser) parseSum() (Expr, error) {
	e, err := p.parseTypedMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return e, nil
		}
		p.advance()
		r, err := p.parseTypedMul()
		if err != nil {
			return nil, err
		}
		e = &BinExpr{Pos: pos(t), Op: ir.Op(t.text), L: e, R: r}
	}
}

func (p *typedParser) parseTypedMul() (Expr, error) {
	e, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokOp || (t.text != "*" && t.text != "/" && t.text != "%") {
			return e, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		e = &BinExpr{Pos: pos(t), Op: ir.Op(t.text), L: e, R: r}
	}
}

func (p *typedParser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tokOp && t.text == "-" {
		p.advance()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*IntLit); ok {
			return &IntLit{Pos: pos(t), Value: -lit.Value}, nil
		}
		// General unary minus desugars to 0 - e.
		return &BinExpr{Pos: pos(t), Op: ir.OpSub, L: &IntLit{Pos: pos(t)}, R: e}, nil
	}
	return p.parseTypedAtom()
}

func (p *typedParser) parseTypedAtom() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf(t, "integer %q out of range", t.text)
		}
		return &IntLit{Pos: pos(t), Value: n}, nil
	case t.kind == tokLParen:
		p.advance()
		e, err := p.parseTypedExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.at("true") || p.at("false"):
		p.advance()
		return &BoolLit{Pos: pos(t), Value: t.text == "true"}, nil
	case t.kind == tokIdent:
		nameTok, err := p.ident("expression")
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokLParen {
			return &VarRef{Pos: pos(nameTok), Name: nameTok.text}, nil
		}
		p.advance() // (
		call := &CallExpr{Pos: pos(nameTok), Name: nameTok.text}
		if p.cur().kind != tokRParen {
			for {
				a, err := p.parseTypedExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.cur().kind != tokComma {
					break
				}
				p.advance()
			}
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	return nil, p.errorf(t, "expected expression, found %s", t)
}
