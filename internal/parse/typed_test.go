package parse

import (
	"strings"
	"testing"

	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
)

func runFun(t *testing.T, src string, init map[ir.Var]int64) interp.Result {
	t.Helper()
	g, err := ParseFun(src)
	if err != nil {
		t.Fatalf("ParseFun: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("lowered graph invalid: %v", err)
	}
	return interp.Run(g, init, interp.DefaultMaxSteps)
}

func wantTrace(t *testing.T, got interp.Result, want ...int64) {
	t.Helper()
	if got.Truncated || got.Trapped {
		t.Fatalf("run truncated=%v trapped=%v", got.Truncated, got.Trapped)
	}
	if len(got.Trace) != len(want) {
		t.Fatalf("trace = %v, want %v", got.Trace, want)
	}
	for i := range want {
		if got.Trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", got.Trace, want)
		}
	}
}

func TestFunSimpleCall(t *testing.T) {
	res := runFun(t, `
		fn square(x: int): int {
			return x * x
		}
		prog p {
			let a = square(3)
			let b = square(4)
			out(a + b)
		}
	`, nil)
	wantTrace(t, res, 25)
}

func TestFunRepeatedCallSharesInstances(t *testing.T) {
	g, err := ParseFun(`
		fn square(x: int): int {
			return x * x
		}
		prog p {
			let a = square(n)
			let b = square(n)
			out(a, b)
		}
	`)
	if err != nil {
		t.Fatalf("ParseFun: %v", err)
	}
	// Both inlines must use the same parameter instance, so the motion
	// passes see the repeated pattern square_x := n / a := square_x * square_x.
	found := 0
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == ir.KindAssign && in.LHS == "square_x" {
				found++
			}
		}
	}
	if found != 2 {
		t.Fatalf("want 2 assignments to shared instance square_x, found %d\n%s", found, g.Encode())
	}
	res := interp.Run(g, map[ir.Var]int64{"n": 7}, interp.DefaultMaxSteps)
	wantTrace(t, res, 49, 49)
}

func TestFunInference(t *testing.T) {
	// Annotations optional on let; typed and untyped mix freely.
	res := runFun(t, `
		fn max2(a: int, b: int) {
			if a > b {
				return a
			}
			return b
		}
		prog p {
			let x: int = 3
			let y = max2(x, 10)
			out(y)
		}
	`, nil)
	wantTrace(t, res, 10)
}

func TestFunBoolValues(t *testing.T) {
	res := runFun(t, `
		fn positive(x: int): bool {
			return x > 0
		}
		prog p {
			let flag: bool = positive(n)
			let other = n < 100
			if flag {
				out(1, other)
			} else {
				out(0, other)
			}
		}
	`, map[ir.Var]int64{"n": 42})
	wantTrace(t, res, 1, 1)
}

func TestFunControlFlow(t *testing.T) {
	res := runFun(t, `
		fn inc(x: int): int {
			return x + 1
		}
		prog p {
			let s = 0
			let i = 0
			while i < 10 {
				i := inc(i)
				if i == 3 {
					continue
				}
				if i > 7 {
					break
				}
				s := s + i
			}
			do {
				s := s - 1
			} while s > 25
			out(s, i)
		}
	`, nil)
	// i runs 1..8; skips 3; breaks at 8: s = 1+2+4+5+6+7 = 25; do-while
	// executes once: 24.
	wantTrace(t, res, 24, 8)
}

func TestFunNestedCallsAndExpressions(t *testing.T) {
	res := runFun(t, `
		fn add(a: int, b: int): int {
			return a + b
		}
		fn twice(x: int): int {
			return add(x, x)
		}
		prog p {
			out(twice(add(2, 3)) * 2 - 1)
		}
	`, nil)
	wantTrace(t, res, 19)
}

func TestFunUnaryMinus(t *testing.T) {
	res := runFun(t, `
		prog p {
			let a = -5
			let b = -(a + 2)
			out(a, b, -b)
		}
	`, nil)
	wantTrace(t, res, -5, 3, -3)
}

func TestFunWhileCallCondition(t *testing.T) {
	res := runFun(t, `
		fn under(x: int, lim: int): bool {
			return x < lim
		}
		prog p {
			let i = 0
			while under(i, 4) {
				i := i + 1
			}
			out(i)
		}
	`, nil)
	wantTrace(t, res, 4)
}

func TestFunErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"recursion", `fn f(x: int): int { return f(x) } prog p { out(f(1)) }`, "recursive"},
		{"undefined fn", `prog p { out(f(1)) }`, "undefined function"},
		{"arity", `fn f(x: int): int { return x } prog p { out(f(1, 2)) }`, "argument"},
		{"fn scope", `fn f(x: int): int { return x + y } prog p { out(f(1)) }`, "not a parameter or local"},
		{"missing return", `fn f(x: int): int { let y = x } prog p { out(f(1)) }`, "does not return on every path"},
		{"partial return", `fn f(x: int): int { if x > 0 { return x } } prog p { out(f(1)) }`, "does not return on every path"},
		{"break outside loop", `prog p { break }`, "outside a loop"},
		{"break in fn body", `fn f(x: int): int { break } prog p { out(f(1)) }`, "outside a loop"},
		{"return in prog", `prog p { return 1 }`, "return outside a function"},
		{"duplicate fn", `fn f(x: int): int { return x } fn f(x: int): int { return x } prog p { out(f(1)) }`, "duplicate function"},
		{"keyword var", `prog p { let if = 1 }`, "keyword"},
		{"missing prog", `fn f(x: int): int { return x }`, `expected "prog"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseFun(tc.src)
			if err == nil {
				t.Fatalf("ParseFun succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestFunUnreachableAfterBreakDropped(t *testing.T) {
	// Statements after break/continue are unreachable; lowering drops them
	// (typeinference reports them as diagnostics).
	res := runFun(t, `
		prog p {
			let i = 0
			while true {
				i := 1
				break
				i := 99
			}
			out(i)
		}
	`, nil)
	wantTrace(t, res, 1)
}

func TestFunDoWhileAlwaysBreaks(t *testing.T) {
	res := runFun(t, `
		prog p {
			let i = 0
			do {
				i := i + 1
				break
			} while i < 10
			out(i)
		}
	`, nil)
	wantTrace(t, res, 1)
}

func TestFunElseIfChain(t *testing.T) {
	for n, want := range map[int64]int64{1: 10, 2: 20, 3: 30} {
		res := runFun(t, `
			prog p {
				let r = 0
				if n == 1 {
					r := 10
				} else if n == 2 {
					r := 20
				} else {
					r := 30
				}
				out(r)
			}
		`, map[ir.Var]int64{"n": n})
		wantTrace(t, res, want)
	}
}
