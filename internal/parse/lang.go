package parse

import (
	"fmt"

	"assignmentmotion/internal/ir"
)

// ParseProgram reads a program in the structured mini-language and
// desugars it into a flow graph. The language removes the need to write
// basic blocks and gotos by hand:
//
//	prog    = "prog" IDENT "{" stmt* "}"
//	stmt    = IDENT ":=" expr
//	        | "out" "(" [ expr { "," expr } ] ")"
//	        | "skip"
//	        | "if" cond "{" stmt* "}" [ "else" "{" stmt* "}" ]
//	        | "while" cond "{" stmt* "}"
//	        | "do" "{" stmt* "}" "while" cond
//	        | "break" | "continue"
//	cond    = expr relop expr
//
// Expressions are fully nested (precedence and parentheses) and are
// canonically decomposed into 3-address form exactly as ParseNested does.
// "break" and "continue" refer to the innermost loop; statements after
// them in the same block are rejected as unreachable.
func ParseProgram(src string) (*ir.Graph, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &langParser{
		parser: parser{toks: toks, nested: &nestedState{prefix: freshPrefix(toks)}},
	}
	return p.parseProgram()
}

// MustParseProgram is ParseProgram that panics on error, with the source
// position and offending line in the message.
func MustParseProgram(src string) *ir.Graph {
	g, err := ParseProgram(src)
	if err != nil {
		panic(mustMessage("parse.MustParseProgram", src, err))
	}
	return g
}

type langParser struct {
	parser
	b      *ir.Builder
	nblock int
	// loop stack for break/continue targets.
	loops []loopCtx
}

type loopCtx struct {
	continueTo string // loop header (while) or body (do-while re-entry is the cond, see below)
	breakTo    string
}

func (p *langParser) newBlock() string {
	p.nblock++
	return fmt.Sprintf("b%d", p.nblock)
}

func (p *langParser) parseProgram() (*ir.Graph, error) {
	if err := p.expectKeyword("prog"); err != nil {
		return nil, err
	}
	nameTok, err := p.ident("program name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return nil, err
	}
	p.b = ir.NewBuilder(nameTok.text)
	entry := p.newBlock()
	end, terminated, err := p.stmtList(entry)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBrace, "}"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEOF, "end of input"); err != nil {
		return nil, err
	}
	exit := end
	if terminated {
		// The program ended inside a break/continue chain; give the graph
		// a fresh, reachable exit.
		return nil, p.errorf(nameTok, "program ends in break/continue")
	}
	g, err := p.b.Finish(entry, exit)
	if err != nil {
		return nil, fmt.Errorf("prog %q: %w", nameTok.text, err)
	}
	return g, nil
}

// stmtList parses statements into the block named cur, creating more
// blocks as control flow demands. It returns the block that control falls
// out of, and whether the flow was terminated by break/continue (in which
// case the returned block is meaningless).
func (p *langParser) stmtList(cur string) (string, bool, error) {
	for {
		t := p.cur()
		if t.kind == tokRBrace || t.kind == tokEOF {
			return cur, false, nil
		}
		if t.kind != tokIdent {
			return "", false, p.errorf(t, "expected statement, found %s", t)
		}
		switch t.text {
		case "skip":
			p.advance()
		case "out":
			if err := p.parseLangOut(cur); err != nil {
				return "", false, err
			}
		case "if":
			next, err := p.parseIf(cur)
			if err != nil {
				return "", false, err
			}
			cur = next
		case "while":
			next, err := p.parseWhile(cur)
			if err != nil {
				return "", false, err
			}
			cur = next
		case "do":
			next, err := p.parseDoWhile(cur)
			if err != nil {
				return "", false, err
			}
			cur = next
		case "break", "continue":
			p.advance()
			if len(p.loops) == 0 {
				return "", false, p.errorf(t, "%s outside a loop", t.text)
			}
			top := p.loops[len(p.loops)-1]
			target := top.breakTo
			if t.text == "continue" {
				target = top.continueTo
			}
			p.b.Edge(cur, target)
			if nt := p.cur(); nt.kind != tokRBrace {
				return "", false, p.errorf(nt, "unreachable statement after %s", t.text)
			}
			return "", true, nil
		default:
			if err := p.parseLangAssign(cur); err != nil {
				return "", false, err
			}
		}
	}
}

// langDecl adapts blockDecl so the nested-expression lowering can emit
// decomposition assignments into the current builder block.
func (p *langParser) lowerInto(cur string, f func(d *blockDecl) error) error {
	var d blockDecl
	if err := f(&d); err != nil {
		return err
	}
	bb := p.b.Block(cur)
	for _, in := range d.instrs {
		bb.Instr(in)
	}
	return nil
}

func (p *langParser) parseLangAssign(cur string) error {
	v, err := p.variable("assignment target")
	if err != nil {
		return err
	}
	if _, err := p.expect(tokAssign, ":="); err != nil {
		return err
	}
	return p.lowerInto(cur, func(d *blockDecl) error {
		rhs, err := p.parseStmtTerm(d)
		if err != nil {
			return err
		}
		d.instrs = append(d.instrs, ir.NewAssign(v, rhs))
		return nil
	})
}

func (p *langParser) parseLangOut(cur string) error {
	p.advance() // out
	if _, err := p.expect(tokLParen, "("); err != nil {
		return err
	}
	return p.lowerInto(cur, func(d *blockDecl) error {
		var args []ir.Operand
		if p.cur().kind != tokRParen {
			for {
				o, err := p.parseArgOperand(d)
				if err != nil {
					return err
				}
				args = append(args, o)
				if p.cur().kind != tokComma {
					break
				}
				p.advance()
			}
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return err
		}
		d.instrs = append(d.instrs, ir.NewOut(args...))
		return nil
	})
}

// parseCond parses "expr relop expr" and appends the condition (plus any
// decomposition assignments) to block cur.
func (p *langParser) parseCond(cur string) error {
	return p.lowerInto(cur, func(d *blockDecl) error {
		l, err := p.parseStmtTerm(d)
		if err != nil {
			return err
		}
		opTok, err := p.expect(tokOp, "relational operator")
		if err != nil {
			return err
		}
		op := ir.Op(opTok.text)
		if !op.IsRel() {
			return p.errorf(opTok, "%q is not a relational operator", opTok.text)
		}
		r, err := p.parseStmtTerm(d)
		if err != nil {
			return err
		}
		d.instrs = append(d.instrs, ir.NewCond(op, l, r))
		return nil
	})
}

func (p *langParser) parseIf(cur string) (string, error) {
	p.advance() // if
	if err := p.parseCond(cur); err != nil {
		return "", err
	}
	thenB := p.newBlock()
	join := p.newBlock()
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return "", err
	}
	thenEnd, thenTerm, err := p.stmtList(thenB)
	if err != nil {
		return "", err
	}
	if _, err := p.expect(tokRBrace, "}"); err != nil {
		return "", err
	}

	elseTarget := join
	if t := p.cur(); t.kind == tokIdent && t.text == "else" {
		p.advance()
		elseB := p.newBlock()
		elseTarget = elseB
		if _, err := p.expect(tokLBrace, "{"); err != nil {
			return "", err
		}
		elseEnd, elseTerm, err := p.stmtList(elseB)
		if err != nil {
			return "", err
		}
		if _, err := p.expect(tokRBrace, "}"); err != nil {
			return "", err
		}
		if !elseTerm {
			p.b.Edge(elseEnd, join)
		}
	}
	p.b.Edge(cur, thenB)
	p.b.Edge(cur, elseTarget)
	if !thenTerm {
		p.b.Edge(thenEnd, join)
	}
	return join, nil
}

func (p *langParser) parseWhile(cur string) (string, error) {
	p.advance() // while
	hdr := p.newBlock()
	p.b.Edge(cur, hdr)
	if err := p.parseCond(hdr); err != nil {
		return "", err
	}
	body := p.newBlock()
	after := p.newBlock()
	p.b.Edge(hdr, body)
	p.b.Edge(hdr, after)

	p.loops = append(p.loops, loopCtx{continueTo: hdr, breakTo: after})
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return "", err
	}
	bodyEnd, bodyTerm, err := p.stmtList(body)
	if err != nil {
		return "", err
	}
	if _, err := p.expect(tokRBrace, "}"); err != nil {
		return "", err
	}
	p.loops = p.loops[:len(p.loops)-1]
	if !bodyTerm {
		p.b.Edge(bodyEnd, hdr)
	}
	return after, nil
}

func (p *langParser) parseDoWhile(cur string) (string, error) {
	p.advance() // do
	body := p.newBlock()
	cond := p.newBlock()
	after := p.newBlock()
	p.b.Edge(cur, body)

	p.loops = append(p.loops, loopCtx{continueTo: cond, breakTo: after})
	if _, err := p.expect(tokLBrace, "{"); err != nil {
		return "", err
	}
	bodyEnd, bodyTerm, err := p.stmtList(body)
	if err != nil {
		return "", err
	}
	if _, err := p.expect(tokRBrace, "}"); err != nil {
		return "", err
	}
	p.loops = p.loops[:len(p.loops)-1]
	if err := p.expectKeyword("while"); err != nil {
		return "", err
	}
	if !bodyTerm {
		p.b.Edge(bodyEnd, cond)
	}
	if err := p.parseCond(cond); err != nil {
		return "", err
	}
	p.b.Edge(cond, body)
	p.b.Edge(cond, after)
	return after, nil
}
