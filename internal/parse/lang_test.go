package parse

import (
	"reflect"
	"strings"
	"testing"

	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
)

func runProg(t *testing.T, src string, env map[ir.Var]int64) interp.Result {
	t.Helper()
	g, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if verr := g.Validate(); verr != nil {
		t.Fatal(verr)
	}
	return interp.Run(g, env, 0)
}

func TestProgStraightLine(t *testing.T) {
	r := runProg(t, `
prog p {
  x := a + b * 2
  y := x - 1
  out(x, y)
}
`, map[ir.Var]int64{"a": 1, "b": 3})
	if !reflect.DeepEqual(r.Trace, []int64{7, 6}) {
		t.Errorf("trace = %v", r.Trace)
	}
}

func TestProgIfElse(t *testing.T) {
	src := `
prog p {
  if x > 0 {
    y := 1
  } else {
    y := 2
  }
  out(y)
}
`
	if r := runProg(t, src, map[ir.Var]int64{"x": 5}); r.Trace[0] != 1 {
		t.Errorf("then: %v", r.Trace)
	}
	if r := runProg(t, src, map[ir.Var]int64{"x": -5}); r.Trace[0] != 2 {
		t.Errorf("else: %v", r.Trace)
	}
}

func TestProgIfWithoutElse(t *testing.T) {
	src := `
prog p {
  y := 9
  if x > 0 {
    y := 1
  }
  out(y)
}
`
	if r := runProg(t, src, map[ir.Var]int64{"x": 5}); r.Trace[0] != 1 {
		t.Errorf("then: %v", r.Trace)
	}
	if r := runProg(t, src, map[ir.Var]int64{"x": -5}); r.Trace[0] != 9 {
		t.Errorf("skip: %v", r.Trace)
	}
}

func TestProgWhile(t *testing.T) {
	r := runProg(t, `
prog p {
  s := 0
  i := 0
  while i < 5 {
    s := s + i
    i := i + 1
  }
  out(s, i)
}
`, nil)
	if !reflect.DeepEqual(r.Trace, []int64{10, 5}) {
		t.Errorf("trace = %v", r.Trace)
	}
}

func TestProgDoWhile(t *testing.T) {
	// The body runs at least once even when the condition is false.
	r := runProg(t, `
prog p {
  n := 0
  do {
    n := n + 1
  } while n < 0
  out(n)
}
`, nil)
	if !reflect.DeepEqual(r.Trace, []int64{1}) {
		t.Errorf("trace = %v", r.Trace)
	}
}

func TestProgNestedLoopsBreakContinue(t *testing.T) {
	r := runProg(t, `
prog p {
  total := 0
  i := 0
  while i < 4 {
    i := i + 1
    if i == 2 {
      continue
    }
    j := 0
    while j < 10 {
      j := j + 1
      if j == 3 {
        break
      }
      total := total + 1
    }
  }
  out(total, i)
}
`, nil)
	// i = 1,3,4 contribute 2 inner iterations each (j=1,2); i=2 skipped.
	if !reflect.DeepEqual(r.Trace, []int64{6, 4}) {
		t.Errorf("trace = %v", r.Trace)
	}
}

func TestProgNestedConditionExpr(t *testing.T) {
	r := runProg(t, `
prog p {
  if a * 2 + 1 > b - 3 {
    x := 1
  } else {
    x := 0
  }
  out(x)
}
`, map[ir.Var]int64{"a": 1, "b": 2})
	if r.Trace[0] != 1 { // 3 > -1
		t.Errorf("trace = %v", r.Trace)
	}
}

func TestProgOutWithExpressions(t *testing.T) {
	r := runProg(t, `
prog p {
  out(a + b, a * b, 7)
}
`, map[ir.Var]int64{"a": 2, "b": 5})
	if !reflect.DeepEqual(r.Trace, []int64{7, 10, 7}) {
		t.Errorf("trace = %v", r.Trace)
	}
}

func TestProgErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"break outside loop", `prog p { break }`, "outside a loop"},
		{"unreachable after break", `prog p { while x < 1 { break x := 1 } }`, "unreachable"},
		{"bad cond", `prog p { if x { y := 1 } }`, "relational"},
		{"missing brace", `prog p { if x > 0 { y := 1 }`, ""},
		{"keyword var", `prog p { while := 3 }`, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseProgram(c.src)
			if err == nil {
				t.Fatalf("accepted %q", c.src)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want %q", err, c.want)
			}
		})
	}
}

func TestProgProducesOptimizableGraphs(t *testing.T) {
	// The desugared graph feeds straight into the optimizer; the
	// loop-invariant division must leave the do-while loop.
	g := MustParseProgram(`
prog quantish {
  k := 0
  do {
    scale := num / den
    v := v * scale
    k := k + 1
  } while k < 6
  out(v, k)
}
`)
	g.MustValidate()
	if len(g.Blocks) < 4 {
		t.Errorf("suspiciously few blocks: %d", len(g.Blocks))
	}
}
