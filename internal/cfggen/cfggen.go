// Package cfggen generates seeded random flow-graph programs for property
// tests and for the complexity/optimality experiments. The paper reports
// "promising experience with our implementation" on unpublished programs;
// this generator is the reproduction's workload substitute (see DESIGN.md,
// "Substitutions").
//
// Two families are provided:
//
//   - Structured: built recursively from sequences, diamonds, while- and
//     do-while-loops — the class for which §4.5 predicts near-quadratic
//     overall behaviour and for which loops are counter-guarded so that
//     interpreted executions terminate.
//   - Unstructured: a "block soup" with forward branches and guarded back
//     edges, which freely produces irreducible loops — the class stressing
//     the unrestricted worst case.
//
// Generation is deterministic in the seed.
package cfggen

import (
	"fmt"
	"math/rand"

	"assignmentmotion/internal/ir"
)

// Config tunes generation.
type Config struct {
	// Size is the approximate number of statement blocks.
	Size int
	// Vars is the size of the source-variable pool (minimum 3).
	Vars int
	// OutProb is the probability of emitting an out(v) after a block's
	// assignments, making intermediate state observable to the
	// equivalence oracle. Default 0.25.
	OutProb float64
	// MaxLoopTrips bounds each loop's trip count (default 4).
	MaxLoopTrips int
	// NoLoops restricts Structured to sequences and diamonds only,
	// producing acyclic programs (used by the exhaustive all-paths
	// experiments, internal/paths).
	NoLoops bool
}

func (c Config) withDefaults() Config {
	if c.Size <= 0 {
		c.Size = 10
	}
	if c.Vars < 3 {
		c.Vars = 6
	}
	if c.OutProb == 0 {
		c.OutProb = 0.25
	}
	if c.MaxLoopTrips <= 0 {
		c.MaxLoopTrips = 4
	}
	return c
}

type gen struct {
	rng     *rand.Rand
	cfg     Config
	b       *ir.Builder
	nblocks int
	nloops  int
	budget  int
	vars    []ir.Var
}

// Structured generates a random structured program.
func Structured(seed int64, cfg Config) *ir.Graph {
	cfg = cfg.withDefaults()
	g := &gen{
		rng:    rand.New(rand.NewSource(seed)),
		cfg:    cfg,
		b:      ir.NewBuilder(fmt.Sprintf("structured_%d", seed)),
		budget: cfg.Size,
	}
	for i := 0; i < cfg.Vars; i++ {
		g.vars = append(g.vars, ir.Var(fmt.Sprintf("v%d", i)))
	}
	entry := g.newBlock()
	g.fillStmts(entry)
	exitName := g.region(entry)
	exit := g.newBlock()
	g.b.Edge(exitName, exit)
	bb := g.b.Block(exit)
	bb.OutVars(g.vars...)
	graph, err := g.b.Finish(entry, exit)
	if err != nil {
		panic("cfggen: generated invalid graph: " + err.Error())
	}
	return graph
}

func (g *gen) newBlock() string {
	g.nblocks++
	return fmt.Sprintf("b%d", g.nblocks)
}

// region emits a structured region whose control enters at the exit edge
// of block `from` and returns the name of the region's last block.
func (g *gen) region(from string) string {
	cur := from
	for g.budget > 0 {
		g.budget--
		choice := g.rng.Intn(10)
		if g.cfg.NoLoops && choice > 6 {
			choice = g.rng.Intn(7)
		}
		switch choice {
		case 0, 1, 2, 3: // plain statement block
			next := g.newBlock()
			g.fillStmts(next)
			g.b.Edge(cur, next)
			cur = next
		case 4, 5, 6: // diamond
			cur = g.diamond(cur)
		case 7, 8: // while loop
			cur = g.whileLoop(cur)
		default: // do-while loop
			cur = g.doWhile(cur)
		}
	}
	return cur
}

func (g *gen) diamond(from string) string {
	condBlk := g.newBlock()
	g.b.Edge(from, condBlk)
	g.b.Block(condBlk).Cond(g.relOp(), g.term(), g.term())
	left, right, join := g.newBlock(), g.newBlock(), g.newBlock()
	g.b.Edge(condBlk, left)
	g.b.Edge(condBlk, right)
	g.fillStmts(left)
	g.fillStmts(right)
	lEnd, rEnd := left, right
	if g.budget > 0 && g.rng.Intn(2) == 0 {
		lEnd = g.region(left)
	}
	if g.budget > 0 && g.rng.Intn(3) == 0 {
		rEnd = g.region(right)
	}
	g.b.Edge(lEnd, join)
	g.b.Edge(rEnd, join)
	g.fillStmts(join)
	return join
}

// whileLoop builds: from → hdr; hdr: if k < n then body else exitBlk;
// body → hdr (with k := k+1). The counter guarantees termination.
func (g *gen) whileLoop(from string) string {
	g.nloops++
	k := ir.Var(fmt.Sprintf("k%d", g.nloops))
	trips := int64(1 + g.rng.Intn(g.cfg.MaxLoopTrips))

	pre := g.newBlock()
	g.b.Edge(from, pre)
	g.b.Block(pre).Assign(k, ir.ConstTerm(0))

	hdr := g.newBlock()
	g.b.Edge(pre, hdr)
	g.b.Block(hdr).Cond(ir.OpLT, ir.VarTerm(k), ir.ConstTerm(trips))

	body := g.newBlock()
	g.fillStmts(body)
	g.b.Block(body).Assign(k, ir.BinTerm(ir.OpAdd, ir.VarOp(k), ir.ConstOp(1)))
	bodyEnd := body
	if g.budget > 0 && g.rng.Intn(2) == 0 {
		bodyEnd = g.region(body)
	}

	after := g.newBlock()
	g.fillStmts(after)
	g.b.Edge(hdr, body)
	g.b.Edge(hdr, after)
	g.b.Edge(bodyEnd, hdr)
	return after
}

// doWhile builds: from → body; body ends with if k < n then body' else after.
func (g *gen) doWhile(from string) string {
	g.nloops++
	k := ir.Var(fmt.Sprintf("k%d", g.nloops))
	trips := int64(1 + g.rng.Intn(g.cfg.MaxLoopTrips))

	pre := g.newBlock()
	g.b.Edge(from, pre)
	g.b.Block(pre).Assign(k, ir.ConstTerm(0))

	body := g.newBlock()
	g.fillStmts(body)
	bb := g.b.Block(body)
	bb.Assign(k, ir.BinTerm(ir.OpAdd, ir.VarOp(k), ir.ConstOp(1)))
	bb.Cond(ir.OpLT, ir.VarTerm(k), ir.ConstTerm(trips))

	after := g.newBlock()
	g.fillStmts(after)
	g.b.Edge(pre, body)
	g.b.Edge(body, body)
	g.b.Edge(body, after)
	return after
}

// fillStmts populates a block with 1-4 random assignments and possibly an
// out statement.
func (g *gen) fillStmts(name string) {
	bb := g.b.Block(name)
	n := 1 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		bb.Assign(g.variable(), g.term())
	}
	if g.rng.Float64() < g.cfg.OutProb {
		bb.Out(ir.VarOp(g.variable()))
	}
}

func (g *gen) variable() ir.Var {
	return g.vars[g.rng.Intn(len(g.vars))]
}

func (g *gen) operand() ir.Operand {
	if g.rng.Intn(4) == 0 {
		return ir.ConstOp(int64(g.rng.Intn(9) - 4))
	}
	return ir.VarOp(g.variable())
}

var arithOps = []ir.Op{ir.OpAdd, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem}
var relOps = []ir.Op{ir.OpLT, ir.OpLE, ir.OpGT, ir.OpGE, ir.OpEQ, ir.OpNE}

func (g *gen) term() ir.Term {
	switch g.rng.Intn(5) {
	case 0:
		return ir.OperandTerm(g.operand()) // trivial (copy/const)
	default:
		return ir.BinTerm(arithOps[g.rng.Intn(len(arithOps))], g.operand(), g.operand())
	}
}

func (g *gen) relOp() ir.Op { return relOps[g.rng.Intn(len(relOps))] }
