package cfggen

import (
	"fmt"

	"assignmentmotion/internal/ir"
)

// RedundantChain builds the adversarial workload for the §4.5 worst-case
// complexity experiment: a dependency chain v1 := v0+1; v2 := v1+1; …; vk
// followed by a literal duplicate of the whole chain.
//
// The duplicate is fully redundant, but redundant assignment elimination
// can only peel it one link per aht/rae round: the duplicated v_i := …
// occurrence is not redundant while the duplicated v_{i-1} := … still
// sits in front of it (it modifies v_{i-1}, an operand). The AM phase
// therefore needs Θ(k) iterations — the linear-iteration behaviour that
// makes the global algorithm's unrestricted worst case quadratic in the
// number of rounds times the per-round analysis cost.
//
// Each chain link lives in its own block so that block counts scale with
// k as well.
func RedundantChain(k int) *ir.Graph {
	if k < 1 {
		k = 1
	}
	b := ir.NewBuilder(fmt.Sprintf("chain_%d", k))
	prev := "entry"
	b.Block(prev).Assign("v0", ir.ConstTerm(1))
	blockNo := 0
	emit := func(i int) {
		blockNo++
		name := fmt.Sprintf("c%d", blockNo)
		b.Block(name).Assign(
			ir.Var(fmt.Sprintf("v%d", i)),
			ir.BinTerm(ir.OpAdd, ir.VarOp(ir.Var(fmt.Sprintf("v%d", i-1))), ir.ConstOp(1)),
		)
		b.Edge(prev, name)
		prev = name
	}
	for i := 1; i <= k; i++ {
		emit(i)
	}
	for i := 1; i <= k; i++ { // the redundant duplicate
		emit(i)
	}
	exit := "exit"
	eb := b.Block(exit)
	vars := make([]ir.Var, 0, k+1)
	for i := 0; i <= k; i++ {
		vars = append(vars, ir.Var(fmt.Sprintf("v%d", i)))
	}
	eb.OutVars(vars...)
	b.Edge(prev, exit)
	return b.MustFinish("entry", exit)
}
