package cfggen

import (
	"fmt"
	"math/rand"

	"assignmentmotion/internal/ir"
)

// Unstructured generates a random unstructured program: a chain of blocks
// with forward skip-branches and fuel-guarded back edges. Back edges may
// land in the middle of other cycles, producing irreducible loops. A
// global fuel counter decremented at every backward jump bounds execution,
// so interpreted runs always terminate.
func Unstructured(seed int64, cfg Config) *ir.Graph {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	g := &gen{
		rng:    rng,
		cfg:    cfg,
		b:      ir.NewBuilder(fmt.Sprintf("unstructured_%d", seed)),
		budget: cfg.Size,
	}
	for i := 0; i < cfg.Vars; i++ {
		g.vars = append(g.vars, ir.Var(fmt.Sprintf("v%d", i)))
	}

	n := cfg.Size
	if n < 3 {
		n = 3
	}
	names := make([]string, n+2)
	names[0] = "entry"
	for i := 1; i <= n; i++ {
		names[i] = fmt.Sprintf("u%d", i)
	}
	names[n+1] = "exit"

	// Entry: initialize fuel and fall into the chain.
	fuel := ir.Var("fuel")
	eb := g.b.Block(names[0])
	eb.Assign(fuel, ir.ConstTerm(int64(8+rng.Intn(8))))
	g.b.Edge(names[0], names[1])

	for i := 1; i <= n; i++ {
		g.fillStmts(names[i])
		bb := g.b.Block(names[i])
		next := names[i+1]
		switch {
		case i > 1 && rng.Float64() < 0.35:
			// Fuel-guarded back edge: then-target jumps backward, the
			// else-target continues the chain.
			back := names[1+rng.Intn(i-1)]
			bb.Assign(fuel, ir.BinTerm(ir.OpSub, ir.VarOp(fuel), ir.ConstOp(1)))
			bb.Cond(ir.OpGT, ir.VarTerm(fuel), ir.ConstTerm(0))
			g.b.Edge(names[i], back)
			g.b.Edge(names[i], next)
		case i+2 <= n+1 && rng.Float64() < 0.4:
			// Forward skip-branch over the next block.
			bb.Cond(g.relOp(), g.term(), g.term())
			g.b.Edge(names[i], names[i+2])
			g.b.Edge(names[i], next)
		default:
			g.b.Edge(names[i], next)
		}
	}

	xb := g.b.Block(names[n+1])
	xb.OutVars(g.vars...)
	graph, err := g.b.Finish(names[0], names[n+1])
	if err != nil {
		panic("cfggen: generated invalid unstructured graph: " + err.Error())
	}
	return graph
}
