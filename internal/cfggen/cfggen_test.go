package cfggen

import (
	"testing"

	"assignmentmotion/internal/interp"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/metrics"
)

func TestStructuredValidAndDeterministic(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		g1 := Structured(seed, Config{Size: 12})
		g2 := Structured(seed, Config{Size: 12})
		if g1.Encode() != g2.Encode() {
			t.Fatalf("seed %d: generation not deterministic", seed)
		}
		if err := g1.Validate(); err != nil {
			t.Fatalf("seed %d: invalid graph: %v", seed, err)
		}
	}
}

func TestStructuredTerminates(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		g := Structured(seed, Config{Size: 15})
		envs := metrics.RandomEnvs(g.SourceVars(), 5, seed)
		for _, env := range envs {
			r := interp.Run(g, env, 0)
			if r.Truncated {
				t.Errorf("seed %d: structured program did not terminate", seed)
			}
			if len(r.Trace) == 0 {
				t.Errorf("seed %d: no observable output", seed)
			}
		}
	}
}

func TestUnstructuredValidAndTerminates(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		g := Unstructured(seed, Config{Size: 15})
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: invalid graph: %v", seed, err)
		}
		envs := metrics.RandomEnvs(g.SourceVars(), 5, seed)
		for _, env := range envs {
			r := interp.Run(g, env, 0)
			if r.Truncated {
				t.Errorf("seed %d: unstructured program did not terminate (fuel guard broken)", seed)
			}
		}
	}
}

func TestUnstructuredHasInterestingShape(t *testing.T) {
	branches, backEdges, criticals := 0, 0, 0
	for seed := int64(0); seed < 20; seed++ {
		g := Unstructured(seed, Config{Size: 15})
		order := map[ir.NodeID]int{}
		for i, b := range g.Blocks {
			order[b.ID] = i
		}
		for _, b := range g.Blocks {
			if len(b.Succs) == 2 {
				branches++
			}
			for _, s := range b.Succs {
				if order[s] < order[b.ID] {
					backEdges++
				}
				if g.IsCriticalEdge(b.ID, s) {
					criticals++
				}
			}
		}
	}
	if branches == 0 || backEdges == 0 || criticals == 0 {
		t.Errorf("shape too boring: branches=%d backEdges=%d criticals=%d", branches, backEdges, criticals)
	}
}

func TestSizeScales(t *testing.T) {
	small := Structured(1, Config{Size: 5})
	large := Structured(1, Config{Size: 60})
	if large.InstrCount() <= small.InstrCount() {
		t.Errorf("size knob broken: %d vs %d instrs", small.InstrCount(), large.InstrCount())
	}
}
