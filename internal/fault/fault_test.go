package fault

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestFaultSentinelMatching: every concrete error matches its own sentinel
// and no other, both bare and through a PassError wrapper.
func TestFaultSentinelMatching(t *testing.T) {
	sentinels := []error{ErrNoFixpoint, ErrInvalidGraph, ErrPassPanic, ErrBudgetExceeded, ErrCanceled}
	cases := []struct {
		err  error
		want error
	}{
		{&NoFixpointError{Proc: "am", Iterations: 500, Limit: 464}, ErrNoFixpoint},
		{&PanicError{Value: "boom"}, ErrPassPanic},
		{&InvalidGraphError{Err: errors.New("entry has predecessors")}, ErrInvalidGraph},
		{&BudgetError{Resource: "am iterations", Used: 9, Limit: 4}, ErrBudgetExceeded},
		{&CanceledError{Err: context.Canceled}, ErrCanceled},
	}
	for _, c := range cases {
		for _, s := range sentinels {
			got := errors.Is(c.err, s)
			if got != (s == c.want) {
				t.Errorf("errors.Is(%v, %v) = %v, want %v", c.err, s, got, s == c.want)
			}
			wrapped := In("am", 1, c.err)
			if got := errors.Is(wrapped, s); got != (s == c.want) {
				t.Errorf("wrapped errors.Is(%v, %v) = %v, want %v", wrapped, s, got, s == c.want)
			}
		}
	}
}

// TestPassErrorPosition: In decorates once and PassOf reads it back;
// re-wrapping keeps the innermost position.
func TestPassErrorPosition(t *testing.T) {
	err := In("am", 2, &NoFixpointError{Proc: "am", Iterations: 10, Limit: 5})
	name, idx, ok := PassOf(err)
	if !ok || name != "am" || idx != 2 {
		t.Fatalf("PassOf = %q,%d,%v; want am,2,true", name, idx, ok)
	}
	outer := In("globalg", 0, err)
	if outer != err {
		t.Fatalf("In re-wrapped an already positioned error: %v", outer)
	}
	if _, _, ok := PassOf(errors.New("plain")); ok {
		t.Fatal("PassOf matched a plain error")
	}
}

// TestCanceledUnwrapsContext: the context sentinels stay matchable so
// existing callers that check context.Canceled keep working.
func TestCanceledUnwrapsContext(t *testing.T) {
	err := In("flush", 2, &CanceledError{Err: context.DeadlineExceeded})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("CanceledError lost context.DeadlineExceeded")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatal("CanceledError does not match ErrCanceled")
	}
}

func TestBudgetZero(t *testing.T) {
	if !(Budget{}).Zero() {
		t.Fatal("zero Budget not Zero()")
	}
	if (Budget{MaxPassWall: time.Second}).Zero() ||
		(Budget{MaxSolverVisits: 1}).Zero() ||
		(Budget{MaxAMIterations: 1}).Zero() {
		t.Fatal("non-zero Budget reported Zero()")
	}
}

// TestErrorStrings: messages carry the actionable numbers.
func TestErrorStrings(t *testing.T) {
	e := &BudgetError{Resource: "pass wall time", Used: int64(2 * time.Second), Limit: int64(time.Second)}
	if want := "budget exceeded: pass wall time 2s > 1s"; e.Error() != want {
		t.Errorf("BudgetError = %q, want %q", e.Error(), want)
	}
	n := &NoFixpointError{Proc: "am", Iterations: 65, Limit: 64}
	if got := n.Error(); got != "am: no fixpoint after 65 iterations (limit 64; termination bug)" {
		t.Errorf("NoFixpointError = %q", got)
	}
	p := In("am", 1, &PanicError{Value: fmt.Errorf("oops")})
	if want := `pass "am" (pipeline step 1): optimization panicked: oops`; p.Error() != want {
		t.Errorf("PassError = %q, want %q", p.Error(), want)
	}
}
