// Package inject is a deterministic, seedable fault-injection harness
// for the pass pipeline. It exists to TEST the fault-tolerance layer —
// the chaos tests drive the real pipeline and the real batch engine with
// injected pass panics, graph corruption, forced budget exhaustion, and
// forced fixpoint overruns, and assert the recovery contracts: a
// poisoned pass never corrupts the returned graph (rollback restores a
// byte-identical checkpoint), the engine cache never stores a degraded
// result under the clean content key, and batch throughput degrades
// gracefully.
//
// An Injector plugs into the test-only Pipeline.Wrap seam (or
// engine.Options.Inject): it intercepts each pass just before execution
// and, at deterministically seed-selected (graph, step) positions,
// substitutes a faulting body. Decisions are a pure hash of
// (seed, graph name, pipeline index, pass name) — independent of
// scheduling, so a concurrent batch run injects the same faults as a
// serial one and a re-run with the same seed reproduces them exactly.
package inject

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/fault"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// Panic replaces the pass body with one that panics, exercising the
	// pipeline's per-pass recover.
	Panic Kind = iota
	// Corrupt runs the real pass, then mutates the graph into a
	// Validate-breaking state (an emptied block), exercising post-pass
	// validation and rollback.
	Corrupt
	// Budget makes the pass report fault.ErrBudgetExceeded without
	// touching the graph.
	Budget
	// NoFixpoint makes the pass report fault.ErrNoFixpoint without
	// touching the graph, simulating an iteration-limit overrun.
	NoFixpoint

	numKinds
)

func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Corrupt:
		return "corrupt"
	case Budget:
		return "budget"
	case NoFixpoint:
		return "no-fixpoint"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Config tunes an Injector.
type Config struct {
	// Seed selects the fault sites; the same seed reproduces the same
	// faults.
	Seed int64
	// Rate is the probability in [0, 1] that any given (graph, step)
	// execution faults. 0 never fires; 1 always fires.
	Rate float64
	// Kinds restricts the injected fault classes; empty means all.
	Kinds []Kind
}

// Injection records one fired fault.
type Injection struct {
	Graph string
	Pass  string
	Index int
	Kind  Kind
}

// Injector deterministically injects faults at pass boundaries. Safe for
// concurrent use by many pipeline workers.
type Injector struct {
	cfg   Config
	kinds []Kind

	mu    sync.Mutex
	fired []Injection
}

// New returns an injector for cfg.
func New(cfg Config) *Injector {
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{Panic, Corrupt, Budget, NoFixpoint}
	}
	return &Injector{cfg: cfg, kinds: kinds}
}

// Wrap is the Pipeline.Wrap / engine.Options.Inject seam: it returns p
// with a body that consults the injector on every execution and, when the
// (seed, graph, index, pass) hash selects a fault, raises it.
func (in *Injector) Wrap(index int, p pass.Pass) pass.Pass {
	orig := p.RunWith
	name := p.Name
	p.RunWith = func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
		kind, fire := in.decide(g.Name, index, name)
		if !fire {
			return orig(g, s)
		}
		in.record(Injection{Graph: g.Name, Pass: name, Index: index, Kind: kind})
		switch kind {
		case Panic:
			panic(fmt.Sprintf("inject: seeded panic at pass %q (step %d) of %q", name, index, g.Name))
		case Corrupt:
			st, err := orig(g, s)
			if err != nil {
				return st, err
			}
			corrupt(g)
			return st, nil
		case Budget:
			return pass.Stats{}, &fault.BudgetError{Resource: "injected", Used: 1, Limit: 0}
		default: // NoFixpoint
			return pass.Stats{}, &fault.NoFixpointError{Proc: name, Iterations: 1 << 20, Limit: 1 << 20}
		}
	}
	return p
}

// Fired returns the faults fired so far, ordered by (graph, index) for
// stable assertions.
func (in *Injector) Fired() []Injection {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := append([]Injection(nil), in.fired...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Graph != out[j].Graph {
			return out[i].Graph < out[j].Graph
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// Reset clears the fired record (the decision function is stateless, so
// resetting does not change what fires).
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.fired = nil
}

// WillFault reports what the injector would do at the given site —
// chaos tests use it to predict which graphs of a batch degrade.
func (in *Injector) WillFault(graph string, index int, passName string) (Kind, bool) {
	return in.decide(graph, index, passName)
}

func (in *Injector) record(i Injection) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.fired = append(in.fired, i)
}

// decide hashes the site identity into a fire/no-fire decision and a
// kind. Pure function of the injector's seed and the site.
func (in *Injector) decide(graph string, index int, passName string) (Kind, bool) {
	if in.cfg.Rate <= 0 {
		return 0, false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%s", in.cfg.Seed, graph, index, passName)
	v := h.Sum64()
	// Low bits pick the fire decision, high bits the kind, so the two are
	// independent.
	const den = 1 << 20
	threshold := uint64(in.cfg.Rate * den)
	if threshold > den {
		threshold = den
	}
	if v%den >= threshold {
		return 0, false
	}
	return in.kinds[(v>>40)%uint64(len(in.kinds))], true
}

// corrupt mutates g into a state ir.Graph.Validate rejects — it empties
// the entry block's instruction list, violating the no-empty-blocks
// invariant — without risking a panic of its own.
func corrupt(g *ir.Graph) {
	g.EntryBlock().Instrs = nil
	g.MarkModified()
}
