package fault

import (
	"context"
	"errors"
	"net/http"
	"testing"
)

func TestHTTPStatusMapping(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		status int
		kind   string
	}{
		{"nil", nil, http.StatusOK, ""},
		{"no-fixpoint", &NoFixpointError{Proc: "am", Iterations: 9, Limit: 9},
			http.StatusInternalServerError, "no-fixpoint"},
		{"invalid-graph", &InvalidGraphError{Err: errors.New("empty block")},
			http.StatusInternalServerError, "invalid-graph"},
		{"pass-panic", &PanicError{Value: "boom"},
			http.StatusInternalServerError, "pass-panic"},
		{"budget", &BudgetError{Resource: "am iterations", Used: 10, Limit: 1},
			http.StatusUnprocessableEntity, "budget-exceeded"},
		{"canceled", &CanceledError{Err: context.Canceled},
			http.StatusGatewayTimeout, "canceled"},
		{"raw-deadline", context.DeadlineExceeded,
			http.StatusGatewayTimeout, "canceled"},
		{"raw-cancel", context.Canceled,
			http.StatusGatewayTimeout, "canceled"},
		{"unknown", errors.New("mystery"),
			http.StatusInternalServerError, "internal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := HTTPStatus(tc.err); got != tc.status {
				t.Errorf("HTTPStatus(%v) = %d; want %d", tc.err, got, tc.status)
			}
			if got := Name(tc.err); got != tc.kind {
				t.Errorf("Name(%v) = %q; want %q", tc.err, got, tc.kind)
			}
		})
	}
}

// TestHTTPStatusThroughPassError: the mapping must see through the
// pipeline's positional wrapper, exactly like errors.Is does.
func TestHTTPStatusThroughPassError(t *testing.T) {
	err := In("am", 1, &PanicError{Value: "boom"})
	if got := HTTPStatus(err); got != http.StatusInternalServerError {
		t.Errorf("HTTPStatus(wrapped panic) = %d; want 500", got)
	}
	if got := Name(err); got != "pass-panic" {
		t.Errorf("Name(wrapped panic) = %q; want pass-panic", got)
	}
	berr := In("am", 1, &BudgetError{Resource: "solver visits", Used: 2, Limit: 1})
	if got := HTTPStatus(berr); got != http.StatusUnprocessableEntity {
		t.Errorf("HTTPStatus(wrapped budget) = %d; want 422", got)
	}
}
