// Package fault defines the typed failure taxonomy of the optimizer.
//
// The paper's algorithm is an exhaustive fixpoint (§4: rae/aht iterated
// until stabilization), and an implementation of it can fail in a small,
// enumerable set of ways: the fixpoint overruns its termination backstop,
// a pass panics, a pass produces a structurally invalid graph, a caller
// imposed resource budget is exhausted, or the caller cancels the run.
// Each of these is a distinct, matchable error here, so the pipeline, the
// batch engine, and the amopt command can react per kind — retry, roll
// back, skip, or map to an exit code — instead of collapsing everything
// into one recovered panic per graph.
//
// Matching is by errors.Is against the Err* sentinels (every concrete
// error type Is its sentinel) or by errors.As against the concrete types
// when the detail matters. Failures raised inside a pipeline are wrapped
// in a *PassError carrying the offending pass's registry name and
// pipeline index; Unwrap reaches the cause, so sentinel matching works
// through the wrapper.
package fault

import (
	"errors"
	"fmt"
	"time"
)

// The failure kinds, as errors.Is targets.
var (
	// ErrNoFixpoint: an exhaustive fixpoint overran its iteration-limit
	// backstop — a termination bug or a pathological input.
	ErrNoFixpoint = errors.New("no fixpoint within the iteration limit")
	// ErrInvalidGraph: a pass left the graph structurally invalid
	// (ir.Graph.Validate failed).
	ErrInvalidGraph = errors.New("pass produced an invalid graph")
	// ErrPassPanic: a pass panicked and the pipeline recovered it.
	ErrPassPanic = errors.New("pass panicked")
	// ErrBudgetExceeded: a caller-imposed resource budget (wall time,
	// solver visits, AM iterations) was exhausted.
	ErrBudgetExceeded = errors.New("optimization budget exceeded")
	// ErrCanceled: the caller's context was canceled or timed out
	// between or during passes.
	ErrCanceled = errors.New("optimization canceled")
	// ErrPeerUnavailable: a clustered daemon could not reach any replica
	// of the shard owning a forwarded request — every candidate peer was
	// down, shedding, or draining. Retrying later may succeed.
	ErrPeerUnavailable = errors.New("no cluster peer available")
	// ErrPeerFailure: a cluster peer answered a forwarded request with a
	// response the forwarder could not use (undecodable body, protocol
	// violation). The peer is up but misbehaving.
	ErrPeerFailure = errors.New("cluster peer returned an unusable response")
)

// PassError decorates a failure with the pipeline position that raised
// it: the pass's registry name and its index in the pass sequence.
// Unwrap exposes the cause, so errors.Is(err, fault.ErrNoFixpoint) and
// friends match through it.
type PassError struct {
	// Pass is the registry name of the offending pass.
	Pass string
	// Index is the pass's position in the pipeline.
	Index int
	// Err is the underlying failure (one of this package's typed errors).
	Err error
}

func (e *PassError) Error() string {
	return fmt.Sprintf("pass %q (pipeline step %d): %v", e.Pass, e.Index, e.Err)
}

func (e *PassError) Unwrap() error { return e.Err }

// In wraps err with the pass name and pipeline index that raised it. An
// err that already carries its position (a *PassError, e.g. from a nested
// pipeline) is returned unchanged — the innermost position is the
// actionable one. A nil err maps to nil.
func In(pass string, index int, err error) error {
	if err == nil {
		return nil
	}
	var pe *PassError
	if errors.As(err, &pe) {
		return err
	}
	return &PassError{Pass: pass, Index: index, Err: err}
}

// IsCancellation reports whether err is (or wraps) a cancellation — the
// one failure kind a recovery policy never absorbs, because it is the
// caller's own request to stop.
func IsCancellation(err error) bool { return errors.Is(err, ErrCanceled) }

// PassOf extracts the pass name and pipeline index from an error raised
// inside a pipeline. ok is false when err carries no position.
func PassOf(err error) (pass string, index int, ok bool) {
	var pe *PassError
	if errors.As(err, &pe) {
		return pe.Pass, pe.Index, true
	}
	return "", 0, false
}

// NoFixpointError reports that an exhaustive fixpoint procedure failed to
// stabilize within its iteration-limit backstop.
type NoFixpointError struct {
	// Proc names the fixpoint procedure ("am", "am-restricted", ...).
	Proc string
	// Iterations is the number of rounds executed; Limit the backstop it
	// overran. The limit is quadratic in program size (§4.5 bounds the
	// number of procedure applications), so hitting it means a
	// termination bug, not a slow input.
	Iterations int
	Limit      int
}

func (e *NoFixpointError) Error() string {
	return fmt.Sprintf("%s: no fixpoint after %d iterations (limit %d; termination bug)",
		e.Proc, e.Iterations, e.Limit)
}

func (e *NoFixpointError) Is(target error) bool { return target == ErrNoFixpoint }

// PanicError is a recovered pass panic, carrying the recovered value and
// the stack of the panicking goroutine.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("optimization panicked: %v", e.Value) }

func (e *PanicError) Is(target error) bool { return target == ErrPassPanic }

// InvalidGraphError reports that a pass left the graph structurally
// invalid, wrapping the ir.Graph.Validate detail.
type InvalidGraphError struct {
	Err error
}

func (e *InvalidGraphError) Error() string { return fmt.Sprintf("invalid graph: %v", e.Err) }

func (e *InvalidGraphError) Unwrap() error { return e.Err }

func (e *InvalidGraphError) Is(target error) bool { return target == ErrInvalidGraph }

// BudgetError reports an exhausted optimization budget.
type BudgetError struct {
	// Resource names the exhausted dimension: "pass wall time", "solver
	// visits", or "am iterations".
	Resource string
	// Used and Limit quantify the exhaustion in the resource's own unit
	// (nanoseconds for wall time).
	Used  int64
	Limit int64
}

func (e *BudgetError) Error() string {
	if e.Resource == "pass wall time" {
		return fmt.Sprintf("budget exceeded: %s %v > %v",
			e.Resource, time.Duration(e.Used), time.Duration(e.Limit))
	}
	return fmt.Sprintf("budget exceeded: %s %d > %d", e.Resource, e.Used, e.Limit)
}

func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// CanceledError reports that the run's context was canceled or its
// deadline expired. Unwrap exposes the context error, so
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) keep working alongside ErrCanceled.
type CanceledError struct {
	// Err is the context's error (context.Canceled or
	// context.DeadlineExceeded).
	Err error
}

func (e *CanceledError) Error() string { return fmt.Sprintf("optimization canceled: %v", e.Err) }

func (e *CanceledError) Unwrap() error { return e.Err }

func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

// PeerError reports that forwarding a request to the cluster peers
// responsible for its shard did not produce a usable response. It is
// raised by the forwarding layer (internal/cluster), never by a pass, so
// it carries no pipeline position.
type PeerError struct {
	// Peer is the last peer tried ("" when no peer was reachable at all).
	Peer string
	// Attempts counts the forward attempts made (including retries and
	// hedges) before giving up.
	Attempts int
	// Unreachable distinguishes the two failure modes: true means no
	// replica produced any response (down/shedding/draining — maps to
	// 503), false means a peer answered but the response was unusable
	// (maps to 502).
	Unreachable bool
	// Err is the underlying transport or decode failure, when one exists.
	Err error
}

func (e *PeerError) Error() string {
	kind := "unusable response from"
	if e.Unreachable {
		kind = "no usable response from"
	}
	msg := fmt.Sprintf("cluster: %s %d forward attempt(s)", kind, e.Attempts)
	if e.Peer != "" {
		msg += " (last peer " + e.Peer + ")"
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *PeerError) Unwrap() error { return e.Err }

func (e *PeerError) Is(target error) bool {
	if e.Unreachable {
		return target == ErrPeerUnavailable
	}
	return target == ErrPeerFailure
}

// Budget caps the resources one pipeline run may consume. The zero value
// imposes no caps. Budgets turn runaway work into typed ErrBudgetExceeded
// failures at the next pass boundary or fixpoint round instead of hangs:
// the AM fixpoint and the EM/CP interleaving check the budget once per
// round, and the pipeline checks it around every pass.
type Budget struct {
	// MaxPassWall caps the wall-clock time of a single pass. Fixpoint
	// passes check it between rounds; the pipeline additionally checks it
	// after every pass, so even a single-sweep pass that overruns is
	// reported (after the fact).
	MaxPassWall time.Duration
	// MaxSolverVisits caps the dataflow-solver node visits of a single
	// pass, measured through the session's SolveStats tally.
	MaxSolverVisits int
	// MaxAMIterations caps the rounds of one assignment-motion fixpoint —
	// the §7 mitigation for time-critical compilation, enforced as an
	// error rather than am.RunBounded's silent truncation.
	MaxAMIterations int
}

// Zero reports whether b imposes no caps.
func (b Budget) Zero() bool {
	return b.MaxPassWall == 0 && b.MaxSolverVisits == 0 && b.MaxAMIterations == 0
}
