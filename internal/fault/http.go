package fault

// HTTP projection of the failure taxonomy, used by the amoptd daemon:
// every sentinel maps to a status code and a stable machine-readable
// name, so clients can react per kind without parsing error prose.

import (
	"context"
	"errors"
	"net/http"
)

// HTTPStatus maps a typed optimization failure to the HTTP status the
// daemon answers with:
//
//   - nil                  → 200 OK
//   - ErrBudgetExceeded    → 422 Unprocessable Entity (the caller's own
//     budget rejected the computation; retrying unchanged cannot help)
//   - ErrCanceled (or a raw context error) → 504 Gateway Timeout (the
//     request deadline expired before the pipeline finished)
//   - ErrNoFixpoint, ErrInvalidGraph, ErrPassPanic → 500 Internal Server
//     Error (the optimizer itself misbehaved)
//   - ErrPeerUnavailable → 503 Service Unavailable (every replica of the
//     owning shard was down or shedding; retry later)
//   - ErrPeerFailure → 502 Bad Gateway (a peer answered a forwarded
//     request with an unusable response)
//
// Unknown errors conservatively map to 500. Overload (shed requests) is
// the server's own 429 and never reaches this mapping — it happens
// before any pipeline runs.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrBudgetExceeded):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrPeerUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrPeerFailure):
		return http.StatusBadGateway
	case errors.Is(err, ErrCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// Name returns the stable machine-readable name of a failure kind:
// "no-fixpoint", "invalid-graph", "pass-panic", "budget-exceeded",
// "peer-unavailable", "peer-failure", "canceled", or "internal" for
// errors outside the taxonomy ("" for nil).
// Daemon responses carry it in the JSON body alongside the prose.
func Name(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrNoFixpoint):
		return "no-fixpoint"
	case errors.Is(err, ErrInvalidGraph):
		return "invalid-graph"
	case errors.Is(err, ErrPassPanic):
		return "pass-panic"
	case errors.Is(err, ErrBudgetExceeded):
		return "budget-exceeded"
	case errors.Is(err, ErrPeerUnavailable):
		return "peer-unavailable"
	case errors.Is(err, ErrPeerFailure):
		return "peer-failure"
	case errors.Is(err, ErrCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "internal"
	}
}
