package dataflow

import (
	"sort"

	"assignmentmotion/internal/bitvec"
)

// This file implements the intra-graph parallel solve behind
// Problem.Workers. The flow graph is condensed into strongly connected
// components; the condensation is a DAG, so components form a weak
// topological order: inside a component chaotic iteration runs to a local
// fixpoint, and a component is only scheduled once every upstream
// component has finished. Components with no unfinished upstream are
// independent and solved concurrently on a bounded worker pool.
//
// Correctness relies on two facts. First, the transfer functions are
// monotone over a finite lattice and iteration starts from the lattice
// top (full vectors for All, empty for Any), so the fixpoint is unique
// under any fair schedule — the parallel solve computes bit-identical
// In/Out to the serial sweep. Second, a node's vectors are written only
// by the single worker solving its component, and cross-component reads
// (the meet over upstream facts) observe finished components through the
// scheduler's channel handoff, which establishes the happens-before edge
// — the solve is -race-clean without any locks on the vectors.
//
// The merge is deterministic: per-component visit counts depend only on
// the (unique) upstream fixpoint, so their sum is schedule-independent,
// and Sweeps reports the maximum local sweep count over all components —
// the depth of the most stubborn cycle, the parallel analogue of the
// serial sweep counter.

// Condense runs an iterative Tarjan SCC over the n-node graph spanned by
// next. It returns the component id of every node and the component
// member lists. Components are emitted in reverse topological order of
// the condensation (a component only after everything it reaches). The
// parallel solver schedules over it, and ir.Regionize reuses it as the
// backbone of the deterministic region decomposition.
func Condense(n int, next func(int) []int) (sccOf []int, comps [][]int) {
	return condense(n, next)
}

func condense(n int, next func(int) []int) (sccOf []int, comps [][]int) {
	sccOf = make([]int, n)
	index := make([]int, n) // 0 = unvisited, else discovery index + 1
	low := make([]int, n)
	onStack := make([]bool, n)
	stack := make([]int, 0, n)
	type frame struct {
		node int
		edge int
	}
	frames := make([]frame, 0, 16)
	idx := 1
	for r := 0; r < n; r++ {
		if index[r] != 0 {
			continue
		}
		index[r], low[r] = idx, idx
		idx++
		stack = append(stack, r)
		onStack[r] = true
		frames = append(frames, frame{node: r})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			ns := next(f.node)
			if f.edge < len(ns) {
				m := ns[f.edge]
				f.edge++
				if index[m] == 0 {
					index[m], low[m] = idx, idx
					idx++
					stack = append(stack, m)
					onStack[m] = true
					frames = append(frames, frame{node: m})
				} else if onStack[m] && index[m] < low[f.node] {
					low[f.node] = index[m]
				}
				continue
			}
			node := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if low[node] < low[parent] {
					low[parent] = low[node]
				}
			}
			if low[node] == index[node] {
				var comp []int
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					sccOf[m] = len(comps)
					comp = append(comp, m)
					if m == node {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return sccOf, comps
}

// compResult is one finished component's contribution to the merge.
type compResult struct {
	comp   int
	visits int
	sweeps int
}

// solveParallel is the Workers > 1 branch of Solve. in/out are already
// carved (serially) from the problem's arena and initialised to the
// lattice top; order is the flow-direction RPO permutation.
func solveParallel(p *Problem, in, out []bitvec.Vec, order []int, upstream, downstream func(int) []int) Result {
	sccOf, comps := condense(p.N, downstream)

	// Order each component's members by RPO position so the local sweeps
	// converge as fast as the serial solver's.
	pos := make([]int, p.N)
	for i, node := range order {
		pos[node] = i
	}
	for _, comp := range comps {
		sort.Slice(comp, func(a, b int) bool { return pos[comp[a]] < pos[comp[b]] })
	}

	// Condensation DAG: deduped downstream edges and indegrees.
	nc := len(comps)
	succs := make([][]int, nc)
	indeg := make([]int, nc)
	lastSeen := make([]int, nc)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	for c, comp := range comps {
		for _, node := range comp {
			for _, d := range downstream(node) {
				dc := sccOf[d]
				if dc == c || lastSeen[dc] == c {
					continue
				}
				lastSeen[dc] = c
				succs[c] = append(succs[c], dc)
				indeg[dc]++
			}
		}
	}

	workers := p.Workers
	if workers > nc {
		workers = nc
	}

	ready := make(chan int, nc)
	done := make(chan compResult, nc)
	// Seed the roots in topological order (Tarjan emits reverse-topo).
	for c := nc - 1; c >= 0; c-- {
		if indeg[c] == 0 {
			ready <- c
		}
	}

	needScratch := p.Gen == nil || p.Irregular.Len() != 0
	for w := 0; w < workers; w++ {
		go func() {
			// Worker-local scratch lives on the heap: the session arena is
			// not goroutine-safe, and in/out were carved before we started.
			var scratch bitvec.Vec
			if needScratch {
				scratch = bitvec.New(p.Bits)
			}
			dirty := make([]bool, p.N)
			for c := range ready {
				members := comps[c]
				for _, i := range members {
					dirty[i] = true
				}
				pending := len(members)
				visits, sweeps := 0, 0
				for pending > 0 {
					sweeps++
					for _, i := range members {
						if !dirty[i] {
							continue
						}
						dirty[i] = false
						pending--
						visits++
						if p.applyNode(i, in, out, upstream, scratch) {
							for _, d := range downstream(i) {
								if sccOf[d] == c && !dirty[d] {
									dirty[d] = true
									pending++
								}
							}
						}
					}
				}
				done <- compResult{comp: c, visits: visits, sweeps: sweeps}
			}
		}()
	}

	// Coordinate on the caller goroutine: collect finished components,
	// release their downstream components as indegrees drain.
	visits, maxSweeps := 0, 0
	for remaining := nc; remaining > 0; remaining-- {
		r := <-done
		visits += r.visits
		if r.sweeps > maxSweeps {
			maxSweeps = r.sweeps
		}
		for _, s := range succs[r.comp] {
			indeg[s]--
			if indeg[s] == 0 {
				ready <- s
			}
		}
	}
	close(ready)

	p.Stats.record(visits, maxSweeps)
	return Result{In: in, Out: out, Visits: visits, Sweeps: maxSweeps}
}
