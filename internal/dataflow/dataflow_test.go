package dataflow

import (
	"testing"

	"assignmentmotion/internal/bitvec"
)

// chainGraph builds a linear chain 0 -> 1 -> ... -> n-1.
func chainAdj(n int) (preds, succs func(int) []int) {
	preds = func(i int) []int {
		if i == 0 {
			return nil
		}
		return []int{i - 1}
	}
	succs = func(i int) []int {
		if i == n-1 {
			return nil
		}
		return []int{i + 1}
	}
	return
}

func TestForwardAnyReaching(t *testing.T) {
	// Gen bit i at node i; nothing kills: reaching facts accumulate.
	n := 5
	preds, succs := chainAdj(n)
	res := Solve(Problem{
		N: n, Bits: n, Dir: Forward, Meet: Any,
		Preds: preds, Succs: succs,
		Transfer: func(i int, in, out bitvec.Vec) {
			out.CopyFrom(in)
			out.Set(i)
		},
	})
	for i := 0; i < n; i++ {
		if got := res.Out[i].PopCount(); got != i+1 {
			t.Errorf("out[%d] has %d bits, want %d", i, got, i+1)
		}
	}
}

func TestForwardAllAvailabilityOnDiamond(t *testing.T) {
	// 0 -> {1,2} -> 3. Bit 0 generated in node 1 only, bit 1 in both 1
	// and 2. At node 3's entry only bit 1 is available (All-meet).
	preds := func(i int) []int {
		switch i {
		case 0:
			return nil
		case 1, 2:
			return []int{0}
		default:
			return []int{1, 2}
		}
	}
	succs := func(i int) []int {
		switch i {
		case 0:
			return []int{1, 2}
		case 1, 2:
			return []int{3}
		default:
			return nil
		}
	}
	res := Solve(Problem{
		N: 4, Bits: 2, Dir: Forward, Meet: All,
		Preds: preds, Succs: succs,
		Transfer: func(i int, in, out bitvec.Vec) {
			out.CopyFrom(in)
			switch i {
			case 1:
				out.Set(0)
				out.Set(1)
			case 2:
				out.Set(1)
			}
		},
		Boundary: func(i int, in bitvec.Vec) { in.ClearAll() },
	})
	if res.In[3].Get(0) {
		t.Error("bit 0 available at join despite missing on one path")
	}
	if !res.In[3].Get(1) {
		t.Error("bit 1 not available at join despite both paths generating it")
	}
}

func TestGreatestFixpointOnLoop(t *testing.T) {
	// 0 -> 1 -> 2 -> 1 (loop), 2 -> 3. Bit 0 generated at node 0, never
	// killed. With All-meet the loop must not destroy availability: entry
	// of node 1 meets out(0) and out(2), and the greatest fixpoint keeps
	// the bit around the cycle.
	preds := func(i int) []int {
		switch i {
		case 0:
			return nil
		case 1:
			return []int{0, 2}
		case 2:
			return []int{1}
		default:
			return []int{2}
		}
	}
	succs := func(i int) []int {
		switch i {
		case 0:
			return []int{1}
		case 1:
			return []int{2}
		case 2:
			return []int{1, 3}
		default:
			return nil
		}
	}
	res := Solve(Problem{
		N: 4, Bits: 1, Dir: Forward, Meet: All,
		Preds: preds, Succs: succs,
		Transfer: func(i int, in, out bitvec.Vec) {
			out.CopyFrom(in)
			if i == 0 {
				out.Set(0)
			}
		},
		Boundary: func(i int, in bitvec.Vec) { in.ClearAll() },
	})
	for i := 1; i <= 3; i++ {
		if !res.In[i].Get(0) {
			t.Errorf("bit lost at node %d entry (least fixpoint computed instead of greatest)", i)
		}
	}
}

func TestGreatestFixpointRejectsUnsupportedLoopFact(t *testing.T) {
	// Same loop, but nothing generates the bit and node 0 kills it; the
	// optimistic start must not leave a self-justifying bit in the cycle
	// because the path from the boundary carries false.
	preds := func(i int) []int {
		switch i {
		case 0:
			return nil
		case 1:
			return []int{0, 2}
		case 2:
			return []int{1}
		default:
			return []int{2}
		}
	}
	succs := func(i int) []int {
		switch i {
		case 0:
			return []int{1}
		case 1:
			return []int{2}
		case 2:
			return []int{1, 3}
		default:
			return nil
		}
	}
	res := Solve(Problem{
		N: 4, Bits: 1, Dir: Forward, Meet: All,
		Preds: preds, Succs: succs,
		Transfer: func(i int, in, out bitvec.Vec) {
			out.CopyFrom(in) // pure propagation, no gen
		},
		Boundary: func(i int, in bitvec.Vec) { in.ClearAll() },
	})
	if res.In[1].Get(0) {
		t.Error("unsupported fact survived in loop")
	}
}

func TestBackwardAllLiveness(t *testing.T) {
	// Chain 0 -> 1 -> 2; "needed on all paths" from the use at node 2.
	n := 3
	preds, succs := chainAdj(n)
	res := Solve(Problem{
		N: n, Bits: 1, Dir: Backward, Meet: All,
		Preds: preds, Succs: succs,
		Transfer: func(i int, in, out bitvec.Vec) {
			out.CopyFrom(in)
			if i == 2 {
				out.Set(0)
			}
			if i == 1 {
				out.Clear(0) // killed at node 1
			}
		},
		Boundary: func(i int, in bitvec.Vec) { in.ClearAll() },
	})
	// Backward: In[i] is the fact at the node exit, Out[i] at its entry.
	if !res.Out[2].Get(0) {
		t.Error("fact not generated at node 2")
	}
	if !res.In[1].Get(0) {
		t.Error("fact not propagated to node 1 exit")
	}
	if res.Out[1].Get(0) {
		t.Error("fact not killed at node 1")
	}
	if res.In[0].Get(0) || res.Out[0].Get(0) {
		t.Error("fact leaked past the kill")
	}
}

func TestBackwardMeetAtBranch(t *testing.T) {
	// 0 -> {1, 2}; node 1 generates, node 2 does not. With All-meet the
	// fact must not hold at node 0's exit; with Any-meet it must.
	preds := func(i int) []int {
		if i == 0 {
			return nil
		}
		return []int{0}
	}
	succs := func(i int) []int {
		if i == 0 {
			return []int{1, 2}
		}
		return nil
	}
	transfer := func(i int, in, out bitvec.Vec) {
		out.CopyFrom(in)
		if i == 1 {
			out.Set(0)
		}
	}
	boundary := func(i int, in bitvec.Vec) { in.ClearAll() }

	all := Solve(Problem{N: 3, Bits: 1, Dir: Backward, Meet: All,
		Preds: preds, Succs: succs, Transfer: transfer, Boundary: boundary})
	if all.In[0].Get(0) {
		t.Error("All-meet: fact at branch exit despite one path missing it")
	}
	anyR := Solve(Problem{N: 3, Bits: 1, Dir: Backward, Meet: Any,
		Preds: preds, Succs: succs, Transfer: transfer, Boundary: boundary})
	if !anyR.In[0].Get(0) {
		t.Error("Any-meet: fact missing at branch exit despite one path having it")
	}
}
