// Package dataflow implements a generic worklist solver for uni-directional
// bit-vector data flow problems over an abstract node graph. All of the
// paper's analyses — redundancy (Table 2), hoistability (Table 1),
// delayability and usability (Table 3), plus the lazy-code-motion analyses
// of the EM baseline — instantiate this solver, either at the instruction
// level (via analysis.Prog) or the basic-block level.
package dataflow

import "assignmentmotion/internal/bitvec"

// Direction selects information flow.
type Direction int

const (
	// Forward propagates from predecessors to successors.
	Forward Direction = iota
	// Backward propagates from successors to predecessors.
	Backward
)

// Meet selects the confluence operator.
type Meet int

const (
	// All intersects incoming facts (universally quantified paths,
	// greatest fixpoint; vectors start full).
	All Meet = iota
	// Any unions incoming facts (existentially quantified paths, least
	// fixpoint; vectors start empty).
	Any
)

// Problem describes one analysis instance.
type Problem struct {
	// N is the number of nodes (instructions or blocks).
	N int
	// Bits is the vector width (size of the pattern universe).
	Bits int
	Dir  Direction
	Meet Meet
	// Preds and Succs give the adjacency in *control flow* terms;
	// the solver reorients them according to Dir.
	Preds func(i int) []int
	Succs func(i int) []int
	// Transfer computes the node's outgoing fact from its incoming fact
	// (in flow direction). It must be monotone; out is pre-zeroed and the
	// function must fully define it from in and node-local data.
	Transfer func(i int, in, out bitvec.Vec)
	// Boundary, if non-nil, overrides the incoming fact of flow-entry
	// nodes (nodes with no upstream neighbours). When nil, such nodes get
	// the meet identity (full for All, empty for Any) — which for All is
	// almost never what an analysis wants, so most callers set it.
	Boundary func(i int, in bitvec.Vec)
}

// Result carries the fixpoint solution. For a Forward problem In[i] is the
// fact at the node's entry and Out[i] at its exit; for Backward problems
// In[i] is the fact at the node's *exit* (facts flow in from successors)
// and Out[i] at its *entry*.
type Result struct {
	In  []bitvec.Vec
	Out []bitvec.Vec
	// Sweeps counts worklist passes; exposed for complexity experiments.
	Sweeps int
}

// Solve runs the worklist algorithm to the fixpoint.
func Solve(p Problem) Result {
	upstream, downstream := p.Preds, p.Succs
	if p.Dir == Backward {
		upstream, downstream = p.Succs, p.Preds
	}

	in := make([]bitvec.Vec, p.N)
	out := make([]bitvec.Vec, p.N)
	for i := 0; i < p.N; i++ {
		in[i] = bitvec.New(p.Bits)
		out[i] = bitvec.New(p.Bits)
		if p.Meet == All {
			// Greatest fixpoint: start optimistic and shrink, so facts
			// around cycles are not lost.
			in[i].SetAll()
			out[i].SetAll()
		}
	}

	// Seed every node once; the worklist then tracks whose input changed.
	work := make([]int, 0, p.N)
	inWork := make([]bool, p.N)
	push := func(i int) {
		if !inWork[i] {
			inWork[i] = true
			work = append(work, i)
		}
	}
	for i := 0; i < p.N; i++ {
		push(i)
	}

	scratch := bitvec.New(p.Bits)
	sweeps := 0
	for len(work) > 0 {
		sweeps++
		i := work[0]
		work = work[1:]
		inWork[i] = false

		ups := upstream(i)
		if len(ups) == 0 {
			if p.Meet == All {
				in[i].SetAll()
			} else {
				in[i].ClearAll()
			}
			if p.Boundary != nil {
				p.Boundary(i, in[i])
			}
		} else {
			if p.Meet == All {
				in[i].SetAll()
				for _, u := range ups {
					in[i].And(out[u])
				}
			} else {
				in[i].ClearAll()
				for _, u := range ups {
					in[i].Or(out[u])
				}
			}
		}

		scratch.ClearAll()
		p.Transfer(i, in[i], scratch)
		if !scratch.Equal(out[i]) {
			out[i].CopyFrom(scratch)
			for _, d := range downstream(i) {
				push(d)
			}
		}
	}
	return Result{In: in, Out: out, Sweeps: sweeps}
}
