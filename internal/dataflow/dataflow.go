// Package dataflow implements a generic worklist solver for uni-directional
// bit-vector data flow problems over an abstract node graph. All of the
// paper's analyses — redundancy (Table 2), hoistability (Table 1),
// delayability and usability (Table 3), plus the lazy-code-motion analyses
// of the EM baseline — instantiate this solver, either at the instruction
// level (via analysis.Prog) or the basic-block level.
//
// The solver visits nodes in reverse postorder of the flow direction
// (classic RPO for forward problems, RPO of the reversed graph for
// backward ones), sweeping the order and revisiting only nodes whose
// input changed: facts propagate along long acyclic stretches in a single
// pass and only back edges force another sweep. A FIFO worklist is kept
// behind Problem.FIFO for the order-equivalence property tests and the
// sweep-count benchmarks; both strategies reach the identical fixpoint
// because the transfer functions are monotone over a finite lattice.
package dataflow

import (
	"assignmentmotion/internal/arena"
	"assignmentmotion/internal/bitvec"
)

// Direction selects information flow.
type Direction int

const (
	// Forward propagates from predecessors to successors.
	Forward Direction = iota
	// Backward propagates from successors to predecessors.
	Backward
)

// Meet selects the confluence operator.
type Meet int

const (
	// All intersects incoming facts (universally quantified paths,
	// greatest fixpoint; vectors start full).
	All Meet = iota
	// Any unions incoming facts (existentially quantified paths, least
	// fixpoint; vectors start empty).
	Any
)

// Problem describes one analysis instance.
type Problem struct {
	// N is the number of nodes (instructions or blocks).
	N int
	// Bits is the vector width (size of the pattern universe).
	Bits int
	Dir  Direction
	Meet Meet
	// Preds and Succs give the adjacency in *control flow* terms;
	// the solver reorients them according to Dir.
	Preds func(i int) []int
	Succs func(i int) []int
	// Transfer computes the node's outgoing fact from its incoming fact
	// (in flow direction). It must be monotone; out is pre-zeroed and the
	// function must fully define it from in and node-local data. When Gen
	// is supplied, Transfer is consulted only for nodes marked Irregular
	// (and may be nil if there are none).
	Transfer func(i int, in, out bitvec.Vec)
	// Gen and Kill, when non-nil (always together, each of length N),
	// declare the transfer of node i to be the dense gen/kill form
	//
	//	out = Gen[i] ∨ (in ∧ ¬Kill[i])
	//
	// which the solver evaluates with the fused word-parallel kernel
	// bitvec.GenKillUpdate — 64 patterns per machine word, change
	// detection folded into the same pass, no closure dispatch and no
	// scratch vector. Every uni-directional bit-vector analysis of the
	// paper (Tables 1–3) has this shape. Vectors may alias shared
	// storage (the solver only reads them).
	Gen, Kill []bitvec.Vec
	// Irregular, when of length N, marks nodes whose transfer is NOT pure
	// gen/kill; the solver falls back to the Transfer closure for exactly
	// those nodes. This is for analyses that are gen/kill almost
	// everywhere but conditional at a few nodes — strong liveness (dce),
	// where an assignment's generated uses depend on the incoming fact,
	// is the resident example. Zero-length means no irregular nodes.
	Irregular bitvec.Vec
	// Boundary, if non-nil, overrides the incoming fact of flow-entry
	// nodes (nodes with no upstream neighbours). When nil, such nodes get
	// the meet identity (full for All, empty for Any) — which for All is
	// almost never what an analysis wants, so most callers set it.
	Boundary func(i int, in bitvec.Vec)

	// Order optionally supplies the visit priority: a permutation of
	// [0,N) listing nodes in the order they should be processed (reverse
	// postorder of the flow direction converges fastest). When nil, Solve
	// computes it from the adjacency itself. Callers that solve many
	// problems over one unchanged graph should compute the order once
	// (see FlowOrder) and share it.
	Order []int
	// Arena optionally supplies reusable backing storage for the In/Out
	// vectors and the solver's internal work arrays. The Result then
	// points into the arena: it is valid until the arena is released or
	// reset. A nil arena means plain heap allocation.
	Arena *arena.Arena
	// FIFO selects the legacy first-in-first-out worklist instead of the
	// priority order. It exists for the order-equivalence property tests
	// and the sweep-count benchmarks; production analyses leave it false.
	FIFO bool
	// Workers > 1 enables intra-graph parallel solving: the flow graph is
	// condensed into strongly connected components ordered by a weak
	// topological order, and components whose upstream components have
	// completed are solved concurrently on a bounded worker pool (see
	// parallel.go). The fixpoint is identical to the serial solve — the
	// transfer functions are monotone, so the greatest/least fixpoint is
	// unique under any fair schedule — and the merge is deterministic.
	// Requires Preds/Succs/Transfer/Boundary to be safe for concurrent
	// calls (pure functions over read-only captures, which every analysis
	// in this module satisfies). Ignored in FIFO mode. The threshold
	// policy for when parallelism pays lives with the callers
	// (analysis.Session.SolverWorkersFor); the solver itself obeys
	// whatever it is told.
	Workers int
	// Stats, if non-nil, accumulates this solve's work counters into the
	// given tally. Analyses running under an analysis.Session point this at
	// the session's tally so the pass pipeline can report per-pass solver
	// work (see Session.DataflowStats).
	Stats *SolveStats
}

// SolveStats tallies solver work across many Solve calls: the number of
// solves, node transfer evaluations, and order sweeps. It is the unit the
// pass pipeline's per-pass instrumentation is reported in. A SolveStats
// must not be shared between goroutines.
type SolveStats struct {
	Solves int
	Visits int
	Sweeps int
}

// Delta returns s - prev, the work done since the prev snapshot.
func (s SolveStats) Delta(prev SolveStats) SolveStats {
	return SolveStats{
		Solves: s.Solves - prev.Solves,
		Visits: s.Visits - prev.Visits,
		Sweeps: s.Sweeps - prev.Sweeps,
	}
}

// record adds one finished solve to the tally (nil-safe).
func (s *SolveStats) record(visits, sweeps int) {
	if s == nil {
		return
	}
	s.Solves++
	s.Visits += visits
	s.Sweeps += sweeps
}

// Result carries the fixpoint solution. For a Forward problem In[i] is the
// fact at the node's entry and Out[i] at its exit; for Backward problems
// In[i] is the fact at the node's *exit* (facts flow in from successors)
// and Out[i] at its *entry*. When the problem supplied an arena the
// vectors live in it and are invalidated by its release.
type Result struct {
	In  []bitvec.Vec
	Out []bitvec.Vec
	// Visits counts node transfer evaluations until the fixpoint.
	Visits int
	// Sweeps counts monotone passes over the visit order: 1 for an acyclic
	// graph in topological order, +1 for every extra pass a back edge
	// forces. Zero in FIFO mode, which has no notion of a pass. Exposed
	// for the complexity experiments.
	Sweeps int
}

// FlowOrder returns the visit priority for a problem of n nodes flowing
// along next (Succs for forward problems, Preds for backward ones):
// reverse postorder of the graph spanned by next, rooted at roots. Nodes
// unreachable from the roots are appended via depth-first walks started
// from each in index order, so the result is always a permutation of
// [0,n).
func FlowOrder(n int, roots []int, next func(int) []int) []int {
	order := make([]int, 0, n)
	state := make([]byte, n) // 0 unseen, 1 on stack, 2 done
	type frame struct {
		node int
		edge int
		ns   []int // cached next(node): a frame is resumed once per child
	}
	stack := make([]frame, 0, 16)
	visit := func(root int) {
		if state[root] != 0 {
			return
		}
		state[root] = 1
		stack = append(stack, frame{node: root, ns: next(root)})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for f.edge < len(f.ns) {
				m := f.ns[f.edge]
				f.edge++
				if state[m] == 0 {
					state[m] = 1
					stack = append(stack, frame{node: m, ns: next(m)})
					advanced = true
					break
				}
			}
			if !advanced && f.edge >= len(f.ns) {
				state[f.node] = 2
				order = append(order, f.node)
				stack = stack[:len(stack)-1]
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}
	for i := 0; i < n; i++ {
		visit(i)
	}
	// Reverse the postorder in place.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// meet computes node i's incoming fact from its upstream neighbours'
// outgoing facts: copy the first, then intersect/union the rest — one
// pass fewer than resetting to the identity first. Flow-entry nodes get
// the meet identity, overridable by Boundary.
func (p *Problem) meet(i int, in, out []bitvec.Vec, upstream func(int) []int) {
	ups := upstream(i)
	if len(ups) == 0 {
		if p.Meet == All {
			in[i].SetAll()
		} else {
			in[i].ClearAll()
		}
		if p.Boundary != nil {
			p.Boundary(i, in[i])
		}
		return
	}
	if len(ups) == 1 {
		in[i].CopyFrom(out[ups[0]])
		return
	}
	// Two or more incoming facts: fuse the first two into one pass, then
	// fold in the rest.
	if p.Meet == All {
		in[i].CopyAnd(out[ups[0]], out[ups[1]])
		for _, u := range ups[2:] {
			in[i].And(out[u])
		}
	} else {
		in[i].CopyOr(out[ups[0]], out[ups[1]])
		for _, u := range ups[2:] {
			in[i].Or(out[u])
		}
	}
}

// genKillAt reports whether node i's transfer is evaluated on the dense
// gen/kill path.
func (p *Problem) genKillAt(i int) bool {
	return p.Gen != nil && (p.Irregular.Len() == 0 || !p.Irregular.Get(i))
}

// applyNode meets node i's inputs, runs the transfer, and reports
// whether the outgoing fact changed. On the dense path the whole visit —
// meet, in-fact store, gen/kill transfer, change detection — is one
// fused word-parallel sweep (bitvec.MeetGenKillUpdate); flow-entry nodes
// and irregular/closure nodes take the separate meet + transfer route
// with the caller's scratch vector.
func (p *Problem) applyNode(i int, in, out []bitvec.Vec, upstream func(int) []int, scratch bitvec.Vec) bool {
	if p.genKillAt(i) {
		if ups := upstream(i); len(ups) > 0 {
			return bitvec.MeetGenKillUpdate(out[i], p.Gen[i], p.Kill[i], in[i], out, ups, p.Meet == All)
		}
		p.meet(i, in, out, upstream) // meet identity + Boundary
		return out[i].GenKillUpdate(p.Gen[i], in[i], p.Kill[i])
	}
	p.meet(i, in, out, upstream)
	scratch.ClearAll()
	p.Transfer(i, in[i], scratch)
	if scratch.Equal(out[i]) {
		return false
	}
	out[i].CopyFrom(scratch)
	return true
}

// validate panics on malformed problem wiring — which in this code base
// always indicates a programming error, never bad input.
func (p *Problem) validate() {
	if (p.Gen == nil) != (p.Kill == nil) {
		panic("dataflow: Gen and Kill must be supplied together")
	}
	if p.Gen != nil && (len(p.Gen) != p.N || len(p.Kill) != p.N) {
		panic("dataflow: Gen/Kill length differs from N")
	}
	if p.Gen == nil && p.Transfer == nil {
		panic("dataflow: neither Gen/Kill nor Transfer supplied")
	}
}

// Solve runs the worklist algorithm to the fixpoint.
func Solve(p Problem) Result {
	p.validate()
	upstream, downstream := p.Preds, p.Succs
	if p.Dir == Backward {
		upstream, downstream = p.Succs, p.Preds
	}

	ar := p.Arena
	in := ar.Vecs(p.N)
	out := ar.Vecs(p.N)
	if ar == nil {
		// No arena: carve every vector out of one flat allocation instead
		// of 2N tiny ones — without this the solver's fixed cost is
		// dominated by the makes, not the sweeps.
		words := bitvec.WordsFor(p.Bits)
		backing := make([]uint64, 2*p.N*words)
		for i := 0; i < p.N; i++ {
			in[i] = bitvec.Wrap(p.Bits, backing[:words:words])
			backing = backing[words:]
			out[i] = bitvec.Wrap(p.Bits, backing[:words:words])
			backing = backing[words:]
		}
	} else {
		for i := 0; i < p.N; i++ {
			in[i] = ar.Vec(p.Bits)
			out[i] = ar.Vec(p.Bits)
		}
	}
	if p.Meet == All {
		// Greatest fixpoint: start optimistic and shrink, so facts around
		// cycles are not lost.
		for i := 0; i < p.N; i++ {
			in[i].SetAll()
			out[i].SetAll()
		}
	}

	order := p.Order
	if order == nil && !p.FIFO {
		var roots []int
		for i := 0; i < p.N; i++ {
			if len(upstream(i)) == 0 {
				roots = append(roots, i)
			}
		}
		order = FlowOrder(p.N, roots, downstream)
	}

	if p.Workers > 1 && !p.FIFO {
		return solveParallel(&p, in, out, order, upstream, downstream)
	}

	var scratch bitvec.Vec
	if p.Gen == nil || p.Irregular.Len() != 0 {
		scratch = ar.Vec(p.Bits)
	}
	visits := 0
	apply := func(i int) bool {
		visits++
		return p.applyNode(i, in, out, upstream, scratch)
	}

	if p.FIFO || order == nil {
		// Legacy FIFO worklist: a ring queue with membership dedupe.
		work := ar.Ints(p.N)[:0]
		inWork := ar.Vec(p.N)
		var head int
		push := func(i int) {
			if !inWork.Get(i) {
				inWork.Set(i)
				work = append(work, i)
			}
		}
		for i := 0; i < p.N; i++ {
			push(i)
		}
		for len(work)-head > 0 {
			i := work[head]
			head++
			if head == len(work) { // drained: rewind the ring
				work, head = work[:0], 0
			}
			inWork.Clear(i)
			if apply(i) {
				for _, d := range downstream(i) {
					push(d)
				}
			}
		}
		p.Stats.record(visits, 0)
		return Result{In: in, Out: out, Visits: visits, Sweeps: 0}
	}

	// Priority mode: monotone sweeps over the visit order, revisiting only
	// nodes whose input changed. A downstream node later in the current
	// sweep is picked up in place; one earlier (a back edge) waits for the
	// next sweep. An acyclic graph in topological order converges in a
	// single sweep.
	// The dirty set is a flat byte array, not a bit vector: the sweep loop
	// tests membership once per node per sweep and the plain load/store
	// beats bit arithmetic on that path.
	dirty := make([]bool, p.N)
	for i := range dirty {
		dirty[i] = true
	}
	pending := p.N
	sweeps := 0
	for pending > 0 {
		sweeps++
		for _, i := range order {
			if !dirty[i] {
				continue
			}
			dirty[i] = false
			pending--
			if apply(i) {
				for _, d := range downstream(i) {
					if !dirty[d] {
						dirty[d] = true
						pending++
					}
				}
			}
		}
	}
	p.Stats.record(visits, sweeps)
	return Result{In: in, Out: out, Visits: visits, Sweeps: sweeps}
}
