package dataflow_test

// Order- and storage-equivalence property tests for the solver: the
// RPO-priority worklist, the legacy FIFO worklist, and the arena-backed
// runs must all compute the identical fixpoint — the transfer functions
// are monotone over a finite lattice, so the greatest (All) and least
// (Any) fixpoints are unique regardless of visit order or backing store.

import (
	"math/rand"
	"sync"
	"testing"

	"assignmentmotion/internal/arena"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/ir"
)

const propBits = 43 // odd width, crosses a word boundary

// adjacency precomputes int predecessor/successor lists for a graph.
type adjacency struct {
	preds, succs [][]int
	entry, exit  int
}

func adjOf(g *ir.Graph) adjacency {
	a := adjacency{
		preds: make([][]int, len(g.Blocks)),
		succs: make([][]int, len(g.Blocks)),
		entry: int(g.Entry),
		exit:  int(g.Exit),
	}
	for i, b := range g.Blocks {
		for _, p := range b.Preds {
			a.preds[i] = append(a.preds[i], int(p))
		}
		for _, s := range b.Succs {
			a.succs[i] = append(a.succs[i], int(s))
		}
	}
	return a
}

// randomProblem builds a gen/kill transfer over the graph with
// deterministic per-node vectors — the shape every analysis in this repo
// instantiates.
func randomProblem(a adjacency, seed int64, dir dataflow.Direction, meet dataflow.Meet) dataflow.Problem {
	rng := rand.New(rand.NewSource(seed))
	n := len(a.preds)
	gen := make([]bitvec.Vec, n)
	kill := make([]bitvec.Vec, n)
	for i := 0; i < n; i++ {
		gen[i] = bitvec.New(propBits)
		kill[i] = bitvec.New(propBits)
		for b := 0; b < propBits; b++ {
			switch rng.Intn(6) {
			case 0:
				gen[i].Set(b)
			case 1, 2:
				kill[i].Set(b)
			}
		}
	}
	boundary := a.entry
	if dir == dataflow.Backward {
		boundary = a.exit
	}
	return dataflow.Problem{
		N: n, Bits: propBits, Dir: dir, Meet: meet,
		Preds: func(i int) []int { return a.preds[i] },
		Succs: func(i int) []int { return a.succs[i] },
		Transfer: func(i int, in, out bitvec.Vec) {
			out.CopyFrom(in)
			out.AndNot(kill[i])
			out.Or(gen[i])
		},
		Boundary: func(i int, in bitvec.Vec) {
			if i == boundary {
				in.ClearAll()
			}
		},
	}
}

// propGraphs returns the generator corpus: 200+ graphs mixing structured
// programs, unstructured (goto-style) flow, and the adversarial redundant
// chains of the complexity experiments.
func propGraphs() []*ir.Graph {
	var gs []*ir.Graph
	for seed := int64(0); seed < 80; seed++ {
		gs = append(gs, cfggen.Structured(seed, cfggen.Config{Size: 8}))
		gs = append(gs, cfggen.Unstructured(seed, cfggen.Config{Size: 8}))
	}
	for k := 1; k <= 48; k++ {
		gs = append(gs, cfggen.RedundantChain(k))
	}
	return gs
}

func sameResult(t *testing.T, tag string, n int, want, got dataflow.Result) {
	t.Helper()
	for i := 0; i < n; i++ {
		if !want.In[i].Equal(got.In[i]) || !want.Out[i].Equal(got.Out[i]) {
			t.Fatalf("%s: fixpoint differs at node %d:\n in  %s vs %s\n out %s vs %s",
				tag, i, want.In[i], got.In[i], want.Out[i], got.Out[i])
		}
	}
}

var propCases = []struct {
	name string
	dir  dataflow.Direction
	meet dataflow.Meet
}{
	{"fwd-all", dataflow.Forward, dataflow.All},
	{"fwd-any", dataflow.Forward, dataflow.Any},
	{"bwd-all", dataflow.Backward, dataflow.All},
	{"bwd-any", dataflow.Backward, dataflow.Any},
}

// TestRPOSolverMatchesFIFO: the priority order must not change any
// fixpoint, on any graph shape, for any direction/meet combination.
func TestRPOSolverMatchesFIFO(t *testing.T) {
	graphs := propGraphs()
	if len(graphs) < 200 {
		t.Fatalf("corpus too small: %d graphs", len(graphs))
	}
	for gi, g := range graphs {
		a := adjOf(g)
		for _, c := range propCases {
			p := randomProblem(a, int64(gi)*17+int64(c.dir)*3+int64(c.meet), c.dir, c.meet)
			p.FIFO = true
			fifo := dataflow.Solve(p)
			p.FIFO = false
			rpo := dataflow.Solve(p)
			sameResult(t, g.Name+"/"+c.name, p.N, fifo, rpo)
			if rpo.Sweeps > fifo.Visits {
				t.Fatalf("%s/%s: sweep accounting broken: %d sweeps > %d visits",
					g.Name, c.name, rpo.Sweeps, fifo.Visits)
			}
		}
	}
}

// TestArenaSolveMatchesFresh: carving the solver state out of a pooled
// arena must be invisible in the results, including when one arena is
// reused (Mark/Release) across many solves.
func TestArenaSolveMatchesFresh(t *testing.T) {
	ar := arena.Get()
	defer arena.Put(ar)
	for gi, g := range propGraphs() {
		a := adjOf(g)
		for _, c := range propCases {
			p := randomProblem(a, int64(gi)*29+int64(c.dir)*5+int64(c.meet), c.dir, c.meet)
			fresh := dataflow.Solve(p)
			m := ar.Mark()
			p.Arena = ar
			pooled := dataflow.Solve(p)
			sameResult(t, g.Name+"/"+c.name, p.N, fresh, pooled)
			ar.Release(m)
		}
	}
}

// TestPooledArenasAreRaceFree: concurrent solvers, each on its own pooled
// arena, must neither race (run with -race) nor perturb each other's
// results.
func TestPooledArenasAreRaceFree(t *testing.T) {
	graphs := propGraphs()[:40]
	type job struct {
		a    adjacency
		p    dataflow.Problem
		want dataflow.Result
	}
	jobs := make([]job, len(graphs))
	for gi, g := range graphs {
		a := adjOf(g)
		p := randomProblem(a, int64(gi)+1000, dataflow.Forward, dataflow.All)
		jobs[gi] = job{a: a, p: p, want: dataflow.Solve(p)}
	}
	var wg sync.WaitGroup
	errs := make(chan string, len(jobs))
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ar := arena.Get()
			defer arena.Put(ar)
			for ji := w; ji < len(jobs); ji += 8 {
				j := jobs[ji]
				m := ar.Mark()
				p := j.p
				p.Arena = ar
				got := dataflow.Solve(p)
				for i := 0; i < p.N; i++ {
					if !j.want.In[i].Equal(got.In[i]) || !j.want.Out[i].Equal(got.Out[i]) {
						errs <- "pooled solve diverged on job " + graphs[ji].Name
						break
					}
				}
				ar.Release(m)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestFlowOrderIsPermutation: FlowOrder must return a permutation of
// [0,n) even on graphs with unreachable nodes, and must order acyclic
// graphs topologically (every chain solves in one sweep).
func TestFlowOrderIsPermutation(t *testing.T) {
	for _, g := range propGraphs()[:60] {
		a := adjOf(g)
		n := len(a.succs)
		order := dataflow.FlowOrder(n, []int{a.entry}, func(i int) []int { return a.succs[i] })
		seen := make([]bool, n)
		for _, i := range order {
			if i < 0 || i >= n || seen[i] {
				t.Fatalf("%s: FlowOrder not a permutation: %v", g.Name, order)
			}
			seen[i] = true
		}
		if len(order) != n {
			t.Fatalf("%s: FlowOrder dropped nodes: %d of %d", g.Name, len(order), n)
		}
	}
}

// TestChainSolvesInOneSweep pins the point of the priority order: a
// redundant chain (acyclic, the adversarial case for FIFO) reaches its
// fixpoint in a single monotone pass.
func TestChainSolvesInOneSweep(t *testing.T) {
	g := cfggen.RedundantChain(40)
	a := adjOf(g)
	p := randomProblem(a, 7, dataflow.Forward, dataflow.All)
	res := dataflow.Solve(p)
	if res.Sweeps != 1 {
		t.Fatalf("acyclic chain took %d sweeps in RPO order, want 1", res.Sweeps)
	}
	p.FIFO = true
	fifo := dataflow.Solve(p)
	if fifo.Visits < res.Visits {
		t.Fatalf("FIFO visits %d < RPO visits %d on a chain", fifo.Visits, res.Visits)
	}
}
