package dataflow_test

// Equivalence property tests for the two PR-7 solver paths: the dense
// gen/kill kernel form must be indistinguishable from the closure
// Transfer form, and the intra-graph parallel solve must be
// indistinguishable from the serial sweep — on every graph shape, for
// every direction/meet combination. Run under -race by CI to certify the
// parallel scheduler's happens-before discipline.

import (
	"math/rand"
	"testing"

	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/cfggen"
	"assignmentmotion/internal/dataflow"
)

// randomGenKill builds deterministic per-node gen/kill vectors with the
// same density the analyses produce.
func randomGenKill(n int, seed int64) (gen, kill []bitvec.Vec) {
	rng := rand.New(rand.NewSource(seed))
	gen = make([]bitvec.Vec, n)
	kill = make([]bitvec.Vec, n)
	for i := 0; i < n; i++ {
		gen[i] = bitvec.New(propBits)
		kill[i] = bitvec.New(propBits)
		for b := 0; b < propBits; b++ {
			switch rng.Intn(6) {
			case 0:
				gen[i].Set(b)
			case 1, 2:
				kill[i].Set(b)
			}
		}
	}
	return gen, kill
}

// problemPair returns the same random analysis twice: once as a closure
// Transfer, once in the dense Gen/Kill form.
func problemPair(a adjacency, seed int64, dir dataflow.Direction, meet dataflow.Meet) (closure, dense dataflow.Problem) {
	n := len(a.preds)
	gen, kill := randomGenKill(n, seed)
	boundary := a.entry
	if dir == dataflow.Backward {
		boundary = a.exit
	}
	base := dataflow.Problem{
		N: n, Bits: propBits, Dir: dir, Meet: meet,
		Preds: func(i int) []int { return a.preds[i] },
		Succs: func(i int) []int { return a.succs[i] },
		Boundary: func(i int, in bitvec.Vec) {
			if i == boundary {
				in.ClearAll()
			}
		},
	}
	closure = base
	closure.Transfer = func(i int, in, out bitvec.Vec) {
		out.CopyFrom(in)
		out.AndNot(kill[i])
		out.Or(gen[i])
	}
	dense = base
	dense.Gen = gen
	dense.Kill = kill
	return closure, dense
}

// TestGenKillKernelMatchesClosure: the fused kernel path must compute the
// identical fixpoint — and, since both paths share the visit schedule and
// the change signal, the identical work counters — as the closure path.
func TestGenKillKernelMatchesClosure(t *testing.T) {
	for gi, g := range propGraphs() {
		a := adjOf(g)
		for _, c := range propCases {
			closure, dense := problemPair(a, int64(gi)*41+int64(c.dir)*7+int64(c.meet), c.dir, c.meet)
			want := dataflow.Solve(closure)
			got := dataflow.Solve(dense)
			sameResult(t, g.Name+"/"+c.name, closure.N, want, got)
			if want.Visits != got.Visits || want.Sweeps != got.Sweeps {
				t.Fatalf("%s/%s: work counters diverge: closure %d/%d, dense %d/%d",
					g.Name, c.name, want.Visits, want.Sweeps, got.Visits, got.Sweeps)
			}
		}
	}
}

// TestIrregularHybridDispatch: nodes marked Irregular must be evaluated
// through the Transfer closure, not their dense entries. The dense
// entries of irregular nodes are deliberately poisoned (all-kill), so any
// dispatch leak changes the fixpoint and fails the equivalence.
func TestIrregularHybridDispatch(t *testing.T) {
	for gi, g := range propGraphs()[:80] {
		a := adjOf(g)
		for _, c := range propCases {
			closure, dense := problemPair(a, int64(gi)*53+int64(c.dir)*11+int64(c.meet), c.dir, c.meet)
			want := dataflow.Solve(closure)

			rng := rand.New(rand.NewSource(int64(gi)))
			irregular := bitvec.New(dense.N)
			poison := bitvec.NewFull(propBits)
			// Copy the Gen/Kill slices before poisoning: the closure
			// oracle captured the originals.
			pg := append([]bitvec.Vec(nil), dense.Gen...)
			pk := append([]bitvec.Vec(nil), dense.Kill...)
			for i := 0; i < dense.N; i++ {
				if rng.Intn(3) == 0 {
					irregular.Set(i)
					pg[i] = bitvec.New(propBits) // poisoned: would
					pk[i] = poison               // clear every bit
				}
			}
			dense.Gen, dense.Kill = pg, pk
			dense.Irregular = irregular
			dense.Transfer = closure.Transfer // irregular nodes' real transfer
			got := dataflow.Solve(dense)
			sameResult(t, g.Name+"/"+c.name+"/hybrid", dense.N, want, got)
		}
	}
}

// TestParallelSolveMatchesSerial: the SCC/WTO parallel solve must reach
// the serial fixpoint on every graph shape, for both transfer forms,
// including the Irregular hybrid, and must report deterministic work
// counters across repeated runs. Workers is forced well above the policy
// threshold so even tiny graphs exercise the scheduler; CI runs this
// under -race.
func TestParallelSolveMatchesSerial(t *testing.T) {
	for gi, g := range propGraphs() {
		a := adjOf(g)
		for _, c := range propCases {
			closure, dense := problemPair(a, int64(gi)*59+int64(c.dir)*13+int64(c.meet), c.dir, c.meet)

			want := dataflow.Solve(closure)
			for name, p := range map[string]dataflow.Problem{"closure": closure, "dense": dense} {
				p.Workers = 4
				first := dataflow.Solve(p)
				sameResult(t, g.Name+"/"+c.name+"/parallel-"+name, p.N, want, first)
				again := dataflow.Solve(p)
				if first.Visits != again.Visits || first.Sweeps != again.Sweeps {
					t.Fatalf("%s/%s/%s: parallel work counters not deterministic: %d/%d vs %d/%d",
						g.Name, c.name, name, first.Visits, first.Sweeps, again.Visits, again.Sweeps)
				}
			}

			// Hybrid under parallel workers: a random Irregular subset
			// falls back to the closure on worker goroutines.
			rng := rand.New(rand.NewSource(int64(gi) * 3))
			irregular := bitvec.New(dense.N)
			for i := 0; i < dense.N; i++ {
				if rng.Intn(4) == 0 {
					irregular.Set(i)
				}
			}
			dense.Irregular = irregular
			dense.Transfer = closure.Transfer
			dense.Workers = 4
			got := dataflow.Solve(dense)
			sameResult(t, g.Name+"/"+c.name+"/parallel-hybrid", dense.N, want, got)
		}
	}
}

// TestParallelSolveLargeGraph exercises the scheduler at a scale where
// the condensation actually has hundreds of components, on both meets
// (greatest and least fixpoint start states).
func TestParallelSolveLargeGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("large graph solve under -short")
	}
	for _, size := range []int{600, 2000} {
		g := cfggen.Structured(11, cfggen.Config{Size: size})
		a := adjOf(g)
		for _, c := range propCases[:2] {
			closure, dense := problemPair(a, int64(size)+int64(c.meet), c.dir, c.meet)
			want := dataflow.Solve(closure)
			dense.Workers = 8
			got := dataflow.Solve(dense)
			sameResult(t, g.Name+"/"+c.name+"/large", dense.N, want, got)
		}
	}
}
