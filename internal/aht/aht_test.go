package aht

import (
	"testing"

	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/parse"
)

func blockKeys(b *ir.Block) []string {
	var out []string
	for _, in := range b.Instrs {
		out = append(out, in.Key())
	}
	return out
}

func hasInstr(b *ir.Block, key string) bool {
	for _, in := range b.Instrs {
		if in.Key() == key {
			return true
		}
	}
	return false
}

func TestHoistWithinBlockToEntry(t *testing.T) {
	// The candidate x := a+b is preceded only by a non-blocking,
	// non-hoistable instruction (out does not move); one application
	// moves the assignment to the block entry.
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    out(q)
    x := a + b
    goto e
  }
  block e { out(x, q) }
}
`)
	if !Apply(g) {
		t.Fatal("no change reported")
	}
	a := g.BlockByName("a")
	if got := blockKeys(a); got[0] != "x:=a+b" || got[1] != "out(q)" {
		t.Errorf("block a = %v", got)
	}
	// Second application is the identity.
	if Apply(g) {
		t.Error("not idempotent")
	}
}

func TestHoistStopsAtBlocker(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    a := 1
    x := a + b
    goto e
  }
  block e { out(x) }
}
`)
	if Apply(g) {
		t.Error("hoisted past a := 1 which defines an operand")
	}
}

func TestHoistAcrossBlocks(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    q := 1
    goto m
  }
  block m {
    x := a + b
    goto e
  }
  block e { out(x, q) }
}
`)
	Apply(g)
	g.MustValidate()
	a := g.BlockByName("a")
	// q := 1 is itself a candidate inserted at the same point; order among
	// patterns inserted at one point is arbitrary (§4.3.2), so only check
	// membership.
	if !hasInstr(a, "x:=a+b") {
		t.Errorf("block a = %v", blockKeys(a))
	}
	if hasInstr(g.BlockByName("m"), "x:=a+b") {
		t.Error("occurrence not removed from m")
	}
}

func TestFigure2Hoisting(t *testing.T) {
	// Figure 2: 1 → {2,3}; 2 → 4; 3 → {3,4}. x := a+b occurs in 2 and 3;
	// hoisting merges both into node 1, plus a back-edge copy (y := x+y
	// blocks the in-loop hoist) that only rae can remove — the full
	// Figure 2(b) result is asserted in the am package. z := a+b occurs
	// only in 2 and must stay there (the path through 3 lacks it).
	g := parse.MustParse(`
graph fig02 {
  entry n1
  exit n4
  block n1 { if c < 0 then n2 else n3 }
  block n2 {
    z := a + b
    x := a + b
    goto n4
  }
  block n3 {
    x := a + b
    y := x + y
    if y < 100 then n3 else n4
  }
  block n4 { out(x, y) }
}
`)
	g.SplitCriticalEdges()
	for Apply(g) {
	}
	g.MustValidate()

	n1 := g.BlockByName("n1")
	if !hasInstr(n1, "x:=a+b") {
		t.Errorf("x := a+b not hoisted to n1: %v", blockKeys(n1))
	}
	if hasInstr(n1, "z:=a+b") {
		t.Error("z := a+b wrongly hoisted to n1 (absent on the n3 path)")
	}
	if !hasInstr(g.BlockByName("n2"), "z:=a+b") {
		t.Error("z := a+b lost from n2")
	}
	if hasInstr(g.BlockByName("n2"), "x:=a+b") {
		t.Error("x := a+b still in n2")
	}
	if hasInstr(g.BlockByName("n3"), "x:=a+b") {
		t.Error("x := a+b still in the n3 loop body")
	}
	// Hoisting alone leaves a (redundant) back-edge copy.
	if !hasInstr(g.BlockByName("sn3_n3"), "x:=a+b") {
		t.Error("back-edge copy missing after pure hoisting")
	}
}

func TestNoHoistIntoLoop(t *testing.T) {
	// x := a+b sits below a loop whose body modifies a. The all-paths
	// hoistability condition must keep it below the loop: inserting inside
	// would re-execute it every iteration.
	g := parse.MustParse(`
graph g {
  entry pre
  exit e
  block pre { goto hdr }
  block hdr { if i < 10 then body else after }
  block body {
    a := a + 1
    i := i + 1
    goto hdr
  }
  block after {
    x := a + b
    goto e
  }
  block e { out(x) }
}
`)
	g.SplitCriticalEdges()
	for Apply(g) {
	}
	g.MustValidate()
	for _, name := range []string{"pre", "hdr", "body"} {
		if hasInstr(g.BlockByName(name), "x:=a+b") {
			t.Errorf("x := a+b moved into/above the loop at %s", name)
		}
	}
	if !hasInstr(g.BlockByName("after"), "x:=a+b") {
		t.Error("x := a+b vanished from after")
	}
}

func TestHoistAcrossTransparentLoop(t *testing.T) {
	// The loop touches neither x nor a nor b, so the occurrence below it
	// crosses the whole loop and lands in pre (profitable motion across a
	// loop, cf. Figure 7).
	g := parse.MustParse(`
graph g {
  entry pre
  exit e
  block pre { goto hdr }
  block hdr { if i < 10 then body else after }
  block body {
    i := i + 1
    goto hdr
  }
  block after {
    x := a + b
    goto e
  }
  block e { out(x) }
}
`)
	g.SplitCriticalEdges()
	for Apply(g) {
	}
	g.MustValidate()
	if !hasInstr(g.BlockByName("pre"), "x:=a+b") {
		t.Errorf("x := a+b did not cross the loop; pre = %v", blockKeys(g.BlockByName("pre")))
	}
	for _, name := range []string{"hdr", "body", "after"} {
		if hasInstr(g.BlockByName(name), "x:=a+b") {
			t.Errorf("stray occurrence in %s", name)
		}
	}
}

func TestXInsertAtBlockedBlock(t *testing.T) {
	// m uses x (blocking) and the occurrence below must be hoisted to m's
	// exit, not above it.
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a { goto m }
  block m {
    out(x)
    goto n
  }
  block n {
    q := 1
    x := a + b
    goto e
  }
  block e { out(x, q) }
}
`)
	for Apply(g) {
	}
	g.MustValidate()
	m := g.BlockByName("m")
	keys := blockKeys(m)
	if len(keys) != 2 || keys[0] != "out(x)" || keys[1] != "x:=a+b" {
		t.Errorf("m = %v, want [out(x), x:=a+b]", keys)
	}
	if hasInstr(g.BlockByName("n"), "x:=a+b") {
		t.Error("occurrence not removed from n")
	}
	if hasInstr(g.BlockByName("a"), "x:=a+b") {
		t.Error("hoisted past the out(x) blocker")
	}
}

func TestXInsertAtBranchNodeGoesToSuccessors(t *testing.T) {
	// The branch condition in b uses x, so hoisting x := a+b from both
	// arms stops at b's exit, which (after edge splitting) is realized at
	// the entries of both successors.
	g := parse.MustParse(`
graph g {
  entry b
  exit e
  block b { if x < 0 then l else r }
  block l {
    q := 1
    x := a + b
    goto e
  }
  block r {
    p := 2
    x := a + b
    goto e
  }
  block e { out(x, p, q) }
}
`)
	g.SplitCriticalEdges()
	for Apply(g) {
	}
	g.MustValidate()
	l, r := g.BlockByName("l"), g.BlockByName("r")
	if blockKeys(l)[0] != "x:=a+b" {
		t.Errorf("l = %v", blockKeys(l))
	}
	if blockKeys(r)[0] != "x:=a+b" {
		t.Errorf("r = %v", blockKeys(r))
	}
	if hasInstr(g.BlockByName("b"), "x:=a+b") {
		t.Error("hoisted above the condition that reads x")
	}
}

func TestDiamondPartialHoistMerges(t *testing.T) {
	// Occurrence on both arms of a diamond hoists to the branch node
	// (above the condition, which does not mention x, a, or b).
	g := parse.MustParse(`
graph g {
  entry s
  exit e
  block s { if c < 0 then l else r }
  block l { x := a + b
    goto j }
  block r { x := a + b
    goto j }
  block j { goto e }
  block e { out(x) }
}
`)
	for Apply(g) {
	}
	g.MustValidate()
	s := g.BlockByName("s")
	if blockKeys(s)[0] != "x:=a+b" {
		t.Errorf("s = %v", blockKeys(s))
	}
	count := 0
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Key() == "x:=a+b" {
				count++
			}
		}
	}
	if count != 1 {
		t.Errorf("x := a+b occurs %d times, want 1", count)
	}
}

func TestAnalyzeInsertPredicates(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    q := 1
    goto m
  }
  block m {
    x := a + b
    goto e
  }
  block e { out(x, q) }
}
`)
	info := Analyze(g)
	p := ir.AssignPattern{LHS: "x", RHS: ir.BinTerm(ir.OpAdd, ir.VarOp("a"), ir.VarOp("b"))}
	id, ok := info.U.ID(p)
	if !ok {
		t.Fatal("pattern missing")
	}
	aID := int(g.BlockByName("a").ID)
	mID := int(g.BlockByName("m").ID)
	eID := int(g.BlockByName("e").ID)
	if !info.NHoistable[mID].Get(id) || !info.NHoistable[aID].Get(id) {
		t.Error("hoistability not propagated to a")
	}
	if info.NHoistable[eID].Get(id) {
		t.Error("hoistable at e despite out(x)")
	}
	if !info.NInsert[aID].Get(id) {
		t.Error("N-INSERT missing at entry block")
	}
	if info.NInsert[mID].Get(id) {
		t.Error("spurious N-INSERT at m")
	}
	if info.XInsert[aID].Get(id) || info.XInsert[mID].Get(id) {
		t.Error("spurious X-INSERT")
	}
}

func TestMaskedApplyRestrictsPatterns(t *testing.T) {
	g := parse.MustParse(`
graph g {
  entry a
  exit e
  block a {
    q := 1
    goto m
  }
  block m {
    x := a + b
    y := c + d
    goto e
  }
  block e { out(x, y, q) }
}
`)
	changed := ApplyMasked(g, func(p ir.AssignPattern) bool { return p.Key() == "x:=a+b" })
	if !changed {
		t.Fatal("masked apply did nothing")
	}
	if !hasInstr(g.BlockByName("a"), "x:=a+b") {
		t.Error("masked pattern not hoisted")
	}
	if hasInstr(g.BlockByName("a"), "y:=c+d") {
		t.Error("unmasked pattern hoisted")
	}
	if !hasInstr(g.BlockByName("m"), "y:=c+d") {
		t.Error("unmasked pattern removed")
	}
}
