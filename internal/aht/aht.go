// Package aht implements assignment hoisting — procedure "aht" of the
// paper's assignment motion phase (Table 1).
//
// For every assignment pattern α a backward bit-vector analysis over basic
// blocks determines how far hoisting candidates of α (Figure 13) can move
// against the control flow:
//
//	X-HOISTABLE_n = false                          if n = e
//	              = ∏_{m ∈ succ(n)} N-HOISTABLE_m  otherwise
//	N-HOISTABLE_n = LOC-HOISTABLE_n + X-HOISTABLE_n · ¬LOC-BLOCKED_n
//
// The greatest solution yields the insertion points:
//
//	N-INSERT_n = N-HOISTABLE*_n · (n = s  +  Σ_{m ∈ pred(n)} ¬X-HOISTABLE*_m)
//	X-INSERT_n = X-HOISTABLE*_n · LOC-BLOCKED_n
//
// The insertion step places an instance of α at every insert point and
// simultaneously removes all hoisting candidates. Patterns inserted at one
// point are independent (paper, §4.3.2) and are placed in pattern-ID order.
package aht

import (
	"fmt"

	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/ir"
)

// Info holds the analysis result, indexed by block ID.
type Info struct {
	U *ir.PatternSet

	LocHoistable []bitvec.Vec
	LocBlocked   []bitvec.Vec
	NHoistable   []bitvec.Vec
	XHoistable   []bitvec.Vec
	NInsert      []bitvec.Vec
	XInsert      []bitvec.Vec

	// candidates[block][patternID] is the instruction index of the
	// block's hoisting candidate of that pattern.
	candidates []map[int]int
}

// Analyze computes the hoistability analysis and insertion points for g.
func Analyze(g *ir.Graph) *Info {
	u := ir.AssignUniverse(g)
	px := analysis.NewPatternIndex(u)
	n, bits := len(g.Blocks), u.Len()
	info := &Info{
		U:            u,
		LocHoistable: make([]bitvec.Vec, n),
		LocBlocked:   make([]bitvec.Vec, n),
		candidates:   make([]map[int]int, n),
	}
	for i, b := range g.Blocks {
		info.LocHoistable[i], info.LocBlocked[i], info.candidates[i] = px.BlockLocals(b)
	}

	exit := int(g.Exit)
	res := dataflow.Solve(dataflow.Problem{
		N:    n,
		Bits: bits,
		Dir:  dataflow.Backward,
		Meet: dataflow.All,
		Preds: func(i int) []int {
			return nodeIDs(g.Blocks[i].Preds)
		},
		Succs: func(i int) []int {
			return nodeIDs(g.Blocks[i].Succs)
		},
		// For a Backward problem the solver's "in" is the fact at the
		// block's exit (X-HOISTABLE) and "out" the fact at its entry
		// (N-HOISTABLE).
		Transfer: func(i int, in, out bitvec.Vec) {
			out.CopyFrom(in)
			out.AndNot(info.LocBlocked[i])
			out.Or(info.LocHoistable[i])
		},
		Boundary: func(i int, in bitvec.Vec) {
			if i == exit {
				in.ClearAll()
			}
		},
	})
	info.XHoistable = res.In
	info.NHoistable = res.Out

	info.NInsert = make([]bitvec.Vec, n)
	info.XInsert = make([]bitvec.Vec, n)
	for i, b := range g.Blocks {
		// N-INSERT: hoistable at the entry and reaching the frontier —
		// the start node, or some predecessor whose exit is not hoistable.
		ni := info.NHoistable[i].Copy()
		if b.ID != g.Entry {
			frontier := bitvec.New(bits)
			for _, p := range b.Preds {
				notX := info.XHoistable[int(p)].Copy()
				notX.Not()
				frontier.Or(notX)
			}
			ni.And(frontier)
		}
		info.NInsert[i] = ni

		xi := info.XHoistable[i].Copy()
		xi.And(info.LocBlocked[i])
		info.XInsert[i] = xi
	}
	return info
}

func nodeIDs(ids []ir.NodeID) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

// Apply performs one hoisting step on g: it inserts instances at all
// N-INSERT/X-INSERT points and removes every hoisting candidate. It
// reports whether the program changed. The graph must have its critical
// edges split: X-INSERT at a branch node is realized by inserting at the
// entry of each successor, which edge splitting guarantees to have that
// branch node as its only predecessor.
func Apply(g *ir.Graph) bool {
	return ApplyMasked(g, nil)
}

// ApplyMasked is Apply restricted to the assignment patterns accepted by
// mask (nil accepts all). The per-pattern analyses are independent, so
// restricting the transformation to a subset of patterns is sound; the
// Dhamdhere-style "immediately profitable" baseline uses this to hoist one
// pattern at a time.
func ApplyMasked(g *ir.Graph, mask func(ir.AssignPattern) bool) bool {
	before := g.Encode()
	info := Analyze(g)
	if mask != nil {
		keep := bitvec.New(info.U.Len())
		for id, p := range info.U.Patterns() {
			if mask(p) {
				keep.Set(id)
			}
		}
		for i := range g.Blocks {
			info.LocHoistable[i].And(keep)
			info.NInsert[i].And(keep)
			info.XInsert[i].And(keep)
		}
	}

	// Collect per-block prepends. Exit-inserts of branch nodes become
	// prepends of their successors, ordered before the successors' own
	// entry-inserts (the edge point precedes the node entry).
	prepend := make([][]ir.Instr, len(g.Blocks))
	appendAtEnd := make([][]ir.Instr, len(g.Blocks))

	for i, b := range g.Blocks {
		if info.XInsert[i].Any() {
			instrs := patternsToInstrs(info.U, info.XInsert[i])
			if _, branch := b.Cond(); branch {
				for _, s := range b.Succs {
					if len(g.Block(s).Preds) != 1 {
						panic(fmt.Sprintf("aht: X-INSERT at branch node %s with unsplit critical edge to %s",
							b.Name, g.Block(s).Name))
					}
					prepend[int(s)] = append(prepend[int(s)], instrs...)
				}
			} else {
				appendAtEnd[i] = append(appendAtEnd[i], instrs...)
			}
		}
	}
	for i := range g.Blocks {
		if info.NInsert[i].Any() {
			prepend[i] = append(prepend[i], patternsToInstrs(info.U, info.NInsert[i])...)
		}
	}

	for i, b := range g.Blocks {
		// Remove hoisting candidates (at most one per pattern per block).
		drop := map[int]bool{}
		info.LocHoistable[i].ForEach(func(id int) {
			drop[info.candidates[i][id]] = true
		})
		next := make([]ir.Instr, 0, len(prepend[i])+len(b.Instrs)+len(appendAtEnd[i]))
		next = append(next, prepend[i]...)
		for k, in := range b.Instrs {
			if !drop[k] {
				next = append(next, in)
			}
		}
		next = append(next, appendAtEnd[i]...)
		b.Instrs = next
	}
	g.Normalize()
	return g.Encode() != before
}

func patternsToInstrs(u *ir.PatternSet, v bitvec.Vec) []ir.Instr {
	var out []ir.Instr
	v.ForEach(func(id int) {
		p := u.Pattern(id)
		out = append(out, ir.NewAssign(p.LHS, p.RHS))
	})
	return out
}
