// Package aht implements assignment hoisting — procedure "aht" of the
// paper's assignment motion phase (Table 1).
//
// For every assignment pattern α a backward bit-vector analysis over basic
// blocks determines how far hoisting candidates of α (Figure 13) can move
// against the control flow:
//
//	X-HOISTABLE_n = false                          if n = e
//	              = ∏_{m ∈ succ(n)} N-HOISTABLE_m  otherwise
//	N-HOISTABLE_n = LOC-HOISTABLE_n + X-HOISTABLE_n · ¬LOC-BLOCKED_n
//
// The greatest solution yields the insertion points:
//
//	N-INSERT_n = N-HOISTABLE*_n · (n = s  +  Σ_{m ∈ pred(n)} ¬X-HOISTABLE*_m)
//	X-INSERT_n = X-HOISTABLE*_n · LOC-BLOCKED_n
//
// The insertion step places an instance of α at every insert point and
// simultaneously removes all hoisting candidates. Patterns inserted at one
// point are independent (paper, §4.3.2) and are placed in pattern-ID order.
package aht

import (
	"fmt"

	"assignmentmotion/internal/analysis"
	"assignmentmotion/internal/bitvec"
	"assignmentmotion/internal/dataflow"
	"assignmentmotion/internal/ir"
	"assignmentmotion/internal/pass"
)

func init() {
	pass.Register(pass.Pass{
		Name:        "aht",
		Description: "one assignment-hoisting step: insert at maximal-hoisting points, remove all candidates",
		Ref:         "§4.3, Table 1, Figure 13",
		RunWith: func(g *ir.Graph, s *analysis.Session) (pass.Stats, error) {
			g.SplitCriticalEdges() // X-INSERT at branch nodes needs split edges
			changes := 0
			if ApplyWith(g, s, nil) {
				changes = 1
			}
			return pass.Stats{Changes: changes, Iterations: 1}, nil
		},
	})
}

// Info holds the analysis result, indexed by block ID. When it was
// computed through a session (AnalyzeWith), the vectors live in the
// session's arena and are only valid until the caller releases it.
type Info struct {
	U *ir.PatternSet

	LocHoistable []bitvec.Vec
	LocBlocked   []bitvec.Vec
	NHoistable   []bitvec.Vec
	XHoistable   []bitvec.Vec
	NInsert      []bitvec.Vec
	XInsert      []bitvec.Vec

	// candidates[block][patternID] is the instruction index of the
	// block's hoisting candidate of that pattern (-1 when absent).
	candidates [][]int

	// occRank[patternID] ranks patterns by first occurrence in the current
	// graph (-1 when absent). Insertion points place their patterns in this
	// order: a session reuses pattern IDs across rounds, so raw ID order
	// would depend on interning history, while first-occurrence order is a
	// property of the graph alone — it keeps the fixpoint canonical and
	// byte-identical to the uncached implementation, which renumbered the
	// universe every round.
	occRank []int
}

// Analyze computes the hoistability analysis and insertion points for g.
func Analyze(g *ir.Graph) *Info {
	return AnalyzeWith(g, nil)
}

// AnalyzeWith is Analyze drawing its universe, iteration order, and vector
// storage from s (which may be nil for the uncached path). The returned
// Info shares the session's arena; it must be consumed before the arena is
// released.
func AnalyzeWith(g *ir.Graph, s *analysis.Session) *Info {
	u, px := s.Universe(g)
	ar := s.Arena()
	bv := s.Blocks(g)
	n, bits := len(g.Blocks), u.Len()
	info := &Info{
		U:            u,
		LocHoistable: ar.Vecs(n),
		LocBlocked:   ar.Vecs(n),
		candidates:   make([][]int, n),
	}
	for i, b := range g.Blocks {
		info.LocHoistable[i], info.LocBlocked[i], info.candidates[i] = px.BlockLocalsArena(b, ar)
	}

	info.occRank = ar.Ints(bits)
	for id := range info.occRank {
		info.occRank[id] = -1
	}
	next := 0
	for _, b := range g.Blocks {
		for k := range b.Instrs {
			if id, ok := px.OccID(&b.Instrs[k]); ok && info.occRank[id] < 0 {
				info.occRank[id] = next
				next++
			}
		}
	}

	exit := int(g.Exit)
	res := dataflow.Solve(dataflow.Problem{
		N:       n,
		Bits:    bits,
		Dir:     dataflow.Backward,
		Meet:    dataflow.All,
		Preds:   bv.Preds,
		Succs:   bv.Succs,
		Order:   bv.BwdOrder,
		Arena:   ar,
		Stats:   s.DataflowStats(),
		Workers: s.SolverWorkersFor(n),
		// For a Backward problem the solver's "in" is the fact at the
		// block's exit (X-HOISTABLE) and "out" the fact at its entry
		// (N-HOISTABLE): N-HOISTABLE = LOC-HOISTABLE ∨ (X-HOISTABLE ∧
		// ¬LOC-BLOCKED), the dense gen/kill form.
		Gen:  info.LocHoistable,
		Kill: info.LocBlocked,
		Boundary: func(i int, in bitvec.Vec) {
			if i == exit {
				in.ClearAll()
			}
		},
	})
	info.XHoistable = res.In
	info.NHoistable = res.Out

	info.NInsert = ar.Vecs(n)
	info.XInsert = ar.Vecs(n)
	frontier, full := ar.Vec(bits), ar.Vec(bits)
	full.SetAll()
	for i, b := range g.Blocks {
		// N-INSERT: hoistable at the entry and reaching the frontier —
		// the start node, or some predecessor whose exit is not hoistable.
		ni := ar.Vec(bits)
		ni.CopyFrom(info.NHoistable[i])
		if b.ID != g.Entry {
			frontier.ClearAll()
			for _, p := range b.Preds {
				// frontier ∨= ¬X-HOISTABLE, without materializing the
				// complement.
				frontier.OrAndNot(full, info.XHoistable[int(p)])
			}
			ni.And(frontier)
		}
		info.NInsert[i] = ni

		xi := ar.Vec(bits)
		xi.CopyFrom(info.XHoistable[i])
		xi.And(info.LocBlocked[i])
		info.XInsert[i] = xi
	}
	return info
}

// Apply performs one hoisting step on g: it inserts instances at all
// N-INSERT/X-INSERT points and removes every hoisting candidate. It
// reports whether the program changed. The graph must have its critical
// edges split: X-INSERT at a branch node is realized by inserting at the
// entry of each successor, which edge splitting guarantees to have that
// branch node as its only predecessor.
func Apply(g *ir.Graph) bool {
	return ApplyWith(g, nil, nil)
}

// ApplyMasked is Apply restricted to the assignment patterns accepted by
// mask (nil accepts all). The per-pattern analyses are independent, so
// restricting the transformation to a subset of patterns is sound; the
// Dhamdhere-style "immediately profitable" baseline uses this to hoist one
// pattern at a time.
func ApplyMasked(g *ir.Graph, mask func(ir.AssignPattern) bool) bool {
	return ApplyWith(g, nil, mask)
}

// OrderedIDs returns the pattern IDs set in v in the order the
// insertion step would place them (first occurrence in the analyzed
// graph, see occRank). The incremental recorder serializes insertion
// sequences with it.
func (info *Info) OrderedIDs(v bitvec.Vec) []int {
	ids := v.Bits()
	rank := info.occRank
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && rank[ids[j]] < rank[ids[j-1]]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// ApplyWith is ApplyMasked running against session s: the pattern universe
// and iteration orders are reused across rounds and all analysis storage
// comes from the session's arena, which is rewound before returning — one
// warmed-up hoisting round allocates almost nothing. The change report is
// precise (per-block instruction comparison), not an Encode round trip.
func ApplyWith(g *ir.Graph, s *analysis.Session, mask func(ir.AssignPattern) bool) bool {
	return ApplyObservedWith(g, s, mask, nil, nil)
}

// ApplyObservedWith is ApplyWith with observation hooks for the
// incremental recorder: onInfo fires after the analysis (and masking),
// before any mutation — the Info's vectors live in the session arena and
// must be copied, not retained; onDone fires after the rewrite with the
// per-block change flags the aggregate report is derived from.
func ApplyObservedWith(g *ir.Graph, s *analysis.Session, mask func(ir.AssignPattern) bool, onInfo func(*Info), onDone func(changedBlocks []bool)) bool {
	ar := s.Arena()
	m := ar.Mark()
	defer ar.Release(m)

	info := AnalyzeWith(g, s)
	if mask != nil {
		keep := ar.Vec(info.U.Len())
		for id, p := range info.U.Patterns() {
			if mask(p) {
				keep.Set(id)
			}
		}
		for i := range g.Blocks {
			info.LocHoistable[i].And(keep)
			info.NInsert[i].And(keep)
			info.XInsert[i].And(keep)
		}
	}
	if onInfo != nil {
		onInfo(info)
	}

	// Collect per-block prepends. Exit-inserts of branch nodes become
	// prepends of their successors, ordered before the successors' own
	// entry-inserts (the edge point precedes the node entry).
	prepend := make([][]ir.Instr, len(g.Blocks))
	appendAtEnd := make([][]ir.Instr, len(g.Blocks))

	for i, b := range g.Blocks {
		if info.XInsert[i].Any() {
			instrs := patternsToInstrs(info.U, info.XInsert[i], info.occRank)
			if _, branch := b.Cond(); branch {
				for _, s := range b.Succs {
					if len(g.Block(s).Preds) != 1 {
						panic(fmt.Sprintf("aht: X-INSERT at branch node %s with unsplit critical edge to %s",
							b.Name, g.Block(s).Name))
					}
					prepend[int(s)] = append(prepend[int(s)], instrs...)
				}
			} else {
				appendAtEnd[i] = append(appendAtEnd[i], instrs...)
			}
		}
	}
	for i := range g.Blocks {
		if info.NInsert[i].Any() {
			prepend[i] = append(prepend[i], patternsToInstrs(info.U, info.NInsert[i], info.occRank)...)
		}
	}

	changed := false
	var changedBlocks []bool
	if onDone != nil {
		changedBlocks = make([]bool, len(g.Blocks))
	}
	for i, b := range g.Blocks {
		// Untouched block: nothing to insert, no candidate to remove.
		if len(prepend[i]) == 0 && len(appendAtEnd[i]) == 0 && !info.LocHoistable[i].Any() {
			continue
		}
		// Remove hoisting candidates (at most one per pattern per block).
		drop := ar.Vec(len(b.Instrs))
		info.LocHoistable[i].ForEach(func(id int) {
			drop.Set(info.candidates[i][id])
		})
		next := make([]ir.Instr, 0, len(prepend[i])+len(b.Instrs)+len(appendAtEnd[i]))
		next = append(next, prepend[i]...)
		for k, in := range b.Instrs {
			if !drop.Get(k) {
				next = append(next, in)
			}
		}
		next = append(next, appendAtEnd[i]...)
		if !sameInstrs(next, b.Instrs) {
			changed = true
			if changedBlocks != nil {
				changedBlocks[i] = true
			}
		}
		b.Instrs = next
	}
	g.Normalize()
	if onDone != nil {
		onDone(changedBlocks)
	}
	return changed
}

// sameInstrs reports element-wise structural equality. A hoisting round
// may remove a candidate and re-insert the identical instruction at the
// same point (a candidate already at its earliest position); such a round
// must report "unchanged" so the fixpoint loops terminate, exactly as the
// old Encode comparison did.
func sameInstrs(a, b []ir.Instr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// patternsToInstrs materializes the patterns set in v, ordered by first
// occurrence in the current graph (see Info.occRank). Insertion sort: the
// sets are tiny and sort.Slice's reflection allocates.
func patternsToInstrs(u *ir.PatternSet, v bitvec.Vec, rank []int) []ir.Instr {
	ids := v.Bits()
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && rank[ids[j]] < rank[ids[j-1]]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	out := make([]ir.Instr, 0, len(ids))
	for _, id := range ids {
		p := u.Pattern(id)
		out = append(out, ir.NewAssign(p.LHS, p.RHS))
	}
	return out
}
