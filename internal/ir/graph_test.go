package ir

import (
	"reflect"
	"strings"
	"testing"
)

// diamond builds entry → (left | right) → exit with a condition in entry.
func diamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("diamond")
	b.Block("s").Assign("a", ConstTerm(1)).Cond(OpLT, VarTerm("a"), ConstTerm(10))
	b.Block("l").Assign("x", BinTerm(OpAdd, VarOp("a"), VarOp("b")))
	b.Block("r").Assign("x", ConstTerm(0))
	b.Block("e").OutVars("x")
	b.Edge("s", "l").Edge("s", "r").Edge("l", "e").Edge("r", "e")
	return b.MustFinish("s", "e")
}

func TestBuilderDiamond(t *testing.T) {
	g := diamond(t)
	if got := len(g.Blocks); got != 4 {
		t.Fatalf("%d blocks, want 4", got)
	}
	if g.EntryBlock().Name != "s" || g.ExitBlock().Name != "e" {
		t.Error("entry/exit misassigned")
	}
	if _, ok := g.EntryBlock().Cond(); !ok {
		t.Error("entry block lost its condition")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTempRegistry(t *testing.T) {
	g := NewGraph("t")
	ab := BinTerm(OpAdd, VarOp("a"), VarOp("b"))
	cd := BinTerm(OpAdd, VarOp("c"), VarOp("d"))
	h1 := g.TempFor(ab)
	h2 := g.TempFor(cd)
	if h1 == h2 {
		t.Fatal("distinct expressions share a temporary")
	}
	if again := g.TempFor(ab); again != h1 {
		t.Errorf("TempFor not stable: %s vs %s", again, h1)
	}
	if e, ok := g.TempExpr(h1); !ok || e.Key() != "a+b" {
		t.Errorf("TempExpr(%s) = %v %v", h1, e, ok)
	}
	if !g.IsTemp(h1) || g.IsTemp("x") {
		t.Error("IsTemp wrong")
	}
	if got := g.Temps(); !reflect.DeepEqual(got, []Var{h1, h2}) {
		t.Errorf("Temps = %v", got)
	}
}

func TestTempForRejectsTrivial(t *testing.T) {
	g := NewGraph("t")
	defer func() {
		if recover() == nil {
			t.Error("TempFor accepted a trivial term")
		}
	}()
	g.TempFor(VarTerm("x"))
}

func TestRegisterTempConflictPanics(t *testing.T) {
	g := NewGraph("t")
	ab := BinTerm(OpAdd, VarOp("a"), VarOp("b"))
	cd := BinTerm(OpAdd, VarOp("c"), VarOp("d"))
	g.RegisterTemp("h7", ab)
	if e, ok := g.TempExpr("h7"); !ok || e.Key() != "a+b" {
		t.Fatal("RegisterTemp did not register")
	}
	// Re-registering the same association is fine.
	g.RegisterTemp("h7", ab)
	defer func() {
		if recover() == nil {
			t.Error("conflicting RegisterTemp did not panic")
		}
	}()
	g.RegisterTemp("h7", cd)
}

func TestCloneIndependence(t *testing.T) {
	g := diamond(t)
	g.TempFor(BinTerm(OpAdd, VarOp("a"), VarOp("b")))
	c := g.Clone()
	if c.Encode() != g.Encode() {
		t.Fatal("clone differs from original")
	}
	// Mutating the clone must not affect the original.
	c.Block(c.Entry).Instrs = append(c.Block(c.Entry).Instrs, Skip())
	c.TempFor(BinTerm(OpMul, VarOp("a"), VarOp("b")))
	if c.Encode() == g.Encode() {
		t.Error("mutating clone changed original encoding")
	}
	if g.IsTemp("h2") {
		t.Error("clone temp leaked into original")
	}
	if !c.IsTemp("h1") {
		t.Error("clone lost temp registry")
	}
}

func TestNormalize(t *testing.T) {
	g := NewGraph("n")
	b1 := g.AddBlock("b1")
	b2 := g.AddBlock("b2")
	b1.Instrs = []Instr{Skip(), NewAssign("x", ConstTerm(1)), Skip()}
	b2.Instrs = nil
	g.AddEdge(b1.ID, b2.ID)
	g.Entry, g.Exit = b1.ID, b2.ID
	g.Normalize()
	if len(b1.Instrs) != 1 || b1.Instrs[0].Kind != KindAssign {
		t.Errorf("b1 instrs = %v", b1.Instrs)
	}
	if len(b2.Instrs) != 1 || b2.Instrs[0].Kind != KindSkip {
		t.Errorf("b2 instrs = %v", b2.Instrs)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitCriticalEdges(t *testing.T) {
	// Figure 10: edge (2,3) is critical — node 2 branches, node 3 joins.
	b := NewBuilder("fig10")
	b.Block("n1").Assign("x", BinTerm(OpAdd, VarOp("a"), VarOp("b")))
	b.Block("n2").Cond(OpLT, VarTerm("a"), VarTerm("b"))
	b.Block("n3").Assign("x", BinTerm(OpAdd, VarOp("a"), VarOp("b")))
	b.Block("n4").OutVars("x")
	b.Edge("n1", "n3").Edge("n2", "n3").Edge("n2", "n4").Edge("n3", "n4")
	// Entry must have no preds: add a fresh entry above n1 and n2.
	b.Block("n0").Cond(OpLT, VarTerm("a"), ConstTerm(0))
	b.Edge("n0", "n1").Edge("n0", "n2")
	g := b.MustFinish("n0", "n4")

	if !g.IsCriticalEdge(g.BlockByName("n2").ID, g.BlockByName("n3").ID) {
		t.Fatal("edge n2->n3 not detected critical")
	}
	// n2->n4 is also critical (n4 has two predecessors).
	n := g.SplitCriticalEdges()
	if n != 2 {
		t.Fatalf("split %d edges, want 2", n)
	}
	g.MustValidate()
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if g.IsCriticalEdge(blk.ID, s) {
				t.Errorf("edge %s->%s still critical", blk.Name, g.Block(s).Name)
			}
		}
	}
	// Idempotence.
	if n := g.SplitCriticalEdges(); n != 0 {
		t.Errorf("second split changed %d edges", n)
	}
}

func TestSplitPreservesBranchOrder(t *testing.T) {
	b := NewBuilder("order")
	b.Block("s").Cond(OpLT, VarTerm("a"), ConstTerm(0))
	b.Block("t1").Assign("x", ConstTerm(1))
	b.Block("e").OutVars("x")
	b.Edge("s", "t1").Edge("s", "e").Edge("t1", "e")
	g := b.MustFinish("s", "e")
	g.SplitCriticalEdges()
	g.MustValidate()
	sb := g.BlockByName("s")
	// The then-successor (position 0) must still lead (via the synthetic
	// node, if any) to t1.
	first := g.Block(sb.Succs[0])
	if first.Name != "t1" && (len(first.Succs) != 1 || g.Block(first.Succs[0]).Name != "t1") {
		t.Errorf("then-branch now reaches %s", first.Name)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	// Condition not in final position.
	g := NewGraph("bad")
	b1 := g.AddBlock("b1")
	b2 := g.AddBlock("b2")
	b3 := g.AddBlock("b3")
	b1.Instrs = []Instr{NewCond(OpLT, VarTerm("a"), VarTerm("b")), NewCond(OpLT, VarTerm("a"), VarTerm("b"))}
	b2.Instrs = []Instr{Skip()}
	b3.Instrs = []Instr{Skip()}
	g.AddEdge(b1.ID, b2.ID)
	g.AddEdge(b1.ID, b3.ID)
	g.AddEdge(b2.ID, b3.ID)
	g.Entry, g.Exit = b1.ID, b3.ID
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "final position") {
		t.Errorf("validate = %v", err)
	}

	// Two successors without a condition.
	b1.Instrs = []Instr{Skip(), Skip()}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Errorf("validate = %v", err)
	}

	// Unregistered temporary.
	b1.Instrs = []Instr{NewAssign("h3", BinTerm(OpAdd, VarOp("a"), VarOp("b"))), NewCond(OpLT, VarTerm("a"), VarTerm("b"))}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "unregistered temporary") {
		t.Errorf("validate = %v", err)
	}
	g.RegisterTemp("h3", BinTerm(OpAdd, VarOp("a"), VarOp("b")))
	if err := g.Validate(); err != nil {
		t.Errorf("validate after register = %v", err)
	}
}

func TestValidateReachability(t *testing.T) {
	g := NewGraph("unreach")
	b1 := g.AddBlock("b1")
	b2 := g.AddBlock("b2")
	b3 := g.AddBlock("b3") // disconnected
	b1.Instrs = []Instr{Skip()}
	b2.Instrs = []Instr{Skip()}
	b3.Instrs = []Instr{Skip()}
	g.AddEdge(b1.ID, b2.ID)
	g.Entry, g.Exit = b1.ID, b2.ID
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("validate = %v", err)
	}
}

func TestUniverses(t *testing.T) {
	g := diamond(t)
	au := AssignUniverse(g)
	if au.Len() != 3 { // a:=1, x:=a+b, x:=0
		t.Fatalf("assign universe size %d, want 3: %v", au.Len(), au.Patterns())
	}
	p := AssignPattern{LHS: "x", RHS: BinTerm(OpAdd, VarOp("a"), VarOp("b"))}
	if id, ok := au.ID(p); !ok || au.Pattern(id).Key() != "x:=a+b" {
		t.Errorf("ID lookup failed: %v %v", id, ok)
	}
	if _, ok := au.ID(AssignPattern{LHS: "q", RHS: VarTerm("z")}); ok {
		t.Error("found pattern that does not occur")
	}

	eu := ExprUniverse(g)
	if eu.Len() != 1 || eu.Exprs()[0].Key() != "a+b" {
		t.Fatalf("expr universe = %v", eu.Exprs())
	}
}

func TestExprUniverseSeesCondSides(t *testing.T) {
	b := NewBuilder("conds")
	b.Block("s").Cond(OpGT, BinTerm(OpAdd, VarOp("x"), VarOp("z")), BinTerm(OpAdd, VarOp("y"), VarOp("i")))
	b.Block("l").Assign("x", ConstTerm(1))
	b.Block("e").OutVars("x")
	b.Edge("s", "l").Edge("s", "e").Edge("l", "e")
	g := b.MustFinish("s", "e")
	eu := ExprUniverse(g)
	if eu.Len() != 2 {
		t.Fatalf("expr universe = %v, want x+z and y+i", eu.Exprs())
	}
}

func TestCountPatternAndInstrCount(t *testing.T) {
	g := diamond(t)
	p := AssignPattern{LHS: "x", RHS: BinTerm(OpAdd, VarOp("a"), VarOp("b"))}
	if got := g.CountPattern(p); got != 1 {
		t.Errorf("CountPattern = %d", got)
	}
	if got := g.InstrCount(); got != 5 {
		t.Errorf("InstrCount = %d, want 5", got)
	}
}

func TestVarsAndSourceVars(t *testing.T) {
	g := diamond(t)
	want := []Var{"a", "b", "x"}
	if got := g.Vars(); !reflect.DeepEqual(got, want) {
		t.Errorf("Vars = %v, want %v", got, want)
	}
	g.RegisterTemp("h1", BinTerm(OpAdd, VarOp("a"), VarOp("b")))
	g.Block(g.Entry).Instrs = append([]Instr{NewAssign("h1", BinTerm(OpAdd, VarOp("a"), VarOp("b")))}, g.Block(g.Entry).Instrs...)
	if got := g.SourceVars(); !reflect.DeepEqual(got, want) {
		t.Errorf("SourceVars = %v, want %v", got, want)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	g1 := diamond(t)
	g2 := diamond(t)
	if g1.Encode() != g2.Encode() {
		t.Error("Encode not deterministic across identical constructions")
	}
}
