package ir

import (
	"testing"
)

// tidyFixture builds: entry → skipA → skipB → body → exit with a diamond
// whose synthetic-like skip arms can be bypassed.
func TestTidyBypassesSkipChains(t *testing.T) {
	b := NewBuilder("tidy")
	b.Block("entry").Assign("x", ConstTerm(1))
	b.Block("skipA")
	b.Block("skipB")
	b.Block("body").Assign("y", BinTerm(OpAdd, VarOp("x"), ConstOp(1)))
	b.Block("exit").OutVars("x", "y")
	b.Edge("entry", "skipA").Edge("skipA", "skipB").Edge("skipB", "body").Edge("body", "exit")
	g := b.MustFinish("entry", "exit")

	before := len(g.Blocks)
	n := g.Tidy()
	g.MustValidate()
	if n == 0 || len(g.Blocks) >= before {
		t.Fatalf("removed %d blocks, %d -> %d", n, before, len(g.Blocks))
	}
	// Everything merges into a two-block (or even smaller) program; the
	// instruction sequence must be intact.
	want := []string{"x:=1", "y:=x+1", "out(x,y)"}
	var got []string
	for _, blk := range g.Blocks {
		for _, in := range blk.Instrs {
			if in.Kind != KindSkip {
				got = append(got, in.Key())
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("instructions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("instructions = %v, want %v", got, want)
		}
	}
}

func TestTidyKeepsBranches(t *testing.T) {
	b := NewBuilder("branches")
	b.Block("s").Cond(OpLT, VarTerm("c"), ConstTerm(0))
	b.Block("l").Assign("x", ConstTerm(1))
	b.Block("r").Assign("x", ConstTerm(2))
	b.Block("j").OutVars("x")
	b.Edge("s", "l").Edge("s", "r").Edge("l", "j").Edge("r", "j")
	g := b.MustFinish("s", "j")
	g.Tidy()
	g.MustValidate()
	if len(g.Blocks) != 4 {
		t.Errorf("tidy altered a minimal diamond: %d blocks", len(g.Blocks))
	}
}

func TestTidyBypassesSyntheticArm(t *testing.T) {
	// A split critical edge whose synthetic node stayed empty is undone.
	b := NewBuilder("split")
	b.Block("s").Cond(OpLT, VarTerm("c"), ConstTerm(0))
	b.Block("l").Assign("x", ConstTerm(1))
	b.Block("j").OutVars("x")
	b.Edge("s", "l").Edge("s", "j").Edge("l", "j")
	g := b.MustFinish("s", "j")
	g.SplitCriticalEdges()
	nsplit := len(g.Blocks)
	if nsplit != 4 {
		t.Fatalf("expected one synthetic node, got %d blocks", nsplit)
	}
	g.Tidy()
	g.MustValidate()
	if len(g.Blocks) != 3 {
		t.Errorf("synthetic node not bypassed: %d blocks", len(g.Blocks))
	}
}

func TestTidySelfLoopUntouched(t *testing.T) {
	b := NewBuilder("loop")
	b.Block("pre").Assign("k", ConstTerm(0))
	b.Block("body").
		Assign("k", BinTerm(OpAdd, VarOp("k"), ConstOp(1))).
		Cond(OpLT, VarTerm("k"), ConstTerm(3))
	b.Block("post").OutVars("k")
	b.Edge("pre", "body").Edge("body", "body").Edge("body", "post")
	g := b.MustFinish("pre", "post")
	g.SplitCriticalEdges() // back edge gets a synthetic node
	g.Tidy()
	g.MustValidate()
	// The loop structure must survive; specifically some block must still
	// reach itself (directly or via the synthetic).
	if !stillHasCycle(g) {
		t.Errorf("tidy destroyed the loop:\n%s", g.Encode())
	}
}

func stillHasCycle(g *Graph) bool {
	return !isAcyclic(g)
}

func isAcyclic(g *Graph) bool {
	color := make([]int, len(g.Blocks))
	var visit func(NodeID) bool
	visit = func(n NodeID) bool {
		switch color[n] {
		case 1:
			return false
		case 2:
			return true
		}
		color[n] = 1
		for _, s := range g.Block(n).Succs {
			if !visit(s) {
				return false
			}
		}
		color[n] = 2
		return true
	}
	return visit(g.Entry)
}
