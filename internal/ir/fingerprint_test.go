package ir

import "testing"

func fpGraph(t *testing.T, name, b1, b2 string) *Graph {
	t.Helper()
	b := NewBuilder(name)
	b.Block(b1).Assign("x", BinTerm(OpAdd, VarOp("a"), VarOp("b")))
	b.Block(b1).Cond(OpLT, VarTerm("x"), ConstTerm(4))
	b.Block(b2).Out(VarOp("x"))
	thenB, elseB := b1+"_t", b1+"_e"
	b.Block(thenB).Assign("y", BinTerm(OpMul, VarOp("x"), VarOp("x")))
	b.Block(elseB).Assign("y", VarTerm("x"))
	b.Edge(b1, thenB)
	b.Edge(b1, elseB)
	b.Edge(thenB, b2)
	b.Edge(elseB, b2)
	g, err := b.Finish(b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFingerprintIgnoresNames(t *testing.T) {
	a := fpGraph(t, "left", "p", "q")
	b := fpGraph(t, "right", "alpha", "omega")
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("renamed blocks changed the fingerprint:\n%s\n%s", a.Encode(), b.Encode())
	}
	if a.Fingerprint() != a.Clone().Fingerprint() {
		t.Error("clone changed the fingerprint")
	}
}

func TestFingerprintSeesInstructions(t *testing.T) {
	a := fpGraph(t, "g", "p", "q")
	b := fpGraph(t, "g", "p", "q")
	b.Blocks[0].Instrs[0] = NewAssign("x", BinTerm(OpSub, VarOp("a"), VarOp("b")))
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("changed instruction not reflected in fingerprint")
	}
}

func TestFingerprintSeesBranchArmOrder(t *testing.T) {
	a := fpGraph(t, "g", "p", "q")
	b := fpGraph(t, "g", "p", "q")
	// Swapping the successors of the branch swaps then/else semantics.
	blk := b.EntryBlock()
	blk.Succs[0], blk.Succs[1] = blk.Succs[1], blk.Succs[0]
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("swapped branch arms not reflected in fingerprint")
	}
}

func TestFingerprintSeesTempBindings(t *testing.T) {
	mk := func(expr Term) *Graph {
		g := NewGraph("g")
		b1 := g.AddBlock("a")
		b2 := g.AddBlock("b")
		g.Entry, g.Exit = b1.ID, b2.ID
		g.AddEdge(b1.ID, b2.ID)
		g.RegisterTemp("h1", expr)
		b1.Instrs = []Instr{NewAssign("h1", expr), NewAssign("x", VarTerm("h1"))}
		b2.Instrs = []Instr{NewOut(VarOp("x"))}
		return g
	}
	a := mk(BinTerm(OpAdd, VarOp("a"), VarOp("b")))
	b := mk(BinTerm(OpAdd, VarOp("a"), VarOp("b")))
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical graphs with identical temp bindings disagree")
	}
	// Same instruction stream, but h1 bound to a different pattern: the
	// phases would treat the two graphs differently.
	c := mk(BinTerm(OpAdd, VarOp("a"), VarOp("b")))
	c.exprByTemp["h1"] = BinTerm(OpMul, VarOp("a"), VarOp("b"))
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("temp binding change not reflected in fingerprint")
	}
}

func TestFingerprintUnreachableBlocks(t *testing.T) {
	mk := func(extra bool) *Graph {
		g := NewGraph("g")
		b1 := g.AddBlock("a")
		b2 := g.AddBlock("b")
		g.Entry, g.Exit = b1.ID, b2.ID
		g.AddEdge(b1.ID, b2.ID)
		b1.Instrs = []Instr{NewAssign("x", ConstTerm(1))}
		b2.Instrs = []Instr{NewOut(VarOp("x"))}
		if extra {
			u := g.AddBlock("island")
			u.Instrs = []Instr{NewAssign("z", ConstTerm(9))}
		}
		return g
	}
	if mk(false).Fingerprint() == mk(true).Fingerprint() {
		t.Error("unreachable block not reflected in fingerprint")
	}
}
