package ir

import (
	"errors"
	"fmt"
)

// Validate checks the structural well-formedness conditions of §2:
//
//   - the graph has at least entry and exit blocks with valid IDs;
//   - the entry node has no predecessors, the exit node no successors;
//   - every node lies on a path from s to e;
//   - adjacency lists are mutually consistent;
//   - a node has two successors iff it ends in a branch condition, and
//     conditions appear only in that position;
//   - no node has more than two successors;
//   - every block carries at least one instruction (Normalize invariant);
//   - temporaries occurring in the program are registered in the graph.
//
// It returns an error describing the first violation found, or nil.
func (g *Graph) Validate() error {
	if len(g.Blocks) == 0 {
		return errors.New("graph has no blocks")
	}
	if int(g.Entry) < 0 || int(g.Entry) >= len(g.Blocks) {
		return fmt.Errorf("entry id %d out of range", g.Entry)
	}
	if int(g.Exit) < 0 || int(g.Exit) >= len(g.Blocks) {
		return fmt.Errorf("exit id %d out of range", g.Exit)
	}
	if len(g.EntryBlock().Preds) != 0 {
		return fmt.Errorf("entry node %s has predecessors", g.EntryBlock().Name)
	}
	if len(g.ExitBlock().Succs) != 0 {
		return fmt.Errorf("exit node %s has successors", g.ExitBlock().Name)
	}

	names := map[string]bool{}
	for i, b := range g.Blocks {
		if int(b.ID) != i {
			return fmt.Errorf("block %s: id %d does not match slice index %d", b.Name, b.ID, i)
		}
		if names[b.Name] {
			return fmt.Errorf("duplicate block name %q", b.Name)
		}
		names[b.Name] = true
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %s is empty (run Normalize)", b.Name)
		}
		if len(b.Succs) > 2 {
			return fmt.Errorf("block %s has %d successors", b.Name, len(b.Succs))
		}
		_, hasCond := b.Cond()
		if hasCond != (len(b.Succs) == 2) {
			return fmt.Errorf("block %s: branch condition and successor count disagree", b.Name)
		}
		for j, in := range b.Instrs {
			if in.Kind == KindCond && j != len(b.Instrs)-1 {
				return fmt.Errorf("block %s: condition not in final position", b.Name)
			}
			if err := g.validateInstr(b, in); err != nil {
				return err
			}
		}
		for _, s := range b.Succs {
			if int(s) < 0 || int(s) >= len(g.Blocks) {
				return fmt.Errorf("block %s: successor id %d out of range", b.Name, s)
			}
			if !contains(g.Block(s).Preds, b.ID) {
				return fmt.Errorf("edge %s->%s missing from pred list", b.Name, g.Block(s).Name)
			}
		}
		for _, p := range b.Preds {
			if int(p) < 0 || int(p) >= len(g.Blocks) {
				return fmt.Errorf("block %s: predecessor id %d out of range", b.Name, p)
			}
			if !contains(g.Block(p).Succs, b.ID) {
				return fmt.Errorf("edge %s->%s missing from succ list", g.Block(p).Name, b.Name)
			}
		}
	}

	fromEntry := g.ReachableFromEntry()
	toExit := g.ReachesExit()
	for _, b := range g.Blocks {
		if !fromEntry[b.ID] {
			return fmt.Errorf("block %s unreachable from entry", b.Name)
		}
		if !toExit[b.ID] {
			return fmt.Errorf("block %s cannot reach exit", b.Name)
		}
	}
	return nil
}

func (g *Graph) validateInstr(b *Block, in Instr) error {
	checkTerm := func(t Term) error {
		if !t.Trivial() && !t.Op.IsArith() {
			return fmt.Errorf("block %s: term %s has non-arithmetic operator", b.Name, t)
		}
		for _, v := range t.Vars(nil) {
			if IsTempName(v) && !g.IsTemp(v) {
				return fmt.Errorf("block %s: unregistered temporary %s", b.Name, v)
			}
		}
		return nil
	}
	switch in.Kind {
	case KindAssign:
		if in.LHS == "" {
			return fmt.Errorf("block %s: assignment without LHS", b.Name)
		}
		if IsTempName(in.LHS) && !g.IsTemp(in.LHS) {
			return fmt.Errorf("block %s: unregistered temporary %s", b.Name, in.LHS)
		}
		return checkTerm(in.RHS)
	case KindCond:
		if !in.CondOp.IsRel() {
			return fmt.Errorf("block %s: condition with non-relational operator %q", b.Name, in.CondOp)
		}
		if err := checkTerm(in.CondL); err != nil {
			return err
		}
		return checkTerm(in.CondR)
	case KindOut:
		for _, o := range in.Args {
			if !o.IsConst && IsTempName(o.Var) && !g.IsTemp(o.Var) {
				return fmt.Errorf("block %s: unregistered temporary %s", b.Name, o.Var)
			}
		}
	}
	return nil
}

// MustValidate panics if Validate fails. Tests and generators use it to
// assert invariants after every transformation.
func (g *Graph) MustValidate() {
	if err := g.Validate(); err != nil {
		panic("ir: invalid graph: " + err.Error() + "\n" + g.Encode())
	}
}

func contains(ids []NodeID, id NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
