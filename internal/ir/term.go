// Package ir defines the flow-graph intermediate representation of the
// paper "The Power of Assignment Motion" (Knoop/Rüthing/Steffen, PLDI 1995):
// directed flow graphs G = (N, E, s, e) whose nodes are basic blocks of
// 3-address instructions — assignments v := t, write statements out(...),
// and branch conditions — together with the assignment- and expression-
// pattern universes the paper's bit-vector analyses range over.
package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Var is a program variable. Temporaries h_ε are Vars with a reserved
// spelling (see Graph.TempFor and IsTempName).
type Var string

// Op is a binary operator symbol. Arithmetic operators appear in terms;
// relational operators appear only in branch conditions.
type Op string

// Arithmetic operators permitted in terms.
const (
	OpAdd Op = "+"
	OpSub Op = "-"
	OpMul Op = "*"
	OpDiv Op = "/"
	OpRem Op = "%"
)

// Relational operators permitted in branch conditions.
const (
	OpLT Op = "<"
	OpLE Op = "<="
	OpGT Op = ">"
	OpGE Op = ">="
	OpEQ Op = "=="
	OpNE Op = "!="
)

// IsArith reports whether o is an arithmetic term operator.
func (o Op) IsArith() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem:
		return true
	}
	return false
}

// IsRel reports whether o is a relational (branch condition) operator.
func (o Op) IsRel() bool {
	switch o {
	case OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE:
		return true
	}
	return false
}

// Operand is a variable or an integer constant.
type Operand struct {
	IsConst bool
	Var     Var   // valid iff !IsConst
	Const   int64 // valid iff IsConst
}

// VarOp returns an operand referring to variable v.
func VarOp(v Var) Operand { return Operand{Var: v} }

// ConstOp returns a constant operand with value c.
func ConstOp(c int64) Operand { return Operand{IsConst: true, Const: c} }

// Key returns the canonical spelling of the operand.
func (o Operand) Key() string {
	if o.IsConst {
		return strconv.FormatInt(o.Const, 10)
	}
	return string(o.Var)
}

// Equal reports structural equality.
func (o Operand) Equal(p Operand) bool { return o == p }

// Term is a 3-address right-hand side: either a single operand (a "trivial"
// term, Op == "") or a binary application op(Args[0], Args[1]) with exactly
// one operator symbol, as the paper assumes throughout (§2, §6).
type Term struct {
	Op   Op
	Args [2]Operand // Args[0] only for trivial terms
}

// OperandTerm returns the trivial term consisting of o alone.
func OperandTerm(o Operand) Term { return Term{Args: [2]Operand{o}} }

// VarTerm returns the trivial term consisting of variable v.
func VarTerm(v Var) Term { return OperandTerm(VarOp(v)) }

// ConstTerm returns the trivial term consisting of constant c.
func ConstTerm(c int64) Term { return OperandTerm(ConstOp(c)) }

// BinTerm returns the term op(a, b). It panics if op is not arithmetic,
// which always indicates a bug in the caller, never bad user input.
func BinTerm(op Op, a, b Operand) Term {
	if !op.IsArith() {
		panic(fmt.Sprintf("ir: %q is not an arithmetic operator", op))
	}
	return Term{Op: op, Args: [2]Operand{a, b}}
}

// Trivial reports whether t contains no operator (a lone operand).
// Non-trivial terms are exactly the paper's expression patterns.
func (t Term) Trivial() bool { return t.Op == "" }

// Operands returns the operands of t (one for trivial terms, two otherwise).
func (t Term) Operands() []Operand {
	if t.Trivial() {
		return []Operand{t.Args[0]}
	}
	return []Operand{t.Args[0], t.Args[1]}
}

// Vars appends the variables occurring in t to dst and returns it.
func (t Term) Vars(dst []Var) []Var {
	for _, o := range t.Operands() {
		if !o.IsConst {
			dst = append(dst, o.Var)
		}
	}
	return dst
}

// UsesVar reports whether variable v occurs in t.
func (t Term) UsesVar(v Var) bool {
	for _, o := range t.Operands() {
		if !o.IsConst && o.Var == v {
			return true
		}
	}
	return false
}

// Key returns the canonical spelling of t, e.g. "a+b", "a", "3".
// Keys identify expression patterns: two terms denote the same pattern
// iff their keys are equal (patterns are syntactic; a+b and b+a differ).
func (t Term) Key() string {
	if t.Trivial() {
		return t.Args[0].Key()
	}
	return t.Args[0].Key() + string(t.Op) + t.Args[1].Key()
}

// Equal reports structural equality.
func (t Term) Equal(u Term) bool { return t == u }

// String renders t for diagnostics; identical to Key.
func (t Term) String() string { return t.Key() }

// AssignPattern is the paper's assignment pattern α ≡ v := t: the pair of a
// left-hand-side variable and a right-hand-side term. Occurrences of the
// same pattern anywhere in a program are instances of one bit in the
// bit-vector analyses.
type AssignPattern struct {
	LHS Var
	RHS Term
}

// Key returns the canonical spelling "v:=t".
func (p AssignPattern) Key() string { return string(p.LHS) + ":=" + p.RHS.Key() }

// String renders the pattern for diagnostics.
func (p AssignPattern) String() string { return string(p.LHS) + " := " + p.RHS.Key() }

// SelfReferential reports whether the LHS occurs among the RHS operands
// (e.g. x := x+1). Such patterns are never redundant and never available
// across their own occurrences (side condition of Table 2).
func (p AssignPattern) SelfReferential() bool { return p.RHS.UsesVar(p.LHS) }

// tempPrefix is the reserved spelling prefix of generated temporaries h_ε.
const tempPrefix = "h"

// IsTempName reports whether v is spelled like a generated temporary
// ("h" followed by one or more digits). The parser rejects such names in
// source programs so the spelling uniquely identifies temporaries.
func IsTempName(v Var) bool {
	s := string(v)
	if !strings.HasPrefix(s, tempPrefix) || len(s) == len(tempPrefix) {
		return false
	}
	for _, r := range s[len(tempPrefix):] {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}
