package ir

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// NodeID identifies a basic block within one Graph. IDs are dense indices
// into Graph.Blocks and are never reused within a graph.
type NodeID int

// Block is a basic block: a named node carrying a sequence of instructions.
// A block with two successors must end in a KindCond instruction; control
// transfers to Succs[0] when the condition holds and to Succs[1] otherwise.
type Block struct {
	ID     NodeID
	Name   string
	Instrs []Instr
	Succs  []NodeID
	Preds  []NodeID
}

// Cond returns the block's trailing branch condition, if any.
func (b *Block) Cond() (Instr, bool) {
	if n := len(b.Instrs); n > 0 && b.Instrs[n-1].Kind == KindCond {
		return b.Instrs[n-1], true
	}
	return Instr{}, false
}

// Graph is a directed flow graph G = (N, E, s, e) with unique start and end
// nodes; the start node has no predecessors and the end node no successors
// (§2). Graph also owns the registry of temporaries h_ε so that every
// expression pattern maps to one temporary throughout all phases.
type Graph struct {
	Name   string
	Blocks []*Block
	Entry  NodeID
	Exit   NodeID

	tempByExpr map[Term]Var // expression pattern -> temporary
	exprByTemp map[Var]Term // temporary -> expression pattern
	nextTemp   int
	nextSynth  int

	// version counts graph mutations; structVersion counts only the
	// structural ones (blocks and edges). See Version.
	version       uint64
	structVersion uint64
}

// Version returns a counter bumped by every mutating graph operation:
// block and edge insertion, edge splitting, temp registration, Normalize,
// and Tidy. Analyses use it to revalidate caches (pattern universes,
// iteration orders) instead of re-deriving them from scratch. Code that
// rewrites Block.Instrs directly must call Normalize afterwards — which
// the no-empty-blocks invariant demands anyway — so instruction-level
// mutations are always accompanied by a bump.
func (g *Graph) Version() uint64 { return g.version }

// StructVersion returns a counter bumped only when the node/edge structure
// changes (AddBlock, AddEdge, SplitCriticalEdges, Tidy). Instruction-level
// rewrites leave it untouched, so per-graph iteration orders stay valid
// across the rounds of a motion fixpoint.
func (g *Graph) StructVersion() uint64 { return g.structVersion }

// MarkModified bumps the mutation counter. Passes that rewrite the graph
// through means the Graph cannot observe (direct Block.Instrs writes
// without a Normalize) can use it to keep Version honest.
func (g *Graph) MarkModified() { g.version++ }

// NewGraph returns an empty graph with the given name.
func NewGraph(name string) *Graph {
	return &Graph{
		Name:       name,
		tempByExpr: map[Term]Var{},
		exprByTemp: map[Var]Term{},
		nextTemp:   1,
		nextSynth:  1,
	}
}

// AddBlock appends a new empty block and returns it. Names must be unique;
// an empty name is replaced by a generated one.
func (g *Graph) AddBlock(name string) *Block {
	if name == "" {
		name = fmt.Sprintf("n%d", len(g.Blocks)+1)
	}
	b := &Block{ID: NodeID(len(g.Blocks)), Name: name}
	g.Blocks = append(g.Blocks, b)
	g.version++
	g.structVersion++
	return b
}

// Block returns the block with the given ID.
func (g *Graph) Block(id NodeID) *Block { return g.Blocks[int(id)] }

// BlockByName returns the block with the given name, or nil.
func (g *Graph) BlockByName(name string) *Block {
	for _, b := range g.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// AddEdge appends the edge (from, to) to both adjacency lists. Successor
// order is meaningful for branch nodes (then/else).
func (g *Graph) AddEdge(from, to NodeID) {
	g.Block(from).Succs = append(g.Block(from).Succs, to)
	g.Block(to).Preds = append(g.Block(to).Preds, from)
	g.version++
	g.structVersion++
}

// EntryBlock returns the start node s.
func (g *Graph) EntryBlock() *Block { return g.Block(g.Entry) }

// ExitBlock returns the end node e.
func (g *Graph) ExitBlock() *Block { return g.Block(g.Exit) }

// TempFor returns the unique temporary h_ε for expression pattern ε,
// creating it on first use. It panics when ε is trivial: only non-trivial
// terms are expression patterns (§2).
func (g *Graph) TempFor(expr Term) Var {
	if expr.Trivial() {
		panic("ir: TempFor on trivial term")
	}
	if h, ok := g.tempByExpr[expr]; ok {
		return h
	}
	h := Var(fmt.Sprintf("%s%d", tempPrefix, g.nextTemp))
	g.nextTemp++
	g.tempByExpr[expr] = h
	g.exprByTemp[h] = expr
	g.version++
	return h
}

// TempExpr returns the expression pattern associated with temporary h.
func (g *Graph) TempExpr(h Var) (Term, bool) {
	t, ok := g.exprByTemp[h]
	return t, ok
}

// IsTemp reports whether v is a temporary registered in this graph.
func (g *Graph) IsTemp(v Var) bool {
	_, ok := g.exprByTemp[v]
	return ok
}

// Temps returns all registered temporaries in creation order.
func (g *Graph) Temps() []Var {
	out := make([]Var, 0, len(g.exprByTemp))
	for h := range g.exprByTemp {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		// Creation order coincides with numeric suffix order.
		return tempNum(out[i]) < tempNum(out[j])
	})
	return out
}

func tempNum(v Var) int {
	n := 0
	for _, r := range string(v)[len(tempPrefix):] {
		n = n*10 + int(r-'0')
	}
	return n
}

// RegisterTemp records an externally chosen temporary h for expression ε.
// It is used by graph cloning and by tests that construct post-init graphs
// directly. Registering a conflicting association panics (caller bug).
func (g *Graph) RegisterTemp(h Var, expr Term) {
	if prev, ok := g.exprByTemp[h]; ok {
		if !prev.Equal(expr) {
			panic(fmt.Sprintf("ir: temp %s already bound to %s", h, prev))
		}
		return
	}
	if prev, ok := g.tempByExpr[expr]; ok && prev != h {
		panic(fmt.Sprintf("ir: expression %s already bound to %s", expr, prev))
	}
	g.exprByTemp[h] = expr
	g.tempByExpr[expr] = h
	g.version++
	if IsTempName(h) && tempNum(h) >= g.nextTemp {
		g.nextTemp = tempNum(h) + 1
	}
}

// Vars returns every variable occurring in the program (used or defined),
// sorted, excluding none. Useful for interpreters and generators.
func (g *Graph) Vars() []Var {
	seen := map[Var]bool{}
	var scratch []Var
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			scratch = in.Uses(scratch[:0])
			for _, v := range scratch {
				seen[v] = true
			}
			if v, ok := in.Defs(); ok {
				seen[v] = true
			}
		}
	}
	out := make([]Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SourceVars returns the non-temporary variables of the program, sorted.
func (g *Graph) SourceVars() []Var {
	var out []Var
	for _, v := range g.Vars() {
		if !g.IsTemp(v) {
			out = append(out, v)
		}
	}
	return out
}

// Normalize removes skip instructions from blocks that contain any other
// instruction and gives otherwise-empty blocks a single skip, so that every
// block carries at least one instruction. The instruction-level analyses
// rely on this invariant. It returns g for chaining.
func (g *Graph) Normalize() *Graph {
	g.version++
	for _, b := range g.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Kind != KindSkip {
				kept = append(kept, in)
			}
		}
		if len(kept) == 0 {
			kept = append(kept, Skip())
		}
		b.Instrs = kept
	}
	return g
}

// Encode returns a canonical, deterministic rendering of the graph used for
// structural comparison in tests and diagnostics. (The fixpoint loops of
// the motion passes no longer re-encode the graph to detect change; they
// use the precise change signals of aht.Apply and rae elimination counts.)
func (g *Graph) Encode() string {
	var sb strings.Builder
	writeBlocksCanon(&sb, g.Blocks, func(id NodeID) string { return g.Block(id).Name })
	return sb.String()
}

// writeBlocksCanon writes the shared canonical block rendering —
// "name[instr;instr]->succ,succ\n" per block, in the given order, naming
// blocks via name — to w. It is the single serialization used by both
// Encode (declaration order, source names) and Fingerprint (canonical DFS
// order, rank names), so the printer and the cache key cannot drift.
func writeBlocksCanon(w io.Writer, blocks []*Block, name func(NodeID) string) {
	for _, b := range blocks {
		io.WriteString(w, name(b.ID))
		io.WriteString(w, "[")
		for i, in := range b.Instrs {
			if i > 0 {
				io.WriteString(w, ";")
			}
			io.WriteString(w, in.Key())
		}
		io.WriteString(w, "]->")
		for i, s := range b.Succs {
			if i > 0 {
				io.WriteString(w, ",")
			}
			io.WriteString(w, name(s))
		}
		io.WriteString(w, "\n")
	}
}

// Clone returns a deep copy of g sharing no mutable state.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.Name)
	c.Entry, c.Exit = g.Entry, g.Exit
	c.nextTemp, c.nextSynth = g.nextTemp, g.nextSynth
	c.version, c.structVersion = g.version, g.structVersion
	c.Blocks = make([]*Block, len(g.Blocks))
	for i, b := range g.Blocks {
		nb := &Block{ID: b.ID, Name: b.Name}
		nb.Instrs = make([]Instr, len(b.Instrs))
		copy(nb.Instrs, b.Instrs)
		nb.Succs = append([]NodeID(nil), b.Succs...)
		nb.Preds = append([]NodeID(nil), b.Preds...)
		c.Blocks[i] = nb
	}
	for h, e := range g.exprByTemp {
		c.exprByTemp[h] = e
		c.tempByExpr[e] = h
	}
	return c
}

// Restore overwrites g in place with the contents of snapshot, adopting
// the snapshot's storage: the snapshot must not be used or mutated by the
// caller afterwards. It is the rollback half of the pipeline's
// checkpoint/rollback discipline — the caller holds *g, so recovery must
// happen in place rather than by returning a different graph.
//
// The version counters are advanced past BOTH histories (the snapshot's
// and whatever the failed pass did to g) and then bumped once more, so
// any analysis.Session cache keyed on a version either graph ever had is
// invalidated.
func (g *Graph) Restore(snapshot *Graph) {
	if snapshot.version > g.version {
		g.version = snapshot.version
	}
	if snapshot.structVersion > g.structVersion {
		g.structVersion = snapshot.structVersion
	}
	g.version++
	g.structVersion++
	g.Name = snapshot.Name
	g.Blocks = snapshot.Blocks
	g.Entry, g.Exit = snapshot.Entry, snapshot.Exit
	g.tempByExpr, g.exprByTemp = snapshot.tempByExpr, snapshot.exprByTemp
	g.nextTemp, g.nextSynth = snapshot.nextTemp, snapshot.nextSynth
}

// InstrCount returns the total number of instructions in the program.
func (g *Graph) InstrCount() int {
	n := 0
	for _, b := range g.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// CountPattern returns the number of occurrences of assignment pattern p.
func (g *Graph) CountPattern(p AssignPattern) int {
	n := 0
	for _, b := range g.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == KindAssign && in.LHS == p.LHS && in.RHS.Equal(p.RHS) {
				n++
			}
		}
	}
	return n
}
