package ir

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"

	"assignmentmotion/internal/dataflow"
)

// DefaultRegionTarget is the block-count ceiling one region aims for. It
// is part of the fingerprint definition (Fingerprint composes from
// per-region digests over this decomposition), so changing it changes
// every fingerprint and invalidates persisted caches — bump the
// cachestore/persist versions alongside it.
const DefaultRegionTarget = 32

// RegionSet is a deterministic partition of a graph's blocks into
// contiguous single-entry-biased regions over the SCC condensation. The
// decomposition depends only on the graph's structure in canonical order
// (entry-first DFS), so structurally equal graphs — regardless of block
// naming or declaration order — decompose identically, and an edit that
// touches one block's instructions dirties exactly one region.
type RegionSet struct {
	// Regions lists each region's member blocks as NodeIDs (== slice
	// indices into Graph.Blocks), ordered by canonical rank.
	Regions [][]NodeID
	// Of maps a block's NodeID to its region index.
	Of []int
}

// Len returns the number of regions.
func (rs *RegionSet) Len() int { return len(rs.Regions) }

// Regionize partitions g's blocks into regions of at most target blocks
// (DefaultRegionTarget when target <= 0). Strongly connected components
// are never split: loops optimize as a unit. Components are grouped
// greedily in topological order of the condensation, extending the
// current region while it stays within target and keeps a single entry
// (one block with predecessors outside the region, or the graph entry);
// a lone multi-entry component still forms its own region.
func Regionize(g *Graph, target int) *RegionSet {
	if target <= 0 {
		target = DefaultRegionTarget
	}
	n := len(g.Blocks)
	rs := &RegionSet{Of: make([]int, n)}
	if n == 0 {
		return rs
	}

	order, _ := g.canonicalOrder()
	// Canonical-index adjacency: cpos[id] is the canonical position of
	// block id, csuccs positions mirror successor order.
	cpos := make([]int, n)
	for i, b := range order {
		cpos[b.ID] = i
	}
	csuccs := make([][]int, n)
	for i, b := range order {
		for _, s := range b.Succs {
			csuccs[i] = append(csuccs[i], cpos[s])
		}
	}
	next := func(i int) []int { return csuccs[i] }
	_, comps := dataflow.Condense(n, next)

	// Predecessor counts in canonical space, for the single-entry check.
	cpreds := make([][]int, n)
	for i, ss := range csuccs {
		for _, s := range ss {
			cpreds[s] = append(cpreds[s], i)
		}
	}
	entryPos := cpos[g.Entry]

	inRegion := make([]bool, n)
	entries := func(members []int) int {
		count := 0
		for _, m := range members {
			if m == entryPos {
				count++
				continue
			}
			for _, p := range cpreds[m] {
				if !inRegion[p] {
					count++
					break
				}
			}
		}
		return count
	}

	var cur []int
	flush := func() {
		if len(cur) == 0 {
			return
		}
		region := make([]NodeID, len(cur))
		for i, m := range cur {
			region[i] = order[m].ID
			inRegion[m] = false
		}
		for _, id := range region {
			rs.Of[id] = len(rs.Regions)
		}
		rs.Regions = append(rs.Regions, region)
		cur = cur[:0]
	}

	// Tarjan emits reverse topological order; walk it forward.
	for c := len(comps) - 1; c >= 0; c-- {
		comp := comps[c]
		// Keep members in canonical order inside the region.
		sortInts(comp)
		if len(cur) > 0 {
			for _, m := range comp {
				inRegion[m] = true
			}
			merged := append(cur, comp...)
			if len(merged) > target || entries(merged) > 1 {
				for _, m := range comp {
					inRegion[m] = false
				}
				flush()
			} else {
				cur = merged
				continue
			}
		}
		cur = append(cur, comp...)
		for _, m := range comp {
			inRegion[m] = true
		}
	}
	flush()
	return rs
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// canonicalOrder computes the deterministic entry-first DFS traversal
// that canonical encoding and fingerprinting use: successor order
// preserved (it selects branch arms), unreachable blocks appended in
// declaration order. rank[id] is the 1-based canonical position.
func (g *Graph) canonicalOrder() (order []*Block, rank []int) {
	rank = make([]int, len(g.Blocks))
	order = make([]*Block, 0, len(g.Blocks))
	visit := func(id NodeID) {
		stack := []NodeID{id}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if rank[n] != 0 {
				continue
			}
			order = append(order, g.Block(n))
			rank[n] = len(order)
			succs := g.Block(n).Succs
			for i := len(succs) - 1; i >= 0; i-- {
				if rank[succs[i]] == 0 {
					stack = append(stack, succs[i])
				}
			}
		}
	}
	if len(g.Blocks) > 0 {
		visit(g.Entry)
	}
	for _, b := range g.Blocks {
		if rank[b.ID] == 0 {
			visit(b.ID)
		}
	}
	return order, rank
}

// RegionDigests returns one hex digest per region of the canonical
// decomposition: the region's blocks serialized exactly as Encode would
// (writeBlocksCanon) under canonical rank names, in canonical order.
// Fingerprint composes from these, so the concatenation of region
// serializations carries the same information as the whole-graph
// traversal did before the split.
func (g *Graph) RegionDigests() (*RegionSet, []string) {
	rs := Regionize(g, 0)
	_, rank := g.canonicalOrder()
	name := func(id NodeID) string { return "n" + strconv.Itoa(rank[id]) }
	digests := make([]string, rs.Len())
	for i, region := range rs.Regions {
		h := sha256.New()
		blocks := make([]*Block, len(region))
		for j, id := range region {
			blocks[j] = g.Block(id)
		}
		writeBlocksCanon(h, blocks, name)
		digests[i] = hex.EncodeToString(h.Sum(nil))
	}
	return rs, digests
}
