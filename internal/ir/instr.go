package ir

import (
	"fmt"
	"strings"
)

// InstrKind discriminates the instruction forms of the paper's language.
type InstrKind int

const (
	// KindSkip is the empty statement. Assignments x := x are identified
	// with skip (§2), which is what makes the rewrite relation locally
	// confluent (Lemma 3.6).
	KindSkip InstrKind = iota
	// KindAssign is an assignment v := t.
	KindAssign
	// KindOut is a write statement out(a, b, ...).
	KindOut
	// KindCond is a branch condition "t1 ⊲ t2" and must be the last
	// instruction of a node with exactly two successors; control goes to
	// the first successor when the comparison holds, otherwise the second.
	KindCond
)

// Instr is a single instruction. Instructions are value types; passes build
// new instruction slices rather than mutating shared instructions.
type Instr struct {
	Kind InstrKind

	// Assign fields.
	LHS Var
	RHS Term

	// Out fields.
	Args []Operand

	// Cond fields. Each side is a term with at most one operator, so a
	// full condition such as "x+z > y+i" carries up to three operators,
	// exactly as the paper draws it (Figure 4). The initialization phase
	// lifts non-trivial sides into temporaries (Figure 12), and the final
	// flush may inline them back (Figure 15).
	CondOp Op
	CondL  Term
	CondR  Term
}

// Skip returns the empty statement.
func Skip() Instr { return Instr{Kind: KindSkip} }

// NewAssign returns the assignment v := t. The assignment x := x is
// identified with skip (§2), and so is h := h for temporaries.
func NewAssign(v Var, t Term) Instr {
	if t.Trivial() && !t.Args[0].IsConst && t.Args[0].Var == v {
		return Skip()
	}
	return Instr{Kind: KindAssign, LHS: v, RHS: t}
}

// NewOut returns the write statement out(args...).
func NewOut(args ...Operand) Instr {
	return Instr{Kind: KindOut, Args: args}
}

// NewCond returns the branch condition "l op r". It panics if op is not
// relational, which indicates a caller bug.
func NewCond(op Op, l, r Term) Instr {
	if !op.IsRel() {
		panic(fmt.Sprintf("ir: %q is not a relational operator", op))
	}
	return Instr{Kind: KindCond, CondOp: op, CondL: l, CondR: r}
}

// Pattern returns the assignment pattern of an assignment instruction.
// It panics on other kinds (caller bug).
func (in Instr) Pattern() AssignPattern {
	if in.Kind != KindAssign {
		panic("ir: Pattern on non-assignment")
	}
	return AssignPattern{LHS: in.LHS, RHS: in.RHS}
}

// Uses appends every variable read by the instruction to dst and returns it.
// An assignment reads its RHS operands; out reads its arguments; a branch
// condition reads both sides.
func (in Instr) Uses(dst []Var) []Var {
	switch in.Kind {
	case KindAssign:
		dst = in.RHS.Vars(dst)
	case KindOut:
		for _, o := range in.Args {
			if !o.IsConst {
				dst = append(dst, o.Var)
			}
		}
	case KindCond:
		dst = in.CondL.Vars(dst)
		dst = in.CondR.Vars(dst)
	}
	return dst
}

// UsesVar reports whether the instruction reads variable v.
func (in Instr) UsesVar(v Var) bool {
	switch in.Kind {
	case KindAssign:
		return in.RHS.UsesVar(v)
	case KindOut:
		for _, o := range in.Args {
			if !o.IsConst && o.Var == v {
				return true
			}
		}
	case KindCond:
		return in.CondL.UsesVar(v) || in.CondR.UsesVar(v)
	}
	return false
}

// Defs returns the variable written by the instruction, or ("", false).
func (in Instr) Defs() (Var, bool) {
	if in.Kind == KindAssign {
		return in.LHS, true
	}
	return "", false
}

// ModifiesVar reports whether the instruction writes variable v.
func (in Instr) ModifiesVar(v Var) bool {
	return in.Kind == KindAssign && in.LHS == v
}

// Terms appends every term occurring in the instruction to dst and returns
// it: the RHS of an assignment and both sides of a condition. Out arguments
// are operands, not terms.
func (in Instr) Terms(dst []Term) []Term {
	switch in.Kind {
	case KindAssign:
		dst = append(dst, in.RHS)
	case KindCond:
		dst = append(dst, in.CondL, in.CondR)
	}
	return dst
}

// Key returns the canonical spelling of the instruction.
func (in Instr) Key() string {
	switch in.Kind {
	case KindSkip:
		return "skip"
	case KindAssign:
		return string(in.LHS) + ":=" + in.RHS.Key()
	case KindOut:
		parts := make([]string, len(in.Args))
		for i, o := range in.Args {
			parts[i] = o.Key()
		}
		return "out(" + strings.Join(parts, ",") + ")"
	case KindCond:
		return in.CondL.Key() + string(in.CondOp) + in.CondR.Key()
	}
	panic("ir: unknown instruction kind")
}

// Equal reports structural equality of two instructions.
func (in Instr) Equal(o Instr) bool {
	if in.Kind != o.Kind {
		return false
	}
	switch in.Kind {
	case KindSkip:
		return true
	case KindAssign:
		return in.LHS == o.LHS && in.RHS.Equal(o.RHS)
	case KindOut:
		if len(in.Args) != len(o.Args) {
			return false
		}
		for i := range in.Args {
			if !in.Args[i].Equal(o.Args[i]) {
				return false
			}
		}
		return true
	case KindCond:
		return in.CondOp == o.CondOp && in.CondL.Equal(o.CondL) && in.CondR.Equal(o.CondR)
	}
	return false
}

// String renders the instruction in source syntax for diagnostics.
func (in Instr) String() string {
	switch in.Kind {
	case KindSkip:
		return "skip"
	case KindAssign:
		return fmt.Sprintf("%s := %s", in.LHS, in.RHS)
	case KindOut:
		parts := make([]string, len(in.Args))
		for i, o := range in.Args {
			parts[i] = o.Key()
		}
		return "out(" + strings.Join(parts, ", ") + ")"
	case KindCond:
		return fmt.Sprintf("if %s %s %s", in.CondL, in.CondOp, in.CondR)
	}
	return "<invalid>"
}
