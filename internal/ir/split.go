package ir

import "fmt"

// IsCriticalEdge reports whether the edge (from, to) is critical: it leads
// from a node with more than one successor to a node with more than one
// predecessor (§2.1). Code motion across such an edge is unsafe, so every
// pipeline splits them first.
func (g *Graph) IsCriticalEdge(from, to NodeID) bool {
	return len(g.Block(from).Succs) > 1 && len(g.Block(to).Preds) > 1
}

// SplitCriticalEdges inserts a synthetic node into every critical edge
// (Figure 10) and returns the number of edges split. Synthetic nodes carry
// a single skip instruction and are named "s<from>_<to>" after the blocks
// the edge connected. The operation is idempotent: synthetic nodes have one
// predecessor and one successor, so their edges are never critical.
func (g *Graph) SplitCriticalEdges() int {
	split := 0
	// Collect first: AddBlock invalidates nothing, but we must not walk
	// blocks appended during the loop.
	type edge struct{ from, to NodeID }
	var critical []edge
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if g.IsCriticalEdge(b.ID, s) {
				critical = append(critical, edge{b.ID, s})
			}
		}
	}
	for _, e := range critical {
		g.splitEdge(e.from, e.to)
		split++
	}
	return split
}

// splitEdge replaces one occurrence of the edge (from, to) by from→synth→to.
// Successor order of `from` is preserved so branch targets stay meaningful.
func (g *Graph) splitEdge(from, to NodeID) {
	name := fmt.Sprintf("s%s_%s", g.Block(from).Name, g.Block(to).Name)
	if g.BlockByName(name) != nil {
		name = fmt.Sprintf("%s_%d", name, g.nextSynth)
		g.nextSynth++
	}
	synth := g.AddBlock(name)
	synth.Instrs = []Instr{Skip()}

	fb, tb := g.Block(from), g.Block(to)
	replaced := false
	for i, s := range fb.Succs {
		if s == to && !replaced {
			fb.Succs[i] = synth.ID
			replaced = true
		}
	}
	if !replaced {
		panic("ir: splitEdge on missing edge")
	}
	replaced = false
	for i, p := range tb.Preds {
		if p == from && !replaced {
			tb.Preds[i] = synth.ID
			replaced = true
		}
	}
	if !replaced {
		panic("ir: splitEdge on inconsistent preds")
	}
	synth.Succs = []NodeID{to}
	synth.Preds = []NodeID{from}
}

// ReachableFromEntry returns the set of nodes reachable from s.
func (g *Graph) ReachableFromEntry() map[NodeID]bool {
	return g.reach(g.Entry, func(b *Block) []NodeID { return b.Succs })
}

// ReachesExit returns the set of nodes from which e is reachable.
func (g *Graph) ReachesExit() map[NodeID]bool {
	return g.reach(g.Exit, func(b *Block) []NodeID { return b.Preds })
}

func (g *Graph) reach(start NodeID, next func(*Block) []NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{start: true}
	work := []NodeID{start}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, m := range next(g.Block(n)) {
			if !seen[m] {
				seen[m] = true
				work = append(work, m)
			}
		}
	}
	return seen
}
