package ir

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Fingerprint is a content address of a graph: a collision-resistant hash
// of the graph's canonical form. Two graphs share a fingerprint exactly
// when they are identical up to block naming and block declaration order
// (variables, instructions, branch targets, and temporary bindings all
// participate). The batch engine keys its result cache on fingerprints.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns the first 12 hex digits, for logs and reports.
func (f Fingerprint) Short() string { return f.String()[:12] }

// Fingerprint computes the graph's content address. The canonical form
// renames blocks to their rank in a deterministic depth-first traversal
// from the entry node (successor order preserved, since it selects branch
// arms), appends unreachable blocks in declaration order, and records
// every instruction, edge, and occurring temporary binding h_ε ↦ ε.
// Graph and block names are deliberately excluded, so structurally equal
// programs parsed from differently named sources coincide.
//
// The digest composes from per-region digests over the deterministic
// region decomposition (see Regionize/RegionDigests): each region hashes
// its own canonical block serialization, and the whole-graph fingerprint
// hashes the header plus the region digest sequence. Regions partition
// the canonical order, so the composition carries exactly the
// information the flat traversal did, while exposing the per-region
// digests the incremental artifact store diffs against.
func (g *Graph) Fingerprint() Fingerprint {
	order, rank := g.canonicalOrder()
	_, digests := g.RegionDigests()

	h := sha256.New()
	fmt.Fprintf(h, "entry %d exit %d\n", rank[g.Entry], rank[g.Exit])
	for i, d := range digests {
		fmt.Fprintf(h, "region %d %s\n", i, d)
	}
	var temps []Var
	seen := map[Var]bool{}
	note := func(v Var) {
		if !seen[v] && g.IsTemp(v) {
			seen[v] = true
			temps = append(temps, v)
		}
	}
	var uses []Var
	for _, b := range order {
		for i := range b.Instrs {
			uses = b.Instrs[i].Uses(uses[:0])
			for _, v := range uses {
				note(v)
			}
			if v, ok := b.Instrs[i].Defs(); ok {
				note(v)
			}
		}
	}
	// Temporary bindings are semantic state (IsTemp / TempExpr steer the
	// phases), so occurring temporaries contribute their bound patterns.
	sort.Slice(temps, func(i, j int) bool { return temps[i] < temps[j] })
	for _, v := range temps {
		e, _ := g.TempExpr(v)
		fmt.Fprintf(h, "temp %s=%s\n", v, e.Key())
	}

	var f Fingerprint
	h.Sum(f[:0])
	return f
}

// FingerprintString is a debugging aid: the hex fingerprint plus a terse
// shape summary ("12ab34cd56ef (7 blocks, 23 instrs)").
func (g *Graph) FingerprintString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%d blocks, %d instrs)", g.Fingerprint().Short(), len(g.Blocks), g.InstrCount())
	return sb.String()
}
