package ir

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Fingerprint is a content address of a graph: a collision-resistant hash
// of the graph's canonical form. Two graphs share a fingerprint exactly
// when they are identical up to block naming and block declaration order
// (variables, instructions, branch targets, and temporary bindings all
// participate). The batch engine keys its result cache on fingerprints.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns the first 12 hex digits, for logs and reports.
func (f Fingerprint) Short() string { return f.String()[:12] }

// Fingerprint computes the graph's content address. The canonical form
// renames blocks to their rank in a deterministic depth-first traversal
// from the entry node (successor order preserved, since it selects branch
// arms), appends unreachable blocks in declaration order, and records
// every instruction, edge, and occurring temporary binding h_ε ↦ ε.
// Graph and block names are deliberately excluded, so structurally equal
// programs parsed from differently named sources coincide.
func (g *Graph) Fingerprint() Fingerprint {
	rank := make([]int, len(g.Blocks)) // NodeID -> canonical index + 1
	order := make([]*Block, 0, len(g.Blocks))
	visit := func(id NodeID) {
		stack := []NodeID{id}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if rank[n] != 0 {
				continue
			}
			order = append(order, g.Block(n))
			rank[n] = len(order)
			succs := g.Block(n).Succs
			for i := len(succs) - 1; i >= 0; i-- {
				if rank[succs[i]] == 0 {
					stack = append(stack, succs[i])
				}
			}
		}
	}
	if len(g.Blocks) > 0 {
		visit(g.Entry)
	}
	for _, b := range g.Blocks { // unreachable leftovers, declaration order
		if rank[b.ID] == 0 {
			visit(b.ID)
		}
	}

	h := sha256.New()
	fmt.Fprintf(h, "entry %d exit %d\n", rank[g.Entry], rank[g.Exit])
	// The block serialization is the exact one Encode uses (see
	// writeBlocksCanon), only in canonical order and under rank names.
	writeBlocksCanon(h, order, func(id NodeID) string {
		return "n" + strconv.Itoa(rank[id])
	})
	var temps []Var
	seen := map[Var]bool{}
	note := func(v Var) {
		if !seen[v] && g.IsTemp(v) {
			seen[v] = true
			temps = append(temps, v)
		}
	}
	var uses []Var
	for _, b := range order {
		for i := range b.Instrs {
			uses = b.Instrs[i].Uses(uses[:0])
			for _, v := range uses {
				note(v)
			}
			if v, ok := b.Instrs[i].Defs(); ok {
				note(v)
			}
		}
	}
	// Temporary bindings are semantic state (IsTemp / TempExpr steer the
	// phases), so occurring temporaries contribute their bound patterns.
	sort.Slice(temps, func(i, j int) bool { return temps[i] < temps[j] })
	for _, v := range temps {
		e, _ := g.TempExpr(v)
		fmt.Fprintf(h, "temp %s=%s\n", v, e.Key())
	}

	var f Fingerprint
	h.Sum(f[:0])
	return f
}

// FingerprintString is a debugging aid: the hex fingerprint plus a terse
// shape summary ("12ab34cd56ef (7 blocks, 23 instrs)").
func (g *Graph) FingerprintString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%d blocks, %d instrs)", g.Fingerprint().Short(), len(g.Blocks), g.InstrCount())
	return sb.String()
}
