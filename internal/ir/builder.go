package ir

import "fmt"

// Builder offers a fluent API for constructing flow graphs programmatically.
// The textual parser (internal/parse) is the usual front end; the builder
// exists for generators and tests that assemble graphs in code.
//
//	b := ir.NewBuilder("example")
//	b.Block("b1").Assign("y", ir.BinTerm(ir.OpAdd, ir.VarOp("c"), ir.VarOp("d")))
//	b.Block("b2").CondInstr(ir.OpGT, ..., ...)
//	b.Edge("b1", "b2")
//	...
//	g, err := b.Finish("b1", "b4")
type Builder struct {
	g      *Graph
	blocks map[string]*BlockBuilder
	order  []string
	edges  [][2]string
	err    error
}

// BlockBuilder accumulates the instructions of one block.
type BlockBuilder struct {
	parent *Builder
	name   string
	instrs []Instr
}

// NewBuilder returns a builder for a graph with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{g: NewGraph(name), blocks: map[string]*BlockBuilder{}}
}

// Block returns the block builder for name, creating the block on first use.
func (b *Builder) Block(name string) *BlockBuilder {
	if bb, ok := b.blocks[name]; ok {
		return bb
	}
	bb := &BlockBuilder{parent: b, name: name}
	b.blocks[name] = bb
	b.order = append(b.order, name)
	return bb
}

// Edge records the edge from→to. Blocks are created on demand, so edges may
// be declared before their endpoints hold instructions.
func (b *Builder) Edge(from, to string) *Builder {
	b.Block(from)
	b.Block(to)
	b.edges = append(b.edges, [2]string{from, to})
	return b
}

// Assign appends v := t.
func (bb *BlockBuilder) Assign(v Var, t Term) *BlockBuilder {
	bb.instrs = append(bb.instrs, NewAssign(v, t))
	return bb
}

// AssignVar appends the copy v := w.
func (bb *BlockBuilder) AssignVar(v, w Var) *BlockBuilder {
	return bb.Assign(v, VarTerm(w))
}

// AssignBin appends v := a op b.
func (bb *BlockBuilder) AssignBin(v Var, op Op, a, c Operand) *BlockBuilder {
	return bb.Assign(v, BinTerm(op, a, c))
}

// Out appends out(args...).
func (bb *BlockBuilder) Out(args ...Operand) *BlockBuilder {
	bb.instrs = append(bb.instrs, NewOut(args...))
	return bb
}

// OutVars appends out(vars...).
func (bb *BlockBuilder) OutVars(vars ...Var) *BlockBuilder {
	args := make([]Operand, len(vars))
	for i, v := range vars {
		args[i] = VarOp(v)
	}
	return bb.Out(args...)
}

// Cond appends the branch condition "l op r"; the block must then be given
// exactly two outgoing edges, then-target first.
func (bb *BlockBuilder) Cond(op Op, l, r Term) *BlockBuilder {
	bb.instrs = append(bb.instrs, NewCond(op, l, r))
	return bb
}

// Instr appends a pre-built instruction.
func (bb *BlockBuilder) Instr(in Instr) *BlockBuilder {
	bb.instrs = append(bb.instrs, in)
	return bb
}

// Finish materializes the graph with the given entry and exit block names.
// It normalizes and validates the result.
func (b *Builder) Finish(entry, exit string) (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	ids := map[string]NodeID{}
	for _, name := range b.order {
		blk := b.g.AddBlock(name)
		blk.Instrs = b.blocks[name].instrs
		ids[name] = blk.ID
	}
	for _, e := range b.edges {
		b.g.AddEdge(ids[e[0]], ids[e[1]])
	}
	en, ok := ids[entry]
	if !ok {
		return nil, fmt.Errorf("ir: unknown entry block %q", entry)
	}
	ex, ok := ids[exit]
	if !ok {
		return nil, fmt.Errorf("ir: unknown exit block %q", exit)
	}
	b.g.Entry, b.g.Exit = en, ex
	b.g.Normalize()
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}

// MustFinish is Finish that panics on error, for tests and examples.
func (b *Builder) MustFinish(entry, exit string) *Graph {
	g, err := b.Finish(entry, exit)
	if err != nil {
		panic(err)
	}
	return g
}
